(* End-to-end exit-code and diagnostic checks on the built CLI.
   dune runs tests from _build/default/test, and test/dune declares
   ../bin/main.exe as a dependency, so the binary is always fresh. *)

let exe = Filename.concat ".." (Filename.concat "bin" "main.exe")

(* Run a command with stdout/stderr captured; return (exit code, output).
   Sys.command goes through sh, so plain redirection syntax works. *)
let run args =
  let out = Filename.temp_file "renaming_cli" ".out" in
  let code = Sys.command (Printf.sprintf "%s %s > %s 2>&1" exe args (Filename.quote out)) in
  let ic = open_in_bin out in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove out;
  (code, text)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let check_contains what output needle =
  if not (contains output needle) then
    Alcotest.failf "%s: output does not mention %S:\n%s" what needle output

(* ----- observe: the failure path must actually fail ----- *)

let test_observe_ok () =
  let code, out = run "observe -p ma -k 2 -s 8 -c 3" in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "observe" out "OK"

let test_observe_mutant_fails () =
  (* the seeded cost mutant exceeds the Moir-Anderson access bound;
     observe must exit nonzero and say which bound broke *)
  let code, out = run "observe -p ma -k 2 -s 8 -c 3 --mutant" in
  Alcotest.(check bool) "nonzero exit" true (code <> 0);
  check_contains "observe --mutant" out "VIOLATED";
  check_contains "observe --mutant" out "Moir-Anderson bound"

(* ----- faults: campaign and reproduction modes ----- *)

let test_faults_single_target () =
  let code, out = run "faults --target mutant:ma-costly --matrix 2" in
  Alcotest.(check int) "mutant killed => exit 0" 0 code;
  check_contains "faults" out "killed"

let test_faults_correct_target () =
  let code, out = run "faults --target splitter --matrix 2" in
  Alcotest.(check int) "correct target clean => exit 0" 0 code;
  check_contains "faults" out "clean"

let test_faults_json () =
  let code, out = run "faults --target mutant:ma-costly --matrix 1 --json" in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "faults --json" out "renaming.faults/v1"

let test_faults_reproduction () =
  (* reproduce a known kill: parking the holder breaks the turn-lost
     mutex mutant (found by the campaign, pinned here) *)
  let code, out =
    run "faults --target mutant:mutex-turn-lost --plan 'park@p0:acquire' --seed 64085"
  in
  Alcotest.(check int) "violation => exit 1" 1 code;
  check_contains "faults repro" out "VIOLATION";
  check_contains "faults repro" out "park@p0:acquire"

let test_faults_repro_clean () =
  (* the same plan cannot hurt the correct mutex *)
  let code, out = run "faults --target pf_mutex --plan 'park@p0:acquire' --seed 64085" in
  Alcotest.(check int) "no violation => exit 0" 0 code;
  check_contains "faults repro" out "survived"

let test_faults_bad_plan () =
  let code, _ = run "faults --target splitter --plan 'warp@p0:acc1'" in
  Alcotest.(check int) "unparsable plan => exit 2" 2 code

let test_faults_unknown_target () =
  let code, _ = run "faults --target no-such --plan 'park@p0:acc1'" in
  Alcotest.(check int) "unknown target => exit 2" 2 code

(* ----- recover: single run and crash matrix ----- *)

let test_recover_ok () =
  let code, out = run "recover -p split --crash --seed 5" in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "recover" out "reclaimed";
  check_contains "recover" out "verdict        : OK"

let test_recover_json () =
  let code, out = run "recover -p ma -k 2 -s 16 --crash --json" in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "recover --json" out "renaming.recovery/v1";
  check_contains "recover --json" out "\"ok\":true"

let test_recover_campaign () =
  let code, out = run "recover --campaign --matrix 1 --json" in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "recover --campaign" out "renaming.recovery/v1";
  check_contains "recover --campaign" out "renaming.crash/v1";
  check_contains "recover --campaign" out "split+recovery"

(* ----- trace: the flight-recorder subcommands ----- *)

let with_ring_file f =
  let file = Filename.temp_file "renaming_flight" ".txt" in
  let code, out =
    run (Printf.sprintf "trace record -p split -k 4 --seed 7 -o %s" (Filename.quote file))
  in
  Alcotest.(check int) "record exit code" 0 code;
  check_contains "trace record" out "recorded";
  Fun.protect ~finally:(fun () -> Sys.remove file) (fun () -> f file)

let test_trace_record_analyze () =
  with_ring_file (fun file ->
      let code, out = run (Printf.sprintf "trace analyze --file %s" (Filename.quote file)) in
      Alcotest.(check int) "clean run => exit 0" 0 code;
      check_contains "trace analyze" out "occupancy";
      check_contains "trace analyze" out "OK";
      check_contains "trace analyze" out "depth 0")

let test_trace_export_json () =
  with_ring_file (fun file ->
      let code, out = run (Printf.sprintf "trace export --file %s" (Filename.quote file)) in
      Alcotest.(check int) "exit code" 0 code;
      check_contains "trace export" out "traceEvents";
      check_contains "trace export" out "renaming.flight/v1")

let test_trace_provenance () =
  with_ring_file (fun file ->
      let code, out =
        run (Printf.sprintf "trace provenance --file %s" (Filename.quote file))
      in
      Alcotest.(check int) "exit code" 0 code;
      check_contains "trace provenance" out "acquired name";
      check_contains "trace provenance" out "splitter")

let test_trace_provenance_no_match () =
  with_ring_file (fun file ->
      let code, _ =
        run (Printf.sprintf "trace provenance --file %s --pid 999" (Filename.quote file))
      in
      Alcotest.(check int) "no matching acquisition => exit 1" 1 code)

let test_trace_bad_file () =
  let file = Filename.temp_file "renaming_flight" ".txt" in
  let oc = open_out file in
  output_string oc "not a flight document\n";
  close_out oc;
  let code, _ =
    Fun.protect
      ~finally:(fun () -> Sys.remove file)
      (fun () -> run (Printf.sprintf "trace analyze --file %s" (Filename.quote file)))
  in
  Alcotest.(check int) "unparsable document => exit 2" 2 code

(* ----- journeys: observe tail and server --journeys ----- *)

let test_observe_tail () =
  let code, out =
    run "observe tail --shards 2 --clients 3 --requests 300 -s 256 --seed 3"
  in
  Alcotest.(check int) "explained tail => exit 0" 0 code;
  check_contains "observe tail" out "journey #";
  check_contains "observe tail" out "tail verdict";
  check_contains "observe tail" out "top blame"

let test_observe_tail_json () =
  let code, out =
    run "observe tail --shards 2 --clients 3 --requests 300 -s 256 --seed 3 --json"
  in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "observe tail --json" out "renaming.journeys/v1";
  check_contains "observe tail --json" out "\"top_blame_stage\"";
  check_contains "observe tail --json" out "\"tail_p999_ns\"";
  check_contains "observe tail --json" out "\"blame_ns\""

let test_observe_tail_bad_plan () =
  let code, _ = run "observe tail --plan 'warp@p0:acc1'" in
  Alcotest.(check int) "unparsable plan => exit 2" 2 code

let test_observe_tail_export_round_trip () =
  (* the saved journeys document feeds trace export as extra lanes *)
  let jfile = Filename.temp_file "renaming_journeys" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove jfile)
    (fun () ->
      let code, _ =
        run
          (Printf.sprintf
             "observe tail --shards 2 --clients 2 --requests 200 -s 128 -o %s"
             (Filename.quote jfile))
      in
      Alcotest.(check int) "tail -o exit code" 0 code;
      with_ring_file (fun ring ->
          let code, out =
            run
              (Printf.sprintf "trace export --file %s --journeys %s"
                 (Filename.quote ring) (Filename.quote jfile))
          in
          Alcotest.(check int) "export exit code" 0 code;
          check_contains "trace export --journeys" out "traceEvents";
          check_contains "trace export --journeys" out "journeys"))

let test_server_journeys () =
  let code, out = run "server --journeys --clients 3 --requests 500 -s 256 --seed 5" in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "server --journeys" out "tail blame"

let test_server_journeys_json () =
  let code, out =
    run "server --journeys --clients 3 --requests 500 -s 256 --seed 5 --json"
  in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "server --journeys --json" out "renaming.server/v1";
  check_contains "server --journeys --json" out "\"tail_blame\"";
  check_contains "server --journeys --json" out "\"tail_p999_ns\""

let test_trace_default_dump () =
  (* the bare `trace` subcommand keeps its original access-dump behavior *)
  let code, out = run "trace -p ma -k 2 -s 8 --tail 5" in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "trace dump" out "accesses total"

let () =
  Alcotest.run "cli"
    [
      ( "observe",
        [
          Alcotest.test_case "correct run exits 0" `Quick test_observe_ok;
          Alcotest.test_case "mutant bound violation exits nonzero" `Quick
            test_observe_mutant_fails;
        ] );
      ( "faults",
        [
          Alcotest.test_case "mutant target" `Quick test_faults_single_target;
          Alcotest.test_case "correct target" `Quick test_faults_correct_target;
          Alcotest.test_case "json report" `Quick test_faults_json;
          Alcotest.test_case "reproduction violates" `Quick test_faults_reproduction;
          Alcotest.test_case "reproduction clean" `Quick test_faults_repro_clean;
          Alcotest.test_case "bad plan" `Quick test_faults_bad_plan;
          Alcotest.test_case "unknown target" `Quick test_faults_unknown_target;
        ] );
      ( "recover",
        [
          Alcotest.test_case "crash run reclaims" `Quick test_recover_ok;
          Alcotest.test_case "json document" `Quick test_recover_json;
          Alcotest.test_case "crash campaign" `Quick test_recover_campaign;
        ] );
      ( "trace",
        [
          Alcotest.test_case "record then analyze" `Quick test_trace_record_analyze;
          Alcotest.test_case "export trace-event json" `Quick test_trace_export_json;
          Alcotest.test_case "provenance paths" `Quick test_trace_provenance;
          Alcotest.test_case "provenance filter miss" `Quick
            test_trace_provenance_no_match;
          Alcotest.test_case "bad flight document" `Quick test_trace_bad_file;
          Alcotest.test_case "default dump preserved" `Quick test_trace_default_dump;
        ] );
      ( "journeys",
        [
          Alcotest.test_case "observe tail waterfalls" `Quick test_observe_tail;
          Alcotest.test_case "observe tail json schema" `Quick test_observe_tail_json;
          Alcotest.test_case "observe tail bad plan" `Quick test_observe_tail_bad_plan;
          Alcotest.test_case "journeys into trace export" `Quick
            test_observe_tail_export_round_trip;
          Alcotest.test_case "server --journeys" `Quick test_server_journeys;
          Alcotest.test_case "server --journeys json" `Quick test_server_journeys_json;
        ] );
    ]
