(* Time-series windows, the sampler, SLO burn gates, and the store
   tally arena — the always-on telemetry layer. *)

let ms = 1_000_000

(* ----- Timeseries: windows, rollover, percentiles ----- *)

let test_windows () =
  let t = Obs.Timeseries.create ~windows:4 ~window_ns:ms () in
  Obs.Timeseries.observe t ~now:(0 * ms) 10;
  Obs.Timeseries.observe t ~now:(0 * ms) 30;
  Obs.Timeseries.observe t ~now:(1 * ms) 5;
  let ws = Obs.Timeseries.windows t in
  Alcotest.(check int) "two windows" 2 (List.length ws);
  let w0 = List.hd ws in
  Alcotest.(check int) "w0 count" 2 w0.Obs.Timeseries.count;
  Alcotest.(check int) "w0 sum" 40 w0.Obs.Timeseries.sum;
  Alcotest.(check int) "w0 min" 10 w0.Obs.Timeseries.min;
  Alcotest.(check int) "w0 max" 30 w0.Obs.Timeseries.max;
  Alcotest.(check int) "total" 3 (Obs.Timeseries.total t);
  (* rolling 4 windows forward evicts window 0; a late event for it
     is dropped and counted, never misfiled *)
  Obs.Timeseries.observe t ~now:(4 * ms) 7;
  Alcotest.(check bool) "w0 evicted" true
    (Obs.Timeseries.window t ~wid:0 = None);
  Obs.Timeseries.observe t ~now:(0 * ms) 99;
  Alcotest.(check int) "late event dropped" 1 (Obs.Timeseries.dropped t);
  (* total counts retained events only: w0's two left with it *)
  Alcotest.(check int) "total = retained" 2 (Obs.Timeseries.total t)

let test_percentile () =
  let t = Obs.Timeseries.create ~window_ns:ms () in
  for v = 1 to 100 do
    Obs.Timeseries.observe t ~now:(2 * ms) v
  done;
  let p99 = Obs.Timeseries.percentile t ~wid:2 0.99 in
  Alcotest.(check bool) "p99 near 99"
    (p99 >= 99 && p99 <= 112) (* log-bucket edge, clamped by window max *)
    true;
  Alcotest.(check int) "p100 is max" 100 (Obs.Timeseries.percentile t ~wid:2 1.0);
  Alcotest.(check int) "absent window" 0 (Obs.Timeseries.percentile t ~wid:7 0.5);
  (* counter-mode series report the window max *)
  let c = Obs.Timeseries.create ~hist:false ~window_ns:ms () in
  Obs.Timeseries.observe c ~now:0 3;
  Obs.Timeseries.observe c ~now:0 8;
  Alcotest.(check int) "hist:false p50 = max" 8
    (Obs.Timeseries.percentile c ~wid:0 0.5)

(* Merge law: the same events, recorded into any sharding and merged
   in any order, yield identical windows. *)
let test_merge_determinism () =
  let events =
    (* (now, v) spread over several windows, seeded deterministic *)
    let rng = ref 12345 in
    let next () =
      rng := (!rng * 1103515245) + 12345;
      (!rng lsr 11) land 0xffff
    in
    List.init 400 (fun _ ->
        let now = next () mod (8 * ms) in
        let v = next () mod 5000 in
        (now, v))
  in
  let record shards pick =
    let ts =
      Array.init shards (fun _ -> Obs.Timeseries.create ~window_ns:ms ())
    in
    List.iteri (fun i (now, v) -> Obs.Timeseries.observe ts.(pick i) ~now v) events;
    ts
  in
  let merge_into ts order =
    let into = Obs.Timeseries.create ~window_ns:ms () in
    List.iter (fun i -> Obs.Timeseries.merge ~into ts.(i)) order;
    into
  in
  let fingerprint t =
    List.map
      (fun (w : Obs.Timeseries.window) ->
        ( w.wid,
          w.count,
          w.sum,
          w.min,
          w.max,
          Obs.Timeseries.percentile t ~wid:w.wid 0.99 ))
      (Obs.Timeseries.windows t)
  in
  let a = merge_into (record 1 (fun _ -> 0)) [ 0 ] in
  let b = merge_into (record 3 (fun i -> i mod 3)) [ 2; 0; 1 ] in
  let c = merge_into (record 4 (fun i -> i mod 4)) [ 3; 1; 0; 2 ] in
  Alcotest.(check bool) "1 shard = 3 shards" true (fingerprint a = fingerprint b);
  Alcotest.(check bool) "3 shards = 4 shards" true (fingerprint b = fingerprint c)

let test_merge_shape_mismatch () =
  let a = Obs.Timeseries.create ~window_ns:ms () in
  let b = Obs.Timeseries.create ~window_ns:(2 * ms) () in
  Alcotest.check_raises "window_ns mismatch"
    (Invalid_argument "Timeseries.merge: shape mismatch") (fun () ->
      Obs.Timeseries.merge ~into:a b)

(* ----- Gauge high-water marks under concurrent writer domains ----- *)

let test_gauge_hwm_domains () =
  let registry = Obs.Registry.create () in
  let n_domains = 4 and steps = 5_000 in
  let ds =
    Array.init n_domains (fun d ->
        Domain.spawn (fun () ->
            (* one shard per domain: single-writer discipline *)
            let sh = Obs.Registry.shard registry in
            let g = Obs.Registry.gauge sh "load" in
            for i = 1 to steps do
              Obs.Gauge.incr g;
              if i mod (d + 2) = 0 then Obs.Gauge.decr g
            done))
  in
  Array.iter Domain.join ds;
  let snap = Obs.Registry.snapshot registry in
  let g = List.assoc "load" snap.Obs.Registry.gauges in
  (* each domain's local hwm equals its own peak — reached right after
     the incr at the last step, before that step's decr (if any) — and
     merged current sums the final residual levels *)
  let peak d = steps - ((steps - 1) / (d + 2)) in
  let residual d = steps - (steps / (d + 2)) in
  let expect_hwm =
    Array.fold_left max 0 (Array.init n_domains peak)
  in
  let expect_current =
    Array.fold_left ( + ) 0 (Array.init n_domains residual)
  in
  Alcotest.(check int) "merged hwm = max of peaks" expect_hwm g.Obs.Gauge.hwm;
  Alcotest.(check int) "merged current = sum" expect_current g.Obs.Gauge.current

(* ----- Sampler: deterministic polls through a fake clock ----- *)

let test_sampler_poll () =
  let level = ref 0 in
  let s =
    Obs.Sampler.create ~window_ns:ms
      [ { Obs.Sampler.name = "level"; read = (fun () -> !level) } ]
  in
  level := 4;
  Obs.Sampler.poll s ~now:0;
  level := 10;
  Obs.Sampler.poll s ~now:(ms / 2);
  level := 2;
  Obs.Sampler.poll s ~now:ms;
  Alcotest.(check int) "ticks" 3 (Obs.Sampler.ticks s);
  let series = List.assoc "level" (Obs.Sampler.series s) in
  let w0 = Option.get (Obs.Timeseries.window series ~wid:0) in
  Alcotest.(check int) "w0 two polls" 2 w0.Obs.Timeseries.count;
  Alcotest.(check int) "w0 max" 10 w0.Obs.Timeseries.max;
  let w1 = Option.get (Obs.Timeseries.window series ~wid:1) in
  Alcotest.(check int) "w1 value" 2 w1.Obs.Timeseries.max

let test_sampler_shard_gauges () =
  let registry = Obs.Registry.create () in
  let sh = Obs.Registry.shard registry in
  let s =
    Obs.Sampler.create ~shard:sh ~window_ns:ms
      [ { Obs.Sampler.name = "depth"; read = (fun () -> 7) } ]
  in
  Obs.Sampler.poll s ~now:0;
  let snap = Obs.Registry.snapshot registry in
  let g = List.assoc "sampler.depth" snap.Obs.Registry.gauges in
  Alcotest.(check int) "gauge mirrors poll" 7 g.Obs.Gauge.current

(* ----- SLO parse + burn evaluation ----- *)

let test_slo_parse () =
  let spec = "p99_ns<=50000,shed_rate<=0.05,warm_rate>=0.1,violations=0" in
  match Obs.Slo.of_string spec with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok t ->
      Alcotest.(check int) "four objectives" 4 (List.length t);
      (* round-trip through to_string re-parses to the same objectives *)
      (match Obs.Slo.of_string (Obs.Slo.to_string t) with
      | Ok t' -> Alcotest.(check bool) "round trip" true (t = t')
      | Error e -> Alcotest.failf "re-parse failed: %s" e);
      (match Obs.Slo.of_string "nonsense<<=3" with
      | Ok _ -> Alcotest.fail "accepted garbage"
      | Error _ -> ())

let test_slo_evaluate () =
  (* latency series: quiet, quiet, three loud windows in a row, quiet *)
  let lat = Obs.Timeseries.create ~window_ns:ms () in
  List.iteri
    (fun i v ->
      for _ = 1 to 10 do
        Obs.Timeseries.observe lat ~now:(i * ms) v
      done)
    [ 100; 100; 9000; 9000; 9000; 100 ];
  let series = function "latency" -> Some lat | _ -> None in
  let scalar = function "violations" -> Some 0 | _ -> None in
  let run spec =
    match Obs.Slo.of_string spec with
    | Ok t -> Obs.Slo.evaluate ~series ~scalar t
    | Error e -> Alcotest.failf "parse: %s" e
  in
  let vs = run "p99_ns<=5000,violations=0" in
  Alcotest.(check bool) "sustained burn trips" true (Obs.Slo.burning vs);
  let v = List.hd vs in
  Alcotest.(check int) "three burning windows" 3 v.Obs.Slo.burning;
  Alcotest.(check int) "max consecutive run" 3 v.Obs.Slo.max_burn;
  let vs = run "p99_ns<=10000,violations=0" in
  Alcotest.(check bool) "clean run passes" false (Obs.Slo.burning vs);
  (* a nonzero scalar trips immediately, no sustain needed *)
  let vs =
    match Obs.Slo.of_string "violations=0" with
    | Ok t ->
        Obs.Slo.evaluate ~series ~scalar:(fun _ -> Some 2) t
    | Error e -> Alcotest.failf "parse: %s" e
  in
  Alcotest.(check bool) "scalar trips" true (Obs.Slo.burning vs)

(* ----- the store tally arena ----- *)

let tally_layout () =
  let layout = Shared_mem.Layout.create () in
  let a = Shared_mem.Layout.alloc layout ~name:"reg[0]" 0 in
  let b = Shared_mem.Layout.alloc layout ~name:"reg[1]" 0 in
  let c = Shared_mem.Layout.alloc layout ~name:"other" 0 in
  (layout, a, b, c)

let test_tally_groups () =
  let layout, a, b, c = tally_layout () in
  let mem = Shared_mem.Store.seq_create layout in
  let registry = Obs.Registry.create () in
  let sh = Obs.Registry.shard registry in
  let t = Shared_mem.Store.tally () in
  let ops =
    Shared_mem.Store.observed_into t sh (Shared_mem.Store.seq_ops mem ~pid:1)
  in
  ignore (ops.read a);
  ignore (ops.read b);
  ops.write a 1;
  ignore (ops.rmw c (fun v -> v + 1));
  Alcotest.(check int) "running total" 4 (Shared_mem.Store.tally_total t);
  Shared_mem.Store.tally_mark t;
  ignore (ops.read c);
  Alcotest.(check int) "since mark" 1 (Shared_mem.Store.tally_since t);
  (* group counters materialize as deltas at snapshot time *)
  let snap = Obs.Registry.snapshot registry in
  let counter n = List.assoc n snap.Obs.Registry.counters in
  Alcotest.(check int) "reads grouped" 2 (counter "store.reads.reg");
  Alcotest.(check int) "reads other" 1 (counter "store.reads.other");
  Alcotest.(check int) "writes grouped" 1 (counter "store.writes.reg");
  Alcotest.(check int) "rmws" 1 (counter "store.rmws.other");
  Alcotest.(check int) "read total" 3 (counter "store.reads");
  Alcotest.(check int) "write total" 1 (counter "store.writes");
  Alcotest.(check int) "rmw total" 1 (counter "store.rmws");
  (* a second snapshot flushes nothing new *)
  ignore (ops.read a);
  let snap2 = Obs.Registry.snapshot registry in
  Alcotest.(check int) "delta flush" 4
    (List.assoc "store.reads" snap2.Obs.Registry.counters)

let test_tally_rebind_rejected () =
  let layout, a, _, _ = tally_layout () in
  let mem = Shared_mem.Store.seq_create layout in
  let registry = Obs.Registry.create () in
  let t = Shared_mem.Store.tally () in
  let ops =
    Shared_mem.Store.observed_into t
      (Obs.Registry.shard registry)
      (Shared_mem.Store.seq_ops mem ~pid:1)
  in
  ignore (ops.read a);
  Alcotest.check_raises "rebind to another shard"
    (Invalid_argument "Store.observed_into: tally already bound to another shard")
    (fun () ->
      ignore
        (Shared_mem.Store.observed_into t
           (Obs.Registry.shard registry)
           (Shared_mem.Store.seq_ops mem ~pid:1)))

let test_tallying_total_only () =
  let layout, a, b, _ = tally_layout () in
  let mem = Shared_mem.Store.seq_create layout in
  let t = Shared_mem.Store.tally () in
  let ops = Shared_mem.Store.tallying t (Shared_mem.Store.seq_ops mem ~pid:1) in
  ignore (ops.read a);
  ops.write b 5;
  ignore (ops.rmw a (fun v -> v));
  Alcotest.(check int) "total only" 3 (Shared_mem.Store.tally_total t)

let () =
  Alcotest.run "timeseries"
    [
      ( "windows",
        [
          Alcotest.test_case "fill, rollover, dropped" `Quick test_windows;
          Alcotest.test_case "percentiles" `Quick test_percentile;
          Alcotest.test_case "merge determinism" `Quick test_merge_determinism;
          Alcotest.test_case "merge shape mismatch" `Quick test_merge_shape_mismatch;
        ] );
      ( "gauges",
        [ Alcotest.test_case "hwm across domains" `Quick test_gauge_hwm_domains ] );
      ( "sampler",
        [
          Alcotest.test_case "deterministic polls" `Quick test_sampler_poll;
          Alcotest.test_case "shard gauges" `Quick test_sampler_shard_gauges;
        ] );
      ( "slo",
        [
          Alcotest.test_case "parse + round trip" `Quick test_slo_parse;
          Alcotest.test_case "burn evaluation" `Quick test_slo_evaluate;
        ] );
      ( "tally",
        [
          Alcotest.test_case "groups + totals + mark" `Quick test_tally_groups;
          Alcotest.test_case "rebind rejected" `Quick test_tally_rebind_rejected;
          Alcotest.test_case "tallying total-only" `Quick test_tallying_total_only;
        ] );
    ]
