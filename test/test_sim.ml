open Shared_mem

(* Two processes incrementing a shared counter with separate read and
   write steps: the classic lost-update interleaving.  Checks that the
   scheduler really interleaves at single-access granularity and that
   the model checker can find both outcomes. *)
let incr_body cell (ops : Store.ops) =
  let v = ops.read cell in
  ops.write cell (v + 1)

let test_round_robin_interleaves () =
  let layout = Layout.create () in
  let c = Layout.alloc layout ~name:"c" 0 in
  let t =
    Sim.Sched.create layout [| (0, incr_body c); (1, incr_body c) |]
  in
  let outcome = Sim.Sched.run t Sim.Sched.round_robin in
  (* Round-robin: both read 0 before either writes -> lost update. *)
  Alcotest.(check int) "lost update" 1 (Sim.Sched.peek t c);
  Alcotest.(check bool) "all completed" true (Array.for_all Fun.id outcome.completed);
  Alcotest.(check int) "four accesses" 4 outcome.total

let test_model_check_finds_both_outcomes () =
  let seen = Hashtbl.create 4 in
  let builder () : Sim.Model_check.config =
    let layout = Layout.create () in
    let c = Layout.alloc layout ~name:"c" 0 in
    let final (ops : Store.ops) =
      incr_body c ops;
      (* record the value this process observes at the end *)
      Sim.Sched.emit (Sim.Event.Note ("final", ops.read c))
    in
    {
      layout;
      procs = [| (0, final); (1, final) |];
      monitor =
        Sim.Sched.monitor
          ~on_event:(fun _ _ ev ->
            match ev with
            | Sim.Event.Note ("final", v) -> Hashtbl.replace seen v ()
            | _ -> ())
          ();
    }
  in
  let r = Sim.Model_check.explore builder in
  Alcotest.(check bool) "complete" true r.complete;
  (* 2 procs x 3 steps each -> C(6,3) = 20 interleavings *)
  Alcotest.(check int) "paths" 20 r.paths;
  Alcotest.(check bool) "saw lost update (1)" true (Hashtbl.mem seen 1);
  Alcotest.(check bool) "saw serialization (2)" true (Hashtbl.mem seen 2)

let test_pause_resume () =
  let layout = Layout.create () in
  let c = Layout.alloc layout ~name:"c" 0 in
  let t = Sim.Sched.create layout [| (0, incr_body c); (7, incr_body c) |] in
  Sim.Sched.pause t 0;
  Alcotest.(check int) "pid of paused" 0 (Sim.Sched.pid_of t 0);
  Alcotest.(check int) "pid of other" 7 (Sim.Sched.pid_of t 1);
  let o1 = Sim.Sched.run t Sim.Sched.round_robin in
  Alcotest.(check bool) "paused not done" false o1.completed.(0);
  Alcotest.(check bool) "other done" true o1.completed.(1);
  Alcotest.(check bool) "not truncated" false o1.truncated;
  Sim.Sched.resume t 0;
  let o2 = Sim.Sched.run t Sim.Sched.round_robin in
  Alcotest.(check bool) "resumed finishes" true o2.completed.(0);
  Alcotest.(check int) "serialized result" 2 (Sim.Sched.peek t c)

let test_truncation () =
  let layout = Layout.create () in
  let c = Layout.alloc layout ~name:"c" 0 in
  let spin (ops : Store.ops) =
    while ops.read c = 0 do
      ()
    done
  in
  let t = Sim.Sched.create layout [| (0, spin) |] in
  let o = Sim.Sched.run ~max_steps:50 t Sim.Sched.round_robin in
  Alcotest.(check bool) "truncated" true o.truncated;
  Alcotest.(check int) "steps" 50 o.total

let test_event_atomicity () =
  (* Events fire atomically with the access they follow. *)
  let layout = Layout.create () in
  let c = Layout.alloc layout ~name:"c" 0 in
  let log = ref [] in
  let body (ops : Store.ops) =
    ops.write c ops.pid;
    Sim.Sched.emit (Sim.Event.Note ("wrote", ops.pid))
  in
  let monitor =
    Sim.Sched.monitor
      ~on_event:(fun t _ ev ->
        match ev with
        | Sim.Event.Note ("wrote", p) ->
            (* the write this event announces must still be visible *)
            log := (p, Sim.Sched.peek t c) :: !log
        | _ -> ())
      ()
  in
  let t = Sim.Sched.create ~monitor layout [| (1, body); (2, body) |] in
  let (_ : Sim.Sched.outcome) = Sim.Sched.run t Sim.Sched.round_robin in
  List.iter (fun (p, v) -> Alcotest.(check int) "event sees own write" p v) !log

let test_steps_accounting () =
  let layout = Layout.create () in
  let c = Layout.alloc layout ~name:"c" 0 in
  let body n (ops : Store.ops) =
    for _ = 1 to n do
      ignore (ops.read c)
    done
  in
  let t = Sim.Sched.create layout [| (0, body 3); (1, body 5) |] in
  let o = Sim.Sched.run t (Sim.Sched.random (Sim.Rng.make 11)) in
  Alcotest.(check int) "proc 0 steps" 3 o.steps.(0);
  Alcotest.(check int) "proc 1 steps" 5 o.steps.(1);
  Alcotest.(check int) "total" 8 o.total

(* The seed contract (rng.mli): Sched.run under [random (Rng.make s)]
   and [Model_check.sample ~seeds:[s]] take the *same* schedule — each
   scheduling decision draws exactly one [Rng.int rng enabled_count], in
   execution order.  Pinned with a config whose monitor always raises at
   a fixed total step count, so sample reports the full schedule it
   took; a manual run with a recording strategy must reproduce it. *)
let prop_sample_matches_sched_random =
  let mk_config () : Sim.Model_check.config =
    let layout = Layout.create () in
    let c = Layout.alloc layout ~name:"c" 0 in
    let body (ops : Store.ops) =
      for _ = 1 to 5 do
        let v = ops.read c in
        ops.write c (v + 1)
      done
    in
    let steps = ref 0 in
    {
      layout;
      procs = [| (0, body); (1, body); (2, body) |];
      monitor =
        Sim.Sched.monitor
          ~on_step:(fun _ _ ->
            incr steps;
            if !steps = 25 then raise (Sim.Model_check.Violation "step 25"))
          ();
    }
  in
  Test_util.qtest ~count:100 "sample takes the same schedule as Sched.random"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let sampled =
        match (Sim.Model_check.sample ~seeds:[ seed ] mk_config).violation with
        | Some v -> v.schedule
        | None -> QCheck2.Test.fail_report "always-violating config did not violate"
      in
      let recorded = ref [] in
      let rng = Sim.Rng.make seed in
      let recording : Sim.Sched.strategy =
        fun _ en ->
         let c = Sim.Rng.int rng (Array.length en) in
         recorded := c :: !recorded;
         en.(c)
      in
      let cfg = mk_config () in
      let t = Sim.Sched.create ~monitor:cfg.monitor cfg.layout cfg.procs in
      (try ignore (Sim.Sched.run t recording)
       with Sim.Model_check.Violation _ -> ());
      Sim.Sched.abort t;
      List.rev !recorded = sampled)

let prop_faults_gen_pure =
  Test_util.qtest ~count:200 "Faults.gen is a pure function of the seed" QCheck2.Gen.int
    (fun seed ->
      let plan () =
        Sim.Faults.to_string
          (Sim.Faults.gen (Sim.Rng.make seed) ~nprocs:4 ~tags:[ "cycle"; "in" ] ())
      in
      plan () = plan ())

let prop_rng_deterministic =
  Test_util.qtest "rng: equal seeds, equal streams" QCheck2.Gen.int (fun seed ->
      let a = Sim.Rng.make seed and b = Sim.Rng.make seed in
      List.init 50 (fun _ -> Sim.Rng.int a 1000) = List.init 50 (fun _ -> Sim.Rng.int b 1000))

let prop_rng_bounds =
  Test_util.qtest "rng: int within bounds"
    QCheck2.Gen.(pair int (int_range 1 10_000))
    (fun (seed, bound) ->
      let r = Sim.Rng.make seed in
      List.init 100 (fun _ -> Sim.Rng.int r bound) |> List.for_all (fun v -> v >= 0 && v < bound))

let prop_shuffle_permutes =
  Test_util.qtest "rng: shuffle permutes"
    QCheck2.Gen.(pair int (list_size (int_range 0 50) small_int))
    (fun (seed, l) ->
      let a = Array.of_list l in
      Sim.Rng.shuffle (Sim.Rng.make seed) a;
      List.sort compare (Array.to_list a) = List.sort compare l)

let prop_replay_deterministic =
  Test_util.qtest ~count:100 "scheduler: same random seed, same outcome" QCheck2.Gen.int
    (fun seed ->
      let run () =
        let layout = Layout.create () in
        let c = Layout.alloc layout ~name:"c" 0 in
        let body (ops : Store.ops) =
          for _ = 1 to 5 do
            let v = ops.read c in
            ops.write c (v + ops.pid)
          done
        in
        let t = Sim.Sched.create layout [| (1, body); (2, body); (3, body) |] in
        let (_ : Sim.Sched.outcome) = Sim.Sched.run t (Sim.Sched.random (Sim.Rng.make seed)) in
        Sim.Sched.peek t c
      in
      run () = run ())


(* ----- gauges ----- *)

let test_gauge () =
  let g = Sim.Checks.gauge ~enter:"grab" ~leave:"drop" in
  let layout = Layout.create () in
  let c = Layout.alloc layout ~name:"c" 0 in
  let body key (ops : Store.ops) =
    Sim.Sched.emit (Sim.Event.Note ("grab", key));
    ignore (ops.read c);
    ignore (ops.read c);
    Sim.Sched.emit (Sim.Event.Note ("drop", key))
  in
  let t =
    Sim.Sched.create
      ~monitor:(Sim.Checks.gauge_monitor g)
      layout
      [| (0, body 7); (1, body 7); (2, body 9) |]
  in
  let (_ : Sim.Sched.outcome) = Sim.Sched.run t Sim.Sched.round_robin in
  (* all three grab before anyone drops under round-robin *)
  Alcotest.(check int) "key 7 peak" 2 (Sim.Checks.gauge_max g 7);
  Alcotest.(check int) "key 9 peak" 1 (Sim.Checks.gauge_max g 9);
  Alcotest.(check int) "key 7 drained" 0 (Sim.Checks.gauge_current g 7);
  Alcotest.(check int) "unseen key" 0 (Sim.Checks.gauge_max g 42);
  Alcotest.(check (list int)) "keys" [ 7; 9 ]
    (List.sort compare (Sim.Checks.gauge_keys g))

let test_gauge_underrun () =
  let g = Sim.Checks.gauge ~enter:"grab" ~leave:"drop" in
  let layout = Layout.create () in
  let body (_ : Store.ops) = Sim.Sched.emit (Sim.Event.Note ("drop", 1)) in
  Alcotest.check_raises "under-run detected"
    (Sim.Model_check.Violation "gauge grab/drop under-run on key 1") (fun () ->
      let t = Sim.Sched.create ~monitor:(Sim.Checks.gauge_monitor g) layout [| (0, body) |] in
      let (_ : Sim.Sched.outcome) = Sim.Sched.run t Sim.Sched.round_robin in
      ())

(* ----- trace recording ----- *)

let test_trace_records () =
  let layout = Layout.create () in
  let c = Layout.alloc layout ~name:"c" 0 in
  let body (ops : Store.ops) =
    ops.write c ops.pid;
    Sim.Sched.emit (Sim.Event.Note ("did", ops.pid));
    ignore (ops.rmw c (fun v -> v + 1))
  in
  let tr = Sim.Trace.create () in
  let t = Sim.Sched.create ~monitor:(Sim.Trace.monitor tr) layout [| (5, body) |] in
  let (_ : Sim.Sched.outcome) = Sim.Sched.run t Sim.Sched.round_robin in
  Alcotest.(check int) "three items: write, note, rmw" 3 (Sim.Trace.length tr);
  Alcotest.(check int) "nothing dropped" 0 (Sim.Trace.dropped tr);
  match Sim.Trace.items tr with
  | [ Sim.Trace.Access { access = Sim.Sched.Write (_, 5); pid = 5; _ };
      Sim.Trace.Emitted { event = Sim.Event.Note ("did", 5); _ };
      Sim.Trace.Access { access = Sim.Sched.Update (_, 5, 6); _ } ] ->
      ()
  | items ->
      Alcotest.failf "unexpected trace:@.%a"
        (Fmt.list ~sep:Fmt.cut Sim.Trace.pp_item)
        items

let test_trace_ring () =
  let layout = Layout.create () in
  let c = Layout.alloc layout ~name:"c" 0 in
  let body (ops : Store.ops) =
    for i = 1 to 10 do
      ops.write c i
    done
  in
  let tr = Sim.Trace.create ~capacity:4 () in
  let t = Sim.Sched.create ~monitor:(Sim.Trace.monitor tr) layout [| (0, body) |] in
  let (_ : Sim.Sched.outcome) = Sim.Sched.run t Sim.Sched.round_robin in
  Alcotest.(check int) "capacity respected" 4 (Sim.Trace.length tr);
  Alcotest.(check int) "dropped" 6 (Sim.Trace.dropped tr);
  (match Sim.Trace.items tr with
  | Sim.Trace.Access { access = Sim.Sched.Write (_, 7); _ } :: _ -> ()
  | _ -> Alcotest.fail "oldest kept item should be the 7th write");
  Sim.Trace.clear tr;
  Alcotest.(check int) "cleared" 0 (Sim.Trace.length tr)

(* rmw under single-step atomicity: concurrent increments never lose
   updates (contrast with test_round_robin_interleaves above). *)
let test_rmw_atomic () =
  let layout = Layout.create () in
  let c = Layout.alloc layout ~name:"c" 0 in
  let body (ops : Store.ops) =
    for _ = 1 to 50 do
      ignore (ops.rmw c (fun v -> v + 1))
    done
  in
  let t = Sim.Sched.create layout [| (0, body); (1, body); (2, body) |] in
  let (_ : Sim.Sched.outcome) = Sim.Sched.run t (Sim.Sched.random (Sim.Rng.make 3)) in
  Alcotest.(check int) "no lost updates" 150 (Sim.Sched.peek t c)

let test_timeline () =
  let layout = Layout.create () in
  let work = Layout.alloc layout ~name:"w" 0 in
  let body name hold (ops : Store.ops) =
    ignore (ops.read work);
    Sim.Sched.emit (Sim.Event.Acquired name);
    for _ = 1 to hold do
      ignore (ops.read work)
    done;
    Sim.Sched.emit (Sim.Event.Released name);
    ignore (ops.read work)
  in
  let tr = Sim.Trace.create () in
  let t =
    Sim.Sched.create ~monitor:(Sim.Trace.monitor tr) layout
      [| (10, body 3 4); (20, body 12 2) |]
  in
  let (_ : Sim.Sched.outcome) = Sim.Sched.run t Sim.Sched.round_robin in
  let tl = Sim.Trace.timeline ~width:40 tr in
  let lines = String.split_on_char '\n' tl in
  Alcotest.(check int) "header + 2 lanes" 3 (List.length lines);
  Alcotest.(check bool) "lane for pid 10 holds name 3" true
    (List.exists (fun l -> String.length l > 0 && String.contains l '3') lines);
  Alcotest.(check bool) "lane for pid 20 holds name 12 = 'c'" true
    (List.exists (fun l -> String.contains l 'c') lines)

let test_replay_api () =
  (* Model_check.replay re-runs a schedule; a violating schedule must
     still violate. *)
  let builder () : Sim.Model_check.config =
    let layout = Layout.create () in
    let c = Layout.alloc layout ~name:"c" 0 in
    let body (ops : Store.ops) =
      let v = ops.read c in
      ops.write c (v + 1);
      if ops.read c = 1 then
        (* both processes saw a lost update *)
        raise (Sim.Model_check.Violation "lost update")
    in
    { layout; procs = [| (0, body); (1, body) |]; monitor = Sim.Sched.no_monitor }
  in
  match (Sim.Model_check.explore builder).violation with
  | None -> Alcotest.fail "expected a violating schedule"
  | Some v -> (
      match Sim.Model_check.replay builder v.schedule with
      | Error v' -> Alcotest.(check string) "same violation" v.message v'.message
      | Ok () -> Alcotest.fail "replay did not reproduce the violation")

let () =
  Alcotest.run "sim"
    [
      ( "scheduler",
        [
          Alcotest.test_case "round-robin interleaving" `Quick test_round_robin_interleaves;
          Alcotest.test_case "pause/resume" `Quick test_pause_resume;
          Alcotest.test_case "step budget truncation" `Quick test_truncation;
          Alcotest.test_case "event atomicity" `Quick test_event_atomicity;
          Alcotest.test_case "per-process step accounting" `Quick test_steps_accounting;
        ] );
      ( "model-check",
        [
          Alcotest.test_case "finds both outcomes" `Quick test_model_check_finds_both_outcomes;
          Alcotest.test_case "replay reproduces violations" `Quick test_replay_api;
        ] );
      ( "gauge",
        [
          Alcotest.test_case "peaks per key" `Quick test_gauge;
          Alcotest.test_case "under-run detection" `Quick test_gauge_underrun;
        ] );
      ( "trace",
        [
          Alcotest.test_case "records accesses and events" `Quick test_trace_records;
          Alcotest.test_case "bounded ring" `Quick test_trace_ring;
          Alcotest.test_case "rmw is atomic" `Quick test_rmw_atomic;
          Alcotest.test_case "timeline rendering" `Quick test_timeline;
        ] );
      ( "property",
        [
          prop_rng_deterministic;
          prop_rng_bounds;
          prop_shuffle_permutes;
          prop_replay_deterministic;
          prop_sample_matches_sched_random;
          prop_faults_gen_pure;
        ] );
    ]
