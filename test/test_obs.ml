(* The metrics layer: histogram buckets and percentiles, multi-shard
   snapshots, exporters, the grouped store instrumentation, and schema
   parity between a simulator run and a Domain_runner run. *)

open Shared_mem

let contains sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* ----- counters and gauges ----- *)

let test_counter () =
  let c = Obs.Counter.create () in
  Obs.Counter.incr c;
  Obs.Counter.add c 5;
  Alcotest.(check int) "incr + add" 6 (Obs.Counter.get c);
  let d = Obs.Counter.create () in
  Obs.Counter.add d 4;
  Obs.Counter.merge ~into:c d;
  Alcotest.(check int) "merge adds" 10 (Obs.Counter.get c);
  Alcotest.(check int) "source untouched" 4 (Obs.Counter.get d);
  Obs.Counter.reset c;
  Alcotest.(check int) "reset" 0 (Obs.Counter.get c)

let test_gauge () =
  let g = Obs.Gauge.create () in
  Obs.Gauge.incr g;
  Obs.Gauge.incr g;
  Obs.Gauge.decr g;
  Alcotest.(check int) "current" 1 (Obs.Gauge.current g);
  Alcotest.(check int) "hwm" 2 (Obs.Gauge.hwm g);
  Obs.Gauge.observe g 9;
  Alcotest.(check int) "observe feeds hwm only" 9 (Obs.Gauge.hwm g);
  Alcotest.(check int) "observe leaves current" 1 (Obs.Gauge.current g);
  let h = Obs.Gauge.create () in
  Obs.Gauge.add h 3;
  Obs.Gauge.merge ~into:g h;
  Alcotest.(check int) "merged current adds" 4 (Obs.Gauge.current g);
  Alcotest.(check int) "merged hwm maxes" 9 (Obs.Gauge.hwm g)

(* ----- histograms ----- *)

let test_histogram_exact_small () =
  let h = Obs.Histogram.create () in
  List.iter (Obs.Histogram.observe h) [ 3; 3; 7; 1; 15 ];
  let s = Obs.Histogram.snap h in
  Alcotest.(check int) "count" 5 s.count;
  Alcotest.(check int) "sum" 29 s.sum;
  Alcotest.(check int) "min exact" 1 s.min;
  Alcotest.(check int) "p100 exact" 15 s.p100;
  (* values below 16 sit in exact buckets: the median really is 3 *)
  Alcotest.(check int) "p50 exact below 16" 3 s.p50

let test_histogram_percentile_error () =
  let h = Obs.Histogram.create () in
  for v = 1 to 10_000 do
    Obs.Histogram.observe h v
  done;
  let s = Obs.Histogram.snap h in
  Alcotest.(check int) "count" 10_000 s.count;
  Alcotest.(check int) "p100 is the exact max" 10_000 s.p100;
  Alcotest.(check int) "min" 1 s.min;
  let within q expected =
    let got = Obs.Histogram.percentile h q in
    let err = Float.abs (float_of_int got -. expected) /. expected in
    Alcotest.(check bool)
      (Printf.sprintf "p%.0f estimate %d within 12.5%% of %.0f" (q *. 100.) got expected)
      true (err <= 0.125)
  in
  within 0.50 5000.;
  within 0.95 9500.;
  within 0.99 9900.

let test_histogram_merge () =
  let a = Obs.Histogram.create () and b = Obs.Histogram.create () in
  List.iter (Obs.Histogram.observe a) [ 2; 300; 40 ];
  List.iter (Obs.Histogram.observe b) [ 7; 9_000 ];
  Obs.Histogram.merge ~into:a b;
  let s = Obs.Histogram.snap a in
  Alcotest.(check int) "merged count" 5 s.count;
  Alcotest.(check int) "merged sum" 9_349 s.sum;
  Alcotest.(check int) "merged min" 2 s.min;
  Alcotest.(check int) "merged p100" 9_000 s.p100

(* Property: merging per-domain shards is *exact* — the quantiles of
   the merged histogram equal, bucket for bucket, what one oracle
   histogram fed every observation reports.  This is the many-writer
   case Domain_runner and the name server rely on (per-domain shards
   merged at the join), and it pins the percentile fix: the rank is
   taken over bucket masses, so no torn count can push a quantile off
   the end of the scan. *)
let test_histogram_shard_merge_oracle =
  Test_util.qtest ~count:300 "sharded merge = single-shard oracle"
    QCheck2.Gen.(
      pair (int_range 1 8)
        (list_size (int_range 0 200) (int_range 0 2_000_000)))
    (fun (nshards, values) ->
      let oracle = Obs.Histogram.create () in
      let shards = Array.init nshards (fun _ -> Obs.Histogram.create ()) in
      List.iteri
        (fun i v ->
          Obs.Histogram.observe oracle v;
          (* deterministic but uneven spread across the writers *)
          Obs.Histogram.observe shards.((i * 7) mod nshards) v)
        values;
      let merged = Obs.Histogram.create () in
      Array.iter (fun s -> Obs.Histogram.merge ~into:merged s) shards;
      let a = Obs.Histogram.snap merged and b = Obs.Histogram.snap oracle in
      if a <> b then
        QCheck2.Test.fail_reportf
          "merged snap diverged from oracle: p50 %d/%d p95 %d/%d p99 %d/%d p100 %d/%d"
          a.p50 b.p50 a.p95 b.p95 a.p99 b.p99 a.p100 b.p100
      else
        List.for_all
          (fun q ->
            Obs.Histogram.percentile merged q = Obs.Histogram.percentile oracle q)
          [ 0.5; 0.95; 0.99; 1.0 ])

(* A reader sampling quantiles while a writer domain is still
   observing: 99% of the mass is the value 1, so a mid-run p50 must
   stay 1 — the percentile scan ranks over the bucket mass it actually
   caught, never over a count that ran ahead of it (the failure mode
   was every quantile silently collapsing to the maximum). *)
let test_histogram_live_reader () =
  let h = Obs.Histogram.create () in
  let stop = Atomic.make false in
  let writer =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          for _ = 1 to 99 do
            Obs.Histogram.observe h 1
          done;
          Obs.Histogram.observe h 1_000_000
        done)
  in
  let ok = ref true in
  for _ = 1 to 5_000 do
    if Obs.Histogram.percentile h 0.5 > 1 then ok := false
  done;
  Atomic.set stop true;
  Domain.join writer;
  Alcotest.(check bool) "mid-run p50 follows the mass" true !ok;
  Alcotest.(check int) "quiescent p50" 1 (Obs.Histogram.percentile h 0.5)

(* ----- registry: two shards merged on snapshot ----- *)

let test_registry_two_shards () =
  let r = Obs.Registry.create ~span_capacity:2 () in
  let s1 = Obs.Registry.shard r and s2 = Obs.Registry.shard r in
  Obs.Registry.inc s1 "ops";
  Obs.Registry.inc s2 "ops";
  Obs.Registry.inc s2 "ops";
  Obs.Registry.observe s1 "cost" 10;
  Obs.Registry.observe s2 "cost" 30;
  Obs.Gauge.incr (Obs.Registry.gauge s1 "held");
  Obs.Gauge.incr (Obs.Registry.gauge s2 "held");
  let span i =
    {
      Obs.Span.name = "get";
      pid = i;
      start_step = i;
      end_step = i + 1;
      accesses = 1;
      annotations = [];
    }
  in
  List.iter (fun i -> Obs.Registry.span s1 (span i)) [ 1; 2; 3 ];
  let snap = Obs.Registry.snapshot r in
  Alcotest.(check int) "two shards" 2 snap.shards;
  Alcotest.(check (option int)) "counters add" (Some 3)
    (List.assoc_opt "ops" snap.counters);
  (match List.assoc_opt "cost" snap.histograms with
  | None -> Alcotest.fail "merged histogram missing"
  | Some h ->
      Alcotest.(check int) "histogram count" 2 h.count;
      Alcotest.(check int) "histogram p100" 30 h.p100);
  (match List.assoc_opt "held" snap.gauges with
  | None -> Alcotest.fail "merged gauge missing"
  | Some g ->
      Alcotest.(check int) "gauge currents add" 2 g.current;
      Alcotest.(check int) "gauge hwm maxes" 1 g.hwm);
  (* shard 1's ring holds 2 of its 3 spans *)
  Alcotest.(check int) "span ring bounded" 2 (List.length snap.spans);
  Alcotest.(check int) "span drops accounted" 1 snap.spans_dropped;
  Alcotest.(check int) "shard keeps newest spans" 2
    (match Obs.Registry.shard_spans s1 with
    | [ a; b ] -> b.start_step - a.start_step + 1
    | _ -> -1)

(* ----- exporters ----- *)

let exporter_snapshot () =
  let r = Obs.Registry.create () in
  let s = Obs.Registry.shard r in
  Obs.Registry.inc s "store.reads";
  Obs.Registry.observe s "op.get.accesses" 42;
  Obs.Gauge.incr (Obs.Registry.gauge s "names.held");
  Obs.Registry.span s
    {
      Obs.Span.name = "get";
      pid = 7;
      start_step = 0;
      end_step = 3;
      accesses = 3;
      annotations = [ ("name", 1) ];
    };
  Obs.Registry.snapshot r

let test_export_json () =
  let j = Obs.Export.to_json (exporter_snapshot ()) in
  List.iter
    (fun sub -> Alcotest.(check bool) ("json has " ^ sub) true (contains sub j))
    [
      "\"schema\":\"renaming.obs/v1\"";
      "\"store.reads\":1";
      "\"op.get.accesses\"";
      "\"p100\":42";
      "\"names.held\"";
      "\"spans\"";
      "\"name\":\"get\"";
    ]

let test_export_prometheus () =
  let p = Obs.Export.to_prometheus (exporter_snapshot ()) in
  List.iter
    (fun sub -> Alcotest.(check bool) ("prometheus has " ^ sub) true (contains sub p))
    [
      "renaming_store_reads 1";
      "renaming_names_held ";
      "renaming_names_held_hwm 1";
      "renaming_op_get_accesses_count 1";
      "renaming_op_get_accesses_max 42";
      (* native histogram exposition: typed family, cumulative
         buckets closed by +Inf, quantile gauges *)
      "# TYPE renaming_op_get_accesses histogram";
      "renaming_op_get_accesses_bucket{le=\"+Inf\"} 1";
      "renaming_op_get_accesses_sum 42";
      "# TYPE renaming_op_get_accesses_p99 gauge";
      "renaming_op_get_accesses_p99 ";
      "# TYPE renaming_store_reads counter";
      "# TYPE renaming_names_held gauge";
    ]

let test_export_json_truncation () =
  let r = Obs.Registry.create () in
  let s = Obs.Registry.shard r in
  for i = 1 to 5 do
    Obs.Registry.span s
      {
        Obs.Span.name = "get";
        pid = i;
        start_step = i;
        end_step = i + 1;
        accesses = 1;
        annotations = [];
      }
  done;
  let snap = Obs.Registry.snapshot r in
  let j = Obs.Export.to_json ~max_spans:2 snap in
  Alcotest.(check bool) "truncation is explicit" true (contains "\"spans_truncated\":3" j);
  Alcotest.(check bool) "recorded count kept" true (contains "\"recorded\":5" j);
  (* the newest spans survive the cap *)
  Alcotest.(check bool) "newest span kept" true (contains "\"pid\":5" j);
  Alcotest.(check bool) "oldest span cut" false (contains "\"pid\":1" j);
  let full = Obs.Export.to_json snap in
  Alcotest.(check bool) "uncapped export reports zero truncated" true
    (contains "\"spans_truncated\":0" full)

(* Regression: [op.get] and [op_get] both sanitize to [op_get]; the
   exporter must keep them as distinct series instead of silently
   merging (the second takes a stable [_x<hash>] suffix). *)
let test_export_prometheus_collision () =
  let r = Obs.Registry.create () in
  let s = Obs.Registry.shard r in
  Obs.Registry.inc s "op.get";
  Obs.Registry.inc s "op_get";
  Obs.Registry.inc s "op_get";
  let p = Obs.Export.to_prometheus (Obs.Registry.snapshot r) in
  Alcotest.(check bool) "first claimant keeps the bare name" true
    (contains "renaming_op_get 1" p);
  Alcotest.(check bool) "collision gets a hash suffix" true
    (contains "renaming_op_get_x" p);
  (* both observations survive as separate series *)
  let count_lines sub =
    List.length
      (List.filter
         (fun l -> String.length l > 0 && l.[0] <> '#' && contains sub l)
         (String.split_on_char '\n' p))
  in
  Alcotest.(check int) "two distinct series exported" 2 (count_lines "renaming_op_get")

(* The journey blame/tail families publish through the same registry
   path as every other counter, so their sanitized names and # TYPE
   lines must come out stable — these are the series dashboards bind. *)
let test_export_prometheus_journeys () =
  let r = Obs.Registry.create () in
  let s = Obs.Registry.shard r in
  Array.iter
    (fun st -> Obs.Registry.count s ("journey.blame." ^ Obs.Journey.stage_name st) 100)
    Obs.Journey.stages;
  Obs.Registry.count s "journey.completed" 42;
  Obs.Registry.count s "journey.flagged" 2;
  Obs.Gauge.observe (Obs.Registry.gauge s "journey.worst_ns") 31_744;
  Obs.Gauge.observe (Obs.Registry.gauge s "journey.worst_id") 7;
  let p = Obs.Export.to_prometheus (Obs.Registry.snapshot r) in
  List.iter
    (fun sub -> Alcotest.(check bool) ("prometheus has " ^ sub) true (contains sub p))
    [
      "# TYPE renaming_journey_blame_acquire counter";
      "renaming_journey_blame_acquire 100";
      "# TYPE renaming_journey_blame_reclaim counter";
      "# TYPE renaming_journey_completed counter";
      "renaming_journey_completed 42";
      "renaming_journey_flagged 2";
      "# TYPE renaming_journey_worst_ns gauge";
      "renaming_journey_worst_ns_hwm 31744";
      "renaming_journey_worst_id_hwm 7";
    ];
  (* the FNV-collision guard holds for the journey family too: a raw
     name that sanitizes onto an existing blame series must surface as
     its own suffixed series, never silently merge into it *)
  Obs.Registry.inc s "journey.blame_acquire";
  let p = Obs.Export.to_prometheus (Obs.Registry.snapshot r) in
  Alcotest.(check bool) "first claimant keeps the bare name" true
    (contains "renaming_journey_blame_acquire 100" p);
  Alcotest.(check bool) "collision gets a hash suffix" true
    (contains "renaming_journey_blame_acquire_x" p)

let test_export_text () =
  let t = Obs.Export.to_text (exporter_snapshot ()) in
  List.iter
    (fun sub -> Alcotest.(check bool) ("text has " ^ sub) true (contains sub t))
    [ "store.reads"; "op.get.accesses"; "names.held" ]

(* ----- Store.observed: per-register-group counters ----- *)

let test_observed_groups () =
  let layout = Layout.create () in
  let a = Layout.alloc_array layout ~name:"A" 4 0 in
  let b = Layout.alloc layout ~name:"B" 0 in
  let mem = Store.seq_create layout in
  let r = Obs.Registry.create () in
  let sh = Obs.Registry.shard r in
  let ops = Store.observed sh (Store.seq_ops mem ~pid:1) in
  ignore (ops.read a.(0));
  ignore (ops.read a.(3));
  ops.write a.(1) 5;
  ignore (ops.read b);
  ignore (ops.rmw b (fun v -> v + 1));
  let snap = Obs.Registry.snapshot r in
  let counter name = Option.value ~default:0 (List.assoc_opt name snap.counters) in
  Alcotest.(check int) "A reads" 2 (counter "store.reads.A");
  Alcotest.(check int) "A writes" 1 (counter "store.writes.A");
  Alcotest.(check int) "B reads" 1 (counter "store.reads.B");
  Alcotest.(check int) "B rmws" 1 (counter "store.rmws.B");
  Alcotest.(check int) "total reads" 3 (counter "store.reads");
  Alcotest.(check int) "total writes" 1 (counter "store.writes");
  Alcotest.(check int) "total rmws" 1 (counter "store.rmws");
  Alcotest.(check string) "group strips the index" "A" (Store.group a.(2))

(* Store.counter is backed by the same Obs counters the registry uses,
   so the per-op tallies and any grouped series can never drift. *)
let test_counting_cannot_drift () =
  let layout = Layout.create () in
  let c = Layout.alloc layout ~name:"c" 0 in
  let mem = Store.seq_create layout in
  let cnt = Store.counter () in
  let ops = Store.counting cnt (Store.seq_ops mem ~pid:1) in
  ignore (ops.read c);
  ops.write c 1;
  ignore (ops.rmw c (fun v -> v));
  Alcotest.(check int) "reads" 1 (Store.reads cnt);
  Alcotest.(check int) "writes (rmw tallies as write)" 2 (Store.writes cnt);
  Alcotest.(check int) "accesses" 3 (Store.accesses cnt);
  Store.reset cnt;
  Alcotest.(check int) "reset" 0 (Store.accesses cnt)

(* ----- schema parity: simulator vs Domain_runner ----- *)

let metric_names (snap : Obs.Registry.snapshot) =
  (* names.held.<n> and store.*.<group> depend on which names/registers
     a run touches; compare the stable series *)
  let stable n =
    List.mem n
      [
        "names.acquired";
        "names.released";
        "op.get.count";
        "op.release.count";
        "store.reads";
        "store.writes";
        "store.rmws";
      ]
  in
  ( List.filter stable (List.map fst snap.counters),
    List.filter (fun n -> n = "names.held") (List.map fst snap.gauges),
    List.map fst snap.histograms )

let sim_snapshot () =
  let layout = Layout.create () in
  let sp = Renaming.Split.create layout ~k:4 in
  let work = Layout.alloc layout ~name:"work" 0 in
  let pids = [| 1; 5; 9; 13 |] in
  let registry = Obs.Registry.create () in
  let shard = Obs.Registry.shard registry in
  let obs = Sim.Observe.create shard in
  let body (ops : Store.ops) =
    for _ = 1 to 3 do
      Sim.Observe.op_begin "get";
      let lease = Renaming.Split.get_name sp ops in
      Sim.Sched.emit (Sim.Event.Acquired (Renaming.Split.name_of sp lease));
      ignore (ops.read work);
      Sim.Sched.emit (Sim.Event.Released (Renaming.Split.name_of sp lease));
      Sim.Observe.op_begin "release";
      Renaming.Split.release_name sp ops lease
    done
  in
  let t =
    Sim.Sched.create ~monitor:(Sim.Observe.monitor obs) layout
      (Array.map (fun pid -> (pid, body)) pids)
  in
  ignore (Sim.Sched.run t (Sim.Sched.random (Sim.Rng.make 7)));
  Sim.Observe.finalize obs;
  Obs.Registry.snapshot registry

let domain_snapshot () =
  let layout = Layout.create () in
  let sp = Renaming.Split.create layout ~k:4 in
  let pids = [| 1; 5; 9; 13 |] in
  let registry = Obs.Registry.create () in
  let r =
    Runtime.Domain_runner.run ~registry (module Renaming.Split) sp ~layout ~pids
      ~cycles:3 ~name_space:(Renaming.Split.name_space sp)
  in
  Alcotest.(check int) "no violations" 0 r.violations;
  Alcotest.(check int) "four shards" 4 (Obs.Registry.snapshot registry).shards;
  Obs.Registry.snapshot registry

let test_schema_parity () =
  let sc, sg, sh = metric_names (sim_snapshot ()) in
  let dc, dg, dh = metric_names (domain_snapshot ()) in
  Alcotest.(check (list string)) "counter schema" sc dc;
  Alcotest.(check (list string)) "gauge schema" sg dg;
  Alcotest.(check (list string)) "histogram schema" sh dh;
  Alcotest.(check (list string)) "span/op histograms present"
    [ "op.get.accesses"; "op.release.accesses" ]
    sh

let test_domain_runner_per_name () =
  let layout = Layout.create () in
  let sp = Renaming.Split.create layout ~k:3 in
  let pids = [| 2; 4; 6 |] in
  let r =
    Runtime.Domain_runner.run (module Renaming.Split) sp ~layout ~pids ~cycles:5
      ~name_space:(Renaming.Split.name_space sp)
  in
  Alcotest.(check int) "no violations" 0 r.violations;
  Alcotest.(check (option string)) "no violation detail" None r.first_violation;
  Alcotest.(check bool) "per-name breakdown populated" true
    (r.max_concurrent_by_name <> []);
  List.iter
    (fun (n, m) ->
      Alcotest.(check bool)
        (Printf.sprintf "name %d held by at most one worker" n)
        true (m = 1))
    r.max_concurrent_by_name

let () =
  Alcotest.run "obs"
    [
      ( "primitives",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram exact below 16" `Quick test_histogram_exact_small;
          Alcotest.test_case "histogram percentile error" `Quick
            test_histogram_percentile_error;
          Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
          test_histogram_shard_merge_oracle;
          Alcotest.test_case "live reader never overshoots" `Slow
            test_histogram_live_reader;
        ] );
      ( "registry",
        [
          Alcotest.test_case "two shards merge" `Quick test_registry_two_shards;
          Alcotest.test_case "json exporter" `Quick test_export_json;
          Alcotest.test_case "json span truncation is explicit" `Quick
            test_export_json_truncation;
          Alcotest.test_case "prometheus exporter" `Quick test_export_prometheus;
          Alcotest.test_case "prometheus journey families" `Quick
            test_export_prometheus_journeys;
          Alcotest.test_case "prometheus name-collision regression" `Quick
            test_export_prometheus_collision;
          Alcotest.test_case "text exporter" `Quick test_export_text;
        ] );
      ( "store",
        [
          Alcotest.test_case "observed groups" `Quick test_observed_groups;
          Alcotest.test_case "counting cannot drift" `Quick test_counting_cannot_drift;
        ] );
      ( "domains",
        [
          Alcotest.test_case "schema parity with the simulator" `Quick test_schema_parity;
          Alcotest.test_case "per-name uniqueness breakdown" `Quick
            test_domain_runner_per_name;
        ] );
    ]
