(* Protocol combinators and the Theorem 11 pipeline. *)

open Shared_mem
module Protocol = Renaming.Protocol
module Pipeline = Renaming.Pipeline
module Params = Renaming.Params
module Ma = Renaming.Ma
module Split = Renaming.Split

(* ----- Params ----- *)

let test_choose () =
  List.iter
    (fun (k, s) ->
      let p = Params.choose ~k ~s in
      Alcotest.(check bool)
        (Printf.sprintf "valid for k=%d s=%d" k s)
        true
        (Params.satisfies ~k ~s p))
    [ (2, 4); (3, 100); (4, 512); (5, 10_000); (8, 1_000_000); (12, 3_000_000) ]

let test_choose_shrinks () =
  (* for reasonable k, one FILTER application shrinks big spaces *)
  List.iter
    (fun (k, s) ->
      let p = Params.choose ~k ~s in
      Alcotest.(check bool)
        (Printf.sprintf "D < S for k=%d s=%d" k s)
        true
        (Params.name_space ~k p < s))
    [ (3, 200); (4, 1_000); (6, 100_000) ]

let test_regimes () =
  List.iter
    (fun (r : Params.regime) ->
      List.iter
        (fun k ->
          let s = r.source ~k in
          let p = r.params ~k in
          Alcotest.(check bool)
            (Printf.sprintf "%s: valid params k=%d" r.label k)
            true
            (Params.satisfies ~k ~s p);
          Alcotest.(check bool)
            (Printf.sprintf "%s: D=%d within paper bound %d (k=%d)" r.label
               (Params.name_space ~k p) (r.space_bound ~k) k)
            true
            (Params.name_space ~k p <= r.space_bound ~k))
        [ 2; 3; 4; 6; 8 ])
    Params.regimes

let prop_ceil_root =
  Test_util.qtest "ceil_root is the least root"
    QCheck2.Gen.(pair (int_range 1 1_000_000) (int_range 1 6))
    (fun (s, m) ->
      let r = Numeric.Intmath.ceil_root s m in
      Numeric.Intmath.pow_ge r m s && (r = 1 || not (Numeric.Intmath.pow_ge (r - 1) m s)))

(* ----- Chain combinator ----- *)

module Chain_split_ma = Protocol.Chain (Split) (Ma)

let test_chain_static () =
  let layout = Layout.create () in
  let sp = Split.create layout ~k:3 in
  let ma = Ma.create layout ~k:3 ~s:(Split.name_space sp) in
  let c = Chain_split_ma.make sp ma in
  Alcotest.(check int) "chained name space" 6 (Chain_split_ma.name_space c);
  let mem = Store.seq_create layout in
  let ops = Store.seq_ops mem ~pid:987654321 in
  let lease = Chain_split_ma.get_name c ops in
  Alcotest.(check bool) "name in final space" true (Chain_split_ma.name_of c lease < 6);
  Chain_split_ma.release_name c ops lease;
  let lease2 = Chain_split_ma.get_name c ops in
  Alcotest.(check bool) "long-lived" true (Chain_split_ma.name_of c lease2 < 6)

let test_chain_any () =
  let layout = Layout.create () in
  let sp = Split.create layout ~k:3 in
  let ma = Ma.create layout ~k:3 ~s:(Split.name_space sp) in
  let chained =
    Protocol.chain_all
      [ Protocol.Any.pack (module Split) sp; Protocol.Any.pack (module Ma) ma ]
  in
  Alcotest.(check int) "dynamic chain name space" 6 (Protocol.Any.name_space chained);
  let mem = Store.seq_create layout in
  let ops = Store.seq_ops mem ~pid:42 in
  let lease = Protocol.Any.get_name chained ops in
  Alcotest.(check bool) "in range" true (Protocol.Any.name_of chained lease < 6);
  Protocol.Any.release_name chained ops lease;
  Alcotest.check_raises "empty pipeline" (Invalid_argument "Protocol.chain_all: empty pipeline")
    (fun () -> ignore (Protocol.chain_all []))

(* Chained uniqueness under concurrency: the composite must still hand
   out unique names even while stages recycle intermediate names. *)
let test_chain_uniqueness () =
  let build_procs ~cycles =
    let layout = Layout.create () in
    let sp = Split.create layout ~k:3 in
    let ma = Ma.create layout ~k:3 ~s:(Split.name_space sp) in
    let c = Chain_split_ma.make sp ma in
    let work = Layout.alloc layout ~name:"work" 0 in
    let procs =
      Array.init 3 (fun i ->
          ( (i * 1_000_000) + 999,
            Test_util.protocol_cycles (module Chain_split_ma) c ~work ~cycles ))
    in
    (layout, procs)
  in
  List.iter
    (fun seed ->
      let layout, procs = build_procs ~cycles:4 in
      let outcome, u = Test_util.run_random ~seed ~name_space:6 layout procs in
      Alcotest.(check bool) "completes" true (Test_util.all_completed outcome);
      Alcotest.(check bool) "concurrent <= 3" true (Sim.Checks.max_concurrent u <= 3))
    (Test_util.seeds 40)

(* ----- Pipeline ----- *)

let test_pipeline_stages () =
  let layout = Layout.create () in
  let p =
    Pipeline.create layout ~k:3 ~s:1_000_000
      ~participants:[| 5; 999_999; 123_456 |]
  in
  let st = Pipeline.stages p in
  Alcotest.(check bool) "at least 2 stages" true (List.length st >= 2);
  (match st with
  | first :: _ -> Alcotest.(check string) "starts with split" "split" first.Pipeline.kind
  | [] -> Alcotest.fail "no stages");
  let rec connected = function
    | a :: (b : Pipeline.stage_info) :: rest ->
        Alcotest.(check int) "stage spaces connect" a.Pipeline.dest b.Pipeline.source;
        connected (b :: rest)
    | [ last ] -> Alcotest.(check int) "ends at k(k+1)/2" 6 last.Pipeline.dest
    | [] -> ()
  in
  connected st;
  Alcotest.(check int) "name space" 6 (Pipeline.name_space p)

let test_pipeline_small_source () =
  (* source space already tiny: single MA stage *)
  let layout = Layout.create () in
  let p = Pipeline.create layout ~k:3 ~s:5 ~participants:[| 0; 2; 4 |] in
  Alcotest.(check int) "one stage" 1 (List.length (Pipeline.stages p));
  Alcotest.(check int) "names" 6 (Pipeline.name_space p)

let test_pipeline_solo () =
  let layout = Layout.create () in
  let p = Pipeline.create layout ~k:2 ~s:100_000 ~participants:[| 54_321 |] in
  let mem = Store.seq_create layout in
  let ops = Store.seq_ops mem ~pid:54_321 in
  let lease = Pipeline.get_name p ops in
  Alcotest.(check bool) "name in k(k+1)/2" true (Pipeline.name_of p lease < 3);
  Pipeline.release_name p ops lease;
  let lease2 = Pipeline.get_name p ops in
  Alcotest.(check bool) "long-lived" true (Pipeline.name_of p lease2 < 3)

let pipeline_run ~k ~s ~cycles ~seed =
  let participants = Array.init k (fun i -> i * (s / k)) in
  let layout = Layout.create () in
  let p = Pipeline.create layout ~k ~s ~participants in
  let work = Layout.alloc layout ~name:"work" 0 in
  let procs =
    Array.map (fun pid -> (pid, Test_util.protocol_cycles (module Pipeline) p ~work ~cycles))
      participants
  in
  Test_util.run_random ~seed ~name_space:(Pipeline.name_space p) layout procs

let test_pipeline_uniqueness () =
  List.iter
    (fun seed ->
      let outcome, u = pipeline_run ~k:3 ~s:50_000 ~cycles:3 ~seed in
      Alcotest.(check bool) "completes" true (Test_util.all_completed outcome);
      Alcotest.(check bool) "names within 6" true (Sim.Checks.max_name u < 6))
    (Test_util.seeds 15)

(* The headline property: pipeline cost is independent of S.  The exact
   same protocol structure (and hence the same worst-case access count)
   serves S = 10^4 and S = 10^8. *)
let test_s_independence () =
  let measure ~s ~seed =
    let k = 3 in
    let participants = Array.init k (fun i -> (i * (s / k)) + (s / 7)) in
    let layout = Layout.create () in
    let p = Pipeline.create layout ~k ~s ~participants in
    let work = Layout.alloc layout ~name:"work" 0 in
    let get_costs = ref [] and rel_costs = ref [] in
    let procs =
      Array.map
        (fun pid ->
          ( pid,
            Test_util.protocol_cycles_counted (module Pipeline) p ~work ~cycles:3 ~get_costs
              ~rel_costs ))
        participants
    in
    let _ = Test_util.run_random ~seed ~name_space:(Pipeline.name_space p) layout procs in
    List.fold_left max 0 !get_costs
  in
  let small = List.map (fun seed -> measure ~s:10_000 ~seed) (Test_util.seeds 8) in
  let big = List.map (fun seed -> measure ~s:100_000_000 ~seed) (Test_util.seeds 8) in
  let wmax l = List.fold_left max 0 l in
  Alcotest.(check bool)
    (Printf.sprintf "worst cost at S=10^8 (%d) within 1.5x of S=10^4 (%d)" (wmax big)
       (wmax small))
    true
    (float_of_int (wmax big) <= 1.5 *. float_of_int (max 1 (wmax small)))

(* k = 6 is the smallest k whose pipeline includes a FILTER stage
   (below that, Params.choose cannot shrink 3^(k-1) further and the
   pipeline degenerates to SPLIT -> MA). *)
let test_pipeline_with_filter_stage () =
  let layout = Layout.create () in
  let p = Pipeline.create layout ~k:6 ~s:1_000_000 ~participants:[| 1; 500_000; 999_999 |] in
  let kinds = List.map (fun (s : Pipeline.stage_info) -> s.kind) (Pipeline.stages p) in
  Alcotest.(check (list string)) "split -> filter -> ma" [ "split"; "filter"; "ma" ] kinds;
  Alcotest.(check int) "final space 21" 21 (Pipeline.name_space p)

let test_pipeline_uniqueness_k6 () =
  List.iter
    (fun seed ->
      let outcome, u = pipeline_run ~k:6 ~s:1_000_000 ~cycles:2 ~seed in
      Alcotest.(check bool) "completes" true (Test_util.all_completed outcome);
      Alcotest.(check bool) "names within 21" true (Sim.Checks.max_name u < 21))
    (Test_util.seeds 8)

(* Wait-freedom regression under adversarial parking: a full SPLIT →
   FILTER → MA pipeline (k = 6 is the smallest k with a FILTER stage)
   at maximum contention, with five of the six processes parked at
   staggered depths — one splitter visit (7 accesses) apart, i.e. one
   process frozen inside each successive level of the SPLIT tree.  The
   lone unparked process must still finish every cycle, and uniqueness
   must hold even though parked processes sit on names forever. *)
let test_parked_per_tree_level () =
  let k = 6 and s = 1_000_000 and cycles = 2 in
  let plan =
    List.init (k - 1) (fun j ->
        {
          Sim.Faults.victim = j + 1;
          trigger = Sim.Faults.At_access (7 * (j + 1));
          action = Sim.Faults.Park;
        })
  in
  List.iter
    (fun seed ->
      let participants = Array.init k (fun i -> i * (s / k)) in
      let layout = Layout.create () in
      let p = Pipeline.create layout ~k ~s ~participants in
      let work = Layout.alloc layout ~name:"work" 0 in
      let procs =
        Array.map
          (fun pid -> (pid, Test_util.protocol_cycles (module Pipeline) p ~work ~cycles))
          participants
      in
      let u = Sim.Checks.uniqueness ~name_space:(Pipeline.name_space p) () in
      let ctrl = Sim.Faults.controller plan in
      let monitor =
        Sim.Checks.combine [ Sim.Checks.uniqueness_monitor u; Sim.Faults.monitor ctrl ]
      in
      let t = Sim.Sched.create ~monitor layout procs in
      let outcome =
        Sim.Faults.run ~max_steps:200_000 ctrl t (Sim.Sched.random (Sim.Rng.make seed))
      in
      Sim.Sched.abort t;
      Alcotest.(check bool) "within the wait-freedom budget" false outcome.truncated;
      Alcotest.(check bool) "unparked process finished" true outcome.completed.(0);
      Alcotest.(check int) "all five victims parked" 5
        (List.length (Sim.Faults.parked ctrl));
      Alcotest.(check bool) "names stayed in the final space" true
        (Sim.Checks.max_name u < Pipeline.name_space p))
    (Test_util.seeds 10)

(* Chain must release innermost-first: the process still holds its
   stage-A name (its identity inside B) while releasing in B.  Witness
   via the execution trace: every access of B's release precedes every
   access of A's release. *)
let test_chain_release_order () =
  let layout = Layout.create () in
  let sp = Split.create layout ~k:2 in
  (* remember which registers belong to stage A (split) *)
  let split_registers = Layout.size layout in
  let ma = Ma.create layout ~k:2 ~s:(Split.name_space sp) in
  let c = Chain_split_ma.make sp ma in
  let tr = Sim.Trace.create () in
  let phase = ref "get" in
  let body (ops : Store.ops) =
    let lease = Chain_split_ma.get_name c ops in
    Sim.Sched.emit (Sim.Event.Note ("release_starts", 0));
    phase := "release";
    Chain_split_ma.release_name c ops lease
  in
  let monitor = Sim.Checks.combine [ Sim.Trace.monitor tr ] in
  let t = Sim.Sched.create ~monitor layout [| (12345, body) |] in
  let (_ : Sim.Sched.outcome) = Sim.Sched.run t Sim.Sched.round_robin in
  (* scan the trace: after release starts, all MA (stage B) accesses
     must come before the first split (stage A) access *)
  let releasing = ref false and seen_split_release = ref false in
  List.iter
    (fun item ->
      match item with
      | Sim.Trace.Emitted { event = Sim.Event.Note ("release_starts", _); _ } ->
          releasing := true
      | Sim.Trace.Access { access; _ } when !releasing ->
          let cell_id =
            match access with
            | Sim.Sched.Read (cl, _) | Sim.Sched.Write (cl, _) -> Cell.id cl
            | Sim.Sched.Update (cl, _, _) -> Cell.id cl
          in
          let is_split = cell_id < split_registers in
          if is_split then seen_split_release := true
          else
            Alcotest.(check bool) "no B-release access after A-release began" false
              !seen_split_release
      | _ -> ())
    (Sim.Trace.items tr);
  Alcotest.(check bool) "stage A was released too" true !seen_split_release

(* Params.plan must mirror Pipeline.create exactly and its worst-case
   bound must dominate the measured costs. *)
let test_plan_mirrors_pipeline () =
  List.iter
    (fun (k, s) ->
      let plan = Params.plan ~k ~s in
      let layout = Layout.create () in
      let p = Pipeline.create layout ~k ~s ~participants:(Array.init (min k s) (fun i -> i * (s / k))) in
      let stages = Pipeline.stages p in
      Alcotest.(check (list string))
        (Printf.sprintf "stage kinds k=%d s=%d" k s)
        (List.map (fun (st : Pipeline.stage_info) -> st.kind) stages)
        (List.map (fun (st : Params.stage_plan) -> st.stage) plan);
      List.iter2
        (fun (st : Pipeline.stage_info) (pl : Params.stage_plan) ->
          Alcotest.(check int) "source" st.source pl.stage_source;
          Alcotest.(check int) "dest" st.dest pl.stage_dest)
        stages plan;
      Alcotest.(check bool)
        "register prediction dominates reality"
        true
        (Layout.size layout <= Params.plan_registers plan))
    [ (2, 10); (3, 1_000); (4, 50_000); (6, 1_000_000); (8, 4_000) ]

let test_plan_bounds_measured_cost () =
  let k = 6 and s = 100_000 in
  let plan = Params.plan ~k ~s in
  let bound = Params.plan_worst_get plan in
  let participants = Array.init k (fun i -> (i * (s / k)) + 11) in
  let layout = Layout.create () in
  let p = Pipeline.create layout ~k ~s ~participants in
  let work = Layout.alloc layout ~name:"work" 0 in
  let get_costs = ref [] and rel_costs = ref [] in
  let procs =
    Array.map
      (fun pid ->
        ( pid,
          Test_util.protocol_cycles_counted (module Pipeline) p ~work ~cycles:2 ~get_costs
            ~rel_costs ))
      participants
  in
  List.iter
    (fun seed ->
      let _ = Test_util.run_random ~seed ~name_space:(Pipeline.name_space p) layout procs in
      ())
    (Test_util.seeds 6);
  List.iter
    (fun c ->
      Alcotest.(check bool) (Printf.sprintf "measured %d <= planned %d" c bound) true (c <= bound))
    !get_costs

(* Random hand-built chains through the dynamic combinator: any
   well-typed stage sequence must preserve uniqueness and land names in
   the final stage's space. *)
let prop_random_chains =
  Test_util.qtest ~count:40 "random Any-chains preserve uniqueness"
    QCheck2.Gen.(
      let* k = int_range 2 4 in
      let* s = int_range 30 800 in
      let* n_filters = int_range 0 2 in
      let* use_ma = bool in
      let* seed = int in
      return (k, s, n_filters, use_ma, seed))
    (fun (k, s, n_filters, use_ma, seed) ->
      let layout = Layout.create () in
      let stages = ref [] in
      let cur = ref s in
      for _ = 1 to n_filters do
        let p = Params.choose ~k ~s:!cur in
        let d = Params.name_space ~k p in
        (* only add the stage if it genuinely shrinks the space *)
        if d < !cur then begin
          let f =
            Renaming.Filter.create layout
              {
                k;
                d = p.d;
                z = p.z;
                s = !cur;
                participants = Array.init !cur Fun.id;
              }
          in
          stages := Protocol.Any.pack (module Renaming.Filter) f :: !stages;
          cur := d
        end
      done;
      if use_ma || !stages = [] then begin
        let m = Ma.create layout ~k ~s:!cur in
        stages := Protocol.Any.pack (module Ma) m :: !stages;
        cur := k * (k + 1) / 2
      end;
      let chained = Protocol.chain_all (List.rev !stages) in
      let d_final = Protocol.Any.name_space chained in
      let work = Layout.alloc layout ~name:"work" 0 in
      let pids = Array.init k (fun i -> i * (s / k)) in
      let procs =
        Array.map
          (fun pid ->
            (pid, Test_util.protocol_cycles (module Protocol.Any) chained ~work ~cycles:2))
          pids
      in
      let outcome, u = Test_util.run_random ~seed ~name_space:d_final layout procs in
      d_final = !cur && Test_util.all_completed outcome
      && Sim.Checks.max_concurrent u <= k)

let prop_pipeline_random =
  Test_util.qtest ~count:15 "pipeline uniqueness across random configs"
    QCheck2.Gen.(
      let* k = int_range 2 4 in
      let* s = int_range 1_000 200_000 in
      let* seed = int in
      return (k, s, seed))
    (fun (k, s, seed) ->
      let outcome, u = pipeline_run ~k ~s ~cycles:2 ~seed in
      Test_util.all_completed outcome && Sim.Checks.max_name u < k * (k + 1) / 2)

let () =
  Alcotest.run "pipeline"
    [
      ( "params",
        [
          Alcotest.test_case "choose satisfies requirements" `Quick test_choose;
          Alcotest.test_case "choose shrinks the space" `Quick test_choose_shrinks;
          Alcotest.test_case "the five 4.4 regimes" `Quick test_regimes;
        ] );
      ( "chain",
        [
          Alcotest.test_case "static chain" `Quick test_chain_static;
          Alcotest.test_case "dynamic chain" `Quick test_chain_any;
          Alcotest.test_case "chained uniqueness" `Slow test_chain_uniqueness;
          Alcotest.test_case "innermost-first release order" `Quick test_chain_release_order;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "stage structure" `Quick test_pipeline_stages;
          Alcotest.test_case "tiny source space" `Quick test_pipeline_small_source;
          Alcotest.test_case "solo" `Quick test_pipeline_solo;
          Alcotest.test_case "uniqueness" `Slow test_pipeline_uniqueness;
          Alcotest.test_case "k=6 includes a filter stage" `Quick
            test_pipeline_with_filter_stage;
          Alcotest.test_case "k=6 uniqueness" `Slow test_pipeline_uniqueness_k6;
          Alcotest.test_case "parked process per tree level" `Slow
            test_parked_per_tree_level;
          Alcotest.test_case "S-independence" `Slow test_s_independence;
          Alcotest.test_case "plan mirrors pipeline" `Quick test_plan_mirrors_pipeline;
          Alcotest.test_case "plan bounds measured cost" `Slow test_plan_bounds_measured_cost;
        ] );
      ("property", [ prop_ceil_root; prop_pipeline_random; prop_random_chains ]);
    ]
