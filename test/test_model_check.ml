(* Regression suite for the model-check engine.  The reduced search
   (sleep-set POR + state cache) must agree with plain DFS on every
   verdict — on broken mutants AND on correct protocols — while
   exploring strictly fewer paths; violating or truncated runs must
   leave no suspended fiber behind; and every reported schedule,
   including [sample]'s, must replay. *)

open Shared_mem
module Mc = Sim.Model_check
module Mm = Renaming.Mutations.Mutant_mutex
module Msp = Renaming.Mutations.Mutant_splitter
module Mma = Renaming.Mutations.Mutant_ma

let reduced = { Mc.default_options with max_paths = 500_000 }

let plain =
  { Mc.por = false; cache_bound = 0; max_steps = 10_000; max_paths = 500_000 }

(* ----- builders (mirroring the mutation-suite harnesses) ----- *)

let mutex_builder variant ~cycles () : Mc.config =
  let layout = Layout.create () in
  let b = Mm.create layout variant in
  let work = Layout.alloc layout ~name:"work" 0 in
  let in_cs = ref 0 in
  let body dir (ops : Store.ops) =
    for _ = 1 to cycles do
      let slot = Mm.enter b ops ~dir in
      let rec spin n =
        if Mm.check b ops ~dir slot then begin
          Sim.Sched.emit (Sim.Event.Note ("cs", dir));
          ignore (ops.read work);
          Sim.Sched.emit (Sim.Event.Note ("cs_exit", dir))
        end
        else if n > 0 then spin (n - 1)
      in
      spin 6;
      Mm.release b ops ~dir slot
    done
  in
  {
    layout;
    procs = [| (0, body 0); (1, body 1) |];
    monitor =
      Sim.Sched.monitor
        ~on_event:(fun _ _ ev ->
          match ev with
          | Sim.Event.Note ("cs", _) ->
              incr in_cs;
              if !in_cs > 1 then raise (Mc.Violation "double CS")
          | Sim.Event.Note ("cs_exit", _) -> decr in_cs
          | _ -> ())
        ();
  }

let splitter_mutant_builder variant ~procs ~cycles () : Mc.config =
  let layout = Layout.create () in
  let sp = Msp.create layout variant in
  let work = Layout.alloc layout ~name:"work" 0 in
  let o = Sim.Checks.occupancy () in
  let body (ops : Store.ops) =
    for _ = 1 to cycles do
      Sim.Sched.emit (Sim.Event.Note ("begin", 0));
      let tok = Msp.enter sp ops in
      Sim.Sched.emit (Sim.Event.Note ("in", Msp.direction tok));
      ignore (ops.read work);
      Sim.Sched.emit (Sim.Event.Note ("out", Msp.direction tok));
      Msp.release sp ops tok;
      Sim.Sched.emit (Sim.Event.Note ("end", 0))
    done
  in
  {
    layout;
    procs = Array.init procs (fun p -> (p + 1, body));
    monitor = Sim.Checks.occupancy_monitor o;
  }

let splitter_builder ~procs ~cycles () : Mc.config =
  let layout = Layout.create () in
  let sp = Renaming.Splitter.create layout in
  let work = Layout.alloc layout ~name:"work" 0 in
  let o = Sim.Checks.occupancy () in
  {
    layout;
    procs = Array.init procs (fun p -> (p + 1, Test_util.splitter_cycles sp ~work cycles));
    monitor = Sim.Checks.occupancy_monitor o;
  }

let pf_mutex_builder ~cycles () : Mc.config =
  let layout = Layout.create () in
  let b = Renaming.Pf_mutex.create layout in
  let work = Layout.alloc layout ~name:"work" 0 in
  let in_cs = ref 0 in
  let body dir (ops : Store.ops) =
    for _ = 1 to cycles do
      let slot = Renaming.Pf_mutex.enter b ops ~dir in
      let rec spin n =
        if Renaming.Pf_mutex.check b ops ~dir slot then begin
          Sim.Sched.emit (Sim.Event.Note ("cs", dir));
          ignore (ops.read work);
          Sim.Sched.emit (Sim.Event.Note ("cs_exit", dir))
        end
        else if n > 0 then spin (n - 1)
      in
      spin 6;
      Renaming.Pf_mutex.release b ops ~dir slot
    done
  in
  {
    layout;
    procs = [| (0, body 0); (1, body 1) |];
    monitor =
      Sim.Sched.monitor
        ~on_event:(fun _ _ ev ->
          match ev with
          | Sim.Event.Note ("cs", _) ->
              incr in_cs;
              if !in_cs > 1 then raise (Mc.Violation "double CS")
          | Sim.Event.Note ("cs_exit", _) -> decr in_cs
          | _ -> ())
        ();
  }

let ma_mutant_builder () : Mc.config =
  let layout = Layout.create () in
  let m = Mma.create layout Mma.No_recheck ~k:2 ~s:3 in
  let work = Layout.alloc layout ~name:"work" 0 in
  let u = Sim.Checks.uniqueness ~name_space:(Mma.name_space m) () in
  let body (ops : Store.ops) =
    let lease = Mma.get_name m ops in
    Sim.Sched.emit (Sim.Event.Acquired (Mma.name_of m lease));
    ignore (ops.read work);
    Sim.Sched.emit (Sim.Event.Released (Mma.name_of m lease));
    Mma.release_name m ops lease
  in
  { layout; procs = [| (0, body); (2, body) |]; monitor = Sim.Checks.uniqueness_monitor u }

(* ----- verdict agreement: reduced search finds what plain DFS finds ----- *)

let agree name builder =
  let p = Mc.check ~options:plain builder in
  let r = Mc.check ~options:reduced builder in
  let verdict (rep : Mc.report) = rep.outcome.violation <> None in
  Alcotest.(check bool)
    (name ^ ": same verdict") (verdict p) (verdict r);
  (* the reduction must never be slower in paths *)
  Alcotest.(check bool)
    (Printf.sprintf "%s: reduced paths (%d) <= plain paths (%d)" name
       r.outcome.paths p.outcome.paths)
    true
    (r.outcome.paths <= p.outcome.paths);
  (* a reduced-search violation must be a real schedule of the system *)
  match r.outcome.violation with
  | None -> ()
  | Some v -> (
      match Mc.replay builder v.schedule with
      | Error _ -> ()
      | Ok () -> Alcotest.failf "%s: reduced violation does not replay" name)

let test_agree_mutants () =
  agree "mutex read-before-write" (mutex_builder Mm.Read_before_write ~cycles:1);
  agree "mutex no-yield" (mutex_builder Mm.No_yield ~cycles:1);
  agree "splitter no-interference-check"
    (splitter_mutant_builder Msp.No_interference_check ~procs:2 ~cycles:1);
  agree "ma no-recheck" ma_mutant_builder

let test_agree_correct () =
  let strictly_fewer ?(max_paths = 500_000) ?(plain_completes = true) name builder =
    let p = Mc.check ~options:{ plain with max_paths } builder in
    let r = Mc.check ~options:{ reduced with max_paths } builder in
    Test_util.check_no_violation (name ^ " (plain)") p.outcome;
    Test_util.check_no_violation (name ^ " (reduced)") r.outcome;
    Alcotest.(check bool)
      (name ^ ": plain complete") plain_completes p.outcome.complete;
    Alcotest.(check bool) (name ^ ": reduced complete") true r.outcome.complete;
    Alcotest.(check bool)
      (Printf.sprintf "%s: reduced paths (%d) < plain paths (%d)" name
         r.outcome.paths p.outcome.paths)
      true
      (r.outcome.paths < p.outcome.paths)
  in
  strictly_fewer "splitter l=2" (splitter_builder ~procs:2 ~cycles:1);
  (* plain DFS cannot even finish the 2-cycle handover within a
     million paths; the reduced search closes it exhaustively *)
  strictly_fewer ~max_paths:1_000_000 ~plain_completes:false "pf_mutex"
    (pf_mutex_builder ~cycles:2)

(* The occupancy monitor is history-dependent (its high-water mark
   feeds the violation threshold), which is exactly what the ordered
   event hash in the state fingerprint must protect: the reduced
   search may not cache away the interleaving that pushes occupancy
   over the limit. *)
let test_reduced_catches_advice_flip () =
  let builder = splitter_mutant_builder Msp.No_advice_flip ~procs:2 ~cycles:2 in
  let r = Mc.check ~options:{ Mc.default_options with max_paths = 2_000_000 } builder in
  match r.outcome.violation with
  | None ->
      Alcotest.failf "reduced search missed no-advice-flip (%d paths%s)"
        r.outcome.paths
        (if r.outcome.complete then ", complete" else "")
  | Some v -> (
      match Mc.replay builder v.schedule with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "violating schedule does not replay")

(* With the reductions on, the 3-process splitter is exhaustively
   checkable within the default budgets — far beyond plain DFS. *)
let test_splitter_l3_exhaustive () =
  let r = Mc.check (splitter_builder ~procs:3 ~cycles:1) in
  Test_util.check_no_violation "splitter l=3" r.outcome;
  Alcotest.(check bool) "complete" true r.outcome.complete;
  Alcotest.(check bool) "actually pruned something" true
    (r.stats.pruned_by_sleep > 0 || r.stats.pruned_by_cache > 0)

(* ----- sample: replayable schedules and run counting ----- *)

let test_sample_schedule_replays () =
  let builder = mutex_builder Mm.Turn_lost_on_release ~cycles:15 in
  match (Mc.sample ~seeds:(Test_util.seeds 4000) builder).violation with
  | None -> Alcotest.fail "sampling failed to catch turn-lost-on-release"
  | Some v -> (
      Alcotest.(check bool) "schedule recorded" true (v.schedule <> []);
      match Mc.replay ~max_steps:100_000 builder v.schedule with
      | Ok () -> Alcotest.fail "sampled schedule did not reproduce the violation"
      | Error v' ->
          (* sample prefixes the message with "[seed N] " *)
          let suffix = v'.message in
          let n = String.length v.message and m = String.length suffix in
          Alcotest.(check string)
            "same underlying violation" suffix
            (if n >= m then String.sub v.message (n - m) m else v.message))

let test_sample_counts_violating_run () =
  let builder () : Mc.config =
    let layout = Layout.create () in
    let c = Layout.alloc layout ~name:"c" 0 in
    let body (ops : Store.ops) =
      ignore (ops.read c);
      Sim.Sched.emit (Sim.Event.Note ("boom", 0))
    in
    {
      layout;
      procs = [| (0, body) |];
      monitor =
        Sim.Sched.monitor
          ~on_event:(fun _ _ _ -> raise (Mc.Violation "always")) ();
    }
  in
  let r = Mc.sample ~seeds:[ 1; 2; 3 ] builder in
  Alcotest.(check bool) "violation found" true (r.violation <> None);
  (* the violating run itself is a sampled path: 1, not 0 *)
  Alcotest.(check int) "violating run counted" 1 r.paths

(* ----- fiber hygiene: early exits must not abandon continuations ----- *)

(* [live] counts bodies that started but whose cleanup has not run;
   after any checker entry point returns it must be back to 0, whether
   paths ended by completion, violation, or truncation. *)
let leak_builder ~violating live () : Mc.config =
  let layout = Layout.create () in
  let c = Layout.alloc layout ~name:"c" 0 in
  let guarded f (ops : Store.ops) =
    incr live;
    Fun.protect ~finally:(fun () -> decr live) (fun () -> f ops)
  in
  let stepper (ops : Store.ops) =
    let v = ops.read c in
    ops.write c (v + 1);
    if violating && ops.read c = 2 then raise (Mc.Violation "reached 2")
  in
  let spinner (ops : Store.ops) =
    while ops.read c >= 0 do
      ()
    done
  in
  {
    layout;
    procs = [| (0, guarded stepper); (1, guarded stepper); (2, guarded spinner) |];
    monitor = Sim.Sched.no_monitor;
  }

let test_no_leak_on_violation () =
  let live = ref 0 in
  let r = Mc.explore ~max_steps:60 ~max_paths:100 (leak_builder ~violating:true live) in
  Alcotest.(check bool) "violation found" true (r.violation <> None);
  Alcotest.(check int) "all fibers unwound" 0 !live

let test_no_leak_on_truncation () =
  let live = ref 0 in
  let r = Mc.explore ~max_steps:30 ~max_paths:50 (leak_builder ~violating:false live) in
  Alcotest.(check bool) "no violation" true (r.violation = None);
  Alcotest.(check int) "all fibers unwound" 0 !live

let test_no_leak_under_reductions () =
  let live = ref 0 in
  let (_ : Mc.report) =
    Mc.check
      ~options:{ Mc.default_options with max_steps = 30; max_paths = 200 }
      (leak_builder ~violating:false live)
  in
  Alcotest.(check int) "all fibers unwound" 0 !live;
  let live' = ref 0 in
  let r = Mc.check ~options:{ Mc.default_options with max_steps = 60 }
      (leak_builder ~violating:true live')
  in
  Alcotest.(check bool) "violation found" true (r.outcome.violation <> None);
  Alcotest.(check int) "all fibers unwound after violation" 0 !live'

let test_sample_does_not_leak () =
  let live = ref 0 in
  let r = Mc.sample ~max_steps:40 ~seeds:[ 3; 5; 8 ] (leak_builder ~violating:false live) in
  Alcotest.(check bool) "runs counted" true (r.paths = 3);
  Alcotest.(check int) "all fibers unwound" 0 !live

(* ----- observability ----- *)

let test_report_json () =
  let r = Mc.check ~options:reduced (splitter_builder ~procs:2 ~cycles:1) in
  let j = Mc.report_json ~label:"splitter_l2" r in
  List.iter
    (fun needle ->
      let contains s sub =
        let n = String.length s and m = String.length sub in
        let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool) (needle ^ " present") true (contains j needle))
    [ "\"label\":\"splitter_l2\""; "\"paths\":"; "\"states\":"; "\"pruned_by_sleep\":";
      "\"pruned_by_cache\":"; "\"paths_per_sec\":" ]

let () =
  Alcotest.run "model_check"
    [
      ( "agreement",
        [
          Alcotest.test_case "mutants: reduced = plain verdict" `Slow test_agree_mutants;
          Alcotest.test_case "correct: no violation, strictly fewer paths" `Slow
            test_agree_correct;
          Alcotest.test_case "reduced catches no-advice-flip" `Slow
            test_reduced_catches_advice_flip;
          Alcotest.test_case "splitter l=3 exhaustive under reductions" `Slow
            test_splitter_l3_exhaustive;
        ] );
      ( "sample",
        [
          Alcotest.test_case "violating schedule replays" `Slow test_sample_schedule_replays;
          Alcotest.test_case "violating run is counted" `Quick test_sample_counts_violating_run;
        ] );
      ( "fiber hygiene",
        [
          Alcotest.test_case "no leak on violation" `Quick test_no_leak_on_violation;
          Alcotest.test_case "no leak on truncation" `Quick test_no_leak_on_truncation;
          Alcotest.test_case "no leak under reductions" `Quick test_no_leak_under_reductions;
          Alcotest.test_case "no leak while sampling" `Quick test_sample_does_not_leak;
        ] );
      ("observability", [ Alcotest.test_case "json report" `Quick test_report_json ]);
    ]
