(* Property layer for the splitter: structurally generated fault plans
   (QCheck2's integrated shrinking shrinks the plan itself, not just a
   seed) against the campaign's splitter harness, plus the shrinking
   pipeline end-to-end on a splitter mutant — the minimal violating
   schedule is replayed under a Trace and printed, which is exactly the
   artifact a bug report wants. *)

module F = Sim.Faults
module MC = Sim.Model_check
module Gen = QCheck2.Gen

(* ----- structural plan generator ----- *)

let gen_trigger tags =
  Gen.oneof
    [
      Gen.map (fun n -> F.At_access n) (Gen.int_bound 40);
      Gen.map2
        (fun tag occ -> F.On_note { tag; value = None; occurrence = occ + 1 })
        (Gen.oneofl tags) (Gen.int_bound 3);
      Gen.map (fun n -> F.On_acquire (n + 1)) (Gen.int_bound 3);
    ]

let gen_action =
  Gen.oneof
    [
      Gen.return F.Park;
      Gen.map (fun n -> F.Stall (n + 1)) (Gen.int_bound 60);
      Gen.map (fun n -> F.Slow (n + 1)) (Gen.int_bound 6);
    ]

let gen_fault ~nprocs tags =
  Gen.map3
    (fun victim trigger action -> { F.victim; trigger; action })
    (Gen.int_bound (nprocs - 1))
    (gen_trigger tags) gen_action

(* Raw generated plans may repeat victims or cover every process;
   [sanitize] keeps the first fault per victim and always leaves at
   least one process fault-free, preserving the campaign's invariants
   under shrinking. *)
let sanitize ~nprocs plan =
  let seen = Hashtbl.create 8 in
  let plan =
    List.filter
      (fun f ->
        if Hashtbl.mem seen f.F.victim then false
        else begin
          Hashtbl.add seen f.F.victim ();
          true
        end)
      plan
  in
  if List.length plan >= nprocs then List.tl plan else plan

let gen_plan ~nprocs tags =
  Gen.map (sanitize ~nprocs) (Gen.list_size (Gen.int_bound nprocs) (gen_fault ~nprocs tags))

(* ----- the correct splitter survives every generated adversity ----- *)

let splitter = Option.get (Campaign.find "splitter")
let mutant = Option.get (Campaign.find "mutant:splitter-no-interference")

let prop_splitter_survives =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:300 ~name:"correct splitter survives random plans"
       Gen.(
         pair
           (gen_plan ~nprocs:splitter.Campaign.nprocs splitter.Campaign.tags)
           (int_bound 1_000_000))
       (fun (plan, sched_seed) ->
         match Campaign.run_once splitter plan ~sched_seed with
         | None -> true
         | Some (msg, _) ->
             QCheck2.Test.fail_reportf "splitter violated under %s: %s"
               (F.to_string plan) msg))

(* Plans are also exercised through the model checker: park-only plans
   keep the reductions on, and bounded exhaustive search over the
   splitter harness must stay clean for any single parked victim.  An
   early park prunes the space to something small; a trigger that never
   fires degenerates to the full 3-process search, so the path budget
   caps the cost while still exploring tens of thousands of
   interleavings per case. *)
let prop_splitter_checked_parked =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:12 ~name:"splitter exhaustive under single park"
       Gen.(pair (int_bound (splitter.Campaign.nprocs - 1)) (int_bound 8))
       (fun (victim, acc) ->
         let faults = [ { F.victim; trigger = F.At_access acc; action = F.Park } ] in
         let options = { MC.default_options with max_paths = 20_000 } in
         let r = MC.check ~options ~faults splitter.Campaign.builder in
         match r.outcome.violation with
         | None -> true
         | Some v ->
             QCheck2.Test.fail_reportf "splitter violated (park@p%d:acc%d): %s" victim acc
               v.message))

(* ----- shrinking end-to-end on a mutant ----- *)

let test_shrink_and_print_trace () =
  let tg = mutant in
  let o = Campaign.run_target tg in
  match o.finding with
  | None -> Alcotest.fail "splitter mutant survived the matrix"
  | Some f -> (
      match Campaign.shrink tg f with
      | None -> Alcotest.fail "kill did not shrink"
      | Some m ->
          Alcotest.(check bool) "shrunk schedule is no longer" true
            (List.length m.schedule <= List.length f.schedule);
          (* replay the minimal schedule under a Trace and print it:
             the human-readable witness for the violation *)
          let cfg = tg.builder () in
          let tr = Sim.Trace.create () in
          let ctrl = F.controller f.plan in
          let monitor =
            Sim.Checks.combine [ cfg.monitor; F.monitor ctrl; Sim.Trace.monitor tr ]
          in
          let t = Sim.Sched.create ~monitor cfg.layout cfg.procs in
          let sched = ref m.schedule in
          let strat : Sim.Sched.strategy =
           fun _ en ->
            match !sched with
            | c :: rest ->
                sched := rest;
                en.(if c >= 0 && c < Array.length en then c else 0)
            | [] -> en.(0)
          in
          let message =
            match F.run ctrl t strat with
            | (_ : Sim.Sched.outcome) -> None
            | exception MC.Violation msg -> Some msg
          in
          Sim.Sched.abort t;
          (match message with
          | None -> Alcotest.fail "minimal schedule no longer violates under trace"
          | Some msg ->
              Fmt.pr "@.minimal counterexample for %s@." tg.name;
              Fmt.pr "  plan      %s@." (F.to_string f.plan);
              Fmt.pr "  schedule  [%s]@."
                (String.concat ";" (List.map string_of_int m.schedule));
              Fmt.pr "  violation %s@." msg;
              Fmt.pr "  trace:@.%a@."
                (Fmt.list ~sep:Fmt.cut (fun ppf it -> Fmt.pf ppf "    %a" Sim.Trace.pp_item it))
                (Sim.Trace.items tr));
          (* and the printed recipe must replay deterministically *)
          match Campaign.replay tg f.plan m.schedule with
          | Error _ -> ()
          | Ok () -> Alcotest.fail "printed recipe does not replay")

let () =
  Alcotest.run "prop_splitter"
    [
      ( "splitter",
        [
          prop_splitter_survives;
          prop_splitter_checked_parked;
          Alcotest.test_case "mutant kill shrinks, trace printed" `Slow
            test_shrink_and_print_trace;
        ] );
    ]
