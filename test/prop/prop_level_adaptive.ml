(* Adaptivity of the LevelArray backend as a property: over generated
   workloads whose live set grows and shrinks (staggered arrivals,
   random holds and idle gaps, early leavers), every acquisition's name
   AND shared-access cost are bounded by functions of the contention
   [m] alone — never of the capacity [k] the instance was created for.
   The same workload is also replayed against k = 16 and k = 48 under
   the same seed and must produce the {e identical} acquisition trace:
   capacity must be invisible to any run that never exhausts it.

   Bound sketch (see level_array.mli): a prober leaves level [i]
   (capacity [c_i = 2^(i+1)]) only after burning a failure budget of
   [c_i / 2], and every failed probe is chargeable to a concurrently
   live process, so with [m] live processes it settles by the first
   level whose budget can absorb them.  Names below that level sum to
   [c_i - 2 < 8m], the level itself holds [< 8m] more; each failure
   costs at most 2 shared accesses (read + lost test&set) and the claim
   costs 2.  We assert [name < 10m] and [cost <= 12m + 4] — slack over
   the analytic constants, still flat in [m] and independent of [k] —
   and let the generator hunt for counterexamples. *)

open Shared_mem
module La = Renaming.Level_array

type acq = { proc : int; cycle : int; name : int; cost : int }

(* Run [m] processes with staggered arrivals/departures against a
   LevelArray of capacity [kcap]; returns the acquisition trace (in
   per-process program order) plus the run outcome. *)
let run_trace ~kcap ~m ~cycles ~seed =
  let layout = Layout.create () in
  let la = La.create layout ~k:kcap in
  let work = Layout.alloc layout ~name:"work" 0 in
  let trace = ref [] in
  let body i (ops : Store.ops) =
    let rng = Sim.Rng.make (seed + (i * 7919)) in
    (* staggered arrival: the live set grows as processes join … *)
    for _ = 1 to i * (1 + Sim.Rng.int rng 3) do
      ignore (ops.read work)
    done;
    (* … and shrinks as the early arrivals run out of cycles *)
    let my_cycles = max 1 (cycles - (i / 2)) in
    for c = 1 to my_cycles do
      let lease = La.get_name la ops in
      trace :=
        { proc = i; cycle = c; name = La.name_of la lease; cost = La.accesses lease }
        :: !trace;
      Sim.Sched.emit (Sim.Event.Acquired (La.name_of la lease));
      for _ = 0 to Sim.Rng.int rng 4 do
        ignore (ops.read work)
      done;
      Sim.Sched.emit (Sim.Event.Released (La.name_of la lease));
      La.release_name la ops lease;
      for _ = 1 to Sim.Rng.int rng 6 do
        ignore (ops.read work)
      done
    done
  in
  let procs = Array.init m (fun i -> (i, body i)) in
  let u = Sim.Checks.uniqueness ~name_space:(La.name_space la) () in
  let t = Sim.Sched.create ~monitor:(Sim.Checks.uniqueness_monitor u) layout procs in
  let outcome = Sim.Sched.run ~max_steps:500_000 t (Sim.Sched.random (Sim.Rng.make seed)) in
  (outcome, List.rev !trace)

let name_bound m = 10 * m
let cost_bound m = (12 * m) + 4

let gen_workload =
  QCheck2.Gen.(
    triple (int_range 1 6) (int_range 1 4) (int_bound 10_000_000)
    |> map (fun (m, cycles, seed) -> (m, cycles, seed)))

let print_workload (m, cycles, seed) =
  Printf.sprintf "{m=%d; cycles=%d; seed=%d}" m cycles seed

let check_bounds ~kcap (m, cycles, seed) =
  let outcome, trace = run_trace ~kcap ~m ~cycles ~seed in
  if outcome.Sim.Sched.truncated then
    QCheck2.Test.fail_reportf "k=%d m=%d seed=%d: run truncated" kcap m seed;
  if not (Array.for_all Fun.id outcome.Sim.Sched.completed) then
    QCheck2.Test.fail_reportf "k=%d m=%d seed=%d: a process never finished" kcap m seed;
  List.iter
    (fun a ->
      if a.name >= name_bound m then
        QCheck2.Test.fail_reportf
          "k=%d m=%d seed=%d: p%d cycle %d got name %d >= %d — cost grew with \
           capacity, not contention"
          kcap m seed a.proc a.cycle a.name (name_bound m);
      if a.cost > cost_bound m then
        QCheck2.Test.fail_reportf
          "k=%d m=%d seed=%d: p%d cycle %d spent %d accesses > %d" kcap m seed a.proc
          a.cycle a.cost (cost_bound m))
    trace;
  trace

let prop_contention_bounded =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:250
       ~name:"names and accesses bounded by contention m, any capacity"
       ~print:print_workload gen_workload
       (fun w ->
         ignore (check_bounds ~kcap:16 w);
         ignore (check_bounds ~kcap:48 w);
         true))

let prop_capacity_invisible =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:250
       ~name:"k=16 and k=48 produce the identical acquisition trace"
       ~print:print_workload gen_workload
       (fun w ->
         let t16 = check_bounds ~kcap:16 w in
         let t48 = check_bounds ~kcap:48 w in
         if t16 <> t48 then
           QCheck2.Test.fail_reportf
             "%s: traces diverge (%d vs %d acquisitions) — capacity leaked into \
              behaviour"
             (print_workload w) (List.length t16) (List.length t48);
         true))

(* The sharp solo case: with zero contention every acquisition is slot
   0 of level 0 at exactly 2 shared accesses (one read, one test&set),
   whatever the capacity. *)
let prop_solo_constant =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60 ~name:"solo acquisitions cost exactly 2, name 0"
       QCheck2.Gen.(pair (int_range 1 8) (int_bound 1_000_000))
       (fun (cycles, seed) ->
         List.for_all
           (fun kcap ->
             let _, trace = run_trace ~kcap ~m:1 ~cycles ~seed in
             List.length trace = cycles
             && List.for_all (fun a -> a.name = 0 && a.cost = 2) trace)
           [ 2; 16; 48 ]))

let () =
  Alcotest.run "prop_level_adaptive"
    [
      ( "adaptivity",
        [ prop_contention_bounded; prop_capacity_invisible; prop_solo_constant ] );
    ]
