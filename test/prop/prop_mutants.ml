(* Discrimination, property-style: for every mutant the *negated*
   property "this mutant survives generated fault campaigns" is handed
   to QCheck2, and the test passes only when QCheck finds a
   counterexample (Test_fail) — i.e. when some generated (plan,
   schedule) pair kills the mutant.  A mutant that survives the whole
   property run means the fault layer cannot discriminate it from a
   correct protocol, which is exactly the failure this suite exists to
   catch.  The QCheck random state is pinned, so runs are
   reproducible. *)

module F = Sim.Faults

let mutants () =
  List.filter (fun (tg : Campaign.target) -> not tg.correct) (Campaign.targets ())

let negated_case (tg : Campaign.target) =
  let survives =
    QCheck2.Test.make ~count:80 ~name:(tg.name ^ " survives")
      QCheck2.Gen.(int_bound 10_000_000)
      (fun seed ->
        (* same shape as the campaign matrix: one generated plan, then
           sched_per_plan derived schedule seeds *)
        let plan =
          F.gen
            (Sim.Rng.make (seed lxor 0x0F_AC_ED))
            ~nprocs:tg.nprocs ~tags:tg.tags ~max_access:tg.max_access ()
        in
        List.for_all
          (fun j -> Campaign.run_once tg plan ~sched_seed:(seed + (j * 31)) = None)
          (List.init tg.sched_per_plan Fun.id))
  in
  Alcotest.test_case tg.name `Slow (fun () ->
      match
        QCheck2.Test.check_exn ~rand:(Random.State.make [| 0xD15C; 0x4A11 |]) survives
      with
      | () ->
          Alcotest.failf
            "%s survived 80 generated fault campaigns — the fault layer no longer \
             discriminates this mutant"
            tg.name
      | exception QCheck2.Test.Test_fail (_, _) -> ())

let () =
  Alcotest.run "prop_mutants"
    [ ("every mutant must die", List.map negated_case (mutants ())) ]
