(* Paper invariants as properties: no correct protocol harness may be
   hurt by any generated (fault plan, schedule) pair.  Fault plans are
   pure scheduling restrictions, so safety (unique names, splitter
   occupancy, mutex exclusion, access bounds) and wait-freedom of the
   non-faulty processes must hold for every plan — these properties are
   the implementation-side mirror of Theorems 5 and 10. *)

module F = Sim.Faults

let prop_target_survives ?(count = 120) name =
  let tg =
    match Campaign.find name with
    | Some tg -> tg
    | None -> Alcotest.failf "unknown campaign target %s" name
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name:(name ^ " survives generated fault campaigns")
       QCheck2.Gen.(pair (int_bound 10_000_000) (int_bound 1_000_000))
       (fun (plan_seed, sched_seed) ->
         let plan =
           F.gen
             (Sim.Rng.make plan_seed)
             ~nprocs:tg.Campaign.nprocs ~tags:tg.Campaign.tags
             ~max_access:tg.Campaign.max_access ()
         in
         match Campaign.run_once tg plan ~sched_seed with
         | None -> true
         | Some (msg, _) ->
             QCheck2.Test.fail_reportf "%s violated under %s (sched_seed %d): %s" name
               (F.to_string plan) sched_seed msg))

let () =
  Alcotest.run "prop_protocols"
    [
      ( "correct targets",
        [
          prop_target_survives "splitter";
          prop_target_survives "split";
          prop_target_survives "pf_mutex";
          prop_target_survives "ma";
          prop_target_survives ~count:60 "filter";
          prop_target_survives ~count:40 "pipeline";
        ] );
    ]
