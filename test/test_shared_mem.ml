open Shared_mem

let test_alloc () =
  let l = Layout.create () in
  let a = Layout.alloc l ~name:"a" 7 in
  let b = Layout.alloc l ~name:"b" (-1) in
  let arr = Layout.alloc_array l ~name:"y" 3 0 in
  Alcotest.(check int) "size" 5 (Layout.size l);
  Alcotest.(check int) "a id" 0 (Cell.id a);
  Alcotest.(check int) "b id" 1 (Cell.id b);
  Alcotest.(check string) "array names" "y[2]" (Cell.name arr.(2));
  Alcotest.(check (array int)) "initials" [| 7; -1; 0; 0; 0 |] (Layout.initial_values l);
  Alcotest.(check string) "cell_name" "b" (Layout.cell_name l 1);
  Alcotest.(check bool) "equal" true (Cell.equal a a);
  Alcotest.(check bool) "distinct" false (Cell.equal a b)

let test_cell_name_out_of_range () =
  let l = Layout.create () in
  Alcotest.check_raises "oob" (Invalid_argument "Layout.cell_name") (fun () ->
      ignore (Layout.cell_name l 0))

let test_seq_store () =
  let l = Layout.create () in
  let a = Layout.alloc l ~name:"a" 5 in
  let mem = Store.seq_create l in
  let ops = Store.seq_ops mem ~pid:3 in
  Alcotest.(check int) "pid" 3 ops.pid;
  Alcotest.(check int) "initial" 5 (ops.read a);
  ops.write a 9;
  Alcotest.(check int) "written" 9 (ops.read a);
  Alcotest.(check int) "peek" 9 (Store.seq_get mem a);
  Store.seq_set mem a 2;
  Alcotest.(check int) "poked" 2 (ops.read a)

let test_counting () =
  let l = Layout.create () in
  let a = Layout.alloc l 0 in
  let mem = Store.seq_create l in
  let c = Store.counter () in
  let ops = Store.counting c (Store.seq_ops mem ~pid:0) in
  ops.write a 1;
  let (_ : int) = ops.read a in
  let (_ : int) = ops.read a in
  Alcotest.(check int) "reads" 2 (Store.reads c);
  Alcotest.(check int) "writes" 1 (Store.writes c);
  Alcotest.(check int) "accesses" 3 (Store.accesses c);
  Store.reset c;
  Alcotest.(check int) "reset" 0 (Store.accesses c)

let prop_layout_initials =
  Test_util.qtest "initial_values reflects every alloc"
    QCheck2.Gen.(list_size (int_range 1 100) (int_range (-1000) 1000))
    (fun inits ->
      let l = Layout.create () in
      let cells = List.map (fun v -> Layout.alloc l v) inits in
      let snapshot = Layout.initial_values l in
      List.for_all2 (fun c v -> snapshot.(Cell.id c) = v && Cell.init c = v) cells inits)

let prop_seq_store_last_write_wins =
  Test_util.qtest "sequential store: last write wins"
    QCheck2.Gen.(list_size (int_range 1 50) (pair (int_range 0 9) small_int))
    (fun writes ->
      let l = Layout.create () in
      let cells = Layout.alloc_array l 10 0 in
      let mem = Store.seq_create l in
      let ops = Store.seq_ops mem ~pid:0 in
      let expected = Array.make 10 0 in
      List.iter
        (fun (i, v) ->
          ops.write cells.(i) v;
          expected.(i) <- v)
        writes;
      Array.for_all2 (fun c v -> ops.read c = v) cells expected)

let () =
  Alcotest.run "shared_mem"
    [
      ( "layout",
        [
          Alcotest.test_case "alloc" `Quick test_alloc;
          Alcotest.test_case "cell_name out of range" `Quick test_cell_name_out_of_range;
        ] );
      ( "store",
        [
          Alcotest.test_case "seq store" `Quick test_seq_store;
          Alcotest.test_case "counting wrapper" `Quick test_counting;
        ] );
      ("property", [ prop_layout_initials; prop_seq_store_last_write_wins ]);
    ]
