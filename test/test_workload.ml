open Shared_mem
module Split = Renaming.Split
module Filter = Renaming.Filter

let test_specs () =
  let c = Workload.churn ~cycles:5 () in
  Alcotest.(check int) "churn cycles" 5 c.cycles;
  Alcotest.(check int) "churn hold" 1 (c.hold 3);
  Alcotest.(check int) "churn delay" 0 (c.delay 0);
  let st = Workload.staggered ~cycles:4 ~stride:10 ~index:3 () in
  Alcotest.(check int) "stagger first delay" 30 (st.delay 0);
  Alcotest.(check int) "stagger later delay" 0 (st.delay 1);
  let b1 = Workload.bursty ~cycles:6 ~seed:11 in
  let b2 = Workload.bursty ~cycles:6 ~seed:11 in
  List.iter
    (fun i ->
      Alcotest.(check int) "bursty deterministic hold" (b1.hold i) (b2.hold i);
      Alcotest.(check int) "bursty deterministic delay" (b1.delay i) (b2.delay i);
      Alcotest.(check bool) "hold range" true (b1.hold i >= 0 && b1.hold i < 8);
      Alcotest.(check bool) "delay range" true (b1.delay i >= 0 && b1.delay i < 16))
    [ 0; 1; 2; 3; 4; 5 ]

let split_setup ~k =
  let layout = Layout.create () in
  let sp = Split.create layout ~k in
  let work = Layout.alloc layout ~name:"work" 0 in
  (layout, sp, work)

let test_body_under_sim () =
  let layout, sp, work = split_setup ~k:3 in
  let procs =
    Array.init 3 (fun i ->
        ( i * 1000,
          Workload.body (module Split) sp ~work (Workload.bursty ~cycles:4 ~seed:i) ))
  in
  List.iter
    (fun seed ->
      let outcome, _ = Test_util.run_random ~seed ~name_space:9 layout procs in
      Alcotest.(check bool) "completes" true (Test_util.all_completed outcome))
    (Test_util.seeds 20)

let test_staggered_under_sim () =
  let layout, sp, work = split_setup ~k:4 in
  let procs =
    Array.init 4 (fun i ->
        ( i,
          Workload.body (module Split) sp ~work
            (Workload.staggered ~cycles:3 ~stride:8 ~index:i ()) ))
  in
  let outcome, u = Test_util.run_random ~seed:99 ~name_space:27 layout procs in
  Alcotest.(check bool) "completes" true (Test_util.all_completed outcome);
  Alcotest.(check bool) "used some names" true (Sim.Checks.names_used u > 0)

(* The long-lived scenario from the introduction: a pool of 12 client
   identities multiplexed over 3 execution slots (at most 3 concurrent,
   12 over time).  FILTER must declare all 12 as participants. *)
let test_rotating_pool_filter () =
  let k = 3 and d = 1 and z = 5 and s = 25 in
  let pool = Array.init 12 (fun i -> i * 2) in
  let layout = Layout.create () in
  let f = Filter.create layout { k; d; z; s; participants = pool } in
  let work = Layout.alloc layout ~name:"work" 0 in
  let slot i =
    let pids = Array.init 4 (fun j -> pool.(((j * 3) + i) mod 12)) in
    Workload.rotating_body (module Filter) f ~work ~pids (Workload.churn ~cycles:8 ())
  in
  List.iter
    (fun seed ->
      let procs = Array.init 3 (fun i -> (pool.(i), slot i)) in
      let outcome, u =
        Test_util.run_random ~seed ~name_space:(Filter.name_space f) layout procs
      in
      Alcotest.(check bool) "completes" true (Test_util.all_completed outcome);
      Alcotest.(check bool) "max 3 concurrent" true (Sim.Checks.max_concurrent u <= 3))
    (Test_util.seeds 25)

let test_rotating_requires_pids () =
  let layout, sp, work = split_setup ~k:2 in
  let mem = Store.seq_create layout in
  let ops = Store.seq_ops mem ~pid:0 in
  Alcotest.check_raises "empty pool" (Invalid_argument "Workload.rotating_body: no pids")
    (fun () ->
      Workload.rotating_body (module Split) sp ~work ~pids:[||] (Workload.churn ~cycles:1 ())
        ops)

(* Bursty bodies must be replayable: the model checker re-executes
   paths, so two runs with the same schedule must behave identically. *)
let test_bursty_model_check_safe () =
  let builder () : Sim.Model_check.config =
    let layout, sp, work = split_setup ~k:2 in
    let u = Sim.Checks.uniqueness ~name_space:3 () in
    {
      layout;
      procs =
        Array.init 2 (fun i ->
            (i, Workload.body (module Split) sp ~work (Workload.bursty ~cycles:1 ~seed:5)));
      monitor = Sim.Checks.uniqueness_monitor u;
    }
  in
  let r = Sim.Model_check.explore ~max_paths:100_000 builder in
  Test_util.check_no_violation "bursty under model checker" r

(* ----- server churn family ----- *)

let test_zipf_shape () =
  let s = 1000 and n = 20_000 in
  let z = Workload.zipf ~s ~seed:7 () in
  let counts = Array.make s 0 in
  for i = 0 to n - 1 do
    let v = z i in
    Alcotest.(check bool) "in range" true (v >= 0 && v < s);
    counts.(v) <- counts.(v) + 1
  done;
  let hottest = Array.fold_left max 0 counts in
  (* theta=0.99 over 1000 names gives the hot name ~12% of the draws;
     uniform would give 0.1% — just require an order-of-magnitude skew *)
  Alcotest.(check bool) "skewed" true (hottest > n / 50);
  (* pure function of (seed, i): replays identically *)
  let z' = Workload.zipf ~s ~seed:7 () in
  for i = 0 to 200 do
    Alcotest.(check int) "deterministic" (z i) (z' i)
  done

let test_zipf_streams_share_hot_names () =
  let s = 500 and n = 5_000 in
  let top stream =
    let z = Workload.zipf ~s ~seed:11 ~stream () in
    let counts = Array.make s 0 in
    for i = 0 to n - 1 do
      counts.(z i) <- counts.(z i) + 1
    done;
    let best = ref 0 in
    Array.iteri (fun v c -> if c > counts.(!best) then best := v) counts;
    !best
  in
  (* distinct streams draw independent sequences... *)
  let za = Workload.zipf ~s ~seed:11 ~stream:0 () in
  let zb = Workload.zipf ~s ~seed:11 ~stream:1 () in
  let differs = ref false in
  for i = 0 to 100 do
    if za i <> zb i then differs := true
  done;
  Alcotest.(check bool) "streams are independent" true !differs;
  (* ...but agree on which name is hottest (shared scramble): this is
     what makes concurrent clients contend on the same names *)
  Alcotest.(check int) "same hottest name" (top 0) (top 1)

let test_zipf_rejects () =
  Alcotest.check_raises "s < 1" (Invalid_argument "Workload.zipf: s < 1") (fun () ->
      ignore (Workload.zipf ~s:0 ~seed:1 () 0));
  Alcotest.check_raises "theta out of range"
    (Invalid_argument "Workload.zipf: need 0 < theta < 1") (fun () ->
      ignore (Workload.zipf ~theta:1.0 ~s:10 ~seed:1 () 0))

let test_open_loop () =
  let a = Workload.open_loop ~rate:1000. ~seed:3 in
  Alcotest.(check (float 0.)) "starts at zero" 0. (a 0);
  (* strictly increasing, out-of-order queries answered from the memo *)
  let last = ref 0. in
  for i = 1 to 500 do
    let t = a i in
    Alcotest.(check bool) "monotone" true (t > !last);
    last := t
  done;
  Alcotest.(check (float 1e-9)) "memo stable" (a 250) (a 250);
  let b = Workload.open_loop ~rate:1000. ~seed:3 in
  Alcotest.(check (float 1e-9)) "deterministic across generators" (a 400) (b 400);
  (* mean inter-arrival ~ 1/rate: 500 arrivals at 1000/s span ~0.5 s *)
  Alcotest.(check bool) "rate roughly honoured" true (a 500 > 0.2 && a 500 < 1.2);
  let c = Workload.open_loop ~rate:0. ~seed:3 in
  Alcotest.(check (float 0.)) "closed-loop is constant zero" 0. (c 123)

let test_server_churn_spec () =
  let spec = Workload.server_churn ~s:64 ~requests:100 ~seed:9 ~client:2 () in
  Alcotest.(check int) "requests carried" 100 spec.Workload.requests;
  for i = 0 to 99 do
    let v = spec.Workload.source i in
    Alcotest.(check bool) "source in range" true (v >= 0 && v < 64)
  done;
  Alcotest.(check (float 0.)) "closed-loop by default" 0. (spec.Workload.arrival 50)

let () =
  Alcotest.run "workload"
    [
      ( "spec",
        [
          Alcotest.test_case "generators" `Quick test_specs;
          Alcotest.test_case "empty pool rejected" `Quick test_rotating_requires_pids;
        ] );
      ( "simulation",
        [
          Alcotest.test_case "bursty bodies" `Slow test_body_under_sim;
          Alcotest.test_case "staggered arrivals" `Quick test_staggered_under_sim;
          Alcotest.test_case "rotating pool over FILTER" `Slow test_rotating_pool_filter;
          Alcotest.test_case "bursty is model-check safe" `Slow test_bursty_model_check_safe;
        ] );
      ( "server churn",
        [
          Alcotest.test_case "zipf skew, range, determinism" `Quick test_zipf_shape;
          Alcotest.test_case "zipf streams share hot names" `Quick
            test_zipf_streams_share_hot_names;
          Alcotest.test_case "zipf rejects bad parameters" `Quick test_zipf_rejects;
          Alcotest.test_case "open-loop arrivals" `Quick test_open_loop;
          Alcotest.test_case "server_churn spec" `Quick test_server_churn_spec;
        ] );
    ]
