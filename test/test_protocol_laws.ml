(* Uniform laws every long-lived renaming protocol must satisfy,
   checked through the dynamic Protocol.Any interface.  The subjects
   are enumerated from the backend registry (Renaming.Backends), so a
   backend registered there is under every law the day it lands —
   unknown names get default sizes rather than being skipped. *)

open Shared_mem
module P = Renaming.Protocol

type subject = {
  label : string;
  build : unit -> Layout.t * P.Any.t * int array; (* layout, protocol, legal pids *)
  k : int;
  recoverable : bool;
}

(* Per-backend sizes: (k, s).  Backends not listed here are still
   tested, at the default size. *)
let sizes = [ ("filter", (3, 25)); ("ma", (3, 30)); ("pipeline", (3, 50_000)) ]
let default_size = (4, 100)

let registry_subjects =
  List.map
    (fun (b : Renaming.Backends.spec) ->
      let k, s = Option.value ~default:default_size (List.assoc_opt b.name sizes) in
      {
        label = Printf.sprintf "%s k=%d s=%d" b.name k s;
        k;
        recoverable = b.recoverable;
        build =
          (fun () ->
            let layout = Layout.create () in
            let pids = Renaming.Backends.default_pids ~k ~s in
            (layout, b.build layout ~k ~s ~participants:pids, pids));
      })
    (Renaming.Backends.all ())

(* Registry coverage that would otherwise be lost: the tight-z FILTER
   variant exercises a different fast-path shape. *)
let extra_subjects =
  [
    {
      label = "filter tight-z k=3 d=2 z=5 s=25";
      k = 3;
      recoverable = true;
      build =
        (fun () ->
          let layout = Layout.create () in
          let participants = [| 1; 9; 23 |] in
          let f =
            Renaming.Filter.create ~tight:true layout
              { k = 3; d = 2; z = 5; s = 25; participants }
          in
          (layout, P.Any.pack (module Renaming.Filter) f, participants));
    };
  ]

let subjects = registry_subjects @ extra_subjects

(* Wrap ops in a hard access budget so a protocol that spins on a
   leaked name fails the test instead of hanging it. *)
let bounded ~limit (ops : Store.ops) =
  let n = ref 0 in
  let tick () =
    incr n;
    if !n > limit then Alcotest.failf "access budget %d exceeded (leaked name?)" limit
  in
  {
    ops with
    read = (fun c -> tick (); ops.read c);
    write = (fun c v -> tick (); ops.write c v);
    rmw = (fun c f -> tick (); ops.rmw c f);
  }

let budget = 100_000

(* Law 1+2: sequential acquire/release cycles always give in-range
   names and the protocol stays usable (long-lived). *)
let law_sequential_reuse s =
  let layout, proto, pids = s.build () in
  let mem = Store.seq_create layout in
  let d = P.Any.name_space proto in
  for round = 1 to 4 do
    Array.iter
      (fun pid ->
        let ops = bounded ~limit:budget (Store.seq_ops mem ~pid) in
        let lease = P.Any.get_name proto ops in
        let name = P.Any.name_of proto lease in
        Alcotest.(check bool)
          (Printf.sprintf "%s: round %d name %d within [0,%d)" s.label round name d)
          true
          (name >= 0 && name < d);
        P.Any.release_name proto ops lease)
      pids
  done

(* Law 3: k processes holding simultaneously (no release in between)
   get k distinct names within the declared name space. *)
let law_simultaneous_distinct s =
  let layout, proto, pids = s.build () in
  let mem = Store.seq_create layout in
  let d = P.Any.name_space proto in
  let leases =
    Array.map
      (fun pid ->
        let ops = bounded ~limit:budget (Store.seq_ops mem ~pid) in
        (ops, P.Any.get_name proto ops))
      pids
  in
  let names = Array.map (fun (_, l) -> P.Any.name_of proto l) leases in
  Array.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: simultaneous name %d within [0,%d)" s.label n d)
        true (n >= 0 && n < d))
    names;
  let sorted = List.sort_uniq compare (Array.to_list names) in
  Alcotest.(check int) (s.label ^ ": simultaneous names distinct") s.k (List.length sorted);
  Array.iter (fun (ops, l) -> P.Any.release_name proto ops l) leases

(* Law 4: a released name really is back in the pool whatever order
   the holders let go in — full capacity is re-acquirable after both a
   LIFO and a FIFO release of all k names. *)
let law_release_order s =
  let layout, proto, pids = s.build () in
  let mem = Store.seq_create layout in
  let acquire_all () =
    Array.map
      (fun pid ->
        let ops = bounded ~limit:budget (Store.seq_ops mem ~pid) in
        (ops, P.Any.get_name proto ops))
      pids
  in
  let distinct leases =
    let names = Array.map (fun (_, l) -> P.Any.name_of proto l) leases in
    List.length (List.sort_uniq compare (Array.to_list names))
  in
  let release_in order leases =
    List.iter (fun i -> let ops, l = leases.(i) in P.Any.release_name proto ops l) order
  in
  let n = Array.length pids in
  let fifo = List.init n Fun.id in
  let lifo = List.rev fifo in
  List.iter
    (fun order ->
      let leases = acquire_all () in
      Alcotest.(check int) (s.label ^ ": distinct before release") s.k (distinct leases);
      release_in order leases)
    [ lifo; fifo ];
  (* pool is whole again *)
  let leases = acquire_all () in
  Alcotest.(check int) (s.label ^ ": distinct after mixed releases") s.k (distinct leases);
  release_in (List.rev (List.init n Fun.id)) leases

(* Law 5: uniqueness under concurrent random workloads. *)
let law_concurrent_uniqueness s =
  let _, proto0, _ = s.build () in
  let d = P.Any.name_space proto0 in
  List.iter
    (fun seed ->
      let layout, proto, pids = s.build () in
      let work = Layout.alloc layout ~name:"work" 0 in
      let procs =
        Array.mapi
          (fun i pid ->
            ( pid,
              Workload.body (module P.Any) proto ~work
                (Workload.bursty ~cycles:4 ~seed:(seed + i)) ))
          pids
      in
      let outcome, u = Test_util.run_random ~seed ~name_space:d layout procs in
      Alcotest.(check bool) (s.label ^ ": completes") true (Test_util.all_completed outcome);
      Alcotest.(check bool)
        (s.label ^ ": concurrency bound")
        true
        (Sim.Checks.max_concurrent u <= s.k))
    (Test_util.seeds 15)

(* Law 6: determinism — identical seeds give identical access totals. *)
let law_deterministic s =
  let run seed =
    let layout, proto, pids = s.build () in
    let work = Layout.alloc layout ~name:"work" 0 in
    let procs =
      Array.map
        (fun pid -> (pid, Workload.body (module P.Any) proto ~work (Workload.churn ~cycles:3 ())))
        pids
    in
    let outcome, _ = Test_util.run_random ~seed ~name_space:(P.Any.name_space proto) layout procs in
    outcome.total
  in
  List.iter
    (fun seed ->
      Alcotest.(check int) (s.label ^ ": deterministic replay") (run seed) (run seed))
    (Test_util.seeds 5)

(* Law 7: chainability (§4.4) — the protocol's destination names work
   as source names for a further stage, and the chain still hands out
   k distinct names. *)
let law_chainable s =
  let layout, proto, pids = s.build () in
  let tas = Renaming.Tas_baseline.create layout ~k:s.k in
  let chain = P.chain_any proto (P.Any.pack (module Renaming.Tas_baseline) tas) in
  Alcotest.(check int) (s.label ^ ": chain name space") s.k (P.Any.name_space chain);
  Alcotest.(check bool)
    (s.label ^ ": chain recovery availability")
    s.recoverable
    (P.Any.reset_available chain);
  let mem = Store.seq_create layout in
  let leases =
    Array.map
      (fun pid ->
        let ops = bounded ~limit:budget (Store.seq_ops mem ~pid) in
        (ops, P.Any.get_name chain ops))
      pids
  in
  let names = Array.map (fun (_, l) -> P.Any.name_of chain l) leases in
  Array.iter
    (fun n ->
      Alcotest.(check bool)
        (s.label ^ ": chain name in range")
        true
        (n >= 0 && n < s.k))
    names;
  Alcotest.(check int)
    (s.label ^ ": chain names distinct")
    s.k
    (List.length (List.sort_uniq compare (Array.to_list names)));
  Array.iter (fun (ops, l) -> P.Any.release_name chain ops l) leases

(* Law 8: reclaim-after-crash — resetting a dead holder's footprint on
   its behalf returns the name to service: afterwards all k processes
   (corpse included) can hold simultaneously again.  Protocols without
   a recovery hook must say so via reset_available. *)
let law_reclaim_after_crash s =
  let layout, proto, pids = s.build () in
  Alcotest.(check bool)
    (s.label ^ ": recovery availability")
    s.recoverable (P.Any.reset_available proto);
  if s.recoverable then begin
    let mem = Store.seq_create layout in
    let corpse = pids.(0) in
    let corpse_ops = bounded ~limit:budget (Store.seq_ops mem ~pid:corpse) in
    let dead_lease = P.Any.get_name proto corpse_ops in
    (* the corpse takes no further step; a reclaimer resets its
       footprint using the corpse's source name *)
    (match P.Any.reset_footprint with
    | Some reset -> reset proto corpse_ops dead_lease
    | None -> Alcotest.fail (s.label ^ ": reset_available but no hook"));
    let leases =
      Array.map
        (fun pid ->
          let ops = bounded ~limit:budget (Store.seq_ops mem ~pid) in
          (ops, P.Any.get_name proto ops))
        pids
    in
    let names = Array.map (fun (_, l) -> P.Any.name_of proto l) leases in
    Alcotest.(check int)
      (s.label ^ ": full capacity after reclaim")
      s.k
      (List.length (List.sort_uniq compare (Array.to_list names)));
    Array.iter (fun (ops, l) -> P.Any.release_name proto ops l) leases
  end

let cases law = List.map (fun s -> Alcotest.test_case s.label `Slow (fun () -> law s)) subjects

(* ----- Chain composition regressions (release ordering, recovery
   propagation) pinned with an instrumented probe protocol ----- *)

module Probe_proto = struct
  type t = { id : string; log : (string * int) list ref; space : int }
  type lease = int

  let make ~id ~log ~space = { id; log; space }
  let name_space t = t.space

  let get_name t (ops : Store.ops) =
    t.log := (t.id ^ ".get", ops.pid) :: !(t.log);
    ops.pid mod t.space

  let name_of _ lease = lease

  let release_name t (ops : Store.ops) _lease =
    t.log := (t.id ^ ".release", ops.pid) :: !(t.log)

  let reset_footprint =
    Some (fun t (ops : Store.ops) _lease -> t.log := (t.id ^ ".reset", ops.pid) :: !(t.log))
end

module Probe_noreset = struct
  include Probe_proto

  let reset_footprint = None
end

module Probe_chain = P.Chain (Probe_proto) (Probe_proto)
module Probe_chain_noreset = P.Chain (Probe_proto) (Probe_noreset)

let dummy_ops ~pid =
  let layout = Layout.create () in
  let _ = Layout.alloc layout ~name:"pad" 0 in
  Store.seq_ops (Store.seq_create layout) ~pid

let chain_release_order () =
  let log = ref [] in
  (* A maps pid 13 to 13 mod 7 = 6; B then sees pid 6 *)
  let a = Probe_proto.make ~id:"A" ~log ~space:7 in
  let b = Probe_proto.make ~id:"B" ~log ~space:5 in
  let c = Probe_chain.make a b in
  let ops = dummy_ops ~pid:13 in
  let lease = Probe_chain.get_name c ops in
  Alcotest.(check int) "chain name is B's" (6 mod 5) (Probe_chain.name_of c lease);
  Probe_chain.release_name c ops lease;
  (match Probe_chain.reset_footprint with
  | Some reset -> reset c ops lease
  | None -> Alcotest.fail "Chain(A)(B) with two hooks must compose them");
  Alcotest.(check (list (pair string int)))
    "acquire outer-first, release/reset innermost-first, inner pid = A-name"
    [
      ("A.get", 13);
      ("B.get", 6);
      (* release: B first, still holding the A-name *)
      ("B.release", 6);
      ("A.release", 13);
      (* reset composes the same way *)
      ("B.reset", 6);
      ("A.reset", 13);
    ]
    (List.rev !log)

let chain_reset_none_static () =
  (* pinned: a chain whose inner stage lacks a recovery hook has none
     itself — Option.is_none, not a hook that raises *)
  Alcotest.(check bool)
    "static Chain propagates None" true
    (Option.is_none Probe_chain_noreset.reset_footprint)

let chain_reset_none_dynamic () =
  let log = ref [] in
  let with_reset () =
    P.Any.pack (module Probe_proto) (Probe_proto.make ~id:"R" ~log ~space:7)
  in
  let without_reset () =
    P.Any.pack (module Probe_noreset) (Probe_proto.make ~id:"N" ~log ~space:7)
  in
  Alcotest.(check bool)
    "chain_any of two recoverable stages is recoverable" true
    (P.Any.reset_available (P.chain_any (with_reset ()) (with_reset ())));
  List.iter
    (fun (label, chain) ->
      Alcotest.(check bool) (label ^ " is not recoverable") false (P.Any.reset_available chain);
      (* and the dynamic hook refuses rather than half-resetting *)
      let ops = dummy_ops ~pid:3 in
      let lease = P.Any.get_name chain ops in
      match P.Any.reset_footprint with
      | None -> Alcotest.fail "Any.reset_footprint is statically Some"
      | Some reset ->
          Alcotest.check_raises (label ^ " reset raises")
            (Invalid_argument "Protocol.Any.reset_footprint: protocol has no recovery path")
            (fun () -> reset chain ops lease))
    [
      ("chain_any inner-noreset", P.chain_any (with_reset ()) (without_reset ()));
      ("chain_any outer-noreset", P.chain_any (without_reset ()) (with_reset ()));
      ( "chain_all mixed",
        P.chain_all [ with_reset (); without_reset (); with_reset () ] );
    ]

let chain_cases =
  [
    Alcotest.test_case "release ordering + inner pid" `Quick chain_release_order;
    Alcotest.test_case "reset None propagation (static)" `Quick chain_reset_none_static;
    Alcotest.test_case "reset None propagation (dynamic)" `Quick chain_reset_none_dynamic;
  ]

let () =
  Alcotest.run "protocol_laws"
    [
      ("sequential reuse", cases law_sequential_reuse);
      ("simultaneous holders distinct", cases law_simultaneous_distinct);
      ("release order independence", cases law_release_order);
      ("concurrent uniqueness", cases law_concurrent_uniqueness);
      ("deterministic", cases law_deterministic);
      ("chainable", cases law_chainable);
      ("reclaim after crash", cases law_reclaim_after_crash);
      ("chain composition", chain_cases);
    ]
