(* Trace-ring accounting, timeline rendering, and span-profiled replay
   of model-checker schedules. *)

open Shared_mem
module Mc = Sim.Model_check
module Mma = Renaming.Mutations.Mutant_ma

let is_infix sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let is_suffix sub s =
  let n = String.length sub and m = String.length s in
  n <= m && String.sub s (m - n) n = sub

(* ----- ring overflow: bounded and unbounded rings, same run ----- *)

let test_ring_overflow () =
  let layout = Layout.create () in
  let c = Layout.alloc layout ~name:"c" 0 in
  let body (ops : Store.ops) =
    for i = 1 to 10 do
      ops.write c i;
      Sim.Sched.emit (Sim.Event.Note ("tick", i))
    done
  in
  let small = Sim.Trace.create ~capacity:4 () in
  let full = Sim.Trace.create () in
  let t =
    Sim.Sched.create
      ~monitor:(Sim.Checks.combine [ Sim.Trace.monitor small; Sim.Trace.monitor full ])
      layout [| (0, body) |]
  in
  ignore (Sim.Sched.run t Sim.Sched.round_robin);
  (* 10 writes + 10 notes *)
  Alcotest.(check int) "full ring holds everything" 20 (Sim.Trace.length full);
  Alcotest.(check int) "full ring dropped nothing" 0 (Sim.Trace.dropped full);
  Alcotest.(check int) "bounded ring holds its capacity" 4 (Sim.Trace.length small);
  Alcotest.(check int) "dropped = recorded - capacity" 16 (Sim.Trace.dropped small);
  let show tr = List.map (Format.asprintf "%a" Sim.Trace.pp_item) (Sim.Trace.items tr) in
  let all = show full in
  let tail = List.filteri (fun i _ -> i >= List.length all - 4) all in
  Alcotest.(check (list string)) "ring keeps the newest items" tail (show small);
  Sim.Trace.clear small;
  Alcotest.(check int) "clear resets length" 0 (Sim.Trace.length small);
  Alcotest.(check int) "clear resets dropped" 0 (Sim.Trace.dropped small)

(* ----- timeline: a known 2-process round-robin schedule ----- *)

let test_timeline_known_schedule () =
  let layout = Layout.create () in
  let work = Layout.alloc layout ~name:"work" 0 in
  (* read, acquire, read, release: under round-robin the accesses
     interleave p0,p1,p0,p1 and each event is atomic with the access
     just before it, so the 4-step timeline is fully determined. *)
  let body name (ops : Store.ops) =
    ignore (ops.read work);
    Sim.Sched.emit (Sim.Event.Acquired name);
    ignore (ops.read work);
    Sim.Sched.emit (Sim.Event.Released name)
  in
  let tr = Sim.Trace.create () in
  let t =
    Sim.Sched.create ~monitor:(Sim.Trace.monitor tr) layout
      [| (0, body 0); (1, body 1) |]
  in
  let outcome = Sim.Sched.run t Sim.Sched.round_robin in
  Alcotest.(check int) "four accesses" 4 outcome.total;
  let tl = Sim.Trace.timeline tr in
  let contains sub =
    Alcotest.(check bool)
      (Printf.sprintf "timeline contains %S" sub)
      true
      (is_infix sub tl)
  in
  contains "steps 1..4";
  (* p0 acquires name 0 at step 1 and releases at its step-3 access;
     p1 holds name 1 over steps 2 and 4; one bucket per step *)
  contains "p0 (pid      0) |0 0 |";
  contains "p1 (pid      1) | 1 1|"

(* ----- timeline edge cases ----- *)

let run_traced bodies =
  let layout = Layout.create () in
  let work = Layout.alloc layout ~name:"work" 0 in
  let tr = Sim.Trace.create () in
  let t =
    Sim.Sched.create ~monitor:(Sim.Trace.monitor tr) layout
      (Array.mapi (fun i body -> (i, body work)) bodies)
  in
  ignore (Sim.Sched.run t Sim.Sched.round_robin);
  tr

let test_timeline_empty () =
  let tl = Sim.Trace.timeline (Sim.Trace.create ()) in
  Alcotest.(check bool) "header present" true (is_infix "steps 1..1" tl);
  Alcotest.(check int) "no lanes for an empty trace" 1
    (List.length (String.split_on_char '\n' tl))

let test_timeline_zero_length_hold () =
  (* acquire and release back-to-back, no access in between: the
     holding interval spans zero steps but must still be painted *)
  let tr =
    run_traced
      [|
        (fun work (ops : Store.ops) ->
          ignore (ops.read work);
          Sim.Sched.emit (Sim.Event.Acquired 5);
          Sim.Sched.emit (Sim.Event.Released 5));
      |]
  in
  let tl = Sim.Trace.timeline tr in
  Alcotest.(check bool) "zero-length hold still painted" true (is_infix "|5|" tl)

let test_timeline_more_procs_than_width () =
  let body work (ops : Store.ops) =
    ignore (ops.read work);
    Sim.Sched.emit (Sim.Event.Acquired ops.pid);
    ignore (ops.read work);
    Sim.Sched.emit (Sim.Event.Released ops.pid)
  in
  let tr = run_traced (Array.make 5 body) in
  let tl = Sim.Trace.timeline ~width:3 tr in
  let lines = String.split_on_char '\n' (String.trim tl) in
  Alcotest.(check int) "every process gets a lane" 6 (List.length lines);
  List.iteri
    (fun i line ->
      if i > 0 then begin
        match (String.index_opt line '|', String.rindex_opt line '|') with
        | Some a, Some b ->
            Alcotest.(check int)
              (Printf.sprintf "lane %d clipped to 3 columns" i)
              3 (b - a - 1)
        | _ -> Alcotest.fail "lane without |...| bars"
      end)
    lines

let test_timeline_large_names_star () =
  let tr =
    run_traced
      [|
        (fun work (ops : Store.ops) ->
          ignore (ops.read work);
          Sim.Sched.emit (Sim.Event.Acquired 50);
          ignore (ops.read work);
          Sim.Sched.emit (Sim.Event.Released 50));
        (fun work (ops : Store.ops) ->
          ignore (ops.read work);
          Sim.Sched.emit (Sim.Event.Acquired 35);
          ignore (ops.read work);
          Sim.Sched.emit (Sim.Event.Released 35));
      |]
  in
  let tl = Sim.Trace.timeline tr in
  Alcotest.(check bool) "name 50 renders as *" true (is_infix "*" tl);
  (* 35 is the last name with its own glyph ('z') *)
  Alcotest.(check bool) "name 35 renders as z" true (is_infix "z" tl)

(* ----- spans from a replayed Model_check.sample schedule ----- *)

(* The MA mutant violates uniqueness under sampling.  The schedule the
   sampler reports must replay against marker-bearing bodies (markers
   cost no shared access), and the Observe monitor's counters must see
   exactly the accesses the sampled run recorded. *)
let test_span_replay_matches_sample () =
  let recorded = ref 0 in
  let mk ?(markers = false) ?(extra = []) () : Mc.config =
    let layout = Layout.create () in
    let m = Mma.create layout Mma.No_recheck ~k:2 ~s:3 in
    let work = Layout.alloc layout ~name:"work" 0 in
    let u = Sim.Checks.uniqueness ~name_space:(Mma.name_space m) () in
    recorded := 0;
    let count = Sim.Sched.monitor ~on_access:(fun _ _ _ -> incr recorded) () in
    let body (ops : Store.ops) =
      if markers then Sim.Observe.op_begin "get";
      let lease = Mma.get_name m ops in
      Sim.Sched.emit (Sim.Event.Acquired (Mma.name_of m lease));
      ignore (ops.read work);
      Sim.Sched.emit (Sim.Event.Released (Mma.name_of m lease));
      if markers then Sim.Observe.op_begin "release";
      Mma.release_name m ops lease
    in
    {
      layout;
      procs = [| (0, body); (2, body) |];
      monitor = Sim.Checks.combine ([ count; Sim.Checks.uniqueness_monitor u ] @ extra);
    }
  in
  let r = Mc.sample ~seeds:(List.init 100 (fun i -> i + 1)) (fun () -> mk ()) in
  match r.violation with
  | None -> Alcotest.fail "expected the MA mutant to violate under sampling"
  | Some v ->
      let sample_accesses = !recorded in
      Alcotest.(check bool) "sampled run saw accesses" true (sample_accesses > 0);
      let registry = Obs.Registry.create () in
      let sh = Obs.Registry.shard registry in
      let obs = Sim.Observe.create sh in
      let res =
        Mc.replay
          (fun () -> mk ~markers:true ~extra:[ Sim.Observe.monitor obs ] ())
          v.schedule
      in
      Sim.Observe.finalize obs;
      (match res with
      | Error v' ->
          (* sample prefixes its message with "[seed N] " *)
          Alcotest.(check bool)
            "replay reproduces the violation" true
            (is_suffix v'.message v.message)
      | Ok () -> Alcotest.fail "replay did not reproduce the violation");
      Alcotest.(check int) "replay performs the same accesses" sample_accesses !recorded;
      let snap = Obs.Registry.snapshot registry in
      let counter name = Option.value ~default:0 (List.assoc_opt name snap.counters) in
      Alcotest.(check int) "observe counters see every access" sample_accesses
        (counter "store.reads" + counter "store.writes" + counter "store.rmws");
      Alcotest.(check bool) "spans recorded" true (snap.spans <> []);
      let span_accesses =
        List.fold_left (fun a (s : Obs.Span.t) -> a + s.accesses) 0 snap.spans
      in
      Alcotest.(check bool) "span accesses bounded by the run's total" true
        (span_accesses <= sample_accesses)

let () =
  Alcotest.run "trace"
    [
      ( "ring",
        [
          Alcotest.test_case "overflow accounting" `Quick test_ring_overflow;
          Alcotest.test_case "timeline rendering" `Quick test_timeline_known_schedule;
          Alcotest.test_case "timeline: empty trace" `Quick test_timeline_empty;
          Alcotest.test_case "timeline: zero-length hold" `Quick
            test_timeline_zero_length_hold;
          Alcotest.test_case "timeline: more procs than columns" `Quick
            test_timeline_more_procs_than_width;
          Alcotest.test_case "timeline: names beyond 35 are *" `Quick
            test_timeline_large_names_star;
        ] );
      ( "replay",
        [
          Alcotest.test_case "span-profiled sample replay" `Quick
            test_span_replay_matches_sample;
        ] );
    ]
