(* The fault-injection subsystem: plan parsing, controller semantics
   (park / timed stall / slow lane / deadlock fast-forward), composition
   with the model checker, and POR soundness under park-only plans. *)

open Shared_mem
module F = Sim.Faults
module MC = Sim.Model_check

(* ----- textual plans ----- *)

let roundtrip s =
  match F.of_string s with
  | Error e -> Alcotest.failf "%S did not parse: %s" s e
  | Ok plan -> Alcotest.(check string) s s (F.to_string plan)

let test_plan_roundtrip () =
  List.iter roundtrip
    [
      "none";
      "park@p1:acc7";
      "stall24@p2:note(in)#2";
      "slow3@p0:acquire";
      "park@p0:acquire#3";
      "park@p2:note(cycle=4)";
      "park@p1:acc7,stall8@p0:acquire,slow2@p3:note(cs)";
      "crash@p1:acc7";
      "crash@p2:acquire#2";
      "crash@p0:acquire,crash@p1:acc3";
    ]

let test_plan_rejects () =
  List.iter
    (fun s ->
      match F.of_string s with
      | Ok _ -> Alcotest.failf "%S should not parse" s
      | Error _ -> ())
    [
      "park";
      "park@q1:acc7";
      "stall0@p1:acc7";
      "stall@p1:acc7";
      "park@p1:acc";
      "park@p1:note()";
      "park@p1:acquire#0";
      "park@p-1:acc3";
      "warp@p1:acc3";
    ]

let test_plan_roundtrip_prop =
  (* parse . print = id on generated plans *)
  Test_util.qtest ~count:300 "to_string/of_string round-trip" QCheck2.Gen.int
    (fun seed ->
      let plan =
        F.gen (Sim.Rng.make seed) ~nprocs:4 ~tags:[ "in"; "cycle" ] ()
      in
      match F.of_string (F.to_string plan) with
      | Ok plan' -> F.to_string plan' = F.to_string plan
      | Error e -> QCheck2.Test.fail_reportf "no round-trip: %s" e)

let test_por_safe () =
  let get s = Result.get_ok (F.of_string s) in
  Alcotest.(check bool) "parks only" true (F.por_safe (get "park@p1:acc7,park@p0:acquire"));
  Alcotest.(check bool) "stall is timed" false (F.por_safe (get "stall3@p1:acc7"));
  Alcotest.(check bool) "slow is timed" false (F.por_safe (get "slow2@p1:acc7"));
  Alcotest.(check bool) "crash freezes like park" true
    (F.por_safe (get "crash@p1:acc3,park@p0:acquire"));
  Alcotest.(check bool) "empty" true (F.por_safe [])

let test_gen_deterministic () =
  let plan_of seed = F.to_string (F.gen (Sim.Rng.make seed) ~nprocs:5 ~tags:[ "x" ] ()) in
  Alcotest.(check string) "same seed, same plan" (plan_of 42) (plan_of 42);
  (* at least one fault-free process, victims distinct *)
  for seed = 0 to 199 do
    let plan = F.gen (Sim.Rng.make seed) ~nprocs:3 () in
    let vs = F.victims plan in
    Alcotest.(check bool) "≤ nprocs-1 victims" true (List.length vs <= 2);
    Alcotest.(check bool) "victims in range" true (List.for_all (fun v -> v >= 0 && v < 3) vs)
  done

let test_gen_crash () =
  let plan_of seed =
    F.to_string (F.gen_crash (Sim.Rng.make seed) ~nprocs:4 ~max_cycle:2 ())
  in
  Alcotest.(check string) "same seed, same plan" (plan_of 42) (plan_of 42);
  Alcotest.(check string) "nprocs 1 generates nothing" "none"
    (F.to_string (F.gen_crash (Sim.Rng.make 0) ~nprocs:1 ()));
  for seed = 0 to 99 do
    let plan = F.gen_crash (Sim.Rng.make seed) ~nprocs:4 ~max_cycle:2 () in
    let vs = F.victims plan in
    Alcotest.(check bool) "at least one crash" true (List.length vs >= 1);
    Alcotest.(check bool) "at least one survivor" true (List.length vs <= 3);
    Alcotest.(check bool) "victims distinct" true
      (List.length (List.sort_uniq compare vs) = List.length vs);
    Alcotest.(check bool) "victims in range" true
      (List.for_all (fun v -> v >= 0 && v < 4) vs);
    (* every generated fault is a crash on an acquire trigger *)
    let contains h n =
      let hn = String.length h and nn = String.length n in
      let rec go i = i + nn <= hn && (String.sub h i nn = n || go (i + 1)) in
      go 0
    in
    List.iter
      (fun f ->
        let s = F.to_string [ f ] in
        Alcotest.(check bool) (s ^ " is a crash@acquire") true
          (String.length s >= 7
          && String.sub s 0 7 = "crash@p"
          && contains s ":acquire"))
      plan;
    (* and the whole plan round-trips *)
    match F.of_string (F.to_string plan) with
    | Ok plan' -> Alcotest.(check string) "round-trip" (F.to_string plan) (F.to_string plan')
    | Error e -> Alcotest.failf "gen_crash plan did not parse: %s" e
  done

(* ----- controller semantics on a hand-made config ----- *)

(* Two processes, each performing [n] writes to its own cell then one
   Acquired/Released pair; no real protocol, so outcomes are exact. *)
let writers ?(accesses = 6) () =
  let layout = Layout.create () in
  let cells = Layout.alloc_array layout ~name:"C" 2 0 in
  let body i (ops : Store.ops) =
    for _ = 1 to accesses do
      ops.write cells.(i) 1
    done;
    Sim.Sched.emit (Sim.Event.Acquired i);
    ops.write cells.(i) 2;
    Sim.Sched.emit (Sim.Event.Released i)
  in
  (layout, [| (0, body 0); (1, body 1) |])

let run_with plan ?(max_steps = 10_000) (layout, procs) =
  let ctrl = F.controller plan in
  let t = Sim.Sched.create ~monitor:(F.monitor ctrl) layout procs in
  let outcome = F.run ~max_steps ctrl t Sim.Sched.round_robin in
  Sim.Sched.abort t;
  (outcome, ctrl)

let plan s = Result.get_ok (F.of_string s)

let test_park_freezes () =
  let outcome, ctrl = run_with (plan "park@p1:acc2") (writers ()) in
  Alcotest.(check bool) "p0 completed" true outcome.completed.(0);
  Alcotest.(check bool) "p1 parked forever" false outcome.completed.(1);
  Alcotest.(check int) "p1 froze after its 2nd access" 2 outcome.steps.(1);
  Alcotest.(check (list int)) "reported parked" [ 1 ] (F.parked ctrl);
  Alcotest.(check int) "one fault fired" 1 (F.fired ctrl)

let test_stall_resumes () =
  let outcome, ctrl = run_with (plan "stall4@p1:acc2") (writers ()) in
  Alcotest.(check bool) "p0 completed" true outcome.completed.(0);
  Alcotest.(check bool) "p1 resumed and completed" true outcome.completed.(1);
  Alcotest.(check (list int)) "nobody left parked" [] (F.parked ctrl)

let test_slow_lane_completes () =
  let outcome, _ = run_with (plan "slow3@p0:acc1") (writers ()) in
  Alcotest.(check bool) "slow p0 still completes" true outcome.completed.(0);
  Alcotest.(check bool) "p1 completes" true outcome.completed.(1)

let test_acquire_trigger () =
  (* firing on Acquired parks the victim while it holds the name *)
  let outcome, ctrl = run_with (plan "park@p1:acquire") (writers ()) in
  Alcotest.(check bool) "p1 parked holding" false outcome.completed.(1);
  Alcotest.(check (list int)) "parked" [ 1 ] (F.parked ctrl)

let test_unstick_deadlock () =
  (* both processes timed-stalled at once: pauses consume no steps, so
     only the fast-forward can ever resume them *)
  let outcome, ctrl = run_with (plan "stall50@p0:acc1,stall90@p1:acc1") (writers ()) in
  Alcotest.(check bool) "p0 completed" true outcome.completed.(0);
  Alcotest.(check bool) "p1 completed" true outcome.completed.(1);
  Alcotest.(check bool) "no pending resumes" false (F.pending_resumes ctrl)

let test_crash_freezes_and_records () =
  (* operationally a crash is a park — frozen forever — but the
     controller reports it in [crashed] so harnesses can tell process
     death from a mere stall *)
  let outcome, ctrl = run_with (plan "crash@p1:acquire") (writers ()) in
  Alcotest.(check bool) "p0 completed" true outcome.completed.(0);
  Alcotest.(check bool) "p1 died holding" false outcome.completed.(1);
  Alcotest.(check (list int)) "reported crashed" [ 1 ] (F.crashed ctrl);
  Alcotest.(check (list int)) "crashed is frozen" [ 1 ] (F.parked ctrl);
  Alcotest.(check int) "one fault fired" 1 (F.fired ctrl);
  (* a parked process is frozen but not dead *)
  let _, ctrl' = run_with (plan "park@p1:acquire") (writers ()) in
  Alcotest.(check (list int)) "park is not a crash" [] (F.crashed ctrl')

let test_note_occurrence () =
  (* a note trigger with occurrence 2 must not fire on the first hit *)
  let layout = Layout.create () in
  let c = Layout.alloc layout ~name:"c" 0 in
  let body (ops : Store.ops) =
    for i = 1 to 3 do
      ops.write c i;
      Sim.Sched.emit (Sim.Event.Note ("tick", i))
    done
  in
  let ctrl = F.controller (plan "park@p0:note(tick)#2") in
  let t = Sim.Sched.create ~monitor:(F.monitor ctrl) layout [| (0, body) |] in
  let outcome = F.run ctrl t Sim.Sched.round_robin in
  Sim.Sched.abort t;
  Alcotest.(check bool) "parked at 2nd tick" false outcome.completed.(0);
  Alcotest.(check int) "two accesses ran" 2 outcome.steps.(0)

(* ----- composition with the model checker ----- *)

let ma_builder () : MC.config =
  let layout = Layout.create () in
  let m = Renaming.Ma.create layout ~k:2 ~s:4 in
  let work = Layout.alloc layout ~name:"work" 0 in
  let u = Sim.Checks.uniqueness ~name_space:(Renaming.Ma.name_space m) () in
  let body (ops : Store.ops) =
    for _ = 1 to 2 do
      let lease = Renaming.Ma.get_name m ops in
      Sim.Sched.emit (Sim.Event.Acquired (Renaming.Ma.name_of m lease));
      ignore (ops.read work);
      Sim.Sched.emit (Sim.Event.Released (Renaming.Ma.name_of m lease));
      Renaming.Ma.release_name m ops lease
    done
  in
  {
    layout;
    procs = [| (0, body); (2, body) |];
    monitor = Sim.Checks.uniqueness_monitor u;
  }

let test_check_with_faults_clean () =
  (* exhaustive search over all schedules of a correct MA with one
     process parked mid-GetName: no violation, and park-only keeps the
     reductions on (verdict must agree with the unreduced search) *)
  let faults = plan "park@p1:acc3" in
  let reduced = MC.check ~faults ma_builder in
  let plain =
    MC.check ~options:{ MC.default_options with por = false; cache_bound = 0 } ~faults
      ma_builder
  in
  Test_util.check_no_violation "reduced" reduced.outcome;
  Test_util.check_no_violation "plain" plain.outcome;
  Alcotest.(check bool) "reduced explored complete" true reduced.outcome.complete;
  Alcotest.(check bool) "reduction actually pruned" true
    (reduced.outcome.paths < plain.outcome.paths)

let test_sample_replay_with_faults () =
  (* a violating faulty run must replay to the same message under the
     same plan *)
  let builder () : MC.config =
    let layout = Layout.create () in
    let m =
      Renaming.Mutations.Mutant_ma.create layout Renaming.Mutations.Mutant_ma.No_recheck
        ~k:2 ~s:3
    in
    let work = Layout.alloc layout ~name:"work" 0 in
    let u =
      Sim.Checks.uniqueness ~name_space:(Renaming.Mutations.Mutant_ma.name_space m) ()
    in
    let body (ops : Store.ops) =
      for _ = 1 to 2 do
        let lease = Renaming.Mutations.Mutant_ma.get_name m ops in
        Sim.Sched.emit (Sim.Event.Acquired (Renaming.Mutations.Mutant_ma.name_of m lease));
        ignore (ops.read work);
        Sim.Sched.emit (Sim.Event.Released (Renaming.Mutations.Mutant_ma.name_of m lease));
        Renaming.Mutations.Mutant_ma.release_name m ops lease
      done
    in
    { layout; procs = [| (0, body); (2, body) |]; monitor = Sim.Checks.uniqueness_monitor u }
  in
  let faults = plan "slow2@p1:acc1" in
  match (MC.sample ~faults ~seeds:(Test_util.seeds 500) builder).violation with
  | None -> Alcotest.fail "sampling under faults failed to catch the mutant"
  | Some v ->
      let stripped =
        (* drop the "[seed N] " prefix for comparison *)
        match String.index_opt v.message ']' with
        | Some i -> String.sub v.message (i + 2) (String.length v.message - i - 2)
        | None -> v.message
      in
      (match MC.replay ~faults builder v.schedule with
      | Error v' -> Alcotest.(check string) "same violation" stripped v'.message
      | Ok () -> Alcotest.fail "replay with the plan lost the violation");
      (* without the plan the schedule means something else entirely —
         it may or may not violate, but it must not crash *)
      ignore (MC.replay builder v.schedule)

let test_minimize_shrinks () =
  let tg = Option.get (Campaign.find "mutant:ma-no-recheck") in
  match
    (MC.sample ~seeds:(Test_util.seeds 500) tg.Campaign.builder).violation
  with
  | None -> Alcotest.fail "no violation to shrink"
  | Some v -> (
      match MC.minimize tg.Campaign.builder v.schedule with
      | None -> Alcotest.fail "minimize lost the violation"
      | Some m ->
          Alcotest.(check bool) "not longer" true
            (List.length m.schedule <= List.length v.schedule);
          (* the shrunk schedule replays deterministically: same result twice *)
          let r1 = MC.replay tg.Campaign.builder m.schedule in
          let r2 = MC.replay tg.Campaign.builder m.schedule in
          match (r1, r2) with
          | Error a, Error b -> Alcotest.(check string) "stable replay" a.message b.message
          | _ -> Alcotest.fail "shrunk schedule no longer violates")

let () =
  Alcotest.run "faults"
    [
      ( "plans",
        [
          Alcotest.test_case "round-trip" `Quick test_plan_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_plan_rejects;
          test_plan_roundtrip_prop;
          Alcotest.test_case "por_safe" `Quick test_por_safe;
          Alcotest.test_case "gen deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "gen_crash" `Quick test_gen_crash;
        ] );
      ( "controller",
        [
          Alcotest.test_case "park freezes forever" `Quick test_park_freezes;
          Alcotest.test_case "stall resumes" `Quick test_stall_resumes;
          Alcotest.test_case "slow lane completes" `Quick test_slow_lane_completes;
          Alcotest.test_case "acquire trigger" `Quick test_acquire_trigger;
          Alcotest.test_case "crash freezes + records" `Quick test_crash_freezes_and_records;
          Alcotest.test_case "deadlock fast-forward" `Quick test_unstick_deadlock;
          Alcotest.test_case "note occurrence" `Quick test_note_occurrence;
        ] );
      ( "model_check",
        [
          Alcotest.test_case "park-only keeps POR sound" `Slow test_check_with_faults_clean;
          Alcotest.test_case "faulty sample replays" `Slow test_sample_replay_with_faults;
          Alcotest.test_case "minimize shrinks + replays" `Slow test_minimize_shrinks;
        ] );
    ]
