(* The sharded name server: routing, warm-cache legality, batched
   release survival across the join, and fault-campaign pressure. *)

module Agg = Runtime.Agg

let cfg ?(shards = 4) ?(k = 4) ?(warm = 2) ?(batch = 8) ?(clients = 2) ?(s = 1024) ()
    =
  Server.default_config ~shards ~k_per_shard:k ~warm_capacity:warm ~batch ~clients
    ~source_space:s ()
  |> fun c -> { c with Server.shards; k_per_shard = k }

(* --- shard routing --- *)

let test_routing_stable () =
  let c = cfg () in
  let a = Server.create c and b = Server.create c in
  for src = 0 to c.Server.source_space - 1 do
    let sa = Server.shard_of a ~src in
    Alcotest.(check int) "same route on a fresh instance" sa (Server.shard_of b ~src);
    Alcotest.(check bool) "in range" true (sa >= 0 && sa < c.Server.shards)
  done;
  (* every shard serves someone: the route spreads *)
  let seen = Array.make c.Server.shards false in
  for src = 0 to c.Server.source_space - 1 do
    seen.(Server.shard_of a ~src) <- true
  done;
  Array.iteri
    (fun sh hit -> Alcotest.(check bool) (Printf.sprintf "shard %d used" sh) true hit)
    seen

(* --- single-client service basics (sequential, deterministic) --- *)

let test_warm_hit () =
  let t = Server.create (cfg ~clients:1 ()) in
  let c = Server.client t 0 in
  (match Server.acquire t c ~src:7 with
  | Server.Granted g ->
      Alcotest.(check bool) "first grant is cold" false g.warm;
      Alcotest.(check bool) "cold grant costs accesses" true (g.accesses > 0);
      Server.release t c ~token:g.token
  | _ -> Alcotest.fail "first acquire not granted");
  (match Server.acquire t c ~src:7 with
  | Server.Granted g ->
      Alcotest.(check bool) "re-acquire is warm" true g.warm;
      Alcotest.(check int) "warm grant is free" 0 g.accesses;
      Server.release t c ~token:g.token
  | _ -> Alcotest.fail "re-acquire not granted");
  Server.flush t c;
  Alcotest.(check int) "all names returned" 0 (Server.outstanding t);
  let r = Agg.result (Server.scoreboard t) in
  Alcotest.(check int) "no violations" 0 r.Agg.violations

let test_busy_and_shed () =
  let t = Server.create (cfg ~shards:1 ~k:1 ~clients:2 ()) in
  let c0 = Server.client t 0 and c1 = Server.client t 1 in
  let g0 =
    match Server.acquire t c0 ~src:3 with
    | Server.Granted { token; _ } -> token
    | _ -> Alcotest.fail "c0 not granted"
  in
  (match Server.acquire t c1 ~src:3 with
  | Server.Busy -> ()
  | _ -> Alcotest.fail "claimed source must be Busy");
  (match Server.acquire t c0 ~src:4 with
  | Server.Shed -> ()
  | _ -> Alcotest.fail "full shard must Shed");
  Server.release t c0 ~token:g0;
  (* src 3 is warm in c0's cache: still claimed *)
  (match Server.acquire t c1 ~src:3 with
  | Server.Busy -> ()
  | _ -> Alcotest.fail "warm-cached source must stay Busy");
  Server.flush t c0;
  (match Server.acquire t c1 ~src:3 with
  | Server.Granted g -> Server.release t c1 ~token:g.token
  | _ -> Alcotest.fail "flushed source must be grantable");
  Server.flush t c1;
  Alcotest.(check int) "drained" 0 (Server.outstanding t)

let test_batch_drain () =
  let t = Server.create (cfg ~shards:1 ~k:4 ~warm:0 ~batch:3 ~clients:1 ()) in
  let c = Server.client t 0 in
  let grant src =
    match Server.acquire t c ~src with
    | Server.Granted g -> g.token
    | _ -> Alcotest.fail "not granted"
  in
  let t1 = grant 1 and t2 = grant 2 and t3 = grant 3 in
  Server.release t c ~token:t1;
  Server.release t c ~token:t2;
  Alcotest.(check int) "two releases still pending" 3 (Server.outstanding t);
  Server.release t c ~token:t3;
  (* the third release trips the batch and drains all three *)
  Alcotest.(check int) "batch drained" 0 (Server.outstanding t);
  let stats = Server.client_stats c in
  Alcotest.(check int) "one drain" 1 stats.Server.drains;
  Alcotest.(check int) "three releases executed" 3 stats.Server.drained_releases

let test_double_release_rejected () =
  let t = Server.create (cfg ~clients:1 ()) in
  let c = Server.client t 0 in
  match Server.acquire t c ~src:5 with
  | Server.Granted g ->
      Server.release t c ~token:g.token;
      Alcotest.check_raises "double release"
        (Invalid_argument "Server.release: not a token this client holds")
        (fun () -> Server.release t c ~token:g.token)
  | _ -> Alcotest.fail "not granted"

(* --- warm-cache uniqueness with a concurrent stealer --- *)

let test_warm_vs_stealer () =
  let config = cfg ~shards:2 ~k:3 ~warm:2 ~batch:4 ~clients:2 ~s:64 () in
  let t = Server.create config in
  let hot = 11 in
  let cycles = 2_000 in
  let owner =
    Domain.spawn (fun () ->
        let c = Server.client t 0 in
        for _ = 1 to cycles do
          match Server.acquire t c ~src:hot with
          | Server.Granted g -> Server.release t c ~token:g.token
          | Server.Busy | Server.Shed -> Domain.cpu_relax ()
        done;
        Server.flush t c)
  in
  let stolen = ref 0 in
  let stealer =
    Domain.spawn (fun () ->
        let c = Server.client t 1 in
        for _ = 1 to cycles do
          match Server.acquire t c ~src:hot with
          | Server.Granted g ->
              incr stolen;
              Server.release t c ~token:g.token
          | Server.Busy | Server.Shed -> Domain.cpu_relax ()
        done;
        Server.flush t c)
  in
  Domain.join owner;
  Domain.join stealer;
  Server.drain_all t (Server.client t 0);
  let r = Agg.result (Server.scoreboard t) in
  Alcotest.(check int) "uniqueness holds under warm hits + stealing" 0
    r.Agg.violations;
  Alcotest.(check int) "nothing leaked" 0 r.Agg.leaked;
  Alcotest.(check int) "nothing outstanding" 0 (Server.outstanding t);
  let owner_stats = Server.client_stats (Server.client t 0) in
  Alcotest.(check bool) "owner got warm hits" true (owner_stats.Server.warm_hits > 0)

(* --- batched releases survive the join --- *)

let test_join_drain () =
  (* batch far above anything the run trips: releases pile up pending
     and must all be retired by the post-join drain *)
  let config = cfg ~shards:2 ~k:4 ~warm:1 ~batch:1_000_000 ~clients:3 ~s:256 () in
  let report =
    Churn.run ~config
      ~spec:(fun client ->
        Workload.server_churn ~s:256 ~requests:500 ~seed:42 ~client ())
      ()
  in
  Alcotest.(check int) "no violations" 0 report.Churn.result.Agg.violations;
  Alcotest.(check int) "no leaks after drain" 0 report.Churn.outstanding;
  Alcotest.(check int) "scoreboard agrees" 0 report.Churn.result.Agg.leaked;
  Alcotest.(check bool) "cycles completed" true (report.Churn.cycles > 0);
  (* warm hits re-grant a lease the server still holds, so protocol
     releases must match *cold* grants exactly *)
  Alcotest.(check int) "every cold grant eventually released"
    (report.Churn.acquires - report.Churn.warm_hits)
    report.Churn.drained_releases

(* --- a fault campaign aimed at one shard --- *)

let test_fault_campaign_one_shard () =
  let s = 64 in
  let config = cfg ~shards:2 ~k:3 ~warm:1 ~batch:4 ~clients:4 ~s () in
  (* pin every request to sources served by shard 0 *)
  let probe = Server.create config in
  let shard0 =
    Array.of_list
      (List.filter
         (fun src -> Server.shard_of probe ~src = 0)
         (List.init s (fun i -> i)))
  in
  Alcotest.(check bool) "shard 0 serves sources" true (Array.length shard0 > 2);
  let plan = Result.get_ok (Sim.Faults.of_string "crash@p1:acc40,park@p3:acc1") in
  let faults = Churn.of_plan plan in
  let report =
    Churn.run ~config ~faults
      ~spec:(fun client ->
        let zipf = Workload.zipf ~s:(Array.length shard0) ~seed:7 ~stream:client () in
        {
          Workload.requests = 300;
          source = (fun i -> shard0.(zipf i));
          arrival = (fun _ -> 0.);
          think = 0;
        })
      ()
  in
  Alcotest.(check int) "uniqueness survives the campaign" 0
    report.Churn.result.Agg.violations;
  (* the healthy clients (0 and 2) finished their requests *)
  Alcotest.(check bool) "healthy clients progressed" true
    (report.Churn.result.Agg.cycles_done.(0) > 0
    && report.Churn.result.Agg.cycles_done.(2) > 0);
  (* the crashed client's warm lease leaks, and is *visible* as a leak *)
  Alcotest.(check int) "leak accounting agrees" report.Churn.result.Agg.leaked
    report.Churn.outstanding

(* --- crash-tolerant reclamation --- *)

let test_reclaim_crashed_client () =
  let config = cfg ~shards:2 ~k:4 ~warm:2 ~clients:2 ~s:64 () in
  let t = Server.create config in
  let c0 = Server.client t 0 and c1 = Server.client t 1 in
  (* client 1 holds one lease, caches another warm, then crashes *)
  (match Server.acquire t c1 ~src:5 with
  | Server.Granted _ -> ()
  | _ -> Alcotest.fail "c1 not granted");
  (match Server.acquire t c1 ~src:9 with
  | Server.Granted g -> Server.release t c1 ~token:g.token
  | _ -> Alcotest.fail "c1 not granted a warm lease");
  Alcotest.(check bool) "leases outstanding" true (Server.outstanding t > 0);
  (match Server.acquire t c0 ~src:5 with
  | Server.Busy -> ()
  | _ -> Alcotest.fail "a corpse's held source is still Busy");
  let ttl = config.Server.resilience.Server.lease_ttl in
  for _ = 1 to ttl + 2 do
    Server.scan t c0
  done;
  let rs = Server.resilience_stats t in
  Alcotest.(check int) "one death declared" 1 rs.Server.deaths;
  Alcotest.(check int) "held + warm leases reclaimed" 2 rs.Server.reclaimed;
  Alcotest.(check int) "nothing outstanding after reclaim" 0 (Server.outstanding t);
  Alcotest.(check bool) "reclaim bounded by the lease TTL" true
    (rs.Server.reclaim_max_scans <= 2 * ttl);
  (* the reclaimed sources serve again (possibly via failover) *)
  (match Server.acquire t c0 ~src:5 with
  | Server.Granted g -> Server.release t c0 ~token:g.token
  | _ -> Alcotest.fail "a reclaimed source must be grantable");
  Server.flush t c0;
  let r = Agg.result ~reclaimed:rs.Server.reclaimed (Server.scoreboard t) in
  Alcotest.(check int) "no violations" 0 r.Agg.violations;
  Alcotest.(check int) "leaks reconciled by reclaim" 0 r.Agg.leaked

let test_drain_reclaim_race () =
  (* regression: a pending chain walked by a live drainer while the
     reclaimer's orphan sweep retires the same slots must retire each
     exactly once.  A double retirement double-decrements the
     admission census or double-releases on the scoreboard — both
     visible below.  The scanner also races liveness itself: the
     churners tend, but on an oversubscribed host they still get
     declared dead under the short TTL, so the false-expiry path
     (epoch fence + re-sync) is exercised too. *)
  let config = cfg ~shards:1 ~k:4 ~warm:1 ~batch:2 ~clients:3 ~s:32 () in
  let t = Server.create config in
  let churn id cycles =
    Domain.spawn (fun () ->
        let c = Server.client t id in
        let seed = ref (id + 1) in
        for _ = 1 to cycles do
          seed := ((!seed * 1103515245) + 12345) land 0x3FFFFFFF;
          (match Server.acquire t c ~src:(!seed mod 32) with
          | Server.Granted g -> Server.release t c ~token:g.token
          | Server.Busy | Server.Shed -> ());
          Server.tend t c
        done;
        Server.flush t c)
  in
  let d0 = churn 0 3_000 and d1 = churn 1 3_000 in
  let scanner =
    Domain.spawn (fun () ->
        let c = Server.client t 2 in
        for _ = 1 to 400 do
          Server.scan t c;
          Server.drain_all t c
        done)
  in
  Domain.join d0;
  Domain.join d1;
  Domain.join scanner;
  let c0 = Server.client t 0 in
  let settle = ref 0 in
  while Server.outstanding t > 0 && !settle < 64 do
    incr settle;
    Server.scan t c0;
    Server.drain_all t c0
  done;
  let rs = Server.resilience_stats t in
  let r = Agg.result ~reclaimed:rs.Server.reclaimed (Server.scoreboard t) in
  Alcotest.(check int) "no violations under drain/reclaim races" 0 r.Agg.violations;
  Alcotest.(check int) "every slot retired exactly once" 0 (Server.outstanding t);
  Alcotest.(check int) "scoreboard agrees" 0 r.Agg.leaked

(* --- quarantine, failover, rebuild --- *)

let test_failover_quarantine () =
  let config = cfg ~shards:2 ~k:4 ~warm:0 ~clients:2 ~s:64 () in
  let t = Server.create config in
  let c0 = Server.client t 0 and c1 = Server.client t 1 in
  (* a source served by shard 0, leaked by a crash *)
  let src = ref 0 in
  while Server.shard_of t ~src:!src <> 0 do
    incr src
  done;
  let src = !src in
  (match Server.acquire t c1 ~src with
  | Server.Granted _ -> ()
  | _ -> Alcotest.fail "c1 not granted");
  (* the quarantine window is tight — the reclaim empties the shard,
     so the very next clean scan rebuilds it.  Scan just far enough to
     catch the shard in quarantine. *)
  let ttl = config.Server.resilience.Server.lease_ttl in
  let n = ref 0 in
  while Server.health t 0 <> Server.Health.Quarantined && !n < 2 * ttl do
    incr n;
    Server.scan t c0
  done;
  Alcotest.(check bool) "leaking shard quarantined" true
    (Server.health t 0 = Server.Health.Quarantined);
  let rs = Server.resilience_stats t in
  Alcotest.(check bool) "quarantine counted" true (rs.Server.quarantines >= 1);
  (* acquires routed at the quarantined shard spill over and still grant *)
  (match Server.acquire t c0 ~src with
  | Server.Granted g -> Server.release t c0 ~token:g.token
  | _ -> Alcotest.fail "failover must still grant");
  let rs = Server.resilience_stats t in
  Alcotest.(check bool) "failover counted" true (rs.Server.failovers >= 1);
  Server.flush t c0;
  (* clean scans rebuild the shard in place *)
  let n = ref 0 in
  while Server.health t 0 <> Server.Health.Live && !n < 16 do
    incr n;
    Server.scan t c0
  done;
  Alcotest.(check bool) "shard re-admitted as live" true
    (Server.health t 0 = Server.Health.Live);
  let rs = Server.resilience_stats t in
  Alcotest.(check bool) "rebuild counted" true (rs.Server.rebuilds >= 1);
  let r = Agg.result ~reclaimed:rs.Server.reclaimed (Server.scoreboard t) in
  Alcotest.(check int) "no violations through failover" 0 r.Agg.violations

let () =
  Alcotest.run "server"
    [
      ( "routing",
        [ Alcotest.test_case "stable across instances, spreads" `Quick test_routing_stable ] );
      ( "service",
        [
          Alcotest.test_case "warm hit is free" `Quick test_warm_hit;
          Alcotest.test_case "busy and shed" `Quick test_busy_and_shed;
          Alcotest.test_case "batched drain" `Quick test_batch_drain;
          Alcotest.test_case "double release rejected" `Quick test_double_release_rejected;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "warm cache vs stealer" `Quick test_warm_vs_stealer;
          Alcotest.test_case "releases survive the join" `Quick test_join_drain;
          Alcotest.test_case "fault campaign on one shard" `Quick
            test_fault_campaign_one_shard;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "crashed client reclaimed" `Quick
            test_reclaim_crashed_client;
          Alcotest.test_case "drain vs reclaim exactly-once" `Quick
            test_drain_reclaim_race;
          Alcotest.test_case "quarantine, failover, rebuild" `Quick
            test_failover_quarantine;
        ] );
    ]
