(* Domains + Atomic store: the same protocol code under real
   parallelism, with the on-line uniqueness monitor. *)

open Shared_mem
module Split = Renaming.Split
module Filter = Renaming.Filter
module Ma = Renaming.Ma
module Pipeline = Renaming.Pipeline

let test_atomic_store () =
  let layout = Layout.create () in
  let a = Layout.alloc layout ~name:"a" 42 in
  let store = Runtime.Atomic_store.create layout in
  let ops = Runtime.Atomic_store.ops store ~pid:3 in
  Alcotest.(check int) "initial" 42 (ops.read a);
  ops.write a 7;
  Alcotest.(check int) "written" 7 (Runtime.Atomic_store.get store a)

let test_split_domains () =
  let k = 4 in
  let layout = Layout.create () in
  let sp = Split.create layout ~k in
  let pids = Array.init k (fun i -> (i * 100_003) + 1 ) in
  let r =
    Runtime.Domain_runner.run (module Split) sp ~layout ~pids ~cycles:200
      ~name_space:(Split.name_space sp)
  in
  Alcotest.(check int) "no violations" 0 r.violations;
  Array.iter (fun c -> Alcotest.(check int) "all cycles" 200 c) r.cycles_done;
  Alcotest.(check bool) "some overlap plausible" true (r.max_concurrent >= 1)

let test_filter_domains () =
  let k = 3 and d = 1 and z = 5 and s = 25 in
  let participants = [| 4; 12; 21 |] in
  let layout = Layout.create () in
  let f = Filter.create layout { k; d; z; s; participants } in
  let r =
    Runtime.Domain_runner.run (module Filter) f ~layout ~pids:participants ~cycles:150
      ~name_space:(Filter.name_space f)
  in
  Alcotest.(check int) "no violations" 0 r.violations;
  Array.iter (fun c -> Alcotest.(check int) "all cycles" 150 c) r.cycles_done

let test_ma_domains () =
  let k = 4 and s = 32 in
  let layout = Layout.create () in
  let m = Ma.create layout ~k ~s in
  let pids = Array.init k (fun i -> i * 8) in
  let r =
    Runtime.Domain_runner.run (module Ma) m ~layout ~pids ~cycles:150
      ~name_space:(Ma.name_space m)
  in
  Alcotest.(check int) "no violations" 0 r.violations;
  Array.iter (fun c -> Alcotest.(check int) "all cycles" 150 c) r.cycles_done

let test_pipeline_domains () =
  let k = 3 and s = 100_000 in
  let participants = Array.init k (fun i -> (i * 30_000) + 7 ) in
  let layout = Layout.create () in
  let p = Pipeline.create layout ~k ~s ~participants in
  let r =
    Runtime.Domain_runner.run (module Pipeline) p ~layout ~pids:participants ~cycles:100
      ~name_space:(Pipeline.name_space p)
  in
  Alcotest.(check int) "no violations" 0 r.violations;
  Array.iter (fun c -> Alcotest.(check int) "all cycles" 100 c) r.cycles_done

(* ----- real-stall fault injection ----- *)

(* One worker parks while *holding a name*: the remaining workers must
   still finish every cycle on real domains (wait-freedom under genuine
   preemption), uniqueness must hold throughout, and the parked worker
   must complete no cycle of its own. *)
let test_park_holding_domains () =
  let k = 4 in
  let layout = Layout.create () in
  let sp = Split.create layout ~k in
  let pids = Array.init k (fun i -> (i * 99_991) + 3) in
  let r =
    Runtime.Domain_runner.run
      ~faults:[ (1, Runtime.Domain_runner.Park_holding) ]
      (module Split) sp ~layout ~pids ~cycles:100 ~name_space:(Split.name_space sp)
  in
  Alcotest.(check int) "no violations" 0 r.violations;
  Alcotest.(check int) "parked worker completed no cycle" 0 r.cycles_done.(1);
  Array.iteri
    (fun i c -> if i <> 1 then Alcotest.(check int) "non-faulty all cycles" 100 c)
    r.cycles_done

let test_stall_and_slow_domains () =
  let k = 3 and s = 32 in
  let layout = Layout.create () in
  let m = Ma.create layout ~k ~s in
  let pids = Array.init k (fun i -> i * 8) in
  let r =
    Runtime.Domain_runner.run
      ~faults:
        [
          (0, Runtime.Domain_runner.Stall_holding { cycle = 10; spins = 50_000 });
          (2, Runtime.Domain_runner.Slow 500);
        ]
      (module Ma) m ~layout ~pids ~cycles:60 ~name_space:(Ma.name_space m)
  in
  Alcotest.(check int) "no violations" 0 r.violations;
  (* stalled and slow workers are delayed, not parked: everyone finishes *)
  Array.iter (fun c -> Alcotest.(check int) "all cycles" 60 c) r.cycles_done

let test_park_two_of_four () =
  (* two parked holders on the pipeline; the other two still finish *)
  let k = 4 and s = 50_000 in
  let participants = Array.init k (fun i -> (i * 12_000) + 5) in
  let layout = Layout.create () in
  let p = Pipeline.create layout ~k ~s ~participants in
  let r =
    Runtime.Domain_runner.run
      ~faults:
        [
          (1, Runtime.Domain_runner.Park_holding);
          (3, Runtime.Domain_runner.Park_holding);
        ]
      (module Pipeline) p ~layout ~pids:participants ~cycles:80
      ~name_space:(Pipeline.name_space p)
  in
  Alcotest.(check int) "no violations" 0 r.violations;
  Alcotest.(check int) "worker 1 parked" 0 r.cycles_done.(1);
  Alcotest.(check int) "worker 3 parked" 0 r.cycles_done.(3);
  Alcotest.(check int) "worker 0 finished" 80 r.cycles_done.(0);
  Alcotest.(check int) "worker 2 finished" 80 r.cycles_done.(2)

let test_all_park_raises () =
  (* every worker parked => each waits on the others forever; the
     runner must refuse instead of deadlocking *)
  let layout = Layout.create () in
  let sp = Split.create layout ~k:2 in
  let pids = [| 1; 2 |] in
  match
    Runtime.Domain_runner.run
      ~faults:
        [
          (0, Runtime.Domain_runner.Park_holding);
          (1, Runtime.Domain_runner.Park_holding);
        ]
      (module Split) sp ~layout ~pids ~cycles:10 ~name_space:(Split.name_space sp)
  with
  | (_ : Runtime.Domain_runner.result) ->
      Alcotest.fail "all-Park_holding run should raise Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ----- crash recovery across real domains ----- *)

let test_crash_holding_leaks () =
  (* the bare runner: a worker dying mid-hold takes its name to the
     grave and nothing brings it back *)
  let k = 3 in
  let layout = Layout.create () in
  let sp = Split.create layout ~k in
  let pids = [| 1; 2; 3 |] in
  let r =
    Runtime.Domain_runner.run
      ~faults:[ (1, Runtime.Domain_runner.Crash_holding { cycle = 2 }) ]
      (module Split) sp ~layout ~pids ~cycles:50 ~name_space:(Split.name_space sp)
  in
  Alcotest.(check int) "no violations" 0 r.violations;
  Alcotest.(check int) "one name leaked" 1 r.leaked;
  Alcotest.(check int) "nothing reclaimed" 0 r.reclaimed;
  Alcotest.(check int) "victim stopped after 2 cycles" 2 r.cycles_done.(1);
  Alcotest.(check int) "worker 0 finished" 50 r.cycles_done.(0);
  Alcotest.(check int) "worker 2 finished" 50 r.cycles_done.(2)

let test_run_recovered_reclaims () =
  (* the same crash under the recovery wrapper: the post-join drain
     must reclaim every lease the corpse left behind *)
  let k = 3 in
  let layout = Layout.create () in
  let sp = Split.create layout ~k in
  let pids = [| 1; 2; 3 |] in
  let rc =
    Recovery.create
      (module Split)
      sp ~layout ~pids
      (Recovery.default_config ~lease_ttl:4 ~capacity:k ())
  in
  let r =
    Runtime.Domain_runner.run_recovered
      ~faults:[ (1, Runtime.Domain_runner.Crash_holding { cycle = 2 }) ]
      rc ~layout ~pids ~cycles:40
  in
  Alcotest.(check int) "no violations" 0 r.violations;
  Alcotest.(check int) "no leak after the drain" 0 r.leaked;
  Alcotest.(check bool) "the corpse's lease was reclaimed" true (r.reclaimed >= 1);
  Alcotest.(check int) "victim stopped after 2 cycles" 2 r.cycles_done.(1);
  Alcotest.(check int) "worker 0 finished" 40 r.cycles_done.(0);
  Alcotest.(check int) "worker 2 finished" 40 r.cycles_done.(2);
  Alcotest.(check int) "nothing outstanding" 0 (Recovery.outstanding rc)

let test_run_vs_recovered_schema () =
  (* Both entry points build their scoreboard from Runtime.Agg — on a
     crash-free workload the two must report the *same* result, field
     for field, not merely results of the same shape.  This pins the
     refactor that removed the duplicated aggregation blocks. *)
  let k = 3 and cycles = 30 in
  let pids = [| 1; 2; 3 |] in
  let run_bare () =
    let layout = Layout.create () in
    let sp = Split.create layout ~k in
    Runtime.Domain_runner.run (module Split) sp ~layout ~pids ~cycles
      ~name_space:(Split.name_space sp)
  in
  let run_rec () =
    let layout = Layout.create () in
    let sp = Split.create layout ~k in
    let rc =
      Recovery.create
        (module Split)
        sp ~layout ~pids
        (Recovery.default_config ~lease_ttl:4 ~capacity:k ())
    in
    Runtime.Domain_runner.run_recovered rc ~layout ~pids ~cycles
  in
  let a = run_bare () and b = run_rec () in
  Alcotest.(check (array int)) "cycles_done agree" a.cycles_done b.cycles_done;
  Alcotest.(check int) "violations agree" a.violations b.violations;
  Alcotest.(check int) "no leak either way" 0 (a.leaked + b.leaked);
  Alcotest.(check int) "nothing reclaimed either way" 0 (a.reclaimed + b.reclaimed);
  Alcotest.(check bool) "no first violation" true
    (a.first_violation = None && b.first_violation = None);
  let names (r : Runtime.Domain_runner.result) = List.map fst r.max_concurrent_by_name in
  Alcotest.(check bool) "per-name breakdown sorted and in range" true
    (List.for_all (fun n -> n >= 0) (names a @ names b)
    && List.sort compare (names a) = names a
    && List.sort compare (names b) = names b);
  Alcotest.(check bool) "per-name marks are clean" true
    (List.for_all (fun (_, m) -> m = 1)
       (a.max_concurrent_by_name @ b.max_concurrent_by_name));
  (* and the two are literally the same record type: a result from one
     entry point type-checks wherever the other's does *)
  let as_agg (r : Runtime.Domain_runner.result) : Runtime.Agg.result = r in
  Alcotest.(check int) "shared constructor" (as_agg a).violations (as_agg b).violations

let () =
  Alcotest.run "runtime"
    [
      ("store", [ Alcotest.test_case "atomic store" `Quick test_atomic_store ]);
      ( "domains",
        [
          Alcotest.test_case "split across domains" `Slow test_split_domains;
          Alcotest.test_case "filter across domains" `Slow test_filter_domains;
          Alcotest.test_case "ma across domains" `Slow test_ma_domains;
          Alcotest.test_case "pipeline across domains" `Slow test_pipeline_domains;
        ] );
      ( "faults",
        [
          Alcotest.test_case "parked holder, others wait-free" `Slow
            test_park_holding_domains;
          Alcotest.test_case "stall + slow lane" `Slow test_stall_and_slow_domains;
          Alcotest.test_case "two parked of four" `Slow test_park_two_of_four;
          Alcotest.test_case "all parked rejected" `Quick test_all_park_raises;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "bare crash leaks" `Slow test_crash_holding_leaks;
          Alcotest.test_case "recovered crash reclaims" `Slow test_run_recovered_reclaims;
          Alcotest.test_case "run and run_recovered share one schema" `Slow
            test_run_vs_recovered_schema;
        ] );
    ]
