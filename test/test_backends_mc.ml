(* Model-check closure for the newest backends.  LevelArray and the
   compact splitter cascade must close exhaustively at 2-process sizes
   with the reductions on, agree with plain DFS on every verdict, and
   stay clean under park and crash fault plans (the park-only cases
   keep POR sound, so those also assert completeness).  The seeded
   mutants of both backends must yield a concrete replayable
   counterexample. *)

open Shared_mem
module Mc = Sim.Model_check
module F = Sim.Faults
module La = Renaming.Level_array
module Cs = Renaming.Compact_split
module Ml = Renaming.Mutations.Mutant_level
module Mcs = Renaming.Mutations.Mutant_compact

let reduced = { Mc.default_options with max_paths = 500_000 }

let plain =
  { Mc.por = false; cache_bound = 0; max_steps = 10_000; max_paths = 2_000_000 }

let plan s =
  match F.of_string s with
  | Ok p -> p
  | Error e -> Alcotest.failf "bad plan %S: %s" s e

(* ----- builders ----- *)

let proto_builder (type a l)
    (module P : Renaming.Protocol.S with type t = a and type lease = l) make ~pids
    ~cycles () : Mc.config =
  let layout = Layout.create () in
  let inst = make layout in
  let work = Layout.alloc layout ~name:"work" 0 in
  let u = Sim.Checks.uniqueness ~name_space:(P.name_space inst) () in
  {
    layout;
    procs =
      Array.map
        (fun pid -> (pid, Test_util.protocol_cycles (module P) inst ~work ~cycles))
        pids;
    monitor = Sim.Checks.uniqueness_monitor u;
  }

let pids2 = [| 1; 4 |]
let pids3 = [| 0; 3; 7 |]

let level_builder ~pids ~k ~cycles () =
  proto_builder (module La) (fun l -> La.create l ~k) ~pids ~cycles ()

let compact_builder ~pids ~k ~cycles () =
  proto_builder (module Cs) (fun l -> Cs.create l ~k) ~pids ~cycles ()

let mutant_level_builder ~cycles () =
  proto_builder (module Ml)
    (fun l -> Ml.create l Ml.Torn_claim ~k:2)
    ~pids:[| 1; 4 |] ~cycles ()

let mutant_compact_builder ~cycles () =
  proto_builder (module Mcs) (fun l -> Mcs.create l ~k:2) ~pids:[| 1; 4 |] ~cycles ()

(* ----- exhaustive closure at 2-proc sizes ----- *)

let exhaustive name builder =
  let r = Mc.check ~options:reduced builder in
  Test_util.check_no_violation name r.outcome;
  Alcotest.(check bool) (name ^ ": complete") true r.outcome.complete;
  Alcotest.(check bool) (name ^ ": pruned something") true
    (r.stats.pruned_by_sleep > 0 || r.stats.pruned_by_cache > 0)

let test_exhaustive_2proc () =
  (* the LevelArray backstop loop is unbounded in the source; closure
     here is the proof that every schedule of the bounded-cycle system
     is finite (each wrap needs a fresh claim by the finitely-cycled
     peer) *)
  exhaustive "level k=2 cycles=2" (level_builder ~pids:pids2 ~k:2 ~cycles:2);
  exhaustive "compact k=2 cycles=2" (compact_builder ~pids:pids2 ~k:2 ~cycles:2);
  (* the 3-stage cascade, still driven by two processes *)
  exhaustive "compact k=3 cycles=1" (compact_builder ~pids:pids2 ~k:3 ~cycles:1)

(* ----- reduced/plain verdict agreement ----- *)

let agree_clean name builder =
  let p = Mc.check ~options:plain builder in
  let r = Mc.check ~options:reduced builder in
  Test_util.check_no_violation (name ^ " (plain)") p.outcome;
  Test_util.check_no_violation (name ^ " (reduced)") r.outcome;
  Alcotest.(check bool) (name ^ ": plain complete") true p.outcome.complete;
  Alcotest.(check bool) (name ^ ": reduced complete") true r.outcome.complete;
  Alcotest.(check bool)
    (Printf.sprintf "%s: reduced paths (%d) < plain paths (%d)" name r.outcome.paths
       p.outcome.paths)
    true
    (r.outcome.paths < p.outcome.paths)

let test_agree_correct () =
  agree_clean "level k=2" (level_builder ~pids:pids2 ~k:2 ~cycles:1);
  agree_clean "compact k=2" (compact_builder ~pids:pids2 ~k:2 ~cycles:1)

(* ----- the seeded mutants die, with replayable schedules ----- *)

let mutant_dies name builder =
  let p = Mc.check ~options:plain builder in
  let r = Mc.check ~options:reduced builder in
  Alcotest.(check bool) (name ^ ": plain finds the bug") true
    (p.outcome.violation <> None);
  match r.outcome.violation with
  | None -> Alcotest.failf "%s: reduced search missed the bug" name
  | Some v -> (
      match Mc.replay builder v.schedule with
      | Error _ -> ()
      | Ok () -> Alcotest.failf "%s: violating schedule does not replay" name)

let test_mutants_die () =
  mutant_dies "level torn-claim" (mutant_level_builder ~cycles:1);
  mutant_dies "compact no-interference" (mutant_compact_builder ~cycles:1)

(* ----- park plans: POR stays sound and the verdict stays clean ----- *)

let park_clean name builder faults =
  Alcotest.(check bool) (name ^ ": plan is POR-safe") true (F.por_safe faults);
  let r = Mc.check ~options:reduced ~faults builder in
  let p = Mc.check ~options:plain ~faults builder in
  Test_util.check_no_violation (name ^ " (reduced)") r.outcome;
  Test_util.check_no_violation (name ^ " (plain)") p.outcome;
  Alcotest.(check bool) (name ^ ": reduced complete") true r.outcome.complete;
  Alcotest.(check bool) (name ^ ": reduction pruned") true
    (r.outcome.paths < p.outcome.paths)

let test_park_plans () =
  (* parked mid-probe: the victim may hold a claimed bit / a splitter's
     LAST without ever acquiring; the peer must still rename uniquely *)
  park_clean "level park mid-probe" (level_builder ~pids:pids2 ~k:2 ~cycles:2) (plan "park@p0:acc2");
  park_clean "compact park mid-cascade"
    (compact_builder ~pids:pids2 ~k:3 ~cycles:2)
    (plan "park@p0:acc3");
  (* parked while holding: the name stays leaked for the whole run *)
  park_clean "level park holding" (level_builder ~pids:pids2 ~k:2 ~cycles:2)
    (plan "park@p1:acquire");
  park_clean "compact park holding"
    (compact_builder ~pids:pids2 ~k:3 ~cycles:2)
    (plan "park@p1:acquire")

(* ----- crash plans: death while holding must not break uniqueness ----- *)

let test_crash_plans () =
  List.iter
    (fun (name, builder, spec) ->
      let faults = plan spec in
      Alcotest.(check bool) (name ^ ": plan is POR-safe") true (F.por_safe faults);
      let r = Mc.check ~options:reduced ~faults builder in
      Test_util.check_no_violation name r.outcome;
      Alcotest.(check bool) (name ^ ": complete") true r.outcome.complete)
    [
      ("level crash holding", level_builder ~pids:pids2 ~k:2 ~cycles:2, "crash@p0:acquire");
      ("level crash mid-probe", level_builder ~pids:pids2 ~k:2 ~cycles:2, "crash@p1:acc1");
      ("compact crash holding", compact_builder ~pids:pids2 ~k:3 ~cycles:2, "crash@p0:acquire");
      ("compact crash mid-cascade", compact_builder ~pids:pids2 ~k:3 ~cycles:2, "crash@p1:acc2");
    ]

(* ----- 3 processes: sampled sweeps at the full concurrency bound ----- *)

let test_three_procs_sampled () =
  List.iter
    (fun (name, builder) ->
      let r = Mc.sample ~seeds:(Test_util.seeds 300) builder in
      (match r.violation with
      | None -> ()
      | Some v -> Alcotest.failf "%s: %s" name v.message);
      Alcotest.(check int) (name ^ ": all seeds ran") 300 r.paths)
    [
      ("level k=3 x3", level_builder ~pids:pids3 ~k:3 ~cycles:2);
      ("compact k=3 x3", compact_builder ~pids:pids3 ~k:3 ~cycles:2);
    ]

let () =
  Alcotest.run "backends_mc"
    [
      ( "closure",
        [
          Alcotest.test_case "exhaustive at 2 procs" `Slow test_exhaustive_2proc;
          Alcotest.test_case "reduced = plain on correct backends" `Slow
            test_agree_correct;
          Alcotest.test_case "mutants die with replayable schedules" `Slow
            test_mutants_die;
        ] );
      ( "faults",
        [
          Alcotest.test_case "park plans close exhaustively" `Slow test_park_plans;
          Alcotest.test_case "crash plans close exhaustively" `Slow test_crash_plans;
        ] );
      ( "sampling",
        [ Alcotest.test_case "3 procs, 300 seeds" `Slow test_three_procs_sampled ] );
    ]
