(* The structural flight recorder: Loc packing, ring accounting and
   serialization, probe wiring through the stores, occupancy/provenance
   reconstruction on simulator runs, the Loc lint (unique, seed-stable,
   in-bounds labels), and the Chrome trace-event export schema. *)

open Shared_mem
module Split = Renaming.Split
module Filter = Renaming.Filter
module Params = Renaming.Params
module Splitter = Renaming.Splitter
module Flight = Obs.Flight
module Loc = Obs.Loc

let loc_t = Alcotest.testable Loc.pp Loc.equal

let contains sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* ----- Loc encode/decode ----- *)

let test_loc_roundtrip () =
  let cases =
    [
      Loc.Splitter { stage = 0; node = 0 };
      Loc.Splitter { stage = 63; node = 12345 };
      Loc.Splitter { stage = 3; node = (1 lsl 55) - 1 };
      Loc.Mutex { stage = 0; tree = 0; level = 1; node = 0 };
      Loc.Mutex { stage = 63; tree = (1 lsl 25) - 1; level = 63; node = (1 lsl 24) - 1 };
      Loc.Mutex { stage = 2; tree = 17; level = 4; node = 9 };
    ]
  in
  List.iter
    (fun loc ->
      Alcotest.check loc_t
        (Printf.sprintf "roundtrip %s" (Loc.to_string loc))
        loc
        (Loc.decode (Loc.encode loc)))
    cases;
  Alcotest.(check int) "encode injective" (List.length cases)
    (List.length (List.sort_uniq compare (List.map Loc.encode cases)));
  List.iter
    (fun (field, bad) ->
      Alcotest.check_raises
        (Printf.sprintf "out-of-range %s rejected" field)
        (Invalid_argument ("Loc.encode: " ^ field))
        (fun () -> ignore (Loc.encode bad)))
    [
      ("stage", Loc.Splitter { stage = 64; node = 0 });
      ("node", Loc.Splitter { stage = 0; node = 1 lsl 55 });
      ("tree", Loc.Mutex { stage = 0; tree = 1 lsl 25; level = 1; node = 0 });
      ("level", Loc.Mutex { stage = 0; tree = 0; level = 64; node = 0 });
      ("node", Loc.Mutex { stage = 0; tree = 0; level = 1; node = 1 lsl 24 });
    ]

(* ----- ring accounting, merge, serialization ----- *)

let test_ring_overflow_and_merge () =
  let ring = Flight.create ~capacity:4 () in
  for i = 1 to 10 do
    Flight.record ring ~clock:i ~pid:7 (Flight.Acquired i)
  done;
  Alcotest.(check int) "length capped" 4 (Flight.length ring);
  Alcotest.(check int) "dropped counted" 6 (Flight.dropped ring);
  Alcotest.(check int) "total" 10 (Flight.total ring);
  let names =
    List.filter_map
      (fun (r : Flight.record) ->
        match r.event with Flight.Acquired n -> Some n | _ -> None)
      (Flight.items ring)
  in
  Alcotest.(check (list int)) "oldest evicted first" [ 7; 8; 9; 10 ] names;
  let into = Flight.create ~capacity:16 () in
  Flight.record into ~clock:0 ~pid:1 (Flight.Mark ("before", 0));
  Flight.merge ~into ring;
  Alcotest.(check int) "merge appends" 5 (Flight.length into);
  Alcotest.(check int) "merge carries drops" 6 (Flight.dropped into)

let test_ring_serialization_roundtrip () =
  let loc = Loc.Splitter { stage = 1; node = 4 } in
  let mloc = Loc.Mutex { stage = 0; tree = 5; level = 2; node = 1 } in
  let ring = Flight.create ~capacity:8 () in
  Flight.record ring ~clock:1 ~pid:3 (Flight.Enter loc);
  Flight.record ring ~clock:2 ~pid:3 (Flight.Exit (loc, -1));
  Flight.record ring ~clock:3 ~pid:4 (Flight.Check (mloc, false));
  Flight.record ring ~clock:4 ~pid:4 (Flight.Release mloc);
  Flight.record ring ~clock:5 ~pid:3 (Flight.Acquired 9);
  Flight.record ring ~clock:6 ~pid:3 (Flight.Released 9);
  Flight.record ring ~clock:7 ~pid:0 (Flight.Mark ("crash plan fired", 2));
  let doc = Flight.to_string ring in
  Alcotest.(check bool) "header" true
    (String.length doc > 18 && String.sub doc 0 18 = "renaming.flight/v1");
  match Flight.of_string doc with
  | Error e -> Alcotest.fail ("of_string failed: " ^ e)
  | Ok ring' ->
      Alcotest.(check int) "same length" (Flight.length ring) (Flight.length ring');
      Alcotest.(check int) "same drops" (Flight.dropped ring) (Flight.dropped ring');
      List.iter2
        (fun (a : Flight.record) (b : Flight.record) ->
          Alcotest.(check int) "clock" a.clock b.clock;
          Alcotest.(check int) "pid" a.pid b.pid;
          let same =
            match (a.event, b.event) with
            | Flight.Mark (s, v), Flight.Mark (s', v') ->
                (* whitespace in notes is sanitized to '_' *)
                v = v'
                && s' = String.map (fun c -> if c = ' ' then '_' else c) s
            | ea, eb -> ea = eb
          in
          Alcotest.(check bool) "event" true same)
        (Flight.items ring) (Flight.items ring')

let test_of_string_rejects_garbage () =
  (match Flight.of_string "not a flight document" with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error _ -> ());
  match Flight.of_string "renaming.flight/v1 dropped=0\ne 1 2 99 0 0\n" with
  | Ok _ -> Alcotest.fail "accepted an unknown event kind"
  | Error _ -> ()

(* ----- probes through the sequential store ----- *)

let test_seq_store_probe_events () =
  let layout = Layout.create () in
  let loc = Loc.Splitter { stage = 2; node = 7 } in
  let sp = Splitter.create ~loc layout in
  let mem = Store.seq_create layout in
  let events = ref [] in
  let ops =
    Store.probed (fun e -> events := e :: !events) (Store.seq_ops mem ~pid:5)
  in
  let tok = Splitter.enter sp ops in
  Splitter.release sp ops tok;
  (match List.rev !events with
  | [ Obs.Probe.Enter l1; Obs.Probe.Exit (l2, d); Obs.Probe.Release l3 ] ->
      Alcotest.check loc_t "enter loc" loc l1;
      Alcotest.check loc_t "exit loc" loc l2;
      Alcotest.check loc_t "release loc" loc l3;
      Alcotest.(check int) "exit direction is the token's" (Splitter.direction tok) d
  | evs ->
      Alcotest.fail
        (Printf.sprintf "unexpected event shape (%d events)" (List.length evs)));
  (* the null probe really is free: same splitter, no events *)
  events := [];
  let bare = Store.seq_ops mem ~pid:5 in
  let tok = Splitter.enter sp bare in
  Splitter.release sp bare tok;
  Alcotest.(check int) "null probe records nothing" 0 (List.length !events)

(* ----- simulator capture helpers ----- *)

(* Mirrors the CLI's `trace record` simulator path. *)
let record_split_run ~k ~procs ~cycles ~seed =
  let layout = Layout.create () in
  let sp = Split.create layout ~k in
  let work = Layout.alloc layout ~name:"work" 0 in
  let fr = Sim.Flight_rec.create () in
  let body (ops : Store.ops) =
    let ops = Sim.Flight_rec.wrap fr ops in
    for _ = 1 to cycles do
      let lease = Split.get_name sp ops in
      Sim.Sched.emit (Sim.Event.Acquired (Split.name_of sp lease));
      ignore (ops.read work);
      Sim.Sched.emit (Sim.Event.Released (Split.name_of sp lease));
      Split.release_name sp ops lease
    done
  in
  let u = Sim.Checks.uniqueness ~name_space:(Split.name_space sp) () in
  let t =
    Sim.Sched.create
      ~monitor:(Sim.Flight_rec.monitor ~chain:(Sim.Checks.uniqueness_monitor u) fr)
      layout
      (Array.init procs (fun pid -> (pid, body)))
  in
  ignore (Sim.Sched.run t (Sim.Sched.random (Sim.Rng.make seed)));
  Sim.Flight_rec.ring fr

let record_filter_run ~k ~s ~cycles ~seed =
  let layout = Layout.create () in
  let (p : Params.filter_params) = Params.choose ~k ~s in
  let pids = Array.init k (fun i -> i * (s / k) mod s) in
  let f = Filter.create layout { k; d = p.d; z = p.z; s; participants = pids } in
  let work = Layout.alloc layout ~name:"work" 0 in
  let fr = Sim.Flight_rec.create () in
  let body (ops : Store.ops) =
    let ops = Sim.Flight_rec.wrap fr ops in
    for _ = 1 to cycles do
      let lease = Filter.get_name f ops in
      Sim.Sched.emit (Sim.Event.Acquired (Filter.name_of f lease));
      ignore (ops.read work);
      Sim.Sched.emit (Sim.Event.Released (Filter.name_of f lease));
      Filter.release_name f ops lease
    done
  in
  let u = Sim.Checks.uniqueness ~name_space:(Filter.name_space f) () in
  let t =
    Sim.Sched.create
      ~monitor:(Sim.Flight_rec.monitor ~chain:(Sim.Checks.uniqueness_monitor u) fr)
      layout
      (Array.map (fun pid -> (pid, body)) pids)
  in
  ignore (Sim.Sched.run t (Sim.Sched.random (Sim.Rng.make seed)));
  (Sim.Flight_rec.ring fr, p, Filter.name_space f)

(* ----- analysis on a seeded SPLIT run ----- *)

let test_split_analysis () =
  let k = 4 in
  let ring = record_split_run ~k ~procs:4 ~cycles:3 ~seed:11 in
  let report = Obs.Analyze.analyze (Flight.items ring) in
  Alcotest.(check (list string)) "occupancy within Theorem 5" []
    (Obs.Analyze.check report);
  Alcotest.(check bool) "acquisitions reconstructed" true (report.acquisitions <> []);
  List.iter
    (fun (a : Obs.Analyze.acquisition) ->
      Alcotest.(check int)
        (Printf.sprintf "p%d path has depth k-1" a.pid)
        (k - 1) (List.length a.path);
      (* provenance must explain the granted name: the SPLIT name
         formula over the recorded path directions *)
      let name, _ =
        List.fold_left
          (fun (acc, w) ((_ : Loc.t), d) -> (acc + ((1 + d) * w), w * 3))
          (0, 1) a.path
      in
      Alcotest.(check int) (Printf.sprintf "p%d name from path" a.pid) a.name name)
    report.acquisitions;
  let hm = Obs.Analyze.heatmap report in
  Alcotest.(check bool) "heatmap has depth rows" true (contains "depth 0" hm)

(* every Acquired in the ring has a matching provenance entry *)
let test_split_provenance_complete () =
  let ring = record_split_run ~k:4 ~procs:4 ~cycles:2 ~seed:3 in
  let records = Flight.items ring in
  let report = Obs.Analyze.analyze records in
  let grants =
    List.filter_map
      (fun (r : Flight.record) ->
        match r.event with Flight.Acquired n -> Some (r.pid, n) | _ -> None)
      records
  in
  Alcotest.(check bool) "run produced grants" true (grants <> []);
  Alcotest.(check int) "one acquisition per grant" (List.length grants)
    (List.length report.acquisitions);
  List.iter
    (fun (pid, n) ->
      Alcotest.(check bool)
        (Printf.sprintf "grant (p%d, name %d) reconstructed" pid n)
        true
        (List.exists
           (fun (a : Obs.Analyze.acquisition) -> a.pid = pid && a.name = n)
           report.acquisitions))
    grants

(* ----- synthetic violations are caught ----- *)

let test_check_flags_violations () =
  let loc = Loc.Splitter { stage = 0; node = 0 } in
  let ring = Flight.create ~capacity:32 () in
  (* two processes inside (l = 2), both assigned direction +1: the
     per-direction bound is max 1 (l - 1) = 1 *)
  Flight.record ring ~clock:1 ~pid:1 (Flight.Enter loc);
  Flight.record ring ~clock:2 ~pid:2 (Flight.Enter loc);
  Flight.record ring ~clock:3 ~pid:1 (Flight.Exit (loc, 1));
  Flight.record ring ~clock:4 ~pid:2 (Flight.Exit (loc, 1));
  (match Obs.Analyze.check (Obs.Analyze.analyze (Flight.items ring)) with
  | [] -> Alcotest.fail "splitter direction overflow not flagged"
  | v :: _ ->
      Alcotest.(check bool) "message names the splitter" true (contains "splitter" v));
  (* three processes inside one 2-process mutex block *)
  let mloc = Loc.Mutex { stage = 0; tree = 1; level = 1; node = 0 } in
  let ring = Flight.create ~capacity:32 () in
  List.iteri
    (fun i pid -> Flight.record ring ~clock:(i + 1) ~pid (Flight.Enter mloc))
    [ 1; 2; 3 ];
  (match Obs.Analyze.check (Obs.Analyze.analyze (Flight.items ring)) with
  | [] -> Alcotest.fail "mutex over-occupancy not flagged"
  | v :: _ ->
      Alcotest.(check bool) "message names the mutex" true (contains "mutex" v));
  (* an acquisition blocked in 3 distinct trees against a bound of 2 *)
  let block m = Loc.Mutex { stage = 0; tree = m; level = 1; node = 0 } in
  let ring = Flight.create ~capacity:32 () in
  List.iteri
    (fun i m ->
      Flight.record ring ~clock:(i + 1) ~pid:1 (Flight.Check (block m, false)))
    [ 2; 4; 6 ];
  Flight.record ring ~clock:9 ~pid:1 (Flight.Check (block 8, true));
  Flight.record ring ~clock:10 ~pid:1 (Flight.Acquired 8);
  let report = Obs.Analyze.analyze (Flight.items ring) in
  Alcotest.(check int) "three blocked trees" 3 report.max_blocked_trees;
  Alcotest.(check bool) "within a loose bound" true
    (Obs.Analyze.check ~blocked_bound:3 report = []);
  match Obs.Analyze.check ~blocked_bound:2 report with
  | [] -> Alcotest.fail "blocked-tree bound violation not flagged"
  | v :: _ ->
      Alcotest.(check bool) "message names blocked trees" true (contains "blocked" v)

(* ----- FILTER: Lemma 9 bound on blocked trees ----- *)

let test_filter_blocked_bound () =
  let k = 3 and s = 27 in
  let ring, (p : Params.filter_params), _ = record_filter_run ~k ~s ~cycles:2 ~seed:5 in
  let report = Obs.Analyze.analyze (Flight.items ring) in
  let bound = p.d * (k - 1) in
  Alcotest.(check (list string))
    (Printf.sprintf "blocked trees within d(k-1) = %d" bound)
    []
    (Obs.Analyze.check ~blocked_bound:bound report);
  Alcotest.(check bool) "run produced grants" true (report.acquisitions <> []);
  Alcotest.(check bool) "every grant won the tree of its name" true
    (List.for_all
       (fun (a : Obs.Analyze.acquisition) -> a.won_tree = Some a.name)
       report.acquisitions)

(* ----- Loc lint: unique, seed-stable, within declared bounds ----- *)

let locs_of records =
  List.filter_map
    (fun (r : Flight.record) ->
      match r.event with
      | Flight.Enter l | Flight.Exit (l, _) | Flight.Check (l, _) | Flight.Release l
        ->
          Some l
      | Flight.Acquired _ | Flight.Released _ | Flight.Mark _ -> None)
    records
  |> List.sort_uniq Loc.compare

let test_loc_lint () =
  (* SPLIT(k=4): 13 interior splitters, stage 0, heap numbering *)
  let k = 4 in
  let interior = (Numeric.Intmath.pow 3 (k - 1) - 1) / 2 in
  let run1 = locs_of (Flight.items (record_split_run ~k ~procs:4 ~cycles:3 ~seed:7)) in
  let run2 = locs_of (Flight.items (record_split_run ~k ~procs:4 ~cycles:3 ~seed:7)) in
  Alcotest.(check bool) "split labels stable across identically-seeded runs" true
    (List.equal Loc.equal run1 run2);
  List.iter
    (fun l ->
      match l with
      | Loc.Splitter { stage; node } ->
          Alcotest.(check int) "split stage 0" 0 stage;
          Alcotest.(check bool)
            (Printf.sprintf "splitter node %d within the tree" node)
            true
            (node >= 0 && node < interior)
      | Loc.Mutex _ -> Alcotest.fail "SPLIT run emitted a mutex label")
    run1;
  Alcotest.(check int) "split codes unique" (List.length run1)
    (List.length (List.sort_uniq compare (List.map Loc.encode run1)));
  (* FILTER(k=3, S=27): trees keyed by destination name, binary trees
     over the source space *)
  let k = 3 and s = 27 in
  let ring1, _, name_space = record_filter_run ~k ~s ~cycles:2 ~seed:9 in
  let ring2, _, _ = record_filter_run ~k ~s ~cycles:2 ~seed:9 in
  let f1 = locs_of (Flight.items ring1) and f2 = locs_of (Flight.items ring2) in
  Alcotest.(check bool) "filter labels stable across identically-seeded runs" true
    (List.equal Loc.equal f1 f2);
  let levels = Numeric.Intmath.ceil_log2 (max s 2) in
  List.iter
    (fun l ->
      match l with
      | Loc.Mutex { stage; tree; level; node } ->
          Alcotest.(check int) "filter stage 0" 0 stage;
          Alcotest.(check bool)
            (Printf.sprintf "tree %d a legal destination name" tree)
            true
            (tree >= 0 && tree < name_space);
          Alcotest.(check bool)
            (Printf.sprintf "level %d within 1..%d" level levels)
            true
            (level >= 1 && level <= levels);
          Alcotest.(check bool)
            (Printf.sprintf "node %d within level %d" node level)
            true
            (node >= 0 && node < 1 lsl (levels - level))
      | Loc.Splitter _ -> Alcotest.fail "FILTER run emitted a splitter label")
    f1;
  Alcotest.(check int) "filter codes unique" (List.length f1)
    (List.length (List.sort_uniq compare (List.map Loc.encode f1)))

(* ----- Chrome trace-event export: a minimal JSON schema check ----- *)

(* A tiny hand-rolled JSON parser (no JSON library in the image): just
   enough of RFC 8259 to validate the exporter's output shape. *)
type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at byte %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = Some c then advance () else fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some (('"' | '\\' | '/') as c) ->
              Buffer.add_char buf c;
              advance ();
              go ()
          | Some 'n' ->
              Buffer.add_char buf '\n';
              advance ();
              go ()
          | Some 't' ->
              Buffer.add_char buf '\t';
              advance ();
              go ()
          | Some 'r' ->
              Buffer.add_char buf '\r';
              advance ();
              go ()
          | Some 'b' ->
              Buffer.add_char buf '\b';
              advance ();
              go ()
          | Some 'f' ->
              Buffer.add_char buf '\012';
              advance ();
              go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              (* keep the raw escape; code points don't matter here *)
              Buffer.add_string buf (String.sub s !pos 4);
              pos := !pos + 4;
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let literal word v =
    if
      !pos + String.length word <= n
      && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, v) :: acc)
            | _ -> fail "expected , or }"
          in
          Obj (members [])
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          Arr (elements [])
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let test_perfetto_schema () =
  let ring = record_split_run ~k:4 ~procs:4 ~cycles:2 ~seed:13 in
  let doc = Obs.Perfetto.to_chrome_json (Flight.items ring) in
  let json =
    match parse_json doc with
    | j -> j
    | exception Bad_json m -> Alcotest.fail ("export is not valid JSON: " ^ m)
  in
  let top =
    match json with Obj kvs -> kvs | _ -> Alcotest.fail "top level not an object"
  in
  let events =
    match List.assoc_opt "traceEvents" top with
    | Some (Arr evs) -> evs
    | _ -> Alcotest.fail "traceEvents missing or not an array"
  in
  Alcotest.(check bool) "events nonempty" true (events <> []);
  let field k ev = match ev with Obj kvs -> List.assoc_opt k kvs | _ -> None in
  (* async b/e pairs balance per (id, tid); duration B/E per tid — a
     clean run closes every interval, and an end must never precede
     its begin *)
  let balance : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      (match ev with Obj _ -> () | _ -> Alcotest.fail "event not an object");
      let ph =
        match field "ph" ev with
        | Some (Str p) -> p
        | _ -> Alcotest.fail "event without ph"
      in
      Alcotest.(check bool)
        (Printf.sprintf "known phase %S" ph)
        true
        (List.mem ph [ "M"; "b"; "e"; "B"; "E"; "i" ]);
      (match field "name" ev with
      | Some (Str _) -> ()
      | _ -> Alcotest.fail "event without a name string");
      if ph <> "M" then begin
        (match field "ts" ev with
        | Some (Num _) -> ()
        | _ -> Alcotest.fail "event without numeric ts");
        match (field "pid" ev, field "tid" ev) with
        | Some (Num _), Some (Num _) -> ()
        | _ -> Alcotest.fail "event without numeric pid/tid"
      end;
      match ph with
      | "b" | "e" ->
          let key =
            match (field "id" ev, field "tid" ev) with
            | Some (Str i), Some (Num t) -> Printf.sprintf "%s/%g" i t
            | _ -> Alcotest.fail "async event without a string id"
          in
          let d = if ph = "b" then 1 else -1 in
          let v = Option.value ~default:0 (Hashtbl.find_opt balance key) + d in
          if v < 0 then Alcotest.fail ("async end before begin for " ^ key);
          Hashtbl.replace balance key v
      | "B" | "E" ->
          let key =
            match field "tid" ev with
            | Some (Num t) -> Printf.sprintf "tid%g" t
            | _ -> Alcotest.fail "duration event without tid"
          in
          let d = if ph = "B" then 1 else -1 in
          let v = Option.value ~default:0 (Hashtbl.find_opt balance key) + d in
          if v < 0 then Alcotest.fail ("duration end before begin on " ^ key);
          Hashtbl.replace balance key v
      | _ -> ())
    events;
  Hashtbl.iter
    (fun key v ->
      Alcotest.(check int) (Printf.sprintf "interval %s closed" key) 0 v)
    balance;
  match List.assoc_opt "otherData" top with
  | Some (Obj other) -> (
      match List.assoc_opt "schema" other with
      | Some (Str "renaming.flight/v1") -> ()
      | _ -> Alcotest.fail "otherData.schema missing")
  | _ -> Alcotest.fail "otherData missing"

let () =
  Alcotest.run "flight"
    [
      ( "loc",
        [
          Alcotest.test_case "encode/decode roundtrip + bounds" `Quick
            test_loc_roundtrip;
          Alcotest.test_case "lint: unique, stable, in-bounds" `Quick test_loc_lint;
        ] );
      ( "ring",
        [
          Alcotest.test_case "overflow + merge accounting" `Quick
            test_ring_overflow_and_merge;
          Alcotest.test_case "to_string/of_string roundtrip" `Quick
            test_ring_serialization_roundtrip;
          Alcotest.test_case "of_string rejects garbage" `Quick
            test_of_string_rejects_garbage;
          Alcotest.test_case "seq-store probe wiring" `Quick
            test_seq_store_probe_events;
        ] );
      ( "analyze",
        [
          Alcotest.test_case "SPLIT occupancy + name provenance" `Quick
            test_split_analysis;
          Alcotest.test_case "every grant reconstructed" `Quick
            test_split_provenance_complete;
          Alcotest.test_case "synthetic violations flagged" `Quick
            test_check_flags_violations;
          Alcotest.test_case "FILTER blocked trees within d(k-1)" `Quick
            test_filter_blocked_bound;
        ] );
      ( "export",
        [
          Alcotest.test_case "Chrome trace-event schema" `Quick test_perfetto_schema;
        ] );
    ]
