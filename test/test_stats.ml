let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let test_summarize () =
  let s = Stats.summarize_ints [ 4; 1; 3; 2; 5 ] in
  Alcotest.(check int) "n" 5 s.n;
  Alcotest.(check bool) "mean" true (feq s.mean 3.0);
  Alcotest.(check bool) "min" true (feq s.min 1.0);
  Alcotest.(check bool) "max" true (feq s.max 5.0);
  Alcotest.(check bool) "median" true (feq s.p50 3.0);
  (* population stddev: divisor n=5 gives sqrt(10/5); the sample
     (n-1) convention would give sqrt(10/4) ~ 1.58 instead *)
  Alcotest.(check bool) "population stddev" true (feq s.stddev (sqrt 2.0));
  Alcotest.check_raises "empty" (Invalid_argument "Stats.summarize: empty") (fun () ->
      ignore (Stats.summarize []))

let test_summarize_population_convention () =
  (* [1;2]: population variance ((0.5)^2+(0.5)^2)/2 = 0.25 -> 0.5;
     sample variance would be 0.5 -> ~0.707 *)
  let s = Stats.summarize [ 1.0; 2.0 ] in
  Alcotest.(check bool) "two-point stddev" true (feq s.stddev 0.5);
  (* a single observation has zero spread under the population
     convention; the sample convention would divide by zero *)
  let s1 = Stats.summarize [ 42.0 ] in
  Alcotest.(check bool) "singleton stddev" true (feq s1.stddev 0.0)

let test_percentile () =
  let a = [| 10.0; 20.0; 30.0; 40.0 |] in
  Alcotest.(check bool) "p0" true (feq (Stats.percentile a 0.0) 10.0);
  Alcotest.(check bool) "p100" true (feq (Stats.percentile a 1.0) 40.0);
  Alcotest.(check bool) "p50 nearest rank" true (feq (Stats.percentile a 0.5) 30.0)

let test_linear_fit () =
  let slope, intercept = Stats.linear_fit [ (0.0, 1.0); (1.0, 3.0); (2.0, 5.0) ] in
  Alcotest.(check bool) "slope 2" true (feq slope 2.0);
  Alcotest.(check bool) "intercept 1" true (feq intercept 1.0);
  Alcotest.check_raises "single point" (Invalid_argument "Stats.linear_fit: need at least 2 points")
    (fun () -> ignore (Stats.linear_fit [ (1.0, 1.0) ]))

let test_growth_exponent () =
  let pts = List.map (fun x -> (float_of_int x, float_of_int (x * x))) [ 1; 2; 4; 8; 16 ] in
  Alcotest.(check bool) "quadratic" true (feq ~eps:1e-6 (Stats.growth_exponent pts) 2.0);
  let lin = List.map (fun x -> (float_of_int x, 7.0 *. float_of_int x)) [ 1; 3; 9; 27 ] in
  Alcotest.(check bool) "linear" true (feq ~eps:1e-6 (Stats.growth_exponent lin) 1.0)

let test_table () =
  let t = Stats.table [ "k"; "cost" ] in
  Stats.add_row t [ "2"; "14" ];
  Stats.add_row t [ "10"; "63" ];
  Alcotest.(check string) "render"
    "k  | cost\n---+-----\n2  | 14  \n10 | 63  " (Stats.render t);
  Alcotest.check_raises "bad row" (Invalid_argument "Stats.add_row: column count mismatch")
    (fun () -> Stats.add_row t [ "1" ])

let test_csv () =
  let t = Stats.table [ "name"; "value" ] in
  Stats.add_row t [ "plain"; "1" ];
  Stats.add_row t [ "with,comma"; "quote\"inside" ];
  Alcotest.(check string) "csv escaping"
    "name,value\nplain,1\n\"with,comma\",\"quote\"\"inside\"" (Stats.to_csv t)

let prop_linear_fit_recovers =
  Test_util.qtest "linear_fit recovers exact lines"
    QCheck2.Gen.(
      let* a = int_range (-50) 50 in
      let* b = int_range (-50) 50 in
      return (float_of_int a /. 4.0, float_of_int b /. 4.0))
    (fun (a, b) ->
      let pts = List.map (fun x -> (float_of_int x, (a *. float_of_int x) +. b)) [ 0; 1; 5; 9 ] in
      let slope, intercept = Stats.linear_fit pts in
      feq ~eps:1e-6 slope a && feq ~eps:1e-6 intercept b)

let prop_summary_bounds =
  Test_util.qtest "summary invariants"
    QCheck2.Gen.(list_size (int_range 1 60) (int_range (-1000) 1000))
    (fun xs ->
      let s = Stats.summarize_ints xs in
      s.min <= s.mean && s.mean <= s.max && s.min <= s.p50 && s.p50 <= s.p95 && s.p95 <= s.max)

let () =
  Alcotest.run "stats"
    [
      ( "unit",
        [
          Alcotest.test_case "summarize" `Quick test_summarize;
          Alcotest.test_case "population stddev convention" `Quick
            test_summarize_population_convention;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "linear fit" `Quick test_linear_fit;
          Alcotest.test_case "growth exponent" `Quick test_growth_exponent;
          Alcotest.test_case "table rendering" `Quick test_table;
          Alcotest.test_case "csv export" `Quick test_csv;
        ] );
      ("property", [ prop_linear_fit_recovers; prop_summary_bounds ]);
    ]
