(* The crash-recovery layer: lease lifecycle, admission control,
   epoch-fenced stale releases, footprint resets on behalf of corpses,
   and crash faults composed with the model checker.

   The unit tests drive Recovery directly on the sequential store (one
   caller, fully deterministic); the simulator tests add adversarial
   interleavings and real crash faults. *)

open Shared_mem
module F = Sim.Faults
module MC = Sim.Model_check
module Split = Renaming.Split

(* Fresh recovery-wrapped 2-process split; returns the wrapper and the
   sequential store its registers live in. *)
let wrap ?(capacity = 2) ?(lease_ttl = 2) () =
  let layout = Layout.create () in
  let sp = Split.create layout ~k:2 in
  let rc =
    Recovery.create
      (module Split)
      sp ~layout ~pids:[| 1; 2 |]
      (Recovery.default_config ~lease_ttl ~capacity ())
  in
  (rc, Store.seq_create layout)

let acquired = function
  | Recovery.Acquired l -> l
  | Recovery.Shed -> Alcotest.fail "unexpected shed"

(* ----- lease lifecycle on the sequential store ----- *)

let test_lifecycle () =
  let rc, seq = wrap () in
  let ops = Store.seq_ops seq ~pid:1 in
  let granted = ref (-1) in
  let l = acquired (Recovery.acquire rc ops ~on_grant:(fun n -> granted := n)) in
  Alcotest.(check int) "on_grant saw the name" (Recovery.name_of l) !granted;
  Alcotest.(check bool) "name in space" true
    (Recovery.name_of l >= 0 && Recovery.name_of l < Recovery.name_space rc);
  Alcotest.(check int) "one outstanding" 1 (Recovery.outstanding rc);
  Recovery.heartbeat rc ops l;
  let live = ref (-1) in
  Alcotest.(check bool) "live release" true
    (Recovery.release rc ops l ~on_live:(fun n -> live := n));
  Alcotest.(check int) "on_live saw the name" (Recovery.name_of l) !live;
  Alcotest.(check int) "none outstanding" 0 (Recovery.outstanding rc);
  let st = Recovery.stats rc in
  Alcotest.(check int) "acquired" 1 st.acquired;
  Alcotest.(check int) "released" 1 st.released;
  Alcotest.(check int) "no shed" 0 st.shed;
  Alcotest.(check int) "no stale release" 0 st.stale_releases

let test_shed_over_capacity () =
  let rc, seq = wrap ~capacity:1 () in
  let _held = acquired (Recovery.acquire rc (Store.seq_ops seq ~pid:1)) in
  (match Recovery.acquire rc (Store.seq_ops seq ~pid:2) with
  | Recovery.Shed -> ()
  | Recovery.Acquired _ -> Alcotest.fail "admission over capacity");
  let st = Recovery.stats rc in
  Alcotest.(check int) "one shed" 1 st.shed;
  Alcotest.(check bool) "backoff retries happened" true (st.retries >= 1);
  Alcotest.(check int) "holder unaffected" 1 (Recovery.outstanding rc)

(* The tentpole sequence in one deterministic scenario: a holder stops
   heartbeating (crash), its lease expires after exactly lease_ttl
   scans, the reclaim frees the admission slot (capacity 1!) so the
   other process can acquire, and the corpse's stale release is fenced
   even after the re-grant. *)
let test_reclaim_frees_and_fences () =
  let lease_ttl = 3 in
  let rc, seq = wrap ~capacity:1 ~lease_ttl () in
  let corpse_ops = Store.seq_ops seq ~pid:1 in
  let l = acquired (Recovery.acquire rc corpse_ops) in
  (* capacity is taken: the other process sheds *)
  (match Recovery.acquire rc (Store.seq_ops seq ~pid:2) with
  | Recovery.Shed -> ()
  | Recovery.Acquired _ -> Alcotest.fail "slot should be occupied");
  (* the corpse takes no further step; scan until expiry *)
  let scan_ops = Store.seq_ops seq ~pid:2 in
  let events = ref [] in
  let total = ref 0 in
  for _ = 1 to lease_ttl + 2 do
    total :=
      !total
      + Recovery.scan rc scan_ops ~on_reclaim:(fun ~pid ~name ~latency ->
            events := (pid, name, latency) :: !events)
  done;
  Alcotest.(check int) "exactly one reclaim" 1 !total;
  (match !events with
  | [ (pid, name, latency) ] ->
      Alcotest.(check int) "corpse pid" 1 pid;
      Alcotest.(check int) "corpse name" (Recovery.name_of l) name;
      Alcotest.(check int) "latency = ttl" lease_ttl latency
  | _ -> Alcotest.fail "one on_reclaim expected");
  Alcotest.(check int) "nothing outstanding" 0 (Recovery.outstanding rc);
  (* the freed slot admits the survivor *)
  let ops2 = Store.seq_ops seq ~pid:2 in
  let l2 = acquired (Recovery.acquire rc ops2) in
  (* the corpse's lease is epoch-fenced: releasing it must not touch
     the re-granted bookkeeping *)
  Alcotest.(check bool) "stale release fenced" false (Recovery.release rc corpse_ops l);
  Alcotest.(check int) "survivor unaffected" 1 (Recovery.outstanding rc);
  Alcotest.(check bool) "survivor's release is live" true (Recovery.release rc ops2 l2);
  let st = Recovery.stats rc in
  Alcotest.(check int) "expired" 1 st.expired;
  Alcotest.(check int) "reclaimed" 1 st.reclaimed;
  Alcotest.(check int) "stale_releases" 1 st.stale_releases;
  Alcotest.(check (list int)) "latency accounting" [ lease_ttl ] st.reclaim_latencies

let test_create_rejects () =
  let reject name f =
    match f () with
    | (_ : Recovery.t) -> Alcotest.failf "%s: Invalid_argument expected" name
    | exception Invalid_argument _ -> ()
  in
  reject "empty pids" (fun () ->
      let layout = Layout.create () in
      let sp = Split.create layout ~k:2 in
      Recovery.create (module Split) sp ~layout ~pids:[||]
        (Recovery.default_config ~capacity:1 ()));
  reject "duplicate pids" (fun () ->
      let layout = Layout.create () in
      let sp = Split.create layout ~k:2 in
      Recovery.create (module Split) sp ~layout ~pids:[| 1; 1 |]
        (Recovery.default_config ~capacity:2 ()));
  reject "no reset_footprint hook" (fun () ->
      let layout = Layout.create () in
      let m =
        Renaming.Mutations.Mutant_ma.create layout Renaming.Mutations.Mutant_ma.No_recheck
          ~k:2 ~s:3
      in
      Recovery.create
        (module Renaming.Mutations.Mutant_ma)
        m ~layout ~pids:[| 0; 2 |]
        (Recovery.default_config ~capacity:2 ()))

(* ----- reset on behalf of a corpse, per building block ----- *)

(* A corpse in the critical section of a PF block wedges the opposite
   direction forever; reset must free it. *)
let test_pf_mutex_reset () =
  let layout = Layout.create () in
  let b = Renaming.Pf_mutex.create layout in
  let seq = Store.seq_create layout in
  let ops0 = Store.seq_ops seq ~pid:0 in
  let ops1 = Store.seq_ops seq ~pid:1 in
  let s0 = Renaming.Pf_mutex.enter b ops0 ~dir:0 in
  Alcotest.(check bool) "corpse won" true (Renaming.Pf_mutex.check b ops0 ~dir:0 s0);
  let s1 = Renaming.Pf_mutex.enter b ops1 ~dir:1 in
  Alcotest.(check bool) "opponent blocked" false (Renaming.Pf_mutex.check b ops1 ~dir:1 s1);
  (* direction 0's holder dies; recover its direction from the register *)
  Renaming.Pf_mutex.reset b ops0 ~dir:0;
  Alcotest.(check bool) "opponent freed" true (Renaming.Pf_mutex.check b ops1 ~dir:1 s1)

let test_tournament_reset () =
  let layout = Layout.create () in
  let t = Renaming.Tournament.create layout ~inputs:2 in
  let seq = Store.seq_create layout in
  let ops0 = Store.seq_ops seq ~pid:0 in
  let ops1 = Store.seq_ops seq ~pid:1 in
  let p0 = Renaming.Tournament.position t ~input:0 in
  Alcotest.(check bool) "corpse owns the tree" true (Renaming.Tournament.try_advance t ops0 p0);
  let p1 = Renaming.Tournament.position t ~input:1 in
  Alcotest.(check bool) "challenger blocked" false (Renaming.Tournament.try_advance t ops1 p1);
  Renaming.Tournament.reset t ops0 p0;
  Alcotest.(check bool) "challenger wins after reset" true
    (Renaming.Tournament.try_advance t ops1 p1)

let test_splitter_reset () =
  let layout = Layout.create () in
  let s = Renaming.Splitter.create layout in
  let seq = Store.seq_create layout in
  let ops0 = Store.seq_ops seq ~pid:0 in
  let ops1 = Store.seq_ops seq ~pid:1 in
  let tok0 = Renaming.Splitter.enter s ops0 in
  Alcotest.(check bool) "solo entry is non-zero" true
    (Renaming.Splitter.direction tok0 <> 0);
  (* the holder dies with its LAST claim in place *)
  Renaming.Splitter.reset s ops0 tok0;
  let tok1 = Renaming.Splitter.enter s ops1 in
  Alcotest.(check bool) "next solo entry sees no interference" true
    (Renaming.Splitter.direction tok1 <> 0);
  Renaming.Splitter.release s ops1 tok1

(* ----- crash faults through the model checker ----- *)

(* Bare 2-process split, one acquire/release cycle each.  For every
   access point of the victim, kill it there and explore all
   interleavings: uniqueness must hold in every one (the bare protocol
   leaks the crashed name but never double-grants).  Crash freezes a
   transition, so partial-order reduction stays sound and exploration
   must report completeness. *)
let split2_builder () : MC.config =
  let layout = Layout.create () in
  let sp = Split.create layout ~k:2 in
  let work = Layout.alloc layout ~name:"work" 0 in
  let u = Sim.Checks.uniqueness ~name_space:(Split.name_space sp) () in
  {
    MC.layout;
    procs =
      Array.map
        (fun pid -> (pid, Test_util.protocol_cycles (module Split) sp ~work ~cycles:1))
        [| 1; 2 |];
    monitor = Sim.Checks.uniqueness_monitor u;
  }

let test_modelcheck_crash_every_access () =
  for acc = 1 to 12 do
    let faults = Result.get_ok (F.of_string (Printf.sprintf "crash@p1:acc%d" acc)) in
    let rep = MC.check ~faults split2_builder in
    Test_util.check_no_violation (Printf.sprintf "crash at access %d" acc) rep.outcome;
    Alcotest.(check bool)
      (Printf.sprintf "complete at access %d" acc)
      true rep.outcome.complete
  done;
  (* and right at the grant, where the name is definitely held *)
  let faults = Result.get_ok (F.of_string "crash@p1:acquire") in
  let rep = MC.check ~faults split2_builder in
  Test_util.check_no_violation "crash at acquire" rep.outcome;
  Alcotest.(check bool) "complete at acquire" true rep.outcome.complete

let test_modelcheck_crash_por_sound () =
  let faults = Result.get_ok (F.of_string "crash@p1:acc5") in
  let reduced = MC.check ~faults split2_builder in
  let plain =
    MC.check ~options:{ MC.default_options with por = false; cache_bound = 0 } ~faults
      split2_builder
  in
  Test_util.check_no_violation "reduced" reduced.outcome;
  Test_util.check_no_violation "plain" plain.outcome;
  Alcotest.(check bool) "same completeness" plain.outcome.complete reduced.outcome.complete;
  Alcotest.(check bool) "reduction pruned" true
    (reduced.outcome.paths <= plain.outcome.paths)

(* ----- deterministic post-reclamation re-acquisition ----- *)

(* Capacity 1, two processes, round-robin schedule.  The victim takes
   the only admission slot, is granted a name and crashes on the spot;
   the survivor can be granted only after the reclaimer expires the
   corpse's lease and frees the slot.  The event log must show exactly
   grant(corpse) -> reclaim(corpse's name) -> grants(survivor). *)
let test_sim_reacquire_after_reclaim () =
  let layout = Layout.create () in
  let sp = Split.create layout ~k:2 in
  let pids = [| 1; 2 |] in
  let rc =
    Recovery.create
      (module Split)
      sp ~layout ~pids
      (Recovery.default_config ~lease_ttl:2 ~capacity:1 ())
  in
  let work = Layout.alloc layout ~name:"work" 0 in
  let log = ref [] in
  let push e = log := e :: !log in
  let worker want (ops : Store.ops) =
    let got = ref 0 in
    while !got < want do
      match
        Recovery.acquire rc ops ~on_grant:(fun n ->
            push (`Grant (ops.pid, n));
            Sim.Sched.emit (Sim.Event.Acquired n))
      with
      | Recovery.Shed -> () (* the failed attempt itself performed accesses *)
      | Recovery.Acquired l ->
          incr got;
          Recovery.heartbeat rc ops l;
          ignore
            (Recovery.release rc ops l ~on_live:(fun n ->
                 Sim.Sched.emit (Sim.Event.Released n))
              : bool)
    done
  in
  let stop = ref (fun () -> false) in
  let reclaimer (ops : Store.ops) =
    let budget = ref 10_000 in
    while (not (!stop ()) || Recovery.outstanding rc > 0) && !budget > 0 do
      decr budget;
      ignore (ops.read work);
      ignore
        (Recovery.scan rc ops ~on_reclaim:(fun ~pid:_ ~name ~latency:_ ->
             push (`Reclaim name);
             Sim.Sched.emit (Sim.Event.Note ("reclaimed", name)))
          : int)
    done
  in
  let ctrl = F.controller (Result.get_ok (F.of_string "crash@p0:acquire")) in
  let u = Sim.Checks.uniqueness ~name_space:(Split.name_space sp) () in
  let t =
    Sim.Sched.create
      ~monitor:(Sim.Checks.combine [ Sim.Checks.uniqueness_monitor u; F.monitor ctrl ])
      layout
      [| (pids.(0), worker 1); (pids.(1), worker 2); (3, reclaimer) |]
  in
  stop :=
    (fun () ->
      let frozen = F.parked ctrl in
      let ok i = Sim.Sched.finished t i || List.mem i frozen in
      ok 0 && ok 1);
  let outcome = F.run ~max_steps:100_000 ctrl t Sim.Sched.round_robin in
  Sim.Sched.abort t;
  Alcotest.(check bool) "not truncated" false outcome.truncated;
  Alcotest.(check (list int)) "victim crashed" [ 0 ] (F.crashed ctrl);
  Alcotest.(check bool) "survivor finished" true outcome.completed.(1);
  Alcotest.(check (list (pair int int))) "nothing held at the end" [] (Sim.Checks.held_now u);
  let st = Recovery.stats rc in
  Alcotest.(check int) "one reclaim" 1 st.reclaimed;
  (* the log, oldest first *)
  let log = List.rev !log in
  (match log with
  | `Grant (p, n0) :: rest ->
      Alcotest.(check int) "victim granted first" pids.(0) p;
      (match rest with
      | `Reclaim n :: grants ->
          Alcotest.(check int) "corpse's name reclaimed" n0 n;
          Alcotest.(check int) "survivor re-acquired twice" 2 (List.length grants);
          List.iter
            (function
              | `Grant (p, _) ->
                  Alcotest.(check int) "grants after the reclaim are the survivor's"
                    pids.(1) p
              | `Reclaim _ -> Alcotest.fail "second reclaim")
            grants
      | _ -> Alcotest.fail "reclaim must precede any further grant")
  | _ -> Alcotest.fail "empty log");
  Alcotest.(check int) "survivor acquired 2, corpse 1" 3 st.acquired

let () =
  Alcotest.run "recovery"
    [
      ( "leases",
        [
          Alcotest.test_case "lifecycle" `Quick test_lifecycle;
          Alcotest.test_case "shed over capacity" `Quick test_shed_over_capacity;
          Alcotest.test_case "reclaim frees + fences" `Quick test_reclaim_frees_and_fences;
          Alcotest.test_case "create rejects" `Quick test_create_rejects;
        ] );
      ( "resets",
        [
          Alcotest.test_case "pf_mutex" `Quick test_pf_mutex_reset;
          Alcotest.test_case "tournament" `Quick test_tournament_reset;
          Alcotest.test_case "splitter" `Quick test_splitter_reset;
        ] );
      ( "modelcheck",
        [
          Alcotest.test_case "crash at every access point" `Slow
            test_modelcheck_crash_every_access;
          Alcotest.test_case "crash keeps POR sound" `Slow test_modelcheck_crash_por_sound;
        ] );
      ( "sim",
        [
          Alcotest.test_case "re-acquire after reclaim" `Quick
            test_sim_reacquire_after_reclaim;
        ] );
    ]
