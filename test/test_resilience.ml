(* The resilience layer, checked three ways: exhaustive 2-process
   interleaving models of the failover claim gate and the reclaimer
   seat steal (with seeded mutants that must die), QCheck2 properties
   of the backoff policy, the shard health state machine in
   isolation, and a one-seed smoke of the whole chaos campaign.

   The interleaving models are hand-rolled: each process is a small
   program counter over atomic steps on a shared record, and the
   checker DFS-enumerates every schedule.  The state spaces are tiny
   (tens of states), so closure is total — no sampling, no
   reductions.  What the models pin down is exactly the two arguments
   the server code makes in prose: a failover re-route cannot break
   uniqueness because the claim CAS is the gate, not the route; and a
   deposed seat holder cannot double-retire a slot because the
   per-slot fence CAS is the gate, not the seat check. *)

(* ----- exhaustive 2-proc interleaving checker ----- *)

(* A process is (pc, step): [step state pc] runs one atomic action and
   returns the next pc, or None when done.  [explore] runs every
   interleaving from a fresh state and folds [violated] over final
   states; state is copied via [clone] so branches don't alias. *)
let explore ~init ~clone ~step ~procs ~violated =
  let bad = ref None in
  let rec go state pcs =
    let live =
      List.filteri (fun _ pc -> pc >= 0) pcs |> List.length
    in
    if live = 0 then begin
      match violated state with
      | Some msg -> if !bad = None then bad := Some msg
      | None -> ()
    end
    else
      List.iteri
        (fun i pc ->
          if pc >= 0 && !bad = None then begin
            let state' = clone state in
            let pc' = match step state' i pc with Some p -> p | None -> -1 in
            go state' (List.mapi (fun j p -> if j = i then pc' else p) pcs)
          end)
        pcs
  in
  go init (List.init procs (fun _ -> 0));
  !bad

(* ----- model 1: failover claim gate ----- *)

(* Shard 0 is quarantined, so both processes re-route the same source
   to shard 1 and race the admission.  Steps: read the claim word,
   CAS it, bind a slot.  Correctness: at most one process ever holds
   the source, no matter the schedule — the claim CAS is what
   guarantees it, the (shared) failover route guarantees nothing. *)
type claim_state = {
  mutable claim : int; (* 0 free, else pid+1 *)
  mutable read : int array; (* each proc's read of [claim] *)
  mutable holders : int list; (* procs that bound a slot *)
}

let claim_clone s = { s with read = Array.copy s.read; holders = s.holders }

let claim_step ~gated s i = function
  | 0 ->
      s.read.(i) <- s.claim;
      Some 1
  | 1 ->
      if gated then
        if s.read.(i) = 0 && s.claim = 0 then begin
          (* CAS claim 0 -> i+1 *)
          s.claim <- i + 1;
          Some 2
        end
        else None (* Busy: give up *)
      else begin
        (* mutant: route checked, claim written blind *)
        s.claim <- i + 1;
        Some 2
      end
  | 2 ->
      s.holders <- i :: s.holders;
      None
  | _ -> None

let claim_violated s =
  if List.length s.holders > 1 then Some "two holders of one source" else None

let test_mc_failover_claim_gate () =
  let run gated =
    explore
      ~init:{ claim = 0; read = [| 0; 0 |]; holders = [] }
      ~clone:claim_clone ~step:(claim_step ~gated) ~procs:2
      ~violated:claim_violated
  in
  (match run true with
  | None -> ()
  | Some m -> Alcotest.failf "claim gate broken: %s" m);
  match run false with
  | Some _ -> () (* the ungated mutant must be caught *)
  | None -> Alcotest.fail "ungated mutant survived every interleaving"

(* ----- model 2: seat steal vs in-flight retirement ----- *)

(* The deposed holder O is mid-reclaim when S steals the seat and
   scans the same slot.  Both try to retire it.  Steps for each:
   check the seat (O only — S just stole it), CAS the slot fence
   HELD -> RETIRING, then retire.  Correctness: the slot is retired
   exactly once on every schedule.  The seat check alone cannot give
   that (O may pass it before the steal); the fence CAS does. *)
type seat_state = {
  mutable seat : int; (* holder id *)
  mutable fence : int; (* 0 held, 1 retiring, 2 free *)
  mutable won : bool array; (* per-proc fence CAS result *)
  mutable retired : int;
}

let seat_clone s = { s with won = Array.copy s.won }

let seat_step ~fenced s i = function
  | 0 ->
      if i = 0 then
        (* O re-checks its seat before starting the reclaim *)
        if s.seat = 0 then Some 1 else None
      else begin
        (* S steals the seat, then scans *)
        s.seat <- 1;
        Some 1
      end
  | 1 ->
      if fenced then
        if s.fence = 0 then begin
          s.fence <- 1;
          s.won.(i) <- true;
          Some 2
        end
        else None (* lost the CAS: someone else is retiring *)
      else begin
        s.won.(i) <- true;
        Some 2
      end
  | 2 ->
      s.retired <- s.retired + 1;
      s.fence <- 2;
      None
  | _ -> None

let seat_violated s =
  if s.retired <> 1 then
    Some (Printf.sprintf "slot retired %d times" s.retired)
  else None

let test_mc_seat_steal_fence () =
  let run fenced =
    explore
      ~init:{ seat = 0; fence = 0; won = [| false; false |]; retired = 0 }
      ~clone:seat_clone ~step:(seat_step ~fenced) ~procs:2
      ~violated:seat_violated
  in
  (match run true with
  | None -> ()
  | Some m -> Alcotest.failf "fenced retirement broken: %s" m);
  match run false with
  | Some _ -> ()
  | None -> Alcotest.fail "unfenced mutant survived every interleaving"

(* ----- backoff policy properties ----- *)

let policy_gen =
  QCheck2.Gen.(
    map
      (fun ((seed, client), (attempt, (base, capx))) ->
        (seed, client, attempt, base, base + capx))
      (pair (pair int (int_range 0 63))
         (pair (int_range 0 40) (pair (int_range 1 256) (int_range 0 8192)))))

let test_backoff_bounded =
  Test_util.qtest ~count:500 "backoff in [1, cap] at every coordinate"
    policy_gen
    (fun (seed, client, attempt, base, cap) ->
      let p = Server.Policy.make ~seed ~base_spins:base ~cap_spins:cap () in
      let n = Server.Policy.backoff_spins p ~client ~attempt in
      n >= 1 && n <= cap)

let test_backoff_deterministic =
  Test_util.qtest ~count:500 "backoff is a pure function of its coordinates"
    policy_gen
    (fun (seed, client, attempt, base, cap) ->
      let p = Server.Policy.make ~seed ~base_spins:base ~cap_spins:cap () in
      let q = Server.Policy.make ~seed ~base_spins:base ~cap_spins:cap () in
      Server.Policy.backoff_spins p ~client ~attempt
      = Server.Policy.backoff_spins q ~client ~attempt)

let test_backoff_seeds_differ =
  (* jitter must actually decorrelate colliding clients: two seeds
     give a different schedule somewhere in the early attempts (the
     late ones are clamped to the cap for every seed) *)
  Test_util.qtest ~count:300 "different seeds give different schedules"
    QCheck2.Gen.(pair (pair int int) (int_range 0 63))
    (fun ((s1, s2), client) ->
      QCheck2.assume (s1 <> s2);
      let p1 = Server.Policy.make ~seed:s1 () in
      let p2 = Server.Policy.make ~seed:s2 () in
      List.exists
        (fun attempt ->
          Server.Policy.backoff_spins p1 ~client ~attempt
          <> Server.Policy.backoff_spins p2 ~client ~attempt)
        (List.init 7 (fun i -> i)))

let test_backoff_caps_out () =
  (* once the exponential passes the cap, the spin count is exactly
     the cap — including at shift-overflow attempts *)
  let p = Server.Policy.make ~seed:7 ~base_spins:64 ~cap_spins:4096 () in
  List.iter
    (fun attempt ->
      Alcotest.(check int)
        (Printf.sprintf "attempt %d clamps to the cap" attempt)
        4096
        (Server.Policy.backoff_spins p ~client:3 ~attempt))
    [ 6; 10; 20; 40; 1000 ]

(* ----- the shard health state machine ----- *)

let th =
  { Server.Health.degrade_sheds = 4; quarantine_leaks = 1; drain_stale = 3 }

let obs h ~sheds ~leaks ~pending ~admitted =
  Server.Health.observe h ~sheds ~leaks ~pending ~admitted

let test_health_degrade_recover () =
  let h = Server.Health.create th in
  Alcotest.(check bool) "starts live" true (Server.Health.state h = Live);
  let st = obs h ~sheds:4 ~leaks:0 ~pending:0 ~admitted:2 in
  Alcotest.(check bool) "sheds degrade" true (st = Degraded);
  let st = obs h ~sheds:0 ~leaks:0 ~pending:0 ~admitted:2 in
  Alcotest.(check bool) "a quiet scan heals" true (st = Live);
  Alcotest.(check int) "no quarantine" 0 (Server.Health.quarantines h)

let test_health_quarantine_rebuild () =
  let h = Server.Health.create th in
  let st = obs h ~sheds:0 ~leaks:1 ~pending:0 ~admitted:3 in
  Alcotest.(check bool) "a leak quarantines" true (st = Quarantined);
  (* still draining: not re-admitted *)
  let st = obs h ~sheds:0 ~leaks:0 ~pending:1 ~admitted:0 in
  Alcotest.(check bool) "pending blocks the rebuild" true (st = Quarantined);
  let st = obs h ~sheds:0 ~leaks:0 ~pending:0 ~admitted:2 in
  Alcotest.(check bool) "admissions block the rebuild" true (st = Quarantined);
  let st = obs h ~sheds:0 ~leaks:0 ~pending:0 ~admitted:0 in
  Alcotest.(check bool) "clean + empty re-admits" true (st = Live);
  Alcotest.(check int) "one quarantine" 1 (Server.Health.quarantines h);
  Alcotest.(check int) "one rebuild" 1 (Server.Health.rebuilds h)

let test_health_wedged_drain () =
  let h = Server.Health.create th in
  (* the first sighting only records the census; staleness counts the
     scans after it that fail to move the number *)
  for _ = 0 to th.Server.Health.drain_stale do
    ignore (obs h ~sheds:0 ~leaks:0 ~pending:5 ~admitted:1)
  done;
  Alcotest.(check bool) "a wedged drain quarantines" true
    (Server.Health.state h = Quarantined);
  (* pending moving at all resets the staleness clock *)
  let h2 = Server.Health.create th in
  ignore (obs h2 ~sheds:0 ~leaks:0 ~pending:5 ~admitted:1);
  ignore (obs h2 ~sheds:0 ~leaks:0 ~pending:4 ~admitted:1);
  ignore (obs h2 ~sheds:0 ~leaks:0 ~pending:4 ~admitted:1);
  ignore (obs h2 ~sheds:0 ~leaks:0 ~pending:3 ~admitted:1);
  Alcotest.(check bool) "a slow drain is not a wedged drain" true
    (Server.Health.state h2 = Live)

(* ----- one-seed chaos smoke ----- *)

let test_chaos_smoke () =
  let seed = List.hd Campaign.default_seeds in
  let outcomes = Campaign.run_chaos ~seeds:[ seed ] ~requests:600 () in
  List.iter
    (fun o ->
      Alcotest.(check bool)
        (Printf.sprintf "seed %#x %s: %s" o.Campaign.co_seed
           (Campaign.chaos_fault_name o.Campaign.co_fault)
           o.Campaign.co_msg)
        true o.Campaign.co_ok)
    outcomes;
  Alcotest.(check bool) "the campaign killed someone" true
    (Campaign.chaos_ok outcomes)

let () =
  Alcotest.run "resilience"
    [
      ( "modelcheck",
        [
          Alcotest.test_case "failover claim gate, 2 procs exhaustive" `Quick
            test_mc_failover_claim_gate;
          Alcotest.test_case "seat steal vs retirement fence, 2 procs exhaustive"
            `Quick test_mc_seat_steal_fence;
        ] );
      ( "backoff",
        [
          test_backoff_bounded;
          test_backoff_deterministic;
          test_backoff_seeds_differ;
          Alcotest.test_case "clamps to the cap" `Quick test_backoff_caps_out;
        ] );
      ( "health",
        [
          Alcotest.test_case "degrade and recover" `Quick test_health_degrade_recover;
          Alcotest.test_case "quarantine and rebuild" `Quick
            test_health_quarantine_rebuild;
          Alcotest.test_case "wedged drain" `Quick test_health_wedged_drain;
        ] );
      ( "chaos",
        [ Alcotest.test_case "one-seed campaign" `Quick test_chaos_smoke ] );
    ]
