(* Request journeys: the tail reservoir, per-stage blame attribution,
   exemplar-linked histograms, and the parked-holder integration run. *)

module J = Obs.Journey

let us = 1_000
let ms = 1_000_000

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ----- lifecycle: stamping, flags, blame, exemplar links ----- *)

let test_lifecycle () =
  let t = J.create ~window_ns:ms ~k:4 ~exemplars:2 ~seed:1 ~bound:21 () in
  (* a cold journey inside the paper bound *)
  J.start t ~id:1 ~now:0;
  J.dwell t J.Claim 100;
  J.dwell t J.Acquire 400;
  J.accesses t 18;
  J.finish t ~now:1000;
  (* a warm hit: zero accesses, never flagged *)
  J.start t ~id:2 ~now:100;
  J.warm t;
  J.finish t ~now:300;
  (* a cold journey over the bound, in the next window *)
  J.start t ~id:3 ~now:(ms + 5);
  J.dwell t J.Acquire (30 * us);
  J.accesses t 25;
  J.finish t ~now:(ms + (40 * us));
  let s = J.snapshot t in
  Alcotest.(check int) "completed" 3 s.J.completed;
  Alcotest.(check int) "one journey over the bound" 1 s.J.flagged;
  Alcotest.(check int) "acquire blame sums"
    (400 + (30 * us))
    s.J.blame.(J.stage_index J.Acquire);
  Alcotest.(check int) "two windows" 2 (List.length s.J.windows);
  let w0 = List.hd s.J.windows in
  Alcotest.(check int) "window 0 holds two journeys" 2 w0.J.count;
  (match s.J.worst with
  | Some w ->
      Alcotest.(check int) "worst is the slow one" 3 w.J.id;
      Alcotest.(check int) "worst total" (40 * us - 5) w.J.total_ns;
      Alcotest.(check bool) "worst flagged over bound" true w.J.over_bound
  | None -> Alcotest.fail "no worst journey");
  (match J.find t ~id:2 with
  | Some v ->
      Alcotest.(check bool) "warm flag survives" true v.J.warm;
      Alcotest.(check bool) "warm never over bound" false v.J.over_bound
  | None -> Alcotest.fail "journey 2 not retained");
  (match J.top ~n:1 t with
  | [ v ] -> Alcotest.(check int) "top is the slowest" 3 v.J.id
  | l -> Alcotest.failf "top returned %d views" (List.length l));
  (* p100 is explainable: the histogram's max exemplar is a retained id *)
  (match Obs.Histogram.max_exemplar (J.hist t) with
  | Some id ->
      Alcotest.(check int) "max exemplar links the worst" 3 id;
      Alcotest.(check bool) "exemplar id resolves" true (J.find t ~id <> None)
  | None -> Alcotest.fail "no max exemplar");
  Alcotest.(check bool) "tail explained" true (J.unexplained_tail t = None);
  match J.top_blame_stage s with
  | Some (st, ns) ->
      Alcotest.(check string) "top blame stage" "acquire" (J.stage_name st);
      Alcotest.(check int) "top blame ns" (400 + (30 * us)) ns
  | None -> Alcotest.fail "no blame recorded"

let test_interference () =
  let t = J.create ~window_ns:ms () in
  (* drain work on behalf of others lands in window blame, not in any
     journey or the completion count *)
  J.interfere t J.Drain ~now:(ms / 2) 700;
  let s = J.snapshot t in
  Alcotest.(check int) "nothing completed" 0 s.J.completed;
  Alcotest.(check int) "blame attributed" 700 s.J.blame.(J.stage_index J.Drain);
  let w = List.hd s.J.windows in
  Alcotest.(check int) "window blame attributed" 700
    w.J.blame.(J.stage_index J.Drain);
  Alcotest.(check int) "no journey rows" 0 (List.length w.J.slowest)

let test_waterfall () =
  let t = J.create ~window_ns:ms () in
  J.start t ~id:7 ~now:0;
  J.dwell t J.Backoff 200;
  J.dwell t J.Acquire 500;
  J.finish t ~now:1000;
  match J.top ~n:1 t with
  | [ v ] ->
      let out = Format.asprintf "%a" J.pp_waterfall v in
      Alcotest.(check bool) "names the journey" true (contains out "journey #7");
      Alcotest.(check bool) "renders acquire" true (contains out "acquire");
      (* 300 ns of the total is not covered by any stage *)
      Alcotest.(check bool) "renders the remainder" true (contains out "(other)")
  | l -> Alcotest.failf "top returned %d views" (List.length l)

(* ----- the regression guard: p100 without a journey ----- *)

let test_unexplained_tail () =
  let t = J.create ~window_ns:ms () in
  for i = 1 to 50 do
    J.start t ~id:i ~now:(i * 10);
    J.finish t ~now:((i * 10) + 1000)
  done;
  Alcotest.(check bool) "clean run is explained" true (J.unexplained_tail t = None);
  (* a latency lands in the histogram with no journey behind it — the
     exact situation the guard exists to catch *)
  Obs.Histogram.observe (J.hist t) (100 * ms);
  (match J.unexplained_tail t with
  | Some (p100, p99) ->
      Alcotest.(check int) "reports the exact max" (100 * ms) p100;
      Alcotest.(check bool) "p99 is the real tail" true (p99 < ms)
  | None -> Alcotest.fail "rogue max not flagged");
  (* once a journey reaches that total, the tail is explained again *)
  J.start t ~id:99 ~now:(2 * ms);
  J.finish t ~now:((2 * ms) + (100 * ms));
  Alcotest.(check bool) "explained once retained" true (J.unexplained_tail t = None)

(* ----- portable text form ----- *)

let test_round_trip () =
  let t = J.create ~window_ns:ms ~k:3 ~exemplars:2 ~seed:5 ~bound:21 () in
  for i = 1 to 40 do
    J.start t ~id:i ~now:((i * ms) / 10);
    J.dwell t J.Claim (i * 3);
    J.dwell t J.Acquire (i * 100);
    J.accesses t (if i mod 7 = 0 then 25 else 18);
    if i mod 5 = 0 then J.retry t;
    J.finish t ~now:(((i * ms) / 10) + (i * 150))
  done;
  J.interfere t J.Reclaim ~now:(2 * ms) 4242;
  let doc = J.to_string t in
  Alcotest.(check bool) "schema line" true
    (String.length doc > 20 && String.sub doc 0 20 = "renaming.journeys/v1");
  match J.of_string doc with
  | Error e -> Alcotest.failf "no round trip: %s" e
  | Ok t' ->
      Alcotest.(check string) "document fixpoint" doc (J.to_string t');
      let s = J.snapshot t and s' = J.snapshot t' in
      Alcotest.(check int) "completed" s.J.completed s'.J.completed;
      Alcotest.(check int) "flagged" s.J.flagged s'.J.flagged;
      Alcotest.(check (array int)) "blame" s.J.blame s'.J.blame;
      Alcotest.(check int) "worst survives"
        (match s.J.worst with Some w -> w.J.id | None -> 0)
        (match s'.J.worst with Some w -> w.J.id | None -> 0);
      (match J.of_string "renaming.journeys/v0\n" with
      | Ok _ -> Alcotest.fail "accepted an unknown schema"
      | Error _ -> ());
      (match J.of_string "total garbage" with
      | Ok _ -> Alcotest.fail "accepted garbage"
      | Error _ -> ())

(* ----- reservoir properties ----- *)

(* Deterministic event streams: (id, total) pairs with distinct ids
   and monotone arrivals confined to the ring (journeys never race the
   window eviction, so every sharding retains the same windows). *)
let events_gen =
  QCheck2.Gen.(
    list_size (int_range 1 120) (int_range 0 (50 * us))
    >|= List.mapi (fun i total -> (i + 1, total)))

let feed t ~window_ns events =
  List.iter
    (fun (id, total) ->
      let arrival = (id * 7919) mod (8 * window_ns) in
      J.start t ~id ~now:arrival;
      J.dwell t J.Acquire total;
      J.accesses t 18;
      J.finish t ~now:(arrival + total))
    events

let test_topk_oracle =
  Test_util.qtest ~count:200 "reservoir top-k matches the naive oracle" events_gen
    (fun events ->
      let k = 4 in
      (* one window: every journey competes for the same reservoir *)
      let t = J.create ~windows:2 ~window_ns:(100 * ms) ~k ~exemplars:0 () in
      feed t ~window_ns:1 events;
      let got = List.map (fun v -> v.J.id) (J.top ~n:k t) in
      let oracle =
        List.sort
          (fun (ia, ta) (ib, tb) -> compare (-ta, ia) (-tb, ib))
          events
        |> List.filteri (fun i _ -> i < k)
        |> List.map fst
      in
      if got <> oracle then
        QCheck2.Test.fail_reportf "top-k [%s] <> oracle [%s]"
          (String.concat ";" (List.map string_of_int got))
          (String.concat ";" (List.map string_of_int oracle));
      true)

let test_seed_determinism =
  Test_util.qtest ~count:100 "equal seeds retain equal exemplars" events_gen
    (fun events ->
      let mk () = J.create ~window_ns:ms ~k:2 ~exemplars:3 ~seed:11 () in
      let a = mk () and b = mk () in
      feed a ~window_ns:ms events;
      feed b ~window_ns:ms events;
      J.to_string a = J.to_string b)

(* Merge law, mirroring the Timeseries one: the same journeys recorded
   into any sharding and merged in any order yield identical snapshots. *)
let fingerprint t =
  let s = J.snapshot t in
  let views = List.map (fun v -> (v.J.id, v.J.total_ns, v.J.retries)) in
  ( List.map
      (fun (w : J.window) ->
        (w.J.wid, w.J.count, Array.to_list w.J.blame, views w.J.slowest,
         views w.J.exemplars))
      s.J.windows,
    Option.map (fun v -> v.J.id) s.J.worst,
    s.J.completed,
    s.J.flagged,
    Array.to_list s.J.blame,
    Obs.Histogram.percentile (J.hist t) 0.999 )

let test_merge_determinism =
  Test_util.qtest ~count:100 "merge is commutative across shardings" events_gen
    (fun events ->
      let record shards pick =
        let ts =
          Array.init shards (fun _ ->
              J.create ~window_ns:ms ~k:3 ~exemplars:2 ~seed:11 ())
        in
        List.iteri (fun i ev -> feed ts.(pick i) ~window_ns:ms [ ev ]) events;
        ts
      in
      let merge_into ts order =
        let into = J.create ~window_ns:ms ~k:3 ~exemplars:2 ~seed:11 () in
        List.iter (fun i -> J.merge ~into ts.(i)) order;
        into
      in
      let a = merge_into (record 1 (fun _ -> 0)) [ 0 ] in
      let b = merge_into (record 3 (fun i -> i mod 3)) [ 2; 0; 1 ] in
      let c = merge_into (record 4 (fun i -> i mod 4)) [ 3; 1; 0; 2 ] in
      fingerprint a = fingerprint b && fingerprint b = fingerprint c)

let test_merge_shape_mismatch () =
  let a = J.create ~window_ns:ms () in
  let b = J.create ~window_ns:(2 * ms) () in
  Alcotest.check_raises "window geometry mismatch"
    (Invalid_argument "Journey.merge: window geometry differs") (fun () ->
      J.merge ~into:a b)

(* ----- integration: a parked holder produces a blamed, exemplar-linked
   tail ----- *)

let test_parked_holder_blamed_tail () =
  let config =
    Server.default_config ~shards:2 ~k_per_shard:3 ~warm_capacity:1 ~batch:4
      ~clients:3 ~source_space:64 ()
  in
  let plan = Result.get_ok (Sim.Faults.of_string "park@p1:acc1") in
  let faults = Churn.of_plan plan in
  let journeys = Array.init 3 (fun _ -> J.create ~seed:7 ~bound:14 ()) in
  let report =
    Churn.run ~config ~faults ~journeys
      ~spec:(fun client ->
        Workload.server_churn ~s:64 ~requests:400 ~seed:9 ~client ())
      ()
  in
  Alcotest.(check int) "uniqueness survives the park" 0
    report.Churn.result.Runtime.Agg.violations;
  match report.Churn.journeys with
  | None -> Alcotest.fail "journeys not merged into the report"
  | Some j ->
      let s = J.snapshot j in
      Alcotest.(check bool) "journeys completed" true (s.J.completed > 0);
      Alcotest.(check bool) "blame attributed somewhere" true
        (J.top_blame_stage s <> None);
      (* every extreme tail has a captured journey behind it *)
      Alcotest.(check bool) "tail explained" true (J.unexplained_tail j = None);
      (* the slowest retained journeys are real, inspectable exemplars *)
      let tops = J.top ~n:3 j in
      Alcotest.(check bool) "top journeys retained" true (tops <> []);
      List.iter
        (fun (v : J.view) ->
          Alcotest.(check bool) "top journey resolvable by id" true
            (J.find j ~id:v.J.id <> None);
          Alcotest.(check bool) "dwells attributed" true
            (v.J.warm || Array.fold_left ( + ) 0 v.J.dwells > 0))
        tops

let () =
  Alcotest.run "journey"
    [
      ( "recorder",
        [
          Alcotest.test_case "lifecycle + flags + exemplars" `Quick test_lifecycle;
          Alcotest.test_case "interference blame" `Quick test_interference;
          Alcotest.test_case "waterfall rendering" `Quick test_waterfall;
          Alcotest.test_case "unexplained tail guard" `Quick test_unexplained_tail;
          Alcotest.test_case "text form round trip" `Quick test_round_trip;
        ] );
      ( "reservoir",
        [
          test_topk_oracle;
          test_seed_determinism;
          test_merge_determinism;
          Alcotest.test_case "merge shape mismatch" `Quick test_merge_shape_mismatch;
        ] );
      ( "integration",
        [
          Alcotest.test_case "parked holder blamed tail" `Quick
            test_parked_holder_blamed_tail;
        ] );
    ]
