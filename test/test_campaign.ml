(* The discrimination matrix: every mutant must be killed by the fixed
   seed matrix, every correct protocol must survive it, and findings
   must shrink to schedules that replay deterministically. *)

let test_matrix_discriminates () =
  let outcomes = Campaign.run_all () in
  List.iter
    (fun (o : Campaign.outcome) ->
      match (o.correct, o.finding) with
      | true, Some f ->
          Alcotest.failf "correct target %s violated under %s (seed %d): %s" o.target
            (Sim.Faults.to_string f.plan) f.seed f.message
      | false, None ->
          Alcotest.failf "mutant %s survived the whole matrix (%d runs)" o.target o.runs
      | true, None | false, Some _ -> ())
    outcomes;
  Alcotest.(check bool) "ok agrees" true (Campaign.ok outcomes);
  (* the matrix covers every registered target *)
  Alcotest.(check int) "all targets ran" (List.length (Campaign.targets ()))
    (List.length outcomes)

let test_targets_well_formed () =
  List.iter
    (fun (tg : Campaign.target) ->
      Alcotest.(check bool) (tg.name ^ " nprocs") true (tg.nprocs >= 2);
      Alcotest.(check bool) (tg.name ^ " sched_per_plan") true (tg.sched_per_plan >= 1);
      let prefix_is_mutant =
        String.length tg.name >= 7 && String.sub tg.name 0 7 = "mutant:"
      in
      Alcotest.(check bool)
        (tg.name ^ " naming convention")
        tg.correct (not prefix_is_mutant))
    (Campaign.targets ())

let test_find () =
  Alcotest.(check bool) "finds splitter" true (Campaign.find "splitter" <> None);
  Alcotest.(check bool) "finds mutant" true (Campaign.find "mutant:ma-costly" <> None);
  Alcotest.(check bool) "rejects junk" true (Campaign.find "no-such-target" = None)

(* A kill of a specific mutant, end to end: find it, shrink it, replay
   the shrunk schedule twice and demand identical messages. *)
let test_shrink_replays () =
  let tg = Option.get (Campaign.find "mutant:mutex-turn-lost") in
  let o = Campaign.run_target tg in
  match o.finding with
  | None -> Alcotest.fail "mutex-turn-lost was not killed"
  | Some f -> (
      match Campaign.shrink tg f with
      | None ->
          (* wait-freedom timeouts have no replayable schedule; this
             mutant's kill is a monitor violation, so shrink must work *)
          Alcotest.fail "finding did not shrink"
      | Some m ->
          Alcotest.(check bool) "no longer than the original" true
            (List.length m.schedule <= List.length f.schedule);
          let replay () = Campaign.replay tg f.plan m.schedule in
          (match (replay (), replay ()) with
          | Error a, Error b ->
              Alcotest.(check string) "deterministic replay" a.message b.message;
              Alcotest.(check string) "same verdict as the shrunk run" m.message a.message
          | _ -> Alcotest.fail "shrunk schedule stopped violating"))

let test_determinism () =
  (* the whole matrix is a pure function of the seed list *)
  let seeds = [ 0xFA17; 0xFA17 + 104729 ] in
  let render os =
    String.concat "\n" (List.map (fun o -> Format.asprintf "%a" Campaign.pp_outcome o) os)
  in
  let a = render (Campaign.run_all ~seeds ()) in
  let b = render (Campaign.run_all ~seeds ()) in
  Alcotest.(check string) "identical campaign output" a b

let test_report_json_shape () =
  let seeds = [ 0xFA17 ] in
  let os = Campaign.run_all ~seeds () in
  let json = Campaign.report_json ~seeds os in
  let contains needle =
    let n = String.length needle and h = String.length json in
    let rec go i = i + n <= h && (String.sub json i n = needle || go (i + 1)) in
    Alcotest.(check bool) ("report contains " ^ needle) true (go 0)
  in
  contains "renaming.faults/v1";
  contains "\"splitter\"";
  contains "\"mutant:ma-costly\""

(* ----- the crash matrix ----- *)

let crash_seeds = [ 0xFA17; 0xFA17 + 104729 ]

let test_crash_targets_paired () =
  let ts = Campaign.crash_targets () in
  List.iter
    (fun (t : Campaign.crash_target) ->
      Alcotest.(check bool) (t.c_name ^ " nprocs") true (t.c_nprocs >= 2);
      let suffix = "+recovery" in
      let has_suffix =
        let n = String.length suffix and l = String.length t.c_name in
        l >= n && String.sub t.c_name (l - n) n = suffix
      in
      Alcotest.(check bool) (t.c_name ^ " naming convention") t.recovered has_suffix;
      (* every bare target has its recovered twin and vice versa *)
      let twin =
        if t.recovered then String.sub t.c_name 0 (String.length t.c_name - String.length suffix)
        else t.c_name ^ suffix
      in
      Alcotest.(check bool) (t.c_name ^ " has twin " ^ twin) true
        (Campaign.find_crash twin <> None))
    ts;
  Alcotest.(check bool) "rejects junk" true (Campaign.find_crash "no-such" = None)

let test_crash_matrix_discriminates () =
  let outcomes = Campaign.run_all_crash ~seeds:crash_seeds () in
  List.iter
    (fun (o : Campaign.crash_outcome) ->
      (match o.crash_finding with
      | Some f ->
          Alcotest.failf "%s failed under %s (seed %d): %s" o.crash_target_name
            (Sim.Faults.to_string f.plan) f.seed f.message
      | None -> ());
      Alcotest.(check bool) (o.crash_target_name ^ " crashes fired") true
        (o.crashes_fired >= 1);
      if o.crash_recovered then begin
        Alcotest.(check int) (o.crash_target_name ^ " leak-free") 0 o.leak_runs;
        Alcotest.(check bool) (o.crash_target_name ^ " reclaims >= crashes") true
          (o.total_reclaimed >= o.crashes_fired)
      end
      else begin
        Alcotest.(check bool) (o.crash_target_name ^ " leaks") true (o.leak_runs >= 1);
        Alcotest.(check int) (o.crash_target_name ^ " reclaims nothing") 0
          o.total_reclaimed
      end)
    outcomes;
  Alcotest.(check bool) "crash_ok agrees" true (Campaign.crash_ok outcomes);
  Alcotest.(check int) "all crash targets ran"
    (List.length (Campaign.crash_targets ()))
    (List.length outcomes)

let test_crash_report_byte_identical () =
  (* the ISSUE's reproducibility bar: the whole report is a pure
     function of the seed list, byte for byte *)
  let seeds = [ 0xFA17 ] in
  let render () = Campaign.crash_report_json ~seeds (Campaign.run_all_crash ~seeds ()) in
  let a = render () in
  Alcotest.(check string) "byte-identical reports" a (render ());
  let contains needle =
    let n = String.length needle and h = String.length a in
    let rec go i = i + n <= h && (String.sub a i n = needle || go (i + 1)) in
    Alcotest.(check bool) ("report contains " ^ needle) true (go 0)
  in
  contains "renaming.crash/v1";
  contains "\"split+recovery\"";
  contains "\"pipeline\""

let () =
  Alcotest.run "campaign"
    [
      ( "registry",
        [
          Alcotest.test_case "targets well-formed" `Quick test_targets_well_formed;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "report json" `Quick test_report_json_shape;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "discriminates" `Slow test_matrix_discriminates;
          Alcotest.test_case "deterministic" `Slow test_determinism;
          Alcotest.test_case "shrink + replay" `Slow test_shrink_replays;
        ] );
      ( "crash",
        [
          Alcotest.test_case "targets paired" `Quick test_crash_targets_paired;
          Alcotest.test_case "bare leaks, recovered reclaims" `Slow
            test_crash_matrix_discriminates;
          Alcotest.test_case "report byte-identical" `Slow
            test_crash_report_byte_identical;
        ] );
    ]
