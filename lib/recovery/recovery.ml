open Shared_mem

type config = {
  lease_ttl : int;
  capacity : int;
  max_attempts : int;
  backoff_base : int;
  backoff_cap : int;
  seed : int;
}

let default_config ?(lease_ttl = 8) ?(seed = 0) ~capacity () =
  { lease_ttl; capacity; max_attempts = 6; backoff_base = 1; backoff_cap = 16; seed }

(* What the reclaimer needs to undo a grant on the corpse's behalf,
   with the inner lease captured in the closures so [t] stays
   non-parametric. *)
type holder = {
  h_name : int;
  h_epoch : int;
  release_inner : Store.ops -> unit;
  reset_inner : Store.ops -> unit;
}

type slot = {
  s_pid : int;
  hb : Cell.t;  (* heartbeat register, written by the holder *)
  ep : Cell.t;  (* epoch register, bumped by the reclaimer *)
  mutable epoch : int;
  mutable holder : holder option;
  mutable last_seen : int;  (* heartbeat value at the previous scan *)
  mutable stale : int;  (* consecutive scans with an unchanged heartbeat *)
}

type lease = { l_slot : int; l_name : int; l_epoch : int; mutable beats : int }

let name_of l = l.l_name

type acquired = Acquired of lease | Shed

type reclaim_event = { e_pid : int; e_name : int; e_latency : int; e_at : int }

type t = {
  cfg : config;
  nspace : int;
  get : Store.ops -> int * (Store.ops -> unit) * (Store.ops -> unit);
  slots : slot array;
  slot_of : (int, int) Hashtbl.t;  (* pid -> slot index *)
  idle_cell : Cell.t;  (* scratch register for backoff idle reads *)
  lock : Mutex.t;
  inflight : int Atomic.t;  (* admitted entrants + held leases *)
  names_held : (int, int) Hashtbl.t;  (* name -> slot index *)
  mutable st_acquired : int;
  mutable st_released : int;
  mutable st_shed : int;
  mutable st_retries : int;
  mutable st_conflicts : int;
  mutable st_expired : int;
  mutable st_stale_releases : int;
  mutable st_scans : int;
  mutable events_rev : reclaim_event list;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let create (type a) (module P : Renaming.Protocol.S with type t = a) (inst : a)
    ~layout ~pids cfg =
  let reset =
    match P.reset_footprint with
    | Some reset -> reset
    | None -> invalid_arg "Recovery.create: protocol has no reset_footprint"
  in
  if Array.length pids = 0 then invalid_arg "Recovery.create: no participants";
  if cfg.lease_ttl < 1 then invalid_arg "Recovery.create: lease_ttl must be >= 1";
  if cfg.capacity < 1 then invalid_arg "Recovery.create: capacity must be >= 1";
  if cfg.max_attempts < 1 then invalid_arg "Recovery.create: max_attempts must be >= 1";
  if cfg.backoff_base < 1 then invalid_arg "Recovery.create: backoff_base must be >= 1";
  if cfg.backoff_cap < cfg.backoff_base then
    invalid_arg "Recovery.create: backoff_cap must be >= backoff_base";
  let slot_of = Hashtbl.create (Array.length pids) in
  let slots =
    Array.mapi
      (fun i pid ->
        if Hashtbl.mem slot_of pid then
          invalid_arg "Recovery.create: duplicate participant";
        Hashtbl.replace slot_of pid i;
        {
          s_pid = pid;
          hb = Layout.alloc layout ~name:(Printf.sprintf "RECOVERY.HB[%d]" pid) 0;
          ep = Layout.alloc layout ~name:(Printf.sprintf "RECOVERY.EP[%d]" pid) 0;
          epoch = 0;
          holder = None;
          last_seen = min_int;
          stale = 0;
        })
      pids
  in
  let get ops =
    let l = P.get_name inst ops in
    ( P.name_of inst l,
      (fun ops -> P.release_name inst ops l),
      fun ops -> reset inst ops l )
  in
  {
    cfg;
    nspace = P.name_space inst;
    get;
    slots;
    slot_of;
    idle_cell = Layout.alloc layout ~name:"RECOVERY.IDLE" 0;
    lock = Mutex.create ();
    inflight = Atomic.make 0;
    names_held = Hashtbl.create 16;
    st_acquired = 0;
    st_released = 0;
    st_shed = 0;
    st_retries = 0;
    st_conflicts = 0;
    st_expired = 0;
    st_stale_releases = 0;
    st_scans = 0;
    events_rev = [];
  }

let name_space t = t.nspace
let lease_ttl t = t.cfg.lease_ttl

let slot_index t pid =
  match Hashtbl.find_opt t.slot_of pid with
  | Some i -> i
  | None -> invalid_arg "Recovery: pid is not a registered participant"

(* Stateless jitter so backoff schedules replay identically from the
   same seed regardless of interleaving. *)
let mix a b c =
  let h = ref 0x9E3779B9 in
  List.iter
    (fun v -> h := !h lxor (v + 0x9E3779B9 + (!h lsl 6) + (!h lsr 2)))
    [ a; b; c ];
  !h land max_int

let backoff t (ops : Store.ops) attempt =
  let exp = if attempt >= 30 then t.cfg.backoff_cap else t.cfg.backoff_base lsl attempt in
  let len = min t.cfg.backoff_cap exp + (mix t.cfg.seed ops.pid attempt mod (t.cfg.backoff_base + 1)) in
  for _ = 1 to len do
    ignore (ops.read t.idle_cell)
  done

let admit t =
  let rec go () =
    let v = Atomic.get t.inflight in
    if v >= t.cfg.capacity then false
    else if Atomic.compare_and_set t.inflight v (v + 1) then true
    else go ()
  in
  go ()

let acquire ?on_grant t (ops : Store.ops) =
  let si = slot_index t ops.pid in
  let slot = t.slots.(si) in
  locked t (fun () ->
      if slot.holder <> None then
        invalid_arg "Recovery.acquire: process already holds a lease");
  let rec attempt n =
    if n >= t.cfg.max_attempts then begin
      locked t (fun () -> t.st_shed <- t.st_shed + 1);
      Shed
    end
    else if not (admit t) then retry n
    else
      (* Admitted: run the wrapped protocol (shared accesses, so never
         under the lock — a suspended fiber must not hold it). *)
      let name, release_inner, reset_inner = t.get ops in
      let granted =
        locked t (fun () ->
            if Hashtbl.mem t.names_held name then None
            else begin
              let epoch = slot.epoch in
              slot.holder <- Some { h_name = name; h_epoch = epoch; release_inner; reset_inner };
              slot.last_seen <- min_int;
              slot.stale <- 0;
              Hashtbl.replace t.names_held name si;
              t.st_acquired <- t.st_acquired + 1;
              Some epoch
            end)
      in
      match granted with
      | Some epoch ->
          (* notify before the heartbeat write: no shared access sits
             between the grant decision and the callback, so observers
             learn of the grant before any other process can possibly
             reclaim or re-acquire this name *)
          (match on_grant with Some f -> f name | None -> ());
          let lease = { l_slot = si; l_name = name; l_epoch = epoch; beats = 1 } in
          ops.write slot.hb lease.beats;
          Acquired lease
      | None ->
          (* The inner grant collided with a name the wrapper still
             tracks as held — hand it back and retry. *)
          release_inner ops;
          Atomic.decr t.inflight;
          locked t (fun () -> t.st_conflicts <- t.st_conflicts + 1);
          retry n
  and retry n =
    locked t (fun () -> t.st_retries <- t.st_retries + 1);
    backoff t ops n;
    attempt (n + 1)
  in
  attempt 0

let heartbeat t (ops : Store.ops) lease =
  lease.beats <- lease.beats + 1;
  ops.write t.slots.(lease.l_slot).hb lease.beats

let release ?on_live t (ops : Store.ops) lease =
  let slot = t.slots.(lease.l_slot) in
  (* The epoch register is the fence: reclamation bumps it, so a
     holder reading its grant epoch back knows it still owns the
     name. *)
  let ep_now = ops.read slot.ep in
  let live =
    locked t (fun () ->
        match slot.holder with
        | Some h when h.h_epoch = lease.l_epoch && ep_now = lease.l_epoch ->
            slot.holder <- None;
            Hashtbl.remove t.names_held lease.l_name;
            t.st_released <- t.st_released + 1;
            Some h.release_inner
        | _ ->
            t.st_stale_releases <- t.st_stale_releases + 1;
            None)
  in
  match live with
  | Some release_inner ->
      (* notify before the inner release's register writes: the name
         only becomes re-grantable once those complete, so observers
         always see this release before the next acquisition *)
      (match on_live with Some f -> f lease.l_name | None -> ());
      release_inner ops;
      Atomic.decr t.inflight;
      true
  | None -> false

let scan ?on_reclaim t (ops : Store.ops) =
  let scan_at = locked t (fun () -> t.st_scans <- t.st_scans + 1; t.st_scans) in
  let reclaimed = ref 0 in
  Array.iter
    (fun slot ->
      match locked t (fun () -> slot.holder) with
      | None -> ()
      | Some h -> (
          let hb = ops.read slot.hb in
          let expired =
            locked t (fun () ->
                match slot.holder with
                | Some h0 when h0 == h ->
                    if hb <> slot.last_seen then begin
                      slot.last_seen <- hb;
                      slot.stale <- 0;
                      None
                    end
                    else begin
                      slot.stale <- slot.stale + 1;
                      if slot.stale < t.cfg.lease_ttl then None
                      else begin
                        slot.epoch <- slot.epoch + 1;
                        slot.holder <- None;
                        Hashtbl.remove t.names_held h0.h_name;
                        t.st_expired <- t.st_expired + 1;
                        Some slot.epoch
                      end
                    end
                | _ -> None (* holder changed while we read the heartbeat *))
          in
          match expired with
          | None -> ()
          | Some new_epoch ->
              (* Notify before touching shared memory: the name cannot
                 be re-granted until the footprint reset below
                 completes, so observers always see the ownership
                 transfer before the next acquisition.  Then fence,
                 clear the corpse's footprint under its own source
                 name, and return the admission slot. *)
              let latency = t.cfg.lease_ttl in
              locked t (fun () ->
                  t.events_rev <-
                    { e_pid = slot.s_pid; e_name = h.h_name; e_latency = latency; e_at = scan_at }
                    :: t.events_rev);
              (match on_reclaim with
              | Some f -> f ~pid:slot.s_pid ~name:h.h_name ~latency
              | None -> ());
              ops.write slot.ep new_epoch;
              h.reset_inner { ops with pid = slot.s_pid };
              Atomic.decr t.inflight;
              incr reclaimed))
    t.slots;
  !reclaimed

let outstanding t = locked t (fun () -> Hashtbl.length t.names_held)

type stats = {
  acquired : int;
  released : int;
  shed : int;
  retries : int;
  conflicts : int;
  expired : int;
  reclaimed : int;
  stale_releases : int;
  scans : int;
  reclaim_latencies : int list;
}

let stats t =
  locked t (fun () ->
      let events = List.rev t.events_rev in
      {
        acquired = t.st_acquired;
        released = t.st_released;
        shed = t.st_shed;
        retries = t.st_retries;
        conflicts = t.st_conflicts;
        expired = t.st_expired;
        reclaimed = List.length events;
        stale_releases = t.st_stale_releases;
        scans = t.st_scans;
        reclaim_latencies = List.map (fun e -> e.e_latency) events;
      })

let publish t shard =
  let events = locked t (fun () -> List.rev t.events_rev) in
  let s = stats t in
  Obs.Registry.count shard "names.acquired" s.acquired;
  Obs.Registry.count shard "names.released" s.released;
  Obs.Registry.count shard "names.shed" s.shed;
  Obs.Registry.count shard "lease.expired" s.expired;
  Obs.Registry.count shard "recovery.reclaimed" s.reclaimed;
  Obs.Registry.count shard "recovery.conflicts" s.conflicts;
  Obs.Registry.count shard "recovery.stale_releases" s.stale_releases;
  Obs.Registry.count shard "recovery.retries" s.retries;
  Obs.Registry.count shard "recovery.scans" s.scans;
  List.iter
    (fun e ->
      Obs.Registry.observe shard "recovery.reclaim.latency" e.e_latency;
      Obs.Registry.span shard
        {
          Obs.Span.name = "reclaim";
          pid = e.e_pid;
          start_step = e.e_at - e.e_latency;
          end_step = e.e_at;
          accesses = 0;
          annotations = [ ("name", e.e_name) ];
        })
    events
