(** Lease-based crash recovery over any {!Renaming.Protocol.S}.

    The paper's long-lived guarantee (Theorems 5/10) silently assumes
    every process that acquires a name eventually releases it.  A
    crashed holder breaks that: the name leaks and the corpse's
    splitter/mutex footprint stays wedged forever.  This layer makes
    names {e leases}:

    - every holder maintains a {b heartbeat}: a plain read/write
      register per source name (consistent with the paper's model) it
      bumps while holding;
    - a {b reclaimer} ({!scan}) watches held leases; a lease whose
      heartbeat register does not change for {!config.lease_ttl}
      consecutive scans is expired: the per-source {b epoch} register
      is bumped, the protocol's {!Renaming.Protocol.S.reset_footprint}
      hook is run on the corpse's behalf, and the name returns to
      service;
    - the bumped epoch {b fences} the corpse: a {!release} (or any
      wrapper-level action) carrying a stale epoch is detected and
      ignored, so even a holder that was wrongly declared dead cannot
      corrupt the bookkeeping;
    - {!acquire} adds {b admission control}: when live concurrency
      would exceed the configured [ℓ/k] capacity, entrants retry with
      seeded exponential backoff + jitter and finally {b shed}
      ([names.shed]) instead of violating the protocol's concurrency
      bound.

    {b Caveats} (inherent to leases over asynchronous shared memory,
    not implementation gaps):

    - {e false expiry}: a live holder descheduled for more than
      [lease_ttl] scans is reclaimed while alive.  The epoch fence
      makes its subsequent wrapper actions harmless no-ops, but the
      underlying name may be re-granted while the stale holder still
      believes it owns it — the classic lease trade-off.  Choose
      [lease_ttl] generously relative to hold times, and have holders
      {!heartbeat} at least once per held step.
    - {e mid-acquire crashes}: a process that dies inside the wrapped
      [get_name] (before the wrapper records a holder) occupies an
      admission slot that is never reclaimed — only {e held} leases
      are.  Budget capacity accordingly.

    The control-plane bookkeeping (holder table, stale counters) lives
    in OCaml state guarded by a mutex, so one [t] serves simulator
    fibers and OS domains alike; everything the {e protocols} see —
    heartbeats, epochs, footprints — goes through [ops], staying inside
    the paper's shared-register model. *)

type t

type config = {
  lease_ttl : int;
      (** Consecutive scans without a heartbeat change before a lease
          expires; reclamation latency is exactly this many scans. *)
  capacity : int;
      (** Maximum concurrently admitted processes (the protocol's
          [ℓ/k] bound).  Admission counts held leases {e and}
          in-flight acquires. *)
  max_attempts : int;  (** Acquire attempts before shedding. *)
  backoff_base : int;
      (** Idle steps of the first backoff; doubles per attempt. *)
  backoff_cap : int;  (** Upper bound on one backoff, pre-jitter. *)
  seed : int;  (** Seeds the deterministic backoff jitter. *)
}

val default_config : ?lease_ttl:int -> ?seed:int -> capacity:int -> unit -> config
(** [lease_ttl] defaults to [8], [seed] to [0]; [max_attempts 6],
    [backoff_base 1], [backoff_cap 16]. *)

val create :
  (module Renaming.Protocol.S with type t = 'a) ->
  'a ->
  layout:Shared_mem.Layout.t ->
  pids:int array ->
  config ->
  t
(** Wrap an instance for the given participant source names,
    allocating one heartbeat ([HB\[i\]]) and one epoch ([EP\[i\]])
    register per participant from [layout] (so they live in the same
    store as the protocol's registers — allocate {e before}
    instantiating the store).
    @raise Invalid_argument if the protocol has no
    {!Renaming.Protocol.S.reset_footprint}, if [pids] is empty or
    contains duplicates, or if the config is malformed. *)

val name_space : t -> int
val lease_ttl : t -> int

type lease
(** A held wrapper lease: the inner protocol lease plus the epoch it
    was granted under. *)

val name_of : lease -> int

type acquired = Acquired of lease | Shed

val acquire : ?on_grant:(int -> unit) -> t -> Shared_mem.Store.ops -> acquired
(** Admission-controlled, conflict-checked acquire for source name
    [ops.pid] (which must be one of the [pids] given to {!create} and
    must not already hold a lease).  Retries admission and inner-grant
    conflicts with seeded exponential backoff + jitter (idle reads on
    a scratch register, so backoff is visible simulated time); after
    [max_attempts] the entrant sheds.

    [on_grant name] fires at the moment of the grant decision, with no
    shared access between decision and callback — emit your
    [Acquired] event here, not after [acquire] returns, or an
    adversarial schedule can reclaim and re-grant the name before your
    late report and a uniqueness monitor will cry double-hold.  The
    callback must not call back into [t]. *)

val heartbeat : t -> Shared_mem.Store.ops -> lease -> unit
(** One write to the holder's heartbeat register.  Call at least once
    per held step; holding without heartbeats for [lease_ttl] scans
    gets the lease reclaimed. *)

val release : ?on_live:(int -> unit) -> t -> Shared_mem.Store.ops -> lease -> bool
(** Release the lease: [true] on a live release (inner
    [release_name] ran), [false] when the lease's epoch is stale —
    the holder was reclaimed in the meantime; nothing is written and
    the caller must {e not} report a release (it no longer owns the
    name).

    [on_live name] fires when the release is judged live, {e before}
    the inner protocol's registers are cleared — emit your [Released]
    event here so it is always observed before the name's next
    acquisition.  The callback must not call back into [t]. *)

val scan :
  ?on_reclaim:(pid:int -> name:int -> latency:int -> unit) ->
  t ->
  Shared_mem.Store.ops ->
  int
(** One reclaimer pass over every held lease (any process may run it;
    [ops.pid] is remapped per corpse for the resets).  Reads each
    holder's heartbeat register; a lease stale for [lease_ttl]
    consecutive scans is expired: epoch register bumped, footprint
    reset on the corpse's behalf, admission slot freed.  Returns the
    number of leases reclaimed by this pass and invokes [on_reclaim]
    for each ([latency] = scans from last observed heartbeat change to
    reclamation, always [lease_ttl]).  [on_reclaim] fires at the
    expiry decision, {e before} the footprint reset makes the name
    re-grantable — emit your ["reclaimed"] note there.  The callback
    must not call back into [t]. *)

val outstanding : t -> int
(** Leases currently held (from the wrapper's point of view). *)

(** {1 Accounting} *)

type stats = {
  acquired : int;
  released : int;
  shed : int;  (** Entrants that gave up after [max_attempts]. *)
  retries : int;  (** Backoffs taken (admission full or conflict). *)
  conflicts : int;
      (** Inner grants that collided with a held name and were
          returned (defense in depth; a correct protocol under its
          concurrency bound never triggers this). *)
  expired : int;  (** Leases declared dead. *)
  reclaimed : int;  (** Footprints reset and names returned. *)
  stale_releases : int;  (** Epoch-fenced releases ignored. *)
  scans : int;
  reclaim_latencies : int list;  (** Oldest first, one per reclaim. *)
}

val stats : t -> stats

val publish : t -> Obs.Registry.shard -> unit
(** Export the counters to a metrics shard ([names.shed],
    [lease.expired], [recovery.reclaimed], [recovery.conflicts],
    [recovery.stale_releases], [recovery.retries], [names.acquired],
    [names.released], [recovery.scans]), the
    [recovery.reclaim.latency] histogram, and one [reclaim] span per
    reclamation (clocked in scans). *)
