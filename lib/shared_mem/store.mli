(** Process-side access to shared registers.

    An {!ops} record is the capability a single process uses to touch
    shared memory.  Protocol code is written purely against [ops], so
    the same code runs under the deterministic simulator, a plain
    sequential array (for single-threaded tests), or an [Atomic.t]
    array across OS domains (see the [runtime] library).

    The [pid] field is the process's {e source name} — the identity in
    [{0, …, S-1}] that the renaming protocols reduce. *)

type ops = {
  pid : int;  (** Source name of the executing process. *)
  read : Cell.t -> int;  (** Atomic read of a register. *)
  write : Cell.t -> int -> unit;  (** Atomic write of a register. *)
  rmw : Cell.t -> (int -> int) -> int;
      (** [rmw c f] atomically replaces the contents [v] of [c] by
          [f v] and returns [v].  This is a {e stronger} primitive than
          the paper's read/write registers (consensus number > 1); the
          core protocols never use it — it exists for the Test&Set
          baseline ({!Renaming.Tas_baseline}) that the paper contrasts
          against, and costs one shared access. *)
  probe : Obs.Probe.t;
      (** Structural-event hook: protocol code reports its traced
          steps (splitter enter/exit, mutex enter/check/release) here.
          Defaults to {!Obs.Probe.null} in every backend; install a
          recording probe with {!probed}.  Emitting costs no shared
          access. *)
}

(** {1 Sequential store}

    Backing for single-threaded tests: a plain array.  All processes
    share the same array; no interleaving happens (calls run to
    completion), so it exercises protocol logic, not concurrency. *)

type seq

val seq_create : Layout.t -> seq
(** Instantiate register storage from a layout's initial values. *)

val seq_ops : seq -> pid:int -> ops
(** Capability for process [pid] over the sequential store. *)

val seq_get : seq -> Cell.t -> int
(** Direct inspection of a register (test helper, not a protocol step). *)

val seq_set : seq -> Cell.t -> int -> unit
(** Direct mutation of a register (test helper, not a protocol step). *)

(** {1 Access counting}

    Both counting wrappers are backed by [lib/obs] counters, so the
    per-operation tallies below and the registry's per-group series are
    bumped by the same primitive and can never drift. *)

type counter
(** A pair of {!Obs.Counter.t}s (reads, writes) for one process's
    current operation. *)

val counter : unit -> counter

val counting : counter -> ops -> ops
(** [counting c ops] forwards to [ops] and tallies accesses in [c].
    An [rmw] is one atomic access and tallies as a write. *)

val reads : counter -> int
val writes : counter -> int

val accesses : counter -> int
(** [reads + writes] — the paper's complexity measure. *)

val reset : counter -> unit

val group : Cell.t -> string
(** The register-group key used by {!observed}: the cell's name up to
    the first ['[']. *)

val probed : Obs.Probe.t -> ops -> ops
(** [probed p ops] is [ops] with [p] installed as the structural
    probe.  The probe closure should capture the process identity it
    attributes events to at wrap time — [{ ops with pid }] re-labelling
    (pipeline chaining, crash recovery) carries the probe along
    unchanged, so attribution stays with the original process. *)

(** {1 The access arena}

    A {!tally} is one process's flat, preallocated access ledger:
    per-register-kind counts indexed by dense {!Cell.id} plus a
    running total, all plain int-array stores on the hot path.  It
    replaces stacking [counting] layers on top of [observed] — one
    arena serves per-group registry metrics ({e deferred}: deltas are
    pushed only when a snapshot runs), per-operation access counts
    ([tally_mark]/[tally_since]) and the flight recorder's logical
    clock ([tally_total]) from a single branch + store per access.
    Single-writer, like every registry shard. *)

type tally

val tally : unit -> tally

val observed_into : tally -> Obs.Registry.shard -> ops -> ops
(** [observed_into t shard ops] forwards to [ops], recording each
    access in [t].  Group counters ([store.reads.<group>], …, plus the
    ungrouped totals [store.reads] / [store.writes] / [store.rmws]; a
    register's {e group} is its {!Cell.name} up to the first ['[']) are
    materialized into [shard] as deltas when {!Obs.Registry.snapshot}
    runs, or on {!tally_flush}.  Several [ops] may share one tally
    (e.g. one per server shard store) but a tally binds to a single
    registry shard: a second [observed_into] with a different shard
    raises [Invalid_argument]. *)

val tallying : tally -> ops -> ops
(** Total-only variant for runs without a registry: bumps the running
    total (so [tally_total]/[tally_since] work) but skips per-register
    bookkeeping. *)

val tally_total : tally -> int
(** Every access since creation — never reset; the flight recorder's
    logical clock. *)

val tally_mark : tally -> unit
(** Mark the current total; {!tally_since} reports accesses since. *)

val tally_since : tally -> int

val tally_flush : tally -> unit
(** Push unpushed deltas into the bound registry shard now (no-op for
    an unbound tally).  Registered automatically via
    {!Obs.Registry.on_snapshot}, so explicit calls are rarely
    needed. *)

val observed : Obs.Registry.shard -> ops -> ops
(** [observed shard ops] = [observed_into (tally ()) shard ops] — the
    per-register-group counters land in [shard] with the same names as
    always, just deferred until snapshot. *)
