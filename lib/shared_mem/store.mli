(** Process-side access to shared registers.

    An {!ops} record is the capability a single process uses to touch
    shared memory.  Protocol code is written purely against [ops], so
    the same code runs under the deterministic simulator, a plain
    sequential array (for single-threaded tests), or an [Atomic.t]
    array across OS domains (see the [runtime] library).

    The [pid] field is the process's {e source name} — the identity in
    [{0, …, S-1}] that the renaming protocols reduce. *)

type ops = {
  pid : int;  (** Source name of the executing process. *)
  read : Cell.t -> int;  (** Atomic read of a register. *)
  write : Cell.t -> int -> unit;  (** Atomic write of a register. *)
  rmw : Cell.t -> (int -> int) -> int;
      (** [rmw c f] atomically replaces the contents [v] of [c] by
          [f v] and returns [v].  This is a {e stronger} primitive than
          the paper's read/write registers (consensus number > 1); the
          core protocols never use it — it exists for the Test&Set
          baseline ({!Renaming.Tas_baseline}) that the paper contrasts
          against, and costs one shared access. *)
  probe : Obs.Probe.t;
      (** Structural-event hook: protocol code reports its traced
          steps (splitter enter/exit, mutex enter/check/release) here.
          Defaults to {!Obs.Probe.null} in every backend; install a
          recording probe with {!probed}.  Emitting costs no shared
          access. *)
}

(** {1 Sequential store}

    Backing for single-threaded tests: a plain array.  All processes
    share the same array; no interleaving happens (calls run to
    completion), so it exercises protocol logic, not concurrency. *)

type seq

val seq_create : Layout.t -> seq
(** Instantiate register storage from a layout's initial values. *)

val seq_ops : seq -> pid:int -> ops
(** Capability for process [pid] over the sequential store. *)

val seq_get : seq -> Cell.t -> int
(** Direct inspection of a register (test helper, not a protocol step). *)

val seq_set : seq -> Cell.t -> int -> unit
(** Direct mutation of a register (test helper, not a protocol step). *)

(** {1 Access counting}

    Both counting wrappers are backed by [lib/obs] counters, so the
    per-operation tallies below and the registry's per-group series are
    bumped by the same primitive and can never drift. *)

type counter
(** A pair of {!Obs.Counter.t}s (reads, writes) for one process's
    current operation. *)

val counter : unit -> counter

val counting : counter -> ops -> ops
(** [counting c ops] forwards to [ops] and tallies accesses in [c].
    An [rmw] is one atomic access and tallies as a write. *)

val reads : counter -> int
val writes : counter -> int

val accesses : counter -> int
(** [reads + writes] — the paper's complexity measure. *)

val reset : counter -> unit

val group : Cell.t -> string
(** The register-group key used by {!observed}: the cell's name up to
    the first ['[']. *)

val probed : Obs.Probe.t -> ops -> ops
(** [probed p ops] is [ops] with [p] installed as the structural
    probe.  The probe closure should capture the process identity it
    attributes events to at wrap time — [{ ops with pid }] re-labelling
    (pipeline chaining, crash recovery) carries the probe along
    unchanged, so attribution stays with the original process. *)

val observed : Obs.Registry.shard -> ops -> ops
(** [observed shard ops] forwards to [ops] and bumps per-register-group
    counters in [shard]: [store.reads.<group>], [store.writes.<group>],
    [store.rmws.<group>] plus the ungrouped totals [store.reads] /
    [store.writes] / [store.rmws].  A register's {e group} is its
    {!Cell.name} up to the first ['['] — i.e. one series per
    {!Layout.alloc_array} family.  Group counters are resolved once per
    cell and cached, so the per-access cost is two counter bumps. *)
