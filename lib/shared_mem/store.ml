type ops = {
  pid : int;
  read : Cell.t -> int;
  write : Cell.t -> int -> unit;
  rmw : Cell.t -> (int -> int) -> int;
  probe : Obs.Probe.t;
}

type seq = int array

let seq_create layout = Layout.initial_values layout

let seq_ops mem ~pid =
  {
    pid;
    read = (fun c -> mem.(Cell.id c));
    write = (fun c v -> mem.(Cell.id c) <- v);
    rmw =
      (fun c f ->
        let v = mem.(Cell.id c) in
        mem.(Cell.id c) <- f v;
        v);
    probe = Obs.Probe.null;
  }

let seq_get mem c = mem.(Cell.id c)
let seq_set mem c v = mem.(Cell.id c) <- v

type counter = { reads : Obs.Counter.t; writes : Obs.Counter.t }

let counter () = { reads = Obs.Counter.create (); writes = Obs.Counter.create () }

let counting c ops =
  {
    pid = ops.pid;
    read =
      (fun cell ->
        Obs.Counter.incr c.reads;
        ops.read cell);
    write =
      (fun cell v ->
        Obs.Counter.incr c.writes;
        ops.write cell v);
    rmw =
      (fun cell f ->
        (* one atomic access; tally it as a write *)
        Obs.Counter.incr c.writes;
        ops.rmw cell f);
    probe = ops.probe;
  }

let reads c = Obs.Counter.get c.reads
let writes c = Obs.Counter.get c.writes
let accesses c = reads c + writes c

let reset c =
  Obs.Counter.reset c.reads;
  Obs.Counter.reset c.writes

let group c =
  let n = Cell.name c in
  match String.index_opt n '[' with Some i -> String.sub n 0 i | None -> n

(* ----- the flat access arena -----

   One [tally] replaces the per-cell counter-tuple cache of the old
   [observed] and the extra [counting] layers that used to be stacked
   on top of it.  Counts live in a flat int array indexed by
   [3 * Cell.id + kind] — Layout hands out dense ids from 0, so the
   hot path is one registered-check, one store into the arena and one
   bump of the running total.  Nothing touches the registry per
   access: group counters are materialized lazily, as deltas, when a
   snapshot runs (via [Registry.on_snapshot]) or on an explicit
   [tally_flush].  Single-writer, like every [lib/obs] shard. *)

type tally = {
  mutable slots : int array; (* 3 per cell id: reads / writes / rmws *)
  mutable flushed : int array; (* counts already pushed to the registry *)
  mutable cells : Cell.t option array; (* registered = Some *)
  mutable total : int; (* every access ever, never reset *)
  mutable mark : int; (* set by [tally_mark], read by [tally_since] *)
  mutable bound : Obs.Registry.shard option;
}

let tally () =
  { slots = [||]; flushed = [||]; cells = [||]; total = 0; mark = 0; bound = None }

let tally_register t cell =
  let id = Cell.id cell in
  if id >= Array.length t.cells then begin
    let n = max 64 (max (id + 1) (2 * Array.length t.cells)) in
    let cells = Array.make n None in
    Array.blit t.cells 0 cells 0 (Array.length t.cells);
    let slots = Array.make (3 * n) 0 in
    Array.blit t.slots 0 slots 0 (Array.length t.slots);
    let flushed = Array.make (3 * n) 0 in
    Array.blit t.flushed 0 flushed 0 (Array.length t.flushed);
    t.cells <- cells;
    t.slots <- slots;
    t.flushed <- flushed
  end;
  t.cells.(id) <- Some cell

let tally_total t = t.total
let tally_mark t = t.mark <- t.total
let tally_since t = t.total - t.mark

let kind_total = [| "store.reads"; "store.writes"; "store.rmws" |]
let kind_prefix = [| "store.reads."; "store.writes."; "store.rmws." |]

let tally_flush t =
  match t.bound with
  | None -> ()
  | Some sh ->
      for id = 0 to Array.length t.cells - 1 do
        match t.cells.(id) with
        | None -> ()
        | Some cell ->
            let g = group cell in
            for k = 0 to 2 do
              let i = (3 * id) + k in
              let d = t.slots.(i) - t.flushed.(i) in
              if d > 0 then begin
                Obs.Counter.add (Obs.Registry.counter sh (kind_prefix.(k) ^ g)) d;
                Obs.Counter.add (Obs.Registry.counter sh kind_total.(k)) d;
                t.flushed.(i) <- t.slots.(i)
              end
            done
      done

let observed_into t shard ops =
  (match t.bound with
  | None ->
      t.bound <- Some shard;
      (* the ungrouped totals exist from wrap time (as they always
         have), even if this ops set never runs — schema stability *)
      Array.iter
        (fun n -> ignore (Obs.Registry.counter shard n : Obs.Counter.t))
        kind_total;
      Obs.Registry.on_snapshot shard (fun () -> tally_flush t)
  | Some s ->
      if not (s == shard) then
        invalid_arg "Store.observed_into: tally already bound to another shard");
  (* The hot path is written out in each closure (no helper calls —
     this compiler doesn't cross-inline) and uses unsafe indexing: the
     registered check establishes [id < length t.cells], and [t.slots]
     is always allocated at [3 x] the cell-array length, so every
     index below is in bounds. *)
  let read = ops.read
  and write = ops.write
  and rmw = ops.rmw in
  {
    pid = ops.pid;
    read =
      (fun cell ->
        let id = Cell.id cell in
        (if id < Array.length t.cells then begin
           match Array.unsafe_get t.cells id with
           | Some _ -> ()
           | None -> tally_register t cell
         end
         else tally_register t cell);
        t.total <- t.total + 1;
        let i = 3 * id in
        Array.unsafe_set t.slots i (Array.unsafe_get t.slots i + 1);
        read cell);
    write =
      (fun cell v ->
        let id = Cell.id cell in
        (if id < Array.length t.cells then begin
           match Array.unsafe_get t.cells id with
           | Some _ -> ()
           | None -> tally_register t cell
         end
         else tally_register t cell);
        t.total <- t.total + 1;
        let i = (3 * id) + 1 in
        Array.unsafe_set t.slots i (Array.unsafe_get t.slots i + 1);
        write cell v);
    rmw =
      (fun cell f ->
        let id = Cell.id cell in
        (if id < Array.length t.cells then begin
           match Array.unsafe_get t.cells id with
           | Some _ -> ()
           | None -> tally_register t cell
         end
         else tally_register t cell);
        t.total <- t.total + 1;
        let i = (3 * id) + 2 in
        Array.unsafe_set t.slots i (Array.unsafe_get t.slots i + 1);
        rmw cell f);
    probe = ops.probe;
  }

let tallying t ops =
  {
    pid = ops.pid;
    read =
      (fun cell ->
        t.total <- t.total + 1;
        ops.read cell);
    write =
      (fun cell v ->
        t.total <- t.total + 1;
        ops.write cell v);
    rmw =
      (fun cell f ->
        t.total <- t.total + 1;
        ops.rmw cell f);
    probe = ops.probe;
  }

let observed shard ops = observed_into (tally ()) shard ops
let probed p ops = { ops with probe = p }
