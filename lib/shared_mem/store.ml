type ops = {
  pid : int;
  read : Cell.t -> int;
  write : Cell.t -> int -> unit;
  rmw : Cell.t -> (int -> int) -> int;
  probe : Obs.Probe.t;
}

type seq = int array

let seq_create layout = Layout.initial_values layout

let seq_ops mem ~pid =
  {
    pid;
    read = (fun c -> mem.(Cell.id c));
    write = (fun c v -> mem.(Cell.id c) <- v);
    rmw =
      (fun c f ->
        let v = mem.(Cell.id c) in
        mem.(Cell.id c) <- f v;
        v);
    probe = Obs.Probe.null;
  }

let seq_get mem c = mem.(Cell.id c)
let seq_set mem c v = mem.(Cell.id c) <- v

type counter = { reads : Obs.Counter.t; writes : Obs.Counter.t }

let counter () = { reads = Obs.Counter.create (); writes = Obs.Counter.create () }

let counting c ops =
  {
    pid = ops.pid;
    read =
      (fun cell ->
        Obs.Counter.incr c.reads;
        ops.read cell);
    write =
      (fun cell v ->
        Obs.Counter.incr c.writes;
        ops.write cell v);
    rmw =
      (fun cell f ->
        (* one atomic access; tally it as a write *)
        Obs.Counter.incr c.writes;
        ops.rmw cell f);
    probe = ops.probe;
  }

let reads c = Obs.Counter.get c.reads
let writes c = Obs.Counter.get c.writes
let accesses c = reads c + writes c

let reset c =
  Obs.Counter.reset c.reads;
  Obs.Counter.reset c.writes

let group c =
  let n = Cell.name c in
  match String.index_opt n '[' with Some i -> String.sub n 0 i | None -> n

let observed shard ops =
  (* Resolve each register's group counters once per cell id, not per
     access; [rt]/[wt]/[ut] are the ungrouped totals.  Layout hands out
     dense ids from 0, so the cache is a growable array — the hot path
     is one bounds check and a load, no hashing. *)
  let cache = ref [||] in
  let rt = Obs.Registry.counter shard "store.reads"
  and wt = Obs.Registry.counter shard "store.writes"
  and ut = Obs.Registry.counter shard "store.rmws" in
  let counters cell =
    let id = Cell.id cell in
    if id >= Array.length !cache then begin
      let grown = Array.make (max 64 (max (id + 1) (2 * Array.length !cache))) None in
      Array.blit !cache 0 grown 0 (Array.length !cache);
      cache := grown
    end;
    match !cache.(id) with
    | Some cs -> cs
    | None ->
        let g = group cell in
        let cs =
          ( Obs.Registry.counter shard ("store.reads." ^ g),
            Obs.Registry.counter shard ("store.writes." ^ g),
            Obs.Registry.counter shard ("store.rmws." ^ g) )
        in
        !cache.(id) <- Some cs;
        cs
  in
  {
    pid = ops.pid;
    read =
      (fun cell ->
        let r, _, _ = counters cell in
        Obs.Counter.incr r;
        Obs.Counter.incr rt;
        ops.read cell);
    write =
      (fun cell v ->
        let _, w, _ = counters cell in
        Obs.Counter.incr w;
        Obs.Counter.incr wt;
        ops.write cell v);
    rmw =
      (fun cell f ->
        let _, _, u = counters cell in
        Obs.Counter.incr u;
        Obs.Counter.incr ut;
        ops.rmw cell f);
    probe = ops.probe;
  }

let probed p ops = { ops with probe = p }
