type t = {
  mutable cells : Cell.t list; (* reversed *)
  mutable count : int;
}

let create () = { cells = []; count = 0 }

let alloc t ?(name = "r") init =
  let c = Cell.make ~id:t.count ~name ~init in
  t.cells <- c :: t.cells;
  t.count <- t.count + 1;
  c

let alloc_array t ?(name = "r") len init =
  Array.init len (fun i -> alloc t ~name:(Printf.sprintf "%s[%d]" name i) init)

let size t = t.count
let cells t = List.sort Cell.compare t.cells

let initial_values t =
  let a = Array.make t.count 0 in
  List.iter (fun c -> a.(Cell.id c) <- Cell.init c) t.cells;
  a

let cell_name t id =
  if id < 0 || id >= t.count then invalid_arg "Layout.cell_name";
  let rec find = function
    | [] -> assert false
    | c :: rest -> if Cell.id c = id then Cell.name c else find rest
  in
  find t.cells
