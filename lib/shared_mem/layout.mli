(** Allocation of shared registers.

    A [Layout.t] is a growing collection of register declarations.
    Protocol constructors allocate all the registers they need from a
    layout; afterwards a store of the right size is instantiated from
    it.  Layouts are single-threaded builder objects: allocate
    everything before any process starts running. *)

type t

val create : unit -> t
(** Fresh, empty layout. *)

val alloc : t -> ?name:string -> int -> Cell.t
(** [alloc t ~name init] declares a new register with initial value
    [init] and returns its handle.  [name] defaults to ["r"]. *)

val alloc_array : t -> ?name:string -> int -> int -> Cell.t array
(** [alloc_array t ~name len init] declares [len] registers named
    ["name[i]"], all initialised to [init]. *)

val size : t -> int
(** Number of registers allocated so far. *)

val cells : t -> Cell.t list
(** All registers allocated so far, in allocation ([Cell.id]) order.
    Introspection for tooling (state hashing, independence analysis,
    register dumps); fresh list on every call. *)

val initial_values : t -> int array
(** Snapshot of the initial value of every register, indexed by
    {!Cell.id}.  Fresh array on every call. *)

val cell_name : t -> int -> string
(** [cell_name t id] is the name of the register with index [id].
    @raise Invalid_argument if [id] is out of range. *)
