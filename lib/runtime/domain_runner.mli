(** Running a renaming protocol across real OS domains.

    Spawns one domain per source name, each performing acquire/release
    cycles against an {!Atomic_store}, with an on-line uniqueness
    monitor: a per-name atomic holder counter that must never exceed 1
    (incremented after [get_name], decremented before [release_name]).

    When a registry is supplied, every worker writes its own
    {!Obs.Registry.shard} — per-register-group access counters
    ({!Shared_mem.Store.observed}), [op.get.accesses] /
    [op.release.accesses] histograms, one span per operation (clocked
    by the worker's own access count), and [names.held] gauges whose
    high-water marks are fed from the {e global} holder counters, so
    the merged snapshot after the join carries the same schema a
    simulator run produces through [Sim.Observe].

    Useful bounds: run at most [Domain.recommended_domain_count]
    workers for true parallelism; more still works (domains are
    preemptively scheduled) and the protocols are wait-free, so
    stragglers cannot deadlock the run. *)

(** Real-stall fault injection, the multicore face of {!Sim.Faults}:
    simulated plans freeze a fiber; here a faulty worker burns real
    time on its core (or parks outright) while holding a name, and the
    run asserts the non-faulty workers still finish every cycle — the
    paper's wait-freedom claim under genuine preemption, not just
    simulated adversarial schedules. *)
type fault =
  | Park_holding
      (** Acquire once, then hold the name — spinning, never releasing —
          until every non-parked worker has finished all its cycles;
          release and exit then (so the run always terminates).  The
          worker's [cycles_done] stays at [0]: it never completes a
          full acquire/release cycle until the others are done. *)
  | Stall_holding of { cycle : int; spins : int }
      (** On 0-based cycle [cycle], spin [spins] times ([Domain.cpu_relax])
          while holding the name before releasing it. *)
  | Slow of int
      (** Spin this many times after every acquire and every release —
          a slow-lane worker. *)
  | Crash_holding of { cycle : int }
      (** Complete [cycle] full acquire/release cycles, acquire once
          more, then exit the domain {e without releasing} — process
          death while holding a name.  Under {!run} the name and its
          register footprint leak (see [result.leaked]); under
          {!run_recovered} the post-join drain reclaims them. *)

type result = Agg.result = {
  cycles_done : int array;  (** Per worker; equals [cycles] on success. *)
  violations : int;
      (** Times a name was observed held by two workers at once, or a
          name fell outside [\[0, name_space)]. *)
  max_concurrent : int;  (** High-water mark of names held at once. *)
  max_concurrent_by_name : (int * int) list;
      (** [(name, high-water mark of simultaneous holders)] for every
          name ever held, ascending by name; any mark above [1] is a
          uniqueness violation. *)
  first_violation : string option;
      (** Human-readable detail of the first violation observed — which
          name was double-held (or out of range) — [None] on a clean
          run. *)
  leaked : int;
      (** Names still held when the run ended (after reclamation, for
          {!run_recovered}) — names crashed workers took to the grave.
          [0] on a fully clean run. *)
  reclaimed : int;
      (** Leases reclaimed by the post-join drain; always [0] for
          {!run} (no recovery layer). *)
}

val run :
  ?registry:Obs.Registry.t ->
  ?flight:Obs.Flight.t ->
  ?faults:(int * fault) list ->
  (module Renaming.Protocol.S with type t = 'a) ->
  'a ->
  layout:Shared_mem.Layout.t ->
  pids:int array ->
  cycles:int ->
  name_space:int ->
  result
(** [run (module P) inst ~layout ~pids ~cycles ~name_space] spawns
    [Array.length pids] domains.  The instance must have been created
    from [layout] with every pid a legal source name.  [registry], if
    given, gains one shard per worker; snapshot it after [run]
    returns.  [flight], if given, receives the structural flight
    records: each worker writes an unsynchronized private ring
    (capacity [flight]'s capacity divided by the worker count, at
    least 1024), clocked by that worker's own access count, and the
    rings are concatenated into [flight] in worker order after the
    join — so ordering between records of {e different} pids is not
    meaningful, unlike simulator rings.  [faults] maps worker
    {e indices} (positions in [pids], not pids) to faults; at least
    one worker should stay fault-free or [Park_holding] workers would
    wait forever on an empty set.
    @raise Invalid_argument if [pids] is non-empty and {e every} worker
    is [Park_holding] — each would wait on the others forever. *)

val run_recovered :
  ?registry:Obs.Registry.t ->
  ?faults:(int * fault) list ->
  Recovery.t ->
  layout:Shared_mem.Layout.t ->
  pids:int array ->
  cycles:int ->
  result
(** Like {!run} but through a crash-recovery wrapper (created over the
    same [layout], {e before} this call instantiates the store from
    it): acquires go through {!Recovery.acquire} — a shed entrant
    skips the cycle, so [cycles_done] may fall short of [cycles] when
    capacity is tight — each hold performs a {!Recovery.heartbeat},
    and releases are epoch-fenced.  Reclamation is {b quiescent}: no
    scans run while workers do (a preempted live worker can therefore
    never be falsely expired); after the join, scan rounds drain every
    lease crashed workers left behind ([result.reclaimed]), so
    [Crash_holding] leaks end at [0] ([result.leaked]) instead of
    poisoning the name space.
    @raise Invalid_argument as {!run}. *)
