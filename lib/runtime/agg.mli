(** Shared result-aggregation state for multi-domain runs.

    One value of {!t} is the cross-domain scoreboard of a run: the
    per-name holder counters behind the on-line uniqueness monitor,
    the concurrency high-water marks, per-worker cycle counts and the
    first-violation record.  Both {!Domain_runner.run} and
    {!Domain_runner.run_recovered} build their result from the same
    constructor — the two entry points can no longer drift — and the
    name server ([lib/server]) scores its clients through it too.

    The hot arrays (per-name holders and maxima, per-worker cycle
    counters) are {!Pad}-spaced so contended updates to different
    names do not false-share cache lines.

    All updates are safe from any domain. *)

type t

type result = {
  cycles_done : int array;  (** Per worker; equals the cycle budget on success. *)
  violations : int;
      (** Times a name was observed held by two workers at once, or a
          name fell outside [\[0, name_space)]. *)
  max_concurrent : int;  (** High-water mark of names held at once. *)
  max_concurrent_by_name : (int * int) list;
      (** [(name, high-water mark of simultaneous holders)] for every
          name ever held, ascending by name; any mark above [1] is a
          uniqueness violation. *)
  first_violation : string option;
      (** Human-readable detail of the first violation observed — which
          name was double-held (or out of range) — [None] on a clean
          run. *)
  leaked : int;
      (** Names still held when the run ended — what crashed workers
          took to the grave.  [0] on a fully clean run. *)
  reclaimed : int;
      (** Leases reclaimed by a post-join drain; [0] when the run has
          no recovery layer. *)
}

val create : entry:string -> name_space:int -> workers:int -> parked:int -> t
(** [create ~entry ~name_space ~workers ~parked] — fresh scoreboard
    for [workers] workers of which [parked] will park holding a name.
    [entry] names the caller in diagnostics.
    @raise Invalid_argument if [workers > 0] and every worker is
    parked — each would wait on the others forever. *)

val note_violation : t -> string -> unit
(** Count a violation, recording the message if it is the first. *)

val acquired : t -> worker:int -> name:int -> int * int
(** Score one acquisition by worker index [worker]: bump the holder
    count and per-name maximum of [name] (flagging double-holds and
    out-of-range names as violations) and the concurrency high-water
    mark.  Returns [(held, concurrent)] — the number of simultaneous
    holders of [name] (0 when out of range) and of names overall,
    both including this one — for gauge feeding. *)

val released : t -> name:int -> unit
(** Score the matching release: drop the holder and concurrency
    counts.  Call {e before} the protocol-level release, mirroring
    {!acquired} being called after the grant. *)

val cycle_done : t -> int -> unit
(** One full acquire/release cycle completed by this worker index. *)

val worker_done : t -> unit
(** A non-parked worker finished all its cycles. *)

val all_normal_done : t -> bool
(** Every non-parked worker has called {!worker_done} — the condition
    parked holders spin on before releasing. *)

val cycles_of : t -> int -> int
(** Cycles completed by one worker index so far. *)

val result : ?reclaimed:int -> t -> result
(** Freeze the scoreboard (call after the join).  [leaked] is the sum
    of holder counts still standing; [reclaimed] defaults to [0]. *)
