open Shared_mem

type fault =
  | Park_holding
  | Stall_holding of { cycle : int; spins : int }
  | Slow of int
  | Crash_holding of { cycle : int }

type result = Agg.result = {
  cycles_done : int array;
  violations : int;
  max_concurrent : int;
  max_concurrent_by_name : (int * int) list;
  first_violation : string option;
  leaked : int;
  reclaimed : int;
}

(* Both entry points build their scoreboard here so the aggregation
   setup cannot drift between them (it used to be duplicated). *)
let agg ~entry ~name_space ~pids ~faults =
  Agg.create ~entry ~name_space ~workers:(Array.length pids)
    ~parked:(List.length (List.filter (fun (_, f) -> f = Park_holding) faults))

(* Per-domain Obs instrumentation: one [Store.tally] arena on [ops]
   (grouped access counts materialize at snapshot), one span per
   operation clocked by the worker's own access count, and the
   op.*.accesses histograms.  Metric handles are resolved once per op
   name, not per call — no string building on the cycle path. *)
let instrument ~registry ~pid raw =
  let shard = Option.map (fun r -> Obs.Registry.shard r) registry in
  let t = Store.tally () in
  let ops =
    match shard with
    | None -> raw
    | Some sh -> Store.observed_into t sh raw
  in
  let clock = ref 0 in
  let handles = ref [] in
  let record sh op annotations =
    let accesses = Store.tally_since t in
    Obs.Registry.record_span sh ~name:op ~pid ~start_step:!clock
      ~end_step:(!clock + accesses) ~accesses ~annotations;
    clock := !clock + accesses;
    let hist, count =
      match List.assoc_opt op !handles with
      | Some h -> h
      | None ->
          let h =
            ( Obs.Registry.histogram sh ("op." ^ op ^ ".accesses"),
              Obs.Registry.counter sh ("op." ^ op ^ ".count") )
          in
          handles := (op, h) :: !handles;
          h
    in
    Obs.Histogram.observe hist accesses;
    Obs.Counter.incr count
  in
  (shard, t, ops, record)

let gauge_acquired shard ~name ~name_space ~held ~conc =
  match shard with
  | Some sh ->
      let g = Obs.Registry.gauge sh "names.held" in
      Obs.Gauge.incr g;
      Obs.Gauge.observe g conc;
      if name >= 0 && name < name_space then begin
        let gn = Obs.Registry.gauge sh ("names.held." ^ string_of_int name) in
        Obs.Gauge.incr gn;
        Obs.Gauge.observe gn held
      end;
      Obs.Registry.inc sh "names.acquired"
  | None -> ()

let gauge_released shard ~name ~name_space =
  match shard with
  | Some sh ->
      Obs.Gauge.decr (Obs.Registry.gauge sh "names.held");
      if name >= 0 && name < name_space then
        Obs.Gauge.decr (Obs.Registry.gauge sh ("names.held." ^ string_of_int name));
      Obs.Registry.inc sh "names.released"
  | None -> ()

let spin n =
  for _ = 1 to n do
    Domain.cpu_relax ()
  done

let run (type a) ?registry ?flight ?(faults = [])
    (module P : Renaming.Protocol.S with type t = a) (inst : a) ~layout ~pids ~cycles
    ~name_space =
  let store = Atomic_store.create layout in
  (* Per-worker rings, merged into [flight] in worker order after the
     join — each ring has a single writer, so recording is unsynchronized. *)
  let worker_rings =
    match flight with
    | None -> [||]
    | Some ring ->
        let per =
          max 1024 (Obs.Flight.capacity ring / max 1 (Array.length pids))
        in
        Array.map (fun _ -> Obs.Flight.create ~capacity:per ()) pids
  in
  (* parked workers hold their name until every non-parked worker has
     finished all its cycles — so parking cannot hang the run, and the
     others' completion IS the wait-freedom assertion *)
  let agg = agg ~entry:"Domain_runner.run" ~name_space ~pids ~faults in
  let worker i pid () =
    (* Each domain writes its own registry shard; shards merge on
       snapshot, after the join.  The worker's span clock is its own
       access count (real time is preemptive; global step order is not
       observable the way it is under the simulator). *)
    let raw = Atomic_store.ops store ~pid in
    let shard, t, ops, record = instrument ~registry ~pid raw in
    (* The flight clock is the domain's own total access count — the
       tally's never-reset running total (per-operation deltas use
       mark/since on the same arena, so one count feeds both); cross-
       domain ordering is not claimed — see the Flight doc. *)
    let ops, fring =
      if Array.length worker_rings = 0 then (ops, None)
      else begin
        let ring = worker_rings.(i) in
        (* without a registry the ops aren't tallied yet — the flight
           clock still needs the total, so count into the same arena *)
        let ops = if Option.is_none shard then Store.tallying t ops else ops in
        ( Store.probed
            (Obs.Flight.probe ring ~pid ~clock:(fun () -> Store.tally_total t))
            ops,
          Some ring )
      end
    in
    let fly ev =
      match fring with
      | None -> ()
      | Some ring -> Obs.Flight.record ring ~clock:(Store.tally_total t) ~pid ev
    in
    let acquire () =
      Store.tally_mark t;
      let lease = P.get_name inst ops in
      let n = P.name_of inst lease in
      fly (Obs.Flight.Acquired n);
      (match shard with Some sh -> record sh "get" [ ("name", n) ] | None -> ());
      let held, conc = Agg.acquired agg ~worker:i ~name:n in
      gauge_acquired shard ~name:n ~name_space ~held ~conc;
      (lease, n)
    in
    let release (lease, n) =
      Agg.released agg ~name:n;
      gauge_released shard ~name:n ~name_space;
      Store.tally_mark t;
      P.release_name inst ops lease;
      fly (Obs.Flight.Released n);
      match shard with Some sh -> record sh "release" [] | None -> ()
    in
    match List.assoc_opt i faults with
    | Some Park_holding ->
        let held = acquire () in
        while not (Agg.all_normal_done agg) do
          Domain.cpu_relax ()
        done;
        release held
    | Some (Crash_holding { cycle }) ->
        for _ = 1 to cycle do
          let held = acquire () in
          Domain.cpu_relax ();
          release held;
          Agg.cycle_done agg i
        done;
        (* die holding: the domain exits without releasing — the name
           and its register footprint leak unless a recovery layer
           reclaims them (see [run_recovered]) *)
        ignore (acquire ());
        Agg.worker_done agg
    | fault ->
        for cy = 0 to cycles - 1 do
          let held = acquire () in
          (match fault with
          | Some (Stall_holding { cycle; spins }) when cy = cycle -> spin spins
          | Some (Slow n) -> spin n
          | _ -> ());
          (* hold the name briefly so overlaps actually occur *)
          Domain.cpu_relax ();
          release held;
          (match fault with Some (Slow n) -> spin n | _ -> ());
          Agg.cycle_done agg i
        done;
        Agg.worker_done agg
  in
  let domains = Array.mapi (fun i pid -> Domain.spawn (worker i pid)) pids in
  Array.iter Domain.join domains;
  (match flight with
  | None -> ()
  | Some ring -> Array.iter (fun r -> Obs.Flight.merge ~into:ring r) worker_rings);
  Agg.result agg

let run_recovered ?registry ?(faults = []) rc ~layout ~pids ~cycles =
  let name_space = Recovery.name_space rc in
  let store = Atomic_store.create layout in
  let agg = agg ~entry:"Domain_runner.run_recovered" ~name_space ~pids ~faults in
  let worker i pid () =
    let raw = Atomic_store.ops store ~pid in
    let shard, t, ops, record = instrument ~registry ~pid raw in
    let acquire () =
      Store.tally_mark t;
      match Recovery.acquire rc ops with
      | Recovery.Shed ->
          (match shard with Some sh -> Obs.Registry.inc sh "names.shed" | None -> ());
          None
      | Recovery.Acquired lease ->
          let n = Recovery.name_of lease in
          (match shard with Some sh -> record sh "get" [ ("name", n) ] | None -> ());
          let held, conc = Agg.acquired agg ~worker:i ~name:n in
          gauge_acquired shard ~name:n ~name_space ~held ~conc;
          Some (lease, n)
    in
    let release (lease, n) =
      Agg.released agg ~name:n;
      gauge_released shard ~name:n ~name_space;
      Store.tally_mark t;
      ignore (Recovery.release rc ops lease : bool);
      match shard with Some sh -> record sh "release" [] | None -> ()
    in
    let full_cycle fault cy =
      match acquire () with
      | None -> () (* shed: skip the cycle, the admission bound held *)
      | Some ((lease, _) as held) ->
          (match fault with
          | Some (Stall_holding { cycle; spins }) when cy = cycle -> spin spins
          | Some (Slow n) -> spin n
          | _ -> ());
          Recovery.heartbeat rc ops lease;
          release held;
          (match fault with Some (Slow n) -> spin n | _ -> ());
          Agg.cycle_done agg i
    in
    match List.assoc_opt i faults with
    | Some Park_holding -> (
        match acquire () with
        | None -> () (* shed before parking: nothing held, just exit *)
        | Some ((lease, _) as held) ->
            while not (Agg.all_normal_done agg) do
              Recovery.heartbeat rc ops lease
            done;
            release held)
    | Some (Crash_holding { cycle }) ->
        for cy = 0 to cycle - 1 do
          full_cycle None cy
        done;
        ignore (acquire ());
        Agg.worker_done agg
    | fault ->
        for cy = 0 to cycles - 1 do
          full_cycle fault cy
        done;
        Agg.worker_done agg
  in
  let domains = Array.mapi (fun i pid -> Domain.spawn (worker i pid)) pids in
  Array.iter Domain.join domains;
  (* Quiescent reclamation: scanning only after the join means a slow
     live worker can never be falsely expired by real preemption — the
     only leases left now belong to crashed workers. *)
  let reclaimed = ref 0 in
  if Array.length pids > 0 then begin
    let drain_ops = Atomic_store.ops store ~pid:pids.(0) in
    let max_rounds = Recovery.lease_ttl rc + Array.length pids + 4 in
    let rounds = ref 0 in
    while Recovery.outstanding rc > 0 && !rounds < max_rounds do
      incr rounds;
      ignore
        (Recovery.scan rc drain_ops ~on_reclaim:(fun ~pid:_ ~name ~latency:_ ->
             incr reclaimed;
             Agg.released agg ~name)
          : int)
    done
  end;
  Agg.result ~reclaimed:!reclaimed agg
