(** Cache-line discipline for hot atomic arrays.

    [Atomic.make] allocates a two-word boxed cell; an
    [Array.init n (fun _ -> Atomic.make 0)] therefore packs up to four
    unrelated counters into one 64-byte cache line, and contended
    updates to {e different} names ping-pong the same line between
    cores (false sharing).  OCaml 5.1 has no [Atomic.make_contended]
    yet, so this module spaces the boxes the portable way: a spacer
    block is allocated between consecutive cells {e and kept
    reachable}, so neither minor-heap evacuation nor major-heap
    compaction can re-pack the cells onto a shared line.

    The spacers cost [line_words] extra words per cell — use this for
    small, hot arrays (per-name holder counters, per-worker cycle
    counters), not for O(S) bookkeeping tables. *)

type t
(** A padded array of [int Atomic.t] cells.  The value owns the spacer
    blocks; keep it alive as long as the cells are in use. *)

val create : int -> int -> t
(** [create n v] — [n] cells initialised to [v], each on its own cache
    line (best effort; see above).
    @raise Invalid_argument when [n < 0]. *)

val cells : t -> int Atomic.t array
(** The cells themselves, for hot-loop indexing.  Element [i] is the
    same cell every call. *)

val get : t -> int -> int
val length : t -> int

val line_words : int
(** Words of spacing allocated between consecutive cells (one 64-byte
    line on 64-bit). *)
