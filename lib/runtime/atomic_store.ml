open Shared_mem

type t = int Atomic.t array

let create layout = Array.map Atomic.make (Layout.initial_values layout)

let ops t ~pid : Store.ops =
  {
    pid;
    read = (fun c -> Atomic.get t.(Cell.id c));
    write = (fun c v -> Atomic.set t.(Cell.id c) v);
    rmw =
      (fun c f ->
        let cell = t.(Cell.id c) in
        let rec loop () =
          let old = Atomic.get cell in
          if Atomic.compare_and_set cell old (f old) then old else loop ()
        in
        loop ());
    probe = Obs.Probe.null;
  }

let get t c = Atomic.get t.(Cell.id c)
