type t = {
  name_space : int;
  holders : Pad.t;
  name_max : Pad.t;
  violations : int Atomic.t;
  first_violation : string option Atomic.t;
  concurrent : int Atomic.t;
  max_concurrent : int Atomic.t;
  cycles_done : Pad.t;
  normal_done : int Atomic.t;
  normal_total : int;
}

type result = {
  cycles_done : int array;
  violations : int;
  max_concurrent : int;
  max_concurrent_by_name : (int * int) list;
  first_violation : string option;
  leaked : int;
  reclaimed : int;
}

let create ~entry ~name_space ~workers ~parked =
  let normal_total = workers - parked in
  if workers > 0 && normal_total = 0 then
    invalid_arg
      (entry ^ ": every worker is Park_holding, nothing can make progress");
  {
    name_space;
    holders = Pad.create name_space 0;
    name_max = Pad.create name_space 0;
    violations = Atomic.make 0;
    first_violation = Atomic.make None;
    concurrent = Atomic.make 0;
    max_concurrent = Atomic.make 0;
    cycles_done = Pad.create workers 0;
    normal_done = Atomic.make 0;
    normal_total;
  }

(* monotone CAS loop *)
let bump_max a c =
  let rec go () =
    let m = Atomic.get a in
    if c > m && not (Atomic.compare_and_set a m c) then go ()
  in
  go ()

let note_violation (t : t) msg =
  Atomic.incr t.violations;
  let cur = Atomic.get t.first_violation in
  if cur = None then ignore (Atomic.compare_and_set t.first_violation cur (Some msg))

let acquired (t : t) ~worker ~name =
  let held =
    if name < 0 || name >= t.name_space then begin
      note_violation t
        (Printf.sprintf "worker %d acquired name %d outside [0,%d)" worker name
           t.name_space);
      0
    end
    else begin
      let held = 1 + Atomic.fetch_and_add (Pad.cells t.holders).(name) 1 in
      bump_max (Pad.cells t.name_max).(name) held;
      if held > 1 then
        note_violation t
          (Printf.sprintf "name %d held by %d workers at once" name held);
      held
    end
  in
  let conc = 1 + Atomic.fetch_and_add t.concurrent 1 in
  bump_max t.max_concurrent conc;
  (held, conc)

let released (t : t) ~name =
  Atomic.decr t.concurrent;
  if name >= 0 && name < t.name_space then
    ignore (Atomic.fetch_and_add (Pad.cells t.holders).(name) (-1))

let cycle_done (t : t) i = Atomic.incr (Pad.cells t.cycles_done).(i)
let worker_done (t : t) = Atomic.incr t.normal_done
let all_normal_done (t : t) = Atomic.get t.normal_done >= t.normal_total
let cycles_of (t : t) i = Pad.get t.cycles_done i

let result ?(reclaimed = 0) (t : t) =
  let max_concurrent_by_name =
    List.init (Pad.length t.name_max) (fun n -> (n, Pad.get t.name_max n))
    |> List.filter (fun (_, m) -> m > 0)
  in
  let leaked = ref 0 in
  for n = 0 to Pad.length t.holders - 1 do
    leaked := !leaked + Pad.get t.holders n
  done;
  {
    cycles_done = Array.init (Pad.length t.cycles_done) (Pad.get t.cycles_done);
    violations = Atomic.get t.violations;
    max_concurrent = Atomic.get t.max_concurrent;
    max_concurrent_by_name;
    first_violation = Atomic.get t.first_violation;
    leaked = !leaked;
    reclaimed;
  }
