(* A 64-byte line is 8 words on 64-bit; an Atomic.t box is 2 words
   (header + value), so 8 spacer words guarantee two consecutive boxes
   can never share a line, wherever the GC moves the pair. *)
let line_words = 8

type t = {
  cells : int Atomic.t array;
  spacers : int array array;
      (* one spacer block allocated right after each cell; reachable
         from here so compaction keeps the interleaving *)
}

let create n v =
  if n < 0 then invalid_arg "Pad.create: negative length";
  let spacers = Array.make n [||] in
  let cells =
    Array.init n (fun i ->
        let c = Atomic.make v in
        spacers.(i) <- Array.make line_words 0;
        c)
  in
  { cells; spacers }

let cells t = t.cells
let get t i = Atomic.get t.cells.(i)
let length t = Array.length t.cells
