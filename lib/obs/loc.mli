(** Structural locations inside a renaming protocol instance.

    A [Loc.t] names one concrete shared object a process steps
    through: a splitter node of a SPLIT tree (heap numbering — the
    children of node [i] are [3i+1 .. 3i+3]), or a 2-process mutex
    block of a tournament tree (FILTER keys trees by destination name;
    [level] counts from 1 at the leaves, [node] is the block index
    within the level).  [stage] distinguishes pipeline stages sharing
    one layout; standalone protocols use stage [0].

    Labels are assigned at {e creation} time from the structure's own
    indices, so two identically-parameterised instances emit identical
    label sets and a recorded trace can be attributed without access
    to the live instance. *)

type t =
  | Splitter of { stage : int; node : int }
  | Mutex of { stage : int; tree : int; level : int; node : int }

val encode : t -> int
(** Pack into a single non-negative int (for binary rings).
    @raise Invalid_argument when a field exceeds its width:
    [stage < 64], [level < 64], mutex [node < 2^24], [tree < 2^25],
    splitter [node < 2^55]. *)

val decode : int -> t
(** Inverse of {!encode}. @raise Invalid_argument on negative codes. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val stage : t -> int

val to_string : t -> string
(** ["s0:splitter:4"], ["s1:tree7:L2:0"] — stable, used as Perfetto
    span names. *)

val pp : Format.formatter -> t -> unit
