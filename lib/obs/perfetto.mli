(** Chrome trace-event JSON export of a flight recording — the JSON
    Array/Object format loadable in {{:https://ui.perfetto.dev}
    Perfetto} and chrome://tracing.

    Each source pid becomes one named thread under a single process.
    Splitter / mutex occupancy intervals export as async ["b"]/["e"]
    pairs keyed by (location, pid) — async because FILTER climbs
    several trees at once, which duration slices cannot nest —
    name-holding intervals as ["B"]/["E"] duration slices, and
    checks / direction assignments / marks as instants.  Timestamps
    are the recording's step clocks.

    [?counters] adds ["C"]-phase counter tracks alongside the spans:
    one named track per series, fed [(ts, value)] points (ts in the
    trace's time unit, µs for wall-clock exports) — the natural
    rendering of {!Timeseries} windows and sampler gauges. *)

val to_chrome_json :
  ?counters:(string * (int * float) list) list -> Flight.record list -> string
