(** Chrome trace-event JSON export of a flight recording — the JSON
    Array/Object format loadable in {{:https://ui.perfetto.dev}
    Perfetto} and chrome://tracing.

    Each source pid becomes one named thread under a single process.
    Splitter / mutex occupancy intervals export as async ["b"]/["e"]
    pairs keyed by (location, pid) — async because FILTER climbs
    several trees at once, which duration slices cannot nest —
    name-holding intervals as ["B"]/["E"] duration slices, and
    checks / direction assignments / marks as instants.  Timestamps
    are the recording's step clocks.

    [?counters] adds ["C"]-phase counter tracks alongside the spans:
    one named track per series, fed [(ts, value)] points (ts in the
    trace's time unit, µs for wall-clock exports) — the natural
    rendering of {!Timeseries} windows and sampler gauges.

    [?journeys] adds a dedicated ["journeys"] process: one lane per
    sampled {!Journey.view}, the whole request as an ["X"] slice with
    its stage dwells laid end-to-end beneath it and an
    ["s"]/["t"]/["f"] flow chain keyed by journey id.  Dwells are
    durations (not timestamped), so a lane is a stage-order waterfall,
    not an event-order timeline; arrivals are rebased to the earliest
    sampled arrival. *)

val to_chrome_json :
  ?counters:(string * (int * float) list) list ->
  ?journeys:Journey.view list ->
  Flight.record list ->
  string
