type event =
  | Enter of Loc.t
  | Exit of Loc.t * int
  | Check of Loc.t * bool
  | Release of Loc.t
  | Acquired of int
  | Released of int
  | Mark of string * int

type record = { clock : int; pid : int; event : event }

(* Packed ring: 4 ints per record — clock, (pid lsl 3) lor kind,
   loc code / note id, arg.  Single writer; overwrites oldest. *)
type t = {
  capacity : int;
  buf : int array;
  mutable head : int;  (* oldest record slot *)
  mutable len : int;
  mutable dropped : int;
  note_ids : (string, int) Hashtbl.t;
  mutable note_names : string array;
  mutable notes : int;
}

let create ?(capacity = 65_536) () =
  if capacity < 1 then invalid_arg "Flight.create";
  {
    capacity;
    buf = Array.make (4 * capacity) 0;
    head = 0;
    len = 0;
    dropped = 0;
    note_ids = Hashtbl.create 16;
    note_names = Array.make 8 "";
    notes = 0;
  }

let capacity t = t.capacity
let length t = t.len
let dropped t = t.dropped
let total t = t.len + t.dropped

let clear t =
  t.head <- 0;
  t.len <- 0;
  t.dropped <- 0

let intern t s =
  match Hashtbl.find_opt t.note_ids s with
  | Some id -> id
  | None ->
      let id = t.notes in
      if id >= Array.length t.note_names then begin
        let grown = Array.make (2 * Array.length t.note_names) "" in
        Array.blit t.note_names 0 grown 0 id;
        t.note_names <- grown
      end;
      t.note_names.(id) <- s;
      t.notes <- id + 1;
      Hashtbl.add t.note_ids s id;
      id

let kind_enter = 0
and kind_exit = 1
and kind_check = 2
and kind_release = 3
and kind_acquired = 4
and kind_released = 5
and kind_mark = 6

(* The recording fast path: slot arithmetic by compare-and-subtract
   (no [mod] — [head] and [len] never exceed [capacity], so
   [head + len] wraps by at most one capacity), unsafe stores into the
   flat arena (the offsets are in range by construction).  The event
   is passed pre-packed so the per-event variant allocation and match
   stay out of the hot path — [probe] packs once per probe, not once
   per record. *)
let[@inline] record_raw t ~clock ~pk ~code ~arg =
  let slot =
    if t.len < t.capacity then begin
      let s = t.head + t.len in
      t.len <- t.len + 1;
      if s >= t.capacity then s - t.capacity else s
    end
    else begin
      let s = t.head in
      let h = t.head + 1 in
      t.head <- (if h = t.capacity then 0 else h);
      t.dropped <- t.dropped + 1;
      s
    end
  in
  let o = 4 * slot in
  let buf = t.buf in
  Array.unsafe_set buf o clock;
  Array.unsafe_set buf (o + 1) pk;
  Array.unsafe_set buf (o + 2) code;
  Array.unsafe_set buf (o + 3) arg

let record t ~clock ~pid event =
  if pid < 0 then invalid_arg "Flight.record: negative pid";
  let kind, code, arg =
    match event with
    | Enter l -> (kind_enter, Loc.encode l, 0)
    | Exit (l, dir) -> (kind_exit, Loc.encode l, dir)
    | Check (l, ok) -> (kind_check, Loc.encode l, Bool.to_int ok)
    | Release l -> (kind_release, Loc.encode l, 0)
    | Acquired n -> (kind_acquired, 0, n)
    | Released n -> (kind_released, 0, n)
    | Mark (s, v) -> (kind_mark, intern t s, v)
  in
  record_raw t ~clock ~pk:((pid lsl 3) lor kind) ~code ~arg

let decode_at t slot =
  let o = 4 * slot in
  let clock = t.buf.(o) in
  let pk = t.buf.(o + 1) in
  let code = t.buf.(o + 2) in
  let arg = t.buf.(o + 3) in
  let kind = pk land 7 in
  let event =
    if kind = kind_enter then Enter (Loc.decode code)
    else if kind = kind_exit then Exit (Loc.decode code, arg)
    else if kind = kind_check then Check (Loc.decode code, arg <> 0)
    else if kind = kind_release then Release (Loc.decode code)
    else if kind = kind_acquired then Acquired arg
    else if kind = kind_released then Released arg
    else Mark (t.note_names.(code), arg)
  in
  { clock; pid = pk lsr 3; event }

let iter f t =
  for i = 0 to t.len - 1 do
    f (decode_at t ((t.head + i) mod t.capacity))
  done

let items t =
  let acc = ref [] in
  iter (fun r -> acc := r :: !acc) t;
  List.rev !acc

let probe t ~pid ~clock : Probe.t =
  if pid < 0 then invalid_arg "Flight.probe: negative pid";
  (* pid+kind words packed once here; each probe event is then one
     clock read, one [Loc.encode], and four unsafe stores — no
     intermediate event value is built *)
  let pk_enter = (pid lsl 3) lor kind_enter in
  let pk_exit = (pid lsl 3) lor kind_exit in
  let pk_check = (pid lsl 3) lor kind_check in
  let pk_release = (pid lsl 3) lor kind_release in
  fun ev ->
    match ev with
    | Probe.Enter l -> record_raw t ~clock:(clock ()) ~pk:pk_enter ~code:(Loc.encode l) ~arg:0
    | Probe.Exit (l, d) ->
        record_raw t ~clock:(clock ()) ~pk:pk_exit ~code:(Loc.encode l) ~arg:d
    | Probe.Check (l, ok) ->
        record_raw t ~clock:(clock ()) ~pk:pk_check ~code:(Loc.encode l)
          ~arg:(Bool.to_int ok)
    | Probe.Release l ->
        record_raw t ~clock:(clock ()) ~pk:pk_release ~code:(Loc.encode l) ~arg:0

let merge ~into src =
  iter (fun { clock; pid; event } -> record into ~clock ~pid event) src;
  into.dropped <- into.dropped + src.dropped

(* ----- portable text form: "renaming.flight/v1" -----

   One record per line; note strings are interned in a header so the
   event lines stay purely numeric:

     renaming.flight/v1 dropped=<D>
     n <id> <string>
     e <clock> <pid> <kind> <arg> <code>
*)

let sanitize_note s =
  String.map (fun c -> if c = ' ' || c = '\t' || c = '\n' || c = '\r' then '_' else c) s

let to_string t =
  let buf = Buffer.create (64 * (t.len + 1)) in
  Buffer.add_string buf (Printf.sprintf "renaming.flight/v1 dropped=%d\n" t.dropped);
  for id = 0 to t.notes - 1 do
    Buffer.add_string buf (Printf.sprintf "n %d %s\n" id (sanitize_note t.note_names.(id)))
  done;
  for i = 0 to t.len - 1 do
    let o = 4 * ((t.head + i) mod t.capacity) in
    Buffer.add_string buf
      (Printf.sprintf "e %d %d %d %d %d\n" t.buf.(o)
         (t.buf.(o + 1) lsr 3)
         (t.buf.(o + 1) land 7)
         t.buf.(o + 3) t.buf.(o + 2))
  done;
  Buffer.contents buf

let of_string s =
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  match lines with
  | [] -> Error "empty flight document"
  | header :: rest -> (
      match String.split_on_char ' ' header with
      | [ "renaming.flight/v1"; d ]
        when String.length d > 8 && String.sub d 0 8 = "dropped=" -> (
          match int_of_string_opt (String.sub d 8 (String.length d - 8)) with
          | None -> Error "bad dropped count"
          | Some dropped -> (
              let t = create ~capacity:(max 1 (List.length rest)) () in
              let notes = Hashtbl.create 16 in
              let err = ref None in
              List.iter
                (fun line ->
                  if !err = None then
                    match String.split_on_char ' ' line with
                    | [ "n"; id; name ] -> (
                        match int_of_string_opt id with
                        | Some id -> Hashtbl.replace notes id name
                        | None -> err := Some ("bad note line: " ^ line))
                    | [ "e"; clock; pid; kind; arg; code ] -> (
                        match
                          ( int_of_string_opt clock,
                            int_of_string_opt pid,
                            int_of_string_opt kind,
                            int_of_string_opt arg,
                            int_of_string_opt code )
                        with
                        | Some clock, Some pid, Some kind, Some arg, Some code -> (
                            let event =
                              if kind = kind_enter then Some (Enter (Loc.decode code))
                              else if kind = kind_exit then
                                Some (Exit (Loc.decode code, arg))
                              else if kind = kind_check then
                                Some (Check (Loc.decode code, arg <> 0))
                              else if kind = kind_release then
                                Some (Release (Loc.decode code))
                              else if kind = kind_acquired then Some (Acquired arg)
                              else if kind = kind_released then Some (Released arg)
                              else if kind = kind_mark then
                                Option.map
                                  (fun s -> Mark (s, arg))
                                  (Hashtbl.find_opt notes code)
                              else None
                            in
                            match event with
                            | Some event -> record t ~clock ~pid event
                            | None -> err := Some ("bad event line: " ^ line))
                        | _ -> err := Some ("bad event line: " ^ line))
                    | _ -> err := Some ("unrecognised line: " ^ line))
                rest;
              match !err with
              | Some e -> Error e
              | None ->
                  t.dropped <- dropped;
                  Ok t))
      | _ -> Error "not a renaming.flight/v1 document")
