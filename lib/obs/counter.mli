(** Monotonic counters.

    A counter is written by exactly one process/domain (its shard's
    owner) and merged into aggregates on snapshot; single-writer
    discipline is what makes the plain mutable field safe without
    atomics — immediate ints cannot tear in OCaml. *)

type t

val create : unit -> t
val incr : t -> unit
val add : t -> int -> unit
val get : t -> int
val reset : t -> unit

val merge : into:t -> t -> unit
(** [merge ~into src] adds [src]'s count into [into]; [src] is left
    untouched. *)
