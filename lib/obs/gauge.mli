(** Gauges: a current level plus its high-water mark.

    Same single-writer-per-shard discipline as {!Counter}.  Two ways to
    feed one:

    - [incr]/[decr]/[add] move the {e shard-local} level and track its
      local high-water mark.  Merging sums currents and takes the max
      of the marks, so the merged mark is a {e lower bound} on the true
      global high-water mark (two shards may have peaked at different
      times).
    - [observe] records an externally-computed {e global} level (e.g. a
      value read back from a cross-domain atomic) into the high-water
      mark without touching the current level.  Merged by max, this is
      exact. *)

type t

type snap = { current : int; hwm : int }

val create : unit -> t
val set : t -> int -> unit
val add : t -> int -> unit
val incr : t -> unit
val decr : t -> unit

val observe : t -> int -> unit
(** Fold a candidate value into the high-water mark only. *)

val current : t -> int
val hwm : t -> int
val snap : t -> snap
val reset : t -> unit

val merge : into:t -> t -> unit
(** Currents add; high-water marks combine by max. *)
