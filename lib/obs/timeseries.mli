(** Windowed aggregate rings: fixed-capacity time series over int
    samples.

    A series is a ring of [windows] aggregation windows of [window_ns]
    each, keyed by absolute window id [now / window_ns].  Each window
    keeps count / sum / min / max and (unless created with
    [~hist:false]) a log-bucket histogram delta sharing
    {!Histogram}'s bucket geometry, so per-window percentiles carry
    the same ≤12.5% relative error.  Storage is flat int arrays in the
    Flight-ring discipline: recording is allocation-free and costs a
    handful of plain stores.

    Write discipline matches the rest of [lib/obs]: one writer per
    series, merge on snapshot.  {b Merge law}: windows with equal ids
    combine by commutative, associative element-wise sums (min by min,
    max by max), and window ids are derived from event time alone —
    so the same set of events, recorded into any sharding and merged
    in any order, yields identical windows.  Events older than the
    ring's retained horizon are counted in [dropped], never silently
    lost. *)

type t

val create : ?windows:int -> ?hist:bool -> window_ns:int -> unit -> t
(** [create ~window_ns ()] makes an empty series of [?windows]
    (default 64) windows of [window_ns] nanoseconds each.
    [~hist:false] drops the per-window bucket array (length-1
    placeholder) for counter-mode series where only count/sum/min/max
    matter — percentiles then report the window max. *)

val observe : t -> now:int -> int -> unit
(** [observe t ~now v] records sample [v] (clamped at 0) into the
    window containing absolute time [now].  Allocation-free.  If that
    window is newer than the slot's current occupant the slot is
    recycled; if older (only possible with a non-monotonic clock or a
    shared writer) the event is dropped and counted. *)

type window = {
  wid : int;  (** absolute window id = start / window_ns *)
  start : int;  (** window start, ns *)
  count : int;
  sum : int;
  min : int;
  max : int;
}

val windows : t -> window list
(** Live windows, oldest first. *)

val window : t -> wid:int -> window option

val percentile : t -> wid:int -> float -> int
(** [percentile t ~wid q] for q in (0,1]: bucket-mass rank within one
    window, clamped by the window max; 0 if the window is absent or
    empty.  For [~hist:false] series, returns the window max. *)

val total : t -> int
(** Sum of counts over live windows (retained events only). *)

val dropped : t -> int

val merge : into:t -> t -> unit
(** Element-wise merge per the merge law above.  Raises
    [Invalid_argument] on shape mismatch (windows, window_ns or
    histogram mode differ). *)

val window_ns : t -> int
val capacity : t -> int
val clear : t -> unit
