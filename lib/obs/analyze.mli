(** Reconstruction of structural properties from a recorded
    {!Flight} ring: per-node occupancy, contention heatmaps over the
    SPLIT tree / FILTER forest, and name-acquisition provenance.

    Occupancy maxima compare events across processes, which is exact
    for simulator rings (one global step clock).  Merged per-domain
    rings carry per-domain clocks; their per-node totals and per-pid
    provenance are exact, but cross-pid occupancy is an ordering
    approximation. *)

type node_stat = {
  loc : Loc.t;
  enters : int;
  releases : int;
  max_inside : int;  (** Max processes simultaneously Enter..Release. *)
  dir_max : int array;
      (** Per output set (index [dir + 1]): max processes
          simultaneously assigned that direction (Exit..Release).
          All zero for mutex nodes. *)
  dir_exits : int array;  (** Total exits per direction (index [dir + 1]). *)
  checks : int;
  check_failures : int;
  orphan_releases : int;
      (** Releases by a pid that was not inside — crash-recovery
          resets release on the corpse's behalf from another pid. *)
}

type acquisition = {
  pid : int;
  name : int;
  start_clock : int;
  end_clock : int;
  path : (Loc.t * int) list;
      (** Splitter exits in descent order with the direction taken;
          for SPLIT, [name = sum_i (1 + d_i) * 3^i]. *)
  interference : (Loc.t * int list) list;
      (** Per path splitter: other pids whose visit overlapped this
          process's Enter..Exit window. *)
  blocked_trees : int list;
      (** Distinct tournament trees where a check failed during this
          acquisition (excluding the tree finally won). *)
  won_tree : int option;
      (** Tree of the last successful check — FILTER's winning tree. *)
}

type report = {
  nodes : node_stat list;  (** Sorted by location. *)
  acquisitions : acquisition list;  (** Grouped by pid, in pid first-appearance order. *)
  orphan_releases : int;
  max_blocked_trees : int;
}

val analyze : Flight.record list -> report

val check : ?blocked_bound:int -> report -> string list
(** Violations of the recorded structural bounds, empty when clean:
    every splitter's per-direction occupancy stays within
    [max 1 (l - 1)] for that node's observed concurrency [l]
    (Theorem 5), no mutex block ever holds more than 2 processes, and
    — when [blocked_bound] is given (FILTER's [d (k - 1)],
    Theorem 10) — no acquisition saw more blocked trees than that. *)

val heatmap : report -> string
(** Human-readable contention map: per-depth occupancy rows over the
    SPLIT tree, hottest-node detail lines, and per-tree totals over
    the FILTER forest. *)

val depth_of : int -> int
(** Depth of a heap-numbered ternary-tree node (root [0]). *)
