let buf_add = Buffer.add_string

(* ----- JSON ----- *)

let json_annotations buf anns =
  buf_add buf "{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then buf_add buf ",";
      buf_add buf (Printf.sprintf "%S:%d" k v))
    anns;
  buf_add buf "}"

let json_span buf (s : Span.t) =
  buf_add buf
    (Printf.sprintf {|{"name":%S,"pid":%d,"start":%d,"end":%d,"accesses":%d,"annotations":|}
       s.name s.pid s.start_step s.end_step s.accesses);
  json_annotations buf s.annotations;
  buf_add buf "}"

let last_n n l =
  let len = List.length l in
  if len <= n then l else List.filteri (fun i _ -> i >= len - n) l

let to_json ?(max_spans = 1000) (snap : Registry.snapshot) =
  let buf = Buffer.create 4096 in
  buf_add buf (Printf.sprintf {|{"schema":"renaming.obs/v1","shards":%d,"counters":{|} snap.shards);
  List.iteri
    (fun i (name, v) ->
      if i > 0 then buf_add buf ",";
      buf_add buf (Printf.sprintf "%S:%d" name v))
    snap.counters;
  buf_add buf {|},"gauges":{|};
  List.iteri
    (fun i (name, (g : Gauge.snap)) ->
      if i > 0 then buf_add buf ",";
      buf_add buf (Printf.sprintf {|%S:{"current":%d,"hwm":%d}|} name g.current g.hwm))
    snap.gauges;
  buf_add buf {|},"histograms":{|};
  List.iteri
    (fun i (name, (h : Histogram.snap)) ->
      if i > 0 then buf_add buf ",";
      buf_add buf
        (Printf.sprintf
           {|%S:{"count":%d,"sum":%d,"mean":%.3f,"min":%d,"p50":%d,"p95":%d,"p99":%d,"p100":%d}|}
           name h.count h.sum h.mean h.min h.p50 h.p95 h.p99 h.p100))
    snap.histograms;
  let recorded = List.length snap.spans in
  let truncated = max 0 (recorded - max_spans) in
  buf_add buf
    (Printf.sprintf
       {|},"spans":{"recorded":%d,"dropped":%d,"spans_truncated":%d,"items":[|}
       recorded snap.spans_dropped truncated);
  List.iteri
    (fun i s ->
      if i > 0 then buf_add buf ",";
      json_span buf s)
    (last_n max_spans snap.spans);
  buf_add buf "]}}";
  Buffer.contents buf

(* ----- Prometheus text exposition ----- *)

let sanitize name =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
    name

(* Deterministic 32-bit FNV-1a, used to disambiguate sanitization
   collisions (Hashtbl.hash makes no cross-version stability promise). *)
let fnv32 s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0xffffffff)
    s;
  !h

(* Sanitization maps distinct registry names onto one identifier when
   they differ only in mangled characters ("op.get" vs "op_get").
   Silently merging distinct series corrupts dashboards, so the name
   resolver scans the whole snapshot first: any sanitized identifier
   claimed by more than one original keeps the lexicographically first
   claimant bare and suffixes every other with a stable hash of its
   original spelling. *)
let prom_resolver (snap : Registry.snapshot) =
  let names =
    List.map fst snap.counters
    @ List.map fst snap.gauges
    @ List.map fst snap.histograms
  in
  let claims = Hashtbl.create 64 in
  List.iter
    (fun name ->
      let s = sanitize name in
      match Hashtbl.find_opt claims s with
      | None -> Hashtbl.replace claims s name
      | Some first -> if name < first then Hashtbl.replace claims s name)
    names;
  fun name ->
    let s = sanitize name in
    let base =
      if Hashtbl.find_opt claims s = Some name then s
      else Printf.sprintf "%s_x%08x" s (fnv32 name)
    in
    "renaming_" ^ base

let to_prometheus (snap : Registry.snapshot) =
  let prom = prom_resolver snap in
  let buf = Buffer.create 4096 in
  List.iter
    (fun (name, v) ->
      let n = prom name in
      buf_add buf (Printf.sprintf "# TYPE %s counter\n%s %d\n" n n v))
    snap.counters;
  List.iter
    (fun (name, (g : Gauge.snap)) ->
      let n = prom name in
      buf_add buf (Printf.sprintf "# TYPE %s gauge\n%s %d\n" n n g.current);
      buf_add buf (Printf.sprintf "# TYPE %s_hwm gauge\n%s_hwm %d\n" n n g.hwm))
    snap.gauges;
  List.iter
    (fun (name, (h : Histogram.snap)) ->
      let n = prom name in
      (* native histogram exposition: cumulative buckets over the
         snap's non-empty log buckets, +Inf closing the series *)
      buf_add buf (Printf.sprintf "# TYPE %s histogram\n" n);
      let cum = ref 0 in
      List.iter
        (fun (edge, count) ->
          cum := !cum + count;
          buf_add buf (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" n edge !cum))
        h.buckets;
      buf_add buf (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n !cum);
      buf_add buf (Printf.sprintf "%s_sum %d\n" n h.sum);
      buf_add buf (Printf.sprintf "%s_count %d\n" n h.count);
      (* the snapshot quantiles and exact max, as plain gauges *)
      List.iter
        (fun (suffix, v) ->
          buf_add buf
            (Printf.sprintf "# TYPE %s_%s gauge\n%s_%s %d\n" n suffix n suffix v))
        [ ("p50", h.p50); ("p95", h.p95); ("p99", h.p99); ("max", h.p100) ])
    snap.histograms;
  Buffer.contents buf

(* ----- human-readable text ----- *)

let to_text (snap : Registry.snapshot) =
  let buf = Buffer.create 2048 in
  let width =
    List.fold_left
      (fun acc (n, _) -> max acc (String.length n))
      0
      (snap.counters
      @ List.map (fun (n, _) -> (n, 0)) snap.gauges
      @ List.map (fun (n, _) -> (n, 0)) snap.histograms)
  in
  if snap.counters <> [] then buf_add buf "counters:\n";
  List.iter
    (fun (name, v) -> buf_add buf (Printf.sprintf "  %-*s %d\n" width name v))
    snap.counters;
  if snap.gauges <> [] then buf_add buf "gauges (current / high-water):\n";
  List.iter
    (fun (name, (g : Gauge.snap)) ->
      buf_add buf (Printf.sprintf "  %-*s %d / %d\n" width name g.current g.hwm))
    snap.gauges;
  if snap.histograms <> [] then buf_add buf "histograms:\n";
  List.iter
    (fun (name, (h : Histogram.snap)) ->
      buf_add buf
        (Printf.sprintf
           "  %-*s n=%d mean=%.1f min=%d p50=%d p95=%d p99=%d p100=%d\n"
           width name h.count h.mean h.min h.p50 h.p95 h.p99 h.p100))
    snap.histograms;
  buf_add buf
    (Printf.sprintf "spans: %d recorded, %d dropped (%d shards)\n"
       (List.length snap.spans) snap.spans_dropped snap.shards);
  Buffer.contents buf
