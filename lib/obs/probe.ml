type event =
  | Enter of Loc.t
  | Exit of Loc.t * int
  | Check of Loc.t * bool
  | Release of Loc.t

type t = event -> unit

let null : t = fun _ -> ()
let is_null p = p == null
