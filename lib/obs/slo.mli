(** Declarative service-level objectives over {!Timeseries}, judged as
    burn rates.

    An objective {e burns} in each sliding window where it is
    violated; the gate trips only on a {e sustained} burn — at least
    [sustain] consecutive burning windows (clamped to the number of
    windows that had data, so a short run saturated with violations
    still trips).  One noisy window never fails a run.

    The textual grammar is comma-separated clauses over the name
    server's canonical series names:

    - [p99_ns<=50000] — latency percentile ceiling (any [pNN_ns]),
      judged per window over the ["latency"] series;
    - [shed_rate<=0.05] — per-window [sheds/attempts] ceiling;
    - [warm_rate>=0.10] — per-window [warm/grants] floor;
    - [violations=0] — a run-level scalar that must be zero
      (any [name=0] clause checks the scalar [name]). *)

type objective =
  | P_ceiling of { q : float; series : string; ceiling : int }
  | Rate_ceiling of { num : string; den : string; ceiling : float }
  | Rate_floor of { num : string; den : string; floor : float }
  | Scalar_zero of string

type t = objective list

val of_string : string -> (t, string) result
val to_string : t -> string
val label : objective -> string

type verdict = {
  objective : objective;
  label : string;
  evaluated : int;  (** Windows with enough data (or 1 for scalars). *)
  burning : int;  (** Windows in violation. *)
  max_burn : int;  (** Longest consecutive burning run. *)
  worst : float;  (** Worst observed value (percentile / rate / scalar). *)
  sustained : bool;  (** The gate verdict for this objective. *)
}

val evaluate :
  ?sustain:int ->
  ?min_count:int ->
  series:(string -> Timeseries.t option) ->
  scalar:(string -> int option) ->
  t ->
  verdict list
(** [sustain] (default 3) consecutive burning windows trip an
    objective; windows with fewer than [min_count] (default 1) samples
    in the clause's denominator series are skipped as no-data. *)

val burning : verdict list -> bool
(** Any objective sustained? — the process exit-code predicate. *)

val pp_verdict : Format.formatter -> verdict -> unit
