(** Snapshot exporters.

    Three formats over the same {!Registry.snapshot}:

    - {!to_json}: one self-describing JSON object
      ([{"schema":"renaming.obs/v1", …}]) — the format written by the
      CLI's [--metrics FILE] flags and consumed by the bench baselines.
    - {!to_prometheus}: Prometheus text exposition.  Metric names are
      sanitized ([.] and other non-identifier characters become [_])
      and prefixed with [renaming_]; histograms export as summaries
      ([_count], [_sum], [{quantile="…"}] series plus an exact [_max]).
    - {!to_text}: aligned human-readable listing for terminal output.

    All exporters are pure functions of the snapshot. *)

val to_json : ?max_spans:int -> Registry.snapshot -> string
(** [max_spans] (default [1000]) caps the per-span detail in the
    output; the cap never affects aggregate series.  The most recent
    spans are kept. *)

val to_prometheus : Registry.snapshot -> string
val to_text : Registry.snapshot -> string
