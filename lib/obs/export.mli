(** Snapshot exporters.

    Three formats over the same {!Registry.snapshot}:

    - {!to_json}: one self-describing JSON object
      ([{"schema":"renaming.obs/v1", …}]) — the format written by the
      CLI's [--metrics FILE] flags and consumed by the bench baselines.
    - {!to_prometheus}: Prometheus text exposition.  Metric names are
      sanitized ([.] and other non-identifier characters become [_])
      and prefixed with [renaming_]; every family carries a [# TYPE]
      line.  Histograms export natively ([# TYPE … histogram]):
      cumulative [_bucket{le="…"}] series over the log-bucket edges
      closed by [+Inf], plus [_sum], [_count], and [_p50]/[_p95]/
      [_p99]/[_max] gauges for the snapshot quantiles and exact max.
      When two distinct registry names sanitize to the same identifier
      (e.g. [op.get] vs [op_get]), the lexicographically first keeps
      the bare identifier and every other is suffixed with a stable
      hash of its original spelling ([_x<fnv32>]) — distinct series
      never merge silently.
    - {!to_text}: aligned human-readable listing for terminal output.

    All exporters are pure functions of the snapshot. *)

val to_json : ?max_spans:int -> Registry.snapshot -> string
(** [max_spans] (default [1000]) caps the per-span detail in the
    output; the cap never affects aggregate series.  The most recent
    spans are kept, and the number of older spans cut by the cap is
    reported in the document's ["spans_truncated"] field (distinct
    from ["dropped"], which counts ring-buffer losses at record
    time). *)

val to_prometheus : Registry.snapshot -> string
val to_text : Registry.snapshot -> string
