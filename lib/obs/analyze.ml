type node_stat = {
  loc : Loc.t;
  enters : int;
  releases : int;
  max_inside : int;
  dir_max : int array;
  dir_exits : int array;
  checks : int;
  check_failures : int;
  orphan_releases : int;
}

type acquisition = {
  pid : int;
  name : int;
  start_clock : int;
  end_clock : int;
  path : (Loc.t * int) list;
  interference : (Loc.t * int list) list;
  blocked_trees : int list;
  won_tree : int option;
}

type report = {
  nodes : node_stat list;
  acquisitions : acquisition list;
  orphan_releases : int;
  max_blocked_trees : int;
}

(* mutable accumulation per node *)
type acc = {
  aloc : Loc.t;
  mutable aenters : int;
  mutable areleases : int;
  inside : (int, unit) Hashtbl.t;  (* pid -> () while Enter..Release *)
  mutable amax_inside : int;
  dir_of : (int, int) Hashtbl.t;  (* pid -> assigned direction, Exit..Release *)
  dir_cur : int array;
  adir_max : int array;
  adir_exits : int array;
  mutable achecks : int;
  mutable afailures : int;
  mutable aorphans : int;
}

let node_of tbl loc =
  let key = Loc.encode loc in
  match Hashtbl.find_opt tbl key with
  | Some a -> a
  | None ->
      let a =
        {
          aloc = loc;
          aenters = 0;
          areleases = 0;
          inside = Hashtbl.create 8;
          amax_inside = 0;
          dir_of = Hashtbl.create 8;
          dir_cur = Array.make 3 0;
          adir_max = Array.make 3 0;
          adir_exits = Array.make 3 0;
          achecks = 0;
          afailures = 0;
          aorphans = 0;
        }
      in
      Hashtbl.add tbl key a;
      a

(* One open splitter visit, for interference reconstruction. *)
type visit = {
  vpid : int;
  venter : int;
  mutable vexit : int;
  mutable vrelease : int;  (* max_int while still inside *)
}

let analyze (records : Flight.record list) =
  let nodes : (int, acc) Hashtbl.t = Hashtbl.create 64 in
  let visits : (int, visit list ref) Hashtbl.t = Hashtbl.create 64 in
  let open_visits : (int * int, visit) Hashtbl.t = Hashtbl.create 64 in
  let visit_list loc =
    let key = Loc.encode loc in
    match Hashtbl.find_opt visits key with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.add visits key l;
        l
  in
  (* pass 1: per-node occupancy + visit intervals, in record order *)
  List.iter
    (fun { Flight.clock; pid; event } ->
      match event with
      | Flight.Enter loc ->
          let a = node_of nodes loc in
          a.aenters <- a.aenters + 1;
          if not (Hashtbl.mem a.inside pid) then Hashtbl.replace a.inside pid ();
          a.amax_inside <- max a.amax_inside (Hashtbl.length a.inside);
          (match loc with
          | Loc.Splitter _ ->
              let v = { vpid = pid; venter = clock; vexit = clock; vrelease = max_int } in
              let l = visit_list loc in
              l := v :: !l;
              Hashtbl.replace open_visits (Loc.encode loc, pid) v
          | Loc.Mutex _ -> ())
      | Flight.Exit (loc, dir) ->
          let a = node_of nodes loc in
          let di = dir + 1 in
          if di >= 0 && di < 3 then begin
            a.adir_exits.(di) <- a.adir_exits.(di) + 1;
            (* a process sits in one output set at a time *)
            (match Hashtbl.find_opt a.dir_of pid with
            | Some old -> a.dir_cur.(old + 1) <- a.dir_cur.(old + 1) - 1
            | None -> ());
            Hashtbl.replace a.dir_of pid dir;
            a.dir_cur.(di) <- a.dir_cur.(di) + 1;
            a.adir_max.(di) <- max a.adir_max.(di) a.dir_cur.(di)
          end;
          (match Hashtbl.find_opt open_visits (Loc.encode loc, pid) with
          | Some v -> v.vexit <- clock
          | None -> ())
      | Flight.Check (loc, ok) ->
          let a = node_of nodes loc in
          a.achecks <- a.achecks + 1;
          if not ok then a.afailures <- a.afailures + 1
      | Flight.Release loc ->
          let a = node_of nodes loc in
          if Hashtbl.mem a.inside pid then begin
            Hashtbl.remove a.inside pid;
            a.areleases <- a.areleases + 1;
            (match Hashtbl.find_opt a.dir_of pid with
            | Some d ->
                a.dir_cur.(d + 1) <- a.dir_cur.(d + 1) - 1;
                Hashtbl.remove a.dir_of pid
            | None -> ());
            match Hashtbl.find_opt open_visits (Loc.encode loc, pid) with
            | Some v ->
                v.vrelease <- clock;
                Hashtbl.remove open_visits (Loc.encode loc, pid)
            | None -> ()
          end
          else a.aorphans <- a.aorphans + 1
      | Flight.Acquired _ | Flight.Released _ | Flight.Mark _ -> ())
    records;
  (* pass 2: per-pid acquisition segments *)
  let by_pid : (int, Flight.record list ref) Hashtbl.t = Hashtbl.create 16 in
  let pids_in_order = ref [] in
  List.iter
    (fun r ->
      match Hashtbl.find_opt by_pid r.Flight.pid with
      | Some l -> l := r :: !l
      | None ->
          Hashtbl.add by_pid r.Flight.pid (ref [ r ]);
          pids_in_order := r.Flight.pid :: !pids_in_order)
    records;
  let interferers loc ~pid ~enter ~exit_ =
    let l = match Hashtbl.find_opt visits (Loc.encode loc) with Some l -> !l | None -> [] in
    List.filter_map
      (fun v ->
        if v.vpid <> pid && v.venter <= exit_ && v.vrelease >= enter then Some v.vpid
        else None)
      l
    |> List.sort_uniq compare
  in
  let acquisitions = ref [] in
  List.iter
    (fun pid ->
      let evs = List.rev !(Hashtbl.find by_pid pid) in
      let segment = ref [] in
      let seg_start = ref 0 in
      List.iter
        (fun ({ Flight.clock; event; _ } as r) ->
          match event with
          | Flight.Acquired name ->
              let seg = List.rev !segment in
              let enters = Hashtbl.create 8 in
              List.iter
                (fun { Flight.clock; event; _ } ->
                  match event with
                  | Flight.Enter (Loc.Splitter _ as l) ->
                      Hashtbl.replace enters (Loc.encode l) clock
                  | _ -> ())
                seg;
              let path =
                List.filter_map
                  (fun { Flight.clock; event; _ } ->
                    match event with
                    | Flight.Exit ((Loc.Splitter _ as l), dir) -> Some (l, dir, clock)
                    | _ -> None)
                  seg
              in
              let interference =
                List.map
                  (fun (l, _, exit_) ->
                    let enter =
                      Option.value ~default:!seg_start
                        (Hashtbl.find_opt enters (Loc.encode l))
                    in
                    (l, interferers l ~pid ~enter ~exit_))
                  path
              in
              let won_tree =
                List.fold_left
                  (fun acc { Flight.event; _ } ->
                    match event with
                    | Flight.Check (Loc.Mutex { tree; _ }, true) -> Some tree
                    | _ -> acc)
                  None seg
              in
              let blocked_trees =
                List.filter_map
                  (fun { Flight.event; _ } ->
                    match event with
                    | Flight.Check (Loc.Mutex { tree; _ }, false)
                      when Some tree <> won_tree ->
                        Some tree
                    | _ -> None)
                  seg
                |> List.sort_uniq compare
              in
              acquisitions :=
                {
                  pid;
                  name;
                  start_clock = !seg_start;
                  end_clock = clock;
                  path = List.map (fun (l, d, _) -> (l, d)) path;
                  interference;
                  blocked_trees;
                  won_tree;
                }
                :: !acquisitions;
              segment := [];
              seg_start := clock
          | Flight.Released _ ->
              segment := [];
              seg_start := clock
          | _ -> segment := r :: !segment)
        evs)
    (List.rev !pids_in_order);
  let node_stats =
    Hashtbl.fold
      (fun _ a acc ->
        {
          loc = a.aloc;
          enters = a.aenters;
          releases = a.areleases;
          max_inside = a.amax_inside;
          dir_max = a.adir_max;
          dir_exits = a.adir_exits;
          checks = a.achecks;
          check_failures = a.afailures;
          orphan_releases = a.aorphans;
        }
        :: acc)
      nodes []
    |> List.sort (fun a b -> Loc.compare a.loc b.loc)
  in
  let acquisitions = List.rev !acquisitions in
  {
    nodes = node_stats;
    acquisitions;
    orphan_releases =
      List.fold_left (fun s (n : node_stat) -> s + n.orphan_releases) 0 node_stats;
    max_blocked_trees =
      List.fold_left (fun m a -> max m (List.length a.blocked_trees)) 0 acquisitions;
  }

let check ?blocked_bound report =
  let violations = ref [] in
  let add fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  List.iter
    (fun n ->
      match n.loc with
      | Loc.Splitter _ ->
          (* Theorem 5: with l = max concurrent users of this splitter,
             each output set holds at most max (1, l-1) at any time. *)
          let bound = max 1 (n.max_inside - 1) in
          Array.iteri
            (fun di m ->
              if m > bound then
                add "%s: output set %d held %d processes at once (l=%d allows %d)"
                  (Loc.to_string n.loc) (di - 1) m n.max_inside bound)
            n.dir_max
      | Loc.Mutex _ ->
          if n.max_inside > 2 then
            add "%s: %d processes inside a 2-process mutex block" (Loc.to_string n.loc)
              n.max_inside)
    report.nodes;
  (match blocked_bound with
  | Some b ->
      List.iter
        (fun a ->
          let nb = List.length a.blocked_trees in
          if nb > b then
            add "pid %d -> name %d: blocked in %d trees, cover-freeness allows %d" a.pid
              a.name nb b)
        report.acquisitions
  | None -> ());
  List.rev !violations

(* ----- heatmap rendering ----- *)

let depth_of node =
  (* ternary heap: depth h spans [(3^h - 1) / 2, (3^(h+1) - 1) / 2) *)
  let rec go h lo w = if node < lo + w then h else go (h + 1) (lo + w) (3 * w) in
  go 0 0 1

let heat_glyph n =
  if n <= 0 then '.'
  else if n < 10 then Char.chr (Char.code '0' + n)
  else if n < 36 then Char.chr (Char.code 'a' + n - 10)
  else '*'

let heatmap report =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let splitters =
    List.filter_map
      (fun n -> match n.loc with Loc.Splitter s -> Some (s.stage, s.node, n) | _ -> None)
      report.nodes
  in
  let mutexes =
    List.filter_map
      (fun n ->
        match n.loc with
        | Loc.Mutex { stage; tree; _ } -> Some (stage, tree, n)
        | _ -> None)
      report.nodes
  in
  let stages = List.sort_uniq compare (List.map (fun (st, _, _) -> st) splitters) in
  List.iter
    (fun stage ->
      let mine = List.filter (fun (st, _, _) -> st = stage) splitters in
      let max_node = List.fold_left (fun m (_, n, _) -> max m n) 0 mine in
      let depths = depth_of max_node in
      add "splitter occupancy heatmap (stage %d, %d node(s) touched)\n" stage
        (List.length mine);
      add "  glyph = max processes simultaneously inside; '.' = never entered\n";
      let by_node = Hashtbl.create 64 in
      List.iter (fun (_, node, n) -> Hashtbl.replace by_node node n) mine;
      let lo = ref 0 and w = ref 1 in
      for d = 0 to depths do
        let shown = min !w 60 in
        let row =
          String.init shown (fun i ->
              match Hashtbl.find_opt by_node (!lo + i) with
              | Some n -> heat_glyph n.max_inside
              | None -> '.')
        in
        add "  depth %d |%s|%s\n" d row
          (if !w > shown then Printf.sprintf " (+%d more nodes)" (!w - shown) else "");
        lo := !lo + !w;
        w := !w * 3
      done;
      let hottest =
        List.sort (fun (_, _, a) (_, _, b) -> compare b.max_inside a.max_inside) mine
      in
      let rec take n = function
        | x :: tl when n > 0 -> x :: take (n - 1) tl
        | _ -> []
      in
      List.iter
        (fun (_, node, n) ->
          add "  n%-4d depth %d  l=%d  set-max[-1/0/+1] %d/%d/%d  exits %d/%d/%d  enters %d\n"
            node (depth_of node) n.max_inside n.dir_max.(0) n.dir_max.(1) n.dir_max.(2)
            n.dir_exits.(0) n.dir_exits.(1) n.dir_exits.(2) n.enters)
        (take 24 hottest);
      if List.length hottest > 24 then
        add "  ... %d more splitter(s)\n" (List.length hottest - 24))
    stages;
  if mutexes <> [] then begin
    let trees = Hashtbl.create 32 in
    let order = ref [] in
    List.iter
      (fun (stage, tree, _) ->
        if not (Hashtbl.mem trees (stage, tree)) then begin
          Hashtbl.add trees (stage, tree) ();
          order := (stage, tree) :: !order
        end)
      mutexes;
    let order = List.sort compare !order in
    add "tournament-forest contention (%d tree(s) touched)\n" (List.length order);
    (* per-tree aggregation *)
    let agg = Hashtbl.create 32 in
    List.iter
      (fun (stage, tree, n) ->
        let e, c, f, mi, bl =
          Option.value ~default:(0, 0, 0, 0, 0) (Hashtbl.find_opt agg (stage, tree))
        in
        Hashtbl.replace agg (stage, tree)
          (e + n.enters, c + n.checks, f + n.check_failures, max mi n.max_inside, bl + 1))
      mutexes;
    let shown = ref 0 in
    List.iter
      (fun (stage, tree) ->
        if !shown < 32 then begin
          incr shown;
          let e, c, f, mi, bl = Hashtbl.find agg (stage, tree) in
          add "  s%d tree %-5d blocks %-3d enters %-4d checks %-4d failed %-4d max-inside %d\n"
            stage tree bl e c f mi
        end)
      order;
    if List.length order > 32 then add "  ... %d more tree(s)\n" (List.length order - 32)
  end;
  if report.orphan_releases > 0 then
    add "note: %d release(s) without a matching enter (crash-recovery resets)\n"
      report.orphan_releases;
  Buffer.contents buf
