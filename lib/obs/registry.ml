type shard = {
  sid : int;
  counters : (string, Counter.t) Hashtbl.t;
  gauges : (string, Gauge.t) Hashtbl.t;
  histograms : (string, Histogram.t) Hashtbl.t;
  spans : Span.collector;
  mutable flushes : (unit -> unit) list;
}

type t = {
  lock : Mutex.t;
  mutable shards : shard list; (* reversed: newest first *)
  mutable next_sid : int;
  span_capacity : int;
}

let create ?(span_capacity = 4096) () =
  { lock = Mutex.create (); shards = []; next_sid = 0; span_capacity }

let shard ?span_capacity t =
  Mutex.lock t.lock;
  let sid = t.next_sid in
  t.next_sid <- sid + 1;
  let s =
    {
      sid;
      counters = Hashtbl.create 16;
      gauges = Hashtbl.create 16;
      histograms = Hashtbl.create 8;
      spans =
        Span.collector
          ~capacity:(Option.value ~default:t.span_capacity span_capacity)
          ();
      flushes = [];
    }
  in
  t.shards <- s :: t.shards;
  Mutex.unlock t.lock;
  s

let shard_id s = s.sid
let on_snapshot s f = s.flushes <- f :: s.flushes

let find_or tbl name make =
  match Hashtbl.find_opt tbl name with
  | Some m -> m
  | None ->
      let m = make () in
      Hashtbl.add tbl name m;
      m

let counter s name = find_or s.counters name Counter.create
let gauge s name = find_or s.gauges name Gauge.create
let histogram s name = find_or s.histograms name Histogram.create
let inc s name = Counter.incr (counter s name)
let count s name v = Counter.add (counter s name) v
let observe s name v = Histogram.observe (histogram s name) v
let span s sp = Span.add s.spans sp

let record_span s ~name ~pid ~start_step ~end_step ~accesses ~annotations =
  Span.record s.spans ~name ~pid ~start_step ~end_step ~accesses ~annotations
let shard_spans s = Span.items s.spans
let shard_spans_dropped s = Span.dropped s.spans

type snapshot = {
  shards : int;
  counters : (string * int) list;
  gauges : (string * Gauge.snap) list;
  histograms : (string * Histogram.snap) list;
  spans : Span.t list;
  spans_dropped : int;
}

let sorted_bindings merged = List.sort (fun (a, _) (b, _) -> String.compare a b) merged

let snapshot t =
  Mutex.lock t.lock;
  let shards = List.rev t.shards in
  Mutex.unlock t.lock;
  (* let deferred publishers (e.g. Store tallies) push their deltas
     into shard metrics before we merge *)
  List.iter (fun (s : shard) -> List.iter (fun f -> f ()) s.flushes) shards;
  let counters = Hashtbl.create 32 in
  let gauges = Hashtbl.create 32 in
  let histograms = Hashtbl.create 16 in
  let spans_dropped = ref 0 in
  List.iter
    (fun (s : shard) ->
      Hashtbl.iter
        (fun name c ->
          Counter.merge ~into:(find_or counters name Counter.create) c)
        s.counters;
      Hashtbl.iter
        (fun name g -> Gauge.merge ~into:(find_or gauges name Gauge.create) g)
        s.gauges;
      Hashtbl.iter
        (fun name h ->
          Histogram.merge ~into:(find_or histograms name Histogram.create) h)
        s.histograms;
      spans_dropped := !spans_dropped + Span.dropped s.spans)
    shards;
  let bindings tbl f = sorted_bindings (Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []) in
  {
    shards = List.length shards;
    counters = bindings counters Counter.get;
    gauges = bindings gauges Gauge.snap;
    histograms = bindings histograms Histogram.snap;
    spans = List.concat_map (fun (s : shard) -> Span.items s.spans) shards;
    spans_dropped = !spans_dropped;
  }
