(** The metrics registry: named counters, gauges, histograms and span
    rings, sharded by writer.

    A {!shard} is the write capability of one process or OS domain.
    Writes are plain mutable stores on data only the owning writer
    touches — no locks, no atomics on the hot path; the registry mutex
    guards only shard {e creation} and {e snapshotting}.  A snapshot
    merges every shard into one name-keyed view (counters add, gauge
    currents add / high-water marks max, histograms merge
    element-wise, span rings concatenate), so simulator runs (one
    shard), [Domain_runner] runs (one shard per domain, merged after
    join) and model-check counterexample replays all report through the
    same schema.

    Metric names are dot-separated paths ([store.reads.SLOT],
    [op.get.accesses], [names.held.3]); exporters map them to the
    target format's conventions. *)

type t
type shard

val create : ?span_capacity:int -> unit -> t
(** [span_capacity] (default [4096]) bounds each shard's span ring. *)

val shard : ?span_capacity:int -> t -> shard
(** Register a new shard; call once per writer, {e before} its hot
    loop (takes the registry mutex).  [span_capacity] overrides the
    registry default for this shard. *)

val shard_id : shard -> int
(** Creation order, from [0]. *)

val on_snapshot : shard -> (unit -> unit) -> unit
(** [on_snapshot s f] registers [f] to run at the start of every
    {!snapshot}, before shards merge — the hook for deferred
    publishers (e.g. [Store] access tallies) that batch hot-path
    counts in private storage and only materialize registry metrics
    when someone looks.  Register at wiring time, like {!shard}
    itself: the list is plain mutable state owned by the shard's
    writer. *)

(** {1 Writing} — find-or-create by name, then update. *)

val counter : shard -> string -> Counter.t
val gauge : shard -> string -> Gauge.t
val histogram : shard -> string -> Histogram.t

val inc : shard -> string -> unit
val count : shard -> string -> int -> unit
val observe : shard -> string -> int -> unit
(** Histogram shorthand. *)

val span : shard -> Span.t -> unit

val record_span :
  shard ->
  name:string ->
  pid:int ->
  start_step:int ->
  end_step:int ->
  accesses:int ->
  annotations:(string * int) list ->
  unit
(** Allocation-free {!Span.record} into the shard's ring — the hot
    per-operation path; {!span} is the record-building convenience. *)

val shard_spans : shard -> Span.t list
(** This shard's recorded spans, oldest first — the harness reads its
    own operation costs back through this. *)

val shard_spans_dropped : shard -> int

(** {1 Snapshot} *)

type snapshot = {
  shards : int;
  counters : (string * int) list;  (** Sorted by name. *)
  gauges : (string * Gauge.snap) list;
  histograms : (string * Histogram.snap) list;
  spans : Span.t list;  (** Shard creation order, oldest first within a shard. *)
  spans_dropped : int;
}

val snapshot : t -> snapshot
(** Merge all shards.  Safe at any time, but values are only guaranteed
    complete once every writer has finished (e.g. after
    [Domain.join]). *)
