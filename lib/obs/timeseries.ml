(* A fixed ring of aggregation windows keyed by *absolute* window id
   (event time / window length), not by arrival order.  Keying by
   absolute id is what makes shard merges deterministic: wherever an
   event was recorded and in whatever order shards are merged, it lands
   in the same window, and windows combine by commutative sums /
   min / max — so any interleaving of the same events yields identical
   windows (see the merge law in the .mli).

   Storage is the Flight-ring discipline: two flat int arrays, no
   per-window boxes, recording is a handful of stores and never
   allocates.  META_W ints of metadata per window plus (for histogram
   series) one log-bucket delta array per window, using the same
   bucket geometry as Histogram so per-window percentiles carry the
   same ≤12.5% relative error. *)

let meta_w = 5 (* wid, count, sum, min, max *)

type t = {
  slots : int;
  window_ns : int;
  nbuckets : int; (* Histogram.nbuckets, or 1 for counter-mode series *)
  meta : int array; (* slots * meta_w; wid = -1 marks an empty slot *)
  buckets : int array; (* slots * nbuckets *)
  mutable dropped : int; (* events older than the retained horizon *)
}

let create ?(windows = 64) ?(hist = true) ~window_ns () =
  if windows < 1 then invalid_arg "Timeseries.create: windows < 1";
  if window_ns < 1 then invalid_arg "Timeseries.create: window_ns < 1";
  let nbuckets = if hist then Histogram.nbuckets else 1 in
  {
    slots = windows;
    window_ns;
    nbuckets;
    meta = Array.init (windows * meta_w) (fun i -> if i mod meta_w = 0 then -1 else 0);
    buckets = Array.make (windows * nbuckets) 0;
    dropped = 0;
  }

let capacity t = t.slots
let window_ns t = t.window_ns
let dropped t = t.dropped

let reset_slot t slot wid =
  let base = slot * meta_w in
  t.meta.(base) <- wid;
  t.meta.(base + 1) <- 0;
  t.meta.(base + 2) <- 0;
  t.meta.(base + 3) <- max_int;
  t.meta.(base + 4) <- 0;
  Array.fill t.buckets (slot * t.nbuckets) t.nbuckets 0

let observe t ~now v =
  let v = if v < 0 then 0 else v in
  let wid = (if now < 0 then 0 else now) / t.window_ns in
  let slot = wid mod t.slots in
  let base = slot * meta_w in
  let cur = t.meta.(base) in
  if cur <> wid then
    if wid < cur then begin
      (* an event from a window that already fell off the ring: a
         writer's clock is monotonic, so this only happens when one
         series is shared across writers — count the loss, honestly *)
      t.dropped <- t.dropped + 1
    end
    else reset_slot t slot wid;
  if t.meta.(base) = wid then begin
    t.meta.(base + 1) <- t.meta.(base + 1) + 1;
    t.meta.(base + 2) <- t.meta.(base + 2) + v;
    if v < t.meta.(base + 3) then t.meta.(base + 3) <- v;
    if v > t.meta.(base + 4) then t.meta.(base + 4) <- v;
    let bi = if t.nbuckets = 1 then 0 else Histogram.index v in
    t.buckets.((slot * t.nbuckets) + bi) <- t.buckets.((slot * t.nbuckets) + bi) + 1
  end

type window = { wid : int; start : int; count : int; sum : int; min : int; max : int }

let window_of t slot =
  let base = slot * meta_w in
  let count = t.meta.(base + 1) in
  {
    wid = t.meta.(base);
    start = t.meta.(base) * t.window_ns;
    count;
    sum = t.meta.(base + 2);
    min = (if count = 0 then 0 else t.meta.(base + 3));
    max = t.meta.(base + 4);
  }

let windows t =
  let ws = ref [] in
  for slot = t.slots - 1 downto 0 do
    if t.meta.(slot * meta_w) >= 0 then ws := window_of t slot :: !ws
  done;
  List.sort (fun a b -> compare a.wid b.wid) !ws

let find_slot t ~wid =
  let slot = wid mod t.slots in
  if wid >= 0 && t.meta.(slot * meta_w) = wid then Some slot else None

let window t ~wid = Option.map (window_of t) (find_slot t ~wid)

let percentile t ~wid q =
  match find_slot t ~wid with
  | None -> 0
  | Some slot ->
      let base = slot * meta_w in
      let vmax = t.meta.(base + 4) in
      if t.nbuckets = 1 then vmax
      else begin
        (* rank over the window's bucket mass, exactly like
           Histogram.percentile (and for the same torn-count reason) *)
        let off = slot * t.nbuckets in
        let total = ref 0 in
        for i = 0 to t.nbuckets - 1 do
          total := !total + t.buckets.(off + i)
        done;
        if !total = 0 then 0
        else begin
          let rank = max 1 (int_of_float (Float.of_int !total *. q +. 0.5)) in
          let rank = min rank !total in
          let cum = ref 0 and result = ref vmax in
          (try
             for i = 0 to t.nbuckets - 1 do
               cum := !cum + t.buckets.(off + i);
               if !cum >= rank then begin
                 result := min (Histogram.upper_edge i) vmax;
                 raise Exit
               end
             done
           with Exit -> ());
          !result
        end
      end

let total t =
  let s = ref 0 in
  for slot = 0 to t.slots - 1 do
    if t.meta.(slot * meta_w) >= 0 then s := !s + t.meta.((slot * meta_w) + 1)
  done;
  !s

let merge ~into src =
  if into.slots <> src.slots || into.window_ns <> src.window_ns
     || into.nbuckets <> src.nbuckets
  then invalid_arg "Timeseries.merge: shape mismatch";
  into.dropped <- into.dropped + src.dropped;
  for slot = 0 to src.slots - 1 do
    let sbase = slot * meta_w in
    let wid = src.meta.(sbase) in
    if wid >= 0 then begin
      let dbase = slot * meta_w in
      let dwid = into.meta.(dbase) in
      if wid > dwid then reset_slot into slot wid;
      if wid >= dwid then begin
        (* equal ids: element-wise combine — commutative, so the merge
           order of shards cannot change the result *)
        into.meta.(dbase + 1) <- into.meta.(dbase + 1) + src.meta.(sbase + 1);
        into.meta.(dbase + 2) <- into.meta.(dbase + 2) + src.meta.(sbase + 2);
        if src.meta.(sbase + 3) < into.meta.(dbase + 3) then
          into.meta.(dbase + 3) <- src.meta.(sbase + 3);
        if src.meta.(sbase + 4) > into.meta.(dbase + 4) then
          into.meta.(dbase + 4) <- src.meta.(sbase + 4);
        for i = 0 to src.nbuckets - 1 do
          into.buckets.((slot * into.nbuckets) + i) <-
            into.buckets.((slot * into.nbuckets) + i)
            + src.buckets.((slot * src.nbuckets) + i)
        done
      end
      else
        (* src's window is older than what the ring position retains *)
        into.dropped <- into.dropped + src.meta.(sbase + 1)
    end
  done

let clear t =
  for slot = 0 to t.slots - 1 do
    t.meta.(slot * meta_w) <- -1
  done;
  t.dropped <- 0
