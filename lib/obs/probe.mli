(** The structural-event hook carried by every [Store.ops].

    Protocol code reports its traced steps through the capability's
    probe: entering / leaving a splitter's output set, and the
    enter/check/release steps of a tournament mutex block.  The
    default probe is {!null}; instrumented runs install one that
    appends to a {!Flight} ring.

    Emitting costs no shared access, so probes are invisible to the
    simulator's schedules and to partial-order reduction — a
    model-checked schedule replays identically with or without them.

    Call sites must guard event construction with {!is_null} so the
    uninstrumented hot path pays one physical comparison and no
    allocation. *)

type event =
  | Enter of Loc.t  (** Began [enter] (splitter) / entered a level (mutex). *)
  | Exit of Loc.t * int
      (** Splitter [enter] returned; the int is the direction
          ([-1], [0] or [1]) — the output set joined. *)
  | Check of Loc.t * bool  (** Mutex block check and its verdict. *)
  | Release of Loc.t  (** Left the splitter's output set / mutex block. *)

type t = event -> unit

val null : t
(** Drops every event.  The default of every store backend. *)

val is_null : t -> bool
(** Physical comparison against {!null}. *)
