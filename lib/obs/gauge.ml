type snap = { current : int; hwm : int }
type t = { mutable current : int; mutable hwm : int }

let create () = { current = 0; hwm = 0 }

let set t v =
  t.current <- v;
  if v > t.hwm then t.hwm <- v

let add t d = set t (t.current + d)
let incr t = add t 1
let decr t = add t (-1)
let observe t v = if v > t.hwm then t.hwm <- v
let current t = t.current
let hwm t = t.hwm
let snap t : snap = { current = t.current; hwm = t.hwm }

let reset t =
  t.current <- 0;
  t.hwm <- 0

let merge ~into src =
  into.current <- into.current + src.current;
  if src.hwm > into.hwm then into.hwm <- src.hwm
