type t = {
  name : string;
  pid : int;
  start_step : int;
  end_step : int;
  accesses : int;
  annotations : (string * int) list;
}

type collector = { capacity : int; ring : t Queue.t; mutable dropped : int }

let collector ?(capacity = 4096) () =
  if capacity < 1 then invalid_arg "Span.collector";
  { capacity; ring = Queue.create (); dropped = 0 }

let add c span =
  if Queue.length c.ring >= c.capacity then begin
    ignore (Queue.pop c.ring);
    c.dropped <- c.dropped + 1
  end;
  Queue.push span c.ring

let items c = List.of_seq (Queue.to_seq c.ring)
let length c = Queue.length c.ring
let dropped c = c.dropped
let total c = Queue.length c.ring + c.dropped

let clear c =
  Queue.clear c.ring;
  c.dropped <- 0
