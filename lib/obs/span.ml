type t = {
  name : string;
  pid : int;
  start_step : int;
  end_step : int;
  accesses : int;
  annotations : (string * int) list;
}

(* Preallocated ring, one parallel array per field: recording through
   [record] is six stores and an index bump — no span record, no
   queue cell, nothing for the minor GC.  That matters beyond
   throughput: with a sampler domain alive, every minor collection is
   a cross-domain stop-the-world rendezvous, so the record path's
   allocation rate is a direct multiplier on telemetry cost.  [t]
   records are only materialized on the cold read path ([items]). *)
type collector = {
  capacity : int;
  names : string array;
  pids : int array;
  starts : int array;
  ends : int array;
  accesses : int array;
  annotations : (string * int) list array;
  mutable head : int;
  mutable length : int;
  mutable dropped : int;
}

let collector ?(capacity = 4096) () =
  if capacity < 1 then invalid_arg "Span.collector";
  {
    capacity;
    names = Array.make capacity "";
    pids = Array.make capacity 0;
    starts = Array.make capacity 0;
    ends = Array.make capacity 0;
    accesses = Array.make capacity 0;
    annotations = Array.make capacity [];
    head = 0;
    length = 0;
    dropped = 0;
  }

let record c ~name ~pid ~start_step ~end_step ~accesses ~annotations =
  let h = c.head in
  c.names.(h) <- name;
  c.pids.(h) <- pid;
  c.starts.(h) <- start_step;
  c.ends.(h) <- end_step;
  c.accesses.(h) <- accesses;
  c.annotations.(h) <- annotations;
  c.head <- (if h + 1 = c.capacity then 0 else h + 1);
  if c.length < c.capacity then c.length <- c.length + 1
  else c.dropped <- c.dropped + 1

let add c (s : t) =
  record c ~name:s.name ~pid:s.pid ~start_step:s.start_step ~end_step:s.end_step
    ~accesses:s.accesses ~annotations:s.annotations

let items c =
  (* oldest first: walk [length] slots ending just before [head] *)
  let start = (c.head - c.length + c.capacity) mod c.capacity in
  List.init c.length (fun i ->
      let j = (start + i) mod c.capacity in
      {
        name = c.names.(j);
        pid = c.pids.(j);
        start_step = c.starts.(j);
        end_step = c.ends.(j);
        accesses = c.accesses.(j);
        annotations = c.annotations.(j);
      })

let length c = c.length
let dropped c = c.dropped
let total c = c.length + c.dropped

let clear c =
  Array.fill c.names 0 c.capacity "";
  Array.fill c.annotations 0 c.capacity [];
  c.head <- 0;
  c.length <- 0;
  c.dropped <- 0
