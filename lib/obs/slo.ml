(* Declarative service-level objectives over Timeseries, evaluated as
   burn rates: an objective "burns" in a window where it is violated,
   and only a sustained run of burning windows trips the gate — a
   single hot window is noise, N consecutive ones are an incident.
   The vocabulary is fixed to the name server's canonical series
   ("latency", "sheds"/"attempts", "warm"/"grants") so a spec string
   on the CLI is enough to wire everything. *)

type objective =
  | P_ceiling of { q : float; series : string; ceiling : int }
  | Rate_ceiling of { num : string; den : string; ceiling : float }
  | Rate_floor of { num : string; den : string; floor : float }
  | Scalar_zero of string

type t = objective list

let label = function
  | P_ceiling { q; series; ceiling } ->
      Printf.sprintf "p%g(%s) <= %d" (q *. 100.) series ceiling
  | Rate_ceiling { num; den; ceiling } ->
      Printf.sprintf "%s/%s <= %g" num den ceiling
  | Rate_floor { num; den; floor } -> Printf.sprintf "%s/%s >= %g" num den floor
  | Scalar_zero name -> Printf.sprintf "%s = 0" name

(* grammar: comma-separated clauses, e.g.
     p99_ns<=50000,shed_rate<=0.05,warm_rate>=0.10,violations=0 *)

let to_string t =
  String.concat ","
    (List.map
       (function
         | P_ceiling { q; series = _; ceiling } ->
             Printf.sprintf "p%g_ns<=%d" (q *. 100.) ceiling
         | Rate_ceiling { num = "sheds"; den = "attempts"; ceiling } ->
             Printf.sprintf "shed_rate<=%g" ceiling
         | Rate_ceiling { num; den; ceiling } ->
             Printf.sprintf "rate:%s/%s<=%g" num den ceiling
         | Rate_floor { num = "warm"; den = "grants"; floor } ->
             Printf.sprintf "warm_rate>=%g" floor
         | Rate_floor { num; den; floor } ->
             Printf.sprintf "rate:%s/%s>=%g" num den floor
         | Scalar_zero name -> Printf.sprintf "%s=0" name)
       t)

let parse_clause s =
  let s = String.trim s in
  let split op =
    match String.index_opt s op.[0] with
    | Some i
      when i + String.length op <= String.length s
           && String.sub s i (String.length op) = op ->
        Some (String.sub s 0 i, String.sub s (i + String.length op)
                                  (String.length s - i - String.length op))
    | _ -> None
  in
  let int_of v = int_of_string_opt (String.trim v) in
  let float_of v = float_of_string_opt (String.trim v) in
  let percentile_clause key rhs =
    (* pNN_ns<=CEILING, over the latency series *)
    if String.length key > 4 && String.sub key 0 1 = "p"
       && String.sub key (String.length key - 3) 3 = "_ns"
    then
      match
        ( float_of_string_opt (String.sub key 1 (String.length key - 4)),
          int_of rhs )
      with
      | Some pct, Some ceiling when pct > 0. && pct <= 100. ->
          Ok (P_ceiling { q = pct /. 100.; series = "latency"; ceiling })
      | _ -> Error (Printf.sprintf "bad percentile clause %S" s)
    else Error (Printf.sprintf "unknown clause %S" s)
  in
  match split "<=" with
  | Some (key, rhs) -> (
      match (String.trim key, float_of rhs) with
      | "shed_rate", Some c when c >= 0. ->
          Ok (Rate_ceiling { num = "sheds"; den = "attempts"; ceiling = c })
      | key, _ -> percentile_clause key rhs)
  | None -> (
      match split ">=" with
      | Some (key, rhs) -> (
          match (String.trim key, float_of rhs) with
          | "warm_rate", Some f when f >= 0. ->
              Ok (Rate_floor { num = "warm"; den = "grants"; floor = f })
          | _ -> Error (Printf.sprintf "unknown clause %S" s))
      | None -> (
          match split "=" with
          | Some (key, "0") -> Ok (Scalar_zero (String.trim key))
          | _ -> Error (Printf.sprintf "unknown clause %S" s)))

let of_string s =
  let clauses =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun c -> c <> "")
  in
  if clauses = [] then Error "empty SLO spec"
  else
    List.fold_left
      (fun acc c ->
        match (acc, parse_clause c) with
        | Error e, _ -> Error e
        | _, Error e -> Error e
        | Ok t, Ok o -> Ok (t @ [ o ]))
      (Ok []) clauses

type verdict = {
  objective : objective;
  label : string;
  evaluated : int;
  burning : int;
  max_burn : int;
  worst : float;
  sustained : bool;
}

(* windows are judged in wid order; sustained = a run of >= sustain
   consecutive burning windows (clamped to the number of windows that
   actually had data, so short runs can still trip). *)
let judge_windows ~sustain entries =
  let entries = List.sort (fun (a, _, _) (b, _, _) -> compare a b) entries in
  let evaluated = List.length entries in
  let burning = List.length (List.filter (fun (_, b, _) -> b) entries) in
  let max_burn, _ =
    List.fold_left
      (fun (best, run) (_, b, _) ->
        if b then (max best (run + 1), run + 1) else (best, 0))
      (0, 0) entries
  in
  let effective = max 1 (min sustain evaluated) in
  (evaluated, burning, max_burn, evaluated > 0 && max_burn >= effective)

let evaluate ?(sustain = 3) ?(min_count = 1) ~series ~scalar t =
  List.map
    (fun o ->
      let evaluated, burning, max_burn, sustained, worst =
        match o with
        | P_ceiling { q; series = name; ceiling } ->
            let entries =
              match series name with
              | None -> []
              | Some ts ->
                  Timeseries.windows ts
                  |> List.filter (fun (w : Timeseries.window) ->
                         w.count >= min_count)
                  |> List.map (fun (w : Timeseries.window) ->
                         let p = Timeseries.percentile ts ~wid:w.wid q in
                         (w.wid, p > ceiling, float_of_int p))
            in
            let worst =
              List.fold_left (fun m (_, _, v) -> Float.max m v) 0. entries
            in
            let e, b, mb, s = judge_windows ~sustain entries in
            (e, b, mb, s, worst)
        | Rate_ceiling { num; den; ceiling } | Rate_floor { num; den; floor = ceiling }
          ->
            let floorish = match o with Rate_floor _ -> true | _ -> false in
            let entries =
              match series den with
              | None -> []
              | Some dts ->
                  let nts = series num in
                  Timeseries.windows dts
                  |> List.filter (fun (w : Timeseries.window) ->
                         w.count >= min_count)
                  |> List.map (fun (w : Timeseries.window) ->
                         let n =
                           match nts with
                           | None -> 0
                           | Some nts -> (
                               match Timeseries.window nts ~wid:w.wid with
                               | Some nw -> nw.count
                               | None -> 0)
                         in
                         let rate = float_of_int n /. float_of_int w.count in
                         let burn =
                           if floorish then rate < ceiling else rate > ceiling
                         in
                         (w.wid, burn, rate))
            in
            let worst =
              match entries with
              | [] -> 0.
              | (_, _, r0) :: rest ->
                  List.fold_left
                    (fun m (_, _, v) ->
                      if floorish then Float.min m v else Float.max m v)
                    r0 rest
            in
            let e, b, mb, s = judge_windows ~sustain entries in
            (e, b, mb, s, worst)
        | Scalar_zero name ->
            let v = Option.value ~default:0 (scalar name) in
            let burn = v <> 0 in
            (1, (if burn then 1 else 0), (if burn then 1 else 0), burn,
             float_of_int v)
      in
      { objective = o; label = label o; evaluated; burning; max_burn; worst;
        sustained })
    t

let burning verdicts = List.exists (fun v -> v.sustained) verdicts

let pp_verdict ppf v =
  Format.fprintf ppf "%-24s %s  windows=%d burning=%d max_run=%d worst=%g"
    v.label
    (if v.sustained then "BURN" else if v.burning > 0 then "warn" else "ok")
    v.evaluated v.burning v.max_burn v.worst
