(* A sampler turns cheap read-only probes ("how many slots are free
   right now?") into time series by polling them on a schedule.  The
   clock and the pause are injected thunks so lib/obs stays Unix-free
   and tests can drive a sampler with a fake clock, one deterministic
   poll at a time.

   Ownership: the polling loop (whether [poll] on the caller's domain
   or the domain spawned by [start]) is the single writer of every
   series and of the optional registry shard — sources are read-only
   views into someone else's state, never writes.  Pass [start] a
   {e dedicated} shard for exactly that reason. *)

type source = { name : string; read : unit -> int }

type t = {
  sources : source array;
  series : Timeseries.t array;
  gauges : Gauge.t array; (* parallel to sources; empty without a shard *)
  mutable ticks : int;
}

let create ?(windows = 64) ?shard ~window_ns sources =
  let sources = Array.of_list sources in
  {
    sources;
    series =
      Array.map
        (fun _ -> Timeseries.create ~windows ~hist:false ~window_ns ())
        sources;
    gauges =
      (match shard with
      | None -> [||]
      | Some sh ->
          Array.map (fun s -> Registry.gauge sh ("sampler." ^ s.name)) sources);
    ticks = 0;
  }

let poll t ~now =
  for i = 0 to Array.length t.sources - 1 do
    let v = t.sources.(i).read () in
    Timeseries.observe t.series.(i) ~now v;
    if Array.length t.gauges > 0 then Gauge.set t.gauges.(i) v
  done;
  t.ticks <- t.ticks + 1

let series t =
  Array.to_list
    (Array.mapi (fun i s -> (t.sources.(i).name, s)) t.series)

let ticks t = t.ticks

type handle = { sampler : t; stop_flag : bool Atomic.t; domain : unit Domain.t }

let start t ~now_ns ~sleep =
  let stop_flag = Atomic.make false in
  let domain =
    Domain.spawn (fun () ->
        (* poll-then-sleep, plus one final poll after the stop flag is
           seen: even a run shorter than one interval gets sampled *)
        while not (Atomic.get stop_flag) do
          poll t ~now:(now_ns ());
          sleep ()
        done;
        poll t ~now:(now_ns ()))
  in
  { sampler = t; stop_flag; domain }

let stop h =
  Atomic.set h.stop_flag true;
  Domain.join h.domain
