type t =
  | Splitter of { stage : int; node : int }
  | Mutex of { stage : int; tree : int; level : int; node : int }

(* Packed layout (bit 0 is the kind tag):

     Splitter: [node:55][stage:6][0]
     Mutex:    [tree:25][node:24][level:6][stage:6][1]

   Every field is validated on [encode], so a code always decodes back
   to the same location ([decode (encode l) = l]). *)

let max_stage = (1 lsl 6) - 1
let max_level = (1 lsl 6) - 1
let max_mutex_node = (1 lsl 24) - 1
let max_tree = (1 lsl 25) - 1
let max_splitter_node = (1 lsl 55) - 1

let encode = function
  | Splitter { stage; node } ->
      if stage < 0 || stage > max_stage then invalid_arg "Loc.encode: stage";
      if node < 0 || node > max_splitter_node then invalid_arg "Loc.encode: node";
      (node lsl 7) lor (stage lsl 1)
  | Mutex { stage; tree; level; node } ->
      if stage < 0 || stage > max_stage then invalid_arg "Loc.encode: stage";
      if level < 0 || level > max_level then invalid_arg "Loc.encode: level";
      if node < 0 || node > max_mutex_node then invalid_arg "Loc.encode: node";
      if tree < 0 || tree > max_tree then invalid_arg "Loc.encode: tree";
      (tree lsl 37) lor (node lsl 13) lor (level lsl 7) lor (stage lsl 1) lor 1

let decode code =
  if code < 0 then invalid_arg "Loc.decode";
  let stage = (code lsr 1) land max_stage in
  if code land 1 = 0 then Splitter { stage; node = code lsr 7 }
  else
    Mutex
      {
        stage;
        level = (code lsr 7) land max_level;
        node = (code lsr 13) land max_mutex_node;
        tree = code lsr 37;
      }

let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b
let stage = function Splitter { stage; _ } | Mutex { stage; _ } -> stage

let to_string = function
  | Splitter { stage; node } -> Printf.sprintf "s%d:splitter:%d" stage node
  | Mutex { stage; tree; level; node } ->
      Printf.sprintf "s%d:tree%d:L%d:%d" stage tree level node

let pp ppf l = Format.pp_print_string ppf (to_string l)
