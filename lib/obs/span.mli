(** Operation spans: one record per traced operation (a [GetName] or
    [ReleaseName] execution), holding its window on the clock the
    producer uses (simulator: global access step; domains: the worker's
    own access count), the shared accesses it performed, and annotations
    harvested from the event stream (destination name, FILTER rounds,
    splitter directions, …).

    Spans are held in a bounded ring per shard, oldest dropped first,
    with exact [dropped]/[total] accounting — the aggregate metrics
    (histograms, counters) never drop anything; only the per-operation
    detail is bounded. *)

type t = {
  name : string;  (** Operation: ["get"], ["release"], … *)
  pid : int;  (** Source name of the process that ran it. *)
  start_step : int;
  end_step : int;
  accesses : int;  (** Shared accesses performed inside the span. *)
  annotations : (string * int) list;  (** Oldest first. *)
}

type collector

val collector : ?capacity:int -> unit -> collector
(** Keep the last [capacity] (default [4096]) spans. *)

val add : collector -> t -> unit
(** Record a span given as a record — convenient for cold callers;
    hot paths should use {!record}, which allocates nothing. *)

val record :
  collector ->
  name:string ->
  pid:int ->
  start_step:int ->
  end_step:int ->
  accesses:int ->
  annotations:(string * int) list ->
  unit
(** Allocation-free recording: the fields go straight into the
    collector's preallocated ring (six stores), no {!t} record is
    built.  [annotations] is stored as given — pass a preallocated or
    empty list to keep the path entirely free of allocation. *)

val items : collector -> t list
(** Recorded spans, oldest first. *)

val length : collector -> int
val dropped : collector -> int
val total : collector -> int
(** Spans ever added ([length + dropped]). *)

val clear : collector -> unit
