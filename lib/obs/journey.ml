type stage =
  | Backoff
  | Admission
  | Claim
  | Drain
  | Acquire
  | Release
  | Pending
  | Retire
  | Reclaim

let stages =
  [| Backoff; Admission; Claim; Drain; Acquire; Release; Pending; Retire; Reclaim |]

let nstages = Array.length stages

let stage_index = function
  | Backoff -> 0
  | Admission -> 1
  | Claim -> 2
  | Drain -> 3
  | Acquire -> 4
  | Release -> 5
  | Pending -> 6
  | Retire -> 7
  | Reclaim -> 8

let stage_name = function
  | Backoff -> "backoff"
  | Admission -> "admission"
  | Claim -> "claim"
  | Drain -> "drain"
  | Acquire -> "acquire"
  | Release -> "release"
  | Pending -> "pending"
  | Retire -> "retire"
  | Reclaim -> "reclaim"

let stage_of_name s =
  let rec go i =
    if i >= nstages then None
    else if stage_name stages.(i) = s then Some stages.(i)
    else go (i + 1)
  in
  go 0

(* ----- flat rows -----

   One journey is [stride] consecutive ints: id, arrival, total,
   retries, accesses, flags, exemplar hash, then one dwell per stage.
   The in-flight journey lives in [scratch]; reservoir slots hold
   preallocated rows that completed journeys are blitted into. *)

let f_id = 0
and f_arrival = 1
and f_total = 2
and f_retries = 3
and f_accesses = 4
and f_flags = 5
and f_hash = 6
and f_dwell = 7

let stride = f_dwell + nstages
let flag_warm = 1
let flag_over = 2

(* deterministic exemplar priority: a pure function of (seed, id), so
   independently built recorders agree on which journeys are "random"
   exemplars and merge stays commutative *)
let exhash seed id =
  let h = ref (id + (seed * 0x9e3779b1)) in
  h := !h lxor (!h lsr 16);
  h := !h * 0x7feb352d;
  h := !h lxor (!h lsr 15);
  h := !h * 0x846ca68b;
  h := !h lxor (!h lsr 16);
  !h land 0x3fffffffffff

(* total order "more tail-worthy": slower first, lower id breaking
   ties — gives top-K sets independent of insertion order *)
let slower a b =
  a.(f_total) > b.(f_total) || (a.(f_total) = b.(f_total) && a.(f_id) < b.(f_id))

(* exemplar order: smaller (hash, id) wins *)
let ex_before a b =
  a.(f_hash) < b.(f_hash) || (a.(f_hash) = b.(f_hash) && a.(f_id) < b.(f_id))

type slot = {
  mutable wid : int;  (* -1 = empty *)
  mutable count : int;
  sblame : int array;
  top : int array array;
  mutable ntop : int;
  mutable wtop : int;  (* index of the weakest top entry, -1 = unknown *)
  ex : int array array;
  mutable nex : int;
  mutable wex : int;
}

type t = {
  windows : int;
  window_ns : int;
  k : int;
  r : int;
  seed : int;
  bound : int;
  scratch : int array;
  mutable inflight : bool;
  slots : slot array;
  worst : int array;
  mutable has_worst : bool;
  blame : int array;
  mutable completed : int;
  mutable flagged : int;
  h : Histogram.t;
}

let make_slot k r =
  {
    wid = -1;
    count = 0;
    sblame = Array.make nstages 0;
    top = Array.init k (fun _ -> Array.make stride 0);
    ntop = 0;
    wtop = -1;
    ex = Array.init r (fun _ -> Array.make stride 0);
    nex = 0;
    wex = -1;
  }

let create ?(windows = 8) ?(window_ns = 5_000_000) ?(k = 8) ?(exemplars = 4) ?(seed = 1)
    ?(bound = 0) () =
  if windows < 1 || k < 1 || exemplars < 0 || window_ns < 1 then
    invalid_arg "Journey.create";
  {
    windows;
    window_ns;
    k;
    r = exemplars;
    seed;
    bound;
    scratch = Array.make stride 0;
    inflight = false;
    slots = Array.init windows (fun _ -> make_slot k exemplars);
    worst = Array.make stride 0;
    has_worst = false;
    blame = Array.make nstages 0;
    completed = 0;
    flagged = 0;
    h = Histogram.create ();
  }

(* ----- hot path ----- *)

let start t ~id ~now =
  if id < 1 then invalid_arg "Journey.start: ids are positive";
  let s = t.scratch in
  Array.fill s 0 stride 0;
  Array.unsafe_set s f_id id;
  Array.unsafe_set s f_arrival now;
  t.inflight <- true

let dwell t stage ns =
  if t.inflight && ns > 0 then begin
    let i = f_dwell + stage_index stage in
    Array.unsafe_set t.scratch i (Array.unsafe_get t.scratch i + ns)
  end

let retry t =
  if t.inflight then
    Array.unsafe_set t.scratch f_retries (Array.unsafe_get t.scratch f_retries + 1)

let accesses t n =
  if t.inflight then
    Array.unsafe_set t.scratch f_accesses (Array.unsafe_get t.scratch f_accesses + n)

let warm t =
  if t.inflight then
    Array.unsafe_set t.scratch f_flags (Array.unsafe_get t.scratch f_flags lor flag_warm)

let active t = t.inflight

(* the slot for an absolute window id; arrivals are monotone per
   recorder, so a mismatch can only mean the ring rotated forward *)
let slot_for t wid =
  let s = t.slots.(wid mod t.windows) in
  if wid > s.wid then begin
    s.wid <- wid;
    s.count <- 0;
    Array.fill s.sblame 0 nstages 0;
    s.ntop <- 0;
    s.wtop <- -1;
    s.nex <- 0;
    s.wex <- -1
  end;
  s

let offer_top t slot row =
  if slot.ntop < t.k then begin
    Array.blit row 0 slot.top.(slot.ntop) 0 stride;
    slot.ntop <- slot.ntop + 1
  end
  else begin
    (* replace the least tail-worthy entry if the candidate beats it;
       its index is cached so the common lose-to-the-weakest case is a
       single compare, and the scan reruns only after a replacement *)
    (if slot.wtop < 0 then begin
       let m = ref 0 in
       for i = 1 to t.k - 1 do
         if slower slot.top.(!m) slot.top.(i) then m := i
       done;
       slot.wtop <- !m
     end);
    if slower row slot.top.(slot.wtop) then begin
      Array.blit row 0 slot.top.(slot.wtop) 0 stride;
      slot.wtop <- -1
    end
  end

let offer_ex t slot row =
  if t.r > 0 then
    if slot.nex < t.r then begin
      Array.blit row 0 slot.ex.(slot.nex) 0 stride;
      slot.nex <- slot.nex + 1
    end
    else begin
      (if slot.wex < 0 then begin
         let m = ref 0 in
         for i = 1 to t.r - 1 do
           if ex_before slot.ex.(!m) slot.ex.(i) then m := i
         done;
         slot.wex <- !m
       end);
      if ex_before row slot.ex.(slot.wex) then begin
        Array.blit row 0 slot.ex.(slot.wex) 0 stride;
        slot.wex <- -1
      end
    end

let fold_in t row =
  let slot = slot_for t (row.(f_arrival) / t.window_ns) in
  slot.count <- slot.count + 1;
  for i = 0 to nstages - 1 do
    let d = row.(f_dwell + i) in
    if d <> 0 then begin
      slot.sblame.(i) <- slot.sblame.(i) + d;
      t.blame.(i) <- t.blame.(i) + d
    end
  done;
  offer_top t slot row;
  offer_ex t slot row;
  if (not t.has_worst) || slower row t.worst then begin
    Array.blit row 0 t.worst 0 stride;
    t.has_worst <- true
  end

let finish t ~now =
  if t.inflight then begin
    t.inflight <- false;
    let s = t.scratch in
    let total = now - s.(f_arrival) in
    s.(f_total) <- (if total < 0 then 0 else total);
    if t.bound > 0 && s.(f_flags) land flag_warm = 0 && s.(f_accesses) > t.bound then begin
      s.(f_flags) <- s.(f_flags) lor flag_over;
      t.flagged <- t.flagged + 1
    end;
    s.(f_hash) <- exhash t.seed s.(f_id);
    t.completed <- t.completed + 1;
    fold_in t s;
    Histogram.observe_ex t.h s.(f_total) ~ex:s.(f_id)
  end

let interfere t stage ~now ns =
  if ns > 0 then begin
    let slot = slot_for t (now / t.window_ns) in
    let i = stage_index stage in
    slot.sblame.(i) <- slot.sblame.(i) + ns;
    t.blame.(i) <- t.blame.(i) + ns
  end

(* ----- views ----- *)

type view = {
  id : int;
  arrival_ns : int;
  total_ns : int;
  retries : int;
  accesses : int;
  warm : bool;
  over_bound : bool;
  dwells : int array;
}

type window = {
  wid : int;
  count : int;
  blame : int array;
  slowest : view list;
  exemplars : view list;
}

type snap = {
  windows : window list;
  worst : view option;
  completed : int;
  flagged : int;
  blame : int array;
}

let view_of_row row =
  {
    id = row.(f_id);
    arrival_ns = row.(f_arrival);
    total_ns = row.(f_total);
    retries = row.(f_retries);
    accesses = row.(f_accesses);
    warm = row.(f_flags) land flag_warm <> 0;
    over_bound = row.(f_flags) land flag_over <> 0;
    dwells = Array.init nstages (fun i -> row.(f_dwell + i));
  }

let rows n arr = List.init n (fun i -> arr.(i))

let snapshot t : snap =
  let windows =
    Array.to_list t.slots
    |> List.filter (fun (s : slot) -> s.wid >= 0)
    |> List.sort (fun (a : slot) b -> compare a.wid b.wid)
    |> List.map (fun (s : slot) ->
           {
             wid = s.wid;
             count = s.count;
             blame = Array.copy s.sblame;
             slowest =
               rows s.ntop s.top
               |> List.sort (fun a b -> if slower a b then -1 else 1)
               |> List.map view_of_row;
             exemplars =
               rows s.nex s.ex
               |> List.sort (fun a b -> compare a.(f_id) b.(f_id))
               |> List.map view_of_row;
           })
  in
  {
    windows;
    worst = (if t.has_worst then Some (view_of_row t.worst) else None);
    completed = t.completed;
    flagged = t.flagged;
    blame = Array.copy t.blame;
  }

let merge ~(into : t) (src : t) =
  if into.windows <> src.windows || into.window_ns <> src.window_ns then
    invalid_arg "Journey.merge: window geometry differs";
  Histogram.merge ~into:into.h src.h;
  for i = 0 to nstages - 1 do
    into.blame.(i) <- into.blame.(i) + src.blame.(i)
  done;
  into.completed <- into.completed + src.completed;
  into.flagged <- into.flagged + src.flagged;
  if src.has_worst && ((not into.has_worst) || slower src.worst into.worst) then begin
    Array.blit src.worst 0 into.worst 0 stride;
    into.has_worst <- true
  end;
  Array.iter
    (fun (s : slot) ->
      if s.wid >= 0 then begin
        let d = into.slots.(s.wid mod into.windows) in
        if s.wid >= d.wid then begin
          let d = slot_for into s.wid in
          d.count <- d.count + s.count;
          for i = 0 to nstages - 1 do
            d.sblame.(i) <- d.sblame.(i) + s.sblame.(i)
          done;
          for i = 0 to s.ntop - 1 do
            offer_top into d s.top.(i)
          done;
          for i = 0 to s.nex - 1 do
            offer_ex into d s.ex.(i)
          done
        end
      end)
    src.slots

let all_rows t =
  let acc = ref [] in
  Array.iter
    (fun (s : slot) ->
      if s.wid >= 0 then begin
        for i = 0 to s.ntop - 1 do
          acc := s.top.(i) :: !acc
        done;
        for i = 0 to s.nex - 1 do
          acc := s.ex.(i) :: !acc
        done
      end)
    t.slots;
  if t.has_worst then acc := t.worst :: !acc;
  !acc

let top ?n t =
  let n = match n with Some n -> n | None -> t.k in
  let seen = Hashtbl.create 16 in
  all_rows t
  |> List.sort (fun a b -> if slower a b then -1 else 1)
  |> List.filter (fun r ->
         if Hashtbl.mem seen r.(f_id) then false
         else begin
           Hashtbl.add seen r.(f_id) ();
           true
         end)
  |> List.filteri (fun i _ -> i < n)
  |> List.map view_of_row

let find t ~id =
  List.find_opt (fun r -> r.(f_id) = id) (all_rows t) |> Option.map view_of_row

let hist t = t.h

let top_blame_stage (s : snap) =
  let m = ref (-1) and mv = ref 0 in
  Array.iteri
    (fun i v ->
      if v > !mv then begin
        m := i;
        mv := v
      end)
    s.blame;
  if !m < 0 then None else Some (stages.(!m), !mv)

let unexplained_tail ?(factor = 100.) t =
  let hs = Histogram.snap t.h in
  if hs.count = 0 then None
  else begin
    let p99 = hs.p99 and p100 = hs.p100 in
    if float_of_int p100 <= factor *. float_of_int p99 then None
    else begin
      let explained =
        List.exists (fun r -> r.(f_total) >= p100) (all_rows t)
      in
      if explained then None else Some (p100, p99)
    end
  end

(* ----- rendering ----- *)

let pp_ns ppf ns =
  if ns >= 1_000_000_000 then Format.fprintf ppf "%.2fs" (float_of_int ns /. 1e9)
  else if ns >= 1_000_000 then Format.fprintf ppf "%.1fms" (float_of_int ns /. 1e6)
  else if ns >= 1_000 then Format.fprintf ppf "%.1fus" (float_of_int ns /. 1e3)
  else Format.fprintf ppf "%dns" ns

let pp_waterfall ppf (v : view) =
  Format.fprintf ppf "journey #%d  total %a  %s  retries %d  accesses %d%s@." v.id pp_ns
    v.total_ns
    (if v.warm then "warm" else "cold")
    v.retries v.accesses
    (if v.over_bound then "  OVER-BOUND" else "");
  let width = 28 in
  let denom = max 1 v.total_ns in
  Array.iteri
    (fun i d ->
      if d > 0 then begin
        let filled =
          min width (max 1 (int_of_float (float_of_int d /. float_of_int denom *. float_of_int width)))
        in
        Format.fprintf ppf "  %-9s |%s%s| %a  %4.1f%%@." (stage_name stages.(i))
          (String.make filled '#')
          (String.make (width - filled) ' ')
          pp_ns d
          (100. *. float_of_int d /. float_of_int denom)
      end)
    v.dwells;
  let accounted = Array.fold_left ( + ) 0 v.dwells in
  if accounted < v.total_ns && v.total_ns > 0 then
    Format.fprintf ppf "  %-9s |%s| %a  %4.1f%%@." "(other)" (String.make width ' ')
      pp_ns (v.total_ns - accounted)
      (100. *. float_of_int (v.total_ns - accounted) /. float_of_int denom)

(* ----- portable text form: "renaming.journeys/v1" -----

   Header, all-time blame (b) and worst (W), then per window: a [w]
   line (wid, count, blame) followed by its [t]op and e[x]emplar rows.
   Row lines: wid id arrival total retries accesses flags dwells. *)

let row_fields row =
  let b = Buffer.create 64 in
  Buffer.add_string b
    (Printf.sprintf "%d %d %d %d %d %d" row.(f_id) row.(f_arrival) row.(f_total)
       row.(f_retries) row.(f_accesses) row.(f_flags));
  for i = 0 to nstages - 1 do
    Buffer.add_string b (Printf.sprintf " %d" row.(f_dwell + i))
  done;
  Buffer.contents b

let to_string (t : t) =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "renaming.journeys/v1 windows=%d window_ns=%d k=%d ex=%d seed=%d bound=%d \
        completed=%d flagged=%d\n"
       t.windows t.window_ns t.k t.r t.seed t.bound t.completed t.flagged);
  Buffer.add_string b "b";
  Array.iter (fun v -> Buffer.add_string b (Printf.sprintf " %d" v)) t.blame;
  Buffer.add_char b '\n';
  if t.has_worst then Buffer.add_string b (Printf.sprintf "W %s\n" (row_fields t.worst));
  Array.to_list t.slots
  |> List.filter (fun (s : slot) -> s.wid >= 0)
  |> List.sort (fun (a : slot) b -> compare a.wid b.wid)
  |> List.iter (fun (s : slot) ->
         Buffer.add_string b (Printf.sprintf "w %d %d" s.wid s.count);
         Array.iter (fun v -> Buffer.add_string b (Printf.sprintf " %d" v)) s.sblame;
         Buffer.add_char b '\n';
         for i = 0 to s.ntop - 1 do
           Buffer.add_string b (Printf.sprintf "t %d %s\n" s.wid (row_fields s.top.(i)))
         done;
         for i = 0 to s.nex - 1 do
           Buffer.add_string b (Printf.sprintf "x %d %s\n" s.wid (row_fields s.ex.(i)))
         done);
  Buffer.contents b

let of_string str =
  let ints l = List.map int_of_string_opt l in
  let all_some l =
    if List.for_all Option.is_some l then Some (List.map Option.get l) else None
  in
  let lines = String.split_on_char '\n' str |> List.filter (fun l -> l <> "") in
  match lines with
  | [] -> Error "empty journeys document"
  | header :: rest -> (
      match String.split_on_char ' ' header with
      | magic :: kvs when magic = "renaming.journeys/v1" -> (
          let kv = Hashtbl.create 8 in
          List.iter
            (fun s ->
              match String.index_opt s '=' with
              | Some i ->
                  Hashtbl.replace kv (String.sub s 0 i)
                    (int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)))
              | None -> ())
            kvs;
          let get k d = match Hashtbl.find_opt kv k with Some (Some v) -> v | _ -> d in
          match
            ( Hashtbl.find_opt kv "windows",
              Hashtbl.find_opt kv "window_ns",
              Hashtbl.find_opt kv "k" )
          with
          | Some (Some windows), Some (Some window_ns), Some (Some k) -> (
              let t =
                create ~windows ~window_ns ~k ~exemplars:(get "ex" 4) ~seed:(get "seed" 1)
                  ~bound:(get "bound" 0) ()
              in
              t.completed <- get "completed" 0;
              t.flagged <- get "flagged" 0;
              let err = ref None in
              let parse_row fields =
                match all_some (ints fields) with
                | Some vs when List.length vs = 6 + nstages ->
                    let row = Array.make stride 0 in
                    List.iteri
                      (fun i v ->
                        if i < 6 then row.(i) <- v else row.(f_dwell + i - 6) <- v)
                      vs;
                    row.(f_hash) <- exhash t.seed row.(f_id);
                    Some row
                | _ -> None
              in
              List.iter
                (fun line ->
                  if !err = None then
                    match String.split_on_char ' ' line with
                    | "b" :: vs -> (
                        match all_some (ints vs) with
                        | Some vs when List.length vs = nstages ->
                            List.iteri (fun i v -> t.blame.(i) <- v) vs
                        | _ -> err := Some ("bad blame line: " ^ line))
                    | "W" :: fields -> (
                        match parse_row fields with
                        | Some row ->
                            Array.blit row 0 t.worst 0 stride;
                            t.has_worst <- true;
                            Histogram.observe_ex t.h row.(f_total) ~ex:row.(f_id)
                        | None -> err := Some ("bad worst line: " ^ line))
                    | "w" :: wid :: count :: vs -> (
                        match
                          (int_of_string_opt wid, int_of_string_opt count, all_some (ints vs))
                        with
                        | Some wid, Some count, Some vs
                          when wid >= 0 && List.length vs = nstages ->
                            let s = slot_for t wid in
                            s.count <- count;
                            List.iteri (fun i v -> s.sblame.(i) <- v) vs
                        | _ -> err := Some ("bad window line: " ^ line))
                    | kind :: wid :: fields when kind = "t" || kind = "x" -> (
                        match (int_of_string_opt wid, parse_row fields) with
                        | Some wid, Some row when wid >= 0 ->
                            let s = slot_for t wid in
                            if kind = "t" then begin
                              offer_top t s row;
                              Histogram.observe_ex t.h row.(f_total) ~ex:row.(f_id)
                            end
                            else offer_ex t s row
                        | _ -> err := Some ("bad journey line: " ^ line))
                    | _ -> err := Some ("unrecognised line: " ^ line))
                rest;
              match !err with Some e -> Error e | None -> Ok t)
          | _ -> Error "missing windows/window_ns/k in header")
      | _ -> Error "not a renaming.journeys/v1 document")
