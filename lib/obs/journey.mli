(** Per-request journeys: allocation-free stage tracing with
    tail-based sampling and per-stage blame attribution.

    A {e journey} follows one request end-to-end through the name
    server: arrival, backoff/retry waits, admission, claim CAS,
    protocol acquire (with its shared-access count), grant, and the
    release half (release, pending, drain, retire).  Each client
    domain owns one single-writer {!t}; the in-flight journey is a
    scratch row of a preallocated flat int arena (same pattern as the
    span ring and access tallies from the telemetry PR), so stamping
    is a handful of plain int stores — no allocation, no atomics.

    On completion a journey is folded into:

    - a windowed {e tail reservoir}: per absolute window id the K
      slowest complete journeys (total order: slower first, then
      lower id) plus R seeded random exemplars (kept by minimum
      deterministic hash of [(seed, id)], so merging is commutative);
    - per-window and all-time {e blame} sums: total nanoseconds spent
      per stage, the raw material for "where does the tail go";
    - a totals {!Histogram} whose buckets carry journey-id exemplar
      links, so any percentile — p100 included — can be traced back
      to a concrete journey.

    Recorders merge at join ({!merge}): commutative and associative
    over the same window geometry, like {!Timeseries}. *)

(** The stages a request can spend time in.  The first five are the
    acquire half, stamped per journey; [Release]/[Pending] are the
    release half; [Drain]/[Retire]/[Reclaim] are mostly {e
    interference} — work a domain performs on behalf of others'
    tokens, attributed to the window via {!interfere}. *)
type stage =
  | Backoff  (** Policy retry waits between attempts. *)
  | Admission  (** Spinning for an admission slot (cap busy). *)
  | Claim  (** Claim-table CAS contention. *)
  | Drain  (** Draining pending releases (own admit or interference). *)
  | Acquire  (** Protocol acquire: the paper-bounded accesses. *)
  | Release  (** Fence transition on the release path. *)
  | Pending  (** Enqueueing onto the pending ring. *)
  | Retire  (** Slot retirement fencing. *)
  | Reclaim  (** Reclaimer-seat scans and lease takeover. *)

val nstages : int
val stages : stage array
val stage_index : stage -> int
val stage_name : stage -> string
val stage_of_name : string -> stage option

type t
(** A single-writer journey recorder (one per client domain). *)

val create :
  ?windows:int ->
  ?window_ns:int ->
  ?k:int ->
  ?exemplars:int ->
  ?seed:int ->
  ?bound:int ->
  unit ->
  t
(** [windows] retained window slots (default [8]); [window_ns] window
    width (default [5_000_000]); [k] slowest journeys kept per window
    (default [8]); [exemplars] random exemplars kept per window
    (default [4]); [seed] drives exemplar selection deterministically;
    [bound] is the backend's paper access bound — a cold journey whose
    acquire stage exceeds it is flagged ([0] disables). *)

(** {1 Hot path} — all allocation-free plain int stores. *)

val start : t -> id:int -> now:int -> unit
(** Begin the journey for request [id] (ids are positive; [0] is
    reserved for "no exemplar") arriving at [now] ns. *)

val dwell : t -> stage -> int -> unit
(** Add [ns] to the in-flight journey's dwell for [stage]. *)

val retry : t -> unit
(** Count one backoff/retry round on the in-flight journey. *)

val accesses : t -> int -> unit
(** Record the protocol acquire's shared-access count. *)

val warm : t -> unit
(** Mark the in-flight journey as a warm-cache hit. *)

val finish : t -> now:int -> unit
(** Complete the in-flight journey: total latency is [now] minus the
    arrival stamp; the journey is offered to the window reservoir,
    blame sums, the all-time-worst slot, and the totals histogram.
    A no-op if no journey is in flight. *)

val active : t -> bool

val interfere : t -> stage -> now:int -> int -> unit
(** Attribute [ns] of [stage] work done at [now] on behalf of {e
    other} requests (drain walking, retirement, reclaimer scans) to
    the window's blame profile, outside any journey. *)

(** {1 Views} *)

type view = {
  id : int;
  arrival_ns : int;
  total_ns : int;
  retries : int;
  accesses : int;
  warm : bool;
  over_bound : bool;  (** Acquire accesses exceeded the paper bound. *)
  dwells : int array;  (** ns per stage, indexed by {!stage_index}. *)
}

type window = {
  wid : int;  (** Absolute window id: arrival / window_ns. *)
  count : int;
  blame : int array;  (** ns per stage (journeys + interference). *)
  slowest : view list;  (** Slowest first. *)
  exemplars : view list;
}

type snap = {
  windows : window list;  (** Ascending wid. *)
  worst : view option;  (** All-time slowest; never rotates out. *)
  completed : int;
  flagged : int;  (** Journeys flagged over the access bound. *)
  blame : int array;  (** All-time ns per stage. *)
}

val snapshot : t -> snap
val merge : into:t -> t -> unit

val top : ?n:int -> t -> view list
(** The [n] (default [k]) slowest retained journeys across all
    windows and the all-time-worst slot, deduplicated by id. *)

val find : t -> id:int -> view option
(** Look a retained journey up by id (for histogram exemplar links). *)

val hist : t -> Histogram.t
(** The totals histogram (exemplar-linked); [Histogram.percentile]
    over it yields [tail_p999_ns] and friends. *)

val top_blame_stage : snap -> (stage * int) option
(** The stage with the largest all-time blame, with its ns. *)

val unexplained_tail : ?factor:float -> t -> (int * int) option
(** [Some (p100, p99)] when the histogram's exact maximum exceeds
    [factor] (default [100.]) times its p99 {e and} no retained
    journey reaches that maximum — an observed tail the reservoir
    cannot explain.  [None] means every extreme tail has a journey. *)

val pp_waterfall : Format.formatter -> view -> unit
(** A per-stage waterfall: one bar per nonzero stage, scaled to the
    journey's total. *)

(** {1 Portable text form} *)

val to_string : t -> string
(** The ["renaming.journeys/v1"] document: header (geometry, seed,
    bound), all-time blame and worst, then per-window blame and
    reservoir lines. *)

val of_string : string -> (t, string) result
(** Parse a document produced by {!to_string}.  The totals histogram
    is rebuilt from the retained journeys only (the full population
    is not serialized). *)
