(* 8 sub-buckets per octave: indices 0..15 are exact (value = index),
   index 16 + (o-4)*8 + s holds [2^o + s*2^(o-3), 2^o + (s+1)*2^(o-3)),
   for octaves o = 4..61 (covering all of max_int). *)

let octaves = 62
let nbuckets = 16 + ((octaves - 4) * 8)

type snap = {
  count : int;
  sum : int;
  mean : float;
  min : int;
  p50 : int;
  p95 : int;
  p99 : int;
  p100 : int;
  buckets : (int * int) list;
}

type t = {
  buckets : int array;
  (* exemplar links: per bucket, the id of one journey (or other
     correlation key) that landed there; 0 = none.  [max_ex] tracks an
     exemplar for the exact maximum so p100 is always explainable. *)
  exemplars : int array;
  mutable max_ex : int;
  mutable count : int;
  mutable sum : int;
  mutable vmin : int;
  mutable vmax : int;
}

let create () =
  {
    buckets = Array.make nbuckets 0;
    exemplars = Array.make nbuckets 0;
    max_ex = 0;
    count = 0;
    sum = 0;
    vmin = max_int;
    vmax = 0;
  }

let floor_log2 v =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v lsr 1) in
  go 0 v

let index v =
  if v <= 0 then 0
  else if v < 16 then v
  else
    let o = floor_log2 v in
    let s = (v - (1 lsl o)) lsr (o - 3) in
    16 + ((o - 4) * 8) + s

let upper_edge i =
  if i < 16 then i
  else
    let b = i - 16 in
    let o = 4 + (b / 8) in
    let s = b mod 8 in
    (1 lsl o) + ((s + 1) lsl (o - 3)) - 1

let observe t v =
  let v = max 0 v in
  t.buckets.(index v) <- t.buckets.(index v) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v

let observe_ex t v ~ex =
  let v = max 0 v in
  let i = index v in
  t.buckets.(i) <- t.buckets.(i) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v;
  if ex > 0 then begin
    t.exemplars.(i) <- ex;
    (* after the update vmax >= v, so equality means v is the (tied)
       maximum: its exemplar explains p100 *)
    if v >= t.vmax then t.max_ex <- ex
  end

let exemplar t v =
  let ex = t.exemplars.(index (max 0 v)) in
  if ex = 0 then None else Some ex

let max_exemplar t = if t.max_ex = 0 then None else Some t.max_ex

let count t = t.count

let percentile t q =
  (* The population is derived from the bucket masses, not [t.count]:
     a mid-run snapshot of a live shard (or a merge of one) can read
     [count] ahead of the bucket array — plain mutable fields carry no
     cross-domain ordering — and a rank computed from the larger count
     would fall off the end of the scan and silently report [vmax] for
     every quantile.  Bucket mass is consistent with the scan itself:
     whatever prefix of observations the snapshot caught, the result
     is an honest quantile of that prefix, and at quiescence (after a
     join) mass equals [count] exactly. *)
  let total = Array.fold_left ( + ) 0 t.buckets in
  if total = 0 then 0
  else begin
    let rank = max 1 (int_of_float (Float.of_int total *. q +. 0.5)) in
    let rank = min rank total in
    let cum = ref 0 and result = ref t.vmax in
    (try
       for i = 0 to nbuckets - 1 do
         cum := !cum + t.buckets.(i);
         if !cum >= rank then begin
           result := min (upper_edge i) t.vmax;
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

let nonzero_buckets t =
  let acc = ref [] in
  for i = nbuckets - 1 downto 0 do
    if t.buckets.(i) > 0 then acc := (upper_edge i, t.buckets.(i)) :: !acc
  done;
  !acc

let snap t : snap =
  {
    buckets = nonzero_buckets t;
    count = t.count;
    sum = t.sum;
    mean = (if t.count = 0 then 0. else float_of_int t.sum /. float_of_int t.count);
    min = (if t.count = 0 then 0 else t.vmin);
    p50 = percentile t 0.5;
    p95 = percentile t 0.95;
    p99 = percentile t 0.99;
    p100 = t.vmax;
  }

let reset t =
  Array.fill t.buckets 0 nbuckets 0;
  Array.fill t.exemplars 0 nbuckets 0;
  t.max_ex <- 0;
  t.count <- 0;
  t.sum <- 0;
  t.vmin <- max_int;
  t.vmax <- 0

let merge ~into src =
  for i = 0 to nbuckets - 1 do
    into.buckets.(i) <- into.buckets.(i) + src.buckets.(i);
    (* max keeps exemplar resolution symmetric: merging a into b and b
       into a retain the same link per bucket *)
    if src.exemplars.(i) > into.exemplars.(i) then
      into.exemplars.(i) <- src.exemplars.(i)
  done;
  into.count <- into.count + src.count;
  into.sum <- into.sum + src.sum;
  if src.vmin < into.vmin then into.vmin <- src.vmin;
  if src.vmax > into.vmax then begin
    into.vmax <- src.vmax;
    if src.max_ex <> 0 then into.max_ex <- src.max_ex
  end
  else if src.vmax = into.vmax && src.max_ex > into.max_ex then
    into.max_ex <- src.max_ex
