(* Chrome trace-event JSON (the format Perfetto's UI and chrome://tracing
   both load).  One emitted "process" per source pid (tid = pid), with:

     - async "b"/"e" pairs for splitter / mutex occupancy intervals
       (async events tolerate the non-nested interleavings FILTER
       produces when a process climbs several trees at once),
     - "B"/"E" duration slices for name-holding intervals (per thread
       these nest trivially),
     - "i" instants for mutex checks, splitter direction assignment
       and marks.

   Timestamps are the ring's clocks (shared-access steps) expressed in
   microseconds; "displayTimeUnit" keeps Perfetto from collapsing
   them. *)

let esc s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let cat_of = function Loc.Splitter _ -> "splitter" | Loc.Mutex _ -> "mutex"

let to_chrome_json ?(counters = []) ?(journeys = []) (records : Flight.record list) =
  let buf = Buffer.create 4096 in
  let first = ref true in
  let event fmt =
    Printf.ksprintf
      (fun s ->
        if !first then first := false else Buffer.add_string buf ",\n";
        Buffer.add_string buf s)
      fmt
  in
  Buffer.add_string buf "{\"traceEvents\":[\n";
  (* thread metadata, one per pid, in first-appearance order *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let pid = r.Flight.pid in
      if not (Hashtbl.mem seen pid) then begin
        Hashtbl.add seen pid ();
        event
          {|{"ph":"M","name":"thread_name","pid":0,"tid":%d,"args":{"name":"process %d"}}|}
          pid pid
      end)
    records;
  let async_id loc pid = Printf.sprintf "%x.%d" (Loc.encode loc) pid in
  List.iter
    (fun { Flight.clock; pid; event = ev } ->
      match ev with
      | Flight.Enter loc ->
          event {|{"ph":"b","cat":"%s","id":"%s","name":"%s","ts":%d,"pid":0,"tid":%d}|}
            (cat_of loc) (async_id loc pid) (esc (Loc.to_string loc)) clock pid
      | Flight.Release loc ->
          event {|{"ph":"e","cat":"%s","id":"%s","name":"%s","ts":%d,"pid":0,"tid":%d}|}
            (cat_of loc) (async_id loc pid) (esc (Loc.to_string loc)) clock pid
      | Flight.Exit (loc, dir) ->
          event
            {|{"ph":"i","s":"t","name":"%s dir %+d","ts":%d,"pid":0,"tid":%d,"args":{"dir":%d}}|}
            (esc (Loc.to_string loc)) dir clock pid dir
      | Flight.Check (loc, ok) ->
          event
            {|{"ph":"i","s":"t","name":"%s check","ts":%d,"pid":0,"tid":%d,"args":{"ok":%b}}|}
            (esc (Loc.to_string loc)) clock pid ok
      | Flight.Acquired n ->
          event {|{"ph":"B","name":"hold name %d","ts":%d,"pid":0,"tid":%d,"args":{"name":%d}}|}
            n clock pid n
      | Flight.Released n ->
          event {|{"ph":"E","name":"hold name %d","ts":%d,"pid":0,"tid":%d}|} n clock pid
      | Flight.Mark (s, v) ->
          event {|{"ph":"i","s":"t","name":"%s","ts":%d,"pid":0,"tid":%d,"args":{"value":%d}}|}
            (esc s) clock pid v)
    records;
  (* "C" counter tracks (one per named series) render as filled area
     charts next to the span tracks — the sampler/rollup view *)
  List.iter
    (fun (name, points) ->
      List.iter
        (fun (ts, v) ->
          event
            {|{"ph":"C","name":"%s","ts":%d,"pid":0,"args":{"value":%g}}|}
            (esc name) ts v)
        points)
    counters;
  (* Sampled journeys render as a dedicated "journeys" process: one
     lane per journey, the whole request as an "X" slice with its
     stage dwells laid end-to-end beneath it (dwells are durations,
     not timestamped, so the waterfall is order-of-stage, not
     order-of-occurrence), tied together by an s/t/f flow chain keyed
     by journey id.  Arrivals are wall-clock ns; rebase to the
     earliest sampled arrival so the lanes start near the origin. *)
  (match journeys with
  | [] -> ()
  | js ->
      event
        {|{"ph":"M","name":"process_name","pid":1,"args":{"name":"journeys"}}|};
      let base =
        List.fold_left
          (fun m (v : Journey.view) -> min m v.Journey.arrival_ns)
          max_int js
      in
      List.iteri
        (fun lane (v : Journey.view) ->
          let id = v.Journey.id in
          let ts0 = (v.Journey.arrival_ns - base) / 1000 in
          let dur = v.Journey.total_ns / 1000 in
          event
            {|{"ph":"M","name":"thread_name","pid":1,"tid":%d,"args":{"name":"journey #%d"}}|}
            lane id;
          event
            {|{"ph":"X","cat":"journey","name":"journey #%d","ts":%d,"dur":%d,"pid":1,"tid":%d,"args":{"retries":%d,"accesses":%d,"warm":%b,"over_bound":%b}}|}
            id ts0 dur lane v.Journey.retries v.Journey.accesses
            v.Journey.warm v.Journey.over_bound;
          event
            {|{"ph":"s","cat":"journey","id":%d,"name":"journey","ts":%d,"pid":1,"tid":%d}|}
            id ts0 lane;
          let cursor = ref ts0 in
          Array.iteri
            (fun i dwell ->
              if dwell > 0 then begin
                let sd = dwell / 1000 in
                event
                  {|{"ph":"X","cat":"journey.stage","name":"%s","ts":%d,"dur":%d,"pid":1,"tid":%d}|}
                  (esc (Journey.stage_name Journey.stages.(i)))
                  !cursor sd lane;
                event
                  {|{"ph":"t","cat":"journey","id":%d,"name":"journey","ts":%d,"pid":1,"tid":%d}|}
                  id !cursor lane;
                cursor := !cursor + sd
              end)
            v.Journey.dwells;
          event
            {|{"ph":"f","bp":"e","cat":"journey","id":%d,"name":"journey","ts":%d,"pid":1,"tid":%d}|}
            id (ts0 + dur) lane)
        js);
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\",";
  Buffer.add_string buf
    (Printf.sprintf "\"otherData\":{\"schema\":\"renaming.flight/v1\",\"records\":%d}}"
       (List.length records));
  Buffer.contents buf
