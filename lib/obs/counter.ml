type t = { mutable n : int }

let create () = { n = 0 }
let incr t = t.n <- t.n + 1
let add t v = t.n <- t.n + v
let get t = t.n
let reset t = t.n <- 0
let merge ~into src = into.n <- into.n + src.n
