(** The structural flight recorder: a fixed-capacity binary ring of
    located events.

    Records are packed four ints wide (clock, pid+kind, location code,
    argument) into one flat array — recording is a handful of stores
    and never allocates (note strings are interned once).  When full,
    the oldest record is overwritten and {!dropped} counts the loss.

    A ring has a {e single writer}: the simulator's monitor thread, or
    one OS domain.  Per-domain rings are concatenated with {!merge}
    after the join; their clocks are each domain's own access count,
    so cross-pid ordering is only meaningful in simulator rings (where
    the clock is the global step counter). *)

type event =
  | Enter of Loc.t
  | Exit of Loc.t * int  (** Splitter direction assigned: [-1], [0], [1]. *)
  | Check of Loc.t * bool  (** Mutex check verdict. *)
  | Release of Loc.t
  | Acquired of int  (** Destination name granted. *)
  | Released of int  (** Destination name given back. *)
  | Mark of string * int  (** Free-form note (fault/lease events). *)

type record = { clock : int; pid : int; event : event }

type t

val create : ?capacity:int -> unit -> t
(** Ring with room for [capacity] records (default [65536]).
    @raise Invalid_argument when [capacity < 1]. *)

val record : t -> clock:int -> pid:int -> event -> unit
(** Append one record, overwriting the oldest when full.
    @raise Invalid_argument on a negative [pid], or when a {!Loc.t}
    field exceeds the {!Loc.encode} widths. *)

val probe : t -> pid:int -> clock:(unit -> int) -> Probe.t
(** A probe recording into the ring on behalf of [pid], stamping each
    event with [clock ()].  Install with [Store.probed]. *)

val capacity : t -> int
val length : t -> int

val dropped : t -> int
(** Records lost to overwriting (plus losses carried over by
    {!merge}). *)

val total : t -> int
(** [length + dropped]. *)

val clear : t -> unit

val iter : (record -> unit) -> t -> unit
(** Oldest first. *)

val items : t -> record list
(** Oldest first. *)

val merge : into:t -> t -> unit
(** Append all of the source's records (and its drop count) to
    [into].  Used to concatenate per-domain rings after the join. *)

(** {1 Portable text form} *)

val to_string : t -> string
(** The ["renaming.flight/v1"] document: a header line carrying the
    drop count, interned note strings, then one numeric line per
    record. *)

val of_string : string -> (t, string) result
(** Parse a document produced by {!to_string}. *)
