(** Polls cheap read-only gauges into {!Timeseries} on a schedule.

    Sources are [unit -> int] probes over someone else's state (e.g.
    {!Server.probe_shard} readouts) — the sampler only ever {e reads}
    through them, so attaching one to a hot structure adds zero shared
    writes to that structure's fast paths.  The clock and pause are
    injected thunks, keeping [lib/obs] free of [Unix] and letting
    tests drive polls deterministically via {!poll}.

    Single-writer discipline: whichever loop calls [poll] — the
    caller, or the domain spawned by {!start} — owns every series and
    the optional registry shard.  Give {!create} a shard of its own;
    sharing one with another writer breaks the registry's
    one-writer-per-shard contract. *)

type source = { name : string; read : unit -> int }
type t

val create :
  ?windows:int -> ?shard:Registry.shard -> window_ns:int -> source list -> t
(** One [~hist:false] series of [?windows] (default 64) windows per
    source.  With [?shard], each poll also mirrors the latest value
    into a ["sampler.<name>"] gauge so exports see live levels and
    high-water marks. *)

val poll : t -> now:int -> unit
(** Read every source once into the window containing [now].  Call
    from a single loop only. *)

val series : t -> (string * Timeseries.t) list
val ticks : t -> int

(** {1 Background polling} *)

type handle

val start : t -> now_ns:(unit -> int) -> sleep:(unit -> unit) -> handle
(** Spawn a domain that repeats [poll t ~now:(now_ns ()); sleep ()]
    until {!stop}, then polls one final time (so even sub-interval
    runs get a sample).  The sampler must not be polled elsewhere
    while the handle is live. *)

val stop : handle -> unit
(** Signal and join the polling domain. *)
