(** Log-bucketed histograms of non-negative integer measurements
    (shared-access costs, hold times, latencies in arbitrary units).

    Buckets are exact for values below 16 and log-spaced with 8
    sub-buckets per power of two beyond, so quantile estimates carry at
    most 12.5% relative error.  [min], [max] (and hence [p100]) are
    tracked exactly on the side: the paper's worst-case bounds are
    checked against the {e exact} maximum, never a bucket edge.

    Same single-writer-per-shard discipline as {!Counter}; [merge] is
    element-wise and exact. *)

type t

type snap = {
  count : int;
  sum : int;
  mean : float;
  min : int;  (** Exact; [0] when empty. *)
  p50 : int;  (** Bucket-edge estimate (≤ 12.5% high). *)
  p95 : int;
  p99 : int;
  p100 : int;  (** Exact maximum; [0] when empty. *)
  buckets : (int * int) list;
      (** Non-empty buckets as [(upper_edge, count)], ascending — the
          raw material for cumulative (Prometheus-style) exposition. *)
}

val create : unit -> t

val observe : t -> int -> unit
(** Negative values are clamped into the zero bucket. *)

val observe_ex : t -> int -> ex:int -> unit
(** {!observe}, additionally linking the landing bucket to exemplar
    [ex] (a journey id; [0] means none and leaves links untouched).
    The latest exemplar per bucket wins; an observation that sets or
    ties the exact maximum also becomes the p100 exemplar. *)

val exemplar : t -> int -> int option
(** The exemplar linked to the bucket that value would land in. *)

val max_exemplar : t -> int option
(** The exemplar explaining [p100] (the exact maximum), if any. *)

val count : t -> int
val snap : t -> snap
val percentile : t -> float -> int
(** Nearest-rank quantile estimate for [q ∈ (0, 1]]; the empty
    histogram yields [0].  The rank is taken over the bucket masses
    (not the [count] field), so a snapshot merged from {e live}
    many-writer shards mid-run still reports an honest quantile of
    the observation prefix it caught — it can never overshoot to
    [p100] on a torn [count] read.  After merging quiescent shards
    the result is exactly what a single histogram fed every
    observation would report. *)

val reset : t -> unit
val merge : into:t -> t -> unit

(** {1 Bucket geometry} — shared with {!Timeseries}, which reuses the
    same log-bucket scheme for its per-window deltas. *)

val nbuckets : int
val index : int -> int
(** Bucket index for a value (negatives clamp to bucket 0). *)

val upper_edge : int -> int
(** Largest value a bucket admits. *)
