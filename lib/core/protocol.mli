(** The long-lived renaming interface.

    A protocol instance renames processes with source names in
    [{0, …, S-1}] (carried by [ops.pid]) to destination names in
    [{0, …, D-1}], assuming at most [k] processes concurrently request
    or hold names.  The correctness condition (§2 of the paper):
    distinct processes never hold the same name concurrently.

    [get_name] returns a {e lease} — the bookkeeping needed to undo the
    acquisition (splitters entered, mutex blocks held, …).  The caller
    must pass the lease to [release_name]; per the paper's
    operation-pair discipline, a process alternates [get_name] and
    [release_name] and never holds two leases at once. *)

module type S = sig
  type t
  (** A protocol instance: its shared registers live in the layout it
      was created from; one value is shared by all processes. *)

  type lease

  val name_space : t -> int
  (** The size [D] of the destination name space. *)

  val get_name : t -> Shared_mem.Store.ops -> lease
  val name_of : t -> lease -> int
  (** The destination name held by the lease, in [\[0, name_space)]. *)

  val release_name : t -> Shared_mem.Store.ops -> lease -> unit

  val reset_footprint : (t -> Shared_mem.Store.ops -> lease -> unit) option
  (** Crash-recovery hook: clear every shared-register trace a {e dead}
      holder of [lease] left behind (its [LAST] claims, mutex presence
      bits, grid presence flags), returning the lease's name to
      service.  [None] when the protocol has no recovery path.

      The caller (a reclaimer, see [lib/recovery]) must pass [ops] with
      [pid] set to the dead process's source name, and must guarantee
      the holder takes no further step: unlike [release_name] this may
      be executed by a {e different} process on the corpse's behalf, so
      it reconstructs ownership from the current register contents
      (e.g. dropping a presence bit while preserving the persistent
      turn bit) rather than trusting lease-local state alone. *)
end

type packed = Packed : (module S with type t = 'a) * 'a -> packed
(** A protocol instance with its module, for heterogeneous pipelines. *)

(** Dynamically-typed protocol values: [Any.t] erases the instance and
    lease types so that stages chosen at run time (by {!Params}) can be
    composed.  [Any] itself satisfies {!S}. *)
module Any : sig
  include S

  val pack : (module S with type t = 'a) -> 'a -> t
  val of_packed : packed -> t

  val reset_available : t -> bool
  (** Whether the packed protocol has a recovery path.  [Any]'s own
      [reset_footprint] is statically [Some] (the packed module decides
      at run time, raising [Invalid_argument] when it has none); check
      this before building a reclaimer over a dynamic value. *)
end

(** [Chain (A) (B)] runs [B] on top of [A]: a process first acquires an
    intermediate name from [A], then uses {e that name} as its source
    name in [B] (§4.4: "a process can then use the acquired name to
    access another long-lived renaming protocol").  [B]'s source name
    space must therefore be at least [A]'s destination name space.
    Release happens innermost-first ([B] then [A]), so the process
    still holds its [A]-name while releasing in [B]. *)
module Chain (A : S) (B : S) : sig
  include S

  val make : A.t -> B.t -> t
  val first : t -> A.t
  val second : t -> B.t
end

val chain_any : Any.t -> Any.t -> Any.t
(** {!Chain} at the dynamic level.  Like the static functor, the
    chain's recovery hook exists only when {e both} stages have one:
    if either stage lacks it, the result answers [false] to
    {!Any.reset_available} instead of raising mid-reclaim. *)

val chain_all : Any.t list -> Any.t
(** Left-nested chain of one or more stages.
    @raise Invalid_argument on the empty list. *)
