(** The backend registry: every {!Protocol.S} instance in the tree,
    buildable uniformly behind {!Protocol.Any}.

    Each entry renames [k] processes with source names in [[0, s)]
    (protocols that don't consume [s] or the participant set ignore
    them), so the differential law suite, the model checker, the fault
    campaigns, the recovery leases and the shootout bench enumerate
    backends with zero per-backend glue — a backend registered here is
    tested the day it lands. *)

type spec = {
  name : string;  (** CLI / registry key *)
  summary : string;
  recoverable : bool;
      (** whether [reset_footprint] is available (all current entries). *)
  read_write_only : bool;
      (** [true] for the paper's protocols (atomic read/write registers
          only); [false] for the test&set-based baselines ([tas],
          [level]). *)
  fixed_participants : bool;
      (** [true] when [build] bakes the participant array into the
          instance ([filter], [pipeline]): only those [k] source names
          may call [get_name].  [false] means any pid in [[0, s)] is
          legal — required for serving arbitrary source names (the name
          server, Zipf churn). *)
  build :
    Shared_mem.Layout.t -> k:int -> s:int -> participants:int array -> Protocol.Any.t;
      (** [participants] must hold [k] distinct pids in [[0, s)]. *)
}

val default_pids : k:int -> s:int -> int array
(** [k] distinct, evenly-spread legal source names.
    @raise Invalid_argument if [s < k]. *)

val all : unit -> spec list
val names : unit -> string list
val find : string -> spec option
