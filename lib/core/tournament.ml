type t = {
  levels : int;
  inputs : int;
  block : level:int -> node:int -> Pf_mutex.t;
}

let create ?(stage = 0) ?(tree = 0) layout ~inputs =
  if inputs < 1 then invalid_arg "Tournament.create";
  let levels = Numeric.Intmath.ceil_log2 (max inputs 2) in
  let width = 1 lsl levels in
  (* level l in 1..levels has width lsr l blocks, stored after all
     blocks of lower levels: offset(l) = width - 2^(levels - l + 1);
     recover (level, node) from the flat index so each block carries
     its structural label while the register allocation order stays
     identical to a plain [Array.init]. *)
  let blocks =
    Array.init (width - 1) (fun i ->
        let level = ref 1 and rem = ref i in
        while !rem >= width lsr !level do
          rem := !rem - (width lsr !level);
          incr level
        done;
        Pf_mutex.create
          ~loc:(Obs.Loc.Mutex { stage; tree; level = !level; node = !rem })
          layout)
  in
  let block ~level ~node = blocks.((width - (1 lsl (levels - level + 1))) + node) in
  { levels; inputs = width; block }

let create_with ~levels block =
  if levels < 1 then invalid_arg "Tournament.create_with";
  { levels; inputs = 1 lsl levels; block }

let levels t = t.levels
let inputs t = t.inputs

type position = {
  input : int;
  slots : Pf_mutex.slot array; (* index = level, slot 0 unused *)
  mutable level : int;
  mutable won : bool;
  mutable checks : int;
}

let position t ~input =
  if input < 0 || input >= t.inputs then invalid_arg "Tournament.position";
  {
    input;
    slots = Array.make (t.levels + 1) Pf_mutex.dummy;
    level = 0;
    won = false;
    checks = 0;
  }

let level_of pos = pos.level
let won _ pos = pos.won
let checks pos = pos.checks
let dir_at pos level = (pos.input lsr (level - 1)) land 1
let node_at pos level = pos.input lsr level

let enter_level t ops pos level =
  let b = t.block ~level ~node:(node_at pos level) in
  pos.slots.(level) <- Pf_mutex.enter b ops ~dir:(dir_at pos level);
  pos.level <- level

let try_advance t ops pos =
  if pos.won then true
  else begin
    if pos.level = 0 then enter_level t ops pos 1;
    let rec climb () =
      let level = pos.level in
      let b = t.block ~level ~node:(node_at pos level) in
      pos.checks <- pos.checks + 1;
      if Pf_mutex.check b ops ~dir:(dir_at pos level) pos.slots.(level) then
        if level = t.levels then begin
          pos.won <- true;
          true
        end
        else begin
          enter_level t ops pos (level + 1);
          climb ()
        end
      else false
    in
    climb ()
  end

let release t ops pos =
  (* top-down: never free a block before the blocks above it *)
  for level = pos.level downto 1 do
    let b = t.block ~level ~node:(node_at pos level) in
    Pf_mutex.release b ops ~dir:(dir_at pos level) pos.slots.(level)
  done;
  pos.level <- 0;
  pos.won <- false

let reset t ops pos =
  (* crash recovery: same top-down walk, but via Pf_mutex.reset so the
     turn bits are recovered from the registers, not the dead
     process's slots *)
  for level = pos.level downto 1 do
    let b = t.block ~level ~node:(node_at pos level) in
    Pf_mutex.reset b ops ~dir:(dir_at pos level)
  done;
  pos.level <- 0;
  pos.won <- false
