(** The SPLIT protocol (Figure 1, Theorem 2): fast, long-lived renaming
    of [k] processes to [3^(k-1)] names in [O(k)] shared accesses.

    A complete ternary tree of splitters of depth [k-1].  To acquire a
    name, a process enters the root splitter and descends: the output
    set assigned at each level selects the child entered at the next
    level.  Since each splitter shrinks the group by one (Theorem 5),
    the leaf reached after [k-1] levels is occupied by no other
    process; the leaf's path string [s] (over [{-1,0,1}], root symbol
    first) encodes the name [Σ (1+s[i])·3^(i-1)].  Releasing walks the
    path backwards, releasing the deepest splitter first so that a
    process never ceases to be "inside" a parent while still using the
    child.

    Cost: at most 7 accesses per splitter on entry and 2 on release,
    so GetName ≤ 7(k-1) and ReleaseName ≤ 2(k-1) — independent of [S]
    and [n].  Space is [Θ(3^k)] registers, which is why SPLIT is only
    the first stage of the Theorem 11 pipeline (it reduces [S] to
    [3^(k-1)] so that FILTER's polynomial-space instances apply). *)

include Protocol.S

val create : ?stage:int -> Shared_mem.Layout.t -> k:int -> t
(** Allocates the [(3^(k-1) - 1) / 2] interior splitters, each
    labelled [Obs.Loc.Splitter {stage; node}] with its heap index
    (children of node [i] are [3i+1..3i+3]); [stage] (default 0)
    distinguishes pipeline stages in traces.
    @raise Invalid_argument if [k < 1] or [k > 12] (the tree would
    exceed ~265k registers). *)

val k : t -> int

val path_string : t -> lease -> int array
(** The leaf label [s] of a held lease — the sequence of output sets
    assigned along the descent, root first (length [k-1]).  Exposed
    for tests and the experiment harness. *)
