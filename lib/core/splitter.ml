open Shared_mem

(* ADVICE registers hold -1, 1 or "bottom", encoded as 0. *)
let bottom = 0

type t = { last : Cell.t; advice1 : Cell.t; advice2 : Cell.t; loc : Obs.Loc.t }
type token = { advice : int; adv2 : bool; direction : int }

let create ?(loc = Obs.Loc.Splitter { stage = 0; node = 0 }) layout =
  {
    last = Layout.alloc layout ~name:"LAST" (-1);
    advice1 = Layout.alloc layout ~name:"ADVICE1" 1;
    advice2 = Layout.alloc layout ~name:"ADVICE2" 1;
    loc;
  }

let loc t = t.loc

let enter t (ops : Store.ops) =
  if not (Obs.Probe.is_null ops.probe) then ops.probe (Obs.Probe.Enter t.loc);
  ops.write t.last ops.pid;
  (* 1 *)
  let a = ops.read t.advice1 in
  (* 2 *)
  let a = if a = bottom then ops.read t.advice2 else a in
  (* 3 *)
  ops.write t.advice1 (-a);
  (* 4 *)
  let adv2 = ops.read t.last = ops.pid in
  (* 5 *)
  if adv2 then ops.write t.advice2 (-a);
  (* 6 *)
  let direction = if ops.read t.last = ops.pid then a else 0 in
  (* 7 *)
  if not (Obs.Probe.is_null ops.probe) then ops.probe (Obs.Probe.Exit (t.loc, direction));
  { advice = a; adv2; direction }

let direction tok = tok.direction

let release t (ops : Store.ops) tok =
  if ops.read t.last = ops.pid then (* 9 *)
    ops.write t.advice1 tok.advice (* 10 *);
  if not tok.adv2 then ops.write t.advice1 bottom (* 11 *);
  if not (Obs.Probe.is_null ops.probe) then ops.probe (Obs.Probe.Release t.loc)

let reset t (ops : Store.ops) tok =
  (* Release on the corpse's behalf ([ops.pid] is the dead process's
     source name), additionally clearing a [LAST] claim it still owns —
     leaving a dead pid in [LAST] is safe for entrants (they overwrite
     it) but would keep pointing the interference check at a process
     that can never answer. *)
  if ops.read t.last = ops.pid then begin
    ops.write t.advice1 tok.advice;
    ops.write t.last (-1)
  end;
  if not tok.adv2 then ops.write t.advice1 bottom;
  if not (Obs.Probe.is_null ops.probe) then ops.probe (Obs.Probe.Release t.loc)
