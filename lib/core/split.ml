type t = {
  k : int;
  nodes : Splitter.t array;
      (* complete ternary tree, heap numbering: children of [i] are
         [3i+1], [3i+2], [3i+3]; depths 0..k-2 *)
}

type lease = { name : int; path : (Splitter.t * Splitter.token) array }

let pow3 n = Numeric.Intmath.pow 3 n

let create ?(stage = 0) layout ~k =
  if k < 1 then invalid_arg "Split.create: k must be >= 1";
  if k > 12 then invalid_arg "Split.create: k > 12 needs a 3^k-node tree";
  let interior = (pow3 (k - 1) - 1) / 2 in
  {
    k;
    nodes =
      Array.init interior (fun i ->
          Splitter.create ~loc:(Obs.Loc.Splitter { stage; node = i }) layout);
  }

let k t = t.k
let name_space t = pow3 (t.k - 1)

let get_name t ops =
  let depth = t.k - 1 in
  (* descend, recording the splitter and token used at each level *)
  let acc = Array.make depth (None : (Splitter.t * Splitter.token) option) in
  let name = ref 0 in
  let idx = ref 0 in
  let weight = ref 1 in
  for h = 0 to depth - 1 do
    let sp = t.nodes.(!idx) in
    let tok = Splitter.enter sp ops in
    let d = Splitter.direction tok in
    acc.(h) <- Some (sp, tok);
    name := !name + ((1 + d) * !weight);
    weight := !weight * 3;
    idx := (3 * !idx) + (1 + d) + 1
  done;
  let path =
    Array.map (function Some e -> e | None -> assert false) acc
  in
  { name = !name; path }

let name_of _ lease = lease.name

let release_name _ ops lease =
  (* deepest splitter first: Using(child) must end before Inside(parent) *)
  for h = Array.length lease.path - 1 downto 0 do
    let sp, tok = lease.path.(h) in
    Splitter.release sp ops tok
  done

let reset_footprint =
  Some
    (fun _ ops (lease : lease) ->
      (* deepest-first, like release *)
      for h = Array.length lease.path - 1 downto 0 do
        let sp, tok = lease.path.(h) in
        Splitter.reset sp ops tok
      done)

let path_string _ lease = Array.map (fun (_, tok) -> Splitter.direction tok) lease.path
