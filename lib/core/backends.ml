type spec = {
  name : string;
  summary : string;
  recoverable : bool;
  read_write_only : bool;
  fixed_participants : bool;
  build :
    Shared_mem.Layout.t -> k:int -> s:int -> participants:int array -> Protocol.Any.t;
}

let default_pids ~k ~s =
  if s < k then invalid_arg "Backends.default_pids: s < k";
  let stride = max 1 (s / k) in
  Array.init k (fun i -> (i * stride) mod s)

let all () =
  [
    {
      name = "split";
      summary = "SPLIT ternary splitter tree: 3^(k-1) names in O(k) (Thm 2)";
      recoverable = true;
      read_write_only = true;
      fixed_participants = false;
      build = (fun layout ~k ~s:_ ~participants:_ ->
          Protocol.Any.pack (module Split) (Split.create layout ~k));
    };
    {
      name = "compact";
      summary = "compact splitter cascade: 2^k - 1 names from 2^k - k - 1 cells";
      recoverable = true;
      read_write_only = true;
      fixed_participants = false;
      build = (fun layout ~k ~s:_ ~participants:_ ->
          Protocol.Any.pack (module Compact_split) (Compact_split.create layout ~k));
    };
    {
      name = "level";
      summary = "LevelArray bit-array cascade: < 4k names, O(contention) probes";
      recoverable = true;
      read_write_only = false;
      fixed_participants = false;
      build = (fun layout ~k ~s:_ ~participants:_ ->
          Protocol.Any.pack (module Level_array) (Level_array.create layout ~k));
    };
    {
      name = "filter";
      summary = "FILTER fast-path over mutual-exclusion tournament trees (Thm 10)";
      recoverable = true;
      read_write_only = true;
      fixed_participants = true;
      build = (fun layout ~k ~s ~participants ->
          let (p : Params.filter_params) = Params.choose ~k ~s in
          Protocol.Any.pack
            (module Filter)
            (Filter.create layout { k; d = p.d; z = p.z; s; participants }));
    };
    {
      name = "ma";
      summary = "Moir-Anderson grid baseline: k(k+1)/2 names in Theta(kS)";
      recoverable = true;
      read_write_only = true;
      fixed_participants = false;
      build = (fun layout ~k ~s ~participants:_ ->
          Protocol.Any.pack (module Ma) (Ma.create layout ~k ~s));
    };
    {
      name = "tas";
      summary = "test&set baseline: k names with a stronger primitive";
      recoverable = true;
      read_write_only = false;
      fixed_participants = false;
      build = (fun layout ~k ~s:_ ~participants:_ ->
          Protocol.Any.pack (module Tas_baseline) (Tas_baseline.create layout ~k));
    };
    {
      name = "pipeline";
      summary = "Theorem 11 pipeline: any S down to k(k+1)/2 names";
      recoverable = true;
      read_write_only = true;
      fixed_participants = true;
      build = (fun layout ~k ~s ~participants ->
          Protocol.Any.pack
            (module Pipeline)
            (Pipeline.create layout ~k ~s ~participants));
    };
  ]

let names () = List.map (fun b -> b.name) (all ())
let find name = List.find_opt (fun b -> b.name = name) (all ())
