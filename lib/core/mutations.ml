open Shared_mem

module Mutant_mutex = struct
  type variant = Read_before_write | Turn_lost_on_release | No_yield
  type t = { r : Cell.t array; variant : variant }
  type slot = int

  (* Same register encoding as Pf_mutex: bit 0 = turn, bit 1 = presence;
     the nil of the 3-valued variants is encoded as "absent". *)
  let turn_bit v = v land 1
  let is_present v = v land 2 <> 0
  let present t = 2 lor t

  let create layout variant = { r = Layout.alloc_array layout ~name:"MR" 2 0; variant }

  let enter t (ops : Store.ops) ~dir =
    match t.variant with
    | Read_before_write ->
        (* refuted reconstruction #1: look, then leap *)
        let opp = ops.read t.r.(1 - dir) in
        let own = if is_present opp then dir lxor turn_bit opp else dir in
        ops.write t.r.(dir) (present own);
        own
    | Turn_lost_on_release ->
        (* publish before reading, but the turn bit does not survive
           release (see [release]) *)
        ops.write t.r.(dir) (present dir);
        let opp = ops.read t.r.(1 - dir) in
        if is_present opp then begin
          let own = dir lxor turn_bit opp in
          ops.write t.r.(dir) (present own);
          own
        end
        else dir
    | No_yield ->
        (* claims the combined turn points at the opponent *)
        let t_own = turn_bit (ops.read t.r.(dir)) in
        ops.write t.r.(dir) (present t_own);
        let opp = ops.read t.r.(1 - dir) in
        let own = (1 - dir) lxor turn_bit opp in
        ops.write t.r.(dir) (present own);
        own

  let check t (ops : Store.ops) ~dir own =
    let opp = ops.read t.r.(1 - dir) in
    (not (is_present opp)) || own lxor turn_bit opp <> dir

  let release t (ops : Store.ops) ~dir own =
    match t.variant with
    | Turn_lost_on_release -> ops.write t.r.(dir) 0 (* drops the turn bit *)
    | Read_before_write | No_yield -> ops.write t.r.(dir) (own land 1)
end

module Mutant_splitter = struct
  type variant = No_interference_check | No_advice_flip
  type t = { last : Cell.t; advice1 : Cell.t; advice2 : Cell.t; variant : variant }
  type token = { advice : int; adv2 : bool; direction : int }

  let bottom = 0

  let create layout variant =
    {
      last = Layout.alloc layout ~name:"MLAST" (-1);
      advice1 = Layout.alloc layout ~name:"MADVICE1" 1;
      advice2 = Layout.alloc layout ~name:"MADVICE2" 1;
      variant;
    }

  let enter t (ops : Store.ops) =
    ops.write t.last ops.pid;
    let a = ops.read t.advice1 in
    let a = if a = bottom then ops.read t.advice2 else a in
    let advice_out = match t.variant with No_advice_flip -> a | No_interference_check -> -a in
    ops.write t.advice1 advice_out;
    let adv2 = ops.read t.last = ops.pid in
    if adv2 then ops.write t.advice2 advice_out;
    let direction =
      match t.variant with
      | No_interference_check -> a (* line 7 dropped: never returns 0 *)
      | No_advice_flip -> if ops.read t.last = ops.pid then a else 0
    in
    { advice = a; adv2; direction }

  let direction tok = tok.direction

  let release t (ops : Store.ops) tok =
    if ops.read t.last = ops.pid then ops.write t.advice1 tok.advice;
    if not tok.adv2 then ops.write t.advice1 bottom
end

module Mutant_costly = struct
  type variant = Quadratic_rescan
  type t = { ma : Ma.t; pad : Cell.t; extra : int }
  type lease = Ma.lease

  let create layout Quadratic_rescan ~k ~s =
    {
      ma = Ma.create layout ~k ~s;
      pad = Layout.alloc layout ~name:"MPAD" 0;
      (* one past the Moir–Anderson bound k(s+4)+1, so even a
         contention-free GetName lands beyond it *)
      extra = (k * (s + 4)) + 2;
    }

  let name_space t = Ma.name_space t.ma

  let get_name t (ops : Store.ops) =
    let lease = Ma.get_name t.ma ops in
    for _ = 1 to t.extra do
      ignore (ops.read t.pad)
    done;
    lease

  let name_of t lease = Ma.name_of t.ma lease
  let release_name t (ops : Store.ops) lease = Ma.release_name t.ma ops lease

  (* mutants model broken deployments: no recovery path *)
  let reset_footprint = None
end

module Mutant_level = struct
  type variant = Torn_claim

  type t = { k : int; bits : Cell.t array }
  type lease = { name : int }

  let create layout Torn_claim ~k =
    if k < 1 then invalid_arg "Mutant_level.create: k must be >= 1";
    { k; bits = Layout.alloc_array layout ~name:"MLVL" k 0 }

  let name_space t = t.k

  (* the probe/claim discipline with the claim torn into a read and a
     write: two probers can both see slot 0 free and both claim it *)
  let get_name t (ops : Store.ops) =
    let rec probe j =
      let s = j mod t.k in
      if ops.read t.bits.(s) = 0 then begin
        ops.write t.bits.(s) 1;
        { name = s }
      end
      else probe (j + 1)
    in
    probe 0

  let name_of _ lease = lease.name
  let release_name t (ops : Store.ops) lease = ops.write t.bits.(lease.name) 0
  let reset_footprint = None
end

module Mutant_compact = struct
  (* the compact cascade wiring over interference-blind cells: lockstep
     entrants read the same advice, take the same side at every level
     and land on the same leaf *)
  module Cell = struct
    type t = Mutant_splitter.t
    type token = Mutant_splitter.token

    let create ?loc:_ layout = Mutant_splitter.create layout No_interference_check
    let enter = Mutant_splitter.enter
    let direction = Mutant_splitter.direction
    let release = Mutant_splitter.release
    let reset = None
  end

  include Compact_split.Make (Cell)
end

module Mutant_ma = struct
  type variant = No_recheck

  type t = { k : int; s : int; x : Cell.t array; y : Cell.t array array; variant : variant }
  type lease = { name : int; row : int; col : int }

  let index ~k ~r ~c = (r * k) - (r * (r - 1) / 2) + c

  let create layout variant ~k ~s =
    let blocks = k * (k + 1) / 2 in
    {
      k;
      s;
      x = Array.init blocks (fun i -> Layout.alloc layout ~name:(Printf.sprintf "MX[%d]" i) (-1));
      y =
        Array.init blocks (fun i ->
            Layout.alloc_array layout ~name:(Printf.sprintf "MY[%d]" i) s 0);
      variant;
    }

  let name_space t = t.k * (t.k + 1) / 2

  let get_name t (ops : Store.ops) =
    let rec move r c =
      let i = index ~k:t.k ~r ~c in
      if r + c = t.k - 1 then begin
        ops.write t.y.(i).(ops.pid) 1;
        { name = i; row = r; col = c }
      end
      else begin
        ops.write t.x.(i) ops.pid;
        let occupied = ref false in
        for q = 0 to t.s - 1 do
          if ops.read t.y.(i).(q) = 1 then occupied := true
        done;
        if !occupied then move r (c + 1)
        else begin
          ops.write t.y.(i).(ops.pid) 1;
          match t.variant with
          | No_recheck ->
              (* stop without re-reading X: racing entrants collide *)
              { name = i; row = r; col = c }
        end
      end
    in
    move 0 0

  let name_of _ lease = lease.name

  let release_name t (ops : Store.ops) lease =
    ops.write t.y.(index ~k:t.k ~r:lease.row ~c:lease.col).(ops.pid) 0

  let reset_footprint = None
end
