module type CELL = sig
  type t
  type token

  val create : ?loc:Obs.Loc.t -> Shared_mem.Layout.t -> t
  val enter : t -> Shared_mem.Store.ops -> token
  val direction : token -> int
  val release : t -> Shared_mem.Store.ops -> token -> unit
  val reset : (t -> Shared_mem.Store.ops -> token -> unit) option
end

module Make (C : CELL) = struct
  (* One stage per concurrency bound b = k, k-1, …, 2: a binary tree of
     cells over the two *side* output sets only (children of heap index
     [i] are [2i+1] for -1 and [2i+2] for +1), depths 0..b-2, with
     2^(b-1) side leaves.  The middle output set of *every* cell of a
     stage routes to the next stage's root; the cascade ends in a
     single bound-1 backstop name.

     Soundness: a side set of a cell with at most b concurrent users
     holds at most max(1, b-1) processes (Theorem 5), so depth h of the
     bound-b stage is used by at most b-h processes and the side leaves
     by at most one — exactly the SPLIT argument, minus the middle
     subtrees.  The shared overflow is bounded because a middle exit
     needs a *live interferer*: a process only joins output set 0 after
     reading a LAST value some other process wrote after its own write,
     and a solo process never does (Lemma 4).  So while all but one of
     the b processes using a stage sit in later stages, the remaining
     process runs the stage alone and always side-exits; the next stage
     therefore never sees more than b-1 concurrent users.  Both new
     facts — the per-stage bound and end-to-end uniqueness — are
     model-checked exhaustively at small sizes and hammered by the
     fault campaign rather than trusted on paper. *)
  type stage = {
    bound : int; (* >= 2 *)
    cells : C.t array;
    base : int; (* first side-leaf name of this stage *)
  }

  type t = { k : int; stages : stage array; backstop : int }
  type lease = { name : int; path : (C.t * C.token) list (* deepest first *) }

  let create ?(stage = 0) layout ~k =
    if k < 1 then invalid_arg "Compact_split.create: k must be >= 1";
    if k > 12 then invalid_arg "Compact_split.create: k > 12 needs a 2^k-cell cascade";
    let node = ref 0 in
    let base = ref 0 in
    let stages =
      Array.init (max 0 (k - 1)) (fun j ->
          let bound = k - j in
          let cells =
            Array.init
              ((1 lsl (bound - 1)) - 1)
              (fun _ ->
                let i = !node in
                incr node;
                C.create ~loc:(Obs.Loc.Splitter { stage; node = i }) layout)
          in
          let st = { bound; cells; base = !base } in
          base := !base + (1 lsl (bound - 1));
          st)
    in
    { k; stages; backstop = !base }

  let k t = t.k
  let name_space t = (1 lsl t.k) - 1

  let cells t =
    Array.fold_left (fun acc st -> acc + Array.length st.cells) 0 t.stages

  let get_name t ops =
    let path = ref [] in
    let rec stage j =
      if j >= Array.length t.stages then { name = t.backstop; path = !path }
      else begin
        let st = t.stages.(j) in
        let depth = st.bound - 1 in
        let rec descend h idx offset weight =
          let cell = st.cells.(idx) in
          let tok = C.enter cell ops in
          path := (cell, tok) :: !path;
          match C.direction tok with
          | 0 -> stage (j + 1)
          | d ->
              let bit = (1 + d) / 2 in
              let offset = offset + (bit * weight) in
              if h = depth - 1 then { name = st.base + offset; path = !path }
              else descend (h + 1) ((2 * idx) + 1 + bit) offset (weight * 2)
        in
        descend 0 0 0 1
      end
    in
    stage 0

  let name_of _ lease = lease.name

  (* deepest cell first: Using(child stage) must end before
     Inside(parent stage), exactly as in [Split.release_name] *)
  let release_name _ ops lease =
    List.iter (fun (cell, tok) -> C.release cell ops tok) lease.path

  let reset_footprint =
    match C.reset with
    | Some reset ->
        Some
          (fun _ ops (lease : lease) ->
            List.iter (fun (cell, tok) -> reset cell ops tok) lease.path)
    | None -> None

  let path_string _ lease =
    Array.of_list (List.rev_map (fun (_, tok) -> C.direction tok) lease.path)
end

module Splitter_cell = struct
  type t = Splitter.t
  type token = Splitter.token

  let create = Splitter.create
  let enter = Splitter.enter
  let direction = Splitter.direction
  let release = Splitter.release
  let reset = Some Splitter.reset
end

include Make (Splitter_cell)
