open Shared_mem

(* One register per direction holding (present, turn) as 2 bits:
   bit 0 = turn contribution, bit 1 = presence.  The combined turn is
   [t0 lxor t1]; an entering process from direction [dir] writes its
   bit so that the combined turn becomes [dir] — i.e. it defers — and
   direction [dir] is in the critical section iff the opponent is
   absent or the combined turn differs from [dir] (for dir 0: the bits
   differ; for dir 1: they are equal — the paper's predicates).

   Crucially the turn bit survives release (only the presence bit
   drops) and the presence bit is raised before the opponent is read.
   Both points are load-bearing: clearing the turn on release, or
   writing a guessed turn while raising presence, admit interleavings
   (found by the model checker) where both directions pass [check]. *)

let turn_bit v = v land 1
let is_present v = v land 2 <> 0
let present t = 2 lor t
let absent t = t

type t = {
  r : Cell.t array; (* r.(0), r.(1): one register per direction *)
  loc : Obs.Loc.t;
}
type slot = int (* own turn bit *)

let dummy = 0

let default_loc = Obs.Loc.Mutex { stage = 0; tree = 0; level = 0; node = 0 }

let create ?(loc = default_loc) layout =
  { r = Layout.alloc_array layout ~name:"R" 2 (absent 0); loc }

let loc t = t.loc

let enter t (ops : Store.ops) ~dir =
  if not (Obs.Probe.is_null ops.probe) then ops.probe (Obs.Probe.Enter t.loc);
  (* Recover the persisted turn bit (a previous process may have used
     this direction), raise presence without disturbing it, then point
     the combined turn at ourselves — yielding to any opponent. *)
  let t_own = turn_bit (ops.read t.r.(dir)) in
  ops.write t.r.(dir) (present t_own);
  let opp = ops.read t.r.(1 - dir) in
  let t_new = dir lxor turn_bit opp in
  ops.write t.r.(dir) (present t_new);
  t_new

let check t (ops : Store.ops) ~dir own =
  let opp = ops.read t.r.(1 - dir) in
  let ok = (not (is_present opp)) || own lxor turn_bit opp <> dir in
  if not (Obs.Probe.is_null ops.probe) then ops.probe (Obs.Probe.Check (t.loc, ok));
  ok

let release t (ops : Store.ops) ~dir own =
  ops.write t.r.(dir) (absent own);
  if not (Obs.Probe.is_null ops.probe) then ops.probe (Obs.Probe.Release t.loc)

let reset t (ops : Store.ops) ~dir =
  (* Crash recovery: drop the direction's presence bit without the
     corpse's slot.  The current turn bit is recovered by reading the
     register — it must survive the reset exactly as it survives an
     ordinary release (clearing it re-admits the Turn_lost_on_release
     interleavings). *)
  let v = ops.read t.r.(dir) in
  ops.write t.r.(dir) (absent (turn_bit v));
  if not (Obs.Probe.is_null ops.probe) then ops.probe (Obs.Probe.Release t.loc)
