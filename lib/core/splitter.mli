(** The long-lived splitter building block (Figure 2, Theorem 5).

    Accessing processes are dynamically partitioned into three output
    sets [-1], [0], [1].  Guarantee: in any execution in which at most
    [ℓ] processes use the splitter concurrently (with [ℓ ≥ 2]), each
    output set contains at most [ℓ - 1] processes at any time — so a
    tree of splitters strictly shrinks groups level by level.

    Mechanism: [LAST] detects interference (a process that does not
    read its own id back joins set [0]); [ADVICE[1]]/[ADVICE[2]] pass
    "which non-zero set is safe" advice between processes.  The advice
    may be wrong except in the one critical scenario — [ℓ] processes
    entering sequentially — where it provably survives intact (§3.1).

    Costs: [enter] ≤ 7 shared accesses, [release] ≤ 3.

    Note on the figure: lines 3, 4, 10, 11 of the supplied paper text
    are OCR-garbled; this implementation reconstructs them from the
    reads and writes quoted in the Lemma 4 case analysis (see
    DESIGN.md) and is validated by exhaustive model checking. *)

type t

type token
(** Per-entry bookkeeping ([advice], [adv2]) needed by [release]. *)

val create : ?loc:Obs.Loc.t -> Shared_mem.Layout.t -> t
(** Allocates [LAST], [ADVICE[1]], [ADVICE[2]].  [loc] is the stable
    structural label reported on every traced step (default
    [Splitter {stage = 0; node = 0}]); {!Renaming.Split} labels each
    node with its heap index. *)

val loc : t -> Obs.Loc.t
(** The structural label given at {!create} time. *)

val enter : t -> Shared_mem.Store.ops -> token
(** Join an output set; the set joined is [direction] of the token.
    Probes: [Enter loc] before the first access, [Exit (loc, dir)]
    after the last. *)

val direction : token -> int
(** The output set assigned: [-1], [0] or [1]. *)

val release : t -> Shared_mem.Store.ops -> token -> unit
(** Leave the output set.  A token must be released exactly once,
    before the same process re-enters.  Probes [Release loc]. *)

val reset : t -> Shared_mem.Store.ops -> token -> unit
(** Crash recovery: release the token on behalf of a {e dead} holder.
    [ops.pid] must be the dead process's source name and the holder
    must take no further step.  Behaves like {!release} and
    additionally clears a [LAST] claim still owned by the corpse. *)
