(** The Theorem 11 pipeline: long-lived renaming from {e any} source
    name space [S] to [k(k+1)/2] names.

    Stages are chained with {!Protocol.Chain} semantics (a stage's
    output name is the next stage's source name):

    + SPLIT — only when [S > 3^(k-1)], to cut an exponential-or-worse
      source space down to [3^(k-1)] in [O(k)] time;
    + FILTER, repeatedly with {!Params.choose}-optimized [(d, z)],
      while it shrinks the space (per Erdős et al. this plateaus at
      [Ω(k^2)], typically after two applications — §4.4);
    + MA — the [Θ(kS')] baseline, affordable once [S' ∈ O(k^2)],
      landing on exactly [k(k+1)/2] names.

    Overall: [O(k^3)] shared accesses per acquire/release, independent
    of [S] and [n] — the paper's headline result. *)

type t

type stage_info = {
  kind : string;  (** ["split"], ["filter"] or ["ma"]. *)
  source : int;  (** Source name space of the stage. *)
  dest : int;  (** Destination name space of the stage. *)
  detail : string;  (** Parameters, e.g. ["d=2 z=13"]. *)
}

val create :
  Shared_mem.Layout.t -> k:int -> s:int -> participants:int array -> t
(** Builds the stage list for the given [k] and [S] and allocates all
    shared registers.  [participants] are the source names that may
    call [get_name] (used to size the first stage; later stages admit
    every name the previous stage can emit).
    @raise Invalid_argument if [k < 2], if a participant is outside
    [\[0, s)], or if [s] is so large that SPLIT would be required with
    [k > 12] (register count [3^k] is impractical). *)

val stages : t -> stage_info list
val protocol : t -> Protocol.Any.t

(** The pipeline is itself a protocol. *)

type lease

val name_space : t -> int
val get_name : t -> Shared_mem.Store.ops -> lease
val name_of : t -> lease -> int
val release_name : t -> Shared_mem.Store.ops -> lease -> unit

val reset_footprint : (t -> Shared_mem.Store.ops -> lease -> unit) option
(** Always [Some]: every stage kind supports crash recovery, resetting
    innermost-first under the corpse's per-stage intermediate names
    (see {!Renaming.Protocol.S.reset_footprint}). *)

val pp_stages : Format.formatter -> t -> unit
(** One line per stage: [kind S -> D (detail)]. *)
