(** Mutual-exclusion tournament trees (§4.2).

    A binary tree of {!Pf_mutex} blocks with [2^levels] {e inputs} at
    the bottom; each input may be used by at most one process at a
    time (FILTER maps source names one-one to inputs).  A process
    enters at its input's leaf block and climbs: winning the critical
    section of the block at level [ℓ] lets it enter the block at level
    [ℓ+1] from the direction it came from; winning at the root means
    owning the whole tree (Lemma 6: at most one process at a time).

    Climbing is non-blocking: {!try_advance} pushes as far as the
    [check]s allow and returns, so a caller can interleave attempts on
    many trees.  Release is top-down, so a block's critical section is
    never freed before the blocks above it — preserving the invariant
    that at most one process per direction uses any block. *)

type t

val create : ?stage:int -> ?tree:int -> Shared_mem.Layout.t -> inputs:int -> t
(** Eagerly allocates the [2^levels - 1] blocks for the least [levels]
    with [2^levels ≥ max inputs 2].  Each block is labelled
    [Obs.Loc.Mutex {stage; tree; level; node}] (defaults 0) so probes
    attribute contention to tree coordinates.
    @raise Invalid_argument if [inputs < 1]. *)

val create_with :
  levels:int -> (level:int -> node:int -> Pf_mutex.t) -> t
(** Tree backed by an external block table (used by FILTER to allocate
    only the blocks on its participants' paths).  [level] ranges over
    [1..levels]; [node] over [0..2^(levels-level)-1].  The function
    must be a pure lookup. *)

val levels : t -> int

val inputs : t -> int
(** Usable input count, [2^(levels t)] (the requested count rounded up
    to a power of two — the padding inputs are valid too). *)

(** {1 Competing} *)

type position
(** One process's progress in one tree. *)

val position : t -> input:int -> position
(** Fresh position at [input]; nothing entered yet. *)

val level_of : position -> int
(** Levels entered so far: 0 = not started, [levels t] = at the top
    block (possibly still waiting there). *)

val won : t -> position -> bool
(** Did this position reach the root's critical section?  (Set by
    {!try_advance}; stable until release.) *)

val try_advance : t -> Shared_mem.Store.ops -> position -> bool
(** Enter the leaf if not yet entered, then climb while [check]
    succeeds.  Returns [true] iff the root critical section was
    reached (now or previously).  Never blocks; a [false] return costs
    at most one failed [check] beyond the entries/wins performed. *)

val checks : position -> int
(** Total [check] calls performed through this position (Theorem 10
    instrumentation). *)

val release : t -> Shared_mem.Store.ops -> position -> unit
(** Release every entered block, top-down.  The position returns to
    its pristine state and may be reused. *)

val reset : t -> Shared_mem.Store.ops -> position -> unit
(** Crash recovery: {!release} on behalf of a dead competitor, using
    {!Pf_mutex.reset} per block so the persistent turn bits come from
    the registers rather than the corpse's slots.  The dead process
    must take no further step. *)
