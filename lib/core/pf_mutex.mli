(** Two-process mutual exclusion block, split into
    [Enter] / [Check] / [Release] (Figure 3, after Peterson–Fischer).

    The block has two {e directions} 0 (left) and 1 (right); at most
    one process may use each direction at a time (successive processes
    may reuse a direction — the registers are multi-writer).  Unlike a
    classical mutex, waiting is externalized: after [enter], a process
    calls [check] whenever it likes, and each [false] answer lets it
    go compete elsewhere (this is what lets FILTER play many trees
    "in parallel").

    Guarantees, validated by exhaustive model checking:
    - {e mutual exclusion}: [check] never answers [true] to both sides
      simultaneously (while both are entered);
    - {e FIFO} (used by Lemma 7): a process entering while the opponent
      is present always yields — it writes the shared turn to point at
      itself, so the opponent's next [check] succeeds;
    - {e progress}: if only one side is entered, its [check] succeeds.

    Reconstruction note: the supplied paper text lost Figure 3, so the
    code is reconstructed from the reads/writes quoted in Lemma 7 and
    from the stated costs.  Each direction owns one 4-valued register
    carrying a presence bit and a Kessels-style split-turn bit; the
    combined turn is the XOR of the two turn bits, so direction 0 wins
    when the bits {e differ} and direction 1 when they are {e equal} —
    exactly the paper's predicates ("β ⊕ (r_p ≠ r'_p)").  An entering
    process writes [dir ⊕ t_opponent] — exactly the paper's
    "(1-β) ⊕ r_p".  The turn bit persists across [release] (only the
    presence bit drops); both this persistence and the
    raise-presence-before-reading order are necessary — the model
    checker exhibits mutual-exclusion violations without either.

    Costs: [enter] 4 shared accesses (the paper's figure!), [check] 1,
    [release] 1. *)

type t

val create : ?loc:Obs.Loc.t -> Shared_mem.Layout.t -> t
(** [loc] is the stable structural label reported on every traced step
    (default [Mutex {stage = 0; tree = 0; level = 0; node = 0}]);
    {!Renaming.Tournament} and {!Renaming.Filter} label each block with
    its tree/level/node coordinates.  Probes: [Enter loc] on {!enter},
    [Check (loc, result)] on {!check}, [Release loc] on {!release} and
    {!reset}. *)

val loc : t -> Obs.Loc.t
(** The structural label given at {!create} time. *)

type slot
(** The turn bit written by [enter]; needed by [check] and [release]
    (the paper keeps it in a local variable — re-reading one's own
    register would cost an extra access). *)

val dummy : slot
(** Placeholder for pre-sizing slot arrays; never passed to {!check}. *)

val enter : t -> Shared_mem.Store.ops -> dir:int -> slot
(** Start competing from direction [dir] (0 or 1). *)

val check : t -> Shared_mem.Store.ops -> dir:int -> slot -> bool
(** [true] iff the caller is now in the block's critical section.
    Once [true], it remains true until the caller releases. *)

val release : t -> Shared_mem.Store.ops -> dir:int -> slot -> unit
(** Leave the block (from the critical section or while waiting),
    preserving the direction's turn bit for its next user. *)

val reset : t -> Shared_mem.Store.ops -> dir:int -> unit
(** Crash recovery: {!release} direction [dir] on behalf of a dead
    holder whose slot is lost.  Costs one extra read — the persistent
    turn bit is recovered from the register instead of the slot.  The
    dead process must take no further step, and at most one direction
    may be reset per corpse per block (the usual one-user-per-direction
    rule). *)
