(** Fast, long-lived renaming with reads and writes.

    An implementation of Buhrman, Garay, Hoepman and Moir,
    {e Long-Lived Renaming Made Fast} (PODC 1995): [k] processes with
    identifiers from a large space [{0,…,S-1}] repeatedly acquire and
    release unique names from a small space, wait-free, using only
    atomic read/write registers, in time polynomial in [k] and
    independent of [S].

    Protocols implement {!Protocol.S}: create an instance over a
    {!Shared_mem.Layout}, then call [get_name]/[release_name] with a
    per-process {!Shared_mem.Store.ops} capability — under the
    deterministic simulator ([Sim]), a sequential store, or [Atomic]
    registers across domains ([Runtime]).

    Start with {!Pipeline} (any [S] → [k(k+1)/2] names, Theorem 11);
    reach for the individual stages ({!Split}, {!Filter}, {!Ma}) or the
    building blocks ({!Splitter}, {!Pf_mutex}, {!Tournament}) when
    composing something custom.  {!Params} picks FILTER parameters and
    predicts pipeline costs.  {!One_time} and {!Tas_baseline} are the
    context baselines from the paper's introduction; {!Mutations} holds
    deliberately broken variants for checker validation. *)

(** The protocol interface and the chaining combinators (§4.4). *)
module Protocol = Protocol

(** The long-lived splitter building block (Figure 2, Theorem 5). *)
module Splitter = Splitter

(** Renaming to [3^(k-1)] names in [O(k)] (Figure 1, Theorem 2). *)
module Split = Split

(** Two-process Enter/Check/Release mutex blocks (Figure 3). *)
module Pf_mutex = Pf_mutex

(** Mutual-exclusion tournament trees (§4.2, Lemma 6). *)
module Tournament = Tournament

(** Renaming to [2dz(k-1)] names in [O(dk log S)] (Figure 4, Thm 10). *)
module Filter = Filter

(** The Moir–Anderson baseline: [k(k+1)/2] names, [Θ(kS)] (MA94). *)
module Ma = Ma

(** One-shot renaming baseline (§1 context). *)
module One_time = One_time

(** Test&Set baseline: [k] names with a stronger primitive (§1). *)
module Tas_baseline = Tas_baseline

(** LevelArray bit-array cascade (Alistarh et al., ICDCS 2014). *)
module Level_array = Level_array

(** Compact splitter cascade (after Aspnes's smaller networks). *)
module Compact_split = Compact_split

(** FILTER parameter selection (§4.1, §4.4) and pipeline planning. *)
module Params = Params

(** The Theorem 11 pipeline: any [S] → [k(k+1)/2] in [O(k^3)]. *)
module Pipeline = Pipeline

(** The backend registry: every protocol, uniformly buildable. *)
module Backends = Backends

(** Deliberately faulty variants — mutation tests for the checkers. *)
module Mutations = Mutations
