(** The FILTER protocol (§4, Theorem 10): wait-free long-lived renaming
    to [D = 2dz(k-1)] names in [O(dk log S)] shared accesses.

    One mutex tournament tree per destination name.  A process [p]
    competes "in parallel" for every name in its cover-free set
    [N_p = { z·x + Q_p(x) }] ({!Numeric.Cover_free}): each round it
    visits each tree once, climbing as far as the non-blocking
    {!Tournament.try_advance} allows; winning any root yields that
    tree's name.  Because at most [k-1] other processes are ever in
    the trees and [‖N_p ∩ N_q‖ ≤ d], at least [d(k-1)] of [p]'s
    [2d(k-1)] trees are contention-free at any time, and the FIFO
    property of the mutex blocks turns that into progress (Lemmas 7–9):
    at most [6d(k-1)·⌈log S⌉] checks are spent before a name is won.

    Space: the trees are conceptually complete binary trees over the
    source name space, but only blocks on the paths of declared
    {e participants} are ever touched, so only those are allocated. *)

include Protocol.S

type config = {
  k : int;  (** Max concurrent processes (≥ 2). *)
  d : int;  (** Polynomial degree (≥ 1). *)
  z : int;  (** Prime modulus, [z ≥ 2d(k-1)]. *)
  s : int;  (** Source name space; needs [s ≤ z^(d+1)]. *)
  participants : int array;
      (** The source names that may call [get_name].  Any number — only
          [k] may be active concurrently. *)
}

val create : ?tight:bool -> ?stage:int -> Shared_mem.Layout.t -> config -> t
(** Allocates every mutex block on a participant's path in a tree of a
    name of its [N_p] set.  [~tight:true] selects the §4.1 remark's
    relaxed requirement (2) — [z > d(k-1)] with a [z]-point probe set —
    used by the E8 ablation.  Each block is labelled
    [Obs.Loc.Mutex {stage; tree = destination name; level; node}]
    ([stage] default 0) for trace attribution.
    @raise Invalid_argument if the parameters violate the paper's
    requirements (1) [s ≤ z^(d+1)] or (2) [z ≥ 2d(k-1)], if [z] is not
    prime, or if a participant is outside [\[0, s)]. *)

val family : t -> Numeric.Cover_free.t
val config : t -> config

val blocks_allocated : t -> int
(** Number of mutex blocks actually allocated (space instrumentation:
    the paper's [O(zdkS)] is the complete-tree count; this is the
    touched subset). *)

(** {1 Instrumentation} (Theorem 10 / Lemma 9 experiments) *)

val rounds : lease -> int
(** Rounds of the Figure 4 loop the acquisition took. *)

val checks : lease -> int
(** Total mutex [check]s performed during the acquisition. *)

val advances : lease -> int list
(** For each {e completed} (non-acquiring) round, the number of trees
    in which the process climbed at least one level — Lemma 9 says
    each entry is at least [d(k-1)] (for paper-constraint instances).
    Empty when the name was acquired in the first round. *)
