(** Deliberately faulty protocol variants — mutation testing for the
    verification machinery.

    A checker that has never caught a bug is untrustworthy.  Each value
    here is a small, plausible-looking corruption of a real protocol —
    including the two candidate reconstructions of Figure 3 that the
    model checker {e refuted} during development (see DESIGN.md §7) —
    and the test suite asserts that the model checker finds a concrete
    violating schedule for every one of them.

    Never use these outside tests. *)

(** Faulty two-process mutex blocks, drop-in shaped like {!Pf_mutex}. *)
module Mutant_mutex : sig
  type t

  type variant =
    | Read_before_write
        (** Enter reads the opponent before publishing anything —
            refuted reconstruction #1: both sides can pass [check]
            while the other is mid-enter. *)
    | Turn_lost_on_release
        (** The turn bit is cleared by release — refuted
            reconstruction #2: a stale re-entrant race breaks
            exclusion across cycles. *)
    | No_yield
        (** Enter never yields to the opponent: both sides claim the
            turn for themselves. *)

  val create : Shared_mem.Layout.t -> variant -> t

  type slot

  val enter : t -> Shared_mem.Store.ops -> dir:int -> slot
  val check : t -> Shared_mem.Store.ops -> dir:int -> slot -> bool
  val release : t -> Shared_mem.Store.ops -> dir:int -> slot -> unit
end

(** Faulty splitters, drop-in shaped like {!Splitter}. *)
module Mutant_splitter : sig
  type t

  type variant =
    | No_interference_check
        (** Returns the advice without re-reading [LAST] (line 7
            dropped): concurrent entrants can all join the same set. *)
    | No_advice_flip
        (** Line 4 writes [advice] instead of [-advice]: sequential
            entrants pile into one set. *)

  val create : Shared_mem.Layout.t -> variant -> t

  type token

  val enter : t -> Shared_mem.Store.ops -> token
  val direction : token -> int
  val release : t -> Shared_mem.Store.ops -> token -> unit
end

(** A {e correct but slow} MA grid: names stay unique, yet every
    [get_name] performs [k(s+4)+2] extra reads — one past the
    Moir–Anderson worst-case bound.  Uniqueness monitors cannot see it;
    only cost checks (the [observe] CLI's bound check, the campaign's
    per-operation access budget) can.  Exists to prove those failure
    paths fire. *)
module Mutant_costly : sig
  type t

  type variant =
    | Quadratic_rescan  (** Pads each GetName past the MA access bound. *)

  val create : Shared_mem.Layout.t -> variant -> k:int -> s:int -> t

  include Protocol.S with type t := t
end

(** Faulty LevelArray, drop-in shaped like {!Level_array} (single
    level): the claim is torn into a read and a write instead of
    test&set, so two probers can both take slot 0. *)
module Mutant_level : sig
  type t

  type variant = Torn_claim

  val create : Shared_mem.Layout.t -> variant -> k:int -> t

  include Protocol.S with type t := t
end

(** The compact splitter cascade wired over interference-blind cells
    (the [No_interference_check] splitter): lockstep entrants follow
    the same advice to the same leaf. *)
module Mutant_compact : sig
  type t

  val create : ?stage:int -> Shared_mem.Layout.t -> k:int -> t

  include Protocol.S with type t := t
end

(** Faulty MA grid, drop-in shaped like {!Ma}. *)
module Mutant_ma : sig
  type t

  type variant =
    | No_recheck
        (** The second read of [X] is dropped: two processes can stop
            at the same block. *)

  val create : Shared_mem.Layout.t -> variant -> k:int -> s:int -> t

  include Protocol.S with type t := t
end
