(** A compact splitter network: renaming to [2^k - 1] names with
    [2^k - k - 1] splitters, in the direction of Aspnes, {e Slightly
    smaller splitter networks} — fewer cells than {!Split}'s ternary
    tree ([3^(k-1)] names, [(3^(k-1) - 1)/2] splitters) by sharing the
    overflow structure instead of duplicating it per node.

    Wiring: one {e stage} per concurrency bound [b = k, k-1, …, 2],
    each a binary tree over the two side output sets only, with
    [2^(b-1)] side-leaf names; the middle output set of {e every} cell
    of a stage routes to the next stage's root, and the cascade ends in
    a single bound-1 backstop name.  A middle exit requires a live
    interferer (a solo process never joins output set 0), so a stage
    never passes more than [b - 1] concurrent processes down — the
    claim the model checker closes exhaustively at small sizes.

    The trade: fewer cells and names, identical solo path ([k - 1]
    splitter visits, ≤ [7(k-1)] accesses), but a contended acquire can
    re-descend each stage for up to [7k(k-1)/2] accesses worst-case —
    measured against the other backends in the [shootout] bench. *)

(** The cell interface the wiring needs — {!Splitter} satisfies it;
    [Mutations] instantiates it with broken cells. *)
module type CELL = sig
  type t
  type token

  val create : ?loc:Obs.Loc.t -> Shared_mem.Layout.t -> t
  val enter : t -> Shared_mem.Store.ops -> token
  val direction : token -> int
  val release : t -> Shared_mem.Store.ops -> token -> unit
  val reset : (t -> Shared_mem.Store.ops -> token -> unit) option
end

module Make (C : CELL) : sig
  type t
  type lease

  val create : ?stage:int -> Shared_mem.Layout.t -> k:int -> t
  val k : t -> int
  val name_space : t -> int
  val cells : t -> int
  val get_name : t -> Shared_mem.Store.ops -> lease
  val name_of : t -> lease -> int
  val release_name : t -> Shared_mem.Store.ops -> lease -> unit
  val reset_footprint : (t -> Shared_mem.Store.ops -> lease -> unit) option
  val path_string : t -> lease -> int array
end

type t
type lease

val create : ?stage:int -> Shared_mem.Layout.t -> k:int -> t
(** Cascade for at most [k] concurrent processes; each cell is
    labelled [Obs.Loc.Splitter {stage; node}] with a cascade-wide node
    index (default [stage = 0]).
    @raise Invalid_argument if [k < 1] or [k > 12]. *)

val k : t -> int

val name_space : t -> int
(** [2^k - 1]. *)

val cells : t -> int
(** Splitter count, [2^k - k - 1]. *)

val get_name : t -> Shared_mem.Store.ops -> lease
val name_of : t -> lease -> int
val release_name : t -> Shared_mem.Store.ops -> lease -> unit
val reset_footprint : (t -> Shared_mem.Store.ops -> lease -> unit) option

val path_string : t -> lease -> int array
(** Directions taken, in entry order (crosses stage boundaries at
    every [0]). *)
