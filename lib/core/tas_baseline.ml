open Shared_mem

type t = { k : int; bits : Cell.t array }
type lease = { name : int; lease_probes : int }

let create layout ~k =
  if k < 1 then invalid_arg "Tas_baseline.create: k must be >= 1";
  { k; bits = Layout.alloc_array layout ~name:"TAS" k 0 }

let name_space t = t.k

let test_and_set (ops : Store.ops) c = ops.rmw c (fun _ -> 1) = 0

let get_name t (ops : Store.ops) =
  (* start the probe cycle at a pid-dependent offset to spread load *)
  let start = ops.pid mod t.k in
  let rec probe n =
    let name = (start + n) mod t.k in
    if test_and_set ops t.bits.(name) then { name; lease_probes = n + 1 } else probe (n + 1)
  in
  probe 0

let name_of _ lease = lease.name
let release_name t (ops : Store.ops) lease = ops.write t.bits.(lease.name) 0
let reset_footprint = Some release_name
let probes lease = lease.lease_probes
