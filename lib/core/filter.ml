open Shared_mem

type config = { k : int; d : int; z : int; s : int; participants : int array }

type t = {
  cfg : config;
  family : Numeric.Cover_free.t;
  levels : int;
  trees : (int, Tournament.t) Hashtbl.t; (* destination name -> tree *)
  is_participant : (int, unit) Hashtbl.t;
  mutable blocks : int;
}

type lease = {
  name : int;
  positions : (Tournament.t * Tournament.position) array;
  winner : int; (* index into positions *)
  lease_rounds : int;
  lease_advances : int list; (* trees advanced per completed round, oldest first *)
}

let create ?(tight = false) ?(stage = 0) layout cfg =
  let family = Numeric.Cover_free.create ~tight ~k:cfg.k ~d:cfg.d ~z:cfg.z () in
  if not (Numeric.Cover_free.admits_source family cfg.s) then
    invalid_arg "Filter.create: requirement (1) violated: need S <= z^(d+1)";
  Array.iter
    (fun p ->
      if p < 0 || p >= cfg.s then invalid_arg "Filter.create: participant outside [0,S)")
    cfg.participants;
  let levels = Numeric.Intmath.ceil_log2 (max cfg.s 2) in
  let blocks : (int, Pf_mutex.t) Hashtbl.t = Hashtbl.create 1024 in
  let t =
    {
      cfg;
      family;
      levels;
      trees = Hashtbl.create 64;
      is_participant = Hashtbl.create 16;
      blocks = 0;
    }
  in
  (* Allocate exactly the blocks on participants' root paths.  Key
     layout: the per-tree node id [(level, node)] is [node * (levels+1)
     + level], then offset by the tree's name. *)
  let node_key m ~level ~node = ((m * (1 lsl levels)) + node) * (t.levels + 1) + level in
  let ensure_block m ~level ~node =
    let key = node_key m ~level ~node in
    match Hashtbl.find_opt blocks key with
    | Some b -> b
    | None ->
        let b =
          Pf_mutex.create ~loc:(Obs.Loc.Mutex { stage; tree = m; level; node }) layout
        in
        Hashtbl.add blocks key b;
        t.blocks <- t.blocks + 1;
        b
  in
  let ensure_tree m =
    if not (Hashtbl.mem t.trees m) then
      Hashtbl.add t.trees m
        (Tournament.create_with ~levels (fun ~level ~node ->
             match Hashtbl.find_opt blocks (node_key m ~level ~node) with
             | Some b -> b
             | None ->
                 invalid_arg
                   (Printf.sprintf "Filter: block (%d,%d) of tree %d was not allocated" level
                      node m)))
  in
  Array.iter
    (fun p ->
      Hashtbl.replace t.is_participant p ();
      Array.iter
        (fun m ->
          ensure_tree m;
          for level = 1 to levels do
            ignore (ensure_block m ~level ~node:(p lsr level))
          done)
        (Numeric.Cover_free.names family p))
    cfg.participants;
  t

let family t = t.family
let config t = t.cfg
let blocks_allocated t = t.blocks
let name_space t = Numeric.Cover_free.name_space t.family

let get_name t (ops : Store.ops) =
  let p = ops.pid in
  if not (Hashtbl.mem t.is_participant p) then
    invalid_arg (Printf.sprintf "Filter.get_name: %d is not a declared participant" p);
  let names = Numeric.Cover_free.names t.family p in
  let positions =
    Array.map
      (fun m ->
        let tree = Hashtbl.find t.trees m in
        (tree, Tournament.position tree ~input:p))
      names
  in
  (* Figure 4: rounds over all trees until some root is won.  Each
     completed (non-acquiring) round records in how many trees the
     process climbed at least one level - the Lemma 9 quantity. *)
  let n = Array.length positions in
  let rec round r advances =
    let won = ref (-1) in
    let advanced = ref 0 in
    let i = ref 0 in
    while !won < 0 && !i < n do
      let tree, pos = positions.(!i) in
      let before = Tournament.level_of pos in
      if Tournament.try_advance tree ops pos then won := !i
      else if Tournament.level_of pos > before then incr advanced;
      incr i
    done;
    if !won >= 0 then (!won, r, List.rev advances)
    else round (r + 1) (!advanced :: advances)
  in
  let winner, lease_rounds, lease_advances = round 1 [] in
  { name = names.(winner); positions; winner; lease_rounds; lease_advances }

let name_of _ lease = lease.name

let release_name _ ops lease =
  Array.iter (fun (tree, pos) -> Tournament.release tree ops pos) lease.positions

let reset_footprint =
  Some
    (fun _ ops (lease : lease) ->
      Array.iter (fun (tree, pos) -> Tournament.reset tree ops pos) lease.positions)

let rounds lease = lease.lease_rounds
let advances lease = lease.lease_advances

let checks lease =
  Array.fold_left (fun acc (_, pos) -> acc + Tournament.checks pos) 0 lease.positions
