open Shared_mem

type t = {
  k : int;
  s : int;
  x : Cell.t array; (* one per grid block, triangular row-major *)
  y : Cell.t array array; (* presence bits: block x source name *)
}

type lease = { name : int; row : int; col : int }

(* Triangular index of block (r, c), r + c <= k-1: row r starts after
   rows 0..r-1 of lengths k, k-1, ... *)
let index ~k ~r ~c = (r * k) - (r * (r - 1) / 2) + c

let create layout ~k ~s =
  if k < 1 then invalid_arg "Ma.create: k must be >= 1";
  if s < 1 then invalid_arg "Ma.create: s must be >= 1";
  let blocks = k * (k + 1) / 2 in
  {
    k;
    s;
    x = Array.init blocks (fun i -> Layout.alloc layout ~name:(Printf.sprintf "X[%d]" i) (-1));
    y =
      Array.init blocks (fun i ->
          Layout.alloc_array layout ~name:(Printf.sprintf "Y[%d]" i) s 0);
  }

let k t = t.k
let source_space t = t.s
let name_space t = t.k * (t.k + 1) / 2

let get_name t (ops : Store.ops) =
  let p = ops.pid in
  if p < 0 || p >= t.s then invalid_arg "Ma.get_name: pid outside [0,S)";
  let rec move r c =
    let i = index ~k:t.k ~r ~c in
    if r + c = t.k - 1 then begin
      (* diagonal: at most one process can be here at a time *)
      ops.write t.y.(i).(p) 1;
      { name = i; row = r; col = c }
    end
    else begin
      ops.write t.x.(i) p;
      let occupied = ref false in
      for q = 0 to t.s - 1 do
        if ops.read t.y.(i).(q) = 1 then occupied := true
      done;
      if !occupied then move r (c + 1)
      else begin
        ops.write t.y.(i).(p) 1;
        if ops.read t.x.(i) = p then { name = i; row = r; col = c }
        else begin
          ops.write t.y.(i).(p) 0;
          move (r + 1) c
        end
      end
    end
  in
  move 0 0

let name_of _ lease = lease.name

let release_name t (ops : Store.ops) lease =
  ops.write t.y.(index ~k:t.k ~r:lease.row ~c:lease.col).(ops.pid) 0

(* the footprint is exactly the presence bit release clears, keyed by
   the (dead) holder's pid *)
let reset_footprint = Some release_name

let grid_position _ lease = (lease.row, lease.col)
