type stage_info = { kind : string; source : int; dest : int; detail : string }
type t = { stages : stage_info list; proto : Protocol.Any.t }
type lease = Protocol.Any.lease

let split_stage ?stage layout ~k ~s =
  let sp = Split.create ?stage layout ~k in
  let info =
    {
      kind = "split";
      source = s;
      dest = Split.name_space sp;
      detail = Printf.sprintf "depth %d ternary tree" (k - 1);
    }
  in
  (info, Protocol.Any.pack (module Split) sp)

let filter_stage ?stage layout ~k ~s ~participants (p : Params.filter_params) =
  let f = Filter.create ?stage layout { k; d = p.d; z = p.z; s; participants } in
  let info =
    {
      kind = "filter";
      source = s;
      dest = Filter.name_space f;
      detail = Printf.sprintf "d=%d z=%d" p.d p.z;
    }
  in
  (info, Protocol.Any.pack (module Filter) f)

let ma_stage layout ~k ~s =
  let m = Ma.create layout ~k ~s in
  let info =
    { kind = "ma"; source = s; dest = Ma.name_space m; detail = "triangular grid" }
  in
  (info, Protocol.Any.pack (module Ma) m)

let create layout ~k ~s ~participants =
  if k < 2 then invalid_arg "Pipeline.create: k must be >= 2";
  Array.iter
    (fun p ->
      if p < 0 || p >= s then invalid_arg "Pipeline.create: participant outside [0,S)")
    participants;
  let stages = ref [] in
  let push st = stages := st :: !stages in
  (* trace label: each stage gets its 1-based pipeline position *)
  let next_stage () = List.length !stages + 1 in
  (* Stage 1: SPLIT if the source space is beyond every FILTER regime
     we could afford directly. *)
  let pow3 = Numeric.Intmath.pow 3 in
  let split_dest = if k <= 12 then pow3 (k - 1) else max_int in
  let cur_s, cur_participants =
    if s > split_dest then begin
      if k > 12 then invalid_arg "Pipeline.create: SPLIT needed but k > 12";
      push (split_stage ~stage:(next_stage ()) layout ~k ~s);
      (split_dest, Array.init split_dest Fun.id)
    end
    else (s, participants)
  in
  (* Stage 2..: FILTER while it shrinks the name space. *)
  let rec filters cur_s cur_participants =
    if cur_s <= k * (k + 1) / 2 then (cur_s, cur_participants)
    else
      let p = Params.choose ~k ~s:cur_s in
      let dest = Params.name_space ~k p in
      if dest >= cur_s then (cur_s, cur_participants)
      else begin
        push (filter_stage ~stage:(next_stage ()) layout ~k ~s:cur_s ~participants:cur_participants p);
        filters dest (Array.init dest Fun.id)
      end
  in
  let cur_s, _ = filters cur_s cur_participants in
  (* Final stage: MA, if it still shrinks the space — or as the sole
     stage when the source space is already tiny, so the pipeline is
     never empty. *)
  if k * (k + 1) / 2 < cur_s || !stages = [] then push (ma_stage layout ~k ~s:cur_s);
  let infos, protos = List.split (List.rev !stages) in
  { stages = infos; proto = Protocol.chain_all protos }

let stages t = t.stages
let protocol t = t.proto
let name_space t = Protocol.Any.name_space t.proto
let get_name t ops = Protocol.Any.get_name t.proto ops
let name_of t lease = Protocol.Any.name_of t.proto lease
let release_name t ops lease = Protocol.Any.release_name t.proto ops lease

let reset_footprint =
  (* every stage kind (split, filter, ma) implements the hook, so the
     dynamic dispatch inside [Any] cannot fail for pipeline stages *)
  match Protocol.Any.reset_footprint with
  | Some reset -> Some (fun t ops lease -> reset t.proto ops lease)
  | None -> None

let pp_stages ppf t =
  List.iter
    (fun st -> Format.fprintf ppf "%-6s %8d -> %6d  (%s)@." st.kind st.source st.dest st.detail)
    t.stages
