module type S = sig
  type t
  type lease

  val name_space : t -> int
  val get_name : t -> Shared_mem.Store.ops -> lease
  val name_of : t -> lease -> int
  val release_name : t -> Shared_mem.Store.ops -> lease -> unit
  val reset_footprint : (t -> Shared_mem.Store.ops -> lease -> unit) option
end

type packed = Packed : (module S with type t = 'a) * 'a -> packed

module Any = struct
  type t = packed
  type lease = Lease : (module S with type t = 'a and type lease = 'l) * 'a * 'l -> lease

  let pack (type a) (m : (module S with type t = a)) (inst : a) = Packed (m, inst)
  let of_packed p = p

  let name_space (Packed ((module P), inst)) = P.name_space inst

  let get_name (Packed ((module P), inst)) ops =
    let l = P.get_name inst ops in
    Lease ((module P), inst, l)

  let name_of _ (Lease ((module P), inst, l)) = P.name_of inst l

  let release_name _ ops (Lease ((module P), inst, l)) = P.release_name inst ops l

  (* Always [Some]: the packed module decides at run time.  Raises
     [Invalid_argument] when the underlying protocol has no recovery
     path — the dynamic analogue of matching on [P.reset_footprint]. *)
  let reset_footprint =
    Some
      (fun _ ops (Lease ((module P), inst, l)) ->
        match P.reset_footprint with
        | Some reset -> reset inst ops l
        | None -> invalid_arg "Protocol.Any.reset_footprint: protocol has no recovery path")

  let reset_available (Packed ((module P), _)) =
    match P.reset_footprint with Some _ -> true | None -> false
end

module Chain (A : S) (B : S) = struct
  type t = { a : A.t; b : B.t }
  type lease = { la : A.lease; lb : B.lease }

  let make a b = { a; b }
  let first t = t.a
  let second t = t.b
  let name_space t = B.name_space t.b

  let get_name t (ops : Shared_mem.Store.ops) =
    let la = A.get_name t.a ops in
    let inner = { ops with pid = A.name_of t.a la } in
    let lb = B.get_name t.b inner in
    { la; lb }

  let name_of t l = B.name_of t.b l.lb

  let release_name t (ops : Shared_mem.Store.ops) l =
    let inner = { ops with pid = A.name_of t.a l.la } in
    B.release_name t.b inner l.lb;
    A.release_name t.a ops l.la

  (* Innermost-first like release, with the corpse's [B]-side identity
     being the intermediate name it still held in [A]. *)
  let reset_footprint =
    match (A.reset_footprint, B.reset_footprint) with
    | Some reset_a, Some reset_b ->
        Some
          (fun t (ops : Shared_mem.Store.ops) l ->
            let inner = { ops with pid = A.name_of t.a l.la } in
            reset_b t.b inner l.lb;
            reset_a t.a ops l.la)
    | _ -> None
end

module Chain_any = Chain (Any) (Any)

(* Same wiring, no recovery hook: the dynamic analogue of the static
   [Chain]'s [| _ -> None].  Packing this (rather than [Chain_any],
   whose [reset_footprint] is unconditionally [Some] and raises at
   reclaim time) makes [Any.reset_available] answer honestly for
   chains with an unrecoverable stage. *)
module Chain_any_norecover = struct
  include Chain_any

  let reset_footprint = None
end

let chain_any a b =
  if Any.reset_available a && Any.reset_available b then
    Any.pack (module Chain_any) (Chain_any.make a b)
  else Any.pack (module Chain_any_norecover) (Chain_any.make a b)

let chain_all = function
  | [] -> invalid_arg "Protocol.chain_all: empty pipeline"
  | first :: rest -> List.fold_left chain_any first rest
