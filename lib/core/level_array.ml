open Shared_mem

type t = {
  k : int;
  levels : Cell.t array array; (* bounded levels, caps 2, 4, 8, … < 2k *)
  backstop : Cell.t array; (* k cells; success guaranteed *)
  bases : int array; (* first name of each level; last entry = backstop *)
  total : int;
}

type lease = { name : int; level : int; slot : int; lease_accesses : int }

let create layout ~k =
  if k < 1 then invalid_arg "Level_array.create: k must be >= 1";
  let rec caps acc c = if c < 2 * k then caps (c :: acc) (2 * c) else List.rev acc in
  let caps = Array.of_list (caps [] 2) in
  let levels =
    Array.mapi
      (fun i c -> Layout.alloc_array layout ~name:(Printf.sprintf "LVL[%d]" i) c 0)
      caps
  in
  let bases = Array.make (Array.length caps + 1) 0 in
  Array.iteri (fun i c -> bases.(i + 1) <- bases.(i) + c) caps;
  {
    k;
    levels;
    backstop = Layout.alloc_array layout ~name:"LVLB" k 0;
    bases;
    total = bases.(Array.length caps) + k;
  }

let k t = t.k
let name_space t = t.total
let levels t = Array.length t.levels + 1
let test_and_set (ops : Store.ops) c = ops.rmw c (fun _ -> 1) = 0

(* Lowest-slot-first probing with a per-level failure budget of half the
   level's capacity.  Every failure — a set bit skipped, or a lost
   test&set race — is chargeable to a distinct concurrent process, so
   with live contention m a process wins at the first level whose
   budget exceeds 2m: both the name value and the access count are
   functions of m alone, independent of the build capacity [k] (the
   adaptivity the LevelArray paper targets).  The final level has [k]
   cells and is retried without bound; at most [k - 1] other processes
   ever hold a cell there, so a free cell always exists and the retry
   terminates once the interferers settle (same argument as
   [Tas_baseline]). *)
let get_name t (ops : Store.ops) =
  let accesses = ref 0 in
  let rec level i =
    if i >= Array.length t.levels then backstop 0
    else begin
      let arr = t.levels.(i) in
      let cap = Array.length arr in
      let rec slot s budget =
        if s >= cap || budget = 0 then level (i + 1)
        else begin
          incr accesses;
          if ops.read arr.(s) <> 0 then slot (s + 1) (budget - 1)
          else begin
            incr accesses;
            if test_and_set ops arr.(s) then
              { name = t.bases.(i) + s; level = i; slot = s; lease_accesses = !accesses }
            else slot (s + 1) (budget - 1)
          end
        end
      in
      slot 0 (cap / 2)
    end
  and backstop j =
    let s = j mod t.k in
    incr accesses;
    if ops.read t.backstop.(s) <> 0 then backstop (j + 1)
    else begin
      incr accesses;
      if test_and_set ops t.backstop.(s) then
        {
          name = t.bases.(Array.length t.levels) + s;
          level = Array.length t.levels;
          slot = s;
          lease_accesses = !accesses;
        }
      else backstop (j + 1)
    end
  in
  level 0

let name_of _ lease = lease.name

let cell_of t lease =
  if lease.level < Array.length t.levels then t.levels.(lease.level).(lease.slot)
  else t.backstop.(lease.slot)

let release_name t (ops : Store.ops) lease = ops.write (cell_of t lease) 0

(* The whole footprint of a holder is its one set bit. *)
let reset_footprint = Some release_name
let accesses lease = lease.lease_accesses
let level_of lease = lease.level
