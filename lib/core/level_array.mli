(** Per-level bit arrays with a probe/claim discipline, following
    Alistarh et al., {e The LevelArray: A Fast, Practical Long-Lived
    Renaming Algorithm} (ICDCS 2014).

    Names are cells of a cascade of bit arrays with capacities
    [2, 4, 8, … < 2k] plus a final backstop array of [k] cells.  A
    process probes each level lowest-slot-first — read the bit, skip it
    if set, otherwise claim it with test&set — and descends after
    [capacity/2] failures; the backstop level is retried without bound
    and always succeeds.  (The paper probes randomly; this variant
    probes deterministically from slot 0, which keeps the simulator
    runs replayable and concentrates names at the low end.)

    The point of the cascade is {e adaptivity}: every failure is
    chargeable to a distinct concurrent process, so with live
    contention [m] both the acquired name and the access count are
    [O(m)] — independent of the build capacity [k] (see the
    [prop_level_adaptive] property suite).

    Like {!Tas_baseline} this uses the stronger test&set primitive
    ([ops.rmw]) rather than reads and writes alone; it is the
    "practical multicore" point of comparison for the paper's
    read/write protocols, not one of them.  Long-lived: release clears
    the claimed bit.  [reset_footprint] is total — a holder's whole
    footprint is its one set bit. *)

type t

type lease

val create : Shared_mem.Layout.t -> k:int -> t
(** Cascade for at most [k] concurrent processes.  Registers the level
    arrays [LVL[i]] and the backstop [LVLB].
    @raise Invalid_argument if [k < 1]. *)

val k : t -> int

val name_space : t -> int
(** Total cells across all levels — less than [4k]. *)

val levels : t -> int
(** Number of levels including the backstop. *)

val get_name : t -> Shared_mem.Store.ops -> lease
val name_of : t -> lease -> int
val release_name : t -> Shared_mem.Store.ops -> lease -> unit
val reset_footprint : (t -> Shared_mem.Store.ops -> lease -> unit) option

val accesses : lease -> int
(** Shared accesses the acquisition took (adaptivity instrumentation). *)

val level_of : lease -> int
(** The level the name was claimed at; the backstop is [levels t - 1]. *)
