type state = Live | Degraded | Quarantined

type thresholds = {
  degrade_sheds : int;
  quarantine_leaks : int;
  drain_stale : int;
}

let default_thresholds =
  { degrade_sheds = 64; quarantine_leaks = 1; drain_stale = 4 }

type t = {
  th : thresholds;
  mutable state : state;
  mutable last_pending : int;
  mutable stale : int;
  mutable quarantines : int;
  mutable rebuilds : int;
}

let create th =
  if th.degrade_sheds < 1 then invalid_arg "Health.create: degrade_sheds < 1";
  if th.quarantine_leaks < 1 then invalid_arg "Health.create: quarantine_leaks < 1";
  if th.drain_stale < 1 then invalid_arg "Health.create: drain_stale < 1";
  { th; state = Live; last_pending = 0; stale = 0; quarantines = 0; rebuilds = 0 }

let state t = t.state
let quarantines t = t.quarantines
let rebuilds t = t.rebuilds

let to_string = function
  | Live -> "live"
  | Degraded -> "degraded"
  | Quarantined -> "quarantined"

let quarantine t =
  if t.state <> Quarantined then t.quarantines <- t.quarantines + 1;
  t.state <- Quarantined;
  t.stale <- 0

let observe t ~sheds ~leaks ~pending ~admitted =
  (* Drain staleness: a non-empty pending census that no scan interval
     moves.  The counter resets the moment pending changes at all, so
     a merely slow drain never trips it. *)
  if pending > 0 && pending = t.last_pending then t.stale <- t.stale + 1
  else t.stale <- 0;
  t.last_pending <- pending;
  (match t.state with
  | Quarantined ->
      (* Rebuilt in place: every lease reclaimed (admission empty),
         nothing pending, and a quiet scan — only then re-admit. *)
      if admitted = 0 && pending = 0 && leaks = 0 then begin
        t.state <- Live;
        t.rebuilds <- t.rebuilds + 1
      end
  | Live | Degraded ->
      if leaks >= t.th.quarantine_leaks then quarantine t
      else if t.stale >= t.th.drain_stale then quarantine t
      else if sheds >= t.th.degrade_sheds then t.state <- Degraded
      else if leaks = 0 && sheds = 0 then t.state <- Live);
  t.state
