(** Client resilience policy: what a caller does when the server says
    {!Server.outcome.Busy} or {!Server.outcome.Shed}.

    The paper's protocols are wait-free per operation, but a {e
    service} front-end adds admission: a claimed source name or a full
    shard turns into a refusal the caller must absorb.  This module
    gives that caller a discipline — bounded retries under seeded
    exponential backoff with jitter, an optional deadline, and
    deadline-aware shedding: when the telemetry window's p99 latency
    already exceeds the deadline, the request is shed {e before} its
    first attempt rather than queueing behind a burn it cannot win.

    Backoff is stateless: spin counts are a pure function of
    [(seed, client, attempt)] (the same avalanche-hash jitter
    [lib/recovery] uses), capped at [cap_spins] — so runs replay
    identically per seed, which the property tests pin down.

    The module is deliberately independent of [Server]: {!drive} takes
    the attempt as a thunk, so any refusal-shaped API (and any test)
    can run under a policy. *)

type t = {
  seed : int;  (** Jitter seed — distinct seeds, distinct schedules. *)
  retries : int;  (** Retries after the first attempt ([0] = one shot). *)
  base_spins : int;  (** First backoff step; also the jitter range. *)
  cap_spins : int;  (** Backoff ceiling, jitter included. *)
  deadline_ns : int;  (** Give-up budget per request ([0] = none). *)
}

val make :
  ?seed:int ->
  ?retries:int ->
  ?base_spins:int ->
  ?cap_spins:int ->
  ?deadline_ns:int ->
  unit ->
  t
(** Defaults: seed [0x5EED], 8 retries, base 64, cap 8192, no
    deadline.
    @raise Invalid_argument on negative retries/deadline, a
    non-positive base, or [cap_spins < base_spins]. *)

val default : t

val backoff_spins : t -> client:int -> attempt:int -> int
(** Spins to wait before retry [attempt] (0-based): deterministic in
    [(seed, client, attempt)], always in [\[1, cap_spins\]] —
    [min cap (base · 2^attempt + jitter)] with jitter in
    [\[0, base\]].
    @raise Invalid_argument when [attempt < 0]. *)

type 'a outcome =
  | Granted of { value : 'a; retries : int }
      (** Granted after [retries] backed-off re-attempts. *)
  | Deadline_exceeded of { retries : int }
      (** The deadline expired between attempts. *)
  | Shed of { retries : int; early : bool }
      (** Given up: retries exhausted, or ([early]) shed before the
          first attempt because the observed p99 already burned the
          deadline. *)

val drive :
  t ->
  client:int ->
  now_ns:(unit -> int) ->
  ?p99_ns:(unit -> int) ->
  attempt:(unit -> ('a, [ `Busy | `Shed ]) result) ->
  unit ->
  'a outcome
(** Run one request under the policy.  [attempt] is called up to
    [1 + retries] times; [`Busy]/[`Shed] refusals back off and retry.
    [now_ns] is only consulted when a deadline is set; [p99_ns]
    (default: constant 0, never sheds early) supplies the live
    latency estimate for deadline-aware shedding. *)

val of_string : string -> (t, string) result
(** Parse a policy spec: comma-separated [key=value] over keys
    [retries], [base], [cap], [deadline_ns], [deadline_ms], [seed] —
    e.g. ["retries=8,base=64,cap=8192,deadline_ms=5"].  Unspecified
    keys take {!default}s. *)

val to_string : t -> string
