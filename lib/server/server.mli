(** Renaming as a service: a sharded, batched name server.

    The paper's {e long-lived} property — names can be acquired and
    released forever, at a cost independent of the unbounded source
    space — is exactly what makes a name {e server} viable.  This
    module turns the protocol objects into one:

    {ul
    {- {b Sharding.}  A pool of {!Renaming.Protocol.S} instances (one
       per shard, each over its own layout and atomic store, labelled
       [~stage:shard] for the flight recorder), with source names
       routed by a seed-fixed hash.  Per-shard concurrency is capped
       at the shard protocol's [k], so every instance runs inside its
       correctness precondition; the global destination space is the
       concatenation of the shard spaces.}
    {- {b A preallocated lock-free request slab.}  Every held name is
       carried by one slot of a fixed slab ([shards × k] slots —
       the tight bound, since admission caps holders).  Slots are
       claimed from a tag-CAS Treiber freelist and threaded through
       per-shard pending-release lists by index; a request allocates
       no slab state, and tokens handed to clients are slot indices.}
    {- {b Batched release draining.}  {!release} does not run the
       protocol's [release_name]: the lease parks in the client's warm
       cache or on the shard's pending list, and whichever client
       trips the [batch] threshold (or needs admission capacity, or
       calls {!drain_all}) drains the whole list at once — releases
       are executed off the acquire path, in batches.}
    {- {b A per-client warm-name cache.}  A released name stays {e
       held} from the protocol's point of view, cached client-side; a
       re-acquire of the same source name by the same client is
       granted from the cache with {b zero} shared accesses.  This is
       legal {e precisely because renaming is long-lived}: the server
       never returned the name, it merely held it longer — §2's
       uniqueness condition cannot be violated by re-granting a name
       to the process that already holds it, and the claim table keeps
       every other client out ({!outcome.Busy}) until the lease is
       actually drained.}}

    Uniqueness is monitored on-line through a {!Runtime.Agg}
    scoreboard exactly as {!Runtime.Domain_runner} does, and when a
    registry / flight ring is supplied every client writes its own
    shard, so the whole [lib/obs] stack (occupancy, provenance,
    Perfetto export) applies to server runs unchanged. *)

type config = {
  shards : int;  (** Protocol instances in the pool. *)
  k_per_shard : int;  (** Concurrent holders admitted per shard. *)
  source_space : int;  (** Size [S] of the source name space. *)
  warm_capacity : int;  (** Warm leases cached per client ([0] disables). *)
  batch : int;  (** Pending releases that trip a shard drain. *)
  clients : int;  (** Registered client handles (one per domain). *)
}

val default_config :
  ?shards:int ->
  ?k_per_shard:int ->
  ?warm_capacity:int ->
  ?batch:int ->
  clients:int ->
  source_space:int ->
  unit ->
  config
(** Defaults: 4 shards of [k = 4], warm capacity 2, batch 8. *)

type t
type client

type outcome =
  | Granted of { name : int; token : int; warm : bool; accesses : int }
      (** [name] is global (shard base + local name); pass [token]
          back to {!release}.  [warm] grants cost [accesses = 0];
          cold grants report the protocol's shared-access count. *)
  | Busy
      (** The source name is claimed by another client (held, warm, or
          pending drain) — the renaming precondition that distinct
          concurrent participants carry distinct source names, served
          as first-come-first-served admission. *)
  | Shed
      (** The shard is at its [k] capacity even after draining — the
          server refuses rather than break the protocol's bound. *)

val create :
  ?registry:Obs.Registry.t ->
  ?flight:Obs.Flight.t ->
  ?backend:(Shared_mem.Layout.t -> stage:int -> k:int -> Renaming.Protocol.Any.t) ->
  ?parked:int ->
  config ->
  t
(** Build the shard pool (default backend: {!Renaming.Split} per
    shard).  Client handles, registry shards and flight rings are all
    created here, before any domain runs.  [parked] (default [0]) is
    the number of clients that will park holding a name — forwarded
    to the {!Runtime.Agg} scoreboard.
    @raise Invalid_argument on a non-positive dimension, or when the
    slab would exceed the token encoding (≈2M slots). *)

val client : t -> int -> client
(** The preallocated handle of client [id ∈ \[0, clients)].  A handle
    is single-owner: exactly one domain may use it. *)

val acquire : t -> client -> src:int -> outcome
(** Serve one acquire request for source name [src].
    @raise Invalid_argument when [src] is outside [\[0, source_space)]. *)

val release : t -> client -> token:int -> unit
(** Give a granted name back: into the warm cache (evicting the
    oldest warm lease onto the shard's pending list when full), or
    straight onto the pending list when caching is off.  Drains the
    shard when the batch threshold trips.
    @raise Invalid_argument if [token] is not a slot this client
    holds. *)

val flush : t -> client -> unit
(** Push every warm lease this client caches onto its shard's pending
    list and drain those shards — call in a client's epilogue so no
    release can be lost at the join.  Only the owning client may
    flush its cache (it is domain-local state). *)

val drain_all : t -> client -> unit
(** Drain every shard's pending list, [client] doing the work — call
    after the join to retire batched releases other clients left
    behind.  Cannot flush other clients' warm caches (see {!flush});
    anything still warm after a crash stays held and shows up in
    {!outstanding} — exactly a leak. *)

val outstanding : t -> int
(** Names currently held, warm, or pending drain, across all shards. *)

val name_space : t -> int
val shards : t -> int

val shard_of : t -> src:int -> int
(** The shard serving [src] — a pure function of [(src, shards)], so
    routing is stable across calls, clients and server instances of
    the same geometry. *)

val scoreboard : t -> Runtime.Agg.t
(** The live uniqueness/concurrency scoreboard (violations, holder
    high-water marks, per-client cycle counts).  Freeze it with
    {!Runtime.Agg.result} after the run. *)

val merge_flight : t -> unit
(** Concatenate per-client flight rings into the ring passed at
    {!create} (client order) — call after the join, like
    {!Runtime.Domain_runner}'s merge. *)

(** {1 Per-client counters} — single-writer; read them after the join. *)

type client_stats = {
  acquires : int;  (** Granted, warm and cold together. *)
  warm_hits : int;
  busy : int;
  shed : int;
  drains : int;  (** Times this client drained a shard. *)
  drained_releases : int;  (** Protocol releases it executed doing so. *)
}

val client_stats : client -> client_stats
val client_obs : client -> Obs.Registry.shard option
(** The client's registry shard (when a registry was supplied) — the
    load harness adds its latency series to the same shard. *)

(** {1 Telemetry probes} — read-only snapshots for a sampler.

    Every probe below only {e reads}: admission/pending atomics via
    [Atomic.get], warm-cache residency via plain reads of the clients'
    own fields (possibly stale — telemetry-grade by design).  Nothing
    is written, so attaching a {!Obs.Sampler} adds {b zero} shared
    accesses to any request path; the warm-grant path keeps its
    verified 0. *)

type shard_probe = {
  admitted : int;  (** Admission occupancy: held + warm + pending ≤ k. *)
  pending : int;  (** Pending-release list depth. *)
  warm : int;  (** Warm leases parked on this shard across clients. *)
}

val probe_shard : t -> int -> shard_probe
(** @raise Invalid_argument on a bad shard index. *)

val probe_free : t -> int
(** Free slab slots (capacity minus every shard's admitted count). *)

val probe_claims : t -> int
(** Source names currently claimed — an [O(source_space)] scan; fine
    at sampler tick rates, not for request paths. *)

val sampler_sources : t -> Obs.Sampler.source list
(** The canonical gauge set for {!Obs.Sampler.create}: per shard
    [shardN.admitted] / [shardN.pending] / [shardN.warm], plus
    [slab.free] and [claims.held]. *)
