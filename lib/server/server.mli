(** Renaming as a service: a sharded, batched, {e self-healing} name
    server.

    The paper's {e long-lived} property — names can be acquired and
    released forever, at a cost independent of the unbounded source
    space — is exactly what makes a name {e server} viable.  This
    module turns the protocol objects into one:

    {ul
    {- {b Sharding.}  A pool of {!Renaming.Protocol.S} instances (one
       per shard, each over its own layout and atomic store, labelled
       [~stage:shard] for the flight recorder), with source names
       routed by a seed-fixed hash.  Per-shard concurrency is capped
       at the shard protocol's [k], so every instance runs inside its
       correctness precondition; the global destination space is the
       concatenation of the shard spaces.}
    {- {b A preallocated lock-free request slab.}  Every held name is
       carried by one slot of a fixed slab ([shards × k] slots —
       the tight bound, since admission caps holders).  Slots are
       claimed from a tag-CAS Treiber freelist and threaded through
       per-shard pending-release lists by index; a request allocates
       no slab state, and tokens handed to clients are slot indices.}
    {- {b Batched release draining.}  {!release} does not run the
       protocol's [release_name]: the lease parks in the client's warm
       cache or on the shard's pending list, and whichever client
       trips the [batch] threshold (or needs admission capacity, or
       calls {!drain_all}) drains the whole list at once — releases
       are executed off the acquire path, in batches.}
    {- {b A per-client warm-name cache.}  A released name stays {e
       held} from the protocol's point of view, cached client-side; a
       re-acquire of the same source name by the same client is
       granted from the cache with {b zero} protocol (store) accesses.
       This is legal {e precisely because renaming is long-lived}: the
       server never returned the name, it merely held it longer — §2's
       uniqueness condition cannot be violated by re-granting a name
       to the process that already holds it, and the claim table keeps
       every other client out ({!outcome.Busy}) until the lease is
       actually drained.}
    {- {b Resilience.}  Every lease retirement — batched drain or
       crash reclaim — must win a CAS on the slot's {e retirement
       fence}, so it happens exactly once no matter how drains,
       reclaims and fenced clients interleave.  Liveness rides on
       {!tend}: clients heartbeat, and one of them cooperatively holds
       the {e reclaimer seat} — scanning for dead clients (reclaiming
       their leases through the protocol's [reset_footprint], adopting
       drain walks they died inside, sweeping their claims), healing
       wedged drains, and driving per-shard {!Health}: a shard that
       leaks leases or wedges its drain is {e quarantined}, its
       acquires spill to a sibling (salted-rehash failover — the claim
       table keeps uniqueness, not the route), and it is re-admitted
       once rebuilt in place.  A client declared dead by mistake is
       {e fenced} by its epoch: it re-syncs and carries on, its stale
       tokens dying silently rather than double-retiring.}}

    Uniqueness is monitored on-line through a {!Runtime.Agg}
    scoreboard exactly as {!Runtime.Domain_runner} does, and when a
    registry / flight ring is supplied every client writes its own
    shard, so the whole [lib/obs] stack (occupancy, provenance,
    Perfetto export) applies to server runs unchanged. *)

module Health = Health
module Policy = Policy

type resilience = {
  scan_interval_ns : int;
      (** Wall-clock spacing between reclaimer scans ([0] = every
          eligible {!tend}). *)
  lease_ttl : int;
      (** Scans without a heartbeat before a client is declared dead
          (also the orphaned-pending retirement threshold). *)
  seat_ttl : int;
      (** Silent scan intervals before the reclaimer seat is stolen. *)
  tend_every : int;  (** {!tend} calls between seat/epoch checks. *)
  degrade_sheds : int;  (** {!Health.thresholds.degrade_sheds}. *)
  quarantine_leaks : int;  (** {!Health.thresholds.quarantine_leaks}. *)
  drain_stale : int;  (** {!Health.thresholds.drain_stale}. *)
}

val default_resilience : resilience
(** [scan_interval_ns = 1ms], [lease_ttl = 8], [seat_ttl = 4],
    [tend_every = 32], and {!Health.default_thresholds}. *)

type config = {
  shards : int;  (** Protocol instances in the pool. *)
  k_per_shard : int;  (** Concurrent holders admitted per shard. *)
  source_space : int;  (** Size [S] of the source name space. *)
  warm_capacity : int;  (** Warm leases cached per client ([0] disables). *)
  batch : int;  (** Pending releases that trip a shard drain. *)
  clients : int;  (** Registered client handles (one per domain). *)
  resilience : resilience;
}

val default_config :
  ?shards:int ->
  ?k_per_shard:int ->
  ?warm_capacity:int ->
  ?batch:int ->
  ?resilience:resilience ->
  clients:int ->
  source_space:int ->
  unit ->
  config
(** Defaults: 4 shards of [k = 4], warm capacity 2, batch 8,
    {!default_resilience}. *)

type t
type client

type outcome =
  | Granted of { name : int; token : int; warm : bool; accesses : int }
      (** [name] is global (shard base + local name); pass [token]
          back to {!release}.  [warm] grants cost [accesses = 0];
          cold grants report the protocol's shared-access count. *)
  | Busy
      (** The source name is claimed by another client (held, warm, or
          pending drain) — the renaming precondition that distinct
          concurrent participants carry distinct source names, served
          as first-come-first-served admission. *)
  | Shed
      (** The shard is at its [k] capacity even after draining — the
          server refuses rather than break the protocol's bound. *)

val create :
  ?registry:Obs.Registry.t ->
  ?flight:Obs.Flight.t ->
  ?journeys:Obs.Journey.t array ->
  ?backend:(Shared_mem.Layout.t -> stage:int -> k:int -> Renaming.Protocol.Any.t) ->
  ?parked:int ->
  config ->
  t
(** Build the shard pool (default backend: {!Renaming.Split} per
    shard).  Client handles, registry shards and flight rings are all
    created here, before any domain runs.  [parked] (default [0]) is
    the number of clients that will park holding a name — forwarded
    to the {!Runtime.Agg} scoreboard.  [journeys] wires one
    per-request journey recorder per client (same index as client
    ids): the server stamps stage dwells — claim CAS, admission
    flushes, drains, the protocol acquire with its access count,
    release/pending fencing, reclaimer work — into whichever journey
    the owning domain has in flight, and attributes out-of-journey
    work as window interference.
    @raise Invalid_argument on a non-positive dimension, a bad
    resilience knob, a [journeys] array not sized [clients], or when
    the slab would exceed the token encoding (≈2M slots). *)

val client : t -> int -> client
(** The preallocated handle of client [id ∈ \[0, clients)].  A handle
    is single-owner: exactly one domain may use it. *)

val acquire : t -> client -> src:int -> outcome
(** Serve one acquire request for source name [src].  When the
    routed shard is quarantined the request fails over to a live
    sibling (counted in {!resilience_stats.failovers}).
    @raise Invalid_argument when [src] is outside [\[0, source_space)]. *)

val release : t -> client -> token:int -> unit
(** Give a granted name back: into the warm cache (evicting the
    oldest warm lease onto the shard's pending list when full), or
    straight onto the pending list when caching is off.  Drains the
    shard when the batch threshold trips.  A client that was declared
    dead and fenced does {e not} raise here: its token was retired on
    its behalf (or is now), and the release is absorbed silently.
    @raise Invalid_argument if [token] is not a slot this client
    holds. *)

val flush : t -> client -> unit
(** Push every warm lease this client caches onto its shard's pending
    list and drain those shards — call in a client's epilogue so no
    release can be lost at the join.  Only the owning client may
    flush its cache (it is domain-local state). *)

val drain_all : t -> client -> unit
(** Drain every shard's pending list, [client] doing the work — call
    after the join to retire batched releases other clients left
    behind.  Cannot flush other clients' warm caches (see {!flush});
    anything still warm after a crash stays held until {!scan}
    reclaims it, and shows up in {!outstanding} meanwhile — exactly a
    leak. *)

val outstanding : t -> int
(** Names currently held, warm, or pending drain, across all shards. *)

(** {1 Liveness: heartbeats, the reclaimer seat, health}

    Crash tolerance is cooperative: no external reclaimer process
    exists.  Clients call {!tend} once per request (or at any
    convenient cadence); it bumps the caller's heartbeat and, every
    [tend_every] calls, checks the {e reclaimer seat} — claiming it if
    vacant, scanning if held and due, stealing it if the holder's scan
    heartbeat has been silent for [seat_ttl] intervals.  The seat's
    epoch fences deposed holders; the per-slot fences make even an
    in-flight deposed retirement exactly-once. *)

val tend : t -> client -> unit
(** Heartbeat + seat duty.  Cheap when off-duty: one atomic increment
    per call, seat logic only every [tend_every] calls and at most
    once per [scan_interval_ns]. *)

val scan : t -> client -> unit
(** Seize the seat unconditionally and run one scan now — for tests
    and run epilogues (e.g. settling leaked leases after a join);
    production clients should let {!tend} pace scans instead. *)

val seize_seat : t -> client -> int
(** Take the reclaimer seat (epoch-fenced CAS; returns the new seat
    word).  Exposed so a fault plan can start a run with a chosen
    victim on duty. *)

val health : t -> int -> Health.state
(** The router-visible health of a shard.
    @raise Invalid_argument on a bad shard index. *)

val set_chaos : client -> (string -> unit) option -> unit
(** Install a fault-injection hook on a client handle; it fires at
    every drain-walk slot boundary (tag ["drain"]) {e before} the
    slot's retirement fence is attempted, so a hook that raises or
    parks models a crash that can orphan a pending chain but never
    half-retires a slot.  Owning domain only. *)

type resilience_stats = {
  scans : int;  (** Reclaimer scans executed (all seat holders). *)
  deaths : int;  (** Clients declared dead. *)
  reclaimed : int;  (** Leases reclaimed from dead clients. *)
  claims_swept : int;  (** Orphaned source claims cleared. *)
  reclaim_max_scans : int;
      (** Worst staleness (in scans) at which a lease was reclaimed —
          the chaos campaign's time-to-reclaim bound. *)
  drain_heals : int;  (** Wedged-drain + orphaned-pending retirements. *)
  adopted_walks : int;  (** Dead walkers' drain cursors adopted. *)
  seat_steals : int;
  quarantines : int;  (** Shard transitions into quarantine. *)
  rebuilds : int;  (** Quarantined shards re-admitted. *)
  fenced : int;  (** Client operations absorbed by an epoch fence. *)
  failovers : int;  (** Acquires spilled off a quarantined shard. *)
}

val resilience_stats : t -> resilience_stats
(** Snapshot of the liveness counters.  Atomics plus per-client
    single-writer fields — read after the join for exact values,
    any time for telemetry-grade ones. *)

val name_space : t -> int
val shards : t -> int

val shard_of : t -> src:int -> int
(** The shard serving [src] — a pure function of [(src, shards)], so
    routing is stable across calls, clients and server instances of
    the same geometry.  Failover may serve [src] elsewhere while that
    shard is quarantined. *)

val shard_route : shards:int -> src:int -> int
(** {!shard_of} without a server: the same pure routing function, for
    harnesses that need a shard's source set before construction. *)

val scoreboard : t -> Runtime.Agg.t
(** The live uniqueness/concurrency scoreboard (violations, holder
    high-water marks, per-client cycle counts).  Freeze it with
    {!Runtime.Agg.result} after the run. *)

val merge_flight : t -> unit
(** Concatenate per-client flight rings into the ring passed at
    {!create} (client order) — call after the join, like
    {!Runtime.Domain_runner}'s merge. *)

(** {1 Per-client counters} — single-writer; read them after the join. *)

type client_stats = {
  acquires : int;  (** Granted, warm and cold together. *)
  warm_hits : int;
  busy : int;
  shed : int;
  drains : int;  (** Times this client drained a shard. *)
  drained_releases : int;  (** Protocol releases it executed doing so. *)
  fenced : int;  (** Operations absorbed by this client's epoch fence. *)
  failovers : int;  (** Acquires it spilled off quarantined shards. *)
}

val client_stats : client -> client_stats
val client_id : client -> int

val client_obs : client -> Obs.Registry.shard option
(** The client's registry shard (when a registry was supplied) — the
    load harness adds its latency series to the same shard. *)

(** {1 Telemetry probes} — read-only snapshots for a sampler.

    Every probe below only {e reads}: admission/pending atomics via
    [Atomic.get], warm-cache residency via plain reads of the clients'
    own fields (possibly stale — telemetry-grade by design).  Nothing
    is written, so attaching a {!Obs.Sampler} adds {b zero} shared
    accesses to any request path; the warm-grant path keeps its
    verified 0 {e protocol} accesses (its one slab-local fence CAS is
    outside the tallied store). *)

type shard_probe = {
  admitted : int;  (** Admission occupancy: held + warm + pending ≤ k. *)
  pending : int;  (** Pending-release list depth. *)
  warm : int;  (** Warm leases parked on this shard across clients. *)
}

val probe_shard : t -> int -> shard_probe
(** @raise Invalid_argument on a bad shard index. *)

val probe_free : t -> int
(** Free slab slots (capacity minus every shard's admitted count). *)

val probe_claims : t -> int
(** Source names currently claimed — an [O(source_space)] scan; fine
    at sampler tick rates, not for request paths. *)

val sampler_sources : t -> Obs.Sampler.source list
(** The canonical gauge set for {!Obs.Sampler.create}: per shard
    [shardN.admitted] / [shardN.pending] / [shardN.warm] /
    [shardN.health], plus [slab.free], [claims.held], [seat.scans]
    and [reclaimed]. *)
