(** Per-shard health: a pure state machine the reclaimer seat drives
    once per scan.

    A shard is {e live} until its scan-over-scan deltas say otherwise:
    admission pressure (sheds this scan) degrades it, reclaimed leases
    (a crashed client's footprint came back through the lease scanner)
    or a wedged pending list (non-empty and unmoved for
    [drain_stale] consecutive scans) quarantine it.  A quarantined
    shard stops taking new acquires — the router spills them to a
    sibling — and is re-admitted only after it has been rebuilt in
    place: every lease reclaimed, nothing pending, and one quiet scan.

    The module is deliberately free of atomics and clocks: the server
    feeds it deltas and mirrors the resulting state into the padded
    word its router reads.  That keeps every transition unit-testable
    without domains. *)

type state = Live | Degraded | Quarantined

type thresholds = {
  degrade_sheds : int;  (** Sheds per scan that degrade the shard. *)
  quarantine_leaks : int;  (** Reclaimed leases per scan that quarantine. *)
  drain_stale : int;  (** Scans of unmoved non-empty pending that quarantine. *)
}

val default_thresholds : thresholds
(** [{ degrade_sheds = 64; quarantine_leaks = 1; drain_stale = 4 }]. *)

type t

val create : thresholds -> t
(** @raise Invalid_argument on a non-positive threshold. *)

val observe :
  t -> sheds:int -> leaks:int -> pending:int -> admitted:int -> state
(** One scan tick.  [sheds] and [leaks] are deltas since the previous
    tick; [pending] and [admitted] are the shard's current censuses.
    Returns the state after the transition. *)

val state : t -> state

val quarantines : t -> int
(** Transitions into [Quarantined] so far. *)

val rebuilds : t -> int
(** Transitions [Quarantined] → [Live] so far. *)

val to_string : state -> string
