(** The heavy-churn load harness: real OS domains driving a
    {!Server} with {!Workload.server_spec} request streams.

    One domain per client.  Timed arrivals are {e open-loop}: request
    [i]'s latency is measured from its scheduled arrival time, not
    from when the client got around to issuing it, so a server that
    falls behind is charged the queueing delay (no coordinated
    omission).  A closed-loop stream (every arrival [0.]) measures
    from issue instead — there is no schedule to fall behind.  Cycle
    accounting, uniqueness monitoring and leak detection all go
    through the server's {!Runtime.Agg} scoreboard; latency and
    shared-access-cost histograms are client-local {!Obs.Histogram}s
    merged after the join — the same single-writer-then-merge
    discipline as the registry.

    Every client {!Server.tend}s once per request, so the resilience
    layer is live: crashed clients are declared dead and their leases
    reclaimed {e during} the run when it lasts long enough, and the
    post-join {e settle} epilogue drives the reclaimer directly until
    nothing is outstanding (or two lease TTLs of scans have passed —
    the chaos campaign's reclaim bound). *)

(** Client-side fault behaviours, mirroring the {!Sim.Faults} actions
    on real domains (the simulator freezes a victim's scheduler slot;
    here the victim misbehaves in its own request loop). *)
type fault =
  | Park
      (** Acquire one name and hold it until every normal client has
          finished, then release and flush — the long-lived parked
          holder. *)
  | Stall of { request : int; spins : int }
      (** Spin [spins] times while holding the name granted for
          request [request]. *)
  | Slow of int  (** Spin this many times after every completed cycle. *)
  | Crash of { request : int }
      (** Stop dead before issuing request [request]: no release of
          warm leases, no flush — whatever the client cached leaks
          until the reclaimer expires its lease (or forever, without
          scans) and shows up in [outstanding] meanwhile. *)
  | Crash_in_drain of { drain : int }
      (** Crash at the [drain]-th drain-walk slot boundary this client
          reaches: the pending chain it was retiring is orphaned
          mid-walk — healed by cursor adoption + the orphaned-pending
          sweep. *)
  | Park_in_drain of { drain : int }
      (** Park (until every normal client finishes) at the [drain]-th
          drain-walk slot boundary, then resume — the wedged drainer
          the per-shard drain-staleness healing exists for. *)

val of_plan : Sim.Faults.plan -> (int * fault) list
(** Map a simulator fault plan onto client faults: victims become
    client indices; [At_access n] / [On_acquire n] / [On_note]
    occurrences become request indices (the closest real-domain
    analogue of a self-condition); [Stall n] spins [1000·n], [Slow n]
    spins [100·n] — the simulator's global-step currency rendered as
    local work. *)

(** Always-on telemetry for a run: windowed rollups of the request
    stream (per-client {!Obs.Timeseries}, merged deterministically
    after the join) plus the sampler's gauge series read from
    {!Server} probes on a dedicated domain.  Canonical series names —
    ["latency"], ["attempts"], ["attempts_failed"], ["grants"],
    ["warm"], ["sheds"], and each sampler source (e.g.
    ["shard0.pending"], ["slab.free"]) — are what {!Obs.Slo} clauses
    bind to. *)
type telemetry = {
  window_ns : int;
  latency : Obs.Timeseries.t;  (** Open-loop ns per completed request. *)
  attempts : Obs.Timeseries.t;  (** Every request issued (count-only). *)
  failed : Obs.Timeseries.t;
      (** Every refused attempt — [Busy] and [Shed] both — in its own
          series, so failed work is first-class telemetry rather than
          silently excluded from the latency story. *)
  grants : Obs.Timeseries.t;
  warm : Obs.Timeseries.t;  (** Warm grants (count-only). *)
  sheds : Obs.Timeseries.t;
  samples : (string * Obs.Timeseries.t) list;  (** Sampler series. *)
  sampler_ticks : int;
}

val telemetry_series : telemetry -> string -> Obs.Timeseries.t option
(** Lookup by canonical name — pass as [~series] to {!Obs.Slo.evaluate}. *)

(** Policy outcome census over the whole run (all clients summed):
    what happened to each issued request under the resilience policy.
    Without a policy, [retried]/[deadline]/[shed_*] stay 0 and
    refusals are visible in [attempts_failed]. *)
type outcomes = {
  issued : int;  (** Requests issued (one per request slot). *)
  granted : int;
  retried : int;  (** Backed-off re-attempts across all requests. *)
  deadline : int;  (** Requests that hit their deadline mid-retry. *)
  shed_policy : int;  (** Requests that exhausted their retries. *)
  shed_early : int;
      (** Requests shed before their first attempt because the
          observed p99 already burned the deadline. *)
}

type report = {
  result : Runtime.Agg.result;
  cycles : int;  (** Completed acquire/release cycles, all clients. *)
  acquires : int;
  warm_hits : int;
  busy : int;
  shed : int;
  drains : int;
  drained_releases : int;
  elapsed_s : float;  (** Spawn to post-join drain, wall clock. *)
  throughput : float;  (** [cycles /. elapsed_s]. *)
  latency : Obs.Histogram.snap;
      (** Open-loop: nanoseconds from scheduled arrival (equals
          closed-loop for closed streams). *)
  latency_closed : Obs.Histogram.snap;
      (** Closed-loop: nanoseconds from actual issue.  The gap to
          [latency] is queueing delay — a p100 that is high only
          open-loop is backlog, not a server stall. *)
  cold_accesses : Obs.Histogram.snap;  (** Shared accesses per cold grant. *)
  warm_accesses : Obs.Histogram.snap;  (** Per warm grant — all zero. *)
  outstanding : int;
      (** Names still held after drain {e and} settle: true leaks. *)
  telemetry : telemetry;
  outcomes : outcomes;
  resilience : Server.resilience_stats;
  health : Health.state array;  (** Final per-shard health. *)
  settle_scans : int;  (** Epilogue scans needed to reach 0 outstanding. *)
  journeys : Obs.Journey.t option;
      (** All clients' journey recorders merged (into recorder 0 of
          the array passed to {!run}): the tail reservoir, per-stage
          blame profile and exemplar-linked totals histogram for the
          whole run.  [None] when journeys were not wired. *)
}

val run :
  ?registry:Obs.Registry.t ->
  ?flight:Obs.Flight.t ->
  ?journeys:Obs.Journey.t array ->
  ?backend:(Shared_mem.Layout.t -> stage:int -> k:int -> Renaming.Protocol.Any.t) ->
  ?faults:(int * fault) list ->
  ?policy:Policy.t ->
  ?prepare:(Server.t -> unit) ->
  ?window_ns:int ->
  ?sampler_interval_ns:int ->
  config:Server.config ->
  spec:(int -> Workload.server_spec) ->
  unit ->
  report
(** [run ~config ~spec ()] creates the server, spawns [config.clients]
    domains (client [i] driven by [spec i]), joins them, flushes and
    drains every batched release, settles leaked leases through the
    reclaimer, merges flight rings, and reports.

    Without [?policy], [Busy]/[Shed] outcomes consume the request slot
    without a retry — counted (in [busy]/[shed] and the
    ["attempts_failed"] series), not latency-measured.  With a policy,
    each request is driven through {!Policy.drive}: refusals back off
    and retry under the policy's jittered schedule, deadlines and
    early sheds land in {!outcomes}.

    [?prepare] runs against the server after construction, before any
    domain spawns — fault plans use it to pre-seat a victim on the
    reclaimer seat.

    Telemetry is on by default: rollup windows of [window_ns] (default
    5 ms), and a sampler domain polling {!Server.sampler_sources}
    every [sampler_interval_ns] (default 1 ms; [<= 0] disables the
    sampler).  The sampler only reads — client request paths gain no
    shared accesses (warm grants stay at 0 protocol accesses).
    @raise Invalid_argument when a fault names a client out of range,
    every client parks, or [window_ns < 1]. *)
