type t = {
  seed : int;
  retries : int;
  base_spins : int;
  cap_spins : int;
  deadline_ns : int;
}

let make ?(seed = 0x5EED) ?(retries = 8) ?(base_spins = 64)
    ?(cap_spins = 8192) ?(deadline_ns = 0) () =
  if retries < 0 then invalid_arg "Policy.make: retries < 0";
  if base_spins < 1 then invalid_arg "Policy.make: base_spins < 1";
  if cap_spins < base_spins then invalid_arg "Policy.make: cap_spins < base_spins";
  if deadline_ns < 0 then invalid_arg "Policy.make: deadline_ns < 0";
  { seed; retries; base_spins; cap_spins; deadline_ns }

let default = make ()

(* The same stateless-jitter shape Recovery uses: a seeded avalanche
   of (seed, client, attempt), so every spin count is a pure function
   of its coordinates — replayable, and property-testable without a
   PRNG object. *)
let mix a b c =
  let h = ref ((a * 0x9E3779B9) lxor (b * 0x85EBCA6B) lxor (c * 0xC2B2AE35)) in
  h := !h lxor (!h lsr 16);
  h := !h * 0x7FEB352D land max_int;
  h := !h lxor (!h lsr 15);
  !h land max_int

let backoff_spins t ~client ~attempt =
  if attempt < 0 then invalid_arg "Policy.backoff_spins: attempt < 0";
  let expo = t.base_spins lsl min attempt 20 in
  let expo = if expo <= 0 then t.cap_spins else expo (* shift overflow *) in
  let jitter = mix t.seed client (attempt + 1) mod (t.base_spins + 1) in
  max 1 (min t.cap_spins (expo + jitter))

type 'a outcome =
  | Granted of { value : 'a; retries : int }
  | Deadline_exceeded of { retries : int }
  | Shed of { retries : int; early : bool }

let spin n =
  for _ = 1 to n do
    Domain.cpu_relax ()
  done

(* Short waits spin; long ones sleep (≈10 ns per spin-equivalent).
   Sleeping yields the OS timeslice, which is what lets backoff work
   at all on an oversubscribed host: the claim holder we are waiting
   out needs the core we would otherwise be burning. *)
let wait n = if n <= 512 then spin n else Unix.sleepf (float_of_int n *. 1e-8)

let drive t ~client ~now_ns ?(p99_ns = fun () -> 0) ~attempt () =
  (* Deadline-aware shedding: when the telemetry window's p99 already
     burns the whole deadline, the expected wait exceeds what we are
     prepared to pay — give up before spending a single attempt. *)
  if t.deadline_ns > 0 && p99_ns () >= t.deadline_ns then
    Shed { retries = 0; early = true }
  else begin
    let start = if t.deadline_ns > 0 then now_ns () else 0 in
    let rec go n =
      match attempt () with
      | Ok v -> Granted { value = v; retries = n }
      | Error (`Busy | `Shed) ->
          if n >= t.retries then Shed { retries = n; early = false }
          else if t.deadline_ns > 0 && now_ns () - start >= t.deadline_ns then
            Deadline_exceeded { retries = n }
          else begin
            wait (backoff_spins t ~client ~attempt:n);
            go (n + 1)
          end
    in
    go 0
  end

let to_string t =
  Printf.sprintf "retries=%d,base=%d,cap=%d,deadline_ns=%d,seed=%d" t.retries
    t.base_spins t.cap_spins t.deadline_ns t.seed

let of_string s =
  let parse_kv acc kv =
    match acc with
    | Error _ -> acc
    | Ok p -> (
        match String.index_opt kv '=' with
        | None -> Error (Printf.sprintf "expected key=value, got %S" kv)
        | Some i -> (
            let k = String.sub kv 0 i in
            let v = String.sub kv (i + 1) (String.length kv - i - 1) in
            match int_of_string_opt v with
            | None -> Error (Printf.sprintf "%s: not an integer: %S" k v)
            | Some v -> (
                match k with
                | "retries" -> Ok { p with retries = v }
                | "base" -> Ok { p with base_spins = v }
                | "cap" -> Ok { p with cap_spins = v }
                | "deadline_ns" -> Ok { p with deadline_ns = v }
                | "deadline_ms" -> Ok { p with deadline_ns = v * 1_000_000 }
                | "seed" -> Ok { p with seed = v }
                | _ -> Error (Printf.sprintf "unknown policy key %S" k))))
  in
  let parts =
    String.split_on_char ',' (String.trim s)
    |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  match List.fold_left parse_kv (Ok default) parts with
  | Error _ as e -> e
  | Ok p ->
      if p.retries < 0 then Error "retries < 0"
      else if p.base_spins < 1 then Error "base < 1"
      else if p.cap_spins < p.base_spins then Error "cap < base"
      else if p.deadline_ns < 0 then Error "deadline < 0"
      else Ok p
