module Store = Shared_mem.Store
module Layout = Shared_mem.Layout
module Any = Renaming.Protocol.Any
module Pad = Runtime.Pad
module Agg = Runtime.Agg
module Atomic_store = Runtime.Atomic_store

type config = {
  shards : int;
  k_per_shard : int;
  source_space : int;
  warm_capacity : int;
  batch : int;
  clients : int;
}

let default_config ?(shards = 4) ?(k_per_shard = 4) ?(warm_capacity = 2) ?(batch = 8)
    ~clients ~source_space () =
  { shards; k_per_shard; source_space; warm_capacity; batch; clients }

(* Slab tokens are slot indices.  The freelist head packs (tag, idx+1)
   into one int — the tag advances on every successful swap, so a
   slot popped, recycled and re-pushed between a competitor's read and
   its CAS can never satisfy that CAS (the classic Treiber ABA). *)
let idx_bits = 21
let idx_mask = (1 lsl idx_bits) - 1

type shard = { inst : Any.t; base : int }

type client = {
  id : int;
  obs : Obs.Registry.shard option;
  ring : Obs.Flight.t option;
  ops : Store.ops array;  (* per shard; [pid] re-bound per request *)
  tally : Store.tally;
      (* one arena serves the per-operation cost (mark/since), the
         flight clock (running total) and — when a registry is wired —
         the per-group store counters, from one store per access *)
  warm_src : int array;
  warm_slot : int array;
  mutable warm_n : int;  (* entries live at [0, warm_n), oldest first *)
  mutable acquires : int;
  mutable warm_hits : int;
  mutable busy : int;
  mutable shed : int;
  mutable drains : int;
  mutable drained : int;
}

type t = {
  cfg : config;
  shard_tbl : shard array;
  stores : Atomic_store.t array;  (* kept alive alongside instances *)
  claims : int Atomic.t array;  (* per source: 0 free, else client+1 *)
  admitted : Pad.t;  (* per shard: held + warm + pending *)
  pending : Pad.t;  (* per shard: list head, slot+1 (0 = empty) *)
  pending_n : Pad.t;
  slot_src : int array;
  slot_shard : int array;
  slot_name : int array;  (* global: shard base + local name *)
  slot_owner : int array;
  slot_held : bool array;  (* granted and not yet released *)
  slot_lease : Any.lease option array;
  slot_next : int array;  (* freelist / pending link, -1 terminated *)
  free : int Atomic.t;
  agg : Agg.t;
  total_space : int;
  clients_tbl : client array;
  flight : Obs.Flight.t option;
}

type outcome =
  | Granted of { name : int; token : int; warm : bool; accesses : int }
  | Busy
  | Shed

(* Seed-fixed source-to-shard route: a pure function of (src, shards),
   so it is stable across calls, clients and server instances. *)
let route src shards =
  if shards = 1 then 0
  else begin
    let h = ref (src * 0x9E3779B97F4A7C1) in
    h := (!h lxor (!h lsr 30)) * 0xBF58476D1CE4E5B land max_int;
    h := (!h lxor (!h lsr 27)) * 0x94D049BB133111E land max_int;
    (!h lxor (!h lsr 31)) mod shards
  end

(* ----- freelist (tag-CAS Treiber stack) ----- *)

let rec free_push t i =
  let h = Atomic.get t.free in
  t.slot_next.(i) <- (h land idx_mask) - 1;
  let h' = (((h lsr idx_bits) + 1) lsl idx_bits) lor (i + 1) in
  if not (Atomic.compare_and_set t.free h h') then free_push t i

let rec free_pop t =
  let h = Atomic.get t.free in
  let v = h land idx_mask in
  if v = 0 then -1
  else begin
    let i = v - 1 in
    let n = t.slot_next.(i) in
    let h' = (((h lsr idx_bits) + 1) lsl idx_bits) lor (n + 1) in
    if Atomic.compare_and_set t.free h h' then i else free_pop t
  end

(* ----- per-shard pending-release lists -----

   Push is a plain head CAS (no tag needed: the link written always
   points at the head value the CAS installs over, whatever its
   history); the only pop is a pop-everything [exchange], which cannot
   suffer ABA at all. *)

let rec pending_push_link t sh i =
  let head = (Pad.cells t.pending).(sh) in
  let h = Atomic.get head in
  t.slot_next.(i) <- h - 1;
  if not (Atomic.compare_and_set head h (i + 1)) then pending_push_link t sh i

let pending_push t sh i =
  pending_push_link t sh i;
  ignore (Atomic.fetch_and_add (Pad.cells t.pending_n).(sh) 1)

let obs_inc c name = match c.obs with Some o -> Obs.Registry.inc o name | None -> ()
let obs_count c name n = match c.obs with Some o -> Obs.Registry.count o name n | None -> ()
let obs_observe c name v = match c.obs with Some o -> Obs.Registry.observe o name v | None -> ()

let mark c tag v =
  match c.ring with
  | Some r ->
      Obs.Flight.record r ~clock:(Store.tally_total c.tally) ~pid:c.id
        (Obs.Flight.Mark (tag, v))
  | None -> ()

let drain_shard t (c : client) sh =
  let h = Atomic.exchange (Pad.cells t.pending).(sh) 0 in
  if h <> 0 then begin
    c.drains <- c.drains + 1;
    obs_inc c "server.drains";
    let sd = t.shard_tbl.(sh) in
    let admitted = (Pad.cells t.admitted).(sh) in
    let n = ref 0 in
    let i = ref (h - 1) in
    while !i >= 0 do
      let slot = !i in
      let next = t.slot_next.(slot) in
      let src = t.slot_src.(slot) in
      let lease = match t.slot_lease.(slot) with Some l -> l | None -> assert false in
      t.slot_lease.(slot) <- None;
      Agg.released t.agg ~name:t.slot_name.(slot);
      (* Run the protocol release under the original source name.  The
         holder has retired (warm leases are flushed before they reach
         pending), so no step of pid [src] can overlap this one, and
         the claim below stays set until the release lands — a new
         claimant of [src] cannot start a get_name that would overlap
         its own release.  That any agent may execute the register
         operations on the holder's behalf is the same handoff
         long-lived reclamation relies on. *)
      let base : Store.ops = c.ops.(sh) in
      Any.release_name sd.inst { base with pid = src } lease;
      Atomic.set t.claims.(src) 0;
      free_push t slot;
      ignore (Atomic.fetch_and_add admitted (-1));
      incr n;
      i := next
    done;
    ignore (Atomic.fetch_and_add (Pad.cells t.pending_n).(sh) (- !n));
    c.drained <- c.drained + !n;
    obs_count c "server.drained" !n;
    mark c "drain" !n
  end

let pending_release t c sh slot =
  pending_push t sh slot;
  if Atomic.get (Pad.cells t.pending_n).(sh) >= t.cfg.batch then drain_shard t c sh

(* ----- admission: cap holders+warm+pending at the shard's k ----- *)

let try_admit t sh =
  let a = (Pad.cells t.admitted).(sh) in
  let k = t.cfg.k_per_shard in
  let rec go () =
    let cur = Atomic.get a in
    if cur >= k then false
    else if Atomic.compare_and_set a cur (cur + 1) then true
    else go ()
  in
  go ()

(* Flush this client's own warm leases that live on shard [sh] —
   reclaiming admission capacity it is hoarding before giving up. *)
let flush_warm_shard t c sh =
  let w = ref 0 in
  for r = 0 to c.warm_n - 1 do
    let slot = c.warm_slot.(r) in
    if t.slot_shard.(slot) = sh then pending_push t sh slot
    else begin
      c.warm_src.(!w) <- c.warm_src.(r);
      c.warm_slot.(!w) <- slot;
      incr w
    end
  done;
  c.warm_n <- !w

let admit t c sh =
  let rec attempt tries =
    if try_admit t sh then true
    else if tries = 0 then false
    else begin
      flush_warm_shard t c sh;
      drain_shard t c sh;
      attempt (tries - 1)
    end
  in
  attempt 3

let slot_take t c sh =
  (* Admission guarantees at most cap-1 slots are bound or pending, so
     a slot is free or frees as soon as pending drains; spin + help. *)
  let rec go () =
    match free_pop t with
    | -1 ->
        drain_shard t c sh;
        Domain.cpu_relax ();
        go ()
    | i -> i
  in
  go ()

(* ----- warm cache (client-local; no shared state at all) ----- *)

let warm_find c src =
  let rec go r = if r >= c.warm_n then -1 else if c.warm_src.(r) = src then r else go (r + 1) in
  go 0

let warm_remove c r =
  for i = r to c.warm_n - 2 do
    c.warm_src.(i) <- c.warm_src.(i + 1);
    c.warm_slot.(i) <- c.warm_slot.(i + 1)
  done;
  c.warm_n <- c.warm_n - 1

(* ----- the service ----- *)

let acquire t c ~src =
  if src < 0 || src >= t.cfg.source_space then
    invalid_arg "Server.acquire: source name out of range";
  let r = warm_find c src in
  if r >= 0 then begin
    (* Warm hit: the name was never returned to the protocol, so
       re-granting it to the claim holder is uniqueness-trivial — and
       costs zero shared accesses. *)
    let slot = c.warm_slot.(r) in
    warm_remove c r;
    t.slot_held.(slot) <- true;
    c.acquires <- c.acquires + 1;
    c.warm_hits <- c.warm_hits + 1;
    obs_inc c "server.acquired";
    obs_inc c "server.warm_hits";
    obs_observe c "server.acquire.accesses.warm" 0;
    mark c "warm" t.slot_name.(slot);
    Granted { name = t.slot_name.(slot); token = slot; warm = true; accesses = 0 }
  end
  else begin
    let sh = route src t.cfg.shards in
    if not (Atomic.compare_and_set t.claims.(src) 0 (c.id + 1)) then begin
      c.busy <- c.busy + 1;
      obs_inc c "server.busy";
      Busy
    end
    else if not (admit t c sh) then begin
      Atomic.set t.claims.(src) 0;
      c.shed <- c.shed + 1;
      obs_inc c "server.shed";
      Shed
    end
    else begin
      let slot = slot_take t c sh in
      let sd = t.shard_tbl.(sh) in
      Store.tally_mark c.tally;
      let base : Store.ops = c.ops.(sh) in
      let lease = Any.get_name sd.inst { base with pid = src } in
      let accesses = Store.tally_since c.tally in
      let name = sd.base + Any.name_of sd.inst lease in
      t.slot_src.(slot) <- src;
      t.slot_shard.(slot) <- sh;
      t.slot_name.(slot) <- name;
      t.slot_owner.(slot) <- c.id;
      t.slot_held.(slot) <- true;
      t.slot_lease.(slot) <- Some lease;
      ignore (Agg.acquired t.agg ~worker:c.id ~name : int * int);
      c.acquires <- c.acquires + 1;
      obs_inc c "server.acquired";
      obs_observe c "server.acquire.accesses.cold" accesses;
      Granted { name; token = slot; warm = false; accesses }
    end
  end

let release t c ~token =
  let cap = Array.length t.slot_next in
  if
    token < 0 || token >= cap
    || t.slot_owner.(token) <> c.id
    || not t.slot_held.(token)
  then invalid_arg "Server.release: not a token this client holds";
  t.slot_held.(token) <- false;
  if t.cfg.warm_capacity > 0 then begin
    if c.warm_n = t.cfg.warm_capacity then begin
      let old = c.warm_slot.(0) in
      let osh = t.slot_shard.(old) in
      warm_remove c 0;
      pending_release t c osh old
    end;
    c.warm_src.(c.warm_n) <- t.slot_src.(token);
    c.warm_slot.(c.warm_n) <- token;
    c.warm_n <- c.warm_n + 1
  end
  else pending_release t c t.slot_shard.(token) token

let flush t c =
  for r = 0 to c.warm_n - 1 do
    let slot = c.warm_slot.(r) in
    pending_push t t.slot_shard.(slot) slot
  done;
  c.warm_n <- 0;
  for sh = 0 to t.cfg.shards - 1 do
    drain_shard t c sh
  done

let drain_all t c =
  for sh = 0 to t.cfg.shards - 1 do
    drain_shard t c sh
  done

let outstanding t =
  let s = ref 0 in
  for sh = 0 to t.cfg.shards - 1 do
    s := !s + Pad.get t.admitted sh
  done;
  !s

let name_space t = t.total_space
let shards t = t.cfg.shards
let shard_of t ~src = route src t.cfg.shards
let scoreboard t = t.agg

let merge_flight t =
  match t.flight with
  | None -> ()
  | Some f ->
      Array.iter
        (fun c -> match c.ring with Some r -> Obs.Flight.merge ~into:f r | None -> ())
        t.clients_tbl

(* ----- construction ----- *)

let default_backend layout ~stage ~k =
  Any.pack (module Renaming.Split) (Renaming.Split.create ~stage layout ~k)

let create ?registry ?flight ?(backend = default_backend) ?(parked = 0) cfg =
  if cfg.shards < 1 then invalid_arg "Server.create: shards < 1";
  if cfg.k_per_shard < 1 then invalid_arg "Server.create: k_per_shard < 1";
  if cfg.source_space < 1 then invalid_arg "Server.create: source_space < 1";
  if cfg.warm_capacity < 0 then invalid_arg "Server.create: warm_capacity < 0";
  if cfg.batch < 1 then invalid_arg "Server.create: batch < 1";
  if cfg.clients < 1 then invalid_arg "Server.create: clients < 1";
  let cap = cfg.shards * cfg.k_per_shard in
  if cap > idx_mask - 1 then invalid_arg "Server.create: slab exceeds token encoding";
  let stores = Array.make cfg.shards None in
  let base = ref 0 in
  let shard_tbl =
    Array.init cfg.shards (fun s ->
        let layout = Layout.create () in
        let inst = backend layout ~stage:s ~k:cfg.k_per_shard in
        stores.(s) <- Some (Atomic_store.create layout);
        let sd = { inst; base = !base } in
        base := !base + Any.name_space inst;
        sd)
  in
  let stores = Array.map (function Some s -> s | None -> assert false) stores in
  let slot_next = Array.init cap (fun i -> if i = cap - 1 then -1 else i + 1) in
  let agg =
    Agg.create ~entry:"Server" ~name_space:!base ~workers:cfg.clients ~parked
  in
  let clients_tbl =
    Array.init cfg.clients (fun id ->
        let obs = Option.map (fun r -> Obs.Registry.shard r) registry in
        let ring =
          Option.map
            (fun f ->
              Obs.Flight.create
                ~capacity:(max 1024 (Obs.Flight.capacity f / cfg.clients))
                ())
            flight
        in
        let tally = Store.tally () in
        let ops =
          Array.map
            (fun store ->
              let o = Atomic_store.ops store ~pid:0 in
              (* one tally across all shard stores: with a registry it
                 also feeds the per-group counters, without one it
                 only keeps the totals the cost/flight paths need *)
              let o =
                match obs with
                | Some s -> Store.observed_into tally s o
                | None -> Store.tallying tally o
              in
              match ring with
              | Some r ->
                  Store.probed
                    (Obs.Flight.probe r ~pid:id ~clock:(fun () ->
                         Store.tally_total tally))
                    o
              | None -> o)
            stores
        in
        {
          id;
          obs;
          ring;
          ops;
          tally;
          warm_src = Array.make (max 1 cfg.warm_capacity) (-1);
          warm_slot = Array.make (max 1 cfg.warm_capacity) (-1);
          warm_n = 0;
          acquires = 0;
          warm_hits = 0;
          busy = 0;
          shed = 0;
          drains = 0;
          drained = 0;
        })
  in
  {
    cfg;
    shard_tbl;
    stores;
    claims = Array.init cfg.source_space (fun _ -> Atomic.make 0);
    admitted = Pad.create cfg.shards 0;
    pending = Pad.create cfg.shards 0;
    pending_n = Pad.create cfg.shards 0;
    slot_src = Array.make cap (-1);
    slot_shard = Array.make cap (-1);
    slot_name = Array.make cap (-1);
    slot_owner = Array.make cap (-1);
    slot_held = Array.make cap false;
    slot_lease = Array.make cap None;
    slot_next;
    free = Atomic.make 1 (* slot 0, tag 0 *);
    agg;
    total_space = !base;
    clients_tbl;
    flight;
  }

let client t i =
  if i < 0 || i >= t.cfg.clients then invalid_arg "Server.client: id out of range";
  t.clients_tbl.(i)

type client_stats = {
  acquires : int;
  warm_hits : int;
  busy : int;
  shed : int;
  drains : int;
  drained_releases : int;
}

let client_stats (c : client) =
  {
    acquires = c.acquires;
    warm_hits = c.warm_hits;
    busy = c.busy;
    shed = c.shed;
    drains = c.drains;
    drained_releases = c.drained;
  }

let client_obs c = c.obs

(* ----- telemetry probes -----

   Everything below is read-only: atomics are [Atomic.get]s, client
   warm counters are plain reads of another domain's non-atomic fields
   (well-defined under the OCaml memory model, possibly stale —
   telemetry-grade by design).  No probe writes anything, so attaching
   a sampler adds zero shared accesses to any request path; in
   particular the warm-grant path stays at its verified 0. *)

type shard_probe = { admitted : int; pending : int; warm : int }

let probe_warm_shard t sh =
  let w = ref 0 in
  Array.iter
    (fun (c : client) ->
      let n = min c.warm_n (Array.length c.warm_slot) in
      for r = 0 to n - 1 do
        let slot = c.warm_slot.(r) in
        if slot >= 0 && slot < Array.length t.slot_shard && t.slot_shard.(slot) = sh
        then incr w
      done)
    t.clients_tbl;
  !w

let probe_shard t sh =
  if sh < 0 || sh >= t.cfg.shards then invalid_arg "Server.probe_shard: bad shard";
  {
    admitted = Pad.get t.admitted sh;
    pending = Pad.get t.pending_n sh;
    warm = probe_warm_shard t sh;
  }

let probe_free t =
  (* slab occupancy mirrors admission: cap minus every admitted slot *)
  let used = ref 0 in
  for sh = 0 to t.cfg.shards - 1 do
    used := !used + Pad.get t.admitted sh
  done;
  max 0 ((t.cfg.shards * t.cfg.k_per_shard) - !used)

let probe_claims t =
  let n = ref 0 in
  Array.iter (fun a -> if Atomic.get a <> 0 then incr n) t.claims;
  !n

let sampler_sources t =
  let shard_sources =
    List.concat
      (List.init t.cfg.shards (fun sh ->
           let p = string_of_int sh in
           [
             { Obs.Sampler.name = "shard" ^ p ^ ".admitted";
               read = (fun () -> Pad.get t.admitted sh) };
             { Obs.Sampler.name = "shard" ^ p ^ ".pending";
               read = (fun () -> Pad.get t.pending_n sh) };
             { Obs.Sampler.name = "shard" ^ p ^ ".warm";
               read = (fun () -> probe_warm_shard t sh) };
           ]))
  in
  shard_sources
  @ [
      { Obs.Sampler.name = "slab.free"; read = (fun () -> probe_free t) };
      { Obs.Sampler.name = "claims.held"; read = (fun () -> probe_claims t) };
    ]
