module Store = Shared_mem.Store
module Layout = Shared_mem.Layout
module Any = Renaming.Protocol.Any
module Pad = Runtime.Pad
module Agg = Runtime.Agg
module Atomic_store = Runtime.Atomic_store
module Health = Health
module Policy = Policy

type resilience = {
  scan_interval_ns : int;
  lease_ttl : int;
  seat_ttl : int;
  tend_every : int;
  degrade_sheds : int;
  quarantine_leaks : int;
  drain_stale : int;
}

let default_resilience =
  {
    scan_interval_ns = 1_000_000;
    lease_ttl = 8;
    seat_ttl = 4;
    tend_every = 32;
    degrade_sheds = 64;
    quarantine_leaks = 1;
    drain_stale = 4;
  }

type config = {
  shards : int;
  k_per_shard : int;
  source_space : int;
  warm_capacity : int;
  batch : int;
  clients : int;
  resilience : resilience;
}

let default_config ?(shards = 4) ?(k_per_shard = 4) ?(warm_capacity = 2) ?(batch = 8)
    ?(resilience = default_resilience) ~clients ~source_space () =
  { shards; k_per_shard; source_space; warm_capacity; batch; clients; resilience }

(* Slab tokens are slot indices.  The freelist head packs (tag, idx+1)
   into one int — the tag advances on every successful swap, so a
   slot popped, recycled and re-pushed between a competitor's read and
   its CAS can never satisfy that CAS (the classic Treiber ABA). *)
let idx_bits = 21
let idx_mask = (1 lsl idx_bits) - 1

(* Per-slot retirement fence.  Every lease retirement — batched drain
   or lease reclaim — must win exactly one CAS into [fence_retiring],
   so a pending release can never be both drained and reclaimed, and a
   walker straying onto a recycled link retires nothing.  States:

     0 FREE      on the freelist
     1 HELD      granted, client holds the token
     2 WARM      released into the owner's warm cache (still leased)
     3 PENDING   on a shard's pending-release list
     4 RETIRING  one retirer owns it; next state is FREE

   No crash point exists between RETIRING and FREE (the chaos hooks
   fire only at slot boundaries), so RETIRING is always transient. *)
let fence_free = 0
let fence_held = 1
let fence_warm = 2
let fence_pending = 3
let fence_retiring = 4

(* Reclaimer seat: (epoch lsl seat_bits) lor (holder+1), 0 vacant.
   The epoch advances on every steal, so a deposed holder's stale view
   of the seat can never CAS itself back in by accident. *)
let seat_bits = 20
let seat_mask = (1 lsl seat_bits) - 1
let seat_pack ~epoch ~holder = (epoch lsl seat_bits) lor (holder + 1)
let seat_holder s = (s land seat_mask) - 1

let failover_salt = 0x5DEECE66D
let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

type shard = { inst : Any.t; base : int }

type client = {
  id : int;
  obs : Obs.Registry.shard option;
  ring : Obs.Flight.t option;
  jr : Obs.Journey.t option;
      (* per-request journey recorder (single writer: this domain);
         the workload harness starts/finishes journeys, the server
         stamps the stage dwells it alone can see *)
  ops : Store.ops array;  (* per shard; [pid] re-bound per request *)
  tally : Store.tally;
      (* one arena serves the per-operation cost (mark/since), the
         flight clock (running total) and — when a registry is wired —
         the per-group store counters, from one store per access *)
  warm_src : int array;
  warm_slot : int array;
  mutable warm_n : int;  (* entries live at [0, warm_n), oldest first *)
  mutable my_epoch : int;  (* last epoch this client resynced to *)
  mutable tend_count : int;
  mutable last_seat_hb : int;
  mutable seat_stale : int;
  mutable last_seat_check_ns : int;
  mutable chaos : (string -> unit) option;
      (* fault-injection hook, called at drain slot boundaries; set
         only by the owning domain (Churn's chaos plans) *)
  mutable acquires : int;
  mutable warm_hits : int;
  mutable busy : int;
  mutable shed : int;
  mutable drains : int;
  mutable drained : int;
  mutable fenced : int;
  mutable failovers : int;
}

type t = {
  cfg : config;
  shard_tbl : shard array;
  stores : Atomic_store.t array;  (* kept alive alongside instances *)
  claims : int Atomic.t array;  (* per source: 0 free, else client+1 *)
  admitted : Pad.t;  (* per shard: held + warm + pending *)
  pending : Pad.t;  (* per shard: list head, slot+1 (0 = empty) *)
  pending_n : Pad.t;
  slot_src : int array;
  slot_shard : int array;
  slot_name : int array;  (* global: shard base + local name *)
  slot_owner : int array;
  slot_held : bool array;  (* granted and not yet released *)
  slot_lease : Any.lease option array;
  slot_next : int array;  (* freelist / pending link, -1 terminated *)
  fence : int Atomic.t array;
  free : int Atomic.t;
  (* liveness + reclamation *)
  hb : Pad.t;  (* per client: heartbeat, bumped by [tend] *)
  epoch : Pad.t;  (* per client: bumped when declared dead *)
  cursor : Pad.t;  (* per client: (shard+1) lsl idx_bits lor (slot+1) *)
  seat : int Atomic.t;
  seat_hb : int Atomic.t;
  last_scan_ns : int Atomic.t;
  health_w : Pad.t;  (* per shard: 0 live / 1 degraded / 2 quarantined *)
  shard_sheds : Pad.t;
  shard_leaks : Pad.t;
  (* seat-holder working state: written under seat ownership only
     (overlap with a deposed holder is benign — every retirement is
     fence-guarded; these are bookkeeping) *)
  hx : Health.t array;
  last_hb : int array;  (* per client *)
  stale : int array;
  dead : bool array;
  pending_seen : int array;  (* per slot: consecutive scans at PENDING *)
  last_pend : int array;  (* per shard *)
  shard_stale : int array;
  last_sheds : int array;
  last_leaks : int array;
  (* resilience counters (atomic: deposed/current seats may overlap) *)
  rs_scans : int Atomic.t;
  rs_deaths : int Atomic.t;
  rs_reclaimed : int Atomic.t;
  rs_claims_swept : int Atomic.t;
  rs_reclaim_max : int Atomic.t;
  rs_drain_heals : int Atomic.t;
  rs_adopted : int Atomic.t;
  rs_seat_steals : int Atomic.t;
  rs_quarantines : int Atomic.t;
  rs_rebuilds : int Atomic.t;
  agg : Agg.t;
  total_space : int;
  clients_tbl : client array;
  flight : Obs.Flight.t option;
}

type outcome =
  | Granted of { name : int; token : int; warm : bool; accesses : int }
  | Busy
  | Shed

(* Seed-fixed source-to-shard route: a pure function of (src, shards),
   so it is stable across calls, clients and server instances. *)
let route src shards =
  if shards = 1 then 0
  else begin
    let h = ref (src * 0x9E3779B97F4A7C1) in
    h := (!h lxor (!h lsr 30)) * 0xBF58476D1CE4E5B land max_int;
    h := (!h lxor (!h lsr 27)) * 0x94D049BB133111E land max_int;
    (!h lxor (!h lsr 31)) mod shards
  end

let health_code = function
  | Health.Live -> 0
  | Health.Degraded -> 1
  | Health.Quarantined -> 2

(* ----- freelist (tag-CAS Treiber stack) ----- *)

let rec free_push t i =
  let h = Atomic.get t.free in
  t.slot_next.(i) <- (h land idx_mask) - 1;
  let h' = (((h lsr idx_bits) + 1) lsl idx_bits) lor (i + 1) in
  if not (Atomic.compare_and_set t.free h h') then free_push t i

let rec free_pop t =
  let h = Atomic.get t.free in
  let v = h land idx_mask in
  if v = 0 then -1
  else begin
    let i = v - 1 in
    let n = t.slot_next.(i) in
    let h' = (((h lsr idx_bits) + 1) lsl idx_bits) lor (n + 1) in
    if Atomic.compare_and_set t.free h h' then i else free_pop t
  end

(* ----- per-shard pending-release lists -----

   Push is a plain head CAS (no tag needed: the link written always
   points at the head value the CAS installs over, whatever its
   history); the only pop is a pop-everything [exchange], which cannot
   suffer ABA at all. *)

let rec pending_push_link t sh i =
  let head = (Pad.cells t.pending).(sh) in
  let h = Atomic.get head in
  t.slot_next.(i) <- h - 1;
  if not (Atomic.compare_and_set head h (i + 1)) then pending_push_link t sh i

let pending_push t sh i =
  pending_push_link t sh i;
  ignore (Atomic.fetch_and_add (Pad.cells t.pending_n).(sh) 1)

let obs_inc c name = match c.obs with Some o -> Obs.Registry.inc o name | None -> ()
let obs_count c name n = match c.obs with Some o -> Obs.Registry.count o name n | None -> ()
let obs_observe c name v = match c.obs with Some o -> Obs.Registry.observe o name v | None -> ()

let mark c tag v =
  match c.ring with
  | Some r ->
      Obs.Flight.record r ~clock:(Store.tally_total c.tally) ~pid:c.id
        (Obs.Flight.Mark (tag, v))
  | None -> ()

(* ----- journey stamping -----

   [jtrack] opens a timed section (0 = journeys off, making the pair
   free on unwired servers); [jblame] closes it.  Work done inside a
   live journey becomes that journey's stage dwell; work done outside
   one (drains on behalf of others, reclaimer scans, the settle
   epilogue) is window-level interference blame.

   A clock read costs ~40ns — comparable to the O(1) sections being
   metered — so back-to-back sections chain: [jblame_t] returns the
   end stamp, which the next section takes as its start instead of
   reading the clock again.  A chained stamp of [0] means journeys
   are off and the whole chain stays free. *)

let jtrack c = match c.jr with Some _ -> now_ns () | None -> 0

let jblame_t c stage t0 =
  if t0 = 0 then 0
  else
    match c.jr with
    | Some j ->
        let n = now_ns () in
        (if Obs.Journey.active j then Obs.Journey.dwell j stage (n - t0)
         else Obs.Journey.interfere j stage ~now:n (n - t0));
        n
    | None -> 0

let jblame c stage t0 = ignore (jblame_t c stage t0 : int)

let bump_max a v =
  let rec go () =
    let m = Atomic.get a in
    if v > m && not (Atomic.compare_and_set a m v) then go ()
  in
  go ()

(* ----- epoch fencing -----

   A client's epoch advances when the reclaimer seat declares it dead.
   Any surviving warm lease is pushed to pending (the fence CAS
   filters the ones that really were reclaimed), the cache is dropped,
   and the client carries on — its outstanding tokens were retired on
   its behalf, so a later release of one is silently fenced rather
   than double-retired. *)

let resync t (c : client) e =
  for r = 0 to c.warm_n - 1 do
    let slot = c.warm_slot.(r) in
    if Atomic.compare_and_set t.fence.(slot) fence_warm fence_pending then
      pending_push t t.slot_shard.(slot) slot
  done;
  c.warm_n <- 0;
  c.my_epoch <- e

let check_epoch t (c : client) =
  let e = Pad.get t.epoch c.id in
  if e = c.my_epoch then false
  else begin
    resync t c e;
    c.fenced <- c.fenced + 1;
    obs_inc c "server.fenced";
    true
  end

(* ----- retirement (the only way a lease returns to the protocol) ----- *)

(* Caller must have won the CAS into [fence_retiring].  [was_pending]
   keeps the pending census; [reset] reclaims through the protocol's
   [reset_footprint] (a dead holder's lease may be mid-operation)
   instead of a plain release. *)
let retire_slot t (c : client) slot ~was_pending ~reset =
  let ssh = t.slot_shard.(slot) in
  let sd = t.shard_tbl.(ssh) in
  let src = t.slot_src.(slot) in
  let owner = t.slot_owner.(slot) in
  let lease = match t.slot_lease.(slot) with Some l -> l | None -> assert false in
  t.slot_lease.(slot) <- None;
  t.slot_held.(slot) <- false;
  Agg.released t.agg ~name:t.slot_name.(slot);
  (* Run the protocol release under the original source name.  The
     holder has retired (or been fenced off by its epoch), so no step
     of pid [src] can overlap this one, and the claim below stays set
     until the release lands — a new claimant of [src] cannot start a
     get_name that would overlap its own release.  That any agent may
     execute the register operations on the holder's behalf is the
     same handoff long-lived reclamation relies on. *)
  let base : Store.ops = c.ops.(ssh) in
  let ops = { base with Store.pid = src } in
  (if reset && Any.reset_available sd.inst then
     (Option.get Any.reset_footprint) sd.inst ops lease
   else Any.release_name sd.inst ops lease);
  ignore (Atomic.compare_and_set t.claims.(src) (owner + 1) 0 : bool);
  Atomic.set t.fence.(slot) fence_free;
  free_push t slot;
  ignore (Atomic.fetch_and_add (Pad.cells t.admitted).(ssh) (-1));
  if was_pending then
    ignore (Atomic.fetch_and_add (Pad.cells t.pending_n).(ssh) (-1))

let cursor_pack sh slot = ((sh + 1) lsl idx_bits) lor (slot + 1)

(* Walk a pending chain from [head], retiring every link whose
   PENDING→RETIRING fence CAS we win.  The walker's cursor always
   names a link whose retirement has not completed, so a seat adopting
   a dead walker's cursor re-walks the suffix and the fences make the
   overlap exactly-once.  The walk is bounded by the slab size: a
   stale link (the chain raced a concurrent retirer and now points
   into the freelist) can wander but not loop us forever, and a stale
   link that happens to reach some other chain's PENDING slot just
   retires it early — correctly, since retirement reads the slot's own
   shard. *)
let drain_walk ?(hook = true) t (c : client) head =
  let cap = Array.length t.slot_next in
  let cur = (Pad.cells t.cursor).(c.id) in
  let n = ref 0 in
  let i = ref head in
  let steps = ref 0 in
  while !i >= 0 && !steps < cap do
    incr steps;
    let slot = !i in
    Atomic.set cur (cursor_pack t.slot_shard.(slot) slot);
    (if hook then match c.chaos with Some f -> f "drain" | None -> ());
    let next = t.slot_next.(slot) in
    if Atomic.compare_and_set t.fence.(slot) fence_pending fence_retiring then begin
      retire_slot t c slot ~was_pending:true ~reset:false;
      incr n
    end;
    i := next
  done;
  Atomic.set cur 0;
  !n

let drain_shard ?(hook = true) ?(t0 = 0) t (c : client) sh =
  let h = Atomic.exchange (Pad.cells t.pending).(sh) 0 in
  if h <> 0 then begin
    let t0 = if t0 <> 0 then t0 else jtrack c in
    c.drains <- c.drains + 1;
    obs_inc c "server.drains";
    let n = drain_walk ~hook t c (h - 1) in
    c.drained <- c.drained + n;
    obs_count c "server.drained" n;
    mark c "drain" n;
    jblame c Obs.Journey.Drain t0
  end

let pending_release ?(t0 = 0) t c sh slot =
  let t0 = if t0 <> 0 then t0 else jtrack c in
  pending_push t sh slot;
  let te = jblame_t c Obs.Journey.Pending t0 in
  if Atomic.get (Pad.cells t.pending_n).(sh) >= t.cfg.batch then
    drain_shard ~t0:te t c sh

(* ----- admission: cap holders+warm+pending at the shard's k ----- *)

let try_admit t sh =
  let a = (Pad.cells t.admitted).(sh) in
  let k = t.cfg.k_per_shard in
  let rec go () =
    let cur = Atomic.get a in
    if cur >= k then false
    else if Atomic.compare_and_set a cur (cur + 1) then true
    else go ()
  in
  go ()

(* Flush this client's own warm leases that live on shard [sh] —
   reclaiming admission capacity it is hoarding before giving up. *)
let flush_warm_shard t c sh =
  let w = ref 0 in
  for r = 0 to c.warm_n - 1 do
    let slot = c.warm_slot.(r) in
    if t.slot_shard.(slot) = sh then begin
      if Atomic.compare_and_set t.fence.(slot) fence_warm fence_pending then
        pending_push t sh slot
      else begin
        (* reclaimed from the cache behind our back — already retired *)
        c.fenced <- c.fenced + 1;
        obs_inc c "server.fenced"
      end
    end
    else begin
      c.warm_src.(!w) <- c.warm_src.(r);
      c.warm_slot.(!w) <- slot;
      incr w
    end
  done;
  c.warm_n <- !w

(* [tc] is the chained journey stamp from the claim section (0 when
   journeys are off); the fast path passes it through untouched, so an
   uncontended admission costs no clock reads.  Returns the admission
   verdict and the stamp the next section should start from. *)
(* Returns the chained journey stamp ([0] when journeys are off), or
   [-1] when no admission slot could be won — an int rather than a
   tuple so the uncontended cold path stays allocation-free. *)
let admit t c sh tc =
  let rec attempt tries tc =
    if try_admit t sh then tc
    else if tries = 0 then -1
    else begin
      let t0 = if tc <> 0 then tc else jtrack c in
      flush_warm_shard t c sh;
      let te = jblame_t c Obs.Journey.Admission t0 in
      drain_shard ~t0:te t c sh;
      attempt (tries - 1) (if te <> 0 then jtrack c else 0)
    end
  in
  attempt 3 tc

let slot_take t c sh =
  (* Admission guarantees at most cap-1 slots are bound or pending, so
     a slot is free or frees as soon as pending drains; spin + help.
     The chaos hook is suppressed in this one drain: admission is
     already charged here and the slot not yet bound, so a crash at
     this boundary would leak an [admitted] count no reclaim can see —
     the one window the fault model promises does not exist. *)
  let rec go () =
    match free_pop t with
    | -1 ->
        drain_shard ~hook:false t c sh;
        Domain.cpu_relax ();
        go ()
    | i -> i
  in
  go ()

(* ----- warm cache (client-local; shared state only in the fences) ----- *)

let warm_find c src =
  let rec go r = if r >= c.warm_n then -1 else if c.warm_src.(r) = src then r else go (r + 1) in
  go 0

let warm_remove c r =
  for i = r to c.warm_n - 2 do
    c.warm_src.(i) <- c.warm_src.(i + 1);
    c.warm_slot.(i) <- c.warm_slot.(i + 1)
  done;
  c.warm_n <- c.warm_n - 1

(* ----- routing with failover ----- *)

let route_live t src primary =
  if Pad.get t.health_w primary <> 2 || t.cfg.shards = 1 then primary
  else begin
    (* Spill off the quarantined shard: salted rehash, then a linear
       probe to the first non-quarantined sibling.  Uniqueness is
       carried by the claim table, not the route — two clients asking
       for the same src still serialize on claims.(src) no matter
       which shard each one's route picked. *)
    let cand = ref (route (src lxor failover_salt) t.cfg.shards) in
    let chosen = ref primary in
    (try
       for _ = 1 to t.cfg.shards do
         if Pad.get t.health_w !cand <> 2 then begin
           chosen := !cand;
           raise Exit
         end;
         cand := (!cand + 1) mod t.cfg.shards
       done
     with Exit -> ());
    !chosen
  end

(* ----- the service ----- *)

let cold_grant ?(t0 = 0) t c ~src ~sh =
  let slot = slot_take t c sh in
  let sd = t.shard_tbl.(sh) in
  Store.tally_mark c.tally;
  let t0 = if t0 <> 0 then t0 else jtrack c in
  let base : Store.ops = c.ops.(sh) in
  let lease = Any.get_name sd.inst { base with pid = src } in
  jblame c Obs.Journey.Acquire t0;
  let accesses = Store.tally_since c.tally in
  (match c.jr with Some j -> Obs.Journey.accesses j accesses | None -> ());
  let name = sd.base + Any.name_of sd.inst lease in
  t.slot_src.(slot) <- src;
  t.slot_shard.(slot) <- sh;
  t.slot_name.(slot) <- name;
  t.slot_owner.(slot) <- c.id;
  t.slot_held.(slot) <- true;
  t.slot_lease.(slot) <- Some lease;
  (* publish last: the slot only becomes visible to retirers once its
     fields are in place *)
  Atomic.set t.fence.(slot) fence_held;
  ignore (Agg.acquired t.agg ~worker:c.id ~name : int * int);
  c.acquires <- c.acquires + 1;
  obs_inc c "server.acquired";
  obs_observe c "server.acquire.accesses.cold" accesses;
  Granted { name; token = slot; warm = false; accesses }

let acquire_cold t c ~src =
  let primary = route src t.cfg.shards in
  let sh = route_live t src primary in
  if sh <> primary then begin
    c.failovers <- c.failovers + 1;
    obs_inc c "server.failover"
  end;
  let t0 = jtrack c in
  let claimed = Atomic.compare_and_set t.claims.(src) 0 (c.id + 1) in
  let tc = jblame_t c Obs.Journey.Claim t0 in
  if not claimed then begin
    c.busy <- c.busy + 1;
    obs_inc c "server.busy";
    Busy
  end
  else
    (* the claim-end stamp chains through admission into the acquire
       section: an uncontended cold grant costs three clock reads
       total (claim open, claim close = acquire open, acquire close) *)
    let tc = admit t c sh tc in
    if tc < 0 then begin
      ignore (Atomic.compare_and_set t.claims.(src) (c.id + 1) 0 : bool);
      ignore (Atomic.fetch_and_add (Pad.cells t.shard_sheds).(sh) 1);
      c.shed <- c.shed + 1;
      obs_inc c "server.shed";
      Shed
    end
    else if Pad.get t.epoch c.id <> c.my_epoch then begin
      (* We may have spent a long time in [admit]'s drains; if the seat
         declared us dead meanwhile our claim may already be swept —
         back out rather than run the protocol without it. *)
      ignore (Atomic.fetch_and_add (Pad.cells t.admitted).(sh) (-1));
      ignore (Atomic.compare_and_set t.claims.(src) (c.id + 1) 0 : bool);
      ignore (check_epoch t c : bool);
      c.busy <- c.busy + 1;
      obs_inc c "server.busy";
      Busy
    end
    else cold_grant ~t0:tc t c ~src ~sh

let acquire t c ~src =
  if src < 0 || src >= t.cfg.source_space then
    invalid_arg "Server.acquire: source name out of range";
  ignore (check_epoch t c : bool);
  let r = warm_find c src in
  if r >= 0 then begin
    (* Warm hit: the name was never returned to the protocol, so
       re-granting it to the claim holder is uniqueness-trivial — and
       costs zero protocol store accesses (the WARM→HELD fence CAS is
       slab-local bookkeeping, invisible to the access tally). *)
    let slot = c.warm_slot.(r) in
    warm_remove c r;
    if Atomic.compare_and_set t.fence.(slot) fence_warm fence_held then begin
      t.slot_held.(slot) <- true;
      c.acquires <- c.acquires + 1;
      c.warm_hits <- c.warm_hits + 1;
      obs_inc c "server.acquired";
      obs_inc c "server.warm_hits";
      obs_observe c "server.acquire.accesses.warm" 0;
      (match c.jr with Some j -> Obs.Journey.warm j | None -> ());
      mark c "warm" t.slot_name.(slot);
      Granted { name = t.slot_name.(slot); token = slot; warm = true; accesses = 0 }
    end
    else begin
      (* the lease was reclaimed out of our cache — fall to cold *)
      c.fenced <- c.fenced + 1;
      obs_inc c "server.fenced";
      acquire_cold t c ~src
    end
  end
  else acquire_cold t c ~src

let release t c ~token =
  let cap = Array.length t.slot_next in
  if token < 0 || token >= cap then
    invalid_arg "Server.release: not a token this client holds";
  (* the Release dwell covers the fence transition and warm-cache
     bookkeeping only; time spent in [pending_release]/[drain_shard]
     is stamped by those (Pending/Drain), so the stages partition *)
  let jt0 = jtrack c in
  let jend = ref 0 in
  let jdone = ref false in
  let jrel () =
    if not !jdone then begin
      jdone := true;
      jend := jblame_t c Obs.Journey.Release jt0
    end
  in
  if check_epoch t c then begin
    (* Declared dead while holding: if the reclaimer got to the slot
       first it is already retired (the fence CAS below fails); if it
       didn't, retire it through pending ourselves.  Either way the
       caller's token dies silently — it was fenced, not mis-used. *)
    if t.slot_owner.(token) = c.id && t.slot_held.(token) then begin
      t.slot_held.(token) <- false;
      if Atomic.compare_and_set t.fence.(token) fence_held fence_pending then begin
        jrel ();
        pending_release ~t0:!jend t c t.slot_shard.(token) token
      end
    end;
    jrel ()
  end
  else if t.slot_owner.(token) <> c.id || not t.slot_held.(token) then
    invalid_arg "Server.release: not a token this client holds"
  else begin
    t.slot_held.(token) <- false;
    if Atomic.compare_and_set t.fence.(token) fence_held fence_warm then begin
      if t.cfg.warm_capacity > 0 then begin
        if c.warm_n = t.cfg.warm_capacity then begin
          let old = c.warm_slot.(0) in
          let osh = t.slot_shard.(old) in
          warm_remove c 0;
          if Atomic.compare_and_set t.fence.(old) fence_warm fence_pending then begin
            jrel ();
            pending_release ~t0:!jend t c osh old
          end
          else begin
            c.fenced <- c.fenced + 1;
            obs_inc c "server.fenced"
          end
        end;
        c.warm_src.(c.warm_n) <- t.slot_src.(token);
        c.warm_slot.(c.warm_n) <- token;
        c.warm_n <- c.warm_n + 1
      end
      else if Atomic.compare_and_set t.fence.(token) fence_warm fence_pending then begin
        jrel ();
        pending_release ~t0:!jend t c t.slot_shard.(token) token
      end
      else begin
        c.fenced <- c.fenced + 1;
        obs_inc c "server.fenced"
      end
    end
    else begin
      (* reclaimed between grant and release (we were falsely expired
         and re-synced meanwhile) — the lease is already retired *)
      c.fenced <- c.fenced + 1;
      obs_inc c "server.fenced"
    end;
    jrel ()
  end

let flush t c =
  ignore (check_epoch t c : bool);
  for r = 0 to c.warm_n - 1 do
    let slot = c.warm_slot.(r) in
    if Atomic.compare_and_set t.fence.(slot) fence_warm fence_pending then
      pending_push t t.slot_shard.(slot) slot
    else begin
      c.fenced <- c.fenced + 1;
      obs_inc c "server.fenced"
    end
  done;
  c.warm_n <- 0;
  for sh = 0 to t.cfg.shards - 1 do
    drain_shard t c sh
  done

let drain_all t c =
  for sh = 0 to t.cfg.shards - 1 do
    drain_shard t c sh
  done

let outstanding t =
  let s = ref 0 in
  for sh = 0 to t.cfg.shards - 1 do
    s := !s + Pad.get t.admitted sh
  done;
  !s

(* ----- the reclaimer seat -----

   One cooperatively-claimed duty: scan heartbeats, expire dead
   clients' leases (epoch bump first, heartbeat double-check, then
   fence-guarded retirement), adopt dead walkers' drain cursors,
   retire orphaned pending slots, and drive per-shard health.  Any
   live client steals the seat when the scan heartbeat goes stale;
   the seat epoch fences the deposed holder out of new reclaims, and
   the per-slot fences make even a deposed holder's in-flight
   retirement exactly-once. *)

let adopt_cursor t (c : client) j =
  let cur = (Pad.cells t.cursor).(j) in
  let v = Atomic.get cur in
  if v <> 0 then begin
    let slot = (v land idx_mask) - 1 in
    Atomic.set cur 0;
    if slot >= 0 && slot < Array.length t.slot_next then begin
      Atomic.incr t.rs_adopted;
      obs_inc c "server.adopted_drains";
      let t0 = jtrack c in
      ignore (drain_walk t c slot : int);
      jblame c Obs.Journey.Drain t0
    end
  end

let reclaim_client t (c : client) j =
  Atomic.incr (Pad.cells t.epoch).(j);
  (* Double-check liveness after the epoch bump: if j's heartbeat
     moved, it is alive — the bump only costs it one re-sync. *)
  if Pad.get t.hb j <> t.last_hb.(j) then ()
  else begin
    t.dead.(j) <- true;
    Atomic.incr t.rs_deaths;
    obs_inc c "server.deaths";
    (* finish the walk the corpse may have died inside *)
    adopt_cursor t c j;
    (* reclaim its held and warm leases *)
    let cap = Array.length t.slot_next in
    for slot = 0 to cap - 1 do
      let f = Atomic.get t.fence.(slot) in
      if (f = fence_held || f = fence_warm) && t.slot_owner.(slot) = j then begin
        if Atomic.compare_and_set t.fence.(slot) f fence_retiring then begin
          if t.slot_owner.(slot) <> j then
            (* the slot was retired and re-granted between our owner
               read and the CAS — hand it back untouched *)
            Atomic.set t.fence.(slot) f
          else begin
            let ssh = t.slot_shard.(slot) in
            retire_slot t c slot ~was_pending:false ~reset:true;
            ignore (Atomic.fetch_and_add (Pad.cells t.shard_leaks).(ssh) 1);
            Atomic.incr t.rs_reclaimed;
            bump_max t.rs_reclaim_max t.stale.(j);
            obs_inc c "server.reclaimed";
            mark c "reclaim" slot
          end
        end
      end
    done;
    (* sweep claims with no backing slot: a death inside an admission
       drain leaves claims.(src) = j+1 and nothing else — without this
       sweep that source name is Busy forever *)
    for src = 0 to t.cfg.source_space - 1 do
      if Atomic.get t.claims.(src) = j + 1 then begin
        let backed = ref false in
        for slot = 0 to cap - 1 do
          if
            (not !backed)
            && t.slot_src.(slot) = src
            && t.slot_owner.(slot) = j
            && Atomic.get t.fence.(slot) <> fence_free
          then backed := true
        done;
        if (not !backed) && Atomic.compare_and_set t.claims.(src) (j + 1) 0 then begin
          Atomic.incr t.rs_claims_swept;
          obs_inc c "server.claims_swept"
        end
      end
    done
  end

let do_scan t (c : client) ~seat =
  Atomic.incr t.seat_hb;
  Atomic.incr t.rs_scans;
  (* 1. liveness: stale heartbeats become reclaims (seat-fenced: a
     deposed holder stops starting new reclaims) *)
  for j = 0 to t.cfg.clients - 1 do
    if j <> c.id then begin
      let h = Pad.get t.hb j in
      if h <> t.last_hb.(j) then begin
        t.last_hb.(j) <- h;
        t.stale.(j) <- 0;
        t.dead.(j) <- false
      end
      else begin
        t.stale.(j) <- t.stale.(j) + 1;
        if
          t.stale.(j) >= t.cfg.resilience.lease_ttl
          && (not t.dead.(j))
          && Atomic.get t.seat = seat
        then begin
          let t0 = jtrack c in
          reclaim_client t c j;
          jblame c Obs.Journey.Reclaim t0
        end
      end
    end
  done;
  (* 2. orphaned pending slots: a walker that died between popping a
     chain and finishing it leaves fence=PENDING slots reachable from
     no list head.  Any slot stuck at PENDING for a full TTL is
     retired directly — for a live, merely idle pending slot that is
     just an early drain. *)
  let cap = Array.length t.slot_next in
  for slot = 0 to cap - 1 do
    if Atomic.get t.fence.(slot) = fence_pending then begin
      t.pending_seen.(slot) <- t.pending_seen.(slot) + 1;
      if t.pending_seen.(slot) >= t.cfg.resilience.lease_ttl then begin
        t.pending_seen.(slot) <- 0;
        if Atomic.compare_and_set t.fence.(slot) fence_pending fence_retiring
        then begin
          let t0 = jtrack c in
          retire_slot t c slot ~was_pending:true ~reset:false;
          jblame c Obs.Journey.Retire t0;
          Atomic.incr t.rs_drain_heals;
          obs_inc c "server.drain_heals"
        end
      end
    end
    else t.pending_seen.(slot) <- 0
  done;
  (* 3. per-shard health: heal wedged drains, then let the state
     machine decide from this scan's deltas *)
  for sh = 0 to t.cfg.shards - 1 do
    let pend = Pad.get t.pending_n sh in
    if pend > 0 && pend = t.last_pend.(sh) then begin
      t.shard_stale.(sh) <- t.shard_stale.(sh) + 1;
      if t.shard_stale.(sh) >= t.cfg.resilience.drain_stale then begin
        t.shard_stale.(sh) <- 0;
        drain_shard t c sh;
        Atomic.incr t.rs_drain_heals
      end
    end
    else t.shard_stale.(sh) <- 0;
    t.last_pend.(sh) <- Pad.get t.pending_n sh;
    let sheds = Pad.get t.shard_sheds sh in
    let leaks = Pad.get t.shard_leaks sh in
    let d_sheds = sheds - t.last_sheds.(sh) in
    let d_leaks = leaks - t.last_leaks.(sh) in
    t.last_sheds.(sh) <- sheds;
    t.last_leaks.(sh) <- leaks;
    let prev = Health.state t.hx.(sh) in
    (* a quarantined shard is actively rebuilt: keep draining it *)
    if prev = Health.Quarantined then drain_shard t c sh;
    let st =
      Health.observe t.hx.(sh) ~sheds:d_sheds ~leaks:d_leaks
        ~pending:(Pad.get t.pending_n sh)
        ~admitted:(Pad.get t.admitted sh)
    in
    Atomic.set (Pad.cells t.health_w).(sh) (health_code st);
    (match (prev, st) with
    | (Health.Live | Health.Degraded), Health.Quarantined ->
        Atomic.incr t.rs_quarantines;
        obs_inc c "server.quarantines"
    | Health.Quarantined, Health.Live ->
        Atomic.incr t.rs_rebuilds;
        obs_inc c "server.rebuilds"
    | _ -> ())
  done

let tend t (c : client) =
  Atomic.incr (Pad.cells t.hb).(c.id);
  c.tend_count <- c.tend_count + 1;
  let rz = t.cfg.resilience in
  if c.tend_count >= rz.tend_every then begin
    c.tend_count <- 0;
    ignore (check_epoch t c : bool);
    let s = Atomic.get t.seat in
    if seat_holder s = c.id then begin
      let now = now_ns () in
      if now - Atomic.get t.last_scan_ns >= rz.scan_interval_ns then begin
        Atomic.set t.last_scan_ns now;
        do_scan t c ~seat:s
      end
    end
    else if s = 0 then begin
      let s' = seat_pack ~epoch:1 ~holder:c.id in
      if Atomic.compare_and_set t.seat 0 s' then begin
        Atomic.set t.last_scan_ns (now_ns ());
        do_scan t c ~seat:s'
      end
    end
    else begin
      (* watch the holder's scan heartbeat at scan cadence; steal the
         seat (epoch+1) after seat_ttl silent intervals *)
      let now = now_ns () in
      if now - c.last_seat_check_ns >= rz.scan_interval_ns then begin
        c.last_seat_check_ns <- now;
        let hb = Atomic.get t.seat_hb in
        if hb <> c.last_seat_hb then begin
          c.last_seat_hb <- hb;
          c.seat_stale <- 0
        end
        else begin
          c.seat_stale <- c.seat_stale + 1;
          if c.seat_stale >= rz.seat_ttl then begin
            c.seat_stale <- 0;
            let s' = seat_pack ~epoch:((s lsr seat_bits) + 1) ~holder:c.id in
            if Atomic.compare_and_set t.seat s s' then begin
              Atomic.incr t.rs_seat_steals;
              obs_inc c "server.seat_steals";
              Atomic.set t.last_scan_ns (now_ns ());
              do_scan t c ~seat:s'
            end
          end
        end
      end
    end
  end

let rec seize_seat t (c : client) =
  let s = Atomic.get t.seat in
  if seat_holder s = c.id then s
  else begin
    let s' = seat_pack ~epoch:((s lsr seat_bits) + 1) ~holder:c.id in
    if Atomic.compare_and_set t.seat s s' then s' else seize_seat t c
  end

let scan t (c : client) =
  let s = seize_seat t c in
  Atomic.set t.last_scan_ns (now_ns ());
  do_scan t c ~seat:s

let set_chaos (c : client) f = c.chaos <- f
let health t sh =
  if sh < 0 || sh >= t.cfg.shards then invalid_arg "Server.health: bad shard";
  match Pad.get t.health_w sh with
  | 0 -> Health.Live
  | 1 -> Health.Degraded
  | _ -> Health.Quarantined

type resilience_stats = {
  scans : int;
  deaths : int;
  reclaimed : int;
  claims_swept : int;
  reclaim_max_scans : int;
  drain_heals : int;
  adopted_walks : int;
  seat_steals : int;
  quarantines : int;
  rebuilds : int;
  fenced : int;
  failovers : int;
}

let resilience_stats t =
  let fenced = ref 0 and failovers = ref 0 in
  Array.iter
    (fun (c : client) ->
      fenced := !fenced + c.fenced;
      failovers := !failovers + c.failovers)
    t.clients_tbl;
  {
    scans = Atomic.get t.rs_scans;
    deaths = Atomic.get t.rs_deaths;
    reclaimed = Atomic.get t.rs_reclaimed;
    claims_swept = Atomic.get t.rs_claims_swept;
    reclaim_max_scans = Atomic.get t.rs_reclaim_max;
    drain_heals = Atomic.get t.rs_drain_heals;
    adopted_walks = Atomic.get t.rs_adopted;
    seat_steals = Atomic.get t.rs_seat_steals;
    quarantines = Atomic.get t.rs_quarantines;
    rebuilds = Atomic.get t.rs_rebuilds;
    fenced = !fenced;
    failovers = !failovers;
  }

let name_space t = t.total_space
let shards t = t.cfg.shards
let shard_of t ~src = route src t.cfg.shards
let shard_route ~shards ~src = route src shards
let scoreboard t = t.agg

let merge_flight t =
  match t.flight with
  | None -> ()
  | Some f ->
      Array.iter
        (fun c -> match c.ring with Some r -> Obs.Flight.merge ~into:f r | None -> ())
        t.clients_tbl

(* ----- construction ----- *)

let default_backend layout ~stage ~k =
  Any.pack (module Renaming.Split) (Renaming.Split.create ~stage layout ~k)

let create ?registry ?flight ?journeys ?(backend = default_backend) ?(parked = 0) cfg =
  if cfg.shards < 1 then invalid_arg "Server.create: shards < 1";
  (match journeys with
  | Some a when Array.length a <> cfg.clients ->
      invalid_arg "Server.create: one journey recorder per client"
  | _ -> ());
  if cfg.k_per_shard < 1 then invalid_arg "Server.create: k_per_shard < 1";
  if cfg.source_space < 1 then invalid_arg "Server.create: source_space < 1";
  if cfg.warm_capacity < 0 then invalid_arg "Server.create: warm_capacity < 0";
  if cfg.batch < 1 then invalid_arg "Server.create: batch < 1";
  if cfg.clients < 1 then invalid_arg "Server.create: clients < 1";
  if cfg.clients > seat_mask - 1 then
    invalid_arg "Server.create: clients exceed seat encoding";
  let rz = cfg.resilience in
  if rz.scan_interval_ns < 0 then invalid_arg "Server.create: scan_interval_ns < 0";
  if rz.lease_ttl < 1 then invalid_arg "Server.create: lease_ttl < 1";
  if rz.seat_ttl < 1 then invalid_arg "Server.create: seat_ttl < 1";
  if rz.tend_every < 1 then invalid_arg "Server.create: tend_every < 1";
  let cap = cfg.shards * cfg.k_per_shard in
  if cap > idx_mask - 1 then invalid_arg "Server.create: slab exceeds token encoding";
  let stores = Array.make cfg.shards None in
  let base = ref 0 in
  let shard_tbl =
    Array.init cfg.shards (fun s ->
        let layout = Layout.create () in
        let inst = backend layout ~stage:s ~k:cfg.k_per_shard in
        stores.(s) <- Some (Atomic_store.create layout);
        let sd = { inst; base = !base } in
        base := !base + Any.name_space inst;
        sd)
  in
  let stores = Array.map (function Some s -> s | None -> assert false) stores in
  let slot_next = Array.init cap (fun i -> if i = cap - 1 then -1 else i + 1) in
  let agg =
    Agg.create ~entry:"Server" ~name_space:!base ~workers:cfg.clients ~parked
  in
  let clients_tbl =
    Array.init cfg.clients (fun id ->
        let obs = Option.map (fun r -> Obs.Registry.shard r) registry in
        let ring =
          Option.map
            (fun f ->
              Obs.Flight.create
                ~capacity:(max 1024 (Obs.Flight.capacity f / cfg.clients))
                ())
            flight
        in
        let tally = Store.tally () in
        let ops =
          Array.map
            (fun store ->
              let o = Atomic_store.ops store ~pid:0 in
              (* one tally across all shard stores: with a registry it
                 also feeds the per-group counters, without one it
                 only keeps the totals the cost/flight paths need *)
              let o =
                match obs with
                | Some s -> Store.observed_into tally s o
                | None -> Store.tallying tally o
              in
              match ring with
              | Some r ->
                  Store.probed
                    (Obs.Flight.probe r ~pid:id ~clock:(fun () ->
                         Store.tally_total tally))
                    o
              | None -> o)
            stores
        in
        {
          id;
          obs;
          ring;
          jr = Option.map (fun a -> a.(id)) journeys;
          ops;
          tally;
          warm_src = Array.make (max 1 cfg.warm_capacity) (-1);
          warm_slot = Array.make (max 1 cfg.warm_capacity) (-1);
          warm_n = 0;
          my_epoch = 0;
          tend_count = 0;
          last_seat_hb = 0;
          seat_stale = 0;
          last_seat_check_ns = 0;
          chaos = None;
          acquires = 0;
          warm_hits = 0;
          busy = 0;
          shed = 0;
          drains = 0;
          drained = 0;
          fenced = 0;
          failovers = 0;
        })
  in
  {
    cfg;
    shard_tbl;
    stores;
    claims = Array.init cfg.source_space (fun _ -> Atomic.make 0);
    admitted = Pad.create cfg.shards 0;
    pending = Pad.create cfg.shards 0;
    pending_n = Pad.create cfg.shards 0;
    slot_src = Array.make cap (-1);
    slot_shard = Array.make cap (-1);
    slot_name = Array.make cap (-1);
    slot_owner = Array.make cap (-1);
    slot_held = Array.make cap false;
    slot_lease = Array.make cap None;
    slot_next;
    fence = Array.init cap (fun _ -> Atomic.make fence_free);
    free = Atomic.make 1 (* slot 0, tag 0 *);
    hb = Pad.create cfg.clients 0;
    epoch = Pad.create cfg.clients 0;
    cursor = Pad.create cfg.clients 0;
    seat = Atomic.make 0;
    seat_hb = Atomic.make 0;
    last_scan_ns = Atomic.make 0;
    health_w = Pad.create cfg.shards 0;
    shard_sheds = Pad.create cfg.shards 0;
    shard_leaks = Pad.create cfg.shards 0;
    hx =
      Array.init cfg.shards (fun _ ->
          Health.create
            {
              Health.degrade_sheds = rz.degrade_sheds;
              quarantine_leaks = rz.quarantine_leaks;
              drain_stale = rz.drain_stale;
            });
    last_hb = Array.make cfg.clients min_int;
    stale = Array.make cfg.clients 0;
    dead = Array.make cfg.clients false;
    pending_seen = Array.make cap 0;
    last_pend = Array.make cfg.shards 0;
    shard_stale = Array.make cfg.shards 0;
    last_sheds = Array.make cfg.shards 0;
    last_leaks = Array.make cfg.shards 0;
    rs_scans = Atomic.make 0;
    rs_deaths = Atomic.make 0;
    rs_reclaimed = Atomic.make 0;
    rs_claims_swept = Atomic.make 0;
    rs_reclaim_max = Atomic.make 0;
    rs_drain_heals = Atomic.make 0;
    rs_adopted = Atomic.make 0;
    rs_seat_steals = Atomic.make 0;
    rs_quarantines = Atomic.make 0;
    rs_rebuilds = Atomic.make 0;
    agg;
    total_space = !base;
    clients_tbl;
    flight;
  }

let client t i =
  if i < 0 || i >= t.cfg.clients then invalid_arg "Server.client: id out of range";
  t.clients_tbl.(i)

type client_stats = {
  acquires : int;
  warm_hits : int;
  busy : int;
  shed : int;
  drains : int;
  drained_releases : int;
  fenced : int;
  failovers : int;
}

let client_stats (c : client) =
  {
    acquires = c.acquires;
    warm_hits = c.warm_hits;
    busy = c.busy;
    shed = c.shed;
    drains = c.drains;
    drained_releases = c.drained;
    fenced = c.fenced;
    failovers = c.failovers;
  }

let client_obs c = c.obs
let client_id (c : client) = c.id

(* ----- telemetry probes -----

   Everything below is read-only: atomics are [Atomic.get]s, client
   warm counters are plain reads of another domain's non-atomic fields
   (well-defined under the OCaml memory model, possibly stale —
   telemetry-grade by design).  No probe writes anything, so attaching
   a sampler adds zero shared accesses to any request path; in
   particular the warm-grant path stays at its verified 0 protocol
   accesses. *)

type shard_probe = { admitted : int; pending : int; warm : int }

let probe_warm_shard t sh =
  let w = ref 0 in
  Array.iter
    (fun (c : client) ->
      let n = min c.warm_n (Array.length c.warm_slot) in
      for r = 0 to n - 1 do
        let slot = c.warm_slot.(r) in
        if slot >= 0 && slot < Array.length t.slot_shard && t.slot_shard.(slot) = sh
        then incr w
      done)
    t.clients_tbl;
  !w

let probe_shard t sh =
  if sh < 0 || sh >= t.cfg.shards then invalid_arg "Server.probe_shard: bad shard";
  {
    admitted = Pad.get t.admitted sh;
    pending = Pad.get t.pending_n sh;
    warm = probe_warm_shard t sh;
  }

let probe_free t =
  (* slab occupancy mirrors admission: cap minus every admitted slot *)
  let used = ref 0 in
  for sh = 0 to t.cfg.shards - 1 do
    used := !used + Pad.get t.admitted sh
  done;
  max 0 ((t.cfg.shards * t.cfg.k_per_shard) - !used)

let probe_claims t =
  let n = ref 0 in
  Array.iter (fun a -> if Atomic.get a <> 0 then incr n) t.claims;
  !n

let sampler_sources t =
  let shard_sources =
    List.concat
      (List.init t.cfg.shards (fun sh ->
           let p = string_of_int sh in
           [
             { Obs.Sampler.name = "shard" ^ p ^ ".admitted";
               read = (fun () -> Pad.get t.admitted sh) };
             { Obs.Sampler.name = "shard" ^ p ^ ".pending";
               read = (fun () -> Pad.get t.pending_n sh) };
             { Obs.Sampler.name = "shard" ^ p ^ ".warm";
               read = (fun () -> probe_warm_shard t sh) };
             { Obs.Sampler.name = "shard" ^ p ^ ".health";
               read = (fun () -> Pad.get t.health_w sh) };
           ]))
  in
  shard_sources
  @ [
      { Obs.Sampler.name = "slab.free"; read = (fun () -> probe_free t) };
      { Obs.Sampler.name = "claims.held"; read = (fun () -> probe_claims t) };
      { Obs.Sampler.name = "seat.scans"; read = (fun () -> Atomic.get t.rs_scans) };
      { Obs.Sampler.name = "reclaimed"; read = (fun () -> Atomic.get t.rs_reclaimed) };
    ]
