module Agg = Runtime.Agg

type fault =
  | Park
  | Stall of { request : int; spins : int }
  | Slow of int
  | Crash of { request : int }
  | Crash_in_drain of { drain : int }
  | Park_in_drain of { drain : int }

let of_plan plan =
  List.map
    (fun { Sim.Faults.victim; trigger; action } ->
      let request =
        match trigger with
        | Sim.Faults.At_access n -> n
        | Sim.Faults.On_note { occurrence; _ } -> occurrence
        | Sim.Faults.On_acquire n -> n
      in
      ( victim,
        match action with
        | Sim.Faults.Park -> Park
        | Sim.Faults.Crash -> Crash { request }
        | Sim.Faults.Stall n -> Stall { request; spins = 1000 * n }
        | Sim.Faults.Slow n -> Slow (100 * n) ))
    plan

(* The live telemetry attached to a run: per-client windowed rollups
   (merged after the join — deterministically, see Timeseries) plus
   the sampler's gauge series over Server probes.  Canonical names
   feed Slo: "latency", "attempts", "attempts_failed", "grants",
   "warm", "sheds", and each sampler source under its own name. *)
type telemetry = {
  window_ns : int;
  latency : Obs.Timeseries.t;
  attempts : Obs.Timeseries.t;
  failed : Obs.Timeseries.t;
  grants : Obs.Timeseries.t;
  warm : Obs.Timeseries.t;
  sheds : Obs.Timeseries.t;
  samples : (string * Obs.Timeseries.t) list;
  sampler_ticks : int;
}

let telemetry_series tel name =
  match name with
  | "latency" -> Some tel.latency
  | "attempts" -> Some tel.attempts
  | "attempts_failed" -> Some tel.failed
  | "grants" -> Some tel.grants
  | "warm" -> Some tel.warm
  | "sheds" -> Some tel.sheds
  | other -> List.assoc_opt other tel.samples

(* Per-run policy outcome census (summed over clients after the join). *)
type outcomes = {
  issued : int;
  granted : int;
  retried : int;
  deadline : int;
  shed_policy : int;
  shed_early : int;
}

type report = {
  result : Agg.result;
  cycles : int;
  acquires : int;
  warm_hits : int;
  busy : int;
  shed : int;
  drains : int;
  drained_releases : int;
  elapsed_s : float;
  throughput : float;
  latency : Obs.Histogram.snap;
  latency_closed : Obs.Histogram.snap;
  cold_accesses : Obs.Histogram.snap;
  warm_accesses : Obs.Histogram.snap;
  outstanding : int;
  telemetry : telemetry;
  outcomes : outcomes;
  resilience : Server.resilience_stats;
  health : Health.state array;
  settle_scans : int;
  journeys : Obs.Journey.t option;
}

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)
let spin n = for _ = 1 to n do Domain.cpu_relax () done

(* One client's private slice of the telemetry (single writer; merged
   after the join). *)
type rollup = {
  r_latency : Obs.Timeseries.t;
  r_attempts : Obs.Timeseries.t;
  r_failed : Obs.Timeseries.t;
  r_grants : Obs.Timeseries.t;
  r_warm : Obs.Timeseries.t;
  r_sheds : Obs.Timeseries.t;
}

let rollup ~window_ns () =
  {
    r_latency = Obs.Timeseries.create ~window_ns ();
    r_attempts = Obs.Timeseries.create ~hist:false ~window_ns ();
    r_failed = Obs.Timeseries.create ~hist:false ~window_ns ();
    r_grants = Obs.Timeseries.create ~hist:false ~window_ns ();
    r_warm = Obs.Timeseries.create ~hist:false ~window_ns ();
    r_sheds = Obs.Timeseries.create ~hist:false ~window_ns ();
  }

(* single-writer outcome counters, one record per client *)
type oc = {
  mutable o_issued : int;
  mutable o_granted : int;
  mutable o_retried : int;
  mutable o_deadline : int;
  mutable o_shed_policy : int;
  mutable o_shed_early : int;
}

let oc () =
  {
    o_issued = 0;
    o_granted = 0;
    o_retried = 0;
    o_deadline = 0;
    o_shed_policy = 0;
    o_shed_early = 0;
  }

(* A parked client grabs one name (skipping Busy/Shed request slots)
   and sits on it until every normal client has finished.  It never
   tends: its heartbeat goes stale exactly like a wedged process, so
   under resilient configs the reclaimer will (correctly) expire it —
   its wake-up release is then absorbed by the epoch fence. *)
let park_body server c (spec : Workload.server_spec) agg =
  let rec grab r =
    match Server.acquire server c ~src:(spec.source r) with
    | Server.Granted g -> g.token
    | Server.Busy | Server.Shed ->
        Domain.cpu_relax ();
        grab (r + 1)
  in
  let token = grab 0 in
  while not (Agg.all_normal_done agg) do
    Domain.cpu_relax ()
  done;
  Server.release server c ~token;
  Server.flush server c

exception Crashed

(* Drain-boundary fault hooks: the server calls them at every
   drain-walk slot boundary, before that slot's retirement fence, so a
   crash here orphans the rest of the chain (the walker's cursor still
   names it — exactly what cursor adoption and the orphaned-pending
   sweep exist to heal) but never half-retires a slot. *)
let install_chaos c fault agg =
  match fault with
  | Some (Crash_in_drain { drain }) ->
      let k = ref 0 in
      Server.set_chaos c
        (Some
           (fun _ ->
             let n = !k in
             incr k;
             if n = drain then raise Crashed))
  | Some (Park_in_drain { drain }) ->
      let k = ref 0 in
      let parked = ref false in
      Server.set_chaos c
        (Some
           (fun _ ->
             let n = !k in
             incr k;
             if n = drain && not !parked then begin
               parked := true;
               while not (Agg.all_normal_done agg) do
                 Domain.cpu_relax ()
               done
             end))
  | _ -> ()

let client_body server id nclients jr fault policy (spec : Workload.server_spec) ru
    counts lat_open lat_closed cold warm =
  let agg = Server.scoreboard server in
  let c = Server.client server id in
  install_chaos c fault agg;
  match fault with
  | Some Park -> park_body server c spec agg
  | _ ->
      let crash_at = match fault with Some (Crash { request }) -> request | _ -> max_int in
      let stall =
        match fault with
        | Some (Stall { request; spins }) -> Some (request, spins)
        | _ -> None
      in
      let slow = match fault with Some (Slow n) -> n | _ -> 0 in
      let park_in_drain =
        match fault with Some (Park_in_drain _) -> true | _ -> false
      in
      let obs = Server.client_obs c in
      (* Deadline-aware shedding reads this client's own latency
         rollup: the last complete window's p99, falling back to the
         live window when the series is young. *)
      let p99_ns () =
        let wns = Obs.Timeseries.window_ns ru.r_latency in
        let wid = now_ns () / wns in
        let p = Obs.Timeseries.percentile ru.r_latency ~wid:(wid - 1) 0.99 in
        if p > 0 then p else Obs.Timeseries.percentile ru.r_latency ~wid 0.99
      in
      (* A stream whose last arrival is still 0 is closed-loop: the
         scheduled time IS the issue time.  Open-loop streams schedule
         arrivals up front — the server, not the generator, eats any
         backlog (no coordinated omission).  Both clocks are recorded:
         open-loop latency from the schedule, closed-loop from issue;
         their divergence is exactly the queueing delay a
         coordinated-omission artifact would hide. *)
      let closed =
        spec.requests = 0 || spec.arrival (max 0 (spec.requests - 1)) <= 0.
      in
      let t0 = now_ns () in
      (try
         for r = 0 to spec.requests - 1 do
           if r >= crash_at then raise Crashed;
           Server.tend server c;
           let sched =
             if closed then now_ns ()
             else begin
               let sched = t0 + int_of_float (spec.arrival r *. 1e9) in
               while now_ns () < sched do
                 Domain.cpu_relax ()
               done;
               sched
             end
           in
           let issue = if closed then sched else now_ns () in
           Obs.Timeseries.observe ru.r_attempts ~now:issue 1;
           counts.o_issued <- counts.o_issued + 1;
           (* one journey per request slot, id unique across clients;
              arrival is the scheduled time so the journey's total is
              exactly the open-loop latency it must explain *)
           (match jr with
           | Some j -> Obs.Journey.start j ~id:((r * nclients) + id + 1) ~now:sched
           | None -> ());
           let last_fail = ref 0 in
           (* Every refused attempt — Busy or Shed — lands in the
              dedicated attempts_failed series; sheds additionally
              keep their own series for the shed-rate SLO. *)
           let attempt () =
             (match jr with
             | Some j when !last_fail <> 0 ->
                 (* time since the previous refusal is backoff wait *)
                 Obs.Journey.retry j;
                 Obs.Journey.dwell j Obs.Journey.Backoff (now_ns () - !last_fail)
             | _ -> ());
             (* heartbeat per attempt, not just per request: a retry
                storm must not read as a dead client *)
             Server.tend server c;
             match Server.acquire server c ~src:(spec.source r) with
             | Server.Granted g -> Ok (g.token, g.warm, g.accesses)
             | Server.Busy ->
                 let n = now_ns () in
                 last_fail := n;
                 Obs.Timeseries.observe ru.r_failed ~now:n 1;
                 Error `Busy
             | Server.Shed ->
                 let n = now_ns () in
                 last_fail := n;
                 Obs.Timeseries.observe ru.r_failed ~now:n 1;
                 Obs.Timeseries.observe ru.r_sheds ~now:n 1;
                 Error `Shed
           in
           let granted =
             match policy with
             | None -> (
                 match attempt () with Ok g -> Some g | Error _ -> None)
             | Some p -> (
                 match
                   Policy.drive p ~client:id ~now_ns ~p99_ns ~attempt ()
                 with
                 | Policy.Granted { value; retries } ->
                     counts.o_retried <- counts.o_retried + retries;
                     Some value
                 | Policy.Deadline_exceeded { retries } ->
                     counts.o_retried <- counts.o_retried + retries;
                     counts.o_deadline <- counts.o_deadline + 1;
                     None
                 | Policy.Shed { retries; early } ->
                     counts.o_retried <- counts.o_retried + retries;
                     if early then begin
                       counts.o_shed_early <- counts.o_shed_early + 1;
                       Obs.Timeseries.observe ru.r_sheds ~now:(now_ns ()) 1
                     end
                     else counts.o_shed_policy <- counts.o_shed_policy + 1;
                     None)
           in
           (match granted with
           | None -> (
               match jr with
               | Some j -> Obs.Journey.finish j ~now:(now_ns ())
               | None -> ())
           | Some (token, was_warm, accesses) ->
               counts.o_granted <- counts.o_granted + 1;
               spin spec.think;
               (match stall with
               | Some (request, spins) when r = request -> spin spins
               | _ -> ());
               Server.release server c ~token;
               let fin = now_ns () in
               let d_open = fin - sched and d_closed = fin - issue in
               Obs.Histogram.observe lat_open d_open;
               Obs.Histogram.observe lat_closed d_closed;
               Obs.Histogram.observe (if was_warm then warm else cold) accesses;
               Obs.Timeseries.observe ru.r_latency ~now:fin d_open;
               Obs.Timeseries.observe ru.r_grants ~now:fin 1;
               if was_warm then Obs.Timeseries.observe ru.r_warm ~now:fin 1;
               (match jr with
               | Some j -> Obs.Journey.finish j ~now:fin
               | None -> ());
               (match obs with
               | Some o -> Obs.Registry.observe o "server.latency_ns" d_open
               | None -> ());
               Agg.cycle_done agg id);
           spin slow
         done;
         Server.flush server c
       with Crashed -> ());
      if not park_in_drain then Agg.worker_done agg

let run ?registry ?flight ?journeys ?backend ?(faults = []) ?policy ?prepare
    ?(window_ns = 5_000_000) ?(sampler_interval_ns = 1_000_000)
    ~(config : Server.config) ~(spec : int -> Workload.server_spec) () =
  List.iter
    (fun (i, _) ->
      if i < 0 || i >= config.clients then
        invalid_arg "Churn.run: fault victim out of client range")
    faults;
  if window_ns < 1 then invalid_arg "Churn.run: window_ns < 1";
  let fault_of id = List.assoc_opt id faults in
  let parked =
    List.length
      (List.filter
         (fun (_, f) ->
           match f with Park | Park_in_drain _ -> true | _ -> false)
         faults)
  in
  let server = Server.create ?registry ?flight ?journeys ?backend ~parked config in
  (match prepare with Some f -> f server | None -> ());
  let specs = Array.init config.clients spec in
  let lat_open = Array.init config.clients (fun _ -> Obs.Histogram.create ()) in
  let lat_closed = Array.init config.clients (fun _ -> Obs.Histogram.create ()) in
  let cold = Array.init config.clients (fun _ -> Obs.Histogram.create ()) in
  let warm = Array.init config.clients (fun _ -> Obs.Histogram.create ()) in
  let rollups = Array.init config.clients (fun _ -> rollup ~window_ns ()) in
  let countss = Array.init config.clients (fun _ -> oc ()) in
  (* The sampler polls Server probes (read-only) from its own domain,
     writing its own series and — when a registry is wired — its own
     dedicated shard, per the single-writer rule. *)
  let sampler =
    if sampler_interval_ns <= 0 then None
    else
      let shard = Option.map (fun r -> Obs.Registry.shard r) registry in
      Some
        (Obs.Sampler.create ?shard ~window_ns (Server.sampler_sources server))
  in
  let handle =
    Option.map
      (fun s ->
        Obs.Sampler.start s ~now_ns
          ~sleep:(fun () ->
            Unix.sleepf (float_of_int sampler_interval_ns /. 1e9)))
      sampler
  in
  let t0 = Unix.gettimeofday () in
  let domains =
    Array.init config.clients (fun id ->
        Domain.spawn (fun () ->
            client_body server id config.clients
              (Option.map (fun a -> a.(id)) journeys)
              (fault_of id) policy specs.(id) rollups.(id) countss.(id) lat_open.(id)
              lat_closed.(id) cold.(id) warm.(id)))
  in
  Array.iter Domain.join domains;
  let c0 = Server.client server 0 in
  Server.drain_all server c0;
  let elapsed_s = Unix.gettimeofday () -. t0 in
  (* Settle: whatever crashed clients leaked is reclaimed here, by
     driving the seat directly from the (now single-threaded) epilogue
     — bounded by the campaign's promise of two lease TTLs' worth of
     scans.  A clean run exits immediately. *)
  let settle_budget = 2 * config.resilience.lease_ttl + 2 in
  let settle = ref 0 in
  while Server.outstanding server > 0 && !settle < settle_budget do
    incr settle;
    Server.scan server c0;
    Server.drain_all server c0
  done;
  (* Health transitions lag reclamation by one observation: a shard
     quarantined for a leak returns to Live only when a scan *after*
     the reclaim sees it clean.  Give it those scans, or a run that
     reclaims on its final scan reports a healed server as wedged. *)
  let heal = ref 0 in
  while
    (let unhealthy = ref false in
     for sh = 0 to config.shards - 1 do
       if Server.health server sh <> Health.Live then unhealthy := true
     done;
     !unhealthy)
    && !heal < settle_budget
  do
    incr heal;
    Server.scan server c0
  done;
  Option.iter Obs.Sampler.stop handle;
  Server.merge_flight server;
  (* journeys merge into recorder 0 (commutative; see Journey.merge) *)
  let journeys_merged =
    Option.map
      (fun a ->
        Array.iteri (fun i j -> if i > 0 then Obs.Journey.merge ~into:a.(0) j) a;
        a.(0))
      journeys
  in
  (* Publish the merged blame profile through the registry so the
     Prometheus exporter carries it like any other metric family.
     Post-join and single-threaded here, so a fresh shard is cheap and
     respects the single-writer rule. *)
  (match (registry, journeys_merged) with
  | Some r, Some j ->
      let sh = Obs.Registry.shard r in
      let s = Obs.Journey.snapshot j in
      Array.iteri
        (fun i ns ->
          Obs.Registry.count sh
            ("journey.blame." ^ Obs.Journey.stage_name Obs.Journey.stages.(i))
            ns)
        s.Obs.Journey.blame;
      Obs.Registry.count sh "journey.completed" s.Obs.Journey.completed;
      Obs.Registry.count sh "journey.flagged" s.Obs.Journey.flagged;
      (match s.Obs.Journey.worst with
      | Some w ->
          Obs.Gauge.observe
            (Obs.Registry.gauge sh "journey.worst_ns")
            w.Obs.Journey.total_ns;
          Obs.Gauge.observe
            (Obs.Registry.gauge sh "journey.worst_id")
            w.Obs.Journey.id
      | None -> ())
  | _ -> ());
  let resilience = Server.resilience_stats server in
  let result =
    Agg.result ~reclaimed:resilience.Server.reclaimed (Server.scoreboard server)
  in
  let cycles = Array.fold_left ( + ) 0 result.Agg.cycles_done in
  let sum f =
    let s = ref 0 in
    for id = 0 to config.clients - 1 do
      s := !s + f (Server.client_stats (Server.client server id))
    done;
    !s
  in
  let merge_all hs =
    let into = Obs.Histogram.create () in
    Array.iter (fun h -> Obs.Histogram.merge ~into h) hs;
    Obs.Histogram.snap into
  in
  let merge_series ~hist select =
    let into = Obs.Timeseries.create ~hist ~window_ns () in
    Array.iter (fun r -> Obs.Timeseries.merge ~into (select r)) rollups;
    into
  in
  let telemetry =
    {
      window_ns;
      latency = merge_series ~hist:true (fun r -> r.r_latency);
      attempts = merge_series ~hist:false (fun r -> r.r_attempts);
      failed = merge_series ~hist:false (fun r -> r.r_failed);
      grants = merge_series ~hist:false (fun r -> r.r_grants);
      warm = merge_series ~hist:false (fun r -> r.r_warm);
      sheds = merge_series ~hist:false (fun r -> r.r_sheds);
      samples =
        (match sampler with Some s -> Obs.Sampler.series s | None -> []);
      sampler_ticks =
        (match sampler with Some s -> Obs.Sampler.ticks s | None -> 0);
    }
  in
  let outcomes =
    Array.fold_left
      (fun acc o ->
        {
          issued = acc.issued + o.o_issued;
          granted = acc.granted + o.o_granted;
          retried = acc.retried + o.o_retried;
          deadline = acc.deadline + o.o_deadline;
          shed_policy = acc.shed_policy + o.o_shed_policy;
          shed_early = acc.shed_early + o.o_shed_early;
        })
      { issued = 0; granted = 0; retried = 0; deadline = 0; shed_policy = 0;
        shed_early = 0 }
      countss
  in
  let latency_open = merge_all lat_open in
  {
    result;
    cycles;
    acquires = sum (fun (s : Server.client_stats) -> s.acquires);
    warm_hits = sum (fun s -> s.warm_hits);
    busy = sum (fun s -> s.busy);
    shed = sum (fun s -> s.shed);
    drains = sum (fun s -> s.drains);
    drained_releases = sum (fun s -> s.drained_releases);
    elapsed_s;
    throughput = (if elapsed_s > 0. then float_of_int cycles /. elapsed_s else 0.);
    latency = latency_open;
    latency_closed = merge_all lat_closed;
    cold_accesses = merge_all cold;
    warm_accesses = merge_all warm;
    outstanding = Server.outstanding server;
    telemetry;
    outcomes;
    resilience;
    health = Array.init (Server.shards server) (fun sh -> Server.health server sh);
    settle_scans = !settle;
    journeys = journeys_merged;
  }
