module Agg = Runtime.Agg

type fault =
  | Park
  | Stall of { request : int; spins : int }
  | Slow of int
  | Crash of { request : int }

let of_plan plan =
  List.map
    (fun { Sim.Faults.victim; trigger; action } ->
      let request =
        match trigger with
        | Sim.Faults.At_access n -> n
        | Sim.Faults.On_note { occurrence; _ } -> occurrence
        | Sim.Faults.On_acquire n -> n
      in
      ( victim,
        match action with
        | Sim.Faults.Park -> Park
        | Sim.Faults.Crash -> Crash { request }
        | Sim.Faults.Stall n -> Stall { request; spins = 1000 * n }
        | Sim.Faults.Slow n -> Slow (100 * n) ))
    plan

(* The live telemetry attached to a run: per-client windowed rollups
   (merged after the join — deterministically, see Timeseries) plus
   the sampler's gauge series over Server probes.  Canonical names
   feed Slo: "latency", "attempts", "grants", "warm", "sheds", and
   each sampler source under its own name. *)
type telemetry = {
  window_ns : int;
  latency : Obs.Timeseries.t;
  attempts : Obs.Timeseries.t;
  grants : Obs.Timeseries.t;
  warm : Obs.Timeseries.t;
  sheds : Obs.Timeseries.t;
  samples : (string * Obs.Timeseries.t) list;
  sampler_ticks : int;
}

let telemetry_series tel name =
  match name with
  | "latency" -> Some tel.latency
  | "attempts" -> Some tel.attempts
  | "grants" -> Some tel.grants
  | "warm" -> Some tel.warm
  | "sheds" -> Some tel.sheds
  | other -> List.assoc_opt other tel.samples

type report = {
  result : Agg.result;
  cycles : int;
  acquires : int;
  warm_hits : int;
  busy : int;
  shed : int;
  drains : int;
  drained_releases : int;
  elapsed_s : float;
  throughput : float;
  latency : Obs.Histogram.snap;
  latency_closed : Obs.Histogram.snap;
  cold_accesses : Obs.Histogram.snap;
  warm_accesses : Obs.Histogram.snap;
  outstanding : int;
  telemetry : telemetry;
}

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)
let spin n = for _ = 1 to n do Domain.cpu_relax () done

(* One client's private slice of the telemetry (single writer; merged
   after the join). *)
type rollup = {
  r_latency : Obs.Timeseries.t;
  r_attempts : Obs.Timeseries.t;
  r_grants : Obs.Timeseries.t;
  r_warm : Obs.Timeseries.t;
  r_sheds : Obs.Timeseries.t;
}

let rollup ~window_ns () =
  {
    r_latency = Obs.Timeseries.create ~window_ns ();
    r_attempts = Obs.Timeseries.create ~hist:false ~window_ns ();
    r_grants = Obs.Timeseries.create ~hist:false ~window_ns ();
    r_warm = Obs.Timeseries.create ~hist:false ~window_ns ();
    r_sheds = Obs.Timeseries.create ~hist:false ~window_ns ();
  }

(* A parked client grabs one name (skipping Busy/Shed request slots)
   and sits on it until every normal client has finished. *)
let park_body server c (spec : Workload.server_spec) agg =
  let rec grab r =
    match Server.acquire server c ~src:(spec.source r) with
    | Server.Granted g -> g.token
    | Server.Busy | Server.Shed ->
        Domain.cpu_relax ();
        grab (r + 1)
  in
  let token = grab 0 in
  while not (Agg.all_normal_done agg) do
    Domain.cpu_relax ()
  done;
  Server.release server c ~token;
  Server.flush server c

exception Crashed

let client_body server id fault (spec : Workload.server_spec) ru lat_open
    lat_closed cold warm =
  let agg = Server.scoreboard server in
  let c = Server.client server id in
  match fault with
  | Some Park -> park_body server c spec agg
  | _ ->
      let crash_at = match fault with Some (Crash { request }) -> request | _ -> max_int in
      let stall =
        match fault with
        | Some (Stall { request; spins }) -> Some (request, spins)
        | _ -> None
      in
      let slow = match fault with Some (Slow n) -> n | _ -> 0 in
      let obs = Server.client_obs c in
      (* A stream whose last arrival is still 0 is closed-loop: the
         scheduled time IS the issue time.  Open-loop streams schedule
         arrivals up front — the server, not the generator, eats any
         backlog (no coordinated omission).  Both clocks are recorded:
         open-loop latency from the schedule, closed-loop from issue;
         their divergence is exactly the queueing delay a
         coordinated-omission artifact would hide. *)
      let closed =
        spec.requests = 0 || spec.arrival (max 0 (spec.requests - 1)) <= 0.
      in
      let t0 = now_ns () in
      (try
         for r = 0 to spec.requests - 1 do
           if r >= crash_at then raise Crashed;
           let sched =
             if closed then now_ns ()
             else begin
               let sched = t0 + int_of_float (spec.arrival r *. 1e9) in
               while now_ns () < sched do
                 Domain.cpu_relax ()
               done;
               sched
             end
           in
           let issue = if closed then sched else now_ns () in
           Obs.Timeseries.observe ru.r_attempts ~now:issue 1;
           (match Server.acquire server c ~src:(spec.source r) with
           | Server.Busy -> ()
           | Server.Shed -> Obs.Timeseries.observe ru.r_sheds ~now:issue 1
           | Server.Granted g ->
               spin spec.think;
               (match stall with
               | Some (request, spins) when r = request -> spin spins
               | _ -> ());
               Server.release server c ~token:g.token;
               let fin = now_ns () in
               let d_open = fin - sched and d_closed = fin - issue in
               Obs.Histogram.observe lat_open d_open;
               Obs.Histogram.observe lat_closed d_closed;
               Obs.Histogram.observe (if g.warm then warm else cold) g.accesses;
               Obs.Timeseries.observe ru.r_latency ~now:fin d_open;
               Obs.Timeseries.observe ru.r_grants ~now:fin 1;
               if g.warm then Obs.Timeseries.observe ru.r_warm ~now:fin 1;
               (match obs with
               | Some o -> Obs.Registry.observe o "server.latency_ns" d_open
               | None -> ());
               Agg.cycle_done agg id);
           spin slow
         done;
         Server.flush server c
       with Crashed -> ());
      Agg.worker_done agg

let run ?registry ?flight ?backend ?(faults = []) ?(window_ns = 5_000_000)
    ?(sampler_interval_ns = 1_000_000) ~(config : Server.config)
    ~(spec : int -> Workload.server_spec) () =
  List.iter
    (fun (i, _) ->
      if i < 0 || i >= config.clients then
        invalid_arg "Churn.run: fault victim out of client range")
    faults;
  if window_ns < 1 then invalid_arg "Churn.run: window_ns < 1";
  let fault_of id = List.assoc_opt id faults in
  let parked =
    List.length (List.filter (fun (_, f) -> f = Park) faults)
  in
  let server = Server.create ?registry ?flight ?backend ~parked config in
  let specs = Array.init config.clients spec in
  let lat_open = Array.init config.clients (fun _ -> Obs.Histogram.create ()) in
  let lat_closed = Array.init config.clients (fun _ -> Obs.Histogram.create ()) in
  let cold = Array.init config.clients (fun _ -> Obs.Histogram.create ()) in
  let warm = Array.init config.clients (fun _ -> Obs.Histogram.create ()) in
  let rollups = Array.init config.clients (fun _ -> rollup ~window_ns ()) in
  (* The sampler polls Server probes (read-only) from its own domain,
     writing its own series and — when a registry is wired — its own
     dedicated shard, per the single-writer rule. *)
  let sampler =
    if sampler_interval_ns <= 0 then None
    else
      let shard = Option.map (fun r -> Obs.Registry.shard r) registry in
      Some
        (Obs.Sampler.create ?shard ~window_ns (Server.sampler_sources server))
  in
  let handle =
    Option.map
      (fun s ->
        Obs.Sampler.start s ~now_ns
          ~sleep:(fun () ->
            Unix.sleepf (float_of_int sampler_interval_ns /. 1e9)))
      sampler
  in
  let t0 = Unix.gettimeofday () in
  let domains =
    Array.init config.clients (fun id ->
        Domain.spawn (fun () ->
            client_body server id (fault_of id) specs.(id) rollups.(id)
              lat_open.(id) lat_closed.(id) cold.(id) warm.(id)))
  in
  Array.iter Domain.join domains;
  Server.drain_all server (Server.client server 0);
  let elapsed_s = Unix.gettimeofday () -. t0 in
  Option.iter Obs.Sampler.stop handle;
  Server.merge_flight server;
  let result = Agg.result (Server.scoreboard server) in
  let cycles = Array.fold_left ( + ) 0 result.Agg.cycles_done in
  let sum f =
    let s = ref 0 in
    for id = 0 to config.clients - 1 do
      s := !s + f (Server.client_stats (Server.client server id))
    done;
    !s
  in
  let merge_all hs =
    let into = Obs.Histogram.create () in
    Array.iter (fun h -> Obs.Histogram.merge ~into h) hs;
    Obs.Histogram.snap into
  in
  let merge_series ~hist select =
    let into = Obs.Timeseries.create ~hist ~window_ns () in
    Array.iter (fun r -> Obs.Timeseries.merge ~into (select r)) rollups;
    into
  in
  let telemetry =
    {
      window_ns;
      latency = merge_series ~hist:true (fun r -> r.r_latency);
      attempts = merge_series ~hist:false (fun r -> r.r_attempts);
      grants = merge_series ~hist:false (fun r -> r.r_grants);
      warm = merge_series ~hist:false (fun r -> r.r_warm);
      sheds = merge_series ~hist:false (fun r -> r.r_sheds);
      samples =
        (match sampler with Some s -> Obs.Sampler.series s | None -> []);
      sampler_ticks =
        (match sampler with Some s -> Obs.Sampler.ticks s | None -> 0);
    }
  in
  let latency_open = merge_all lat_open in
  {
    result;
    cycles;
    acquires = sum (fun (s : Server.client_stats) -> s.acquires);
    warm_hits = sum (fun s -> s.warm_hits);
    busy = sum (fun s -> s.busy);
    shed = sum (fun s -> s.shed);
    drains = sum (fun s -> s.drains);
    drained_releases = sum (fun s -> s.drained_releases);
    elapsed_s;
    throughput = (if elapsed_s > 0. then float_of_int cycles /. elapsed_s else 0.);
    latency = latency_open;
    latency_closed = merge_all lat_closed;
    cold_accesses = merge_all cold;
    warm_accesses = merge_all warm;
    outstanding = Server.outstanding server;
    telemetry;
  }
