module Agg = Runtime.Agg

type fault =
  | Park
  | Stall of { request : int; spins : int }
  | Slow of int
  | Crash of { request : int }

let of_plan plan =
  List.map
    (fun { Sim.Faults.victim; trigger; action } ->
      let request =
        match trigger with
        | Sim.Faults.At_access n -> n
        | Sim.Faults.On_note { occurrence; _ } -> occurrence
        | Sim.Faults.On_acquire n -> n
      in
      ( victim,
        match action with
        | Sim.Faults.Park -> Park
        | Sim.Faults.Crash -> Crash { request }
        | Sim.Faults.Stall n -> Stall { request; spins = 1000 * n }
        | Sim.Faults.Slow n -> Slow (100 * n) ))
    plan

type report = {
  result : Agg.result;
  cycles : int;
  acquires : int;
  warm_hits : int;
  busy : int;
  shed : int;
  drains : int;
  drained_releases : int;
  elapsed_s : float;
  throughput : float;
  latency : Obs.Histogram.snap;
  cold_accesses : Obs.Histogram.snap;
  warm_accesses : Obs.Histogram.snap;
  outstanding : int;
}

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)
let spin n = for _ = 1 to n do Domain.cpu_relax () done

(* A parked client grabs one name (skipping Busy/Shed request slots)
   and sits on it until every normal client has finished. *)
let park_body server c (spec : Workload.server_spec) agg =
  let rec grab r =
    match Server.acquire server c ~src:(spec.source r) with
    | Server.Granted g -> g.token
    | Server.Busy | Server.Shed ->
        Domain.cpu_relax ();
        grab (r + 1)
  in
  let token = grab 0 in
  while not (Agg.all_normal_done agg) do
    Domain.cpu_relax ()
  done;
  Server.release server c ~token;
  Server.flush server c

exception Crashed

let client_body server id fault (spec : Workload.server_spec) lat cold warm =
  let agg = Server.scoreboard server in
  let c = Server.client server id in
  match fault with
  | Some Park -> park_body server c spec agg
  | _ ->
      let crash_at = match fault with Some (Crash { request }) -> request | _ -> max_int in
      let stall =
        match fault with
        | Some (Stall { request; spins }) -> Some (request, spins)
        | _ -> None
      in
      let slow = match fault with Some (Slow n) -> n | _ -> 0 in
      let obs = Server.client_obs c in
      (* A stream whose last arrival is still 0 is closed-loop: charge
         latency from issue.  Open-loop streams charge from the
         scheduled arrival — the server, not the generator, eats any
         backlog (no coordinated omission). *)
      let closed =
        spec.requests = 0 || spec.arrival (max 0 (spec.requests - 1)) <= 0.
      in
      let t0 = now_ns () in
      (try
         for r = 0 to spec.requests - 1 do
           if r >= crash_at then raise Crashed;
           let sched =
             if closed then now_ns ()
             else begin
               let sched = t0 + int_of_float (spec.arrival r *. 1e9) in
               while now_ns () < sched do
                 Domain.cpu_relax ()
               done;
               sched
             end
           in
           (match Server.acquire server c ~src:(spec.source r) with
           | Server.Busy | Server.Shed -> ()
           | Server.Granted g ->
               spin spec.think;
               (match stall with
               | Some (request, spins) when r = request -> spin spins
               | _ -> ());
               Server.release server c ~token:g.token;
               let d = now_ns () - sched in
               Obs.Histogram.observe lat d;
               Obs.Histogram.observe (if g.warm then warm else cold) g.accesses;
               (match obs with
               | Some o -> Obs.Registry.observe o "server.latency_ns" d
               | None -> ());
               Agg.cycle_done agg id);
           spin slow
         done;
         Server.flush server c
       with Crashed -> ());
      Agg.worker_done agg

let run ?registry ?flight ?backend ?(faults = []) ~(config : Server.config)
    ~(spec : int -> Workload.server_spec) () =
  List.iter
    (fun (i, _) ->
      if i < 0 || i >= config.clients then
        invalid_arg "Churn.run: fault victim out of client range")
    faults;
  let fault_of id = List.assoc_opt id faults in
  let parked =
    List.length (List.filter (fun (_, f) -> f = Park) faults)
  in
  let server = Server.create ?registry ?flight ?backend ~parked config in
  let specs = Array.init config.clients spec in
  let lat = Array.init config.clients (fun _ -> Obs.Histogram.create ()) in
  let cold = Array.init config.clients (fun _ -> Obs.Histogram.create ()) in
  let warm = Array.init config.clients (fun _ -> Obs.Histogram.create ()) in
  let t0 = Unix.gettimeofday () in
  let domains =
    Array.init config.clients (fun id ->
        Domain.spawn (fun () ->
            client_body server id (fault_of id) specs.(id) lat.(id) cold.(id)
              warm.(id)))
  in
  Array.iter Domain.join domains;
  Server.drain_all server (Server.client server 0);
  let elapsed_s = Unix.gettimeofday () -. t0 in
  Server.merge_flight server;
  let result = Agg.result (Server.scoreboard server) in
  let cycles = Array.fold_left ( + ) 0 result.Agg.cycles_done in
  let sum f =
    let s = ref 0 in
    for id = 0 to config.clients - 1 do
      s := !s + f (Server.client_stats (Server.client server id))
    done;
    !s
  in
  let merge_all hs =
    let into = Obs.Histogram.create () in
    Array.iter (fun h -> Obs.Histogram.merge ~into h) hs;
    Obs.Histogram.snap into
  in
  {
    result;
    cycles;
    acquires = sum (fun (s : Server.client_stats) -> s.acquires);
    warm_hits = sum (fun s -> s.warm_hits);
    busy = sum (fun s -> s.busy);
    shed = sum (fun s -> s.shed);
    drains = sum (fun s -> s.drains);
    drained_releases = sum (fun s -> s.drained_releases);
    elapsed_s;
    throughput = (if elapsed_s > 0. then float_of_int cycles /. elapsed_s else 0.);
    latency = merge_all lat;
    cold_accesses = merge_all cold;
    warm_accesses = merge_all warm;
    outstanding = Server.outstanding server;
  }
