(** Adversarial fault injection for simulated runs.

    The paper's guarantees are adversarial: the splitter's output-set
    bound (Theorem 5) and FILTER's wait-freedom (Theorem 10) must hold
    {e no matter where other processes stall} — a parked process that
    re-enters later is exactly the long-lived regime in which renaming
    bugs hide.  A {!plan} describes such adversities declaratively;
    a {!t} (controller) applies it to a {!Sched} run through an
    ordinary {!Sched.monitor}, so fault plans compose with any
    scheduling strategy and with the model checker.

    {b Triggers are self-conditions.}  Every trigger depends only on
    the victim's {e own} history (its access count, its own emitted
    events) — never on another process's progress.  This is what keeps
    {!Model_check}'s partial-order reduction sound for park-only plans:
    a parked process is simply a frozen transition, and whether it is
    frozen commutes with reordering independent steps of other
    processes (see {!por_safe}).

    {b Actions.}
    - [Park]: freeze the victim permanently.  Non-faulty processes must
      still make progress — this is the wait-freedom regime.
    - [Stall n]: freeze the victim until [n] further {e global} steps
      have been taken, then resume it.  Models a slow process re-entering;
      triggered on [Acquired] it models a stalled holder whose burst
      release/re-acquire lands in the middle of other operations.
    - [Slow n]: from the trigger on, the victim pauses for [n] global
      steps after {e every} access — a slow-lane process.
    - [Crash]: process death.  Operationally identical to [Park] — in
      the asynchronous model a crashed process is indistinguishable
      from an arbitrarily slow one — but recorded separately
      ({!crashed}) so harnesses know the victim will {e never} release
      what it holds: a crash while holding a name leaks it forever
      unless a recovery layer ([lib/recovery]) reclaims it.

    Timed actions depend on global time, so they are {e not} POR-safe;
    {!Model_check} automatically falls back to unreduced search for
    such plans. *)

type trigger =
  | At_access of int
      (** Fire right after the victim's [n]-th shared access ([n ≥ 1];
          [At_access 0] fires before its first). *)
  | On_note of { tag : string; value : int option; occurrence : int }
      (** Fire when the victim emits its [occurrence]-th (1-based)
          [Event.Note (tag, v)] with [v] matching [value] (any value if
          [None]).  [Note ("in", d)] parks a process {e inside} a
          splitter output set; [Note ("cycle", i)] parks it at the
          start of re-entry [i]. *)
  | On_acquire of int
      (** Fire when the victim emits its [n]-th (1-based)
          [Event.Acquired _] — i.e. while it {e holds} a name. *)

type action =
  | Park
  | Stall of int  (** Resume after this many further global steps. *)
  | Slow of int  (** Stall this many global steps after every access. *)
  | Crash  (** Permanent park recorded as process death. *)

type fault = { victim : int; trigger : trigger; action : action }
(** [victim] is the process {e index} (into the [procs] array). *)

type plan = fault list

val por_safe : plan -> bool
(** [true] iff every action is [Park] or [Crash] — the only cases in
    which the plan commutes with partial-order reduction and state
    caching (both just freeze a transition forever). *)

val victims : plan -> int list
(** Sorted distinct victim indices. *)

(** {1 Textual plans}

    A compact syntax for CLI flags, log lines and reproduction
    recipes; {!to_string} and {!of_string} round-trip.

    {v
    plan    := "none" | fault { "," fault }
    fault   := action "@p" INT ":" trigger
    action  := "park" | "crash" | "stall" INT | "slow" INT
    trigger := "acc" INT
             | "note(" TAG [ "=" INT ] ")" [ "#" INT ]
             | "acquire" [ "#" INT ]
    v}

    Examples: [park@p1:acc7] (park process 1 after its 7th access),
    [stall24@p2:note(in)#2] (second time process 2 is inside an output
    set, stall it for 24 global steps), [slow3@p0:acquire]. *)

val to_string : plan -> string
val of_string : string -> (plan, string) result

(** {1 Applying a plan} *)

type t
(** A controller: one per run.  Stateful — create a fresh one for every
    (re-)execution, exactly like a fresh monitor. *)

val controller : plan -> t

val monitor : t -> Sched.monitor
(** Combine with the run's other monitors ({!Checks.combine}); order
    does not matter.  The controller pauses victims via {!Sched.pause}
    and resumes timed stalls via {!Sched.resume} as global steps
    accumulate. *)

val fired : t -> int
(** Faults triggered so far. *)

val parked : t -> int list
(** Victims currently frozen (parked, crashed, stalling, or in a
    slow-lane pause), sorted. *)

val crashed : t -> int list
(** Victims whose [Crash] fault has fired, sorted.  Always a subset of
    {!parked}: crashed processes never resume. *)

val pending_resumes : t -> bool
(** A timed resume is scheduled but not yet due. *)

val unstick : t -> Sched.t -> bool
(** If no process is enabled but timed resumes are pending, fast-forward
    the fault clock to the earliest due batch and resume it (repeating
    until some process is enabled or nothing is pending).  Returns
    [true] if any process was resumed.  Needed because pauses do not
    consume steps: when every unfinished process is frozen the global
    clock would otherwise never advance. *)

val run :
  ?max_steps:int -> t -> Sched.t -> Sched.strategy -> Sched.outcome
(** Like {!Sched.run} but fault-aware: [t]'s monitor must already be
    attached to the simulation, and the loop {!unstick}s instead of
    stopping when only timed-stalled processes remain.  Parked
    processes are left frozen: the run completes when every non-parked
    process finishes. *)

(** {1 Random plans} *)

val gen :
  Rng.t ->
  nprocs:int ->
  ?tags:string list ->
  ?max_access:int ->
  unit ->
  plan
(** A random plan for a configuration of [nprocs] processes: up to
    [nprocs - 1] faults with distinct victims (at least one process is
    always left fault-free), triggers drawn over access counts in
    [\[0, max_access\]] (default [32]), the given note [tags], and
    acquire counts; actions weighted towards [Park].  Deterministic in
    the generator state — the same seed reproduces the same plan.
    Never generates [Crash]: crash campaigns use {!gen_crash}, and
    keeping this distribution fixed preserves the plans baked into
    existing campaign seeds. *)

val gen_crash :
  Rng.t ->
  nprocs:int ->
  ?max_cycle:int ->
  unit ->
  plan
(** A random {e crash} plan: between [1] and [nprocs - 1] victims (at
    least one process always survives), each crashed while {b holding}
    a name — trigger [On_acquire occ] with [occ] drawn from
    [\[1, max_cycle\]] (default [3]).  This is the adversary the
    recovery layer exists for: every fired fault leaks a held name
    until something reclaims it.  Deterministic in the generator
    state. *)
