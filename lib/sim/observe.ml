open Shared_mem

type op_state = {
  mutable op : string option;
  mutable start : int;
  mutable accesses : int;
  mutable notes : (string * int) list; (* reversed *)
}

type t = {
  shard : Obs.Registry.shard;
  procs : (int, op_state) Hashtbl.t;
  cell_counters : (int, Obs.Counter.t * Obs.Counter.t * Obs.Counter.t) Hashtbl.t;
  total_reads : Obs.Counter.t;
  total_writes : Obs.Counter.t;
  total_rmws : Obs.Counter.t;
  mutable sched : Sched.t option;
}

let max_annotations = 32

let create shard =
  {
    shard;
    procs = Hashtbl.create 8;
    cell_counters = Hashtbl.create 16;
    total_reads = Obs.Registry.counter shard "store.reads";
    total_writes = Obs.Registry.counter shard "store.writes";
    total_rmws = Obs.Registry.counter shard "store.rmws";
    sched = None;
  }

let op_begin name = Sched.emit (Event.Note ("obs:" ^ name, 0))

let state t proc =
  match Hashtbl.find_opt t.procs proc with
  | Some st -> st
  | None ->
      let st = { op = None; start = 0; accesses = 0; notes = [] } in
      Hashtbl.add t.procs proc st;
      st

let counters_for t cell =
  match Hashtbl.find_opt t.cell_counters (Cell.id cell) with
  | Some cs -> cs
  | None ->
      let g = Store.group cell in
      let cs =
        ( Obs.Registry.counter t.shard ("store.reads." ^ g),
          Obs.Registry.counter t.shard ("store.writes." ^ g),
          Obs.Registry.counter t.shard ("store.rmws." ^ g) )
      in
      Hashtbl.add t.cell_counters (Cell.id cell) cs;
      cs

let now t = match t.sched with Some s -> Sched.total_steps s | None -> 0

let close_op t proc st =
  match st.op with
  | None -> ()
  | Some name ->
      let pid = match t.sched with Some s -> Sched.pid_of s proc | None -> proc in
      Obs.Registry.span t.shard
        {
          name;
          pid;
          start_step = st.start;
          end_step = now t;
          accesses = st.accesses;
          annotations = List.rev st.notes;
        };
      Obs.Registry.observe t.shard ("op." ^ name ^ ".accesses") st.accesses;
      Obs.Registry.inc t.shard ("op." ^ name ^ ".count");
      st.op <- None;
      st.accesses <- 0;
      st.notes <- []

let annotate st key v =
  if st.op <> None && List.length st.notes < max_annotations then
    st.notes <- (key, v) :: st.notes

let on_event t sched proc ev =
  t.sched <- Some sched;
  let st = state t proc in
  match (ev : Event.t) with
  | Note (tag, _)
    when String.length tag > 4 && String.equal (String.sub tag 0 4) "obs:" ->
      close_op t proc st;
      st.op <- Some (String.sub tag 4 (String.length tag - 4));
      st.start <- Sched.total_steps sched
  | Acquired n ->
      annotate st "name" n;
      close_op t proc st;
      Obs.Gauge.incr (Obs.Registry.gauge t.shard "names.held");
      Obs.Gauge.incr (Obs.Registry.gauge t.shard ("names.held." ^ string_of_int n));
      Obs.Registry.inc t.shard "names.acquired"
  | Released n ->
      annotate st "released" n;
      Obs.Gauge.decr (Obs.Registry.gauge t.shard "names.held");
      Obs.Gauge.decr (Obs.Registry.gauge t.shard ("names.held." ^ string_of_int n));
      Obs.Registry.inc t.shard "names.released"
  | Note (tag, v) -> annotate st tag v

let on_access t sched proc access =
  t.sched <- Some sched;
  (match (access : Sched.access) with
  | Read (c, _) ->
      let r, _, _ = counters_for t c in
      Obs.Counter.incr r;
      Obs.Counter.incr t.total_reads
  | Write (c, _) ->
      let _, w, _ = counters_for t c in
      Obs.Counter.incr w;
      Obs.Counter.incr t.total_writes
  | Update (c, _, _) ->
      let _, _, u = counters_for t c in
      Obs.Counter.incr u;
      Obs.Counter.incr t.total_rmws);
  let st = state t proc in
  if st.op <> None then st.accesses <- st.accesses + 1

let monitor t =
  Sched.monitor
    ~on_event:(fun sched proc ev -> on_event t sched proc ev)
    ~on_access:(fun sched proc access -> on_access t sched proc access)
    ()

let finalize t = Hashtbl.iter (fun proc st -> close_op t proc st) t.procs
