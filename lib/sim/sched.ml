open Shared_mem

type _ Effect.t +=
  | Sread : Cell.t -> int Effect.t
  | Swrite : (Cell.t * int) -> unit Effect.t
  | Srmw : (Cell.t * (int -> int)) -> int Effect.t
  | Semit : Event.t -> unit Effect.t

type access =
  | Read of Cell.t * int
  | Write of Cell.t * int
  | Update of Cell.t * int * int  (** read-modify-write: old, new *)

type access_kind = ARead | AWrite | ARmw
type access_sig = { proc : int; cell : int; kind : access_kind }

exception Aborted

type t = {
  mem : int array;
  pids : int array;
  state : pending array;
  paused : bool array;
  steps : int array;
  mutable total : int;
  mutable last : int;  (* last stepped index, for round-robin *)
  monitor : monitor;
}

and pending =
  | Pread of Cell.t * (int, unit) Effect.Deep.continuation
  | Pwrite of Cell.t * int * (unit, unit) Effect.Deep.continuation
  | Prmw of Cell.t * (int -> int) * (int, unit) Effect.Deep.continuation
  | Pdone

and monitor = {
  on_event : t -> int -> Event.t -> unit;
  on_access : t -> int -> access -> unit;
  on_step : t -> int -> unit;
}

let no_monitor =
  {
    on_event = (fun _ _ _ -> ());
    on_access = (fun _ _ _ -> ());
    on_step = (fun _ _ -> ());
  }

let monitor ?on_event ?on_access ?on_step () =
  let pick3 default = function Some f -> f | None -> default in
  {
    on_event = pick3 no_monitor.on_event on_event;
    on_access = pick3 no_monitor.on_access on_access;
    on_step = pick3 no_monitor.on_step on_step;
  }

let ops_for t i : Store.ops =
  {
    pid = t.pids.(i);
    read = (fun c -> Effect.perform (Sread c));
    write = (fun c v -> Effect.perform (Swrite (c, v)));
    rmw = (fun c f -> Effect.perform (Srmw (c, f)));
    (* probes perform no effect, so they are invisible to schedules
       and partial-order reduction; Flight_rec installs a recorder *)
    probe = Obs.Probe.null;
  }

let emit ev = Effect.perform (Semit ev)

(* Run [body] under the effect handler for process index [i]: the body
   executes until its first shared access (recorded in [t.state]) or
   until it returns.  [Effect.Deep.continue] on a stored continuation
   re-enters this handler, so every subsequent suspension lands back in
   [t.state.(i)] as well. *)
let spawn t i body =
  let open Effect.Deep in
  match_with body (ops_for t i)
    {
      retc = (fun () -> t.state.(i) <- Pdone);
      exnc =
        (fun e ->
          (* The fiber is gone (the exception unwound it); mark the
             process finished so [abort] does not try to resume a
             one-shot continuation that was already consumed. *)
          t.state.(i) <- Pdone;
          raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sread c ->
              Some
                (fun (k : (a, unit) continuation) -> t.state.(i) <- Pread (c, k))
          | Swrite (c, v) ->
              Some (fun (k : (a, unit) continuation) -> t.state.(i) <- Pwrite (c, v, k))
          | Srmw (c, f) ->
              Some (fun (k : (a, unit) continuation) -> t.state.(i) <- Prmw (c, f, k))
          | Semit ev ->
              Some
                (fun (k : (a, unit) continuation) ->
                  (* If the monitor raises (e.g. a checker violation),
                     unwind the emitting fiber through [discontinue] so
                     its cleanup handlers run and no suspended
                     continuation is abandoned; [exnc] re-raises. *)
                  match t.monitor.on_event t i ev with
                  | () -> continue k ()
                  | exception e -> discontinue k e)
          | _ -> None);
    }

let abort t =
  (* Unwind every suspended fiber so [Fun.protect]-style finalizers run
     instead of being dropped with the abandoned continuation.  A
     finalizer may perform further shared accesses, re-suspending the
     fiber, so loop with a budget; a fiber still suspended after that
     is abandoned (leaked) rather than looping forever. *)
  let budget = ref (64 * Array.length t.state) in
  let live () = Array.exists (function Pdone -> false | _ -> true) t.state in
  while !budget > 0 && live () do
    Array.iteri
      (fun i st ->
        let kill : type a. (a, unit) Effect.Deep.continuation -> unit =
         fun k ->
          decr budget;
          t.state.(i) <- Pdone;
          try Effect.Deep.discontinue k Aborted with _ -> ()
        in
        match st with
        | Pdone -> ()
        | Pread (_, k) -> kill k
        | Pwrite (_, _, k) -> kill k
        | Prmw (_, _, k) -> kill k)
      t.state
  done

let create ?(monitor = no_monitor) layout procs =
  let n = Array.length procs in
  let t =
    {
      mem = Layout.initial_values layout;
      pids = Array.map fst procs;
      state = Array.make n Pdone;
      paused = Array.make n false;
      steps = Array.make n 0;
      total = 0;
      last = n - 1;
      monitor;
    }
  in
  (* If a body (or a monitor hook fired from one) raises while running
     up to its first suspension, discontinue the already-spawned fibers
     before propagating, so their cleanup code runs. *)
  (try Array.iteri (fun i (_, body) -> spawn t i body) procs
   with e -> abort t; raise e);
  t

let n_procs t = Array.length t.state
let finished t i =
  match t.state.(i) with Pdone -> true | Pread _ | Pwrite _ | Prmw _ -> false
let pause t i = t.paused.(i) <- true
let resume t i = t.paused.(i) <- false
let pid_of t i = t.pids.(i)
let steps_of t i = t.steps.(i)
let total_steps t = t.total
let peek t c = t.mem.(Cell.id c)

let enabled t =
  let n = n_procs t in
  let buf = Array.make n 0 in
  let count = ref 0 in
  for i = 0 to n - 1 do
    if (not (finished t i)) && not t.paused.(i) then begin
      buf.(!count) <- i;
      incr count
    end
  done;
  Array.sub buf 0 !count

let pending_access t i =
  match t.state.(i) with
  | Pdone -> invalid_arg "Sched.pending_access: finished process"
  | Pread (c, _) -> { proc = i; cell = Cell.id c; kind = ARead }
  | Pwrite (c, _, _) -> { proc = i; cell = Cell.id c; kind = AWrite }
  | Prmw (c, _, _) -> { proc = i; cell = Cell.id c; kind = ARmw }

let step t i =
  if t.paused.(i) then invalid_arg "Sched.step: paused process";
  t.last <- i;
  match t.state.(i) with
  | Pdone -> invalid_arg "Sched.step: finished process"
  | Pread (c, k) ->
      let v = t.mem.(Cell.id c) in
      t.steps.(i) <- t.steps.(i) + 1;
      t.total <- t.total + 1;
      t.monitor.on_access t i (Read (c, v));
      Effect.Deep.continue k v;
      t.monitor.on_step t i
  | Pwrite (c, v, k) ->
      t.mem.(Cell.id c) <- v;
      t.steps.(i) <- t.steps.(i) + 1;
      t.total <- t.total + 1;
      t.monitor.on_access t i (Write (c, v));
      Effect.Deep.continue k ();
      t.monitor.on_step t i
  | Prmw (c, f, k) ->
      let old = t.mem.(Cell.id c) in
      t.mem.(Cell.id c) <- f old;
      t.steps.(i) <- t.steps.(i) + 1;
      t.total <- t.total + 1;
      t.monitor.on_access t i (Update (c, old, t.mem.(Cell.id c)));
      Effect.Deep.continue k old;
      t.monitor.on_step t i

type strategy = t -> int array -> int

let round_robin t en =
  (* First enabled index strictly after the last stepped one, cyclically. *)
  let n = Array.length en in
  let rec find j = if j >= n then en.(0) else if en.(j) > t.last then en.(j) else find (j + 1) in
  find 0

let random rng : strategy = fun _ en -> en.(Rng.int rng (Array.length en))

let pick f : strategy =
 fun t en ->
  match f t en with
  | Some i when Array.exists (Int.equal i) en -> i
  | Some _ | None -> en.(0)

type outcome = {
  completed : bool array;
  steps : int array;
  total : int;
  truncated : bool;
}

let run ?(max_steps = 1_000_000) t strat =
  let truncated = ref false in
  let stop = ref false in
  while not !stop do
    let en = enabled t in
    if Array.length en = 0 then stop := true
    else if t.total >= max_steps then begin
      truncated := true;
      stop := true
    end
    else step t (strat t en)
  done;
  {
    completed = Array.init (n_procs t) (finished t);
    steps = Array.copy t.steps;
    total = t.total;
    truncated = !truncated;
  }
