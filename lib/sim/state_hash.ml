open Shared_mem

type t = {
  mem : int array;  (* shadow of shared memory, maintained from accesses *)
  local : int array;  (* per-process rolling hash of its access history *)
  mutable events : int;  (* rolling hash of the ordered event sequence *)
}

(* 63-bit FNV-style mixer; multiplication wraps on native ints and
   [land max_int] keeps keys non-negative. *)
let mix h v = ((h lxor (v * 0x9E3779B97F4A7C1)) * 0x100000001B3) land max_int

let seed = 0x2BF29CE484222325

let create layout ~nprocs =
  {
    mem = Layout.initial_values layout;
    local = Array.make nprocs seed;
    events = seed;
  }

let kind_tag = function
  | Sched.Read _ -> 1
  | Sched.Write _ -> 2
  | Sched.Update _ -> 3

let record_access t i acc =
  (match acc with
  | Sched.Read _ -> ()
  | Sched.Write (c, v) -> t.mem.(Cell.id c) <- v
  | Sched.Update (c, _, v') -> t.mem.(Cell.id c) <- v');
  let cell, value =
    match acc with
    | Sched.Read (c, v) | Sched.Write (c, v) -> (Cell.id c, v)
    | Sched.Update (c, old, _) -> (Cell.id c, old)
  in
  t.local.(i) <- mix (mix (mix t.local.(i) (kind_tag acc)) cell) value

let record_event t i ev =
  let tag, payload =
    match ev with
    | Event.Acquired name -> (1, name)
    | Event.Released name -> (2, name)
    | Event.Note (s, v) -> (3, mix (Hashtbl.hash s) v)
  in
  t.events <- mix (mix (mix t.events i) tag) payload

let key t =
  let h = ref (mix seed t.events) in
  Array.iter (fun v -> h := mix !h v) t.mem;
  Array.iter (fun v -> h := mix !h v) t.local;
  !h
