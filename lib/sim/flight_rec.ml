type t = { ring : Obs.Flight.t; mutable sched : Sched.t option }

let create ?(capacity = 65_536) () =
  { ring = Obs.Flight.create ~capacity (); sched = None }

let ring t = t.ring

let now t = match t.sched with None -> 0 | Some s -> Sched.total_steps s

let monitor ?(chain = Sched.no_monitor) t =
  Sched.monitor
    ~on_event:(fun s i ev ->
      t.sched <- Some s;
      let pid = Sched.pid_of s i in
      let clock = Sched.total_steps s in
      (match ev with
      | Event.Acquired n -> Obs.Flight.record t.ring ~clock ~pid (Obs.Flight.Acquired n)
      | Event.Released n -> Obs.Flight.record t.ring ~clock ~pid (Obs.Flight.Released n)
      | Event.Note (s, v) -> Obs.Flight.record t.ring ~clock ~pid (Obs.Flight.Mark (s, v)));
      chain.Sched.on_event s i ev)
    ~on_access:(fun s i a ->
      t.sched <- Some s;
      chain.Sched.on_access s i a)
    ~on_step:(fun s i -> chain.Sched.on_step s i)
    ()

let wrap t (ops : Shared_mem.Store.ops) =
  Shared_mem.Store.probed
    (Obs.Flight.probe t.ring ~pid:ops.pid ~clock:(fun () -> now t))
    ops
