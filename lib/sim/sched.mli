(** Deterministic simulator of asynchronous shared memory.

    Processes are plain OCaml functions over a {!Shared_mem.Store.ops}
    capability.  Under simulation each [read]/[write] performs an
    OCaml 5 effect; the scheduler resumes exactly one process per step
    and applies exactly one shared access per step.  This matches the
    paper's execution model verbatim: each labelled statement is atomic
    and contains at most one shared-variable access, and an adversary
    chooses the interleaving.

    Local computation between two shared accesses runs atomically with
    the step that performed the first access (local steps of distinct
    processes commute, so this does not restrict the adversary).

    Crashes and slow processes are modelled by {!pause}: a paused
    process takes no further steps until {!resume}; wait-freedom means
    the others still make progress. *)

type t
(** A running simulation. *)

type access =
  | Read of Shared_mem.Cell.t * int  (** Register and the value read. *)
  | Write of Shared_mem.Cell.t * int  (** Register and the value written. *)
  | Update of Shared_mem.Cell.t * int * int
      (** Atomic read-modify-write: old and new value. *)

type access_kind = ARead | AWrite | ARmw

type access_sig = { proc : int; cell : int; kind : access_kind }
(** Static signature of a process's {e next} shared access: the
    process {e index} (into the [procs] array, not its source pid),
    the register ({!Shared_mem.Cell.id}), and whether it reads, writes,
    or read-modify-writes.  Two pending accesses of distinct processes
    commute (are independent, in the partial-order reduction sense)
    when they touch different registers or are both plain reads of the
    same register. *)

type monitor = {
  on_event : t -> int -> Event.t -> unit;
      (** Called when a process emits an event (atomic with the
          enclosing step). *)
  on_access : t -> int -> access -> unit;
      (** Called right after the access is applied to memory. *)
  on_step : t -> int -> unit;
      (** Called after the step's local continuation has run. *)
}

val no_monitor : monitor

val monitor :
  ?on_event:(t -> int -> Event.t -> unit) ->
  ?on_access:(t -> int -> access -> unit) ->
  ?on_step:(t -> int -> unit) ->
  unit ->
  monitor
(** Monitor with the given hooks; missing hooks are no-ops. *)

(** {1 Construction and stepping} *)

val create :
  ?monitor:monitor ->
  Shared_mem.Layout.t ->
  (int * (Shared_mem.Store.ops -> unit)) array ->
  t
(** [create layout procs] initialises memory from [layout] and spawns
    one process per [(pid, body)] pair.  [pid] is the process's source
    name (it may exceed the number of processes; the paper's processes
    are sparse in [{0,…,S-1}]).  Each body runs up to its first shared
    access during [create].  If a body (or a monitor hook it triggers)
    raises during this initial run, already-suspended siblings are
    {!abort}ed before the exception propagates. *)

val enabled : t -> int array
(** Indices (into the [procs] array, {e not} pids) of processes that
    are unfinished and not paused, in increasing order. *)

val step : t -> int -> unit
(** [step t i] performs process [i]'s pending shared access and runs
    its local continuation up to the next access or completion.
    @raise Invalid_argument if [i] is not enabled. *)

val pending_access : t -> int -> access_sig
(** Signature of the access that [step t i] would perform, without
    performing it.  Drives the model checker's independence analysis.
    @raise Invalid_argument if process [i] is finished. *)

exception Aborted
(** Raised {e inside} suspended process bodies by {!abort} to unwind
    them. *)

val abort : t -> unit
(** Discontinue every suspended process with {!Aborted} so that
    cleanup code ([Fun.protect] finalizers, [try ... with] handlers)
    runs instead of being dropped along with the abandoned fiber.
    Anything the unwinding raises (including {!Aborted} itself) is
    swallowed.  Finalizers may perform further shared accesses — those
    fibers are aborted again, up to a fixed budget — but must not rely
    on such accesses for correctness: a run that has been aborted makes
    no fairness or atomicity promises.  After [abort] every process is
    finished and the simulation is inert. *)

val finished : t -> int -> bool
val pause : t -> int -> unit
val resume : t -> int -> unit
val pid_of : t -> int -> int
(** Source name of process index [i]. *)

val steps_of : t -> int -> int
(** Shared accesses performed so far by process [i]. *)

val total_steps : t -> int
val peek : t -> Shared_mem.Cell.t -> int
(** Read a register without consuming a step (monitor/test helper). *)

val n_procs : t -> int

(** {1 Whole-run driving} *)

type strategy = t -> int array -> int
(** Given the simulation and the enabled process indices (non-empty),
    return the index to step next. *)

val round_robin : strategy
val random : Rng.t -> strategy

val pick : (t -> int array -> int option) -> strategy
(** Adversary helper: [pick f] follows [f] when it returns [Some i]
    with [i] enabled, and falls back to the first enabled process. *)

type outcome = {
  completed : bool array;  (** Per process: did its body return? *)
  steps : int array;  (** Per process: shared accesses performed. *)
  total : int;  (** Total shared accesses. *)
  truncated : bool;  (** True iff the step budget ran out. *)
}

val run : ?max_steps:int -> t -> strategy -> outcome
(** Drive [t] until no process is enabled or [max_steps] (default
    [1_000_000]) steps have been taken. *)

(** {1 Used by process bodies} *)

val ops_for : t -> int -> Shared_mem.Store.ops
(** The capability handed to process index [i]; exposed for
    combinators that re-wrap it. *)

val emit : Event.t -> unit
(** Emit an event from inside a simulated process.  Must only be
    called from a process body running under this scheduler. *)
