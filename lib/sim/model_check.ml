exception Violation of string

type config = {
  layout : Shared_mem.Layout.t;
  procs : (int * (Shared_mem.Store.ops -> unit)) array;
  monitor : Sched.monitor;
}

type builder = unit -> config
type violation = { message : string; schedule : int list }
type result = { paths : int; complete : bool; violation : violation option }

type options = { por : bool; cache_bound : int; max_steps : int; max_paths : int }

let default_options =
  { por = true; cache_bound = 1_000_000; max_steps = 10_000; max_paths = 2_000_000 }

type stats = {
  states : int;
  cache_hits : int;
  pruned_by_sleep : int;
  pruned_by_cache : int;
  max_depth : int;
  truncated_paths : int;
  elapsed_s : float;
}

type report = { outcome : result; stats : stats }

(* Run [f] on a fresh simulation, discontinuing every suspended fiber
   before an escaping exception propagates (otherwise their cleanup
   handlers would be silently dropped along with the fibers). *)
let with_sim cfg f =
  let t = Sched.create ~monitor:cfg.monitor cfg.layout cfg.procs in
  match f t with
  | r -> r
  | exception e ->
      Sched.abort t;
      raise e

(* Fault-plan support: a fresh controller per (re-)execution, its
   monitor sequenced after the user's.  A parked process is a frozen
   transition — it simply never appears in [Sched.enabled] — and
   because fault triggers are self-conditions (Faults doc), freezing
   commutes with reordering other processes' independent steps, keeping
   park-only plans sound under POR and state caching.  Timed
   stalls/slow-lanes depend on the global clock and are not; [check]
   falls back to unreduced search for those. *)
let seq_monitor a b =
  {
    Sched.on_event =
      (fun t i e ->
        a.Sched.on_event t i e;
        b.Sched.on_event t i e);
    on_access =
      (fun t i x ->
        a.Sched.on_access t i x;
        b.Sched.on_access t i x);
    on_step =
      (fun t i ->
        a.Sched.on_step t i;
        b.Sched.on_step t i);
  }

let mk_controller faults =
  match faults with
  | None | Some [] -> None
  | Some plan -> Some (Faults.controller plan)

let unstick_opt ctrl t =
  match ctrl with Some c -> ignore (Faults.unstick c t) | None -> ()

(* At the end of a faulty run, parked processes are still suspended;
   unwind them so their fibers are not abandoned (the same leak the
   early-exit paths guard against). *)
let settle_opt ctrl t =
  match ctrl with Some _ -> Sched.abort t | None -> ()

(* Signature of an *executed* step: which process, which register, how
   it was accessed, and whether the step's local run emitted events.
   Two executed steps are dependent when they belong to the same
   process, conflict on a register, or both emit — the monitors check
   properties of the event sequence, so emitting steps never commute
   from their point of view even when their memory accesses do. *)
type ssig = { sproc : int; scell : int; skind : int; semits : bool }

let dependent a b =
  a.sproc = b.sproc
  || (a.scell = b.scell && (a.skind > 0 || b.skind > 0))
  || (a.semits && b.semits)

let kind_int = function Sched.ARead -> 0 | Sched.AWrite -> 1 | Sched.ARmw -> 2

(* One node of the persistent DFS spine.  [f_cands] are the
   enabled-array indices still to explore from this state, head first;
   [f_cur] is the signature of the head's step once executed; [f_done]
   the signatures of fully explored steps; [f_sleep] the sleep set on
   entry (every entry is a signature recorded when that step was first
   executed — independence guarantees it replays identically). *)
type frame = {
  f_en : int array;
  mutable f_cands : int list;
  mutable f_cur : ssig option;
  mutable f_done : ssig list;
  f_sleep : ssig list;
}

let dummy_frame = { f_en = [||]; f_cands = []; f_cur = None; f_done = []; f_sleep = [] }

let sleep_mask sleep = List.fold_left (fun m s -> m lor (1 lsl s.sproc)) 0 sleep

let check ?(options = default_options) ?faults builder =
  let options =
    (* timed faults (stall/slow) are clocked by the global step count,
       which does not commute with reordering — drop both reductions *)
    match faults with
    | Some plan when plan <> [] && not (Faults.por_safe plan) ->
        { options with por = false; cache_bound = 0 }
    | _ -> options
  in
  let { por; cache_bound; max_steps; max_paths } = options in
  let t0 = Sys.time () in
  (* fingerprint -> (sleep mask, remaining budget) of previous visits *)
  let cache : (int, (int * int) list) Hashtbl.t = Hashtbl.create 4096 in
  let states = ref 0
  and cache_hits = ref 0
  and pruned_sleep = ref 0
  and pruned_cache = ref 0
  and max_depth = ref 0
  and truncated = ref 0
  and paths = ref 0 in
  let stk = ref (Array.make 64 dummy_frame) in
  let len = ref 0 in
  let push f =
    if !len = Array.length !stk then begin
      let bigger = Array.make (2 * !len) dummy_frame in
      Array.blit !stk 0 bigger 0 !len;
      stk := bigger
    end;
    !stk.(!len) <- f;
    incr len
  in
  (* The head of the top frame's candidates has been fully explored:
     retire it, advance to the next sibling, popping exhausted frames.
     Returns false when the whole tree is exhausted. *)
  let rec backtrack () =
    if !len = 0 then false
    else begin
      let f = !stk.(!len - 1) in
      (match f.f_cur with
      | Some s -> f.f_done <- s :: f.f_done
      | None -> assert false);
      f.f_cur <- None;
      f.f_cands <- List.tl f.f_cands;
      match f.f_cands with
      | _ :: _ -> true
      | [] ->
          decr len;
          !stk.(!len) <- dummy_frame;
          backtrack ()
    end
  in
  (* Execute the head candidate of [f] and record its signature.  With
     a fault plan, first re-apply any deadlock fast-forward the original
     execution performed at this point (deterministic, so the replayed
     prefix stays aligned). *)
  let exec_head t ctrl f emitted taken =
    unstick_opt ctrl t;
    let j = List.hd f.f_cands in
    let i = f.f_en.(j) in
    let s = Sched.pending_access t i in
    emitted := false;
    taken := j :: !taken;
    Sched.step t i;
    f.f_cur <-
      Some { sproc = i; scell = s.Sched.cell; skind = kind_int s.Sched.kind; semits = !emitted }
  in
  (* Re-execute the stacked prefix, then extend depth-first until a
     terminal: completion, budget truncation, or a pruned state. *)
  let run_one () =
    let cfg = builder () in
    let tracker = State_hash.create cfg.layout ~nprocs:(Array.length cfg.procs) in
    let emitted = ref false in
    let ctrl = mk_controller faults in
    let user =
      match ctrl with
      | Some c -> seq_monitor cfg.monitor (Faults.monitor c)
      | None -> cfg.monitor
    in
    let monitor =
      {
        Sched.on_event =
          (fun t i ev ->
            State_hash.record_event tracker i ev;
            emitted := true;
            user.Sched.on_event t i ev);
        on_access =
          (fun t i a ->
            State_hash.record_access tracker i a;
            user.Sched.on_access t i a);
        on_step = user.Sched.on_step;
      }
    in
    let taken = ref [] in
    try
      with_sim { cfg with monitor } (fun t ->
          for d = 0 to !len - 1 do
            exec_head t ctrl !stk.(d) emitted taken
          done;
          let stop = ref false in
          while not !stop do
            let en = Sched.enabled t in
            let en =
              match ctrl with
              | Some c when Array.length en = 0 && Faults.unstick c t ->
                  Sched.enabled t
              | _ -> en
            in
            if Array.length en = 0 then begin
              settle_opt ctrl t;
              stop := true
            end
            else if Sched.total_steps t >= max_steps then begin
              incr truncated;
              Sched.abort t;
              stop := true
            end
            else begin
              incr states;
              let sleep =
                if (not por) || !len = 0 then []
                else
                  let p = !stk.(!len - 1) in
                  let pc = Option.get p.f_cur in
                  List.filter (fun b -> not (dependent pc b)) (p.f_sleep @ p.f_done)
              in
              let cache_covered =
                cache_bound > 0
                &&
                let key = State_hash.key tracker in
                let mask = sleep_mask sleep in
                let remaining = max_steps - Sched.total_steps t in
                match Hashtbl.find_opt cache key with
                | Some entries ->
                    incr cache_hits;
                    if
                      List.exists
                        (fun (m, r) -> m land mask = m && r >= remaining)
                        entries
                    then begin
                      incr pruned_cache;
                      true
                    end
                    else begin
                      Hashtbl.replace cache key ((mask, remaining) :: entries);
                      false
                    end
                | None ->
                    if Hashtbl.length cache < cache_bound then
                      Hashtbl.add cache key [ (mask, remaining) ];
                    false
              in
              if cache_covered then begin
                Sched.abort t;
                stop := true
              end
              else begin
                let cands = ref [] in
                for j = Array.length en - 1 downto 0 do
                  if List.exists (fun s -> s.sproc = en.(j)) sleep then
                    incr pruned_sleep
                  else cands := j :: !cands
                done;
                match !cands with
                | [] ->
                    (* every enabled step is asleep: covered elsewhere *)
                    Sched.abort t;
                    stop := true
                | cands ->
                    let f =
                      { f_en = en; f_cands = cands; f_cur = None; f_done = []; f_sleep = sleep }
                    in
                    push f;
                    exec_head t ctrl f emitted taken
              end
            end
          done;
          if Sched.total_steps t > !max_depth then max_depth := Sched.total_steps t;
          `Terminal)
    with Violation message -> `Violation { message; schedule = List.rev !taken }
  in
  let finish outcome =
    {
      outcome;
      stats =
        {
          states = !states;
          cache_hits = !cache_hits;
          pruned_by_sleep = !pruned_sleep;
          pruned_by_cache = !pruned_cache;
          max_depth = !max_depth;
          truncated_paths = !truncated;
          elapsed_s = Sys.time () -. t0;
        };
    }
  in
  let rec drive () =
    match run_one () with
    | `Violation v -> finish { paths = !paths; complete = false; violation = Some v }
    | `Terminal -> (
        incr paths;
        match backtrack () with
        | false -> finish { paths = !paths; complete = true; violation = None }
        | true ->
            if !paths >= max_paths then
              finish { paths = !paths; complete = false; violation = None }
            else drive ())
  in
  drive ()

let report_json ?(label = "modelcheck") r =
  let o = r.outcome and s = r.stats in
  let per_sec =
    if s.elapsed_s > 0. then float_of_int o.paths /. s.elapsed_s else 0.
  in
  Printf.sprintf
    {|{"label":%S,"paths":%d,"complete":%b,"violation":%b,"states":%d,"cache_hits":%d,"pruned_by_sleep":%d,"pruned_by_cache":%d,"max_depth":%d,"truncated_paths":%d,"elapsed_s":%.6f,"paths_per_sec":%.1f}|}
    label o.paths o.complete
    (o.violation <> None)
    s.states s.cache_hits s.pruned_by_sleep s.pruned_by_cache s.max_depth
    s.truncated_paths s.elapsed_s per_sec

let explore ?(max_steps = 10_000) ?(max_paths = 2_000_000) ?faults builder =
  (check ~options:{ por = false; cache_bound = 0; max_steps; max_paths } ?faults builder)
    .outcome

(* Attach a fresh fault controller to a config (shared by the seeded
   sampler and the replayer, so a schedule found by one replays
   identically under the other). *)
let faulty_config ?faults cfg =
  let ctrl = mk_controller faults in
  let cfg =
    match ctrl with
    | Some c -> { cfg with monitor = seq_monitor cfg.monitor (Faults.monitor c) }
    | None -> cfg
  in
  (cfg, ctrl)

let sample ?(max_steps = 100_000) ?faults ~seeds builder =
  (* Draws the same random choices as [Sched.run t (Sched.random rng)]
     (one [Rng.int] per step, same loop order), but records them so a
     violating run comes back with a replayable schedule. *)
  let run_seed seed =
    let cfg, ctrl = faulty_config ?faults (builder ()) in
    let taken = ref [] in
    try
      with_sim cfg (fun t ->
          let rng = Rng.make seed in
          let stop = ref false in
          while not !stop do
            let en = Sched.enabled t in
            let en =
              match ctrl with
              | Some c when Array.length en = 0 && Faults.unstick c t ->
                  Sched.enabled t
              | _ -> en
            in
            if Array.length en = 0 then begin
              settle_opt ctrl t;
              stop := true
            end
            else if Sched.total_steps t >= max_steps then begin
              Sched.abort t;
              stop := true
            end
            else begin
              let c = Rng.int rng (Array.length en) in
              taken := c :: !taken;
              Sched.step t en.(c)
            end
          done);
      None
    with Violation message ->
      Some
        {
          message = Printf.sprintf "[seed %d] %s" seed message;
          schedule = List.rev !taken;
        }
  in
  let rec loop n = function
    | [] -> { paths = n; complete = true; violation = None }
    | seed :: rest -> (
        match run_seed seed with
        | Some v -> { paths = n + 1; complete = false; violation = Some v }
        | None -> loop (n + 1) rest)
  in
  loop 0 seeds

let replay ?(max_steps = 10_000) ?faults builder schedule =
  let cfg, ctrl = faulty_config ?faults (builder ()) in
  let taken = ref [] in
  try
    with_sim cfg (fun t ->
        let prefix = ref schedule in
        let stop = ref false in
        while not !stop do
          let en = Sched.enabled t in
          let en =
            match ctrl with
            | Some c when Array.length en = 0 && Faults.unstick c t ->
                Sched.enabled t
            | _ -> en
          in
          if Array.length en = 0 then begin
            settle_opt ctrl t;
            stop := true
          end
          else if Sched.total_steps t >= max_steps then begin
            Sched.abort t;
            stop := true
          end
          else begin
            let c =
              match !prefix with
              | c :: rest ->
                  prefix := rest;
                  c
              | [] -> 0
            in
            (* mangled schedules (e.g. [minimize] candidates) may carry
               choices past the enabled count; normalise instead of
               crashing so delta-debugging stays total *)
            let c = if c >= 0 && c < Array.length en then c else 0 in
            taken := c :: !taken;
            Sched.step t en.(c)
          end
        done);
    Ok ()
  with Violation message -> Error { message; schedule = List.rev !taken }

let shortest_violation ?(max_steps = 200) ?(max_paths_per_depth = 500_000) ?faults builder =
  let rec deepen d =
    if d > max_steps then None
    else
      let r = explore ~max_steps:d ~max_paths:max_paths_per_depth ?faults builder in
      match r.violation with
      | Some v -> Some v
      | None -> if r.complete then deepen (d + 1) else None
  in
  deepen 1

let minimize ?(max_steps = 100_000) ?faults builder schedule =
  (* Greedy delta-debugging against [replay]: drop chunks (halving the
     chunk size), then lower surviving choices towards 0 — smaller
     indices mean "earlier in the enabled array", normalising the
     witness.  Every candidate is validated by a full deterministic
     replay, so the result is guaranteed to still violate. *)
  let violates sched =
    match replay ~max_steps ?faults builder sched with
    | Error v -> Some v
    | Ok () -> None
  in
  match violates schedule with
  | None -> None
  | Some v0 ->
      let best = ref schedule and best_v = ref v0 in
      (* delete chunks until no deletion of any size helps *)
      let rec delete_pass () =
        let improved = ref false in
        let chunk = ref (max 1 (List.length !best / 2)) in
        while !chunk >= 1 do
          let arr = Array.of_list !best in
          let len = Array.length arr in
          let pos = ref 0 in
          while !pos < len do
            let hi = min len (!pos + !chunk) in
            let cand =
              Array.to_list
                (Array.append (Array.sub arr 0 !pos) (Array.sub arr hi (len - hi)))
            in
            (match violates cand with
            | Some v ->
                best := cand;
                best_v := v;
                improved := true;
                pos := len (* [arr] is stale; retry this size afresh *)
            | None -> pos := hi)
          done;
          chunk := if !chunk = 1 then 0 else !chunk / 2
        done;
        if !improved then delete_pass ()
      in
      delete_pass ();
      let arr = Array.of_list !best in
      Array.iteri
        (fun i c ->
          if c > 0 then begin
            let cand = Array.copy arr in
            cand.(i) <- 0;
            match violates (Array.to_list cand) with
            | Some v ->
                arr.(i) <- 0;
                best := Array.to_list arr;
                best_v := v
            | None -> ()
          end)
        arr;
      Some { !best_v with schedule = !best }
