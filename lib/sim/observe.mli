(** Feeding the metrics registry from a simulated run.

    One {!monitor} turns a {!Sched} execution — a plain [simulate] run,
    a harness measurement, or a model-check counterexample replay —
    into registry updates, so the same schema comes out of the
    simulator as out of a real [Domain_runner] run:

    - every shared access bumps the per-register-group counters
      ([store.reads.<group>], …) plus the ungrouped totals;
    - [Acquired n]/[Released n] events drive the [names.held] gauge,
      the per-name [names.held.<n>] gauges, and the [names.acquired] /
      [names.released] counters;
    - {e spans}: a process body marks the start of an operation with
      {!op_begin} (an [Event.Note ("obs:<op>", _)], free of shared
      accesses, so it never perturbs the schedule or costs).  The span
      collects every shared access the process performs until the
      operation completes — [Acquired n] closes a pending span (the
      [GetName] span, annotated with its destination name), a
      subsequent {!op_begin} or {!finalize} closes any other.  Closing
      a span records it in the shard's ring and feeds the
      [op.<op>.accesses] histogram and [op.<op>.count] counter.
      [Note] events emitted while a span is open become annotations.

    Emitting marker notes changes neither the enabled sets nor any
    access, so a model checker schedule found against marker-free
    bodies replays identically against marker-bearing ones — this is
    how counterexamples are profiled without disturbing partial-order
    reduction (event-emitting steps never commute, so markers inside
    checked bodies would defeat the reduction). *)

type t

val create : Obs.Registry.shard -> t
(** Fresh per-run tracker writing into [shard].  Create one per
    {!Sched.t}; a shard may accumulate several runs. *)

val monitor : t -> Sched.monitor
(** Combine with the run's other monitors via {!Checks.combine}. *)

val op_begin : string -> unit
(** Emit the span-start marker for operation [op] (["get"],
    ["release"], …) from inside a simulated process body. *)

val finalize : t -> unit
(** Close any spans still open (e.g. the last [release] of each
    process, or everything in-flight when a violation aborted the
    run).  Call after {!Sched.run} returns or raises. *)
