(** Flight-recorder capture for simulator runs.

    Bridges the two event sources into one {!Obs.Flight} ring:
    - {e structural probes} (splitter/mutex enter/check/release) flow
      through [Store.ops.probe] — install with {!wrap};
    - {e name events} ([Acquired]/[Released]/[Note]) flow through the
      scheduler monitor — install with {!monitor}.

    Every record is stamped with the scheduler's global step counter,
    so cross-process ordering in the ring matches the simulated
    interleaving.  Probes fired before the recorder has seen the
    scheduler (i.e. before the first shared access or event of the
    run) are stamped with clock [0]. *)

type t

val create : ?capacity:int -> unit -> t
(** A recorder over a fresh ring (default capacity [65536]). *)

val ring : t -> Obs.Flight.t
(** The underlying ring, for analysis/export after the run. *)

val monitor : ?chain:Sched.monitor -> t -> Sched.monitor
(** A scheduler monitor recording [Acquired]/[Released]/[Note] events
    (and caching the scheduler so probes can read the step clock).
    [chain] is invoked after recording — compose with checkers via
    [Flight_rec.monitor ~chain:(Checks.combine …) rec]. *)

val wrap : t -> Shared_mem.Store.ops -> Shared_mem.Store.ops
(** Install a recording probe for [ops.pid] into the capability. *)
