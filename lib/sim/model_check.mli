(** Bounded schedule exploration.

    OCaml continuations are one-shot, so the checker is re-execution
    based (in the style of stateless model checkers such as dscheck):
    each explored interleaving rebuilds the whole configuration from
    scratch via a user-supplied builder and replays a prefix of
    scheduling choices, then extends it depth-first.

    {!check} is the engine: depth-first search with two orthogonal
    reductions, both on by default and both switchable.

    {b Sleep-set partial-order reduction.}  Two pending steps are
    independent when they involve distinct processes, do not conflict
    on a register (distinct cells, or both plain reads of the same
    cell), {e and} at most one of them emits an event.  The last clause
    is what makes the reduction sound for this checker's monitors: they
    check properties of the {e event sequence} (two processes holding
    the same name simultaneously), so two event-emitting steps never
    commute from the monitors' point of view even when their memory
    accesses do.  An earlier revision of this module skipped POR
    entirely for that reason; making the dependence relation
    event-aware restores soundness while still pruning the (vastly more
    numerous) commuting memory-access interleavings.  Whether a step
    emits is known from the execution that first explored it, and
    independence guarantees sleeping steps replay identically.

    {b State caching.}  After each step the state fingerprint
    ({!State_hash}: shared memory, per-process access histories, the
    ordered event sequence) is looked up in a bounded cache.  A revisit
    is pruned only when a previous visit covered it: its sleep set was
    a subset of the current one (it explored at least as many
    successors) and its remaining step budget was at least as large (it
    explored at least as deep).  Including the ordered event sequence
    in the fingerprint keeps caching sound for history-dependent
    monitors (e.g. an occupancy high-water mark).

    Exhaustive exploration with both reductions handles the paper's
    "special cases" (2–3 processes, a few acquire/release cycles well
    beyond what plain DFS reaches); beyond that, {!sample} draws
    seeded-random schedules.  The mutation suite (test_mutations.ml,
    test_model_check.ml) is the regression net that keeps the
    reductions honest: reduced and unreduced search must agree on every
    verdict.

    The engine assumes {!Sched.pause} is not used while checking
    {e except} through a [?faults] plan passed to the entry points
    below, and that process bodies' cleanup handlers do not perform
    shared accesses after an abort.

    {b Fault plans.}  Every entry point takes [?faults:Faults.plan];
    the checker creates a fresh {!Faults} controller per (re-)execution
    and sequences its monitor after the configuration's own.  Park-only
    plans ({!Faults.por_safe}) keep both reductions sound: whether a
    victim is frozen depends only on its own history, which is part of
    the {!State_hash} fingerprint and commutes with reordering
    independent steps of other processes.  Timed actions ([Stall],
    [Slow]) depend on the global step clock, so {!check} silently falls
    back to [por = false], [cache_bound = 0] for such plans.  When every
    unfinished process is frozen, pending timed resumes are
    fast-forwarded ({!Faults.unstick}) — deterministically, so replayed
    prefixes stay aligned; permanently parked processes are unwound via
    {!Sched.abort} at the end of each path, never reported as
    incomplete. *)

exception Violation of string
(** Raised by monitors to signal an invariant violation; the checker
    catches it and reports the offending schedule. *)

type config = {
  layout : Shared_mem.Layout.t;
  procs : (int * (Shared_mem.Store.ops -> unit)) array;
  monitor : Sched.monitor;
}

type builder = unit -> config
(** Must build a {e fresh} configuration — fresh layout, fresh cells,
    fresh monitor state — so that replayed schedules are reproducible. *)

type violation = {
  message : string;
  schedule : int list;
      (** The choice at each decision point: index into the enabled
          array, in execution order.  Replayable via {!replay}. *)
}

type result = {
  paths : int;  (** Interleavings fully explored. *)
  complete : bool;  (** False if [max_paths] stopped the search. *)
  violation : violation option;  (** First violation found, if any. *)
}

(** {1 The engine} *)

type options = {
  por : bool;  (** Sleep-set partial-order reduction. *)
  cache_bound : int;
      (** Maximum number of distinct states remembered by the state
          cache; [0] disables caching entirely. *)
  max_steps : int;  (** Per-path step budget (checked along the way). *)
  max_paths : int;  (** Total path budget. *)
}

val default_options : options
(** [por = true], [cache_bound = 1_000_000], [max_steps = 10_000],
    [max_paths = 2_000_000]. *)

type stats = {
  states : int;  (** Interior states expanded (not terminals). *)
  cache_hits : int;  (** Lookups that found the fingerprint cached. *)
  pruned_by_sleep : int;  (** Enabled transitions skipped while asleep. *)
  pruned_by_cache : int;  (** Paths cut at a covered cached state. *)
  max_depth : int;  (** Deepest path, in steps. *)
  truncated_paths : int;  (** Paths cut by [max_steps]. *)
  elapsed_s : float;
      (** Processor time spent exploring ([Sys.time]; the search is
          single-threaded and compute-bound, so ≈ wall-clock). *)
}

type report = { outcome : result; stats : stats }

val check : ?options:options -> ?faults:Faults.plan -> builder -> report
(** Depth-first exploration with the selected reductions.  With
    [por = false] and [cache_bound = 0] this is exactly {!explore}
    (same DFS order, same path count, same verdict).  A non-park-only
    [faults] plan forces both reductions off (see the module preamble). *)

val report_json : ?label:string -> report -> string
(** One machine-readable JSON line summarising a report (paths, states,
    pruning counters, paths/sec). *)

(** {1 Classic interface} *)

val explore :
  ?max_steps:int -> ?max_paths:int -> ?faults:Faults.plan -> builder -> result
(** Plain depth-first exhaustive exploration — {!check} with both
    reductions off.  [max_steps] (default [10_000]) truncates each path
    (invariants are still checked along truncated paths); [max_paths]
    (default [2_000_000]) bounds the search. *)

val sample :
  ?max_steps:int -> ?faults:Faults.plan -> seeds:int list -> builder -> result
(** One seeded-random schedule per seed; [paths] counts runs,
    including the violating run if any.  A reported violation carries
    the actual schedule taken (replayable via {!replay} with the same
    [faults] plan); its message is prefixed with ["[seed N] "].

    {b Seed contract}: for a fixed builder and plan, the schedule taken
    for seed [s] is a pure function of [s] — each scheduling decision
    draws exactly one [Rng.int rng (Array.length enabled)] from
    [Rng.create s], in execution order (see rng.mli). *)

val replay :
  ?max_steps:int ->
  ?faults:Faults.plan ->
  builder ->
  int list ->
  (unit, violation) Result.t
(** Re-run a single schedule (as reported in {!violation.schedule});
    once the schedule is exhausted, the first enabled process is
    stepped until completion or [max_steps].  Pass the same [faults]
    plan that produced the schedule, or the replay diverges. *)

val shortest_violation :
  ?max_steps:int ->
  ?max_paths_per_depth:int ->
  ?faults:Faults.plan ->
  builder ->
  violation option
(** Iterative-deepening search for a minimal-length counterexample:
    explores all schedules of length [d] for growing [d] (up to
    [max_steps], default [200]) and returns the first violation found
    at the smallest depth.  Much shorter counterexamples than
    {!explore}'s depth-first order, at the price of re-exploration;
    meant for debugging small configurations. *)

val minimize :
  ?max_steps:int -> ?faults:Faults.plan -> builder -> int list -> violation option
(** Greedy delta-debugging of a violating schedule: repeatedly delete
    chunks (halving the chunk size) and lower surviving choices towards
    [0], keeping a candidate only if a full {!replay} (under the same
    [faults] plan) still violates.  Returns [None] if the input
    schedule does not violate to begin with.  The result replays
    deterministically and is usually far shorter than what {!sample}
    reports — the printable witness for a bug report. *)
