type trigger =
  | At_access of int
  | On_note of { tag : string; value : int option; occurrence : int }
  | On_acquire of int

type action = Park | Stall of int | Slow of int | Crash
type fault = { victim : int; trigger : trigger; action : action }
type plan = fault list

let por_safe =
  List.for_all (fun f -> match f.action with Park | Crash -> true | Stall _ | Slow _ -> false)

let victims plan =
  List.sort_uniq compare (List.map (fun f -> f.victim) plan)

(* ----- textual plans ----- *)

let trigger_to_string = function
  | At_access n -> Printf.sprintf "acc%d" n
  | On_note { tag; value; occurrence } ->
      let v = match value with None -> "" | Some v -> Printf.sprintf "=%d" v in
      let o = if occurrence = 1 then "" else Printf.sprintf "#%d" occurrence in
      Printf.sprintf "note(%s%s)%s" tag v o
  | On_acquire n -> if n = 1 then "acquire" else Printf.sprintf "acquire#%d" n

let fault_to_string f =
  let a =
    match f.action with
    | Park -> "park"
    | Crash -> "crash"
    | Stall n -> Printf.sprintf "stall%d" n
    | Slow n -> Printf.sprintf "slow%d" n
  in
  Printf.sprintf "%s@p%d:%s" a f.victim (trigger_to_string f.trigger)

let to_string = function
  | [] -> "none"
  | plan -> String.concat "," (List.map fault_to_string plan)

(* hand-rolled parsing: no regex dependency, precise error messages *)
let parse_fault s =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match String.index_opt s '@' with
  | None -> fail "%S: expected ACTION@pN:TRIGGER" s
  | Some at -> (
      let action_s = String.sub s 0 at in
      let rest = String.sub s (at + 1) (String.length s - at - 1) in
      let action =
        if action_s = "park" then Ok Park
        else if action_s = "crash" then Ok Crash
        else
          let num pfx k =
            let l = String.length pfx in
            if String.length action_s > l && String.sub action_s 0 l = pfx then
              match int_of_string_opt (String.sub action_s l (String.length action_s - l)) with
              | Some n when n > 0 -> Some (Ok (k n))
              | _ -> Some (fail "%S: bad %s duration" action_s pfx)
            else None
          in
          match num "stall" (fun n -> Stall n) with
          | Some r -> r
          | None -> (
              match num "slow" (fun n -> Slow n) with
              | Some r -> r
              | None -> fail "%S: unknown action (park | crash | stallN | slowN)" action_s)
      in
      match action with
      | Error _ as e -> e
      | Ok action -> (
          match String.index_opt rest ':' with
          | None -> fail "%S: expected pN:TRIGGER after @" rest
          | Some colon -> (
              let proc_s = String.sub rest 0 colon in
              let trig_s = String.sub rest (colon + 1) (String.length rest - colon - 1) in
              let victim =
                if String.length proc_s >= 2 && proc_s.[0] = 'p' then
                  int_of_string_opt (String.sub proc_s 1 (String.length proc_s - 1))
                else None
              in
              match victim with
              | None -> fail "%S: expected pN (process index)" proc_s
              | Some victim when victim < 0 -> fail "%S: negative process index" proc_s
              | Some victim -> (
                  (* split an optional "#OCC" suffix *)
                  let body, occurrence =
                    match String.rindex_opt trig_s '#' with
                    | Some h
                      when (* '#' inside "note(...)" parens never happens in our
                              grammar: it always follows the closing paren *)
                           h > 0 ->
                        let occ_s =
                          String.sub trig_s (h + 1) (String.length trig_s - h - 1)
                        in
                        (String.sub trig_s 0 h, int_of_string_opt occ_s)
                    | _ -> (trig_s, Some 1)
                  in
                  match occurrence with
                  | None -> fail "%S: bad occurrence" trig_s
                  | Some occurrence when occurrence < 1 ->
                      fail "%S: occurrence must be >= 1" trig_s
                  | Some occurrence ->
                      let trigger =
                        if body = "acquire" then Ok (On_acquire occurrence)
                        else if String.length body > 3 && String.sub body 0 3 = "acc"
                        then
                          match
                            int_of_string_opt (String.sub body 3 (String.length body - 3))
                          with
                          | Some n when n >= 0 -> Ok (At_access n)
                          | _ -> fail "%S: bad access count" body
                        else if
                          String.length body > 6
                          && String.sub body 0 5 = "note("
                          && body.[String.length body - 1] = ')'
                        then
                          let inner = String.sub body 5 (String.length body - 6) in
                          match String.index_opt inner '=' with
                          | None ->
                              if inner = "" then fail "note(): empty tag"
                              else Ok (On_note { tag = inner; value = None; occurrence })
                          | Some eq -> (
                              let tag = String.sub inner 0 eq in
                              let v_s =
                                String.sub inner (eq + 1) (String.length inner - eq - 1)
                              in
                              match int_of_string_opt v_s with
                              | Some v when tag <> "" ->
                                  Ok (On_note { tag; value = Some v; occurrence })
                              | _ -> fail "%S: bad note value" body)
                        else fail "%S: unknown trigger (accN | note(TAG[=V]) | acquire)" body
                      in
                      Result.map (fun trigger -> { victim; trigger; action }) trigger))))

let of_string s =
  let s = String.trim s in
  if s = "" || s = "none" then Ok []
  else
    let parts = String.split_on_char ',' s |> List.map String.trim in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest -> (
          match parse_fault p with
          | Ok f -> go (f :: acc) rest
          | Error _ as e -> e)
    in
    go [] parts

(* ----- the controller ----- *)

type slot = {
  fault : fault;
  mutable done_ : bool;  (* trigger consumed (fired) *)
  mutable seen : int;  (* matching emissions observed so far (note/acquire) *)
}

type t = {
  slots : slot list;
  mutable nfired : int;
  mutable frozen : int list;  (* currently paused victims (any action) *)
  mutable dead : int list;  (* crashed victims: frozen and never resumed *)
  mutable resumes : (int * int) list;  (* (due global step, victim), due ascending *)
  mutable slow : (int * int) list;  (* (victim, stall length) active slow lanes *)
}

let controller plan =
  {
    slots = List.map (fun fault -> { fault; done_ = false; seen = 0 }) plan;
    nfired = 0;
    frozen = [];
    dead = [];
    resumes = [];
    slow = [];
  }

let fired c = c.nfired
let parked c = List.sort compare c.frozen
let crashed c = List.sort compare c.dead
let pending_resumes c = c.resumes <> []

let freeze c (sim : Sched.t) i =
  if not (List.mem i c.frozen) then begin
    c.frozen <- i :: c.frozen;
    Sched.pause sim i
  end

let schedule_resume c due i =
  (* keep ascending by due step so [unstick] can take the head batch *)
  let rec ins = function
    | [] -> [ (due, i) ]
    | (d, _) :: _ as l when due < d -> (due, i) :: l
    | x :: rest -> x :: ins rest
  in
  c.resumes <- ins c.resumes

let apply_due c (sim : Sched.t) now =
  let due, later = List.partition (fun (d, _) -> d <= now) c.resumes in
  c.resumes <- later;
  List.iter
    (fun (_, i) ->
      c.frozen <- List.filter (fun j -> j <> i) c.frozen;
      Sched.resume sim i)
    due;
  due <> []

let fire c (sim : Sched.t) slot i =
  slot.done_ <- true;
  c.nfired <- c.nfired + 1;
  match slot.fault.action with
  | Park -> freeze c sim i
  | Crash ->
      (* operationally a permanent park — the asynchronous model cannot
         distinguish a crashed process from an arbitrarily slow one —
         but recorded separately so harnesses know the victim will
         never release what it holds *)
      freeze c sim i;
      if not (List.mem i c.dead) then c.dead <- i :: c.dead
  | Stall n ->
      freeze c sim i;
      schedule_resume c (Sched.total_steps sim + n) i
  | Slow n -> c.slow <- (i, n) :: c.slow

let on_access c (sim : Sched.t) i (_ : Sched.access) =
  (* [Sched.steps_of] is already incremented when monitors run *)
  let steps = Sched.steps_of sim i in
  List.iter
    (fun slot ->
      if (not slot.done_) && slot.fault.victim = i then
        match slot.fault.trigger with
        | At_access n when steps >= n -> fire c sim slot i
        | _ -> ())
    c.slots;
  (match List.assoc_opt i c.slow with
  | Some n when not (List.mem i c.frozen) ->
      freeze c sim i;
      schedule_resume c (Sched.total_steps sim + n) i
  | _ -> ())

let on_event c (sim : Sched.t) i (ev : Event.t) =
  List.iter
    (fun slot ->
      if (not slot.done_) && slot.fault.victim = i then
        match (slot.fault.trigger, ev) with
        | On_acquire occ, Event.Acquired _ ->
            slot.seen <- slot.seen + 1;
            if slot.seen >= occ then fire c sim slot i
        | On_note { tag; value; occurrence }, Event.Note (t, v)
          when t = tag && (value = None || value = Some v) ->
            slot.seen <- slot.seen + 1;
            if slot.seen >= occurrence then fire c sim slot i
        | _ -> ())
    c.slots

let on_step c (sim : Sched.t) (_ : int) =
  if c.resumes <> [] then ignore (apply_due c sim (Sched.total_steps sim))

let monitor c =
  Sched.monitor ~on_event:(on_event c) ~on_access:(on_access c)
    ~on_step:(on_step c) ()

let unstick c sim =
  let progressed = ref false in
  let rec go () =
    if Array.length (Sched.enabled sim) = 0 && c.resumes <> [] then begin
      (* fast-forward: nothing can step, so jump the clock to the next
         due batch (all resumes sharing the earliest due step) *)
      let due = match c.resumes with (d, _) :: _ -> d | [] -> assert false in
      if apply_due c sim due then progressed := true;
      go ()
    end
  in
  go ();
  !progressed

let run ?(max_steps = 1_000_000) c sim strat =
  let truncated = ref false in
  let stop = ref false in
  while not !stop do
    let en = Sched.enabled sim in
    let en = if Array.length en = 0 && unstick c sim then Sched.enabled sim else en in
    if Array.length en = 0 then stop := true
    else if Sched.total_steps sim >= max_steps then begin
      truncated := true;
      stop := true
    end
    else Sched.step sim (strat sim en)
  done;
  {
    Sched.completed = Array.init (Sched.n_procs sim) (Sched.finished sim);
    steps = Array.init (Sched.n_procs sim) (Sched.steps_of sim);
    total = Sched.total_steps sim;
    truncated = !truncated;
  }

(* ----- random plans ----- *)

let gen rng ~nprocs ?(tags = []) ?(max_access = 32) () =
  if nprocs <= 1 then []
  else begin
    let n_faults = Rng.int rng nprocs (* 0 .. nprocs-1: one proc always clean *) in
    let order = Array.init nprocs Fun.id in
    Rng.shuffle rng order;
    List.init n_faults (fun j ->
        let victim = order.(j) in
        let trigger =
          match Rng.int rng (if tags = [] then 2 else 3) with
          | 0 -> At_access (Rng.int rng (max_access + 1))
          | 1 -> On_acquire (1 + Rng.int rng 3)
          | _ ->
              let tag = List.nth tags (Rng.int rng (List.length tags)) in
              On_note { tag; value = None; occurrence = 1 + Rng.int rng 3 }
        in
        let action =
          match Rng.int rng 4 with
          | 0 -> Stall (1 + Rng.int rng 24)
          | 1 -> Slow (1 + Rng.int rng 6)
          | _ -> Park  (* weighted: half the faults are parks *)
        in
        { victim; trigger; action })
  end

let gen_crash rng ~nprocs ?(max_cycle = 3) () =
  if nprocs <= 1 then []
  else begin
    let n_faults = 1 + Rng.int rng (nprocs - 1) (* 1 .. nprocs-1: >= 1 survivor *) in
    let order = Array.init nprocs Fun.id in
    Rng.shuffle rng order;
    List.init n_faults (fun j ->
        {
          victim = order.(j);
          trigger = On_acquire (1 + Rng.int rng max_cycle);
          action = Crash;
        })
  end
