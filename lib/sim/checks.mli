(** Reusable invariant monitors.

    These raise {!Model_check.Violation} so they work both under the
    model checker and under plain simulation runs (where the exception
    simply propagates to the caller). *)

val combine : Sched.monitor list -> Sched.monitor
(** Runs every hook of every monitor, in list order. *)

(** {1 Name uniqueness}

    The renaming correctness condition: distinct processes never hold
    the same destination name concurrently.  Processes must emit
    [Event.Acquired n] after [GetName] returns [n] and
    [Event.Released n] after [ReleaseName].

    Crash recovery ([lib/recovery]) extends the discipline: a
    reclaimer emits [Note ("reclaimed", n)] when it expires a lease,
    which transfers ownership of [n] away from the (presumed-dead)
    holder — the name may then be re-acquired without a [Released].
    A lease-expired holder must consequently {e not} emit [Released]
    when its release is epoch-fenced (wrapper returned [false]). *)

type uniqueness

val uniqueness : ?name_space:int -> unit -> uniqueness
(** If [name_space] is given, also checks every acquired name lies in
    [\[0, name_space)]. *)

val uniqueness_monitor : uniqueness -> Sched.monitor
val names_used : uniqueness -> int
(** Number of distinct names ever acquired. *)

val max_name : uniqueness -> int
(** Largest name ever acquired; [-1] if none. *)

val max_concurrent : uniqueness -> int
(** Maximum number of names held simultaneously. *)

val held_now : uniqueness -> (int * int) list
(** Names currently held as [(name, proc)] pairs, sorted.  After a run
    completes, a non-empty result is a {e leak}: a name acquired by a
    process that never released it (e.g. a crashed holder) and never
    reclaimed. *)

(** {1 Gauges}

    Per-key simultaneous-occupancy counters with high-water marks, fed
    by [Event.Note] events.  Used for the splitter output-set bound
    (Theorem 5): a test emits [Note (enter_tag, d)] when a process
    joins output set [d] and [Note (leave_tag, d)] when it leaves, and
    asserts on the recorded maxima afterwards. *)

type gauge

val gauge : enter:string -> leave:string -> gauge
(** Gauge listening for the two given note tags. *)

val gauge_monitor : gauge -> Sched.monitor
val gauge_max : gauge -> int -> int
(** High-water mark of simultaneous occupancy for a key; 0 if unseen. *)

val gauge_current : gauge -> int -> int
val gauge_keys : gauge -> int list

(** {1 Splitter occupancy (Theorem 5)}

    Processes emit [Note ("begin", _)] when starting an Enter (Using
    becomes true), [Note ("in", d)] when Enter returns direction [d]
    (Inside the output set), [Note ("out", d)] when starting the
    matching Release, and [Note ("end", _)] when Release returns.

    The monitor checks the prefix-closed form of the Theorem 5 bound
    online: whenever an output set holds [c ≥ 2] processes
    simultaneously, the high-water mark of concurrent users so far
    must be at least [c + 1]. *)

type occupancy

val occupancy : unit -> occupancy
val occupancy_monitor : occupancy -> Sched.monitor
val occupancy_users_max : occupancy -> int
(** High-water mark of concurrent users. *)

val occupancy_set_max : occupancy -> int -> int
(** High-water mark of simultaneous occupancy of one output set. *)

(** {1 Post-hoc revalidation}

    Defense in depth for the on-line {!uniqueness} monitor: re-derive
    the holder intervals from a recorded {!Trace.t} and check pairwise
    non-overlap independently. *)

val revalidate_intervals : Trace.item list -> (int, string) result
(** [Ok n] with [n] the number of acquisitions checked, or [Error msg]
    describing the first overlap / mismatched release. *)
