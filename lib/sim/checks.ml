let violation fmt = Printf.ksprintf (fun s -> raise (Model_check.Violation s)) fmt

let combine monitors =
  Sched.monitor
    ~on_event:(fun t i ev -> List.iter (fun (m : Sched.monitor) -> m.on_event t i ev) monitors)
    ~on_access:(fun t i a -> List.iter (fun (m : Sched.monitor) -> m.on_access t i a) monitors)
    ~on_step:(fun t i -> List.iter (fun (m : Sched.monitor) -> m.on_step t i) monitors)
    ()

type uniqueness = {
  name_space : int option;
  holders : (int, int) Hashtbl.t; (* name -> proc index *)
  distinct : (int, unit) Hashtbl.t;
  mutable max_name : int;
  mutable max_concurrent : int;
}

let uniqueness ?name_space () =
  {
    name_space;
    holders = Hashtbl.create 32;
    distinct = Hashtbl.create 32;
    max_name = -1;
    max_concurrent = 0;
  }

let uniqueness_monitor u =
  Sched.monitor
    ~on_event:(fun _ i ev ->
      match ev with
      | Event.Acquired n -> (
          (match u.name_space with
          | Some d when n < 0 || n >= d -> violation "process #%d acquired name %d outside [0,%d)" i n d
          | Some _ | None -> ());
          match Hashtbl.find_opt u.holders n with
          | Some j -> violation "name %d held concurrently by processes #%d and #%d" n j i
          | None ->
              Hashtbl.add u.holders n i;
              Hashtbl.replace u.distinct n ();
              if n > u.max_name then u.max_name <- n;
              let held = Hashtbl.length u.holders in
              if held > u.max_concurrent then u.max_concurrent <- held)
      | Event.Released n -> (
          match Hashtbl.find_opt u.holders n with
          | Some j when j = i -> Hashtbl.remove u.holders n
          | Some j -> violation "process #%d released name %d held by #%d" i n j
          | None -> violation "process #%d released name %d it does not hold" i n)
      | Event.Note ("reclaimed", n) ->
          (* crash recovery: a reclaimer took name [n] back from a dead
             (or lease-expired) holder — ownership transfers, so the
             emitter need not be the holder, and an unheld name is fine
             (holder may have died before Acquired was emitted) *)
          Hashtbl.remove u.holders n
      | Event.Note _ -> ())
    ()

let names_used u = Hashtbl.length u.distinct
let max_name u = u.max_name
let max_concurrent u = u.max_concurrent

let held_now u = List.sort compare (Hashtbl.fold (fun n i acc -> (n, i) :: acc) u.holders [])

type gauge = {
  enter : string;
  leave : string;
  current : (int, int) Hashtbl.t;
  max : (int, int) Hashtbl.t;
}

let gauge ~enter ~leave = { enter; leave; current = Hashtbl.create 8; max = Hashtbl.create 8 }

let gauge_monitor g =
  Sched.monitor
    ~on_event:(fun _ _ ev ->
      match ev with
      | Event.Note (tag, key) when String.equal tag g.enter ->
          let c = (Option.value ~default:0 (Hashtbl.find_opt g.current key)) + 1 in
          Hashtbl.replace g.current key c;
          let m = Option.value ~default:0 (Hashtbl.find_opt g.max key) in
          if c > m then Hashtbl.replace g.max key c
      | Event.Note (tag, key) when String.equal tag g.leave ->
          let c = (Option.value ~default:0 (Hashtbl.find_opt g.current key)) - 1 in
          if c < 0 then violation "gauge %s/%s under-run on key %d" g.enter g.leave key;
          Hashtbl.replace g.current key c
      | Event.Note _ | Event.Acquired _ | Event.Released _ -> ())
    ()

let gauge_max g key = Option.value ~default:0 (Hashtbl.find_opt g.max key)
let gauge_current g key = Option.value ~default:0 (Hashtbl.find_opt g.current key)
let gauge_keys g = Hashtbl.fold (fun k _ acc -> k :: acc) g.max []

type occupancy = {
  mutable using : int;
  mutable using_max : int;
  in_set : (int, int) Hashtbl.t;
  occ_set_max : (int, int) Hashtbl.t;
}

let occupancy () =
  { using = 0; using_max = 0; in_set = Hashtbl.create 8; occ_set_max = Hashtbl.create 8 }

let occupancy_users_max o = o.using_max
let occupancy_set_max o d = Option.value ~default:0 (Hashtbl.find_opt o.occ_set_max d)

let occupancy_monitor o =
  let bump_set d delta =
    let c = Option.value ~default:0 (Hashtbl.find_opt o.in_set d) + delta in
    if c < 0 then violation "occupancy under-run on set %d" d;
    Hashtbl.replace o.in_set d c;
    if c > occupancy_set_max o d then Hashtbl.replace o.occ_set_max d c;
    if c >= 2 && c > o.using_max - 1 then
      violation "output set %d holds %d processes with only %d concurrent users" d c o.using_max
  in
  Sched.monitor
    ~on_event:(fun _ _ ev ->
      match ev with
      | Event.Note ("begin", _) ->
          o.using <- o.using + 1;
          if o.using > o.using_max then o.using_max <- o.using
      | Event.Note ("end", _) -> o.using <- o.using - 1
      | Event.Note ("in", d) -> bump_set d 1
      | Event.Note ("out", d) -> bump_set d (-1)
      | Event.Note _ | Event.Acquired _ | Event.Released _ -> ())
    ()

let revalidate_intervals items =
  let holders = Hashtbl.create 16 in
  let acquisitions = ref 0 in
  let rec go = function
    | [] -> Ok !acquisitions
    | Trace.Access _ :: rest -> go rest
    | Trace.Emitted { proc; event; _ } :: rest -> (
        match event with
        | Event.Acquired n -> (
            match Hashtbl.find_opt holders n with
            | Some other ->
                Error
                  (Printf.sprintf "trace revalidation: name %d acquired by #%d while #%d holds it"
                     n proc other)
            | None ->
                Hashtbl.add holders n proc;
                incr acquisitions;
                go rest)
        | Event.Released n -> (
            match Hashtbl.find_opt holders n with
            | Some p when p = proc ->
                Hashtbl.remove holders n;
                go rest
            | Some p ->
                Error
                  (Printf.sprintf "trace revalidation: #%d released name %d held by #%d" proc n p)
            | None ->
                Error (Printf.sprintf "trace revalidation: #%d released unheld name %d" proc n))
        | Event.Note ("reclaimed", n) ->
            (* same ownership-transfer semantics as the online monitor *)
            Hashtbl.remove holders n;
            go rest
        | Event.Note _ -> go rest)
  in
  go items
