(** The reproduction experiment suite.

    The paper is analytical — its "evaluation" is a set of theorems and
    the §4.4 parameter table — so each experiment measures the claim's
    observable content on the simulator (exact shared-access counts,
    adversarial/random schedules, bounded model checking) and reports
    paper-vs-measured.  See DESIGN.md §4 for the index and
    EXPERIMENTS.md for recorded results. *)

type report = {
  id : string;
  title : string;
  claim : string;  (** The paper statement being reproduced. *)
  tables : (string * Stats.table) list;
  notes : string list;
  ok : bool;  (** Every checked bound held. *)
}

val e1_splitter_occupancy : unit -> report
(** Theorem 5: each splitter output set holds at most [ℓ-1] of [ℓ]
    concurrent users — exhaustive for 2 processes, sampled beyond. *)

val e2_split_costs : unit -> report
(** Theorem 2: SPLIT renames to [3^(k-1)] names in [O(k)] accesses,
    independent of [S]. *)

val e3_mutex : unit -> report
(** Lemma 6 + Figure 3: mutual exclusion, FIFO handover, and
    tournament-tree exclusivity. *)

val e4_filter_costs : unit -> report
(** Theorem 10: FILTER renames to [2dz(k-1)] names within
    [6d(k-1)⌈log S⌉] checks; cost scales with [k] and [log S]. *)

val e5_regimes : unit -> report
(** The §4.4 table: for each of the five [S]-vs-[k] regimes, the
    paper's [(d, z)] and the resulting [D] against the paper's bound,
    plus measured costs. *)

val e6_ma_vs_pipeline : unit -> report
(** §1 + Theorem 11: the fast pipeline's cost is flat in [S] while the
    MA baseline grows linearly — who wins, and where they cross. *)

val e7_cover_free : unit -> report
(** §4.1 / Proposition 8: [‖N_p ∩ N_q‖ ≤ d] and the [d(k-1)] free-name
    guarantee, exhaustively for small fields. *)

val e8_z_ablation : unit -> report
(** §4.1 remark: [z ≥ 2d(k-1)] (paper) vs the tight [z > d(k-1)] —
    name-space size against acquisition rounds. *)

val e9_crash_tolerance : unit -> report
(** Wait-freedom: with all other processes frozen mid-operation, the
    survivor still acquires and releases names, in every protocol. *)

val e10_filter_rounds : unit -> report
(** Lemma 9: in every completed round a competing process advances in
    at least [d(k-1)] trees. *)

val e11_one_time : unit -> report
(** Context for §1: the one-shot Moir–Anderson grid renames to
    [k(k+1)/2] in [O(k)] — it is {e reuse} that read/write protocols
    pay for. *)

val e12_primitive_strength : unit -> report
(** Context for §1/§5: with Test&Set, [k] names (below the read/write
    [2k-1] lower bound) are easy; the paper's point is doing without. *)

val e13_name_distribution : unit -> report
(** Beyond the paper: which destination names each protocol actually
    hands out under churn (locality vs. spread). *)

val set_metrics : Obs.Registry.t option -> unit
(** Install (or clear) a metrics registry: while set, every harness
    measurement run by the experiments feeds it — per-register-group
    access counters, [op.*.accesses] histograms, gauges and spans — one
    shard per [measure_*] call.  The CLI's [experiment --metrics FILE]
    uses this, snapshotting after the selected experiments finish. *)

val all : (string * string * (unit -> report)) list
(** [(id, title, run)] for every experiment, in order. *)

val find : string -> (unit -> report) option
val pp_report : Format.formatter -> report -> unit
