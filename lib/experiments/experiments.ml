open Shared_mem
module Splitter = Renaming.Splitter
module Split = Renaming.Split
module Pf_mutex = Renaming.Pf_mutex
module Tournament = Renaming.Tournament
module Filter = Renaming.Filter
module Ma = Renaming.Ma
module Params = Renaming.Params
module Pipeline = Renaming.Pipeline

type report = {
  id : string;
  title : string;
  claim : string;
  tables : (string * Stats.table) list;
  notes : string list;
  ok : bool;
}

(* Metrics sink for the whole suite: the CLI's [--metrics] installs a
   registry here and every harness measurement below feeds it. *)
let metrics : Obs.Registry.t option ref = ref None
let set_metrics r = metrics := r

let spf = Printf.sprintf
let yn b = if b then "yes" else "NO"
let istr = string_of_int
let f1 v = spf "%.1f" v
let f2 v = spf "%.2f" v

(* ------------------------------------------------------------------ *)
(* E1: splitter occupancy (Theorem 5)                                  *)
(* ------------------------------------------------------------------ *)

let splitter_body sp ~work ~cycles (ops : Store.ops) =
  for _ = 1 to cycles do
    Sim.Sched.emit (Sim.Event.Note ("begin", 0));
    let tok = Splitter.enter sp ops in
    let d = Splitter.direction tok in
    Sim.Sched.emit (Sim.Event.Note ("in", d));
    ignore (ops.read work);
    Sim.Sched.emit (Sim.Event.Note ("out", d));
    Splitter.release sp ops tok;
    Sim.Sched.emit (Sim.Event.Note ("end", 0))
  done

let e1_splitter_occupancy () =
  let occs = ref [] in
  let builder ~procs ~cycles () : Sim.Model_check.config =
    let layout = Layout.create () in
    let sp = Splitter.create layout in
    let work = Layout.alloc layout ~name:"work" 0 in
    let o = Sim.Checks.occupancy () in
    occs := o :: !occs;
    {
      layout;
      procs = Array.init procs (fun p -> ((p * 7919) + 1, splitter_body sp ~work ~cycles));
      monitor = Sim.Checks.occupancy_monitor o;
    }
  in
  let tbl =
    Stats.table [ "configuration"; "schedules"; "max users"; "worst set occupancy"; "ok" ]
  in
  let all_ok = ref true in
  let record label (result : Sim.Model_check.result) =
    let users = List.fold_left (fun a o -> max a (Sim.Checks.occupancy_users_max o)) 0 !occs in
    let worst =
      List.fold_left
        (fun a o -> List.fold_left (fun a d -> max a (Sim.Checks.occupancy_set_max o d)) a [ -1; 0; 1 ])
        0 !occs
    in
    let ok = result.violation = None in
    if not ok then all_ok := false;
    Stats.add_row tbl [ label; istr result.paths; istr users; istr worst; yn ok ];
    occs := []
  in
  record "2 procs x 1 cycle, exhaustive"
    (Sim.Model_check.explore ~max_paths:5_000_000 (builder ~procs:2 ~cycles:1));
  record "2 procs x 2 cycles, DFS corner (200k paths)"
    (Sim.Model_check.explore ~max_paths:200_000 (builder ~procs:2 ~cycles:2));
  record "3 procs x 3 cycles, 2000 random schedules"
    (Sim.Model_check.sample ~seeds:(Harness.seeds 2000) (builder ~procs:3 ~cycles:3));
  record "4 procs x 3 cycles, 1200 random schedules"
    (Sim.Model_check.sample ~seeds:(Harness.seeds 1200) (builder ~procs:4 ~cycles:3));
  record "5 procs x 4 cycles, 800 random schedules"
    (Sim.Model_check.sample ~seeds:(Harness.seeds 800) (builder ~procs:5 ~cycles:4));
  {
    id = "e1";
    title = "Splitter output-set occupancy";
    claim =
      "Theorem 5: if at most l processes use a splitter concurrently, every output set \
       holds at most l-1 of them at any time.";
    tables = [ ("occupancy under exhaustive and random schedules", tbl) ];
    notes =
      [
        "The monitor checks the prefix-closed form online: an output set holding c >= 2 \
         processes requires the users high-water mark to be at least c+1.";
      ];
    ok = !all_ok;
  }

(* ------------------------------------------------------------------ *)
(* E2: SPLIT costs (Theorem 2)                                         *)
(* ------------------------------------------------------------------ *)

let e2_split_costs () =
  let tbl =
    Stats.table
      [ "k"; "D=3^(k-1)"; "get max"; "7(k-1)"; "get mean"; "rel max"; "2(k-1)"; "ok" ]
  in
  let all_ok = ref true in
  let points = ref [] in
  List.iter
    (fun k ->
      let layout = Layout.create () in
      let sp = Split.create layout ~k in
      let work = Layout.alloc layout ~name:"work" 0 in
      let pids = Array.init k (fun i -> (i * 999_999_937) + 13) in
      let costs =
        Harness.measure_protocol ?registry:!metrics (module Split) sp ~layout ~work ~pids ~cycles:4
          ~seeds:(Harness.seeds 8) ~name_space:(Split.name_space sp)
      in
      let gmax = Harness.imax costs.get and rmax = Harness.imax costs.release in
      let ok = gmax <= 7 * (k - 1) && rmax <= 2 * (k - 1) in
      if not ok then all_ok := false;
      points := (float_of_int k, float_of_int gmax) :: !points;
      Stats.add_row tbl
        [
          istr k;
          istr (Split.name_space sp);
          istr gmax;
          istr (7 * (k - 1));
          f1 (Harness.imean costs.get);
          istr rmax;
          istr (2 * (k - 1));
          yn ok;
        ])
    [ 2; 3; 4; 5; 6; 7; 8 ];
  let slope, _ = Stats.linear_fit !points in
  (* S-independence: same seeds, pids of wildly different magnitude ->
     executions depend only on pid (in)equality, so costs match exactly. *)
  let run_with pids =
    let layout = Layout.create () in
    let sp = Split.create layout ~k:5 in
    let work = Layout.alloc layout ~name:"work" 0 in
    let c =
      Harness.measure_protocol ?registry:!metrics (module Split) sp ~layout ~work ~pids ~cycles:3
        ~seeds:(Harness.seeds 5) ~name_space:(Split.name_space sp)
    in
    List.sort compare c.get
  in
  let small = run_with (Array.init 5 (fun i -> i)) in
  let huge = run_with (Array.init 5 (fun i -> (i * 987_654_321_987) + 5)) in
  let s_independent = small = huge in
  if not s_independent then all_ok := false;
  {
    id = "e2";
    title = "SPLIT renaming cost";
    claim =
      "Theorem 2: SPLIT implements wait-free long-lived renaming to 3^(k-1) names in O(k) \
       accesses, independent of S and n.";
    tables = [ ("cost vs k (4 cycles x 8 random schedules per k)", tbl) ];
    notes =
      [
        spf "fitted slope of worst GetName cost: %.2f accesses per unit k (linear, as claimed)"
          slope;
        spf "S-independence: cost distributions for pids <5 and pids ~10^12 identical: %s"
          (yn s_independent);
      ];
    ok = !all_ok;
  }

(* ------------------------------------------------------------------ *)
(* E3: two-process mutex and tournament trees (Lemma 6)                *)
(* ------------------------------------------------------------------ *)

let mutex_contender b ~work ~dir ~retries (ops : Store.ops) =
  let slot = Pf_mutex.enter b ops ~dir in
  let rec go n =
    if Pf_mutex.check b ops ~dir slot then begin
      Sim.Sched.emit (Sim.Event.Note ("cs", dir));
      ignore (ops.read work);
      Sim.Sched.emit (Sim.Event.Note ("cs_exit", dir))
    end
    else if n > 0 then go (n - 1)
  in
  go retries;
  Pf_mutex.release b ops ~dir slot

let exclusion_monitor () =
  let in_cs = ref 0 in
  Sim.Sched.monitor
    ~on_event:(fun _ _ ev ->
      match ev with
      | Sim.Event.Note ("cs", _) ->
          incr in_cs;
          if !in_cs > 1 then raise (Sim.Model_check.Violation "two processes in the CS")
      | Sim.Event.Note ("cs_exit", _) -> decr in_cs
      | _ -> ())
    ()

let e3_mutex () =
  let tbl = Stats.table [ "scenario"; "schedules"; "result" ] in
  let all_ok = ref true in
  let mc label result =
    (match (result : Sim.Model_check.result).violation with
    | None -> Stats.add_row tbl [ label; istr result.paths; "exclusion holds" ]
    | Some v ->
        all_ok := false;
        Stats.add_row tbl [ label; istr result.paths; spf "VIOLATION: %s" v.message ])
  in
  let builder ~retries ~cycles () : Sim.Model_check.config =
    let layout = Layout.create () in
    let b = Pf_mutex.create layout in
    let work = Layout.alloc layout ~name:"work" 0 in
    let body dir ops =
      for _ = 1 to cycles do
        mutex_contender b ~work ~dir ~retries ops
      done
    in
    { layout; procs = [| (0, body 0); (1, body 1) |]; monitor = exclusion_monitor () }
  in
  mc "exhaustive, 1 cycle, <=3 retries" (Sim.Model_check.explore (builder ~retries:3 ~cycles:1));
  mc "DFS corner, 2 cycles (500k paths)"
    (Sim.Model_check.explore ~max_paths:500_000 (builder ~retries:2 ~cycles:2));
  let spinning () : Sim.Model_check.config =
    let layout = Layout.create () in
    let b = Pf_mutex.create layout in
    let work = Layout.alloc layout ~name:"work" 0 in
    let body dir (ops : Store.ops) =
      for _ = 1 to 25 do
        let slot = Pf_mutex.enter b ops ~dir in
        while not (Pf_mutex.check b ops ~dir slot) do
          ()
        done;
        Sim.Sched.emit (Sim.Event.Note ("cs", dir));
        ignore (ops.read work);
        Sim.Sched.emit (Sim.Event.Note ("cs_exit", dir));
        Pf_mutex.release b ops ~dir slot
      done
    in
    { layout; procs = [| (0, body 0); (1, body 1) |]; monitor = exclusion_monitor () }
  in
  mc "spinning, 25 cycles, 3000 random schedules"
    (Sim.Model_check.sample ~seeds:(Harness.seeds 3000) spinning);
  let tournament () : Sim.Model_check.config =
    let layout = Layout.create () in
    let t = Tournament.create layout ~inputs:8 in
    let work = Layout.alloc layout ~name:"work" 0 in
    let body input (ops : Store.ops) =
      for _ = 1 to 6 do
        let pos = Tournament.position t ~input in
        while not (Tournament.try_advance t ops pos) do
          ()
        done;
        Sim.Sched.emit (Sim.Event.Note ("cs", input));
        ignore (ops.read work);
        Sim.Sched.emit (Sim.Event.Note ("cs_exit", input));
        Tournament.release t ops pos
      done
    in
    {
      layout;
      procs = Array.of_list (List.map (fun i -> (i, body i)) [ 0; 3; 5; 6 ]);
      monitor = exclusion_monitor ();
    }
  in
  mc "8-input tournament, 4 procs, 1000 random schedules"
    (Sim.Model_check.sample ~seeds:(Harness.seeds 1000) tournament);
  (* FIFO handover, deterministic call-level schedule *)
  let fifo_tbl = Stats.table [ "step"; "expected"; "observed"; "ok" ] in
  let layout = Layout.create () in
  let b = Pf_mutex.create layout in
  let mem = Store.seq_create layout in
  let p = Store.seq_ops mem ~pid:0 and q = Store.seq_ops mem ~pid:1 in
  let expect label exp obs =
    if exp <> obs then all_ok := false;
    Stats.add_row fifo_tbl [ label; string_of_bool exp; string_of_bool obs; yn (exp = obs) ]
  in
  let sp = Pf_mutex.enter b p ~dir:0 in
  let sq = Pf_mutex.enter b q ~dir:1 in
  expect "first entrant in CS" true (Pf_mutex.check b p ~dir:0 sp);
  expect "second entrant defers" false (Pf_mutex.check b q ~dir:1 sq);
  Pf_mutex.release b p ~dir:0 sp;
  let sp' = Pf_mutex.enter b p ~dir:0 in
  expect "waiter proceeds after release" true (Pf_mutex.check b q ~dir:1 sq);
  expect "re-entrant yields (FIFO)" false (Pf_mutex.check b p ~dir:0 sp');
  {
    id = "e3";
    title = "Two-process mutex blocks and tournament trees";
    claim =
      "Lemma 6 / Figure 3: each ME block excludes its two directions; the FIFO handover \
       property drives Lemma 7's progress argument; tournament roots are owned by at most \
       one process.";
    tables =
      [ ("model checking", tbl); ("FIFO handover (deterministic schedule)", fifo_tbl) ];
    notes =
      [
        "Enter costs exactly 4 shared accesses, matching the count stated in Theorem 10's \
         proof; Check costs 1.";
      ];
    ok = !all_ok;
  }

(* ------------------------------------------------------------------ *)
(* E4: FILTER costs (Theorem 10)                                       *)
(* ------------------------------------------------------------------ *)

let filter_instance ~k ~d ~z ~s ~procs =
  let layout = Layout.create () in
  let participants = Array.init procs (fun i -> ((i * (s / procs)) + (s / (procs + 3))) mod s) in
  let f = Filter.create layout { k; d; z; s; participants } in
  let work = Layout.alloc layout ~name:"work" 0 in
  (layout, f, work, participants)

let e4_filter_costs () =
  let all_ok = ref true in
  let k_tbl =
    Stats.table
      [
        "k"; "S=2k^4"; "d"; "z"; "D"; "72k^2"; "checks max"; "6d(k-1)logS"; "get max";
        "blocks"; "k*2d(k-1)*logS"; "ok";
      ]
  in
  List.iter
    (fun k ->
      let s = 2 * k * k * k * k in
      let (p : Params.filter_params) =
        match List.nth_opt Params.regimes 4 with
        | Some r -> r.params ~k
        | None -> assert false
      in
      let layout, f, work, participants = filter_instance ~k ~d:p.d ~z:p.z ~s ~procs:k in
      let m =
        Harness.measure_filter ?registry:!metrics f ~layout ~work ~pids:participants ~cycles:3
          ~seeds:(Harness.seeds 6)
      in
      let levels = Numeric.Intmath.ceil_log2 s in
      let bound = 6 * p.d * (k - 1) * levels in
      let cmax = Harness.imax m.checks in
      (* space: only blocks on participants' paths are allocated *)
      let space_bound = k * 2 * p.d * (k - 1) * levels in
      let ok =
        cmax <= bound && Filter.name_space f <= 72 * k * k
        && Filter.blocks_allocated f <= space_bound
      in
      if not ok then all_ok := false;
      Stats.add_row k_tbl
        [
          istr k;
          istr s;
          istr p.d;
          istr p.z;
          istr (Filter.name_space f);
          istr (72 * k * k);
          istr cmax;
          istr bound;
          istr (Harness.imax m.fc.get);
          istr (Filter.blocks_allocated f);
          istr space_bound;
          yn ok;
        ])
    [ 2; 3; 4; 5; 6 ];
  let s_tbl =
    Stats.table [ "S"; "levels"; "z"; "D"; "get max"; "checks max"; "bound"; "ok" ]
  in
  let pts = ref [] in
  List.iter
    (fun s ->
      let k = 3 and d = 1 in
      let z =
        Numeric.Primes.next_prime
          (max (2 * d * (k - 1)) (Numeric.Intmath.ceil_root s (d + 1)))
      in
      let layout, f, work, participants = filter_instance ~k ~d ~z ~s ~procs:3 in
      let m =
        Harness.measure_filter ?registry:!metrics f ~layout ~work ~pids:participants ~cycles:3
          ~seeds:(Harness.seeds 6)
      in
      let levels = Numeric.Intmath.ceil_log2 s in
      let bound = 6 * d * (k - 1) * levels in
      let cmax = Harness.imax m.checks in
      let gmax = Harness.imax m.fc.get in
      if cmax > bound then all_ok := false;
      pts := (float_of_int levels, float_of_int gmax) :: !pts;
      Stats.add_row s_tbl
        [
          istr s; istr levels; istr z;
          istr (Filter.name_space f);
          istr gmax; istr cmax; istr bound;
          yn (cmax <= bound);
        ])
    [ 16; 256; 4096; 65536 ];
  let slope, _ = Stats.linear_fit !pts in
  {
    id = "e4";
    title = "FILTER renaming cost";
    claim =
      "Theorem 10: FILTER renames to 2dz(k-1) names; a process acquires a name within \
       6d(k-1)ceil(log S) mutex checks, so time is O(dk log S).";
    tables =
      [
        ("k sweep at the S<=2k^4 regime (3 cycles x 6 schedules)", k_tbl);
        ("S sweep at k=3, d=1 (cost grows with log S only)", s_tbl);
      ];
    notes =
      [
        spf
          "S sweep: worst GetName cost grows %.1f accesses per tree level (i.e. per doubling \
           of S) - logarithmic in S, as claimed"
          slope;
      ];
    ok = !all_ok;
  }

(* ------------------------------------------------------------------ *)
(* E5: the 4.4 regime table                                            *)
(* ------------------------------------------------------------------ *)

let e5_regimes () =
  let tbl =
    Stats.table
      [ "regime"; "k"; "S"; "d"; "z"; "D"; "paper bound"; "time"; "get max"; "ok" ]
  in
  let all_ok = ref true in
  List.iter
    (fun (r : Params.regime) ->
      List.iter
        (fun k ->
          let s = r.source ~k in
          let (p : Params.filter_params) = r.params ~k in
          let procs = min k s in
          let layout, f, work, participants = filter_instance ~k ~d:p.d ~z:p.z ~s ~procs in
          let m =
            Harness.measure_filter ?registry:!metrics f ~layout ~work ~pids:participants ~cycles:2
              ~seeds:(Harness.seeds 3)
          in
          let d_ok = Filter.name_space f <= r.space_bound ~k in
          let valid = Params.satisfies ~k ~s p in
          if not (d_ok && valid) then all_ok := false;
          Stats.add_row tbl
            [
              r.label;
              istr k;
              istr s;
              istr p.d;
              istr p.z;
              istr (Filter.name_space f);
              istr (r.space_bound ~k);
              r.time_label;
              istr (Harness.imax m.fc.get);
              yn (d_ok && valid);
            ])
        [ 2; 4; 6; 8 ])
    Params.regimes;
  {
    id = "e5";
    title = "The 4.4 parameter regimes";
    claim =
      "Section 4.4: for each relationship between S and k, the stated (d, z) satisfy \
       requirements (1) and (2) and give a destination name space within the stated bound.";
    tables = [ ("regimes x k, with measured worst GetName cost", tbl) ];
    notes =
      [
        "D is the exact 2dz(k-1) of the constructed instance; the paper bound column is the \
         closed form the paper quotes for the regime.";
      ];
    ok = !all_ok;
  }

(* ------------------------------------------------------------------ *)
(* E6: MA baseline vs the Theorem 11 pipeline                          *)
(* ------------------------------------------------------------------ *)

let e6_ma_vs_pipeline () =
  let tbl =
    Stats.table
      [ "k"; "S"; "MA get max"; "pipeline get max"; "pipeline stages"; "winner" ]
  in
  let all_ok = ref true in
  let flat_costs = Hashtbl.create 8 in
  List.iter
    (fun k ->
      List.iter
        (fun s ->
          let pids = Array.init k (fun i -> (i * (s / k)) + (s / 11)) in
          let ma_max =
            let layout = Layout.create () in
            let m = Ma.create layout ~k ~s in
            let work = Layout.alloc layout ~name:"work" 0 in
            let c =
              Harness.measure_protocol ?registry:!metrics (module Ma) m ~layout ~work ~pids ~cycles:2
                ~seeds:(Harness.seeds 2) ~name_space:(Ma.name_space m)
            in
            Harness.imax c.get
          in
          let pipe_max, stages =
            let layout = Layout.create () in
            let p = Pipeline.create layout ~k ~s ~participants:pids in
            let work = Layout.alloc layout ~name:"work" 0 in
            let c =
              Harness.measure_protocol ?registry:!metrics (module Pipeline) p ~layout ~work ~pids
                ~cycles:2 ~seeds:(Harness.seeds 2) ~name_space:(Pipeline.name_space p)
            in
            ( Harness.imax c.get,
              String.concat "+"
                (List.map (fun (st : Pipeline.stage_info) -> st.kind) (Pipeline.stages p)) )
          in
          Hashtbl.replace flat_costs (k, s) (ma_max, pipe_max);
          Stats.add_row tbl
            [
              istr k;
              istr s;
              istr ma_max;
              istr pipe_max;
              stages;
              (if ma_max < pipe_max then "MA"
               else if pipe_max < ma_max then "pipeline"
               else "tie");
            ])
        [ 64; 512; 4096; 16384 ])
    [ 4; 6 ];
  (* The shape claim, per k: above the tiny-S regime (where the
     pipeline degenerates to a bare MA stage and ties by construction)
     the pipeline's cost must be flat — equal worst cost at S=4096 and
     S=16384 up to 1.5x — and it must beat MA at the largest S. *)
  List.iter
    (fun k ->
      let _, p_mid = Hashtbl.find flat_costs (k, 4096) in
      let ma_big, p_big = Hashtbl.find flat_costs (k, 16384) in
      if float_of_int p_big > 1.5 *. float_of_int (max 1 p_mid) then all_ok := false;
      if ma_big <= p_big then all_ok := false)
    [ 4; 6 ];
  {
    id = "e6";
    title = "Fast pipeline vs the non-fast MA baseline";
    claim =
      "Introduction + Theorem 11: MA costs O(kS) and is not fast; the SPLIT/FILTER/MA \
       pipeline renames any S to k(k+1)/2 names in O(k^3), independent of S.";
    tables = [ ("worst GetName accesses (2 cycles x 2 schedules)", tbl) ];
    notes =
      [
        "ok-criterion: pipeline worst cost flat between S=4096 and S=16384 (within 1.5x) \
         and below MA at S=16384; at tiny S the pipeline correctly degenerates to a bare \
         MA stage (tie).";
      ];
    ok = !all_ok;
  }

(* ------------------------------------------------------------------ *)
(* E7: cover-free families (Proposition 8)                             *)
(* ------------------------------------------------------------------ *)

let e7_cover_free () =
  let tbl =
    Stats.table
      [ "k"; "d"; "z"; "pairs"; "max |Np^Nq|"; "d"; "min free"; "d(k-1)"; "ok" ]
  in
  let all_ok = ref true in
  let rng = Sim.Rng.make 0xC0FFEE in
  List.iter
    (fun (k, d, exhaustive) ->
      let z = Numeric.Primes.next_prime (2 * d * (k - 1)) in
      let t = Numeric.Cover_free.create ~k ~d ~z () in
      let universe = Numeric.Intmath.pow z (d + 1) in
      let pairs =
        if exhaustive then
          List.concat_map
            (fun p -> List.filter_map (fun q -> if p < q then Some (p, q) else None)
                (List.init universe Fun.id))
            (List.init universe Fun.id)
        else
          List.init 3000 (fun _ ->
              (Sim.Rng.int rng universe, Sim.Rng.int rng universe))
          |> List.filter (fun (p, q) -> p <> q)
      in
      let max_inter =
        List.fold_left (fun a (p, q) -> max a (Numeric.Cover_free.intersection t p q)) 0 pairs
      in
      let min_free = ref max_int in
      for _ = 1 to 400 do
        let p = Sim.Rng.int rng universe in
        let others = List.init (k - 1) (fun _ -> Sim.Rng.int rng universe) in
        let others = List.filter (fun q -> q <> p) others in
        let free = List.length (Numeric.Cover_free.free_names t p others) in
        if free < !min_free then min_free := free
      done;
      let ok = max_inter <= d && !min_free >= d * (k - 1) in
      if not ok then all_ok := false;
      Stats.add_row tbl
        [
          istr k; istr d; istr z;
          (if exhaustive then spf "%d (all)" (List.length pairs) else spf "%d (random)" (List.length pairs));
          istr max_inter; istr d;
          istr !min_free; istr (d * (k - 1));
          yn ok;
        ])
    [ (3, 1, true); (2, 2, true); (4, 2, false); (6, 3, false) ];
  {
    id = "e7";
    title = "Cover-free name families";
    claim =
      "Section 4.1 / Proposition 8: distinct processes share at most d names, so against \
       any k-1 adversaries at least d(k-1) of a process's 2d(k-1) names are free.";
    tables = [ ("intersection and free-name bounds", tbl) ];
    notes = [ "free-name trials: 400 random (p, adversary-set) draws per configuration" ];
    ok = !all_ok;
  }

(* ------------------------------------------------------------------ *)
(* E8: z >= 2d(k-1) vs the tight z > d(k-1) (4.1 remark)               *)
(* ------------------------------------------------------------------ *)

let e8_z_ablation () =
  let tbl =
    Stats.table
      [
        "variant"; "z"; "trees/proc"; "D"; "min free trees";
        "rounds max"; "rounds mean"; "checks max"; "get max";
      ]
  in
  let k = 4 and d = 2 and s = 125 in
  (* Worst guaranteed-free-tree count: for random processes p, pick the
     k-1 adversaries greedily (among random candidates) to cover as
     much of N_p as possible, and take the minimum leftover. *)
  let min_free_trees fam =
    let rng = Sim.Rng.make 0xAB1A7E in
    let worst = ref max_int in
    for _ = 1 to 300 do
      let p = Sim.Rng.int rng s in
      let chosen = ref [] in
      for _ = 1 to k - 1 do
        let best = ref (-1) and best_free = ref max_int in
        for _ = 1 to 60 do
          let q = Sim.Rng.int rng s in
          if q <> p && not (List.mem q !chosen) then begin
            let free =
              List.length (Numeric.Cover_free.free_names fam p (q :: !chosen))
            in
            if free < !best_free then begin
              best_free := free;
              best := q
            end
          end
        done;
        if !best >= 0 then chosen := !best :: !chosen
      done;
      let free = List.length (Numeric.Cover_free.free_names fam p !chosen) in
      if free < !worst then worst := free
    done;
    !worst
  in
  let measure ~tight ~z =
    let layout = Layout.create () in
    let participants = [| 7; 48; 77; 111 |] in
    let f = Filter.create ~tight layout { k; d; z; s; participants } in
    let work = Layout.alloc layout ~name:"work" 0 in
    let m =
      Harness.measure_filter ?registry:!metrics f ~layout ~work ~pids:participants ~cycles:4
        ~seeds:(Harness.seeds 12)
    in
    let fam = Filter.family f in
    let free = min_free_trees fam in
    Stats.add_row tbl
      [
        (if tight then spf "tight   z > d(k-1)" else spf "paper   z >= 2d(k-1)");
        istr z;
        istr (Numeric.Cover_free.set_size fam);
        istr (Filter.name_space f);
        istr free;
        istr (Harness.imax m.rounds);
        f2 (Harness.imean m.rounds);
        istr (Harness.imax m.checks);
        istr (Harness.imax m.fc.get);
      ];
    (Filter.name_space f, free)
  in
  let d_paper, free_paper = measure ~tight:false ~z:13 in
  let d_tight, free_tight = measure ~tight:true ~z:7 in
  {
    id = "e8";
    title = "Ablation: modulus bound z >= 2d(k-1) vs z > d(k-1)";
    claim =
      "Section 4.1 remark: requiring only z > d(k-1) still guarantees one free name \
       (smaller D), while z >= 2d(k-1) guarantees d(k-1) free names (better time bound).";
    tables = [ ("k=4, d=2, S=125, 4 procs, 4 cycles x 12 schedules", tbl) ];
    notes =
      [
        spf "name space: tight %d vs paper %d (smaller, as predicted)" d_tight d_paper;
        spf
          "worst-case free trees under greedy adversaries: tight %d (>= 1 guaranteed) vs \
           paper %d (>= d(k-1) = %d guaranteed) - the time/space trade-off"
          free_tight free_paper
          (2 * (k - 1));
        "rounds under random schedules rarely exceed 1: a process with any \
         contention-free tree climbs it to the root within its first round";
      ];
    ok =
      d_tight < d_paper && free_tight >= 1 && free_paper >= 2 * (k - 1)
      && free_tight <= free_paper;
  }

(* ------------------------------------------------------------------ *)
(* E9: crash tolerance (wait-freedom)                                  *)
(* ------------------------------------------------------------------ *)

let e9_crash_tolerance () =
  let tbl =
    Stats.table
      [ "protocol"; "procs"; "crashed"; "survivor cycles"; "survivor get max"; "ok" ]
  in
  let all_ok = ref true in
  let crash_run (type a) (module P : Renaming.Protocol.S with type t = a) label (inst : a)
      ~layout ~work ~pids ~name_space =
    let cycles = 3 in
    let done_cycles = Array.make (Array.length pids) 0 in
    let gets = ref [] in
    let body i (ops : Store.ops) =
      let c = Store.counter () in
      let counted = Store.counting c ops in
      for _ = 1 to cycles do
        Store.reset c;
        let lease = P.get_name inst counted in
        if i = 0 then gets := Store.accesses c :: !gets;
        Sim.Sched.emit (Sim.Event.Acquired (P.name_of inst lease));
        ignore (ops.read work);
        Sim.Sched.emit (Sim.Event.Released (P.name_of inst lease));
        P.release_name inst counted lease;
        done_cycles.(i) <- done_cycles.(i) + 1
      done
    in
    let u = Sim.Checks.uniqueness ~name_space () in
    let t =
      Sim.Sched.create
        ~monitor:(Sim.Checks.uniqueness_monitor u)
        layout
        (Array.mapi (fun i pid -> (pid, body i)) pids)
    in
    let rng = Sim.Rng.make 0xDEAD in
    let strategy st en =
      if not (Sim.Sched.finished st 0) then
        Array.iter
          (fun i -> if i > 0 && Sim.Sched.steps_of st i >= (4 * i) + 1 then Sim.Sched.pause st i)
          en;
      let en = match Sim.Sched.enabled st with [||] -> en | e -> e in
      en.(Sim.Rng.int rng (Array.length en))
    in
    let outcome = Sim.Sched.run ~max_steps:5_000_000 t strategy in
    let crashed =
      Array.length (Array.of_list (List.filter (fun i -> not outcome.completed.(i))
           (List.init (Array.length pids) Fun.id)))
    in
    let ok = outcome.completed.(0) && done_cycles.(0) = cycles && not outcome.truncated in
    if not ok then all_ok := false;
    Stats.add_row tbl
      [
        label;
        istr (Array.length pids);
        istr crashed;
        spf "%d/%d" done_cycles.(0) cycles;
        istr (Harness.imax !gets);
        yn ok;
      ]
  in
  (let layout = Layout.create () in
   let sp = Split.create layout ~k:4 in
   let work = Layout.alloc layout ~name:"work" 0 in
   crash_run (module Split) "split (k=4)" sp ~layout ~work
     ~pids:(Array.init 4 (fun i -> i * 1001))
     ~name_space:(Split.name_space sp));
  (let layout = Layout.create () in
   let participants = [| 3; 11; 19 |] in
   let f = Filter.create layout { k = 3; d = 1; z = 5; s = 25; participants } in
   let work = Layout.alloc layout ~name:"work" 0 in
   crash_run (module Filter) "filter (k=3, S=25)" f ~layout ~work ~pids:participants
     ~name_space:(Filter.name_space f));
  (let layout = Layout.create () in
   let m = Ma.create layout ~k:3 ~s:12 in
   let work = Layout.alloc layout ~name:"work" 0 in
   crash_run (module Ma) "ma (k=3, S=12)" m ~layout ~work ~pids:[| 0; 5; 10 |]
     ~name_space:(Ma.name_space m));
  (let layout = Layout.create () in
   let pids = [| 123; 45_678; 99_999 |] in
   let p = Pipeline.create layout ~k:3 ~s:100_000 ~participants:pids in
   let work = Layout.alloc layout ~name:"work" 0 in
   crash_run (module Pipeline) "pipeline (k=3, S=1e5)" p ~layout ~work ~pids
     ~name_space:(Pipeline.name_space p));
  {
    id = "e9";
    title = "Crash tolerance (wait-freedom)";
    claim =
      "All protocols are wait-free: processes frozen mid-operation (holding splitter slots \
       and mutex positions forever) cannot prevent the survivor from acquiring names.";
    tables = [ ("all-but-one processes frozen mid-operation", tbl) ];
    notes = [];
    ok = !all_ok;
  }

(* ------------------------------------------------------------------ *)
(* E10: per-round progress in FILTER (Lemma 9)                         *)
(* ------------------------------------------------------------------ *)

let e10_filter_rounds () =
  let k = 3 and d = 1 and z = 5 and s = 25 in
  (* Part 1: measure under heavy adversarial contention - a starved
     victim against opponents engineered to intersect it. *)
  let family = Numeric.Cover_free.create ~k ~d ~z () in
  let victim = 7 in
  let set_size = Numeric.Cover_free.set_size family in
  let covered q =
    let free = Numeric.Cover_free.free_names family victim [ q ] in
    List.filter (fun x -> not (List.mem x free)) (List.init set_size Fun.id)
  in
  let by_tree = Array.make set_size [] in
  List.iter
    (fun q -> if q <> victim then List.iter (fun x -> by_tree.(x) <- q :: by_tree.(x)) (covered q))
    (List.init s Fun.id);
  let picks =
    List.concat_map (fun x -> List.filteri (fun i _ -> i < 4) by_tree.(x))
      (List.init set_size Fun.id)
    |> List.sort_uniq compare
  in
  let slot_pool i = Array.of_list (List.filteri (fun j _ -> j mod 2 = i) picks) in
  let pool1 = slot_pool 0 and pool2 = slot_pool 1 in
  let participants = Array.of_list (victim :: (Array.to_list pool1 @ Array.to_list pool2)) in
  let layout = Layout.create () in
  let f = Filter.create layout { k; d; z; s; participants } in
  let work = Layout.alloc layout ~name:"work" 0 in
  let victim_done = Layout.alloc layout ~name:"victim_done" 0 in
  let rounds = ref [] and checks = ref [] and advances = ref [] in
  let victim_body (ops : Store.ops) =
    for _ = 1 to 6 do
      let lease = Filter.get_name f ops in
      rounds := Filter.rounds lease :: !rounds;
      checks := Filter.checks lease :: !checks;
      advances := Filter.advances lease :: !advances;
      Sim.Sched.emit (Sim.Event.Acquired (Filter.name_of f lease));
      ignore (ops.read work);
      Sim.Sched.emit (Sim.Event.Released (Filter.name_of f lease));
      Filter.release_name f ops lease
    done;
    ops.write victim_done 1
  in
  let opponent_body pool (ops : Store.ops) =
    let c = ref 0 in
    while ops.read victim_done = 0 do
      let ops = { ops with pid = pool.(!c mod Array.length pool) } in
      incr c;
      let lease = Filter.get_name f ops in
      Sim.Sched.emit (Sim.Event.Acquired (Filter.name_of f lease));
      for _ = 1 to 3 do
        ignore (ops.read work)
      done;
      Sim.Sched.emit (Sim.Event.Released (Filter.name_of f lease));
      Filter.release_name f ops lease
    done
  in
  List.iter
    (fun seed ->
      let u = Sim.Checks.uniqueness ~name_space:(Filter.name_space f) () in
      let t =
        Sim.Sched.create
          ~monitor:(Sim.Checks.uniqueness_monitor u)
          layout
          [| (victim, victim_body); (pool1.(0), opponent_body pool1);
             (pool2.(0), opponent_body pool2) |]
      in
      let rng = Sim.Rng.make seed in
      let starving st en =
        ignore st;
        if Array.length en = 1 then en.(0)
        else if Array.exists (Int.equal 0) en && Sim.Rng.int rng 25 = 0 then 0
        else
          let others = Array.of_list (List.filter (fun i -> i <> 0) (Array.to_list en)) in
          if Array.length others = 0 then 0
          else others.(Sim.Rng.int rng (Array.length others))
      in
      let outcome = Sim.Sched.run ~max_steps:5_000_000 t starving in
      if outcome.truncated then
        raise (Sim.Model_check.Violation "e10 run exceeded its step budget"))
    (Harness.seeds 80);
  (* Part 2: schedule synthesis - search *all* interleavings of the
     minimal instance for any schedule that forces a second round.
     The DFS flags such a schedule as a "violation", so finding none
     is bounded-exhaustive evidence that first-pass acquisition is
     guaranteed there. *)
  let synth_builder () : Sim.Model_check.config =
    let layout = Layout.create () in
    let f = Filter.create layout { k = 2; d = 1; z = 2; s = 4; participants = [| 0; 2; 3 |] } in
    let work = Layout.alloc layout ~name:"work" 0 in
    let body rotate pid0 (ops : Store.ops) =
      List.iter
        (fun pid ->
          let ops = { ops with pid } in
          let lease = Filter.get_name f ops in
          if Filter.rounds lease > 1 then
            raise (Sim.Model_check.Violation "second round reached");
          Sim.Sched.emit (Sim.Event.Acquired (Filter.name_of f lease));
          ignore (ops.read work);
          Sim.Sched.emit (Sim.Event.Released (Filter.name_of f lease));
          Filter.release_name f ops lease)
        (if rotate then [ pid0; (if pid0 = 2 then 3 else 2) ] else [ pid0; pid0 ])
    in
    {
      layout;
      procs = [| (0, body false 0); (2, body true 2) |];
      monitor = Sim.Sched.no_monitor;
    }
  in
  let synth = Sim.Model_check.explore ~max_steps:4_000 ~max_paths:400_000 synth_builder in
  let hist = Hashtbl.create 8 in
  List.iter
    (fun r -> Hashtbl.replace hist r (1 + Option.value ~default:0 (Hashtbl.find_opt hist r)))
    !rounds;
  let tbl = Stats.table [ "rounds to acquire"; "acquisitions (starved victim)" ] in
  List.iter
    (fun r ->
      match Hashtbl.find_opt hist r with
      | Some n -> Stats.add_row tbl [ istr r; istr n ]
      | None -> ())
    (List.init 20 (fun i -> i + 1));
  let min_later = ref max_int and min_first = ref max_int and rounds_seen = ref 0 in
  List.iter
    (fun advs ->
      List.iteri
        (fun i a ->
          incr rounds_seen;
          if i = 0 then min_first := min !min_first a else min_later := min !min_later a)
        advs)
    !advances;
  let bound = d * (k - 1) in
  let later_ok = !min_later = max_int || !min_later >= bound in
  let levels = Numeric.Intmath.ceil_log2 s in
  let checks_bound = 6 * d * (k - 1) * levels in
  let cmax = Harness.imax !checks in
  let checks_ok = cmax <= checks_bound in
  let blocking_seen = cmax > levels in
  let prog = Stats.table [ "quantity"; "measured"; "bound"; "ok" ] in
  Stats.add_row prog
    [
      "min advances, completed rounds >= 2";
      (if !min_later = max_int then "(none observed)" else istr !min_later);
      spf ">= %d" bound;
      yn later_ok;
    ];
  Stats.add_row prog
    [ "max checks per acquisition"; istr cmax; spf "<= %d" checks_bound; yn checks_ok ];
  Stats.add_row prog
    [
      "failed checks observed (intra-round blocking)";
      yn blocking_seen;
      spf "> %d straight-climb checks" levels;
      yn blocking_seen;
    ];
  Stats.add_row prog
    [
      "schedule forcing a 2nd round (bounded search)";
      (match synth.violation with Some _ -> "found" | None -> "none");
      spf "%d schedules searched" synth.paths;
      "-";
    ];
  {
    id = "e10";
    title = "Per-round progress in FILTER";
    claim =
      "Lemma 9: while a process has not acquired a name, each round advances it in at \
       least d(k-1) trees; hence Theorem 10's 6d(k-1)ceil(log S) check bound.";
    tables =
      [
        ("rounds-to-acquire, starved victim vs engineered opponents (80 runs)", tbl);
        ("progress bounds", prog);
      ];
    notes =
      [
        spf "completed (non-acquiring) rounds observed: %d" !rounds_seen;
        "Finding: every acquisition completed in its first pass, under random, starved and \
         engineered-adversarial schedules, and a bounded-exhaustive search of the minimal \
         instance finds no schedule forcing a second round.  A band-x tree can only be \
         contested by an opponent pushed to its own position x, and the intersection bound \
         caps such chains below the set size - so the Lemma 9 / Theorem 10 bounds hold \
         with large slack in this implementation (blocking shows up as failed checks \
         within the first pass instead).";
      ];
    ok = later_ok && checks_ok && blocking_seen;
  }

(* ------------------------------------------------------------------ *)
(* E11: one-time vs long-lived renaming                                *)
(* ------------------------------------------------------------------ *)

let e11_one_time () =
  let tbl =
    Stats.table
      [ "k"; "one-time get max"; "4k"; "split get max"; "ma get max (S=256)"; "ok" ]
  in
  let all_ok = ref true in
  List.iter
    (fun k ->
      (* one-time grid *)
      let ot_max =
        let layout = Layout.create () in
        let ot = Renaming.One_time.create layout ~k in
        let costs = ref [] in
        let body (ops : Store.ops) =
          let c = Store.counter () in
          let counted = Store.counting c ops in
          let name = Renaming.One_time.get_name ot counted in
          costs := Store.accesses c :: !costs;
          Sim.Sched.emit (Sim.Event.Acquired name)
        in
        List.iter
          (fun seed ->
            let u = Sim.Checks.uniqueness ~name_space:(Renaming.One_time.name_space ot) () in
            let t =
              Sim.Sched.create
                ~monitor:(Sim.Checks.uniqueness_monitor u)
                layout
                (Array.init k (fun i -> (i * 13, body)))
            in
            ignore (Sim.Sched.run t (Sim.Sched.random (Sim.Rng.make seed))))
          (Harness.seeds 8);
        Harness.imax !costs
      in
      (* long-lived SPLIT *)
      let split_max =
        let layout = Layout.create () in
        let sp = Split.create layout ~k in
        let work = Layout.alloc layout ~name:"work" 0 in
        let c =
          Harness.measure_protocol ?registry:!metrics (module Split) sp ~layout ~work
            ~pids:(Array.init k (fun i -> i * 13))
            ~cycles:3 ~seeds:(Harness.seeds 4) ~name_space:(Split.name_space sp)
        in
        Harness.imax c.get
      in
      (* long-lived MA at a moderate S *)
      let ma_max =
        let s = 256 in
        let layout = Layout.create () in
        let m = Ma.create layout ~k ~s in
        let work = Layout.alloc layout ~name:"work" 0 in
        let c =
          Harness.measure_protocol ?registry:!metrics (module Ma) m ~layout ~work
            ~pids:(Array.init k (fun i -> i * (s / k)))
            ~cycles:2 ~seeds:(Harness.seeds 3) ~name_space:(Ma.name_space m)
        in
        Harness.imax c.get
      in
      let ok = ot_max <= 4 * k && ot_max < ma_max in
      if not ok then all_ok := false;
      Stats.add_row tbl
        [ istr k; istr ot_max; istr (4 * k); istr split_max; istr ma_max; yn ok ])
    [ 2; 3; 4; 6; 8 ];
  {
    id = "e11";
    title = "One-time vs long-lived renaming";
    claim =
      "Section 1 context: one-time renaming to k(k+1)/2 names costs O(k) with reads and \
       writes (the Moir-Anderson one-shot grid); making renaming long-lived with reads and \
       writes is what costs - the prior art (MA) pays Theta(kS), and this paper's \
       contribution is recovering S-independence.";
    tables = [ ("worst GetName accesses", tbl) ];
    notes =
      [
        "one-time names can never be released: the Y bits never reset.  SPLIT is long-lived \
         and S-independent but yields 3^(k-1) names; MA is long-lived with k(k+1)/2 names \
         but scans S presence bits per block.";
      ];
    ok = !all_ok;
  }

(* ------------------------------------------------------------------ *)
(* E12: the read/write restriction - Test&Set baseline                 *)
(* ------------------------------------------------------------------ *)

let e12_primitive_strength () =
  let tbl =
    Stats.table
      [
        "k"; "T&S names"; "r/w lower bound 2k-1"; "pipeline names";
        "T&S get max"; "pipeline get max";
      ]
  in
  let all_ok = ref true in
  List.iter
    (fun k ->
      let s = 4096 in
      let pids = Array.init k (fun i -> (i * (s / k)) + 1) in
      let tas_names, tas_max =
        let layout = Layout.create () in
        let t = Renaming.Tas_baseline.create layout ~k in
        let work = Layout.alloc layout ~name:"work" 0 in
        let c =
          Harness.measure_protocol ?registry:!metrics (module Renaming.Tas_baseline) t ~layout ~work ~pids
            ~cycles:4 ~seeds:(Harness.seeds 6)
            ~name_space:(Renaming.Tas_baseline.name_space t)
        in
        (Renaming.Tas_baseline.name_space t, Harness.imax c.get)
      in
      let pipe_names, pipe_max =
        let layout = Layout.create () in
        let p = Pipeline.create layout ~k ~s ~participants:pids in
        let work = Layout.alloc layout ~name:"work" 0 in
        let c =
          Harness.measure_protocol ?registry:!metrics (module Pipeline) p ~layout ~work ~pids
            ~cycles:2 ~seeds:(Harness.seeds 3) ~name_space:(Pipeline.name_space p)
        in
        (Pipeline.name_space p, Harness.imax c.get)
      in
      let ok = tas_names = k && tas_names < (2 * k) - 1 && tas_max < pipe_max in
      if not ok then all_ok := false;
      Stats.add_row tbl
        [
          istr k; istr tas_names; istr ((2 * k) - 1); istr pipe_names;
          istr tas_max; istr pipe_max;
        ])
    [ 3; 4; 6; 8 ];
  {
    id = "e12";
    title = "The cost of the read/write restriction (Test&Set baseline)";
    claim =
      "Section 1 + Section 5: with Test&Set, fast long-lived renaming to k names is easy \
       (below the Herlihy-Shavit 2k-1 lower bound for read/write protocols); the paper's \
       contribution is achieving fastness with reads and writes only, at the price of a \
       k(k+1)/2 name space and a larger constant.";
    tables = [ ("stronger primitive vs read/write pipeline (S=4096)", tbl) ];
    notes =
      [
        "the T&S baseline is lock-free rather than wait-free (a requester can in principle \
         be starved by rivals cycling names); the read/write protocols are wait-free - \
         strength of primitive is traded against both name-space size and cost.";
      ];
    ok = !all_ok;
  }

(* ------------------------------------------------------------------ *)
(* E13: which names actually get used (beyond the paper)               *)
(* ------------------------------------------------------------------ *)

let e13_name_distribution () =
  let tbl =
    Stats.table
      [ "protocol"; "D"; "distinct used"; "top name"; "top share"; "acquisitions" ]
  in
  let measure (type a) label (module P : Renaming.Protocol.S with type t = a) (inst : a)
      ~layout ~work ~pids =
    let freq = Hashtbl.create 32 in
    let total = ref 0 in
    let body (ops : Store.ops) =
      for _ = 1 to 6 do
        let lease = P.get_name inst ops in
        let n = P.name_of inst lease in
        Hashtbl.replace freq n (1 + Option.value ~default:0 (Hashtbl.find_opt freq n));
        incr total;
        Sim.Sched.emit (Sim.Event.Acquired n);
        ignore (ops.read work);
        Sim.Sched.emit (Sim.Event.Released n);
        P.release_name inst ops lease
      done
    in
    List.iter
      (fun seed ->
        let u = Sim.Checks.uniqueness ~name_space:(P.name_space inst) () in
        let t =
          Sim.Sched.create
            ~monitor:(Sim.Checks.uniqueness_monitor u)
            layout
            (Array.map (fun pid -> (pid, body)) pids)
        in
        ignore (Sim.Sched.run ~max_steps:10_000_000 t (Sim.Sched.random (Sim.Rng.make seed))))
      (Harness.seeds 10);
    let top_name, top_count =
      Hashtbl.fold (fun n c ((_, bc) as best) -> if c > bc then (n, c) else best) freq (-1, 0)
    in
    Stats.add_row tbl
      [
        label;
        istr (P.name_space inst);
        istr (Hashtbl.length freq);
        istr top_name;
        spf "%.0f%%" (100.0 *. float_of_int top_count /. float_of_int (max 1 !total));
        istr !total;
      ]
  in
  let k = 4 in
  (let layout = Layout.create () in
   let sp = Split.create layout ~k in
   let work = Layout.alloc layout ~name:"work" 0 in
   measure "split" (module Split) sp ~layout ~work ~pids:(Array.init k (fun i -> i * 7)));
  (let layout = Layout.create () in
   let pids = [| 17; 170; 340; 500 |] in
   let f = Filter.create layout { k; d = 3; z = 29; s = 512; participants = pids } in
   let work = Layout.alloc layout ~name:"work" 0 in
   measure "filter" (module Filter) f ~layout ~work ~pids);
  (let layout = Layout.create () in
   let m = Ma.create layout ~k ~s:64 in
   let work = Layout.alloc layout ~name:"work" 0 in
   measure "ma" (module Ma) m ~layout ~work ~pids:(Array.init k (fun i -> i * 16)));
  (let layout = Layout.create () in
   let t = Renaming.Tas_baseline.create layout ~k in
   let work = Layout.alloc layout ~name:"work" 0 in
   measure "tas" (module Renaming.Tas_baseline) t ~layout ~work
     ~pids:(Array.init k (fun i -> i * 16)));
  {
    id = "e13";
    title = "Destination-name locality (beyond the paper)";
    claim =
      "Not a paper claim - an implementation observation: protocols differ sharply in \
       which destination names they hand out, which matters when names index caches or \
       pre-allocated slots downstream.";
    tables = [ ("k=4 churn, 10 random schedules", tbl) ];
    notes =
      [
        "MA and SPLIT funnel uncontended traffic to low names (grid origin / all-advice \
         paths); FILTER scatters by the polynomial hash; T&S spreads by pid offset.  A \
         skewed distribution means better slot-cache locality but more contention on the \
         hot name's registers.";
      ];
    ok = true;
  }

(* ------------------------------------------------------------------ *)

let all =
  [
    ("e1", "Splitter output-set occupancy (Thm 5)", e1_splitter_occupancy);
    ("e2", "SPLIT cost, O(k) and S-independent (Thm 2)", e2_split_costs);
    ("e3", "Mutex exclusion and FIFO (Lemma 6/7)", e3_mutex);
    ("e4", "FILTER cost, O(dk log S) (Thm 10)", e4_filter_costs);
    ("e5", "The 4.4 parameter regime table", e5_regimes);
    ("e6", "MA baseline vs fast pipeline (Thm 11)", e6_ma_vs_pipeline);
    ("e7", "Cover-free families (Prop 8)", e7_cover_free);
    ("e8", "Ablation: modulus bound (4.1 remark)", e8_z_ablation);
    ("e9", "Crash tolerance / wait-freedom", e9_crash_tolerance);
    ("e10", "FILTER per-round progress (Lemma 9)", e10_filter_rounds);
    ("e11", "One-time vs long-lived renaming", e11_one_time);
    ("e12", "Read/write restriction vs Test&Set", e12_primitive_strength);
    ("e13", "Destination-name locality (beyond the paper)", e13_name_distribution);
  ]

let find id =
  List.find_map (fun (i, _, f) -> if String.equal i id then Some f else None) all

let pp_report ppf r =
  Format.fprintf ppf "@.=== %s: %s ===@." (String.uppercase_ascii r.id) r.title;
  Format.fprintf ppf "claim: %s@." r.claim;
  List.iter
    (fun (caption, tbl) -> Format.fprintf ppf "@.-- %s --@.%s@." caption (Stats.render tbl))
    r.tables;
  List.iter (fun n -> Format.fprintf ppf "note: %s@." n) r.notes;
  Format.fprintf ppf "RESULT: %s@." (if r.ok then "OK" else "FAILED")
