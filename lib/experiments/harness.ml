open Shared_mem

type costs = { get : int list; release : int list }

let seeds n = List.init n (fun i -> 0xCAFE + (i * 104729))

let instrumented_body (type a l)
    (module P : Renaming.Protocol.S with type t = a and type lease = l) (inst : a) ~work
    ~cycles ~on_get (ops : Store.ops) =
  for _ = 1 to cycles do
    Sim.Observe.op_begin "get";
    let lease = P.get_name inst ops in
    on_get lease;
    Sim.Sched.emit (Sim.Event.Acquired (P.name_of inst lease));
    ignore (ops.read work);
    Sim.Sched.emit (Sim.Event.Released (P.name_of inst lease));
    Sim.Observe.op_begin "release";
    P.release_name inst ops lease
  done

(* Per-operation costs are read back from the span ring rather than
   tallied by ad-hoc counters: the Observe monitor counts every shared
   access a process makes while its span is open, which is exactly the
   GetName (marker → Acquired) or ReleaseName (marker → next marker)
   window.  The [work] read sits outside both windows. *)
let run_seeds ?registry ~layout ~pids ~cycles ~seeds ~name_space body =
  let registry = match registry with Some r -> r | None -> Obs.Registry.create () in
  let span_capacity = 2 * cycles * Array.length pids * List.length seeds in
  let shard = Obs.Registry.shard ~span_capacity registry in
  List.iter
    (fun seed ->
      let obs = Sim.Observe.create shard in
      let u = Sim.Checks.uniqueness ~name_space () in
      let monitor =
        Sim.Checks.combine [ Sim.Checks.uniqueness_monitor u; Sim.Observe.monitor obs ]
      in
      let t = Sim.Sched.create ~monitor layout (Array.map (fun pid -> (pid, body)) pids) in
      let outcome =
        Sim.Sched.run ~max_steps:50_000_000 t (Sim.Sched.random (Sim.Rng.make seed))
      in
      Sim.Observe.finalize obs;
      if outcome.truncated then
        raise (Sim.Model_check.Violation "measurement run exceeded its step budget"))
    seeds;
  let get = ref [] and release = ref [] in
  List.iter
    (fun (s : Obs.Span.t) ->
      match s.name with
      | "get" -> get := s.accesses :: !get
      | "release" -> release := s.accesses :: !release
      | _ -> ())
    (Obs.Registry.shard_spans shard);
  { get = !get; release = !release }

let measure_protocol (type a) ?registry
    (module P : Renaming.Protocol.S with type t = a) (inst : a) ~layout ~work ~pids
    ~cycles ~seeds ~name_space =
  run_seeds ?registry ~layout ~pids ~cycles ~seeds ~name_space
    (instrumented_body (module P) inst ~work ~cycles ~on_get:(fun _ -> ()))

let imax = List.fold_left max 0
let imean l = float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (max 1 (List.length l))

type filter_costs = { fc : costs; rounds : int list; checks : int list; advances : int list list }

let measure_filter ?registry f ~layout ~work ~pids ~cycles ~seeds =
  let module F = Renaming.Filter in
  let rounds = ref [] and checks = ref [] and advances = ref [] in
  let body =
    instrumented_body (module F) f ~work ~cycles ~on_get:(fun lease ->
        rounds := F.rounds lease :: !rounds;
        checks := F.checks lease :: !checks;
        advances := F.advances lease :: !advances)
  in
  let fc =
    run_seeds ?registry ~layout ~pids ~cycles ~seeds ~name_space:(F.name_space f) body
  in
  { fc; rounds = !rounds; checks = !checks; advances = !advances }
