(** Shared machinery for the experiment suite (see {!Experiments}).

    Measurements are thin views over the [lib/obs] registry: each
    [measure_*] call registers one {!Obs.Registry.shard}, runs the
    seeded schedules with a {!Sim.Observe} monitor armed, and reads the
    per-operation costs back from the recorded spans.  Pass your own
    [?registry] to additionally get the full metrics snapshot
    (per-register-group access counters, [op.*.accesses] histograms,
    [names.held] gauges, the spans themselves) for the same runs;
    otherwise a private registry is created and discarded. *)

type costs = {
  get : int list;  (** Shared accesses per [GetName] execution. *)
  release : int list;  (** Shared accesses per [ReleaseName] execution. *)
}

val measure_protocol :
  ?registry:Obs.Registry.t ->
  (module Renaming.Protocol.S with type t = 'a) ->
  'a ->
  layout:Shared_mem.Layout.t ->
  work:Shared_mem.Cell.t ->
  pids:int array ->
  cycles:int ->
  seeds:int list ->
  name_space:int ->
  costs
(** Run [cycles] acquire/release cycles per process under each seeded
    random schedule, with the uniqueness monitor armed, collecting
    per-operation shared-access costs across all runs.  The layout and
    instance are reused across seeds (long-lived protocols reset
    themselves); raises {!Sim.Model_check.Violation} on any uniqueness
    violation. *)

val imax : int list -> int
val imean : int list -> float

type filter_costs = {
  fc : costs;
  rounds : int list;  (** Figure 4 rounds per acquisition. *)
  checks : int list;  (** Mutex checks per acquisition. *)
  advances : int list list;
      (** Per acquisition, trees advanced in each completed round
          (Lemma 9 instrumentation). *)
}

val measure_filter :
  ?registry:Obs.Registry.t ->
  Renaming.Filter.t ->
  layout:Shared_mem.Layout.t ->
  work:Shared_mem.Cell.t ->
  pids:int array ->
  cycles:int ->
  seeds:int list ->
  filter_costs
(** {!measure_protocol} specialized to FILTER, additionally collecting
    the Theorem 10 instrumentation. *)

val seeds : int -> int list
(** Deterministic seed list (same convention as the test suite). *)
