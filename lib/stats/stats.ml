type summary = {
  n : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  stddev : float;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile";
  let rank = int_of_float (Float.round (q *. float_of_int (n - 1))) in
  sorted.(max 0 (min (n - 1) rank))

let summarize values =
  match values with
  | [] -> invalid_arg "Stats.summarize: empty"
  | _ ->
      let a = Array.of_list values in
      (* [Float.compare], not polymorphic [compare]: the latter orders
         nan through its boxed representation and is needlessly slow on
         floats. *)
      Array.sort Float.compare a;
      let n = Array.length a in
      let fn = float_of_int n in
      let sum = Array.fold_left ( +. ) 0.0 a in
      let mean = sum /. fn in
      let var = Array.fold_left (fun acc v -> acc +. ((v -. mean) ** 2.0)) 0.0 a /. fn in
      {
        n;
        mean;
        min = a.(0);
        max = a.(n - 1);
        p50 = percentile a 0.5;
        p95 = percentile a 0.95;
        stddev = sqrt var;
      }

let summarize_ints values = summarize (List.map float_of_int values)

let linear_fit points =
  let n = List.length points in
  if n < 2 then invalid_arg "Stats.linear_fit: need at least 2 points";
  let fn = float_of_int n in
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 points in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 points in
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 points in
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 points in
  let denom = (fn *. sxx) -. (sx *. sx) in
  if Float.abs denom < 1e-12 then invalid_arg "Stats.linear_fit: degenerate x values";
  let slope = ((fn *. sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. fn in
  (slope, intercept)

let growth_exponent points =
  let logs =
    List.map
      (fun (x, y) ->
        if x <= 0.0 || y <= 0.0 then invalid_arg "Stats.growth_exponent: non-positive point";
        (log x, log y))
      points
  in
  fst (linear_fit logs)

type table = { headers : string list; mutable rows : string list list (* reversed *) }

let table headers = { headers; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Stats.add_row: column count mismatch";
  t.rows <- row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncols width in
  let line row =
    String.concat " | " (List.map2 (fun w cell -> Printf.sprintf "%-*s" w cell) widths row)
  in
  let rule = String.concat "-+-" (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" (line t.headers :: rule :: List.map line rows)

let print t = print_endline (render t)

let csv_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let to_csv t =
  let line row = String.concat "," (List.map csv_field row) in
  String.concat "\n" (List.map line (t.headers :: List.rev t.rows))
