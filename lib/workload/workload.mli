(** Acquire/release workload generators for simulator processes.

    Each generator returns a process body usable with {!Sim.Sched} (or
    the model checker).  Bodies emit [Acquired]/[Released] events so
    the standard uniqueness monitors apply, and emit
    [Note ("cycle", i)] at the start of each cycle for tracing.

    The hold duration is expressed in {e shared reads of [work]}, i.e.
    in scheduler steps, because simulated time only advances with
    shared accesses. *)

type spec = {
  cycles : int;  (** Acquire/release cycles to perform. *)
  hold : int -> int;  (** Steps to hold the name on cycle [i] (≥ 0). *)
  delay : int -> int;
      (** Steps to idle before re-acquiring on cycle [i] (≥ 0); cycle 0's
          delay staggers the process's arrival. *)
}

val churn : ?hold:int -> cycles:int -> unit -> spec
(** Back-to-back cycles, constant hold (default 1), no delays — maximum
    contention on the protocol. *)

val staggered : ?hold:int -> cycles:int -> stride:int -> index:int -> unit -> spec
(** Like {!churn} but process [index] starts after [index · stride]
    idle steps — models processes arriving over time. *)

val bursty : cycles:int -> seed:int -> spec
(** Random holds (0–7) and random delays (0–15) from a seeded
    generator — models irregular request patterns. *)

(** {2 Fault-plan shapes}

    Deterministic workload counterparts of the {!Sim.Faults} actions:
    where a fault plan makes the {e scheduler} adversarial, these make
    the {e request pattern} adversarial, so the two compose (a slow-lane
    workload under a park plan is the paper's worst long-lived regime). *)

val slow_lane : ?lag:int -> cycles:int -> unit -> spec
(** Every cycle holds the name for [lag] steps (default 6) and idles
    [lag] steps before re-acquiring — the slow-lane process of a
    [Slow] fault, as a workload. *)

val burst : cycles:int -> burst_len:int -> pause:int -> spec
(** Back-to-back cycles in bursts of [burst_len] releases/re-acquires,
    idling [pause] steps between bursts — the burst release/re-acquire
    regime of a [Stall]-on-[Acquired] fault. *)

(** {2 Server churn family}

    Heavy-churn request streams for the name server ([lib/server]) on
    {e real} OS domains: open-loop (timed) arrivals and Zipf-skewed
    source names, millions of acquire/release cycles.  Everything is a
    pure function of its seed, so a run's request stream replays
    identically — the simulator-oriented specs above describe {e hold
    shapes}; these describe {e who asks, and when}. *)

type server_spec = {
  requests : int;  (** Acquire/release requests this client issues. *)
  source : int -> int;
      (** Request index to source name in [\[0, s)], Zipf-skewed: a few
          hot names dominate, the tail is long — the regime where the
          server's warm-name cache pays. *)
  arrival : int -> float;
      (** Scheduled arrival of request [i], in seconds from the
          client's start ([0.] everywhere means closed-loop: issue as
          fast as the server answers).  Open-loop arrivals do not wait
          for earlier requests — a late server eats the queueing delay
          in its latency tail, as a real load generator would charge
          it. *)
  think : int;  (** Local spins while holding a granted name. *)
}

val zipf : ?theta:float -> ?stream:int -> s:int -> seed:int -> unit -> int -> int
(** [zipf ~s ~seed ()] is a request-index-to-source-name function,
    Zipf-distributed over [s] names with skew [theta] (default
    [0.99], YCSB's): rank [r] is drawn with probability proportional
    to [1/(r+1)^theta] via the Gray et al. closed-form inverse CDF,
    then scrambled across [\[0, s)] by a seed-keyed hash.  Distinct
    [stream]s (default [0]) draw independent sequences but agree on
    the scramble, so concurrent clients contend on the {e same} hot
    names.  O(s) precomputation at creation, O(1) per request.
    @raise Invalid_argument unless [s ≥ 1] and [0 < theta < 1]. *)

val open_loop : rate:float -> seed:int -> int -> float
(** [open_loop ~rate ~seed] maps request index [i] to its scheduled
    arrival time: the sum of [i] exponential inter-arrival draws of
    mean [1/rate] seconds (a Poisson stream).  [rate ≤ 0.] yields the
    constant [0.] — closed-loop.  The returned closure memoises
    cumulative sums and is single-writer: give each client its own. *)

val server_churn :
  ?theta:float ->
  ?rate:float ->
  ?think:int ->
  s:int ->
  requests:int ->
  seed:int ->
  client:int ->
  unit ->
  server_spec
(** The standard heavy-churn client: Zipf sources (stream [client],
    shared scramble) at Poisson rate [rate] requests/second (default
    [0.] — closed-loop), [think] spins per hold (default [0]).  Two
    clients of the same [seed] share the distribution but draw
    independent request streams. *)

val pin : sources:int array -> server_spec -> server_spec
(** Remap a spec's source stream through a fixed table: request [i]
    asks for [sources.(source i mod length)].  Keeps the stream's
    skew but confines it to the given names — e.g. the sources one
    shard serves, to build a hot-shard fault plan.
    @raise Invalid_argument on an empty table. *)

val body :
  (module Renaming.Protocol.S with type t = 'a) ->
  'a ->
  work:Shared_mem.Cell.t ->
  spec ->
  Shared_mem.Store.ops ->
  unit
(** Run the spec against the protocol. *)

val rotating_body :
  (module Renaming.Protocol.S with type t = 'a) ->
  'a ->
  work:Shared_mem.Cell.t ->
  pids:int array ->
  spec ->
  Shared_mem.Store.ops ->
  unit
(** Like {!body}, but cycle [i] is performed under source name
    [pids.(i mod length)] — models a pool of [n ≫ k] client identities
    multiplexed over one execution slot, the long-lived scenario from
    the paper's introduction (at most [k] concurrent, unboundedly many
    over time).  All pids must be legal source names for the
    protocol. *)

val resilient_body :
  Recovery.t ->
  work:Shared_mem.Cell.t ->
  ?drain:int ->
  spec ->
  Shared_mem.Store.ops ->
  unit
(** Like {!body} but over a crash-recovery wrapper: each cycle runs
    one reclaimer {!Recovery.scan} (emitting [Note ("reclaimed", n)]
    per expired lease), then an admission-controlled
    {!Recovery.acquire} — [Acquired n] on grant, [Note ("shed", i)]
    when the entrant is shed; the hold is spent in
    {!Recovery.heartbeat}s (at least one), and the release emits
    [Released n] only when it is {e live} (an epoch-fenced stale
    release emits nothing — the name was reclaimed from us).  After
    the last cycle the body runs [drain] (default [0]) extra scans so
    a surviving process can reclaim leases crashed holders left
    behind. *)
