(** Acquire/release workload generators for simulator processes.

    Each generator returns a process body usable with {!Sim.Sched} (or
    the model checker).  Bodies emit [Acquired]/[Released] events so
    the standard uniqueness monitors apply, and emit
    [Note ("cycle", i)] at the start of each cycle for tracing.

    The hold duration is expressed in {e shared reads of [work]}, i.e.
    in scheduler steps, because simulated time only advances with
    shared accesses. *)

type spec = {
  cycles : int;  (** Acquire/release cycles to perform. *)
  hold : int -> int;  (** Steps to hold the name on cycle [i] (≥ 0). *)
  delay : int -> int;
      (** Steps to idle before re-acquiring on cycle [i] (≥ 0); cycle 0's
          delay staggers the process's arrival. *)
}

val churn : ?hold:int -> cycles:int -> unit -> spec
(** Back-to-back cycles, constant hold (default 1), no delays — maximum
    contention on the protocol. *)

val staggered : ?hold:int -> cycles:int -> stride:int -> index:int -> unit -> spec
(** Like {!churn} but process [index] starts after [index · stride]
    idle steps — models processes arriving over time. *)

val bursty : cycles:int -> seed:int -> spec
(** Random holds (0–7) and random delays (0–15) from a seeded
    generator — models irregular request patterns. *)

(** {2 Fault-plan shapes}

    Deterministic workload counterparts of the {!Sim.Faults} actions:
    where a fault plan makes the {e scheduler} adversarial, these make
    the {e request pattern} adversarial, so the two compose (a slow-lane
    workload under a park plan is the paper's worst long-lived regime). *)

val slow_lane : ?lag:int -> cycles:int -> unit -> spec
(** Every cycle holds the name for [lag] steps (default 6) and idles
    [lag] steps before re-acquiring — the slow-lane process of a
    [Slow] fault, as a workload. *)

val burst : cycles:int -> burst_len:int -> pause:int -> spec
(** Back-to-back cycles in bursts of [burst_len] releases/re-acquires,
    idling [pause] steps between bursts — the burst release/re-acquire
    regime of a [Stall]-on-[Acquired] fault. *)

val body :
  (module Renaming.Protocol.S with type t = 'a) ->
  'a ->
  work:Shared_mem.Cell.t ->
  spec ->
  Shared_mem.Store.ops ->
  unit
(** Run the spec against the protocol. *)

val rotating_body :
  (module Renaming.Protocol.S with type t = 'a) ->
  'a ->
  work:Shared_mem.Cell.t ->
  pids:int array ->
  spec ->
  Shared_mem.Store.ops ->
  unit
(** Like {!body}, but cycle [i] is performed under source name
    [pids.(i mod length)] — models a pool of [n ≫ k] client identities
    multiplexed over one execution slot, the long-lived scenario from
    the paper's introduction (at most [k] concurrent, unboundedly many
    over time).  All pids must be legal source names for the
    protocol. *)

val resilient_body :
  Recovery.t ->
  work:Shared_mem.Cell.t ->
  ?drain:int ->
  spec ->
  Shared_mem.Store.ops ->
  unit
(** Like {!body} but over a crash-recovery wrapper: each cycle runs
    one reclaimer {!Recovery.scan} (emitting [Note ("reclaimed", n)]
    per expired lease), then an admission-controlled
    {!Recovery.acquire} — [Acquired n] on grant, [Note ("shed", i)]
    when the entrant is shed; the hold is spent in
    {!Recovery.heartbeat}s (at least one), and the release emits
    [Released n] only when it is {e live} (an epoch-fenced stale
    release emits nothing — the name was reclaimed from us).  After
    the last cycle the body runs [drain] (default [0]) extra scans so
    a surviving process can reclaim leases crashed holders left
    behind. *)
