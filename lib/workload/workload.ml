type spec = { cycles : int; hold : int -> int; delay : int -> int }

let churn ?(hold = 1) ~cycles () = { cycles; hold = (fun _ -> hold); delay = (fun _ -> 0) }

let staggered ?(hold = 1) ~cycles ~stride ~index () =
  {
    cycles;
    hold = (fun _ -> hold);
    delay = (fun i -> if i = 0 then index * stride else 0);
  }

let bursty ~cycles ~seed =
  (* Hold/delay patterns must be a pure function of the cycle index so
     that model-checker re-executions replay identically; derive both
     from a stateless hash of (seed, i). *)
  let mix i salt =
    let h = ref (seed lxor (i * 0x9E3779B9) lxor salt) in
    h := !h lxor (!h lsr 16);
    h := !h * 0x45D9F3B land max_int;
    h := !h lxor (!h lsr 16);
    !h
  in
  { cycles; hold = (fun i -> mix i 1 mod 8); delay = (fun i -> mix i 2 mod 16) }

let slow_lane ?(lag = 6) ~cycles () =
  { cycles; hold = (fun _ -> lag); delay = (fun _ -> lag) }

let burst ~cycles ~burst_len ~pause =
  if burst_len < 1 then invalid_arg "Workload.burst: burst_len < 1";
  {
    cycles;
    hold = (fun _ -> 1);
    delay = (fun i -> if i > 0 && i mod burst_len = 0 then pause else 0);
  }

let idle (ops : Shared_mem.Store.ops) ~work n =
  for _ = 1 to n do
    ignore (ops.read work)
  done

let run_cycle (type a l)
    (module P : Renaming.Protocol.S with type t = a and type lease = l) (inst : a) ~work spec
    i (ops : Shared_mem.Store.ops) =
  Sim.Sched.emit (Sim.Event.Note ("cycle", i));
  idle ops ~work (spec.delay i);
  let lease = P.get_name inst ops in
  Sim.Sched.emit (Sim.Event.Acquired (P.name_of inst lease));
  idle ops ~work (spec.hold i);
  Sim.Sched.emit (Sim.Event.Released (P.name_of inst lease));
  P.release_name inst ops lease

let body (type a) (module P : Renaming.Protocol.S with type t = a) (inst : a) ~work spec ops =
  for i = 0 to spec.cycles - 1 do
    run_cycle (module P) inst ~work spec i ops
  done

let rotating_body (type a) (module P : Renaming.Protocol.S with type t = a) (inst : a) ~work
    ~pids spec (ops : Shared_mem.Store.ops) =
  let n = Array.length pids in
  if n = 0 then invalid_arg "Workload.rotating_body: no pids";
  for i = 0 to spec.cycles - 1 do
    run_cycle (module P) inst ~work spec i { ops with pid = pids.(i mod n) }
  done

let emit_reclaimed ~pid:_ ~name ~latency:_ =
  Sim.Sched.emit (Sim.Event.Note ("reclaimed", name))

let resilient_body rc ~work ?(drain = 0) spec (ops : Shared_mem.Store.ops) =
  for i = 0 to spec.cycles - 1 do
    Sim.Sched.emit (Sim.Event.Note ("cycle", i));
    idle ops ~work (spec.delay i);
    (* every participant doubles as a reclaimer: one scan per cycle *)
    ignore (Recovery.scan ~on_reclaim:emit_reclaimed rc ops : int);
    match
      Recovery.acquire rc ops
        ~on_grant:(fun n -> Sim.Sched.emit (Sim.Event.Acquired n))
    with
    | Recovery.Shed -> Sim.Sched.emit (Sim.Event.Note ("shed", i))
    | Recovery.Acquired lease ->
        (* the hold is spent heartbeating (writes, so still one shared
           access per held step), keeping the lease visibly alive *)
        for _ = 1 to max 1 (spec.hold i) do
          Recovery.heartbeat rc ops lease
        done;
        ignore
          (Recovery.release rc ops lease
             ~on_live:(fun n -> Sim.Sched.emit (Sim.Event.Released n))
            : bool)
  done;
  for _ = 1 to drain do
    ignore (Recovery.scan ~on_reclaim:emit_reclaimed rc ops : int)
  done
