type spec = { cycles : int; hold : int -> int; delay : int -> int }

let churn ?(hold = 1) ~cycles () = { cycles; hold = (fun _ -> hold); delay = (fun _ -> 0) }

let staggered ?(hold = 1) ~cycles ~stride ~index () =
  {
    cycles;
    hold = (fun _ -> hold);
    delay = (fun i -> if i = 0 then index * stride else 0);
  }

let bursty ~cycles ~seed =
  (* Hold/delay patterns must be a pure function of the cycle index so
     that model-checker re-executions replay identically; derive both
     from a stateless hash of (seed, i). *)
  let mix i salt =
    let h = ref (seed lxor (i * 0x9E3779B9) lxor salt) in
    h := !h lxor (!h lsr 16);
    h := !h * 0x45D9F3B land max_int;
    h := !h lxor (!h lsr 16);
    !h
  in
  { cycles; hold = (fun i -> mix i 1 mod 8); delay = (fun i -> mix i 2 mod 16) }

let slow_lane ?(lag = 6) ~cycles () =
  { cycles; hold = (fun _ -> lag); delay = (fun _ -> lag) }

let burst ~cycles ~burst_len ~pause =
  if burst_len < 1 then invalid_arg "Workload.burst: burst_len < 1";
  {
    cycles;
    hold = (fun _ -> 1);
    delay = (fun i -> if i > 0 && i mod burst_len = 0 then pause else 0);
  }

(* ----- server churn family (real-domain name-server load) ----- *)

type server_spec = {
  requests : int;
  source : int -> int;
  arrival : int -> float;
  think : int;
}

(* Stateless mix (splitmix-style, 62-bit-safe constants) so every
   derived stream is a pure function of (seed, index) and replays
   identically. *)
let mix64 seed i salt =
  let h = ref (seed lxor (i * 0x9E3779B97F4A7C1) lxor (salt * 0xBF58476D1CE4E5B)) in
  h := (!h lxor (!h lsr 30)) * 0xBF58476D1CE4E5B land max_int;
  h := (!h lxor (!h lsr 27)) * 0x94D049BB133111E land max_int;
  !h lxor (!h lsr 31)

(* Uniform in [0,1) from 52 mixed bits. *)
let uniform seed i salt =
  float_of_int (mix64 seed i salt land 0xF_FFFF_FFFF_FFFF) /. 4503599627370496.0

let zipf ?(theta = 0.99) ?(stream = 0) ~s ~seed () =
  if s < 1 then invalid_arg "Workload.zipf: s < 1";
  if theta <= 0. || theta >= 1. then invalid_arg "Workload.zipf: need 0 < theta < 1";
  (* Gray et al. / YCSB closed-form inverse of the Zipf CDF; zeta is
     the one O(s) precomputation, shared by every request. *)
  let zetan = ref 0. in
  for i = 1 to s do
    zetan := !zetan +. (1. /. Float.pow (float_of_int i) theta)
  done;
  let zetan = !zetan in
  let zeta2 = 1. +. Float.pow 0.5 theta in
  let alpha = 1. /. (1. -. theta) in
  let eta =
    if s = 1 then 0.
    else
      (1. -. Float.pow (2. /. float_of_int s) (1. -. theta))
      /. (1. -. (zeta2 /. zetan))
  in
  (* the draw stream is per caller; the rank -> name scramble below
     depends on [seed] alone, so every stream agrees on which names
     are hot and contends on them *)
  let sseed = mix64 seed stream 0x57E4 in
  fun i ->
    let u = uniform sseed i 0x51AF in
    let uz = u *. zetan in
    let rank =
      if uz < 1. then 0
      else if uz < zeta2 then 1
      else
        min (s - 1)
          (int_of_float (float_of_int s *. Float.pow ((eta *. u) -. eta +. 1.) alpha))
    in
    (* scramble the rank so the hot names are spread across the source
       space instead of clustering at 0..9 (every client still agrees:
       the scramble depends on the seed, not the client) *)
    if s = 1 then 0 else mix64 seed rank 0x2B5D mod s

let open_loop ~rate ~seed =
  if rate <= 0. then fun _ -> 0.
  else begin
    (* arrival(i) = sum of i exponential inter-arrival draws; memoised
       so the cost is O(1) per request asked in order.  The memo is
       client-local state — give every client its own generator. *)
    let cache = ref [| 0.0 |] in
    let filled = ref 1 in
    fun i ->
      if i < 0 then invalid_arg "Workload.open_loop: negative index";
      if i >= Array.length !cache then begin
        let grown = Array.make (max (i + 1) (2 * Array.length !cache)) 0.0 in
        Array.blit !cache 0 grown 0 !filled;
        cache := grown
      end;
      while !filled <= i do
        let k = !filled in
        let u = uniform seed k 0x7E11 in
        (* 1 - u avoids log 0 *)
        !cache.(k) <- !cache.(k - 1) -. (log (1. -. u) /. rate);
        incr filled
      done;
      !cache.(i)
  end

let server_churn ?(theta = 0.99) ?(rate = 0.) ?(think = 0) ~s ~requests ~seed ~client ()
    =
  let cseed = mix64 seed client 0xC11E in
  {
    requests;
    source = zipf ~theta ~stream:client ~s ~seed ();
    arrival = open_loop ~rate ~seed:cseed;
    think;
  }

let pin ~sources spec =
  let n = Array.length sources in
  if n = 0 then invalid_arg "Workload.pin: empty source table";
  { spec with source = (fun i -> sources.(spec.source i mod n)) }

let idle (ops : Shared_mem.Store.ops) ~work n =
  for _ = 1 to n do
    ignore (ops.read work)
  done

let run_cycle (type a l)
    (module P : Renaming.Protocol.S with type t = a and type lease = l) (inst : a) ~work spec
    i (ops : Shared_mem.Store.ops) =
  Sim.Sched.emit (Sim.Event.Note ("cycle", i));
  idle ops ~work (spec.delay i);
  let lease = P.get_name inst ops in
  Sim.Sched.emit (Sim.Event.Acquired (P.name_of inst lease));
  idle ops ~work (spec.hold i);
  Sim.Sched.emit (Sim.Event.Released (P.name_of inst lease));
  P.release_name inst ops lease

let body (type a) (module P : Renaming.Protocol.S with type t = a) (inst : a) ~work spec ops =
  for i = 0 to spec.cycles - 1 do
    run_cycle (module P) inst ~work spec i ops
  done

let rotating_body (type a) (module P : Renaming.Protocol.S with type t = a) (inst : a) ~work
    ~pids spec (ops : Shared_mem.Store.ops) =
  let n = Array.length pids in
  if n = 0 then invalid_arg "Workload.rotating_body: no pids";
  for i = 0 to spec.cycles - 1 do
    run_cycle (module P) inst ~work spec i { ops with pid = pids.(i mod n) }
  done

let emit_reclaimed ~pid:_ ~name ~latency:_ =
  Sim.Sched.emit (Sim.Event.Note ("reclaimed", name))

let resilient_body rc ~work ?(drain = 0) spec (ops : Shared_mem.Store.ops) =
  for i = 0 to spec.cycles - 1 do
    Sim.Sched.emit (Sim.Event.Note ("cycle", i));
    idle ops ~work (spec.delay i);
    (* every participant doubles as a reclaimer: one scan per cycle *)
    ignore (Recovery.scan ~on_reclaim:emit_reclaimed rc ops : int);
    match
      Recovery.acquire rc ops
        ~on_grant:(fun n -> Sim.Sched.emit (Sim.Event.Acquired n))
    with
    | Recovery.Shed -> Sim.Sched.emit (Sim.Event.Note ("shed", i))
    | Recovery.Acquired lease ->
        (* the hold is spent heartbeating (writes, so still one shared
           access per held step), keeping the lease visibly alive *)
        for _ = 1 to max 1 (spec.hold i) do
          Recovery.heartbeat rc ops lease
        done;
        ignore
          (Recovery.release rc ops lease
             ~on_live:(fun n -> Sim.Sched.emit (Sim.Event.Released n))
            : bool)
  done;
  for _ = 1 to drain do
    ignore (Recovery.scan ~on_reclaim:emit_reclaimed rc ops : int)
  done
