(** Fault campaigns: adversarial discrimination testing.

    A campaign runs a protocol harness under many (fault plan, random
    schedule) pairs, all derived deterministically from a fixed seed
    matrix ({!default_seeds}).  The point is {e discrimination}: every
    deliberately broken variant in {!Renaming.Mutations} must be killed
    (some pair makes a monitor raise), while every correct protocol
    must survive the whole matrix.  A checker that cannot tell the two
    apart proves nothing; this module is the standing evidence that
    ours can.

    Each {!target} packages a fresh-config builder (the same shape the
    model checker uses) together with the note tags its bodies emit —
    {!Sim.Faults.gen} aims triggers at those tags — and whether the
    harness is expected to survive.  Reproduction is by construction:
    a {!finding} carries the matrix seed, the generated plan, the
    schedule seed and the taken schedule, and
    [renaming-cli faults --target T --plan P --seed S] replays it. *)

type target = {
  name : string;
  correct : bool;  (** Expected to survive the matrix. *)
  nprocs : int;
  tags : string list;  (** Note tags the bodies emit, for plan generation. *)
  max_access : int;  (** Upper bound for generated [At_access] triggers. *)
  sched_per_plan : int;  (** Random schedules tried per generated plan. *)
  builder : Sim.Model_check.builder;
}

val targets : unit -> target list
(** All campaign targets: the correct protocols (splitter, split,
    pf_mutex, ma, filter, pipeline) followed by every mutant
    ([mutant:...]). *)

val find : string -> target option
(** Look a target up by {!target.name}. *)

type finding = {
  seed : int;  (** Matrix seed the plan was generated from. *)
  sched_seed : int;  (** Seed of the violating random schedule. *)
  plan : Sim.Faults.plan;
  message : string;
  schedule : int list;  (** Choices taken, replayable via {!replay}. *)
}

type outcome = {
  target : string;
  correct : bool;
  runs : int;  (** (plan, schedule) pairs executed. *)
  finding : finding option;
      (** First finding — a kill for a mutant (expected), a bug for a
          correct target (campaign failure). *)
}

val default_seeds : int list
(** The fixed 32-seed matrix CI runs. *)

val run_once :
  ?max_steps:int ->
  target ->
  Sim.Faults.plan ->
  sched_seed:int ->
  (string * int list) option
(** One run of the target under the plan and the seeded random
    schedule; [Some (message, schedule)] if a monitor raised or the run
    failed to complete within [max_steps] (default [200_000]) — the
    wait-freedom budget: non-faulty processes of a correct target must
    finish no matter where victims stall. *)

val run_target :
  ?seeds:int list -> ?max_steps:int -> target -> outcome
(** The full matrix against one target.  For each matrix seed, a plan
    is generated ({!Sim.Faults.gen}, seeded from the matrix seed) and
    tried under [target.sched_per_plan] derived schedule seeds.
    Mutants stop at the first kill; correct targets always execute the
    whole matrix. *)

val run_all : ?seeds:int list -> ?max_steps:int -> unit -> outcome list

val ok : outcome list -> bool
(** Every mutant killed and every correct target clean. *)

val shrink :
  ?max_steps:int -> target -> finding -> Sim.Model_check.violation option
(** Delta-debug the finding's schedule under its plan
    ({!Sim.Model_check.minimize}); [None] if the finding does not
    replay (e.g. a wait-freedom timeout rather than a monitor
    violation). *)

val replay :
  ?max_steps:int -> target -> Sim.Faults.plan -> int list ->
  (unit, Sim.Model_check.violation) result
(** Deterministically re-execute a recorded schedule under a plan. *)

val pp_outcome : Format.formatter -> outcome -> unit
val report_json : seeds:int list -> outcome list -> string
(** One JSON document (["renaming.faults/v1"]) with one entry per
    target and the overall verdict. *)
