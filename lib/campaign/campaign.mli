(** Fault campaigns: adversarial discrimination testing.

    A campaign runs a protocol harness under many (fault plan, random
    schedule) pairs, all derived deterministically from a fixed seed
    matrix ({!default_seeds}).  The point is {e discrimination}: every
    deliberately broken variant in {!Renaming.Mutations} must be killed
    (some pair makes a monitor raise), while every correct protocol
    must survive the whole matrix.  A checker that cannot tell the two
    apart proves nothing; this module is the standing evidence that
    ours can.

    Each {!target} packages a fresh-config builder (the same shape the
    model checker uses) together with the note tags its bodies emit —
    {!Sim.Faults.gen} aims triggers at those tags — and whether the
    harness is expected to survive.  Reproduction is by construction:
    a {!finding} carries the matrix seed, the generated plan, the
    schedule seed and the taken schedule, and
    [renaming-cli faults --target T --plan P --seed S] replays it. *)

type target = {
  name : string;
  correct : bool;  (** Expected to survive the matrix. *)
  nprocs : int;
  tags : string list;  (** Note tags the bodies emit, for plan generation. *)
  max_access : int;  (** Upper bound for generated [At_access] triggers. *)
  sched_per_plan : int;  (** Random schedules tried per generated plan. *)
  builder : Sim.Model_check.builder;
}

val targets : unit -> target list
(** All campaign targets: the correct protocols (splitter, split,
    pf_mutex, ma, filter, pipeline) followed by every mutant
    ([mutant:...]). *)

val find : string -> target option
(** Look a target up by {!target.name}. *)

type finding = {
  seed : int;  (** Matrix seed the plan was generated from. *)
  sched_seed : int;  (** Seed of the violating random schedule. *)
  plan : Sim.Faults.plan;
  message : string;
  schedule : int list;  (** Choices taken, replayable via {!replay}. *)
}

type outcome = {
  target : string;
  correct : bool;
  runs : int;  (** (plan, schedule) pairs executed. *)
  finding : finding option;
      (** First finding — a kill for a mutant (expected), a bug for a
          correct target (campaign failure). *)
}

val default_seeds : int list
(** The fixed 32-seed matrix CI runs. *)

val run_once :
  ?max_steps:int ->
  target ->
  Sim.Faults.plan ->
  sched_seed:int ->
  (string * int list) option
(** One run of the target under the plan and the seeded random
    schedule; [Some (message, schedule)] if a monitor raised or the run
    failed to complete within [max_steps] (default [200_000]) — the
    wait-freedom budget: non-faulty processes of a correct target must
    finish no matter where victims stall. *)

val run_target :
  ?seeds:int list -> ?max_steps:int -> target -> outcome
(** The full matrix against one target.  For each matrix seed, a plan
    is generated ({!Sim.Faults.gen}, seeded from the matrix seed) and
    tried under [target.sched_per_plan] derived schedule seeds.
    Mutants stop at the first kill; correct targets always execute the
    whole matrix. *)

val run_all : ?seeds:int list -> ?max_steps:int -> unit -> outcome list

val ok : outcome list -> bool
(** Every mutant killed and every correct target clean. *)

val shrink :
  ?max_steps:int -> target -> finding -> Sim.Model_check.violation option
(** Delta-debug the finding's schedule under its plan
    ({!Sim.Model_check.minimize}); [None] if the finding does not
    replay (e.g. a wait-freedom timeout rather than a monitor
    violation). *)

val replay :
  ?max_steps:int -> target -> Sim.Faults.plan -> int list ->
  (unit, Sim.Model_check.violation) result
(** Deterministically re-execute a recorded schedule under a plan. *)

val pp_outcome : Format.formatter -> outcome -> unit
val report_json : seeds:int list -> outcome list -> string
(** One JSON document (["renaming.faults/v1"]) with one entry per
    target and the overall verdict. *)

(** {1 Crash campaigns}

    Discrimination along the crash-recovery axis.  The adversary is
    {!Sim.Faults.gen_crash}: processes dying while holding a name.
    Expectations are {e paired}: each protocol family appears twice,
    bare and wrapped in [lib/recovery].

    - A {b bare} target must stay safe (no uniqueness violation) but
      {b leak}: every run in which a crash fired must end with a name
      still held — the crashed holder took it to the grave.  A bare
      target that doesn't leak means the plan never bit, so the matrix
      proves nothing.
    - A {b recovered} target ([<family>+recovery]) must end every run
      with {e zero} names held — each crashed holder's lease expired
      within one TTL and its footprint was reset — with at least as
      many reclamations as fired crashes, still no violations, and no
      truncation.

    Recovered harnesses add a dedicated reclaimer process (excluded
    from the victim pool) that scans until every worker is finished or
    frozen and no lease is outstanding; workers run
    {!Workload.resilient_body}.  Everything is derived from the same
    seed matrix as the fault campaign, so reports are byte-identical
    across runs. *)

type crash_config = {
  ccfg : Sim.Model_check.config;
  held_now : unit -> (int * int) list;
      (** Names currently held per the harness's uniqueness monitor. *)
  recovery_stats : (unit -> Recovery.stats) option;
      (** [None] for bare targets. *)
  set_stop : (unit -> bool) -> unit;
      (** Inject the reclaimer's termination test (true once every
          worker is finished or frozen); no-op for bare targets. *)
}

type crash_target = {
  c_name : string;
  recovered : bool;
  c_nprocs : int;  (** Workers only; the reclaimer process is extra. *)
  c_max_cycle : int;  (** Upper bound for [On_acquire] crash triggers. *)
  c_sched_per_plan : int;
  c_builder : unit -> crash_config;
}

val crash_targets : unit -> crash_target list
(** The paired matrix: split, ma, filter, pipeline — each bare and
    [+recovery]. *)

val find_crash : string -> crash_target option

type crash_run = {
  crashed : int;  (** Crash faults that fired during the run. *)
  leaked : (int * int) list;  (** [(name, proc)] still held at the end. *)
  run_reclaimed : int;
  run_shed : int;
  failure : (string * int list) option;
      (** Violation or truncation, with the taken schedule. *)
}

val run_crash_once :
  ?max_steps:int ->
  crash_target ->
  Sim.Faults.plan ->
  sched_seed:int ->
  crash_run

val crash_plan_for : crash_target -> int -> Sim.Faults.plan
(** The crash plan the matrix derives from one seed (same seed-to-plan
    derivation as the fault campaign). *)

type crash_outcome = {
  crash_target_name : string;
  crash_recovered : bool;
  crash_runs : int;
  crashes_fired : int;
  leak_runs : int;  (** Runs that ended with at least one name held. *)
  total_reclaimed : int;
  total_shed : int;
  crash_finding : finding option;
}

val run_crash_target :
  ?seeds:int list -> ?max_steps:int -> crash_target -> crash_outcome

val run_all_crash :
  ?seeds:int list -> ?max_steps:int -> unit -> crash_outcome list

val crash_ok : crash_outcome list -> bool
(** Every target met its expectation and every matrix actually fired
    at least one crash. *)

val pp_crash_outcome : Format.formatter -> crash_outcome -> unit

val crash_report_json : seeds:int list -> crash_outcome list -> string
(** One JSON document (["renaming.crash/v1"]); deterministic, so
    byte-identical across runs of the same matrix. *)

(** {1 Chaos campaigns}

    Discrimination along the {e service} axis: whole-server fault
    plans against the resilient {!Server}/{!Churn} stack on real
    domains.  Each (matrix seed, fault) pair runs four closed-loop
    Zipf clients against a small sharded server (2 shards × k=4,
    warm capacity 1, reclaimer scans wall-paced at 100 µs) with
    client 1 as the victim,
    and asserts the self-healing contract:

    - zero uniqueness violations, ever;
    - zero leaked or outstanding leases after the settle epilogue,
      with every reclaim landing within {b two lease TTLs} of scans;
    - whole-run availability (granted / issued) at or above {b 0.90};
    - every quarantined shard rebuilt back to [Live] by the end.

    A matrix in which no client was ever declared dead fails
    {!chaos_ok} — it would prove the reclaimer nothing. *)

type chaos_fault =
  | Crash_holding  (** Victim crashes at a request boundary, leaking
                       its warm lease and possibly a claim. *)
  | Crash_mid_drain  (** Victim crashes inside a drain walk, orphaning
                         the pending chain it was retiring. *)
  | Crash_seat  (** Victim is pre-seated as the reclaimer, then
                    crashes holding the seat — someone must steal it. *)
  | Park_drainer  (** Victim parks mid-drain until every normal client
                      finishes — the wedged drainer. *)
  | Stall_hot_shard  (** All sources pinned to shard 0; victim stalls
                         400k spins holding one of its names. *)

val chaos_faults : chaos_fault list
val chaos_fault_name : chaos_fault -> string
val chaos_fault_of_name : string -> chaos_fault option

type chaos_outcome = {
  co_seed : int;
  co_fault : chaos_fault;
  co_violations : int;
  co_leaked : int;
  co_outstanding : int;
  co_reclaimed : int;
  co_reclaim_scans : int;  (** Worst staleness at reclaim, in scans. *)
  co_deaths : int;
  co_availability : float;  (** granted / issued, whole run. *)
  co_quarantines : int;
  co_rebuilds : int;
  co_seat_steals : int;
  co_settle : int;  (** Epilogue scans to reach zero outstanding. *)
  co_healthy : bool;  (** Every shard [Live] at the end. *)
  co_ok : bool;
  co_msg : string;  (** Failed criteria, empty when [co_ok]. *)
}

val chaos_config : Server.config
(** The fixed chaos geometry (exported so the CLI can echo it). *)

val chaos_policy : int -> Policy.t
(** The per-seed retry policy chaos clients run under. *)

val run_chaos_one : ?requests:int -> int -> chaos_fault -> chaos_outcome
(** One (seed, fault) cell of the matrix; [requests] (default 1500)
    per client. *)

val run_chaos :
  ?seeds:int list -> ?requests:int -> unit -> chaos_outcome list
(** The full matrix: every fault under every seed (default
    {!default_seeds} — 32 seeds × 5 faults). *)

val chaos_ok : chaos_outcome list -> bool
(** Every cell [co_ok], and at least one death fired somewhere. *)

val chaos_clean : ?requests:int -> seed:int -> unit -> Churn.report
(** The same geometry and policy with {e no} fault plan — the
    availability/warm-path baseline the chaos bench gates against. *)

val pp_chaos_outcome : Format.formatter -> chaos_outcome -> unit

val chaos_report_json : seeds:int list -> chaos_outcome list -> string
(** One JSON document (["renaming.chaos/v1"]): per-run entries, a
    per-fault summary table, and the headline ["chaos_availability"]
    (the matrix-wide minimum). *)
