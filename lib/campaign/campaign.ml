open Shared_mem
module MC = Sim.Model_check
module Mut = Renaming.Mutations

type target = {
  name : string;
  correct : bool;
  nprocs : int;
  tags : string list;
  max_access : int;
  sched_per_plan : int;
  builder : MC.builder;
}

type finding = {
  seed : int;
  sched_seed : int;
  plan : Sim.Faults.plan;
  message : string;
  schedule : int list;
}

type outcome = {
  target : string;
  correct : bool;
  runs : int;
  finding : finding option;
}

(* ----- harness builders (mirror the mutation-test harnesses) ----- *)

(* Two processes racing a mutex block; the [cs]/[cs_exit] notes feed an
   exclusion monitor.  [make layout] returns one full enter/spin/release
   cycle for a direction — the only protocol-specific part. *)
let mutex_config ~cycles make () : MC.config =
  let layout = Layout.create () in
  let cycle = make layout in
  let in_cs = ref 0 in
  let body dir ops =
    for _ = 1 to cycles do
      cycle dir ops
    done
  in
  {
    MC.layout;
    procs = [| (0, body 0); (1, body 1) |];
    monitor =
      Sim.Sched.monitor
        ~on_event:(fun _ _ ev ->
          match ev with
          | Sim.Event.Note ("cs", _) ->
              incr in_cs;
              if !in_cs > 1 then
                raise (MC.Violation "two processes in the critical section")
          | Sim.Event.Note ("cs_exit", _) -> decr in_cs
          | _ -> ())
        ();
  }

let pf_mutex_cycle layout =
  let b = Renaming.Pf_mutex.create layout in
  let work = Layout.alloc layout ~name:"work" 0 in
  fun dir (ops : Store.ops) ->
    let slot = Renaming.Pf_mutex.enter b ops ~dir in
    let rec spin n =
      if Renaming.Pf_mutex.check b ops ~dir slot then begin
        Sim.Sched.emit (Sim.Event.Note ("cs", dir));
        ignore (ops.read work);
        Sim.Sched.emit (Sim.Event.Note ("cs_exit", dir))
      end
      else if n > 0 then spin (n - 1)
    in
    spin 6;
    Renaming.Pf_mutex.release b ops ~dir slot

let mutant_mutex_cycle variant layout =
  let b = Mut.Mutant_mutex.create layout variant in
  let work = Layout.alloc layout ~name:"work" 0 in
  fun dir (ops : Store.ops) ->
    let slot = Mut.Mutant_mutex.enter b ops ~dir in
    let rec spin n =
      if Mut.Mutant_mutex.check b ops ~dir slot then begin
        Sim.Sched.emit (Sim.Event.Note ("cs", dir));
        ignore (ops.read work);
        Sim.Sched.emit (Sim.Event.Note ("cs_exit", dir))
      end
      else if n > 0 then spin (n - 1)
    in
    spin 6;
    Mut.Mutant_mutex.release b ops ~dir slot

(* Splitter occupancy harness (Theorem 5's prefix-closed bound). *)
let splitter_config ?(mutant : Mut.Mutant_splitter.variant option) ~procs ~cycles ()
    : MC.config =
  let layout = Layout.create () in
  let work = Layout.alloc layout ~name:"work" 0 in
  let o = Sim.Checks.occupancy () in
  let cycle =
    match mutant with
    | None ->
        let sp = Renaming.Splitter.create layout in
        fun (ops : Store.ops) ->
          Sim.Sched.emit (Sim.Event.Note ("begin", 0));
          let tok = Renaming.Splitter.enter sp ops in
          Sim.Sched.emit (Sim.Event.Note ("in", Renaming.Splitter.direction tok));
          ignore (ops.read work);
          Sim.Sched.emit (Sim.Event.Note ("out", Renaming.Splitter.direction tok));
          Renaming.Splitter.release sp ops tok;
          Sim.Sched.emit (Sim.Event.Note ("end", 0))
    | Some variant ->
        let sp = Mut.Mutant_splitter.create layout variant in
        fun (ops : Store.ops) ->
          Sim.Sched.emit (Sim.Event.Note ("begin", 0));
          let tok = Mut.Mutant_splitter.enter sp ops in
          Sim.Sched.emit (Sim.Event.Note ("in", Mut.Mutant_splitter.direction tok));
          ignore (ops.read work);
          Sim.Sched.emit (Sim.Event.Note ("out", Mut.Mutant_splitter.direction tok));
          Mut.Mutant_splitter.release sp ops tok;
          Sim.Sched.emit (Sim.Event.Note ("end", 0))
  in
  let body ops =
    for _ = 1 to cycles do
      cycle ops
    done
  in
  {
    MC.layout;
    procs = Array.init procs (fun p -> (p + 1, body));
    monitor = Sim.Checks.occupancy_monitor o;
  }

(* Uniqueness harness over any Protocol.S instance, bodies from the
   workload generators so they emit the [cycle] notes plans can target. *)
let proto_config (type a) (module P : Renaming.Protocol.S with type t = a)
    (make : Layout.t -> a) ~pids ~cycles () : MC.config =
  let layout = Layout.create () in
  let inst = make layout in
  let work = Layout.alloc layout ~name:"work" 0 in
  let spec = Workload.churn ~cycles () in
  let u = Sim.Checks.uniqueness ~name_space:(P.name_space inst) () in
  {
    MC.layout;
    procs =
      Array.map (fun pid -> (pid, Workload.body (module P) inst ~work spec)) pids;
    monitor = Sim.Checks.uniqueness_monitor u;
  }

(* The cost mutant stays unique, so the harness also meters every
   GetName and raises when one exceeds the Moir–Anderson bound — the
   same check the observe CLI applies to its metrics snapshot. *)
let costly_config ~k ~s ~pids ~cycles () : MC.config =
  let module M = Mut.Mutant_costly in
  let layout = Layout.create () in
  let m = M.create layout M.Quadratic_rescan ~k ~s in
  let work = Layout.alloc layout ~name:"work" 0 in
  let bound = (k * (s + 4)) + 1 in
  let u = Sim.Checks.uniqueness ~name_space:(M.name_space m) () in
  let body (ops : Store.ops) =
    let c = Store.counter () in
    let counted = Store.counting c ops in
    for _ = 1 to cycles do
      Store.reset c;
      let lease = M.get_name m counted in
      Sim.Sched.emit (Sim.Event.Note ("get_cost", Store.accesses c));
      Sim.Sched.emit (Sim.Event.Acquired (M.name_of m lease));
      ignore (ops.read work);
      Sim.Sched.emit (Sim.Event.Released (M.name_of m lease));
      M.release_name m counted lease
    done
  in
  let cost_monitor =
    Sim.Sched.monitor
      ~on_event:(fun _ _ ev ->
        match ev with
        | Sim.Event.Note ("get_cost", n) when n > bound ->
            raise
              (MC.Violation
                 (Printf.sprintf "GetName took %d accesses > bound %d" n bound))
        | _ -> ())
      ()
  in
  {
    MC.layout;
    procs = Array.map (fun pid -> (pid, body)) pids;
    monitor = Sim.Checks.combine [ Sim.Checks.uniqueness_monitor u; cost_monitor ];
  }

(* ----- the target list ----- *)

let proto_tags = [ "cycle" ]
let splitter_tags = [ "begin"; "in"; "out"; "end" ]
let mutex_tags = [ "cs"; "cs_exit" ]

let targets () =
  let filter_make layout =
    let k = 2 and s = 8 in
    let (p : Renaming.Params.filter_params) = Renaming.Params.choose ~k ~s in
    Renaming.Filter.create layout
      { k; d = p.d; z = p.z; s; participants = [| 1; 5 |] }
  in
  [
    {
      name = "splitter";
      correct = true;
      nprocs = 3;
      tags = splitter_tags;
      max_access = 16;
      sched_per_plan = 4;
      builder = splitter_config ~procs:3 ~cycles:2;
    };
    {
      name = "split";
      correct = true;
      nprocs = 3;
      tags = proto_tags;
      max_access = 32;
      sched_per_plan = 4;
      builder =
        proto_config
          (module Renaming.Split)
          (fun l -> Renaming.Split.create l ~k:3)
          ~pids:[| 1; 2; 3 |] ~cycles:2;
    };
    {
      name = "pf_mutex";
      correct = true;
      nprocs = 2;
      tags = mutex_tags;
      max_access = 24;
      sched_per_plan = 8;
      builder = mutex_config ~cycles:3 pf_mutex_cycle;
    };
    {
      name = "ma";
      correct = true;
      nprocs = 2;
      tags = proto_tags;
      max_access = 24;
      sched_per_plan = 4;
      builder =
        proto_config
          (module Renaming.Ma)
          (fun l -> Renaming.Ma.create l ~k:2 ~s:4)
          ~pids:[| 0; 2 |] ~cycles:2;
    };
    {
      name = "filter";
      correct = true;
      nprocs = 2;
      tags = proto_tags;
      max_access = 64;
      sched_per_plan = 4;
      builder =
        proto_config (module Renaming.Filter) filter_make ~pids:[| 1; 5 |] ~cycles:2;
    };
    {
      name = "pipeline";
      correct = true;
      nprocs = 2;
      tags = proto_tags;
      max_access = 64;
      sched_per_plan = 4;
      builder =
        proto_config
          (module Renaming.Pipeline)
          (fun l -> Renaming.Pipeline.create l ~k:2 ~s:16 ~participants:[| 3; 11 |])
          ~pids:[| 3; 11 |] ~cycles:1;
    };
    {
      name = "mutant:mutex-read-before-write";
      correct = false;
      nprocs = 2;
      tags = mutex_tags;
      max_access = 12;
      sched_per_plan = 8;
      builder = mutex_config ~cycles:1 (mutant_mutex_cycle Mut.Mutant_mutex.Read_before_write);
    };
    {
      name = "mutant:mutex-no-yield";
      correct = false;
      nprocs = 2;
      tags = mutex_tags;
      max_access = 12;
      sched_per_plan = 8;
      builder = mutex_config ~cycles:1 (mutant_mutex_cycle Mut.Mutant_mutex.No_yield);
    };
    {
      name = "mutant:mutex-turn-lost";
      correct = false;
      nprocs = 2;
      tags = mutex_tags;
      max_access = 48;
      sched_per_plan = 192;
      builder = mutex_config ~cycles:15 (mutant_mutex_cycle Mut.Mutant_mutex.Turn_lost_on_release);
    };
    {
      name = "mutant:splitter-no-interference";
      correct = false;
      nprocs = 2;
      tags = splitter_tags;
      max_access = 12;
      sched_per_plan = 8;
      builder =
        splitter_config ~mutant:Mut.Mutant_splitter.No_interference_check ~procs:2
          ~cycles:1;
    };
    {
      name = "mutant:splitter-no-advice-flip";
      correct = false;
      nprocs = 2;
      tags = splitter_tags;
      max_access = 16;
      sched_per_plan = 8;
      builder =
        splitter_config ~mutant:Mut.Mutant_splitter.No_advice_flip ~procs:2 ~cycles:2;
    };
    {
      name = "mutant:ma-no-recheck";
      correct = false;
      nprocs = 2;
      tags = proto_tags;
      max_access = 16;
      sched_per_plan = 8;
      builder =
        proto_config
          (module Mut.Mutant_ma)
          (fun l -> Mut.Mutant_ma.create l Mut.Mutant_ma.No_recheck ~k:2 ~s:3)
          ~pids:[| 0; 2 |] ~cycles:2;
    };
    {
      name = "mutant:ma-costly";
      correct = false;
      nprocs = 2;
      tags = proto_tags;
      max_access = 16;
      sched_per_plan = 2;
      builder = costly_config ~k:2 ~s:4 ~pids:[| 0; 2 |] ~cycles:1;
    };
  ]

let find name = List.find_opt (fun t -> t.name = name) (targets ())

(* ----- running ----- *)

let default_seeds = List.init 32 (fun i -> 0xFA17 + (i * 104729))

let run_once ?(max_steps = 200_000) tg plan ~sched_seed =
  let cfg = tg.builder () in
  let ctrl = Sim.Faults.controller plan in
  let monitor = Sim.Checks.combine [ cfg.MC.monitor; Sim.Faults.monitor ctrl ] in
  let t = Sim.Sched.create ~monitor cfg.MC.layout cfg.MC.procs in
  let rng = Sim.Rng.make sched_seed in
  let taken = ref [] in
  let strat _ en =
    let c = Sim.Rng.int rng (Array.length en) in
    taken := c :: !taken;
    en.(c)
  in
  let res =
    match Sim.Faults.run ~max_steps ctrl t strat with
    | (outcome : Sim.Sched.outcome) ->
        if outcome.truncated then
          (* non-faulty processes must finish whatever the plan does:
             running out of a generous step budget is a wait-freedom
             failure, not a long run *)
          Some
            ( Printf.sprintf "run did not settle within %d steps (wait-freedom)"
                max_steps,
              List.rev !taken )
        else None
    | exception MC.Violation message -> Some (message, List.rev !taken)
  in
  Sim.Sched.abort t;
  res

(* One plan per matrix seed, [sched_per_plan] schedules per plan; both
   derivations are pure functions of the matrix seed (rng.mli's seed
   contract), so a finding's (seed, plan, sched_seed) triple is a
   complete reproduction recipe. *)
let plan_for tg seed =
  Sim.Faults.gen
    (Sim.Rng.make (seed lxor 0x0F_AC_ED))
    ~nprocs:tg.nprocs ~tags:tg.tags ~max_access:tg.max_access ()

let sched_seed_for seed j = seed + (j * 31)

let run_target ?(seeds = default_seeds) ?max_steps (tg : target) =
  let runs = ref 0 in
  let finding = ref None in
  let stop_early = not tg.correct in
  List.iter
    (fun seed ->
      if not (stop_early && !finding <> None) then begin
        let plan = plan_for tg seed in
        for j = 0 to tg.sched_per_plan - 1 do
          if not (stop_early && !finding <> None) then begin
            incr runs;
            let sched_seed = sched_seed_for seed j in
            match run_once ?max_steps tg plan ~sched_seed with
            | Some (message, schedule) when !finding = None ->
                finding := Some { seed; sched_seed; plan; message; schedule }
            | _ -> ()
          end
        done
      end)
    seeds;
  { target = tg.name; correct = tg.correct; runs = !runs; finding = !finding }

let run_all ?seeds ?max_steps () =
  List.map (run_target ?seeds ?max_steps) (targets ())

let ok outcomes =
  List.for_all
    (fun o -> if o.correct then o.finding = None else o.finding <> None)
    outcomes

let shrink ?max_steps tg (f : finding) =
  MC.minimize ?max_steps ~faults:f.plan tg.builder f.schedule

let replay ?max_steps tg plan schedule = MC.replay ?max_steps ~faults:plan tg.builder schedule

(* ----- reporting ----- *)

let pp_outcome ppf o =
  match (o.correct, o.finding) with
  | true, None -> Fmt.pf ppf "%-32s clean (%d runs)" o.target o.runs
  | false, Some f ->
      Fmt.pf ppf "%-32s killed after %d runs (--plan '%s' --seed %d): %s" o.target
        o.runs
        (Sim.Faults.to_string f.plan)
        f.sched_seed f.message
  | true, Some f ->
      Fmt.pf ppf "%-32s UNEXPECTED VIOLATION (seed %d, sched %d, plan %s): %s"
        o.target f.seed f.sched_seed
        (Sim.Faults.to_string f.plan)
        f.message
  | false, None -> Fmt.pf ppf "%-32s MUTANT SURVIVED %d runs" o.target o.runs

let finding_json f =
  Printf.sprintf
    {|{"seed":%d,"sched_seed":%d,"plan":%S,"message":%S,"schedule":[%s]}|}
    f.seed f.sched_seed
    (Sim.Faults.to_string f.plan)
    f.message
    (String.concat "," (List.map string_of_int f.schedule))

let outcome_json o =
  let expected =
    if o.correct then o.finding = None else o.finding <> None
  in
  Printf.sprintf {|{"target":%S,"correct":%b,"runs":%d,"as_expected":%b,"finding":%s}|}
    o.target o.correct o.runs expected
    (match o.finding with None -> "null" | Some f -> finding_json f)

let report_json ~seeds outcomes =
  Printf.sprintf
    {|{"schema":"renaming.faults/v1","matrix_size":%d,"ok":%b,"targets":[%s]}|}
    (List.length seeds) (ok outcomes)
    (String.concat "," (List.map outcome_json outcomes))
