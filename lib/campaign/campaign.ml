open Shared_mem
module MC = Sim.Model_check
module Mut = Renaming.Mutations

type target = {
  name : string;
  correct : bool;
  nprocs : int;
  tags : string list;
  max_access : int;
  sched_per_plan : int;
  builder : MC.builder;
}

type finding = {
  seed : int;
  sched_seed : int;
  plan : Sim.Faults.plan;
  message : string;
  schedule : int list;
}

type outcome = {
  target : string;
  correct : bool;
  runs : int;
  finding : finding option;
}

(* ----- harness builders (mirror the mutation-test harnesses) ----- *)

(* Two processes racing a mutex block; the [cs]/[cs_exit] notes feed an
   exclusion monitor.  [make layout] returns one full enter/spin/release
   cycle for a direction — the only protocol-specific part. *)
let mutex_config ~cycles make () : MC.config =
  let layout = Layout.create () in
  let cycle = make layout in
  let in_cs = ref 0 in
  let body dir ops =
    for _ = 1 to cycles do
      cycle dir ops
    done
  in
  {
    MC.layout;
    procs = [| (0, body 0); (1, body 1) |];
    monitor =
      Sim.Sched.monitor
        ~on_event:(fun _ _ ev ->
          match ev with
          | Sim.Event.Note ("cs", _) ->
              incr in_cs;
              if !in_cs > 1 then
                raise (MC.Violation "two processes in the critical section")
          | Sim.Event.Note ("cs_exit", _) -> decr in_cs
          | _ -> ())
        ();
  }

let pf_mutex_cycle layout =
  let b = Renaming.Pf_mutex.create layout in
  let work = Layout.alloc layout ~name:"work" 0 in
  fun dir (ops : Store.ops) ->
    let slot = Renaming.Pf_mutex.enter b ops ~dir in
    let rec spin n =
      if Renaming.Pf_mutex.check b ops ~dir slot then begin
        Sim.Sched.emit (Sim.Event.Note ("cs", dir));
        ignore (ops.read work);
        Sim.Sched.emit (Sim.Event.Note ("cs_exit", dir))
      end
      else if n > 0 then spin (n - 1)
    in
    spin 6;
    Renaming.Pf_mutex.release b ops ~dir slot

let mutant_mutex_cycle variant layout =
  let b = Mut.Mutant_mutex.create layout variant in
  let work = Layout.alloc layout ~name:"work" 0 in
  fun dir (ops : Store.ops) ->
    let slot = Mut.Mutant_mutex.enter b ops ~dir in
    let rec spin n =
      if Mut.Mutant_mutex.check b ops ~dir slot then begin
        Sim.Sched.emit (Sim.Event.Note ("cs", dir));
        ignore (ops.read work);
        Sim.Sched.emit (Sim.Event.Note ("cs_exit", dir))
      end
      else if n > 0 then spin (n - 1)
    in
    spin 6;
    Mut.Mutant_mutex.release b ops ~dir slot

(* Splitter occupancy harness (Theorem 5's prefix-closed bound). *)
let splitter_config ?(mutant : Mut.Mutant_splitter.variant option) ~procs ~cycles ()
    : MC.config =
  let layout = Layout.create () in
  let work = Layout.alloc layout ~name:"work" 0 in
  let o = Sim.Checks.occupancy () in
  let cycle =
    match mutant with
    | None ->
        let sp = Renaming.Splitter.create layout in
        fun (ops : Store.ops) ->
          Sim.Sched.emit (Sim.Event.Note ("begin", 0));
          let tok = Renaming.Splitter.enter sp ops in
          Sim.Sched.emit (Sim.Event.Note ("in", Renaming.Splitter.direction tok));
          ignore (ops.read work);
          Sim.Sched.emit (Sim.Event.Note ("out", Renaming.Splitter.direction tok));
          Renaming.Splitter.release sp ops tok;
          Sim.Sched.emit (Sim.Event.Note ("end", 0))
    | Some variant ->
        let sp = Mut.Mutant_splitter.create layout variant in
        fun (ops : Store.ops) ->
          Sim.Sched.emit (Sim.Event.Note ("begin", 0));
          let tok = Mut.Mutant_splitter.enter sp ops in
          Sim.Sched.emit (Sim.Event.Note ("in", Mut.Mutant_splitter.direction tok));
          ignore (ops.read work);
          Sim.Sched.emit (Sim.Event.Note ("out", Mut.Mutant_splitter.direction tok));
          Mut.Mutant_splitter.release sp ops tok;
          Sim.Sched.emit (Sim.Event.Note ("end", 0))
  in
  let body ops =
    for _ = 1 to cycles do
      cycle ops
    done
  in
  {
    MC.layout;
    procs = Array.init procs (fun p -> (p + 1, body));
    monitor = Sim.Checks.occupancy_monitor o;
  }

(* Uniqueness harness over any Protocol.S instance, bodies from the
   workload generators so they emit the [cycle] notes plans can target. *)
let proto_config (type a) (module P : Renaming.Protocol.S with type t = a)
    (make : Layout.t -> a) ~pids ~cycles () : MC.config =
  let layout = Layout.create () in
  let inst = make layout in
  let work = Layout.alloc layout ~name:"work" 0 in
  let spec = Workload.churn ~cycles () in
  let u = Sim.Checks.uniqueness ~name_space:(P.name_space inst) () in
  {
    MC.layout;
    procs =
      Array.map (fun pid -> (pid, Workload.body (module P) inst ~work spec)) pids;
    monitor = Sim.Checks.uniqueness_monitor u;
  }

(* The cost mutant stays unique, so the harness also meters every
   GetName and raises when one exceeds the Moir–Anderson bound — the
   same check the observe CLI applies to its metrics snapshot. *)
let costly_config ~k ~s ~pids ~cycles () : MC.config =
  let module M = Mut.Mutant_costly in
  let layout = Layout.create () in
  let m = M.create layout M.Quadratic_rescan ~k ~s in
  let work = Layout.alloc layout ~name:"work" 0 in
  let bound = (k * (s + 4)) + 1 in
  let u = Sim.Checks.uniqueness ~name_space:(M.name_space m) () in
  let body (ops : Store.ops) =
    let c = Store.counter () in
    let counted = Store.counting c ops in
    for _ = 1 to cycles do
      Store.reset c;
      let lease = M.get_name m counted in
      Sim.Sched.emit (Sim.Event.Note ("get_cost", Store.accesses c));
      Sim.Sched.emit (Sim.Event.Acquired (M.name_of m lease));
      ignore (ops.read work);
      Sim.Sched.emit (Sim.Event.Released (M.name_of m lease));
      M.release_name m counted lease
    done
  in
  let cost_monitor =
    Sim.Sched.monitor
      ~on_event:(fun _ _ ev ->
        match ev with
        | Sim.Event.Note ("get_cost", n) when n > bound ->
            raise
              (MC.Violation
                 (Printf.sprintf "GetName took %d accesses > bound %d" n bound))
        | _ -> ())
      ()
  in
  {
    MC.layout;
    procs = Array.map (fun pid -> (pid, body)) pids;
    monitor = Sim.Checks.combine [ Sim.Checks.uniqueness_monitor u; cost_monitor ];
  }

(* ----- the target list ----- *)

let proto_tags = [ "cycle" ]
let splitter_tags = [ "begin"; "in"; "out"; "end" ]
let mutex_tags = [ "cs"; "cs_exit" ]

let targets () =
  let filter_make layout =
    let k = 2 and s = 8 in
    let (p : Renaming.Params.filter_params) = Renaming.Params.choose ~k ~s in
    Renaming.Filter.create layout
      { k; d = p.d; z = p.z; s; participants = [| 1; 5 |] }
  in
  [
    {
      name = "splitter";
      correct = true;
      nprocs = 3;
      tags = splitter_tags;
      max_access = 16;
      sched_per_plan = 4;
      builder = splitter_config ~procs:3 ~cycles:2;
    };
    {
      name = "split";
      correct = true;
      nprocs = 3;
      tags = proto_tags;
      max_access = 32;
      sched_per_plan = 4;
      builder =
        proto_config
          (module Renaming.Split)
          (fun l -> Renaming.Split.create l ~k:3)
          ~pids:[| 1; 2; 3 |] ~cycles:2;
    };
    {
      name = "pf_mutex";
      correct = true;
      nprocs = 2;
      tags = mutex_tags;
      max_access = 24;
      sched_per_plan = 8;
      builder = mutex_config ~cycles:3 pf_mutex_cycle;
    };
    {
      name = "ma";
      correct = true;
      nprocs = 2;
      tags = proto_tags;
      max_access = 24;
      sched_per_plan = 4;
      builder =
        proto_config
          (module Renaming.Ma)
          (fun l -> Renaming.Ma.create l ~k:2 ~s:4)
          ~pids:[| 0; 2 |] ~cycles:2;
    };
    {
      name = "filter";
      correct = true;
      nprocs = 2;
      tags = proto_tags;
      max_access = 64;
      sched_per_plan = 4;
      builder =
        proto_config (module Renaming.Filter) filter_make ~pids:[| 1; 5 |] ~cycles:2;
    };
    {
      name = "pipeline";
      correct = true;
      nprocs = 2;
      tags = proto_tags;
      max_access = 64;
      sched_per_plan = 4;
      builder =
        proto_config
          (module Renaming.Pipeline)
          (fun l -> Renaming.Pipeline.create l ~k:2 ~s:16 ~participants:[| 3; 11 |])
          ~pids:[| 3; 11 |] ~cycles:1;
    };
    {
      name = "level";
      correct = true;
      nprocs = 2;
      tags = proto_tags;
      max_access = 24;
      sched_per_plan = 4;
      builder =
        proto_config
          (module Renaming.Level_array)
          (fun l -> Renaming.Level_array.create l ~k:2)
          ~pids:[| 1; 4 |] ~cycles:2;
    };
    {
      name = "compact";
      correct = true;
      nprocs = 3;
      tags = proto_tags;
      max_access = 32;
      sched_per_plan = 4;
      builder =
        proto_config
          (module Renaming.Compact_split)
          (fun l -> Renaming.Compact_split.create l ~k:3)
          ~pids:[| 1; 2; 3 |] ~cycles:2;
    };
    {
      name = "mutant:mutex-read-before-write";
      correct = false;
      nprocs = 2;
      tags = mutex_tags;
      max_access = 12;
      sched_per_plan = 8;
      builder = mutex_config ~cycles:1 (mutant_mutex_cycle Mut.Mutant_mutex.Read_before_write);
    };
    {
      name = "mutant:mutex-no-yield";
      correct = false;
      nprocs = 2;
      tags = mutex_tags;
      max_access = 12;
      sched_per_plan = 8;
      builder = mutex_config ~cycles:1 (mutant_mutex_cycle Mut.Mutant_mutex.No_yield);
    };
    {
      name = "mutant:mutex-turn-lost";
      correct = false;
      nprocs = 2;
      tags = mutex_tags;
      max_access = 48;
      sched_per_plan = 192;
      builder = mutex_config ~cycles:15 (mutant_mutex_cycle Mut.Mutant_mutex.Turn_lost_on_release);
    };
    {
      name = "mutant:splitter-no-interference";
      correct = false;
      nprocs = 2;
      tags = splitter_tags;
      max_access = 12;
      sched_per_plan = 8;
      builder =
        splitter_config ~mutant:Mut.Mutant_splitter.No_interference_check ~procs:2
          ~cycles:1;
    };
    {
      name = "mutant:splitter-no-advice-flip";
      correct = false;
      nprocs = 2;
      tags = splitter_tags;
      max_access = 16;
      sched_per_plan = 8;
      builder =
        splitter_config ~mutant:Mut.Mutant_splitter.No_advice_flip ~procs:2 ~cycles:2;
    };
    {
      name = "mutant:ma-no-recheck";
      correct = false;
      nprocs = 2;
      tags = proto_tags;
      max_access = 16;
      sched_per_plan = 8;
      builder =
        proto_config
          (module Mut.Mutant_ma)
          (fun l -> Mut.Mutant_ma.create l Mut.Mutant_ma.No_recheck ~k:2 ~s:3)
          ~pids:[| 0; 2 |] ~cycles:2;
    };
    {
      name = "mutant:level-torn-claim";
      correct = false;
      nprocs = 2;
      tags = proto_tags;
      max_access = 12;
      sched_per_plan = 8;
      builder =
        proto_config
          (module Mut.Mutant_level)
          (fun l -> Mut.Mutant_level.create l Mut.Mutant_level.Torn_claim ~k:2)
          ~pids:[| 1; 4 |] ~cycles:2;
    };
    {
      name = "mutant:compact-no-interference";
      correct = false;
      nprocs = 2;
      tags = proto_tags;
      max_access = 12;
      sched_per_plan = 8;
      builder =
        proto_config
          (module Mut.Mutant_compact)
          (fun l -> Mut.Mutant_compact.create l ~k:2)
          ~pids:[| 1; 4 |] ~cycles:2;
    };
    {
      name = "mutant:ma-costly";
      correct = false;
      nprocs = 2;
      tags = proto_tags;
      max_access = 16;
      sched_per_plan = 2;
      builder = costly_config ~k:2 ~s:4 ~pids:[| 0; 2 |] ~cycles:1;
    };
  ]

let find name = List.find_opt (fun t -> t.name = name) (targets ())

(* ----- running ----- *)

let default_seeds = List.init 32 (fun i -> 0xFA17 + (i * 104729))

let run_once ?(max_steps = 200_000) tg plan ~sched_seed =
  let cfg = tg.builder () in
  let ctrl = Sim.Faults.controller plan in
  let monitor = Sim.Checks.combine [ cfg.MC.monitor; Sim.Faults.monitor ctrl ] in
  let t = Sim.Sched.create ~monitor cfg.MC.layout cfg.MC.procs in
  let rng = Sim.Rng.make sched_seed in
  let taken = ref [] in
  let strat _ en =
    let c = Sim.Rng.int rng (Array.length en) in
    taken := c :: !taken;
    en.(c)
  in
  let res =
    match Sim.Faults.run ~max_steps ctrl t strat with
    | (outcome : Sim.Sched.outcome) ->
        if outcome.truncated then
          (* non-faulty processes must finish whatever the plan does:
             running out of a generous step budget is a wait-freedom
             failure, not a long run *)
          Some
            ( Printf.sprintf "run did not settle within %d steps (wait-freedom)"
                max_steps,
              List.rev !taken )
        else None
    | exception MC.Violation message -> Some (message, List.rev !taken)
  in
  Sim.Sched.abort t;
  res

(* One plan per matrix seed, [sched_per_plan] schedules per plan; both
   derivations are pure functions of the matrix seed (rng.mli's seed
   contract), so a finding's (seed, plan, sched_seed) triple is a
   complete reproduction recipe. *)
let plan_for tg seed =
  Sim.Faults.gen
    (Sim.Rng.make (seed lxor 0x0F_AC_ED))
    ~nprocs:tg.nprocs ~tags:tg.tags ~max_access:tg.max_access ()

let sched_seed_for seed j = seed + (j * 31)

let run_target ?(seeds = default_seeds) ?max_steps (tg : target) =
  let runs = ref 0 in
  let finding = ref None in
  let stop_early = not tg.correct in
  List.iter
    (fun seed ->
      if not (stop_early && !finding <> None) then begin
        let plan = plan_for tg seed in
        for j = 0 to tg.sched_per_plan - 1 do
          if not (stop_early && !finding <> None) then begin
            incr runs;
            let sched_seed = sched_seed_for seed j in
            match run_once ?max_steps tg plan ~sched_seed with
            | Some (message, schedule) when !finding = None ->
                finding := Some { seed; sched_seed; plan; message; schedule }
            | _ -> ()
          end
        done
      end)
    seeds;
  { target = tg.name; correct = tg.correct; runs = !runs; finding = !finding }

let run_all ?seeds ?max_steps () =
  List.map (run_target ?seeds ?max_steps) (targets ())

let ok outcomes =
  List.for_all
    (fun o -> if o.correct then o.finding = None else o.finding <> None)
    outcomes

let shrink ?max_steps tg (f : finding) =
  MC.minimize ?max_steps ~faults:f.plan tg.builder f.schedule

let replay ?max_steps tg plan schedule = MC.replay ?max_steps ~faults:plan tg.builder schedule

(* ----- reporting ----- *)

let pp_outcome ppf o =
  match (o.correct, o.finding) with
  | true, None -> Fmt.pf ppf "%-32s clean (%d runs)" o.target o.runs
  | false, Some f ->
      Fmt.pf ppf "%-32s killed after %d runs (--plan '%s' --seed %d): %s" o.target
        o.runs
        (Sim.Faults.to_string f.plan)
        f.sched_seed f.message
  | true, Some f ->
      Fmt.pf ppf "%-32s UNEXPECTED VIOLATION (seed %d, sched %d, plan %s): %s"
        o.target f.seed f.sched_seed
        (Sim.Faults.to_string f.plan)
        f.message
  | false, None -> Fmt.pf ppf "%-32s MUTANT SURVIVED %d runs" o.target o.runs

let finding_json f =
  Printf.sprintf
    {|{"seed":%d,"sched_seed":%d,"plan":%S,"message":%S,"schedule":[%s]}|}
    f.seed f.sched_seed
    (Sim.Faults.to_string f.plan)
    f.message
    (String.concat "," (List.map string_of_int f.schedule))

let outcome_json o =
  let expected =
    if o.correct then o.finding = None else o.finding <> None
  in
  Printf.sprintf {|{"target":%S,"correct":%b,"runs":%d,"as_expected":%b,"finding":%s}|}
    o.target o.correct o.runs expected
    (match o.finding with None -> "null" | Some f -> finding_json f)

let report_json ~seeds outcomes =
  Printf.sprintf
    {|{"schema":"renaming.faults/v1","matrix_size":%d,"ok":%b,"targets":[%s]}|}
    (List.length seeds) (ok outcomes)
    (String.concat "," (List.map outcome_json outcomes))

(* ----- crash campaigns -----

   Discrimination with a different axis than the mutants: the adversary
   is [Faults.gen_crash] — processes dying while holding a name.  A
   correct {e bare} protocol survives in the safety sense but leaks the
   name forever (that IS the failure mode this PR exists for); the same
   protocol under the recovery wrapper must reclaim every leaked name
   and finish with none held.  A matrix where the bare targets don't
   leak, or the recovered ones do, proves the harness can't tell the
   difference and the layer is untested. *)

type crash_config = {
  ccfg : MC.config;
  held_now : unit -> (int * int) list;
  recovery_stats : (unit -> Recovery.stats) option;
  set_stop : (unit -> bool) -> unit;
      (* inject the reclaimer's termination test once the scheduler
         exists; a no-op for bare targets *)
}

type crash_target = {
  c_name : string;
  recovered : bool;
  c_nprocs : int;  (* worker count; the reclaimer process is extra *)
  c_max_cycle : int;
  c_sched_per_plan : int;
  c_builder : unit -> crash_config;
}

let bare_crash_config (type a) (module P : Renaming.Protocol.S with type t = a)
    (make : Layout.t -> a) ~pids ~cycles () : crash_config =
  let layout = Layout.create () in
  let inst = make layout in
  let work = Layout.alloc layout ~name:"work" 0 in
  let spec = Workload.churn ~cycles () in
  let u = Sim.Checks.uniqueness ~name_space:(P.name_space inst) () in
  {
    ccfg =
      {
        MC.layout;
        procs =
          Array.map (fun pid -> (pid, Workload.body (module P) inst ~work spec)) pids;
        monitor = Sim.Checks.uniqueness_monitor u;
      };
    held_now = (fun () -> Sim.Checks.held_now u);
    recovery_stats = None;
    set_stop = (fun _ -> ());
  }

let recovered_crash_config (type a) (module P : Renaming.Protocol.S with type t = a)
    (make : Layout.t -> a) ~pids ~cycles ~lease_ttl () : crash_config =
  let layout = Layout.create () in
  let inst = make layout in
  let rc =
    Recovery.create
      (module P)
      inst ~layout ~pids
      (Recovery.default_config ~lease_ttl ~capacity:(Array.length pids) ())
  in
  let work = Layout.alloc layout ~name:"work" 0 in
  let spec = Workload.churn ~cycles () in
  let u = Sim.Checks.uniqueness ~name_space:(P.name_space inst) () in
  let stop = ref (fun () -> false) in
  (* never a legal source name here, and the reclaimer never acquires *)
  let reclaimer_pid = 1 + Array.fold_left max 0 pids in
  let reclaimer (ops : Store.ops) =
    (* hard budget so a reclamation bug shows up as a leak in the
       verdict instead of hanging the run *)
    let budget = ref 10_000 in
    while (not (!stop ()) || Recovery.outstanding rc > 0) && !budget > 0 do
      decr budget;
      (* the idle read guarantees one shared access per iteration, so
         the loop always yields to the scheduler even when there is
         nothing to scan *)
      ignore (ops.read work);
      ignore
        (Recovery.scan rc ops ~on_reclaim:(fun ~pid:_ ~name ~latency:_ ->
             Sim.Sched.emit (Sim.Event.Note ("reclaimed", name)))
          : int)
    done
  in
  {
    ccfg =
      {
        MC.layout;
        procs =
          Array.append
            (Array.map (fun pid -> (pid, Workload.resilient_body rc ~work spec)) pids)
            [| (reclaimer_pid, reclaimer) |];
        monitor = Sim.Checks.uniqueness_monitor u;
      };
    held_now = (fun () -> Sim.Checks.held_now u);
    recovery_stats = Some (fun () -> Recovery.stats rc);
    set_stop = (fun f -> stop := f);
  }

let crash_targets () =
  let family c_name bare recov ~nprocs =
    let base recovered c_builder name =
      {
        c_name = name;
        recovered;
        c_nprocs = nprocs;
        c_max_cycle = 2;
        c_sched_per_plan = 4;
        c_builder;
      }
    in
    [ base false bare c_name; base true recov (c_name ^ "+recovery") ]
  in
  let filter_make layout =
    let k = 2 and s = 8 in
    let (p : Renaming.Params.filter_params) = Renaming.Params.choose ~k ~s in
    Renaming.Filter.create layout
      { k; d = p.d; z = p.z; s; participants = [| 1; 5 |] }
  in
  let split_make l = Renaming.Split.create l ~k:3 in
  let ma_make l = Renaming.Ma.create l ~k:2 ~s:4 in
  let pipeline_make l = Renaming.Pipeline.create l ~k:2 ~s:16 ~participants:[| 3; 11 |] in
  let level_make l = Renaming.Level_array.create l ~k:2 in
  let compact_make l = Renaming.Compact_split.create l ~k:3 in
  List.concat
    [
      family "split"
        (bare_crash_config (module Renaming.Split) split_make ~pids:[| 1; 2; 3 |] ~cycles:2)
        (recovered_crash_config
           (module Renaming.Split)
           split_make ~pids:[| 1; 2; 3 |] ~cycles:2 ~lease_ttl:4)
        ~nprocs:3;
      family "level"
        (bare_crash_config (module Renaming.Level_array) level_make ~pids:[| 1; 4 |] ~cycles:2)
        (recovered_crash_config
           (module Renaming.Level_array)
           level_make ~pids:[| 1; 4 |] ~cycles:2 ~lease_ttl:4)
        ~nprocs:2;
      family "compact"
        (bare_crash_config
           (module Renaming.Compact_split)
           compact_make ~pids:[| 1; 2; 3 |] ~cycles:2)
        (recovered_crash_config
           (module Renaming.Compact_split)
           compact_make ~pids:[| 1; 2; 3 |] ~cycles:2 ~lease_ttl:4)
        ~nprocs:3;
      family "ma"
        (bare_crash_config (module Renaming.Ma) ma_make ~pids:[| 0; 2 |] ~cycles:2)
        (recovered_crash_config
           (module Renaming.Ma)
           ma_make ~pids:[| 0; 2 |] ~cycles:2 ~lease_ttl:4)
        ~nprocs:2;
      family "filter"
        (bare_crash_config (module Renaming.Filter) filter_make ~pids:[| 1; 5 |] ~cycles:2)
        (recovered_crash_config
           (module Renaming.Filter)
           filter_make ~pids:[| 1; 5 |] ~cycles:2 ~lease_ttl:4)
        ~nprocs:2;
      family "pipeline"
        (bare_crash_config (module Renaming.Pipeline) pipeline_make ~pids:[| 3; 11 |] ~cycles:2)
        (recovered_crash_config
           (module Renaming.Pipeline)
           pipeline_make ~pids:[| 3; 11 |] ~cycles:2 ~lease_ttl:4)
        ~nprocs:2;
    ]

let find_crash name = List.find_opt (fun t -> t.c_name = name) (crash_targets ())

let crash_plan_for tg seed =
  Sim.Faults.gen_crash
    (Sim.Rng.make (seed lxor 0x0F_AC_ED))
    ~nprocs:tg.c_nprocs ~max_cycle:tg.c_max_cycle ()

type crash_run = {
  crashed : int;  (* crash faults that fired *)
  leaked : (int * int) list;  (* names still held at the end *)
  run_reclaimed : int;
  run_shed : int;
  failure : (string * int list) option;
}

let run_crash_once ?(max_steps = 200_000) (tg : crash_target) plan ~sched_seed =
  let cc = tg.c_builder () in
  let ctrl = Sim.Faults.controller plan in
  let monitor = Sim.Checks.combine [ cc.ccfg.MC.monitor; Sim.Faults.monitor ctrl ] in
  let t = Sim.Sched.create ~monitor cc.ccfg.MC.layout cc.ccfg.MC.procs in
  (* the reclaimer drains once every worker is finished or frozen *)
  cc.set_stop (fun () ->
      let frozen = Sim.Faults.parked ctrl in
      let rec all i =
        i >= tg.c_nprocs
        || ((Sim.Sched.finished t i || List.mem i frozen) && all (i + 1))
      in
      all 0);
  let rng = Sim.Rng.make sched_seed in
  let taken = ref [] in
  let strat _ en =
    let c = Sim.Rng.int rng (Array.length en) in
    taken := c :: !taken;
    en.(c)
  in
  let failure =
    match Sim.Faults.run ~max_steps ctrl t strat with
    | (outcome : Sim.Sched.outcome) ->
        if outcome.truncated then
          Some
            ( Printf.sprintf "run did not settle within %d steps (wait-freedom)"
                max_steps,
              List.rev !taken )
        else None
    | exception MC.Violation message -> Some (message, List.rev !taken)
  in
  Sim.Sched.abort t;
  let run_reclaimed, run_shed =
    match cc.recovery_stats with
    | None -> (0, 0)
    | Some stats ->
        let (s : Recovery.stats) = stats () in
        (s.reclaimed, s.shed)
  in
  {
    crashed = List.length (Sim.Faults.crashed ctrl);
    leaked = cc.held_now ();
    run_reclaimed;
    run_shed;
    failure;
  }

type crash_outcome = {
  crash_target_name : string;
  crash_recovered : bool;
  crash_runs : int;
  crashes_fired : int;
  leak_runs : int;
  total_reclaimed : int;
  total_shed : int;
  crash_finding : finding option;
}

let run_crash_target ?(seeds = default_seeds) ?max_steps (tg : crash_target) =
  let runs = ref 0 in
  let crashes_fired = ref 0 in
  let leak_runs = ref 0 in
  let total_reclaimed = ref 0 in
  let total_shed = ref 0 in
  let finding = ref None in
  List.iter
    (fun seed ->
      let plan = crash_plan_for tg seed in
      for j = 0 to tg.c_sched_per_plan - 1 do
        incr runs;
        let sched_seed = sched_seed_for seed j in
        let r = run_crash_once ?max_steps tg plan ~sched_seed in
        crashes_fired := !crashes_fired + r.crashed;
        if r.leaked <> [] then incr leak_runs;
        total_reclaimed := !total_reclaimed + r.run_reclaimed;
        total_shed := !total_shed + r.run_shed;
        let note message schedule =
          if !finding = None then
            finding := Some { seed; sched_seed; plan; message; schedule }
        in
        match r.failure with
        | Some (message, schedule) -> note message schedule
        | None ->
            if tg.recovered then begin
              if r.leaked <> [] then
                note
                  (Printf.sprintf "%d name(s) still held after the run: reclamation failed"
                     (List.length r.leaked))
                  [];
              if r.run_reclaimed < r.crashed then
                note
                  (Printf.sprintf "%d crash(es) fired but only %d lease(s) reclaimed"
                     r.crashed r.run_reclaimed)
                  []
            end
            else if r.crashed > 0 && r.leaked = [] then
              (* a bare protocol surviving a crash-holding plan without a
                 leak means the plan never actually bit — the matrix
                 proves nothing *)
              note "crash fired under the bare protocol yet no name leaked" []
      done)
    seeds;
  {
    crash_target_name = tg.c_name;
    crash_recovered = tg.recovered;
    crash_runs = !runs;
    crashes_fired = !crashes_fired;
    leak_runs = !leak_runs;
    total_reclaimed = !total_reclaimed;
    total_shed = !total_shed;
    crash_finding = !finding;
  }

let run_all_crash ?seeds ?max_steps () =
  List.map (run_crash_target ?seeds ?max_steps) (crash_targets ())

let crash_ok outcomes =
  List.for_all
    (fun o -> o.crash_finding = None && o.crashes_fired >= 1)
    outcomes

let pp_crash_outcome ppf o =
  match o.crash_finding with
  | None ->
      Fmt.pf ppf "%-24s %s  %d runs, %d crashes, %d leak-runs, %d reclaimed, %d shed"
        o.crash_target_name
        (if o.crash_recovered then "survived " else "leaked   ")
        o.crash_runs o.crashes_fired o.leak_runs o.total_reclaimed o.total_shed
  | Some f ->
      Fmt.pf ppf "%-24s FAILED (seed %d, sched %d, plan %s): %s" o.crash_target_name
        f.seed f.sched_seed
        (Sim.Faults.to_string f.plan)
        f.message

let crash_outcome_json o =
  Printf.sprintf
    {|{"target":%S,"recovered":%b,"runs":%d,"crashes":%d,"leak_runs":%d,"reclaimed":%d,"shed":%d,"as_expected":%b,"finding":%s}|}
    o.crash_target_name o.crash_recovered o.crash_runs o.crashes_fired o.leak_runs
    o.total_reclaimed o.total_shed
    (o.crash_finding = None && o.crashes_fired >= 1)
    (match o.crash_finding with None -> "null" | Some f -> finding_json f)

let crash_report_json ~seeds outcomes =
  Printf.sprintf
    {|{"schema":"renaming.crash/v1","matrix_size":%d,"ok":%b,"targets":[%s]}|}
    (List.length seeds) (crash_ok outcomes)
    (String.concat "," (List.map crash_outcome_json outcomes))

(* ----- chaos campaigns: killing the name server -----

   The third discrimination axis: whole-server fault plans against the
   resilient [Server]/[Churn] stack on real domains.  Where the crash
   campaign kills simulated processes around one protocol instance,
   chaos kills {e service} roles — a client holding leases, a drainer
   mid-walk, the reclaimer-seat holder, a hot shard's tenant — and
   asserts the self-healing contract: no uniqueness violation ever,
   every leaked lease reclaimed within two lease TTLs of scans, the
   live clients' availability above a floor, and every quarantined
   shard rebuilt back to live by the end.  Everything derives from the
   same seed matrix as the other campaigns. *)

type chaos_fault =
  | Crash_holding
  | Crash_mid_drain
  | Crash_seat
  | Park_drainer
  | Stall_hot_shard

let chaos_faults =
  [ Crash_holding; Crash_mid_drain; Crash_seat; Park_drainer; Stall_hot_shard ]

let chaos_fault_name = function
  | Crash_holding -> "crash-holding"
  | Crash_mid_drain -> "crash-mid-drain"
  | Crash_seat -> "crash-seat"
  | Park_drainer -> "park-drainer"
  | Stall_hot_shard -> "stall-hot-shard"

let chaos_fault_of_name = function
  | "crash-holding" -> Some Crash_holding
  | "crash-mid-drain" -> Some Crash_mid_drain
  | "crash-seat" -> Some Crash_seat
  | "park-drainer" -> Some Park_drainer
  | "stall-hot-shard" -> Some Stall_hot_shard
  | _ -> None

(* Small geometry so faults bite: 2 shards of k = 4 under 4 clients
   gives real admission pressure, warm capacity 1 means a crashed
   client always leaks its cached lease, and scans are wall-paced at
   100 us so a preempted-but-live client is not instantly mistaken
   for a corpse. *)
let chaos_resilience =
  {
    Server.scan_interval_ns = 100_000;
    lease_ttl = 30;
    seat_ttl = 10;
    tend_every = 8;
    degrade_sheds = 32;
    quarantine_leaks = 1;
    drain_stale = 4;
  }

let chaos_sources = 128

let chaos_config =
  Server.default_config ~shards:2 ~k_per_shard:4 ~warm_capacity:1 ~batch:4
    ~resilience:chaos_resilience ~clients:4 ~source_space:chaos_sources ()

let chaos_victim = 1

(* One journey recorder per client domain, so every chaos cell can explain
   its p100: the paper bound for a cold acquire through both shards is
   7(k-1) shared accesses. *)
let chaos_journeys ~seed =
  Array.init chaos_config.Server.clients (fun _ ->
      Obs.Journey.create ~seed
        ~bound:(7 * (chaos_config.Server.k_per_shard - 1))
        ())

type chaos_outcome = {
  co_seed : int;
  co_fault : chaos_fault;
  co_violations : int;
  co_leaked : int;
  co_outstanding : int;
  co_reclaimed : int;
  co_reclaim_scans : int;  (* worst staleness at reclaim, in scans *)
  co_deaths : int;
  co_availability : float;  (* granted / issued over the whole run *)
  co_quarantines : int;
  co_rebuilds : int;
  co_seat_steals : int;
  co_settle : int;
  co_healthy : bool;  (* every shard Live at the end *)
  co_ok : bool;
  co_msg : string;
}

let chaos_policy seed =
  Policy.make ~seed ~retries:8 ~base_spins:64 ~cap_spins:4096 ()

let run_chaos_one ?(requests = 1500) seed fault =
  let cfg = chaos_config in
  let faults, prepare, pinned =
    match fault with
    | Crash_holding ->
        ([ (chaos_victim, Churn.Crash { request = 64 + (seed land 63) }) ], None, false)
    | Crash_mid_drain ->
        ([ (chaos_victim, Churn.Crash_in_drain { drain = seed land 3 }) ], None, false)
    | Crash_seat ->
        ( [ (chaos_victim, Churn.Crash { request = 64 + (seed land 63) }) ],
          Some
            (fun server ->
              ignore (Server.seize_seat server (Server.client server chaos_victim) : int)),
          false )
    | Park_drainer ->
        ([ (chaos_victim, Churn.Park_in_drain { drain = seed land 3 }) ], None, false)
    | Stall_hot_shard ->
        ( [ (chaos_victim, Churn.Stall { request = 32 + (seed land 31); spins = 400_000 }) ],
          None,
          true )
  in
  let hot_sources =
    Array.of_list
      (List.filter
         (fun src -> Server.shard_route ~shards:cfg.Server.shards ~src = 0)
         (List.init chaos_sources Fun.id))
  in
  let spec id =
    let s =
      Workload.server_churn ~theta:0.45 ~s:chaos_sources ~requests ~seed ~client:id ()
    in
    if pinned then Workload.pin ~sources:hot_sources s else s
  in
  let journeys = chaos_journeys ~seed in
  let rep =
    Churn.run ~faults ?prepare ~policy:(chaos_policy seed) ~journeys
      ~sampler_interval_ns:0 ~config:cfg ~spec ()
  in
  let r = rep.Churn.result in
  let rs = rep.Churn.resilience in
  let oc = rep.Churn.outcomes in
  let availability =
    if oc.Churn.issued = 0 then 1.0
    else float_of_int oc.Churn.granted /. float_of_int oc.Churn.issued
  in
  let healthy = Array.for_all (fun h -> h = Health.Live) rep.Churn.health in
  let reclaim_bound = 2 * cfg.Server.resilience.Server.lease_ttl in
  let checks =
    [
      (r.Runtime.Agg.violations = 0, "uniqueness violation");
      (r.Runtime.Agg.leaked = 0, "leaked leases after settle");
      (rep.Churn.outstanding = 0, "names still outstanding");
      ( rs.Server.reclaimed = 0 || rs.Server.reclaim_max_scans <= reclaim_bound,
        "reclaim exceeded 2 lease TTLs" );
      (availability >= 0.90, "availability below 0.90");
      (healthy, "shard not live at end");
      ( (match rep.Churn.journeys with
        | Some j -> Obs.Journey.unexplained_tail j = None
        | None -> false),
        "unexplained tail (p100 without a captured journey)" );
    ]
  in
  let failed = List.filter (fun (ok, _) -> not ok) checks in
  {
    co_seed = seed;
    co_fault = fault;
    co_violations = r.Runtime.Agg.violations;
    co_leaked = r.Runtime.Agg.leaked;
    co_outstanding = rep.Churn.outstanding;
    co_reclaimed = rs.Server.reclaimed;
    co_reclaim_scans = rs.Server.reclaim_max_scans;
    co_deaths = rs.Server.deaths;
    co_availability = availability;
    co_quarantines = rs.Server.quarantines;
    co_rebuilds = rs.Server.rebuilds;
    co_seat_steals = rs.Server.seat_steals;
    co_settle = rep.Churn.settle_scans;
    co_healthy = healthy;
    co_ok = failed = [];
    co_msg = String.concat "; " (List.map snd failed);
  }

let run_chaos ?(seeds = default_seeds) ?requests () =
  List.concat_map
    (fun seed -> List.map (fun f -> run_chaos_one ?requests seed f) chaos_faults)
    seeds

let chaos_ok outcomes =
  outcomes <> []
  && List.for_all (fun o -> o.co_ok) outcomes
  (* a matrix where no client ever died proves the reclaimer nothing *)
  && List.exists (fun o -> o.co_deaths > 0) outcomes

let chaos_clean ?(requests = 1500) ~seed () =
  let spec id =
    Workload.server_churn ~theta:0.45 ~s:chaos_sources ~requests ~seed ~client:id ()
  in
  Churn.run ~policy:(chaos_policy seed) ~journeys:(chaos_journeys ~seed)
    ~sampler_interval_ns:0 ~config:chaos_config ~spec ()

let pp_chaos_outcome ppf o =
  if o.co_ok then
    Fmt.pf ppf
      "%-16s seed %-8d ok   avail %.3f, %d reclaimed (<=%d scans), %d deaths, %d/%d quarantine/rebuild, %d steals"
      (chaos_fault_name o.co_fault)
      o.co_seed o.co_availability o.co_reclaimed o.co_reclaim_scans o.co_deaths
      o.co_quarantines o.co_rebuilds o.co_seat_steals
  else
    Fmt.pf ppf "%-16s seed %-8d FAILED: %s (avail %.3f, outstanding %d)"
      (chaos_fault_name o.co_fault)
      o.co_seed o.co_msg o.co_availability o.co_outstanding

let chaos_outcome_json o =
  Printf.sprintf
    {|{"fault":%S,"seed":%d,"ok":%b,"violations":%d,"leaked":%d,"outstanding":%d,"reclaimed":%d,"reclaim_scans":%d,"deaths":%d,"availability":%.4f,"quarantines":%d,"rebuilds":%d,"seat_steals":%d,"settle_scans":%d,"healthy":%b,"msg":%S}|}
    (chaos_fault_name o.co_fault)
    o.co_seed o.co_ok o.co_violations o.co_leaked o.co_outstanding o.co_reclaimed
    o.co_reclaim_scans o.co_deaths o.co_availability o.co_quarantines o.co_rebuilds
    o.co_seat_steals o.co_settle o.co_healthy o.co_msg

let chaos_fault_summary_json outcomes fault =
  let runs = List.filter (fun o -> o.co_fault = fault) outcomes in
  let fold f init = List.fold_left f init runs in
  Printf.sprintf
    {|{"fault":%S,"runs":%d,"ok":%b,"min_availability":%.4f,"reclaimed":%d,"max_reclaim_scans":%d,"deaths":%d,"quarantines":%d,"rebuilds":%d,"seat_steals":%d}|}
    (chaos_fault_name fault) (List.length runs)
    (List.for_all (fun o -> o.co_ok) runs)
    (fold (fun m o -> Float.min m o.co_availability) 1.0)
    (fold (fun s o -> s + o.co_reclaimed) 0)
    (fold (fun m o -> max m o.co_reclaim_scans) 0)
    (fold (fun s o -> s + o.co_deaths) 0)
    (fold (fun s o -> s + o.co_quarantines) 0)
    (fold (fun s o -> s + o.co_rebuilds) 0)
    (fold (fun s o -> s + o.co_seat_steals) 0)

let chaos_report_json ~seeds outcomes =
  let min_avail =
    List.fold_left (fun m o -> Float.min m o.co_availability) 1.0 outcomes
  in
  Printf.sprintf
    {|{"schema":"renaming.chaos/v1","matrix_size":%d,"ok":%b,"chaos_availability":%.4f,"faults":[%s],"runs":[%s]}|}
    (List.length seeds) (chaos_ok outcomes) min_avail
    (String.concat "," (List.map (chaos_fault_summary_json outcomes) chaos_faults))
    (String.concat "," (List.map chaos_outcome_json outcomes))
