(* renaming-cli: drive the protocols from the command line.

   Subcommands:
     simulate    acquire/release cycles under a seeded random schedule
     modelcheck  bounded-exhaustive interleaving exploration
     params      show chosen FILTER parameters and pipeline stages
     experiment  run reproduction experiments (e1..e12)
     trace       print an access-by-access execution trace
     domains     run a protocol across real OS domains *)

open Cmdliner
open Shared_mem
module Split = Renaming.Split
module Filter = Renaming.Filter
module Ma = Renaming.Ma
module Pipeline = Renaming.Pipeline
module Params = Renaming.Params

type packed_setup =
  | Setup : {
      proto : (module Renaming.Protocol.S with type t = 'a);
      inst : 'a;
      label : string;
    }
      -> packed_setup

(* Build the requested protocol over a fresh layout; returns the pids
   the workload should run with. *)
let build name layout ~k ~s ~procs =
  let pids = Array.init procs (fun i -> ((i * (s / max 1 procs)) + (s / 7)) mod s) in
  match name with
  | "split" ->
      let sp = Split.create layout ~k in
      (Setup { proto = (module Split); inst = sp; label = "split" }, pids)
  | "filter" ->
      let (p : Params.filter_params) = Params.choose ~k ~s in
      let f = Filter.create layout { k; d = p.d; z = p.z; s; participants = pids } in
      ( Setup
          {
            proto = (module Filter);
            inst = f;
            label = Printf.sprintf "filter (d=%d z=%d)" p.d p.z;
          },
        pids )
  | "ma" ->
      let m = Ma.create layout ~k ~s in
      (Setup { proto = (module Ma); inst = m; label = "ma" }, pids)
  | "tas" ->
      let t = Renaming.Tas_baseline.create layout ~k in
      (Setup { proto = (module Renaming.Tas_baseline); inst = t; label = "tas (k names)" }, pids)
  | "pipeline" ->
      let p = Pipeline.create layout ~k ~s ~participants:pids in
      let label =
        Printf.sprintf "pipeline (%s)"
          (String.concat "+" (List.map (fun (st : Pipeline.stage_info) -> st.kind)
               (Pipeline.stages p)))
      in
      (Setup { proto = (module Pipeline); inst = p; label }, pids)
  | other -> failwith (Printf.sprintf "unknown protocol %S" other)

(* ----- simulate ----- *)

let simulate protocol k s procs cycles seed crash =
  let layout = Layout.create () in
  let Setup { proto = (module P); inst; label }, pids = build protocol layout ~k ~s ~procs in
  let work = Layout.alloc layout ~name:"work" 0 in
  let get_costs = ref [] and rel_costs = ref [] in
  let body (ops : Store.ops) =
    let c = Store.counter () in
    let counted = Store.counting c ops in
    for _ = 1 to cycles do
      Store.reset c;
      let lease = P.get_name inst counted in
      get_costs := Store.accesses c :: !get_costs;
      Sim.Sched.emit (Sim.Event.Acquired (P.name_of inst lease));
      ignore (ops.read work);
      Sim.Sched.emit (Sim.Event.Released (P.name_of inst lease));
      Store.reset c;
      P.release_name inst counted lease;
      rel_costs := Store.accesses c :: !rel_costs
    done
  in
  let u = Sim.Checks.uniqueness ~name_space:(P.name_space inst) () in
  let t =
    Sim.Sched.create
      ~monitor:(Sim.Checks.uniqueness_monitor u)
      layout
      (Array.map (fun pid -> (pid, body)) pids)
  in
  let rng = Sim.Rng.make seed in
  let strategy st en =
    if crash && not (Sim.Sched.finished st 0) then
      Array.iter
        (fun i -> if i > 0 && Sim.Sched.steps_of st i >= (4 * i) + 2 then Sim.Sched.pause st i)
        en;
    let en = match Sim.Sched.enabled st with [||] -> en | e -> e in
    en.(Sim.Rng.int rng (Array.length en))
  in
  let outcome = Sim.Sched.run ~max_steps:50_000_000 t strategy in
  Fmt.pr "protocol       : %s@." label;
  Fmt.pr "source space   : %d, destination space: %d@." s (P.name_space inst);
  Fmt.pr "registers      : %d@." (Layout.size layout);
  Fmt.pr "processes      : %d (pids %a)%s@." procs
    Fmt.(array ~sep:comma int)
    pids
    (if crash then ", all but pid[0] crashed mid-run" else "");
  Fmt.pr "completed      : %d/%d, total accesses: %d@."
    (Array.fold_left (fun a b -> if b then a + 1 else a) 0 outcome.completed)
    procs outcome.total;
  Fmt.pr "distinct names : %d (max concurrent %d, largest %d)@." (Sim.Checks.names_used u)
    (Sim.Checks.max_concurrent u) (Sim.Checks.max_name u);
  (match !get_costs with
  | [] -> ()
  | costs ->
      let s = Stats.summarize_ints costs in
      Fmt.pr "GetName cost   : mean %.1f, p95 %.0f, max %.0f accesses@." s.mean s.p95 s.max);
  (match !rel_costs with
  | [] -> ()
  | costs ->
      let s = Stats.summarize_ints costs in
      Fmt.pr "ReleaseName    : mean %.1f, max %.0f accesses@." s.mean s.max);
  Fmt.pr "uniqueness     : OK (monitor raised no violation)@.";
  0

(* ----- modelcheck ----- *)

let modelcheck protocol k s procs cycles max_paths shortest por cache_bound stats json =
  let builder () : Sim.Model_check.config =
    let layout = Layout.create () in
    let Setup { proto = (module P); inst; _ }, pids = build protocol layout ~k ~s ~procs in
    let work = Layout.alloc layout ~name:"work" 0 in
    let body (ops : Store.ops) =
      for _ = 1 to cycles do
        let lease = P.get_name inst ops in
        Sim.Sched.emit (Sim.Event.Acquired (P.name_of inst lease));
        ignore (ops.read work);
        Sim.Sched.emit (Sim.Event.Released (P.name_of inst lease));
        P.release_name inst ops lease
      done
    in
    let u = Sim.Checks.uniqueness ~name_space:(P.name_space inst) () in
    {
      layout;
      procs = Array.map (fun pid -> (pid, body)) pids;
      monitor = Sim.Checks.uniqueness_monitor u;
    }
  in
  if shortest then begin
    match Sim.Model_check.shortest_violation ~max_paths_per_depth:max_paths builder with
    | None ->
        Fmt.pr "no violation within the depth/path budget@.";
        0
    | Some v ->
        Fmt.pr "MINIMAL VIOLATION (%d steps): %s@.schedule: %a@." (List.length v.schedule)
          v.message
          Fmt.(list ~sep:semi int)
          v.schedule;
        1
  end
  else begin
    let options =
      { Sim.Model_check.por; cache_bound; max_steps = 50_000; max_paths }
    in
    let rep = Sim.Model_check.check ~options builder in
    let r = rep.outcome in
    Fmt.pr "explored %d interleavings (%s)@." r.paths
      (if r.complete then "complete" else "bounded");
    if stats then begin
      let st = rep.stats in
      Fmt.pr "states %d, cache hits %d, pruned: %d by sleep sets, %d by cache@."
        st.states st.cache_hits st.pruned_by_sleep st.pruned_by_cache;
      Fmt.pr "max depth %d, truncated paths %d, %.2fs (%.0f paths/s)@." st.max_depth
        st.truncated_paths st.elapsed_s
        (if st.elapsed_s > 0. then float_of_int r.paths /. st.elapsed_s else 0.)
    end;
    if json then
      print_endline
        (Sim.Model_check.report_json
           ~label:(Printf.sprintf "%s_k%d_p%d_c%d" protocol k procs cycles)
           rep);
    match r.violation with
    | None ->
        Fmt.pr "no uniqueness violation found@.";
        0
    | Some v ->
        Fmt.pr "VIOLATION: %s@.schedule: %a@." v.message Fmt.(list ~sep:semi int) v.schedule;
        1
  end

(* ----- params ----- *)

let params k s =
  let (p : Params.filter_params) = Params.choose ~k ~s in
  Fmt.pr "single FILTER instance: d=%d z=%d -> D=%d names@." p.d p.z (Params.name_space ~k p);
  let layout = Layout.create () in
  let pl = Pipeline.create layout ~k ~s ~participants:[||] in
  Fmt.pr "Theorem 11 pipeline (%d registers):@.%a" (Layout.size layout) Pipeline.pp_stages pl;
  Fmt.pr "final name space: %d = k(k+1)/2? %b@." (Pipeline.name_space pl)
    (Pipeline.name_space pl = k * (k + 1) / 2);
  let plan = Params.plan ~k ~s in
  Fmt.pr "@.predicted worst-case GetName (Params.plan):@.";
  List.iter
    (fun (st : Params.stage_plan) ->
      Fmt.pr "  %-6s <= %6d accesses, <= %8d registers@." st.stage st.worst_get st.registers)
    plan;
  Fmt.pr "  total  <= %6d accesses@." (Params.plan_worst_get plan);
  0

(* ----- experiment ----- *)

let experiment ids =
  let ids = if ids = [] then List.map (fun (id, _, _) -> id) Experiments.all else ids in
  let failures = ref 0 in
  List.iter
    (fun id ->
      match Experiments.find id with
      | None ->
          Fmt.epr "unknown experiment %S; known:@." id;
          List.iter (fun (i, t, _) -> Fmt.epr "  %-4s %s@." i t) Experiments.all;
          incr failures
      | Some run ->
          let r = run () in
          Fmt.pr "%a" Experiments.pp_report r;
          if not r.ok then incr failures)
    ids;
  if !failures > 0 then 1 else 0

(* ----- domains ----- *)

let domains protocol k s cycles =
  let layout = Layout.create () in
  let Setup { proto = (module P); inst; label }, pids =
    build protocol layout ~k ~s ~procs:k
  in
  Fmt.pr "running %s across %d OS domains, %d cycles each...@." label k cycles;
  let r =
    Runtime.Domain_runner.run (module P) inst ~layout ~pids ~cycles
      ~name_space:(P.name_space inst)
  in
  Fmt.pr "cycles done    : %a@." Fmt.(array ~sep:comma int) r.cycles_done;
  Fmt.pr "violations     : %d@." r.violations;
  Fmt.pr "max concurrent : %d@." r.max_concurrent;
  if r.violations = 0 then 0 else 1

(* ----- trace ----- *)

let trace protocol k s procs cycles seed tail =
  let layout = Layout.create () in
  let Setup { proto = (module P); inst; label }, pids = build protocol layout ~k ~s ~procs in
  let work = Layout.alloc layout ~name:"work" 0 in
  let body (ops : Store.ops) =
    for _ = 1 to cycles do
      let lease = P.get_name inst ops in
      Sim.Sched.emit (Sim.Event.Acquired (P.name_of inst lease));
      ignore (ops.read work);
      Sim.Sched.emit (Sim.Event.Released (P.name_of inst lease));
      P.release_name inst ops lease
    done
  in
  let tr = Sim.Trace.create ~capacity:tail () in
  let u = Sim.Checks.uniqueness ~name_space:(P.name_space inst) () in
  let t =
    Sim.Sched.create
      ~monitor:(Sim.Checks.combine [ Sim.Trace.monitor tr; Sim.Checks.uniqueness_monitor u ])
      layout
      (Array.map (fun pid -> (pid, body)) pids)
  in
  let outcome = Sim.Sched.run ~max_steps:1_000_000 t (Sim.Sched.random (Sim.Rng.make seed)) in
  Fmt.pr "%s, %d processes, seed %d: %d accesses total%s@.@." label procs seed outcome.total
    (if Sim.Trace.dropped tr > 0 then
       Printf.sprintf " (showing the last %d)" (Sim.Trace.length tr)
     else "");
  Fmt.pr "%a" Sim.Trace.pp tr;
  Fmt.pr "@.%s@." (Sim.Trace.timeline tr);
  0

(* ----- cmdliner wiring ----- *)

let protocol_arg =
  let doc = "Protocol: split, filter, ma, tas or pipeline." in
  Arg.(value & opt (enum [ ("split", "split"); ("filter", "filter"); ("ma", "ma");
                           ("tas", "tas"); ("pipeline", "pipeline") ]) "pipeline"
       & info [ "p"; "protocol" ] ~docv:"PROTOCOL" ~doc)

let k_arg default =
  Arg.(value & opt int default & info [ "k" ] ~docv:"K" ~doc:"Max concurrent processes.")

let s_arg default =
  Arg.(value & opt int default & info [ "s" ] ~docv:"S" ~doc:"Source name-space size.")

let cycles_arg default =
  Arg.(value & opt int default
       & info [ "c"; "cycles" ] ~docv:"N" ~doc:"Acquire/release cycles per process.")

let simulate_cmd =
  let procs = Arg.(value & opt int 0 & info [ "procs" ] ~docv:"N"
                   ~doc:"Concurrent processes (default $(b,k)).") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Schedule seed.") in
  let crash = Arg.(value & flag & info [ "crash" ]
                   ~doc:"Freeze all processes but the first mid-run (wait-freedom demo).") in
  let run protocol k s procs cycles seed crash =
    simulate protocol k s (if procs <= 0 then k else procs) cycles seed crash
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run acquire/release cycles under a seeded random schedule")
    Term.(const run $ protocol_arg $ k_arg 4 $ s_arg 1024 $ procs $ cycles_arg 5 $ seed
          $ crash)

let modelcheck_cmd =
  let max_paths = Arg.(value & opt int 200_000
                       & info [ "max-paths" ] ~docv:"N" ~doc:"Interleaving budget.") in
  let procs = Arg.(value & opt int 2 & info [ "procs" ] ~docv:"N" ~doc:"Processes.") in
  let shortest = Arg.(value & flag & info [ "shortest" ]
                      ~doc:"Iterative deepening: report a minimal-length counterexample \
                            (plain search, no reductions).") in
  let por = Arg.(value & vflag true
                 [ (true, info [ "por" ] ~doc:"Sleep-set partial-order reduction (default).");
                   (false, info [ "no-por" ] ~doc:"Disable partial-order reduction.") ]) in
  let cache_bound = Arg.(value & opt int 1_000_000
                         & info [ "cache-bound" ] ~docv:"N"
                           ~doc:"Max states remembered by the state cache; 0 disables \
                                 caching.") in
  let stats = Arg.(value & flag & info [ "stats" ]
                   ~doc:"Print exploration statistics (states, pruning, paths/sec).") in
  let json = Arg.(value & flag & info [ "json" ]
                  ~doc:"Also print a machine-readable JSON report line.") in
  Cmd.v
    (Cmd.info "modelcheck" ~doc:"Explore interleavings exhaustively (bounded)")
    Term.(const modelcheck $ protocol_arg $ k_arg 2 $ s_arg 4 $ procs $ cycles_arg 1
          $ max_paths $ shortest $ por $ cache_bound $ stats $ json)

let params_cmd =
  Cmd.v
    (Cmd.info "params" ~doc:"Show FILTER parameters and the Theorem 11 pipeline for (k, S)")
    Term.(const params $ k_arg 6 $ s_arg 1_000_000)

let experiment_cmd =
  let ids = Arg.(value & pos_all string [] & info [] ~docv:"ID"
                 ~doc:"Experiment ids (e1..e10); all when omitted.") in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Run the paper-reproduction experiments")
    Term.(const experiment $ ids)

let trace_cmd =
  let procs = Arg.(value & opt int 2 & info [ "procs" ] ~docv:"N" ~doc:"Processes.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Schedule seed.") in
  let tail = Arg.(value & opt int 120 & info [ "tail" ] ~docv:"N"
                  ~doc:"Show only the last $(docv) trace items.") in
  Cmd.v
    (Cmd.info "trace" ~doc:"Print the access-by-access execution trace of a small run")
    Term.(const trace $ protocol_arg $ k_arg 2 $ s_arg 16 $ procs $ cycles_arg 1 $ seed
          $ tail)

let domains_cmd =
  Cmd.v
    (Cmd.info "domains" ~doc:"Run a protocol across real OS domains (Atomic store)")
    Term.(const domains $ protocol_arg $ k_arg 3 $ s_arg 1024 $ cycles_arg 200)

let () =
  let info =
    Cmd.info "renaming-cli" ~version:"1.0.0"
      ~doc:"Fast long-lived renaming (Buhrman, Garay, Hoepman, Moir - PODC 1995)"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ simulate_cmd; modelcheck_cmd; params_cmd; experiment_cmd; trace_cmd;
            domains_cmd ]))
