(* The Unix scenario from the paper's introduction: "processes have
   unique identifiers from a large range, but the number of processes
   that run concurrently is much smaller".

   Here 30 distinct "OS processes" with 22-bit pids come and go over
   time, multiplexed over k = 5 concurrent execution slots (the
   long-lived workload: at most k concurrent, unboundedly many over
   time).  Every client acquires a dense name from the pipeline; the
   per-operation cost is independent of the 4-million-entry pid space.

     dune exec examples/unix_pids.exe *)

open Shared_mem
module Pipeline = Renaming.Pipeline

let () =
  let k = 5 in
  let s = 1 lsl 22 in
  let slots = k in
  let pool_per_slot = 6 in
  (* 30 distinct sparse pids, partitioned among the slots so that no
     source name is ever active twice concurrently *)
  let rng = Sim.Rng.make 7 in
  let pool = Array.init (slots * pool_per_slot) (fun _ -> Sim.Rng.int rng s) in
  let pool = Array.to_list pool |> List.sort_uniq compare |> Array.of_list in
  let layout = Layout.create () in
  let protocol = Pipeline.create layout ~k ~s ~participants:pool in
  let work = Layout.alloc layout ~name:"work" 0 in
  Fmt.pr "pid space: %d entries; active slots: %d; client pids over time: %d@." s slots
    (Array.length pool);
  Fmt.pr "pipeline:@.%a@." Pipeline.pp_stages protocol;

  let per_slot = Array.length pool / slots in
  let slot_pids i = Array.sub pool (i * per_slot) per_slot in
  let costs = ref [] in
  let slot_body i (ops : Store.ops) =
    let pids = slot_pids i in
    let c = Store.counter () in
    for cycle = 0 to (3 * per_slot) - 1 do
      let ops = Store.counting c { ops with pid = pids.(cycle mod per_slot) } in
      Store.reset c;
      let lease = Pipeline.get_name protocol ops in
      Sim.Sched.emit (Sim.Event.Acquired (Pipeline.name_of protocol lease));
      ignore (ops.read work);
      Sim.Sched.emit (Sim.Event.Released (Pipeline.name_of protocol lease));
      Pipeline.release_name protocol ops lease;
      costs := Store.accesses c :: !costs
    done
  in
  let u = Sim.Checks.uniqueness ~name_space:(Pipeline.name_space protocol) () in
  let t =
    Sim.Sched.create
      ~monitor:(Sim.Checks.uniqueness_monitor u)
      layout
      (Array.init slots (fun i -> ((slot_pids i).(0), slot_body i)))
  in
  let outcome = Sim.Sched.run ~max_steps:20_000_000 t (Sim.Sched.random (Sim.Rng.make 99)) in
  assert (Array.for_all Fun.id outcome.completed);
  let summary = Stats.summarize_ints !costs in
  Fmt.pr "sessions served: %d (30 identities rotating through %d slots)@." summary.n slots;
  Fmt.pr "dense names used: %d of %d; never more than %d held at once@."
    (Sim.Checks.names_used u)
    (Pipeline.name_space protocol)
    (Sim.Checks.max_concurrent u);
  Fmt.pr "full session cost (GetName + release): mean %.1f, p95 %.0f, max %.0f accesses@."
    summary.mean summary.p95 summary.max;
  Fmt.pr "note: a single scan of the raw pid space would cost %d accesses.@." s
