examples/unix_pids.ml: Array Fmt Fun Layout List Renaming Shared_mem Sim Stats Store
