examples/resilient_counter.ml: Array Cell Fmt Layout Renaming Shared_mem Store
