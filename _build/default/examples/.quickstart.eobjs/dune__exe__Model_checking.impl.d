examples/model_checking.ml: Fmt Layout Renaming Shared_mem Sim Store
