examples/adversarial.mli:
