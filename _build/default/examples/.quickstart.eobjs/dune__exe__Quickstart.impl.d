examples/quickstart.ml: Array Fmt Fun Layout Renaming Shared_mem Sim Store
