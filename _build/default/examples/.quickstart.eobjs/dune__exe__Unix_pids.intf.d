examples/unix_pids.mli:
