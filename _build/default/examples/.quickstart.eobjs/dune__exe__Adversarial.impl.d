examples/adversarial.ml: Array Fmt Int Layout List Numeric Renaming Shared_mem Sim Store
