examples/quickstart.mli:
