(* Wait-freedom under fire: an adversarial scheduler starves one
   process and crashes the others mid-operation, while a FILTER
   instance keeps handing out names.

   Phase 1 (starvation): the victim gets one step for every ~20 the
   others take — it still completes every acquisition within the
   Theorem 10 bound, because some tree in its cover-free set is always
   contention-free.

   Phase 2 (crashes): the other processes are frozen at awkward
   moments, holding mutex positions forever.  The victim still makes
   progress: wait-freedom means no process ever waits on another.

     dune exec examples/adversarial.exe *)

open Shared_mem
module Filter = Renaming.Filter

let k = 3
let d = 1
let z = 5
let s = 25
let participants = [| 3; 11; 19 |]

let build () =
  let layout = Layout.create () in
  let f = Filter.create layout { k; d; z; s; participants } in
  let work = Layout.alloc layout ~name:"work" 0 in
  (layout, f, work)

let body f ~work ~cycles ~report (ops : Store.ops) =
  for _ = 1 to cycles do
    let lease = Filter.get_name f ops in
    report (Filter.checks lease);
    Sim.Sched.emit (Sim.Event.Acquired (Filter.name_of f lease));
    ignore (ops.read work);
    Sim.Sched.emit (Sim.Event.Released (Filter.name_of f lease));
    Filter.release_name f ops lease
  done

let phase1_starvation () =
  Fmt.pr "--- phase 1: victim starved 1:20 against two churning rivals ---@.";
  let layout, f, work = build () in
  let checks = ref [] in
  let victim = body f ~work ~cycles:5 ~report:(fun c -> checks := c :: !checks) in
  let rival = body f ~work ~cycles:40 ~report:(fun _ -> ()) in
  let u = Sim.Checks.uniqueness ~name_space:(Filter.name_space f) () in
  let t =
    Sim.Sched.create
      ~monitor:(Sim.Checks.uniqueness_monitor u)
      layout
      [| (participants.(0), victim); (participants.(1), rival); (participants.(2), rival) |]
  in
  let rng = Sim.Rng.make 5 in
  let starve st en =
    ignore st;
    if Array.length en = 1 then en.(0)
    else if Array.exists (Int.equal 0) en && Sim.Rng.int rng 20 = 0 then 0
    else
      let rest = Array.of_list (List.filter (fun i -> i <> 0) (Array.to_list en)) in
      if Array.length rest = 0 then en.(0) else rest.(Sim.Rng.int rng (Array.length rest))
  in
  let outcome = Sim.Sched.run ~max_steps:5_000_000 t starve in
  let bound = 6 * d * (k - 1) * Numeric.Intmath.ceil_log2 s in
  Fmt.pr "victim finished: %b; worst acquisition: %d mutex checks (bound %d)@."
    outcome.completed.(0)
    (List.fold_left max 0 !checks)
    bound;
  assert (outcome.completed.(0))

let phase2_crashes () =
  Fmt.pr "@.--- phase 2: rivals frozen mid-operation, positions never released ---@.";
  let layout, f, work = build () in
  let victim = body f ~work ~cycles:5 ~report:(fun _ -> ()) in
  let rival = body f ~work ~cycles:40 ~report:(fun _ -> ()) in
  let u = Sim.Checks.uniqueness ~name_space:(Filter.name_space f) () in
  let t =
    Sim.Sched.create
      ~monitor:(Sim.Checks.uniqueness_monitor u)
      layout
      [| (participants.(0), victim); (participants.(1), rival); (participants.(2), rival) |]
  in
  let rng = Sim.Rng.make 11 in
  let crash st en =
    if not (Sim.Sched.finished st 0) then
      Array.iter
        (fun i ->
          if i > 0 && Sim.Sched.steps_of st i >= 6 * i then begin
            if not (Sim.Sched.finished st i) then Sim.Sched.pause st i
          end)
        en;
    let en = match Sim.Sched.enabled st with [||] -> en | e -> e in
    en.(Sim.Rng.int rng (Array.length en))
  in
  let outcome = Sim.Sched.run ~max_steps:5_000_000 t crash in
  Fmt.pr "victim finished: %b with %d accesses; crashed rivals finished: %b %b@."
    outcome.completed.(0) outcome.steps.(0) outcome.completed.(1) outcome.completed.(2);
  Fmt.pr "names stayed unique throughout (monitor raised no violation).@.";
  assert (outcome.completed.(0));
  assert (not outcome.completed.(1))

let () =
  phase1_starvation ();
  phase2_crashes ()
