(* Finding a real concurrency bug with the bundled model checker.

   During development, two candidate reconstructions of the paper's
   (lost) Figure 3 were refuted by this exact workflow; the faulty
   variants live on in [Renaming.Mutations] as mutation tests.  This
   example runs the checker against one of them, prints the concrete
   interleaving it finds, and then shows the real block passing the
   same harness exhaustively.

     dune exec examples/model_checking.exe *)

open Shared_mem
module Mm = Renaming.Mutations.Mutant_mutex
module Pf = Renaming.Pf_mutex

let exclusion_monitor extra =
  let in_cs = ref 0 in
  Sim.Checks.combine
    [
      extra;
      Sim.Sched.monitor
        ~on_event:(fun _ _ ev ->
          match ev with
          | Sim.Event.Note ("cs", _) ->
              incr in_cs;
              if !in_cs > 1 then
                raise (Sim.Model_check.Violation "both directions in the critical section")
          | Sim.Event.Note ("cs_exit", _) -> decr in_cs
          | _ -> ())
        ();
    ]

(* One acquire/critical-section/release cycle per side, with bounded
   re-checks so the schedule space is finite. *)
let contender ~enter ~check ~release ~work ~dir (ops : Store.ops) =
  let slot = enter ops ~dir in
  let rec spin n =
    if check ops ~dir slot then begin
      Sim.Sched.emit (Sim.Event.Note ("cs", dir));
      ignore (ops.read work);
      Sim.Sched.emit (Sim.Event.Note ("cs_exit", dir))
    end
    else if n > 0 then spin (n - 1)
  in
  spin 4;
  release ops ~dir slot

let check_faulty () =
  let trace = ref None in
  let builder () : Sim.Model_check.config =
    let layout = Layout.create () in
    let b = Mm.create layout Mm.Read_before_write in
    let work = Layout.alloc layout ~name:"work" 0 in
    let tr = Sim.Trace.create () in
    trace := Some tr;
    let body dir =
      contender ~enter:(Mm.enter b) ~check:(Mm.check b) ~release:(Mm.release b) ~work ~dir
    in
    {
      layout;
      procs = [| (0, body 0); (1, body 1) |];
      monitor = exclusion_monitor (Sim.Trace.monitor tr);
    }
  in
  Fmt.pr "--- checking the faulty 'read-before-write' mutex ---@.";
  let r = Sim.Model_check.explore ~max_paths:500_000 builder in
  match r.violation with
  | None -> Fmt.pr "unexpectedly found no bug (%d paths)@." r.paths
  | Some v ->
      Fmt.pr "BUG after %d schedules: %s@." r.paths v.message;
      Fmt.pr "schedule (enabled-set choices): [%a]@."
        Fmt.(list ~sep:semi int)
        v.schedule;
      (match !trace with
      | Some tr ->
          Fmt.pr "@.the failing interleaving, access by access:@.%a" Sim.Trace.pp tr
      | None -> ());
      Fmt.pr "@.replaying the schedule reproduces it: %b@."
        (match Sim.Model_check.replay builder v.schedule with Error _ -> true | Ok () -> false)

let check_real () =
  let builder () : Sim.Model_check.config =
    let layout = Layout.create () in
    let b = Pf.create layout in
    let work = Layout.alloc layout ~name:"work" 0 in
    let body dir =
      contender ~enter:(Pf.enter b) ~check:(Pf.check b) ~release:(Pf.release b) ~work ~dir
    in
    {
      layout;
      procs = [| (0, body 0); (1, body 1) |];
      monitor = exclusion_monitor Sim.Sched.no_monitor;
    }
  in
  Fmt.pr "@.--- checking the real Figure 3 block on the same harness ---@.";
  let r = Sim.Model_check.explore builder in
  Fmt.pr "explored %d schedules (%s): %s@." r.paths
    (if r.complete then "all of them" else "bounded")
    (match r.violation with None -> "exclusion holds" | Some v -> "BUG: " ^ v.message)

let () =
  check_faulty ();
  check_real ()
