(* Quickstart: rename 4 processes with huge sparse identifiers down to
   k(k+1)/2 = 10 names, using the Theorem 11 pipeline, under the
   deterministic simulator.

     dune exec examples/quickstart.exe *)

open Shared_mem
module Pipeline = Renaming.Pipeline

let () =
  let k = 4 in
  let s = 1_000_000 in
  (* the processes that may participate: any source names below S *)
  let pids = [| 271_828; 314_159; 577_215; 141_421 |] in

  (* 1. allocate the protocol's shared registers *)
  let layout = Layout.create () in
  let protocol = Pipeline.create layout ~k ~s ~participants:pids in
  let work = Layout.alloc layout ~name:"work" 0 in
  Fmt.pr "pipeline stages:@.%a" Pipeline.pp_stages protocol;

  (* 2. each process repeatedly acquires a short name, works, releases *)
  let body (ops : Store.ops) =
    for round = 1 to 3 do
      let lease = Pipeline.get_name protocol ops in
      let name = Pipeline.name_of protocol lease in
      Sim.Sched.emit (Sim.Event.Acquired name);
      Fmt.pr "  process %6d, round %d: working as name %d@." ops.pid round name;
      (* hold the name across a few shared accesses so the overlap is
         visible on the timeline below *)
      for _ = 1 to 12 do
        ignore (ops.read work)
      done;
      Sim.Sched.emit (Sim.Event.Released name);
      Pipeline.release_name protocol ops lease
    done
  in

  (* 3. run all processes under a random schedule, with the uniqueness
        monitor checking that no two ever hold the same name, and a
        trace recording the execution *)
  let monitor = Sim.Checks.uniqueness ~name_space:(Pipeline.name_space protocol) () in
  let trace = Sim.Trace.create () in
  let t =
    Sim.Sched.create
      ~monitor:
        (Sim.Checks.combine
           [ Sim.Checks.uniqueness_monitor monitor; Sim.Trace.monitor trace ])
      layout
      (Array.map (fun pid -> (pid, body)) pids)
  in
  let outcome = Sim.Sched.run t (Sim.Sched.random (Sim.Rng.make 42)) in
  Fmt.pr "@.%s@." (Sim.Trace.timeline trace);

  Fmt.pr "@.source space %d -> destination space %d@." s (Pipeline.name_space protocol);
  Fmt.pr "total shared accesses: %d; distinct names used: %d; max held concurrently: %d@."
    outcome.total
    (Sim.Checks.names_used monitor)
    (Sim.Checks.max_concurrent monitor);
  assert (Array.for_all Fun.id outcome.completed);
  Fmt.pr "uniqueness invariant held throughout.@."
