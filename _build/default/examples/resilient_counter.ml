(* The paper's motivating application (§1, after Anderson–Moir): shared
   objects whose operations scan one register per *potential* process
   become dramatically cheaper when a renaming protocol shrinks the
   name space first.

   The object here is a wait-free "collect counter": each process adds
   to its own single-writer slot, and reading the counter sums every
   slot — so a read costs one shared access per name in the slot space.

   Without renaming, the slot space is the source name space S (here
   65536): every read scans 65536 registers.  With the pipeline
   front-end, k = 4 processes rename into k(k+1)/2 = 10 slots: every
   read scans 10 — at the price of one GetName/ReleaseName pair per
   session.

     dune exec examples/resilient_counter.exe *)

open Shared_mem
module Pipeline = Renaming.Pipeline

(* The underlying shared object: an array of single-writer slots. *)
module Collect_counter = struct
  type t = { slots : Cell.t array }

  let create layout ~names = { slots = Layout.alloc_array layout ~name:"slot" names 0 }

  (* add my contribution: read-modify-write my own slot (single-writer,
     so the two accesses need not be atomic together) *)
  let add t (ops : Store.ops) ~slot v =
    ops.write t.slots.(slot) (ops.read t.slots.(slot) + v)

  let read t (ops : Store.ops) =
    Array.fold_left (fun acc c -> acc + ops.read c) 0 t.slots
end

let k = 4
let s = 65_536
let pids = [| 4_321; 17_290; 33_001; 60_007 |]

(* One "session": acquire a slot identity, do some adds and reads,
   release.  [slot_of] abstracts how the slot is obtained. *)
let session counter (ops : Store.ops) ~slot ~adds =
  for _ = 1 to adds do
    Collect_counter.add counter ops ~slot 1
  done;
  Collect_counter.read counter ops

let run_without_renaming () =
  let layout = Layout.create () in
  let counter = Collect_counter.create layout ~names:s in
  let mem = Store.seq_create layout in
  let cost = Store.counter () in
  let total = ref 0 in
  Array.iter
    (fun pid ->
      let ops = Store.counting cost (Store.seq_ops mem ~pid) in
      (* without renaming, the only safe slot is your source name *)
      total := session counter ops ~slot:pid ~adds:3)
    pids;
  (!total, Store.accesses cost)

let run_with_renaming () =
  let layout = Layout.create () in
  let protocol = Pipeline.create layout ~k ~s ~participants:pids in
  let counter = Collect_counter.create layout ~names:(Pipeline.name_space protocol) in
  let mem = Store.seq_create layout in
  let cost = Store.counter () in
  let total = ref 0 in
  Array.iter
    (fun pid ->
      let ops = Store.counting cost (Store.seq_ops mem ~pid) in
      let lease = Pipeline.get_name protocol ops in
      total := session counter ops ~slot:(Pipeline.name_of protocol lease) ~adds:3;
      Pipeline.release_name protocol ops lease)
    pids;
  (!total, Store.accesses cost)

let () =
  let sum_plain, cost_plain = run_without_renaming () in
  let sum_renamed, cost_renamed = run_with_renaming () in
  Fmt.pr "collect counter over S = %d potential processes, %d actually active@." s k;
  Fmt.pr "@.%-28s %12s %18s@." "" "final value" "shared accesses";
  Fmt.pr "%-28s %12d %18d@." "slots = source names (65536)" sum_plain cost_plain;
  Fmt.pr "%-28s %12d %18d@." "slots = renamed (10)" sum_renamed cost_renamed;
  Fmt.pr "@.speedup: %.0fx fewer shared accesses, same counter semantics@."
    (float_of_int cost_plain /. float_of_int cost_renamed);
  assert (sum_plain = sum_renamed)
