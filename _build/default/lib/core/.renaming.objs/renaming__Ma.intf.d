lib/core/ma.mli: Protocol Shared_mem
