lib/core/renaming.ml: Filter Ma Mutations One_time Params Pf_mutex Pipeline Protocol Split Splitter Tas_baseline Tournament
