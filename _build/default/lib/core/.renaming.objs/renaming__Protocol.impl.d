lib/core/protocol.ml: List Shared_mem
