lib/core/mutations.ml: Array Cell Layout Printf Shared_mem Store
