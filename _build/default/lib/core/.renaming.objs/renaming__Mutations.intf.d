lib/core/mutations.mli: Protocol Shared_mem
