lib/core/one_time.mli: Shared_mem
