lib/core/protocol.mli: Shared_mem
