lib/core/split.ml: Array Numeric Splitter
