lib/core/params.mli:
