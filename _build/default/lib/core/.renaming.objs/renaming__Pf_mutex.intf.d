lib/core/pf_mutex.mli: Shared_mem
