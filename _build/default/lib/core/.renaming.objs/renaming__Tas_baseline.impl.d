lib/core/tas_baseline.ml: Array Cell Layout Shared_mem Store
