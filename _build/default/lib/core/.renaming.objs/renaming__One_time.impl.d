lib/core/one_time.ml: Array Cell Layout Printf Shared_mem Store
