lib/core/tournament.ml: Array Numeric Pf_mutex
