lib/core/ma.ml: Array Cell Layout Printf Shared_mem Store
