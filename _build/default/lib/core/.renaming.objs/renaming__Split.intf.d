lib/core/split.mli: Protocol Shared_mem
