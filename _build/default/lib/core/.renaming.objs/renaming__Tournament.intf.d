lib/core/tournament.mli: Pf_mutex Shared_mem
