lib/core/filter.mli: Numeric Protocol Shared_mem
