lib/core/filter.ml: Array Hashtbl List Numeric Pf_mutex Printf Shared_mem Store Tournament
