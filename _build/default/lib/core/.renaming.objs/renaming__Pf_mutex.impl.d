lib/core/pf_mutex.ml: Array Cell Layout Shared_mem Store
