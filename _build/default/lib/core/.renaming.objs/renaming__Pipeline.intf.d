lib/core/pipeline.mli: Format Protocol Shared_mem
