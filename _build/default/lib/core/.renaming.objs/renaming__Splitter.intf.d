lib/core/splitter.mli: Shared_mem
