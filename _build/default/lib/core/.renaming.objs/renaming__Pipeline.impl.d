lib/core/pipeline.ml: Array Filter Format Fun List Ma Numeric Params Printf Protocol Split
