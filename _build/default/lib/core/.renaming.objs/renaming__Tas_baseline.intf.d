lib/core/tas_baseline.mli: Protocol Shared_mem
