lib/core/params.ml: List Numeric
