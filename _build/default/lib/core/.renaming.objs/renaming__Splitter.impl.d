lib/core/splitter.ml: Cell Layout Shared_mem Store
