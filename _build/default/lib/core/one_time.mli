(** One-time renaming (the problem the paper generalizes, §1).

    Each process acquires a name from [{0, …, k(k+1)/2 - 1}] {e at most
    once}; there is no release.  This is Moir–Anderson's one-shot
    grid of wait-free splitters — the construction whose long-lived
    analogue (with presence bits, {!Ma}) costs [Θ(kS)], while the
    one-shot version costs only [O(k)]:

    each block has registers [X] (a pid) and [Y] (a boolean, initially
    false); a process writes [X := p]; if [Y] is set it moves right;
    otherwise it sets [Y] and stops if [X] is still [p], moving down
    after detecting interference.  Of [ℓ] concurrent entrants at most
    one stops, at most [ℓ-1] move right and at most [ℓ-1] move down,
    so in the triangular grid of depth [k] everyone stops.

    Provided for comparison with the long-lived protocols: the gap
    between [O(k)] one-shot and the paper's fast long-lived protocols
    is the cost of reusability. *)

type t

val create : Shared_mem.Layout.t -> k:int -> t
(** Grid for at most [k] concurrent processes; allocates
    [k(k+1)/2 · 2] registers.  @raise Invalid_argument if [k < 1]. *)

val name_space : t -> int
(** [k(k+1)/2]. *)

val get_name : t -> Shared_mem.Store.ops -> int
(** Acquire this process's (permanent) name.  Must be called at most
    once per source name; costs at most [4k] shared accesses. *)

val grid_position : t -> int -> int * int
(** The [(row, column)] a name denotes (diagnostics). *)
