(** Choosing FILTER parameters (§4.1 requirements, §4.4 regimes).

    An instance of FILTER is specified by a degree [d] and a prime
    modulus [z] subject to (1) [S ≤ z^(d+1)] and (2) [z ≥ 2d(k-1)]; the
    destination name space is [D = 2dz(k-1)].  {!choose} optimizes [D];
    {!regimes} reproduces the paper's §4.4 hand-picked instances. *)

type filter_params = { d : int; z : int }

val ceil_root : int -> int -> int
(** [ceil_root s m]: least [r ≥ 1] with [r^m ≥ s] ([m ≥ 1]). *)

val name_space : k:int -> filter_params -> int
(** [2dz(k-1)]. *)

val satisfies : k:int -> s:int -> filter_params -> bool
(** Requirements (1), (2) and primality of [z]. *)

val choose : k:int -> s:int -> filter_params
(** Minimizes [D = 2dz(k-1)] over [d ∈ 1..12] with
    [z = next_prime (max (2d(k-1)) (ceil_root s (d+1)))].
    @raise Invalid_argument if [k < 2] or [s < 1]. *)

(** {1 The §4.4 regimes} *)

type regime = {
  label : string;  (** e.g. ["S <= 2k^4"]. *)
  source : k:int -> int;  (** The regime's [S] as a function of [k]. *)
  params : k:int -> filter_params;  (** The paper's choice of [(d, z)]. *)
  space_bound : k:int -> int;  (** The paper's bound on [D]. *)
  time_label : string;  (** The paper's asymptotic time claim. *)
}

val regimes : regime list
(** The five §4.4 rows: [S ≤ c^k] (with [c = 3]), [S ≤ 3^(k-1)],
    [S ≤ k^log k], [S ≤ k^c] (with [c = 4]), [S ≤ 2k^4]. *)

(** {1 Pipeline planning}

    Predicts the Theorem 11 pipeline {!Pipeline.create} would build for
    a given [(k, S)] — stages, name spaces, worst-case GetName access
    bounds and register counts — without allocating anything.  Useful
    for capacity planning and for choosing [k] caps. *)

type stage_plan = {
  stage : string;  (** ["split"], ["filter"] or ["ma"]. *)
  stage_source : int;
  stage_dest : int;
  worst_get : int;  (** Upper bound on GetName shared accesses. *)
  registers : int;  (** Registers the stage allocates (filter stages
                        assume all [stage_source] names participate, as
                        the pipeline does for non-first stages). *)
}

val plan : k:int -> s:int -> stage_plan list
(** Mirrors the stage selection of [Pipeline.create].
    @raise Invalid_argument under the same conditions. *)

val plan_worst_get : stage_plan list -> int
(** Sum of the stages' worst-case GetName bounds. *)

val plan_registers : stage_plan list -> int
