(** The Moir–Anderson read/write long-lived renaming protocol [MA94] —
    the paper's baseline.  Renames to [k(k+1)/2] names, but is {e not}
    fast: [GetName] costs [Θ(kS)] shared accesses because every grid
    block scans one presence bit per {e source} name.

    Reconstruction (the paper cites but does not include MA94): a
    triangular grid of resettable splitters at positions [(r, c)] with
    [r + c ≤ k - 1].  Block [(r, c)] has a register [X] and presence
    bits [Y[0..S-1]].  A process writes [X := p]; if some presence bit
    is set it moves right, otherwise it raises its own bit and stops if
    [X] is still [p] (moving down after lowering the bit if not).  At
    most one process at a time can be at a diagonal block, which
    therefore stops unconditionally.  Releasing a name lowers the one
    presence bit — which is what resets the splitter and makes the
    protocol long-lived.  Validated by model checking and stress tests
    (at most [k - r - c] processes concurrently use block [(r, c)]).

    Used by the Theorem 11 pipeline as the final stage (with [S] already
    reduced to [O(k^2)], its [Θ(kS)] cost is [O(k^3)]). *)

include Protocol.S

val create : Shared_mem.Layout.t -> k:int -> s:int -> t
(** Grid for at most [k] concurrent processes with source names in
    [\[0, s)].  Allocates [k(k+1)/2 · (s + 1)] registers.
    @raise Invalid_argument if [k < 1] or [s < 1]. *)

val k : t -> int
val source_space : t -> int

val grid_position : t -> lease -> int * int
(** The [(row, column)] of the grid block where the name was claimed. *)
