(** Long-lived renaming from Test&Set — the stronger-primitive baseline
    the paper contrasts against (§1: "For systems supporting primitives
    such as Test&Set, Moir and Anderson present renaming protocols that
    are both fast and long-lived.  However, protocols that employ such
    strong operations are not as widely applicable or as portable...").

    One test-and-set bit per destination name, [D = k] names total —
    optimal, and far below the [2k - 1] lower bound for read/write
    protocols (Herlihy–Shavit, §5).  [GetName] probes the bits
    cyclically; with at most [k] concurrent processes some bit is
    always free, so a probe round of [k] bits finds one unless rivals
    released-and-reacquired in between.

    Progress caveat, stated honestly: unlike the paper's read/write
    protocols this simple probing loop is {e lock-free but not
    wait-free} — an adversarial scheduler can in principle starve one
    requester by cycling names through the others (the system as a
    whole always makes progress).  Under any fair schedule GetName
    costs [O(k)] expected accesses.  It exists as a baseline to show
    what the read/write restriction costs; it is not part of the
    paper's contribution. *)

include Protocol.S

val create : Shared_mem.Layout.t -> k:int -> t
(** [k] test-and-set bits.  @raise Invalid_argument if [k < 1]. *)

val probes : lease -> int
(** Test&set probes the acquisition performed (cost instrumentation). *)
