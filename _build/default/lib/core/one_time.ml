open Shared_mem

type t = {
  k : int;
  x : Cell.t array; (* per block *)
  y : Cell.t array; (* per block, the one-shot "taken" bit *)
}

let index ~k ~r ~c = (r * k) - (r * (r - 1) / 2) + c

let create layout ~k =
  if k < 1 then invalid_arg "One_time.create: k must be >= 1";
  let blocks = k * (k + 1) / 2 in
  {
    k;
    x = Array.init blocks (fun i -> Layout.alloc layout ~name:(Printf.sprintf "OX[%d]" i) (-1));
    y = Array.init blocks (fun i -> Layout.alloc layout ~name:(Printf.sprintf "OY[%d]" i) 0);
  }

let name_space t = t.k * (t.k + 1) / 2

let get_name t (ops : Store.ops) =
  let rec move r c =
    let i = index ~k:t.k ~r ~c in
    if r + c = t.k - 1 then i (* diagonal block: at most one arrival *)
    else begin
      ops.write t.x.(i) ops.pid;
      if ops.read t.y.(i) = 1 then move r (c + 1)
      else begin
        ops.write t.y.(i) 1;
        if ops.read t.x.(i) = ops.pid then i else move (r + 1) c
      end
    end
  in
  move 0 0

let grid_position t name =
  let rec find r =
    let row_start = index ~k:t.k ~r ~c:0 in
    let row_len = t.k - r in
    if name < row_start + row_len then (r, name - row_start) else find (r + 1)
  in
  find 0
