type filter_params = { d : int; z : int }

let pow_ge = Numeric.Intmath.pow_ge
let ceil_root = Numeric.Intmath.ceil_root

let name_space ~k p = 2 * p.d * p.z * (k - 1)

let satisfies ~k ~s p =
  p.d >= 1 && Numeric.Primes.is_prime p.z && p.z >= 2 * p.d * (k - 1) && pow_ge p.z (p.d + 1) s

let choose ~k ~s =
  if k < 2 then invalid_arg "Params.choose: k must be >= 2";
  if s < 1 then invalid_arg "Params.choose: s must be >= 1";
  let candidate d =
    let zmin = max (2 * d * (k - 1)) (ceil_root s (d + 1)) in
    { d; z = Numeric.Primes.next_prime zmin }
  in
  let best = ref (candidate 1) in
  for d = 2 to 12 do
    let c = candidate d in
    if name_space ~k c < name_space ~k !best then best := c
  done;
  !best

type regime = {
  label : string;
  source : k:int -> int;
  params : k:int -> filter_params;
  space_bound : k:int -> int;
  time_label : string;
}

(* The smallest prime >= zmin that also meets requirement (1) for [s]
   at degree [d] (a bump is almost never needed; the paper's choices
   satisfy (1) by construction). *)
let fit ~k ~d ~zmin ~s =
  let zmin = max zmin (max 2 (2 * d * (k - 1))) in
  let rec go z = if pow_ge z (d + 1) s then { d; z } else go (Numeric.Primes.next_prime (z + 1)) in
  go (Numeric.Primes.next_prime zmin)

let pow_int = Numeric.Intmath.pow
let ceil_log2 = Numeric.Intmath.ceil_log2

let regimes =
  [
    {
      label = "S <= c^k (c=3)";
      source = (fun ~k -> pow_int 3 k);
      params = (fun ~k -> fit ~k ~d:k ~zmin:((2 * k * (k - 1)) + 3) ~s:(pow_int 3 k));
      space_bound = (fun ~k -> 4 * k * (k - 1) * ((2 * k * (k - 1)) + 3));
      time_label = "O(k^3)";
    };
    {
      label = "S <= 3^(k-1)";
      source = (fun ~k -> pow_int 3 (k - 1));
      params =
        (fun ~k ->
          let d = max 1 ((k - 2) / 2) in
          fit ~k ~d ~zmin:(k * k) ~s:(pow_int 3 (k - 1)));
      space_bound = (fun ~k -> 2 * k * k * k * k);
      time_label = "O(k^3)";
    };
    {
      label = "S <= k^log k";
      source = (fun ~k -> pow_int k (ceil_log2 k));
      params =
        (fun ~k ->
          let d = max 1 (ceil_log2 k) in
          fit ~k ~d ~zmin:(2 * k * d) ~s:(pow_int k (ceil_log2 k)));
      space_bound =
        (fun ~k ->
          let lg = max 1 (ceil_log2 k) in
          8 * k * (k - 1) * lg * lg);
      time_label = "O(k log k)";
    };
    {
      label = "S <= k^c (c=4)";
      source = (fun ~k -> pow_int k 4);
      params = (fun ~k -> fit ~k ~d:4 ~zmin:(2 * 4 * (k - 1)) ~s:(pow_int k 4));
      space_bound = (fun ~k -> 128 * (k - 1) * (k - 1));
      time_label = "O(k log k)";
    };
    {
      label = "S <= 2k^4";
      source = (fun ~k -> 2 * pow_int k 4);
      params = (fun ~k -> fit ~k ~d:3 ~zmin:(6 * k) ~s:(2 * pow_int k 4));
      space_bound = (fun ~k -> 72 * k * k);
      time_label = "O(k log k)";
    };
  ]

type stage_plan = {
  stage : string;
  stage_source : int;
  stage_dest : int;
  worst_get : int;
  registers : int;
}

(* Mirrors Pipeline.create's stage selection; keep the two in sync
   (test_pipeline checks they agree). *)
let plan ~k ~s =
  if k < 2 then invalid_arg "Params.plan: k must be >= 2";
  let pow3 = Numeric.Intmath.pow 3 in
  let stages = ref [] in
  let push st = stages := st :: !stages in
  let split_dest = if k <= 12 then pow3 (k - 1) else max_int in
  let cur_s =
    if s > split_dest then begin
      if k > 12 then invalid_arg "Params.plan: SPLIT needed but k > 12";
      push
        {
          stage = "split";
          stage_source = s;
          stage_dest = split_dest;
          worst_get = 7 * (k - 1);
          registers = 3 * ((pow3 (k - 1) - 1) / 2);
        };
      split_dest
    end
    else s
  in
  let filter_plan cur_s (p : filter_params) =
    let levels = Numeric.Intmath.ceil_log2 (max cur_s 2) in
    let set_size = 2 * p.d * (k - 1) in
    {
      stage = "filter";
      stage_source = cur_s;
      stage_dest = name_space ~k p;
      (* enters (4 accesses each) + the Theorem 10 check budget + releases *)
      worst_get = (4 * set_size * levels) + (6 * p.d * (k - 1) * levels);
      registers = 2 * cur_s * set_size * levels (* all-participants upper bound *);
    }
  in
  let rec filters cur_s =
    if cur_s <= k * (k + 1) / 2 then cur_s
    else
      let p = choose ~k ~s:cur_s in
      let dest = name_space ~k p in
      if dest >= cur_s then cur_s
      else begin
        push (filter_plan cur_s p);
        filters dest
      end
  in
  let cur_s = filters cur_s in
  if k * (k + 1) / 2 < cur_s || !stages = [] then
    push
      {
        stage = "ma";
        stage_source = cur_s;
        stage_dest = k * (k + 1) / 2;
        worst_get = (k * (cur_s + 4)) + 1;
        registers = k * (k + 1) / 2 * (cur_s + 1);
      };
  List.rev !stages

let plan_worst_get stages = List.fold_left (fun a st -> a + st.worst_get) 0 stages
let plan_registers stages = List.fold_left (fun a st -> a + st.registers) 0 stages
