lib/numeric/intmath.ml: Float
