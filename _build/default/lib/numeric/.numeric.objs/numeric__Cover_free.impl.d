lib/numeric/cover_free.ml: Array Gf Intmath List
