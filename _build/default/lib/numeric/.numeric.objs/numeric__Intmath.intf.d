lib/numeric/intmath.mli:
