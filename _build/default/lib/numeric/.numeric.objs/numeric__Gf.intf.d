lib/numeric/gf.mli:
