lib/numeric/gf.ml: Array Primes
