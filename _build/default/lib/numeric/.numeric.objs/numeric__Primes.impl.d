lib/numeric/primes.ml: Array
