lib/numeric/cover_free.mli:
