lib/numeric/primes.mli:
