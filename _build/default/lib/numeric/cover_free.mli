(** Cover-free name families (§4.1 of the paper, after Erdős–Frankl–Füredi).

    For parameters [d], [z] (prime) and [k], each process [p] gets the
    name set [N_p = { z·x + Q_p(x) | 0 ≤ x < 2d(k-1) }] where [Q_p] is
    the degree-[d] polynomial over GF(z) whose coefficients are the
    base-[z] digits of [p].  Facts used by FILTER:

    - [‖N_p‖ = 2d(k-1)] (all elements distinct);
    - [p ≠ q ⇒ ‖N_p ∩ N_q‖ ≤ d] (Proposition 8), provided
      [p, q < z^(d+1)] so that distinct processes get distinct
      polynomials;
    - hence for any set [P] of at most [k-1] other processes, at least
      [d(k-1)] names of [N_p] are outside [⋃_{q∈P} N_q];
    - every name is in [[0, 2dz(k-1))].

    Requirements ((1) and (2) in the paper): [S ≤ z^(d+1)] and
    [z ≥ 2d(k-1)].  {!create} enforces (2) and primality; (1) is
    checked against a given [S] by {!admits_source}. *)

type t

val create : ?tight:bool -> k:int -> d:int -> z:int -> unit -> t
(** @raise Invalid_argument if [k < 2], [d < 1], [z] is not prime, or
    [z < 2d(k-1)] (with [~tight:true], the §4.1 remark's relaxation:
    only [z > d(k-1)] is required, the probe set shrinks to [z] points
    and merely {e one} free name — rather than [d(k-1)] — is
    guaranteed, trading acquisition speed for a smaller name space). *)

val k : t -> int
val degree : t -> int
val modulus : t -> int

val set_size : t -> int
(** [min (2d(k-1)) z] — the number of names each process competes for
    (the cap at [z] only binds for [~tight:true] instances). *)

val name_space : t -> int
(** [z · set_size] — every [n_p(x)] lies below this bound
    ([2dz(k-1)] for paper-constraint instances). *)

val admits_source : t -> int -> bool
(** [admits_source t s]: does requirement (1), [s ≤ z^(d+1)], hold?
    Overflow-safe. *)

val poly : t -> int -> int array
(** [poly t p] — the [d+1] coefficients of [Q_p] (little-endian). *)

val name : t -> int -> int -> int
(** [name t p x] is [n_p(x) = z·x + Q_p(x)].  [0 ≤ x < set_size]. *)

val names : t -> int -> int array
(** [names t p = [| name t p 0; …; name t p (set_size-1) |]]. *)

val intersection : t -> int -> int -> int
(** [intersection t p q] is [‖N_p ∩ N_q‖]. *)

val free_names : t -> int -> int list -> int list
(** [free_names t p others]: the [x] indices of names in [N_p] not
    belonging to any [N_q] for [q ∈ others, q ≠ p]. *)
