let pow b e =
  if e < 0 then invalid_arg "Intmath.pow";
  let rec go acc i = if i = 0 then acc else go (acc * b) (i - 1) in
  go 1 e

let pow_ge r m s =
  let rec go acc i =
    if acc >= s then true
    else if i = 0 then false
    else if r > 1 && acc > max_int / r then true
    else go (acc * r) (i - 1)
  in
  go 1 m

let ceil_log2 n =
  let rec go l c = if c >= n then l else go (l + 1) (c * 2) in
  go 0 1

let ceil_root s m =
  if m < 1 || s < 1 then invalid_arg "Intmath.ceil_root";
  if s = 1 then 1
  else begin
    let guess = int_of_float (Float.of_int s ** (1.0 /. Float.of_int m)) in
    let r = ref (max 1 (guess - 2)) in
    while not (pow_ge !r m s) do
      incr r
    done;
    !r
  end
