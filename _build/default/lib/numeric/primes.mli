(** Primality and prime search.

    FILTER needs a prime modulus [z] in a Bertrand-style range (for any
    [a ≥ 1] there is a prime in [\[a, 2a\]]); the moduli involved are
    small (polynomial in [k]), so deterministic trial division is
    ample. *)

val is_prime : int -> bool
(** Deterministic; correct for all [n ≥ 0] representable in an [int]
    (trial division up to [√n]). *)

val next_prime : int -> int
(** Smallest prime [≥ n].  @raise Invalid_argument if [n < 0]. *)

val prime_in : int -> int -> int option
(** [prime_in lo hi] is the smallest prime in [\[lo, hi\]], if any. *)

val primes_upto : int -> int list
(** All primes [≤ n], ascending (sieve of Eratosthenes). *)
