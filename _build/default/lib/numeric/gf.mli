(** Arithmetic in the prime field GF(z).

    FILTER assigns each process a distinct polynomial over GF(z); two
    distinct degree-[d] polynomials agree on at most [d] points
    (a polynomial of degree ≤ d has ≤ d roots), which is the
    combinatorial engine behind the cover-free name families. *)

type field
(** The field GF(z) for a prime [z]. *)

val field : int -> field
(** @raise Invalid_argument if the argument is not prime. *)

val order : field -> int
val add : field -> int -> int -> int
val sub : field -> int -> int -> int
val mul : field -> int -> int -> int
val pow : field -> int -> int -> int
(** [pow f x e] for [e ≥ 0]. *)

val inv : field -> int -> int
(** Multiplicative inverse.  @raise Division_by_zero on 0. *)

val eval : field -> int array -> int -> int
(** [eval f coeffs x] evaluates [Σ coeffs.(i) · x^i] by Horner's rule.
    Coefficients and [x] must lie in [\[0, z)]. *)

val digits : base:int -> width:int -> int -> int array
(** [digits ~base ~width n] is the little-endian base-[base] expansion
    of [n], padded/truncated to [width] digits.  Distinct
    [n < base^width] give distinct digit vectors — this is how distinct
    processes get distinct polynomials (§4.1: [a_i = (p div z^i) mod z]). *)
