(** Small integer helpers shared across the libraries. *)

val pow : int -> int -> int
(** [pow b e] for [e ≥ 0]; caller must ensure no overflow. *)

val pow_ge : int -> int -> int -> bool
(** [pow_ge r m s] decides [r^m ≥ s] without overflowing. *)

val ceil_log2 : int -> int
(** Least [l] with [2^l ≥ n] (0 for [n ≤ 1]). *)

val ceil_root : int -> int -> int
(** [ceil_root s m]: least [r ≥ 1] with [r^m ≥ s] ([s, m ≥ 1]). *)
