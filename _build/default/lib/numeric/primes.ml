let is_prime n =
  if n < 2 then false
  else if n < 4 then true
  else if n mod 2 = 0 then false
  else
    let rec trial d = d * d > n || (n mod d <> 0 && trial (d + 2)) in
    trial 3

let next_prime n =
  if n < 0 then invalid_arg "Primes.next_prime";
  let rec search m = if is_prime m then m else search (m + 1) in
  search (max n 2)

let prime_in lo hi =
  let p = next_prime (max lo 2) in
  if p <= hi then Some p else None

let primes_upto n =
  if n < 2 then []
  else begin
    let sieve = Array.make (n + 1) true in
    sieve.(0) <- false;
    sieve.(1) <- false;
    let i = ref 2 in
    while !i * !i <= n do
      if sieve.(!i) then begin
        let j = ref (!i * !i) in
        while !j <= n do
          sieve.(!j) <- false;
          j := !j + !i
        done
      end;
      incr i
    done;
    let acc = ref [] in
    for p = n downto 2 do
      if sieve.(p) then acc := p :: !acc
    done;
    !acc
  end
