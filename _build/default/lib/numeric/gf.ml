type field = { z : int }

let field z = if Primes.is_prime z then { z } else invalid_arg "Gf.field: modulus must be prime"
let order f = f.z
let add f a b = (a + b) mod f.z
let sub f a b = ((a - b) mod f.z + f.z) mod f.z
let mul f a b = a * b mod f.z

let pow f x e =
  if e < 0 then invalid_arg "Gf.pow";
  let rec go acc base e =
    if e = 0 then acc
    else
      let acc = if e land 1 = 1 then mul f acc base else acc in
      go acc (mul f base base) (e lsr 1)
  in
  go 1 (x mod f.z) e

let inv f x =
  if x mod f.z = 0 then raise Division_by_zero;
  (* Fermat: x^(z-2) since z is prime. *)
  pow f x (f.z - 2)

let eval f coeffs x =
  let n = Array.length coeffs in
  let acc = ref 0 in
  for i = n - 1 downto 0 do
    acc := add f (mul f !acc x) coeffs.(i)
  done;
  !acc

let digits ~base ~width n =
  if base < 2 || width < 1 || n < 0 then invalid_arg "Gf.digits";
  let a = Array.make width 0 in
  let rest = ref n in
  for i = 0 to width - 1 do
    a.(i) <- !rest mod base;
    rest := !rest / base
  done;
  a
