type t = { k : int; d : int; z : int; field : Gf.field }

let create ?(tight = false) ~k ~d ~z () =
  if k < 2 then invalid_arg "Cover_free.create: k must be >= 2";
  if d < 1 then invalid_arg "Cover_free.create: d must be >= 1";
  if tight then begin
    if z <= d * (k - 1) then invalid_arg "Cover_free.create: need z > d(k-1)"
  end
  else if z < 2 * d * (k - 1) then invalid_arg "Cover_free.create: need z >= 2d(k-1)";
  { k; d; z; field = Gf.field z }

let k t = t.k
let degree t = t.d
let modulus t = t.z
(* Probe points must be field elements (the <= d agreement bound needs
   x < z), so the tight variant caps the set at z. *)
let set_size t = min (2 * t.d * (t.k - 1)) t.z
let name_space t = t.z * set_size t

let admits_source t s = Intmath.pow_ge t.z (t.d + 1) s

let poly t p =
  if p < 0 then invalid_arg "Cover_free.poly";
  Gf.digits ~base:t.z ~width:(t.d + 1) p

let name t p x =
  if x < 0 || x >= set_size t then invalid_arg "Cover_free.name";
  (t.z * x) + Gf.eval t.field (poly t p) x

let names t p =
  let q = poly t p in
  Array.init (set_size t) (fun x -> (t.z * x) + Gf.eval t.field q x)

let intersection t p q =
  (* n_p(x) = n_q(y) iff x = y and Q_p(x) = Q_q(x), so count agreement
     points of the two polynomials among the probed x values. *)
  let qp = poly t p and qq = poly t q in
  let count = ref 0 in
  for x = 0 to set_size t - 1 do
    if Gf.eval t.field qp x = Gf.eval t.field qq x then incr count
  done;
  !count

let free_names t p others =
  let qp = poly t p in
  let others = List.filter (fun q -> q <> p) others in
  let polys = List.map (poly t) others in
  let free = ref [] in
  for x = set_size t - 1 downto 0 do
    let vp = Gf.eval t.field qp x in
    let taken = List.exists (fun q -> Gf.eval t.field q x = vp) polys in
    if not taken then free := x :: !free
  done;
  !free
