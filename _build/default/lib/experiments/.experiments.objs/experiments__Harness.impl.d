lib/experiments/harness.ml: Array List Renaming Shared_mem Sim Store
