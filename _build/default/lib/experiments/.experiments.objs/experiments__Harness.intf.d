lib/experiments/harness.mli: Renaming Shared_mem
