lib/experiments/experiments.mli: Format Stats
