lib/experiments/experiments.ml: Array Format Fun Harness Hashtbl Int Layout List Numeric Option Printf Renaming Shared_mem Sim Stats Store String
