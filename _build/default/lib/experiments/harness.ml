open Shared_mem

type costs = { get : int list; release : int list }

let seeds n = List.init n (fun i -> 0xCAFE + (i * 104729))

let counted_body (type a l)
    (module P : Renaming.Protocol.S with type t = a and type lease = l) (inst : a) ~work
    ~cycles ~on_get ~on_release (ops : Store.ops) =
  let c = Store.counter () in
  let counted = Store.counting c ops in
  for _ = 1 to cycles do
    Store.reset c;
    let lease = P.get_name inst counted in
    on_get (Store.accesses c) lease;
    Sim.Sched.emit (Sim.Event.Acquired (P.name_of inst lease));
    ignore (ops.read work);
    Sim.Sched.emit (Sim.Event.Released (P.name_of inst lease));
    Store.reset c;
    P.release_name inst counted lease;
    on_release (Store.accesses c)
  done

let measure_protocol (type a) (module P : Renaming.Protocol.S with type t = a) (inst : a)
    ~layout ~work ~pids ~cycles ~seeds ~name_space =
  let get = ref [] and release = ref [] in
  let body =
    counted_body (module P) inst ~work ~cycles
      ~on_get:(fun c _ -> get := c :: !get)
      ~on_release:(fun c -> release := c :: !release)
  in
  List.iter
    (fun seed ->
      let u = Sim.Checks.uniqueness ~name_space () in
      let t =
        Sim.Sched.create
          ~monitor:(Sim.Checks.uniqueness_monitor u)
          layout
          (Array.map (fun pid -> (pid, body)) pids)
      in
      let outcome = Sim.Sched.run ~max_steps:50_000_000 t (Sim.Sched.random (Sim.Rng.make seed)) in
      if outcome.truncated then
        raise (Sim.Model_check.Violation "measurement run exceeded its step budget"))
    seeds;
  { get = !get; release = !release }

let imax = List.fold_left max 0
let imean l = float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (max 1 (List.length l))

type filter_costs = { fc : costs; rounds : int list; checks : int list; advances : int list list }

let measure_filter f ~layout ~work ~pids ~cycles ~seeds =
  let module F = Renaming.Filter in
  let rounds = ref [] and checks = ref [] and advances = ref [] in
  let get = ref [] and release = ref [] in
  let body =
    counted_body (module F) f ~work ~cycles
      ~on_get:(fun c lease ->
        get := c :: !get;
        rounds := F.rounds lease :: !rounds;
        checks := F.checks lease :: !checks;
        advances := F.advances lease :: !advances)
      ~on_release:(fun c -> release := c :: !release)
  in
  List.iter
    (fun seed ->
      let u = Sim.Checks.uniqueness ~name_space:(F.name_space f) () in
      let t =
        Sim.Sched.create
          ~monitor:(Sim.Checks.uniqueness_monitor u)
          layout
          (Array.map (fun pid -> (pid, body)) pids)
      in
      let outcome = Sim.Sched.run ~max_steps:50_000_000 t (Sim.Sched.random (Sim.Rng.make seed)) in
      if outcome.truncated then
        raise (Sim.Model_check.Violation "filter measurement exceeded its step budget"))
    seeds;
  {
    fc = { get = !get; release = !release };
    rounds = !rounds;
    checks = !checks;
    advances = !advances;
  }
