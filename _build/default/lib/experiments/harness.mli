(** Shared machinery for the experiment suite (see {!Experiments}). *)

type costs = {
  get : int list;  (** Shared accesses per [GetName] execution. *)
  release : int list;  (** Shared accesses per [ReleaseName] execution. *)
}

val measure_protocol :
  (module Renaming.Protocol.S with type t = 'a) ->
  'a ->
  layout:Shared_mem.Layout.t ->
  work:Shared_mem.Cell.t ->
  pids:int array ->
  cycles:int ->
  seeds:int list ->
  name_space:int ->
  costs
(** Run [cycles] acquire/release cycles per process under each seeded
    random schedule, with the uniqueness monitor armed, collecting
    per-operation shared-access costs across all runs.  The layout and
    instance are reused across seeds (long-lived protocols reset
    themselves); raises {!Sim.Model_check.Violation} on any uniqueness
    violation. *)

val imax : int list -> int
val imean : int list -> float

type filter_costs = {
  fc : costs;
  rounds : int list;  (** Figure 4 rounds per acquisition. *)
  checks : int list;  (** Mutex checks per acquisition. *)
  advances : int list list;
      (** Per acquisition, trees advanced in each completed round
          (Lemma 9 instrumentation). *)
}

val measure_filter :
  Renaming.Filter.t ->
  layout:Shared_mem.Layout.t ->
  work:Shared_mem.Cell.t ->
  pids:int array ->
  cycles:int ->
  seeds:int list ->
  filter_costs
(** {!measure_protocol} specialized to FILTER, additionally collecting
    the Theorem 10 instrumentation. *)

val seeds : int -> int list
(** Deterministic seed list (same convention as the test suite). *)
