lib/sim/model_check.ml: Array List Printf Rng Sched Shared_mem
