lib/sim/model_check.ml: Array Hashtbl List Option Printf Rng Sched Shared_mem State_hash Sys
