lib/sim/checks.mli: Sched Trace
