lib/sim/event.ml: Format String
