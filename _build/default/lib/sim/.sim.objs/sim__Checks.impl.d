lib/sim/checks.ml: Event Hashtbl List Model_check Option Printf Sched String Trace
