lib/sim/event.mli: Format
