lib/sim/state_hash.ml: Array Cell Event Hashtbl Layout Sched Shared_mem
