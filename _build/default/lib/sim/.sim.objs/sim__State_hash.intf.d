lib/sim/state_hash.mli: Event Sched Shared_mem
