lib/sim/sched.ml: Array Cell Effect Event Int Layout Rng Shared_mem Store
