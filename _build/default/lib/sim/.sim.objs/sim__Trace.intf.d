lib/sim/trace.mli: Event Format Sched
