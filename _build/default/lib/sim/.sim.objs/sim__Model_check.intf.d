lib/sim/model_check.mli: Result Sched Shared_mem
