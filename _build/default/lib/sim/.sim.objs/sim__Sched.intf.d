lib/sim/sched.mli: Event Rng Shared_mem
