lib/sim/trace.ml: Bytes Char Event Format Hashtbl List Printf Queue Sched Shared_mem String
