lib/sim/rng.mli:
