type t = Acquired of int | Released of int | Note of string * int

let pp ppf = function
  | Acquired n -> Format.fprintf ppf "acquired %d" n
  | Released n -> Format.fprintf ppf "released %d" n
  | Note (s, v) -> Format.fprintf ppf "%s %d" s v

let equal a b =
  match (a, b) with
  | Acquired x, Acquired y | Released x, Released y -> x = y
  | Note (s, x), Note (t, y) -> String.equal s t && x = y
  | (Acquired _ | Released _ | Note _), _ -> false
