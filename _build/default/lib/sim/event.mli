(** Events emitted by simulated processes.

    Events mark high-level protocol transitions (name acquired /
    released) so that monitors can check invariants such as "no two
    processes concurrently hold the same name".  Emitting an event is
    not a shared-memory access and does not consume a scheduler step:
    it happens atomically with the access that precedes it. *)

type t =
  | Acquired of int  (** Process completed [GetName], obtaining this name. *)
  | Released of int  (** Process completed [ReleaseName] of this name. *)
  | Note of string * int  (** Free-form instrumentation. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
