(** Deterministic pseudo-random numbers (splitmix64).

    The simulator and the tests never use [Stdlib.Random]: every random
    schedule is reproducible from an explicit seed, so a failing
    interleaving can be replayed exactly. *)

type t

val make : int -> t
(** [make seed] creates a generator; equal seeds give equal streams. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be > 0. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val bool : t -> bool

val split : t -> t
(** Child generator with an independent-looking stream. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
