type item =
  | Access of { step : int; proc : int; pid : int; access : Sched.access }
  | Emitted of { proc : int; pid : int; event : Event.t }

type t = {
  capacity : int;
  ring : item Queue.t;
  mutable dropped : int;
}

let create ?(capacity = 10_000) () =
  if capacity < 1 then invalid_arg "Trace.create";
  { capacity; ring = Queue.create (); dropped = 0 }

let push t item =
  if Queue.length t.ring >= t.capacity then begin
    ignore (Queue.pop t.ring);
    t.dropped <- t.dropped + 1
  end;
  Queue.push item t.ring

let monitor t =
  Sched.monitor
    ~on_access:(fun sched proc access ->
      push t
        (Access
           { step = Sched.total_steps sched; proc; pid = Sched.pid_of sched proc; access }))
    ~on_event:(fun sched proc event ->
      push t (Emitted { proc; pid = Sched.pid_of sched proc; event }))
    ()

let items t = List.of_seq (Queue.to_seq t.ring)
let length t = Queue.length t.ring
let dropped t = t.dropped

let clear t =
  Queue.clear t.ring;
  t.dropped <- 0

let pp_item ppf = function
  | Access { step; proc; pid; access } -> (
      match access with
      | Sched.Read (c, v) ->
          Format.fprintf ppf "%4d p%d(pid %d) R %a = %d" step proc pid Shared_mem.Cell.pp c v
      | Sched.Write (c, v) ->
          Format.fprintf ppf "%4d p%d(pid %d) W %a := %d" step proc pid Shared_mem.Cell.pp c v
      | Sched.Update (c, old, v) ->
          Format.fprintf ppf "%4d p%d(pid %d) U %a : %d -> %d" step proc pid Shared_mem.Cell.pp
            c old v)
  | Emitted { proc; pid; event } ->
      Format.fprintf ppf "     p%d(pid %d) ! %a" proc pid Event.pp event

let pp ppf t =
  Queue.iter (fun item -> Format.fprintf ppf "%a@." pp_item item) t.ring

let name_glyph n =
  if n < 0 then '?'
  else if n < 10 then Char.chr (Char.code '0' + n)
  else if n < 36 then Char.chr (Char.code 'a' + n - 10)
  else '*'

let timeline ?(width = 72) t =
  (* Reconstruct per-process state at every step: the step clock is the
     running access count; events adopt the current clock. *)
  let items = items t in
  let last_step =
    List.fold_left
      (fun acc -> function Access { step; _ } -> max acc step | Emitted _ -> acc)
      1 items
  in
  let procs = Hashtbl.create 8 in
  List.iter
    (fun item ->
      let proc, pid =
        match item with
        | Access { proc; pid; _ } | Emitted { proc; pid; _ } -> (proc, pid)
      in
      if not (Hashtbl.mem procs proc) then Hashtbl.add procs proc pid)
    items;
  let lanes =
    Hashtbl.fold (fun proc pid acc -> (proc, pid) :: acc) procs [] |> List.sort compare
  in
  let buckets = max 1 (min width last_step) in
  let bucket_of step = min (buckets - 1) ((step - 1) * buckets / last_step) in
  let grid = Hashtbl.create 8 in
  List.iter (fun (proc, _) -> Hashtbl.add grid proc (Bytes.make buckets ' ')) lanes;
  (* walk items, tracking clock and per-proc holding state *)
  let clock = ref 1 in
  let holding = Hashtbl.create 8 in
  let active = Hashtbl.create 8 in
  let paint proc ch =
    let lane = Hashtbl.find grid proc in
    let b = bucket_of !clock in
    (* holding marks overwrite competing marks, never the reverse *)
    if ch <> '.' || Bytes.get lane b = ' ' then Bytes.set lane b ch
  in
  List.iter
    (fun item ->
      match item with
      | Access { step; proc; _ } ->
          clock := step;
          (match Hashtbl.find_opt holding proc with
          | Some n -> paint proc (name_glyph n)
          | None -> if Hashtbl.mem active proc then paint proc '.')
      | Emitted { proc; event; _ } -> (
          match event with
          | Event.Acquired n ->
              Hashtbl.replace holding proc n;
              Hashtbl.replace active proc ();
              paint proc (name_glyph n)
          | Event.Released n ->
              paint proc (name_glyph n);
              Hashtbl.remove holding proc
          | Event.Note _ -> Hashtbl.replace active proc ()))
    items;
  let header =
    Printf.sprintf "steps 1..%d  (digit/letter = name held, . = competing, space = idle)"
      last_step
  in
  let lines =
    List.map
      (fun (proc, pid) ->
        Printf.sprintf "p%d (pid %6d) |%s|" proc pid (Bytes.to_string (Hashtbl.find grid proc)))
      lanes
  in
  String.concat "\n" (header :: lines)
