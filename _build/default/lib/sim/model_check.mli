(** Bounded schedule exploration.

    OCaml continuations are one-shot, so the checker is re-execution
    based (in the style of stateless model checkers such as dscheck):
    each explored interleaving rebuilds the whole configuration from
    scratch via a user-supplied builder and replays a prefix of
    scheduling choices, then extends it depth-first.

    Exhaustive exploration is feasible for the paper's small "special
    cases" (2–3 processes, one or two acquire/release cycles); beyond
    that, {!sample} draws seeded-random schedules.

    Design note — why no partial-order reduction: sleep sets and DPOR
    prune interleavings that are Mazurkiewicz-equivalent under an
    independence relation on {e memory accesses}, but the monitors here
    check properties of {e event overlap} (two processes holding the
    same name simultaneously).  In a buggy protocol such an overlap
    need not be witnessed by any access conflict, so trace-equivalence
    pruning could explore only the non-overlapping representative and
    miss the bug.  The mutation suite (test_mutations.ml) is the
    regression net that keeps the checker honest. *)

exception Violation of string
(** Raised by monitors to signal an invariant violation; the checker
    catches it and reports the offending schedule. *)

type config = {
  layout : Shared_mem.Layout.t;
  procs : (int * (Shared_mem.Store.ops -> unit)) array;
  monitor : Sched.monitor;
}

type builder = unit -> config
(** Must build a {e fresh} configuration — fresh layout, fresh cells,
    fresh monitor state — so that replayed schedules are reproducible. *)

type violation = {
  message : string;
  schedule : int list;
      (** The choice at each decision point: index into the enabled
          array, in execution order.  Replayable via {!replay}. *)
}

type result = {
  paths : int;  (** Interleavings fully explored. *)
  complete : bool;  (** False if [max_paths] stopped the search. *)
  violation : violation option;  (** First violation found, if any. *)
}

val explore : ?max_steps:int -> ?max_paths:int -> builder -> result
(** Depth-first exhaustive exploration.  [max_steps] (default [10_000])
    truncates each path (invariants are still checked along truncated
    paths); [max_paths] (default [2_000_000]) bounds the search. *)

val sample : ?max_steps:int -> seeds:int list -> builder -> result
(** One seeded-random schedule per seed; [paths] counts runs. *)

val replay : ?max_steps:int -> builder -> int list -> (unit, violation) Result.t
(** Re-run a single schedule (as reported in {!violation.schedule}). *)

val shortest_violation :
  ?max_steps:int -> ?max_paths_per_depth:int -> builder -> violation option
(** Iterative-deepening search for a minimal-length counterexample:
    explores all schedules of length [d] for growing [d] (up to
    [max_steps], default [200]) and returns the first violation found
    at the smallest depth.  Much shorter counterexamples than
    {!explore}'s depth-first order, at the price of re-exploration;
    meant for debugging small configurations. *)
