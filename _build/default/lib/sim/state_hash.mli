(** Incremental state fingerprints for the model checker's state cache.

    A [State_hash.t] shadows one simulation and folds everything that
    determines its future behaviour into a single 63-bit key:

    - the shared-memory contents (maintained from the access stream);
    - per-process rolling hashes of each process's access history —
      process bodies are deterministic functions of the values their
      reads return, so the history hash pins down the continuation;
    - a rolling hash of the {e ordered} event sequence, which pins down
      the state of history-dependent monitors (e.g. an occupancy
      checker's high-water mark).

    Two simulation states with equal keys are treated as equal by the
    cache (hash compaction, as in murphi/SPIN): collisions are possible
    in principle but at 63 bits are negligible next to the path budgets
    involved.  Soundness additionally assumes monitor state is a
    function of the emitted event sequence; monitors that merely assert
    on each access without carrying state (domain checks) are also
    fine, since an access replayed from a cached state was already
    checked the first time. *)

type t

val create : Shared_mem.Layout.t -> nprocs:int -> t
(** Fingerprint for a fresh simulation over [layout] with [nprocs]
    processes: shadow memory holds the initial register values. *)

val record_access : t -> int -> Sched.access -> unit
(** Fold process [i]'s access into its history hash and apply any
    write to the shadow memory.  Call once per {!Sched.step}, e.g.
    from a monitor's [on_access] hook. *)

val record_event : t -> int -> Event.t -> unit
(** Fold an event emitted by process [i] into the ordered event hash. *)

val key : t -> int
(** Non-negative fingerprint of the current state. *)
