(* splitmix64: tiny, fast, and good enough for schedule sampling. *)

type t = { mutable state : int64 }

let make seed = { state = Int64.of_int seed }

let bits64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  let r = Int64.to_int (bits64 t) land max_int in
  r mod bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let split t = { state = bits64 t }

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
