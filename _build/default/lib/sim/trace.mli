(** Execution-trace recording.

    A trace monitor records every shared access and every event, in
    order, into a bounded ring (oldest entries are dropped first).
    Invaluable when a model-checker violation needs a post-mortem: wire
    a trace into the same run and print the tail.

    Combine with other monitors via {!Checks.combine}. *)

type item =
  | Access of { step : int; proc : int; pid : int; access : Sched.access }
      (** The [step]-th shared access of the run, by process index
          [proc] (source name [pid]). *)
  | Emitted of { proc : int; pid : int; event : Event.t }
      (** An event, atomic with the access recorded just before it. *)

type t

val create : ?capacity:int -> unit -> t
(** Keep the last [capacity] (default [10_000]) items. *)

val monitor : t -> Sched.monitor

val items : t -> item list
(** Recorded items, oldest first. *)

val length : t -> int
(** Items currently held. *)

val dropped : t -> int
(** Items discarded because the ring was full. *)

val clear : t -> unit

val pp_item : Format.formatter -> item -> unit
(** One line, e.g. ["  47 p1(pid 19) W ADVICE1#4 := -1"]. *)

val pp : Format.formatter -> t -> unit
(** All held items, one per line. *)

val timeline : ?width:int -> t -> string
(** ASCII timeline of name-holding intervals: one lane per process,
    time flowing right (bucketed to [width] columns, default 72); a
    digit/letter marks the name held ([0-9a-z], [*] beyond 35), [.]
    marks competing (between the cycle's first access and the
    acquisition), space marks idle.  Derived from [Acquired]/[Released]
    events against the access-step clock. *)
